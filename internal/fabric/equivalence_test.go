package fabric

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spe/internal/campaign"
	"spe/internal/corpus"
)

// These tests pin the fabric's determinism contract: a loopback
// coordinator/worker campaign — any worker count, any schedule, batching
// on or off, leases expiring and re-dispatching, the coordinator itself
// killed and resumed — formats byte-identically to the in-process
// engine. They mirror the *_equivalence_test.go pattern in
// internal/campaign: one baseline Report.Format(), every cell compared
// against it.

// baseConfig matches internal/campaign's oracleBaseConfig so fabric
// equivalence runs the same small-but-real campaign.
func baseConfig() campaign.Config {
	return campaign.Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		ShardSize:          8,
	}
}

// inProcessBaseline runs cfg through the plain engine.
func inProcessBaseline(t *testing.T, cfg campaign.Config) string {
	t.Helper()
	rep, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Format()
}

// runFabric drives cfg through a coordinator and workers over the given
// transport factory, returning the final formatted report. Each worker
// gets its own transport so per-worker chaos streams stay independent.
func runFabric(t *testing.T, cfg campaign.Config, workers int, opts Options, transport func(*Coordinator) Transport) string {
	t.Helper()
	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(core, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w := &Worker{
				Transport:    transport(coord),
				ID:           "w" + string(rune('0'+slot)),
				RetryBackoff: time.Millisecond,
				MaxErrors:    1000, // chaos drops count as transport errors
			}
			errs[slot] = w.Run(ctx)
		}(i)
	}
	rep, waitErr := coord.Wait(ctx)
	wg.Wait()
	if waitErr != nil {
		t.Fatalf("coordinator: %v", waitErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return rep.Format()
}

func local(c *Coordinator) Transport { return &LocalTransport{C: c} }

// TestFabricEquivalenceMatrix crosses worker count x schedule x oracle
// batching over the loopback transport against the in-process baseline.
func TestFabricEquivalenceMatrix(t *testing.T) {
	want := inProcessBaseline(t, baseConfig())

	workerCounts := []int{1, 2, 4}
	schedules := []string{campaign.ScheduleFIFO, campaign.ScheduleCoverage, campaign.ScheduleRegion}
	batching := []bool{false, true}
	if testing.Short() {
		workerCounts = []int{2} // race CI: one parallel cell per axis
		schedules = []string{campaign.ScheduleFIFO}
		batching = []bool{false}
	}
	for _, workers := range workerCounts {
		for _, schedule := range schedules {
			for _, noBatch := range batching {
				cfg := baseConfig()
				cfg.Schedule = schedule
				cfg.NoOracleBatch = noBatch
				got := runFabric(t, cfg, workers, Options{LeaseTimeout: 30 * time.Second}, local)
				if got != want {
					t.Errorf("fabric report diverges (workers=%d schedule=%s noBatch=%v):\n--- fabric ---\n%s--- in-process ---\n%s",
						workers, schedule, noBatch, got, want)
				}
			}
		}
	}
}

// TestFabricRegionSchedule pins the region scheduler's fabric contract
// on a corpus where regions actually matter: the large multi-function
// region corpus file cuts into 16 scheduling regions, so leased TaskSpecs
// carry distinct region IDs and the coordinator's region scoring drives
// dispatch — while the merged report stays byte-identical to the
// in-process engine at any worker count.
func TestFabricRegionSchedule(t *testing.T) {
	cfg := campaign.Config{
		Corpus:             append([]string{corpus.RegionsSeed()}, corpus.Seeds()[:2]...),
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: 120,
		ShardSize:          4,
		Schedule:           campaign.ScheduleRegion,
	}
	want := inProcessBaseline(t, cfg)
	for _, workers := range []int{1, 2} {
		got := runFabric(t, cfg, workers, Options{LeaseTimeout: 30 * time.Second}, local)
		if got != want {
			t.Errorf("region fabric report diverges (workers=%d):\n--- fabric ---\n%s--- in-process ---\n%s",
				workers, got, want)
		}
	}
}

// TestFabricHTTPEquivalence runs the full protocol over a real TCP
// loopback listener — JSON encode/decode and HTTP framing included.
func TestFabricHTTPEquivalence(t *testing.T) {
	cfg := baseConfig()
	want := inProcessBaseline(t, cfg)

	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(core, Options{LeaseTimeout: 30 * time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w := &Worker{Transport: Dial(srv.URL), ID: "http-w", Parallelism: 2, RetryBackoff: time.Millisecond}
			errs[slot] = w.Run(ctx)
		}(i)
	}
	rep, waitErr := coord.Wait(ctx)
	wg.Wait()
	if waitErr != nil {
		t.Fatalf("coordinator: %v", waitErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := rep.Format(); got != want {
		t.Errorf("HTTP fabric report diverges:\n--- fabric ---\n%s--- in-process ---\n%s", got, want)
	}
}

// TestFabricCoordinatorKillAndResume kills the coordinator mid-campaign
// (cancel its context once the checkpoint shows merged progress), then
// resumes a fresh coordinator from the checkpoint and drains the rest
// with new workers. The final report must match the in-process baseline.
func TestFabricCoordinatorKillAndResume(t *testing.T) {
	cfg := baseConfig()
	want := inProcessBaseline(t, cfg)

	path := filepath.Join(t.TempDir(), "fabric.ckpt.json")
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 1

	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(core, Options{LeaseTimeout: 30 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck struct {
				NextSeq int
			}
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &Worker{Transport: local(coord), ID: "doomed", Parallelism: 2, RetryBackoff: time.Millisecond}
		w.Run(ctx) // exits on cancellation or campaign failure; either is fine here
	}()
	if _, err := coord.Wait(ctx); err == nil {
		t.Log("campaign completed before the kill; resume still replays the tail")
	}
	cancel()
	wg.Wait()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	core2, err := campaign.ResumeRemoteEngine(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord2 := NewCoordinator(core2, Options{LeaseTimeout: 30 * time.Second})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	var wg2 sync.WaitGroup
	var workerErr error
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		w := &Worker{Transport: local(coord2), ID: "resumer", Parallelism: 2, RetryBackoff: time.Millisecond}
		workerErr = w.Run(ctx2)
	}()
	rep, err := coord2.Wait(ctx2)
	wg2.Wait()
	if err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	if workerErr != nil {
		t.Fatalf("resumed worker: %v", workerErr)
	}
	if got := rep.Format(); got != want {
		t.Errorf("resumed fabric report diverges:\n--- resumed ---\n%s--- in-process ---\n%s", got, want)
	}
}

// TestFabricResumeInterchangeable pins checkpoint compatibility in the
// other direction: a fabric coordinator's checkpoint resumes as a plain
// in-process campaign.Resume.
func TestFabricResumeInterchangeable(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestFabricCoordinatorKillAndResume in -short CI")
	}
	cfg := baseConfig()
	want := inProcessBaseline(t, cfg)

	path := filepath.Join(t.TempDir(), "interop.ckpt.json")
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 1

	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(core, Options{LeaseTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			if data, err := os.ReadFile(path); err == nil {
				var ck struct {
					NextSeq int
				}
				if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 2 {
					cancel()
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &Worker{Transport: local(coord), ID: "interop", RetryBackoff: time.Millisecond}
		w.Run(ctx)
	}()
	coord.Wait(ctx)
	cancel()
	wg.Wait()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived: %v", err)
	}
	rep, err := campaign.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Format(); got != want {
		t.Errorf("in-process resume of fabric checkpoint diverges:\n--- resumed ---\n%s--- in-process ---\n%s", got, want)
	}
}
