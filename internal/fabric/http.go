package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler serves the fabric protocol: POST /fabric/v1/{join,lease,result}
// with JSON bodies. Mount it alongside the obs endpoints (cmd/spe serves
// both from one listener) or on its own server.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(apiPrefix+"join", handleJSON(c.Join))
	mux.HandleFunc(apiPrefix+"lease", handleJSON(c.Lease))
	mux.HandleFunc(apiPrefix+"result", handleJSON(c.Result))
	return mux
}

// handleJSON adapts one coordinator method to an HTTP endpoint.
func handleJSON[Req, Resp any](fn func(context.Context, *Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := fn(r.Context(), &req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}

// httpTransport is the worker-side client for a coordinator's Handler.
type httpTransport struct {
	base   string
	client *http.Client
}

// Dial returns a Transport speaking to the coordinator at addr
// ("host:port" or a full http:// URL). The client enforces no global
// timeout — lease execution windows are the protocol's deadline — but
// individual calls still honor their context.
func Dial(addr string) Transport {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &httpTransport{
		base:   base,
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 30 * time.Second}},
	}
}

func (t *httpTransport) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	return httpCall[JoinRequest, JoinResponse](ctx, t, "join", req)
}

func (t *httpTransport) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	return httpCall[LeaseRequest, LeaseResponse](ctx, t, "lease", req)
}

func (t *httpTransport) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	return httpCall[ResultRequest, ResultResponse](ctx, t, "result", req)
}

// httpCall posts one JSON request and decodes the JSON reply.
func httpCall[Req, Resp any](ctx context.Context, t *httpTransport, endpoint string, req *Req) (*Resp, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode %s: %w", endpoint, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+apiPrefix+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: %s request: %w", endpoint, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", endpoint, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4<<10))
		return nil, fmt.Errorf("fabric: %s: %s: %s", endpoint, hresp.Status, strings.TrimSpace(string(msg)))
	}
	var resp Resp
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("fabric: decode %s reply: %w", endpoint, err)
	}
	return &resp, nil
}
