package fabric

import (
	"context"
	"strings"
	"testing"
	"time"

	"spe/internal/campaign"
	"spe/internal/obs"
)

// Lease-semantics unit tests, driven straight through the coordinator's
// protocol methods — no Worker loop, so every transition is explicit:
// expiry re-dispatches the same seq, a zombie's duplicate result is
// discarded exactly once, and -max-retries exhaustion surfaces as a
// campaign error rather than a hang.

// tinyConfig keeps these protocol tests fast: one seed, a handful of
// shards.
func tinyConfig() campaign.Config {
	cfg := baseConfig()
	cfg.Corpus = cfg.Corpus[:1]
	cfg.MaxVariantsPerFile = 24
	return cfg
}

func newTestCoordinator(t *testing.T, cfg campaign.Config, opts Options) (*Coordinator, *campaign.Planner) {
	t.Helper()
	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := campaign.NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCoordinator(core, opts), planner
}

func mustLeaseTask(t *testing.T, c *Coordinator, worker string) *LeaseResponse {
	t.Helper()
	resp, err := c.Lease(context.Background(), &LeaseRequest{CampaignID: c.ID(), WorkerID: worker})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusTask {
		t.Fatalf("lease status = %q, want %q (err=%q)", resp.Status, StatusTask, resp.Err)
	}
	return resp
}

// TestLeaseExpiryRedispatch leases a task, lets the lease expire, and
// asserts the same seq is handed out again — to a different worker, with
// a fresh lease ID.
func TestLeaseExpiryRedispatch(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	coord, _ := newTestCoordinator(t, tinyConfig(), Options{LeaseTimeout: 20 * time.Millisecond, Metrics: m})

	first := mustLeaseTask(t, coord, "straggler")
	time.Sleep(30 * time.Millisecond) // past the deadline

	second := mustLeaseTask(t, coord, "replacement")
	if second.Spec.Seq != first.Spec.Seq {
		t.Fatalf("re-lease handed seq %d, want the expired seq %d", second.Spec.Seq, first.Spec.Seq)
	}
	if second.LeaseID == first.LeaseID {
		t.Fatal("re-lease reused the expired lease ID")
	}
	if n := m.expiries.Load(); n != 1 {
		t.Fatalf("expiries = %d, want 1", n)
	}
	if n := m.releases.Load(); n != 1 {
		t.Fatalf("re-leases = %d, want 1", n)
	}
}

// TestLeaseZombieDuplicateDiscarded delivers a shard result twice: the
// first (from an already-expired lease — content still wins) must merge,
// the second must be acknowledged but discarded.
func TestLeaseZombieDuplicateDiscarded(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	cfg := tinyConfig()
	coord, planner := newTestCoordinator(t, cfg, Options{LeaseTimeout: 20 * time.Millisecond, Metrics: m})

	l := mustLeaseTask(t, coord, "zombie")
	res, err := planner.RunSpec(context.Background(), l.Spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	coord.sweepExpired() // the zombie's lease is reclaimed before it reports

	req := &ResultRequest{CampaignID: coord.ID(), WorkerID: "zombie", LeaseID: l.LeaseID, Seq: l.Spec.Seq, Result: res}
	firstAck, err := coord.Result(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !firstAck.Accepted {
		t.Fatal("first result copy rejected; the merge should take content regardless of lease staleness")
	}
	secondAck, err := coord.Result(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if secondAck.Accepted {
		t.Fatal("duplicate result accepted twice; the merge would double-count")
	}
	if coord.Core().MergedTasks() != 1 {
		t.Fatalf("merged %d tasks, want exactly 1", coord.Core().MergedTasks())
	}
	if n := m.resultsDup.Load(); n != 1 {
		t.Fatalf("duplicate results = %d, want 1", n)
	}
}

// TestLeaseMaxRetriesExhaustion abandons the same task's lease
// repeatedly and asserts the campaign fails with an error naming the
// task — and that Wait returns it instead of hanging.
func TestLeaseMaxRetriesExhaustion(t *testing.T) {
	coord, _ := newTestCoordinator(t, tinyConfig(), Options{LeaseTimeout: 10 * time.Millisecond, MaxRetries: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	waitErr := make(chan error, 1)
	go func() {
		_, err := coord.Wait(ctx)
		waitErr <- err
	}()

	// lease the head task over and over, never reporting: each expiry
	// charges one retry until the budget (2) is exhausted
	deadline := time.Now().Add(10 * time.Second)
	for coord.Err() == nil && time.Now().Before(deadline) {
		resp, err := coord.Lease(context.Background(), &LeaseRequest{CampaignID: coord.ID(), WorkerID: "sinkhole"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusFailed {
			break
		}
		time.Sleep(15 * time.Millisecond)
	}

	select {
	case err := <-waitErr:
		if err == nil {
			t.Fatal("Wait returned nil after retries were exhausted")
		}
		if !strings.Contains(err.Error(), "giving up") {
			t.Fatalf("exhaustion error %q does not name the retry failure", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Wait hung after max-retries exhaustion")
	}

	// and the failure is terminal: further leases refuse with the error
	resp, err := coord.Lease(context.Background(), &LeaseRequest{CampaignID: coord.ID(), WorkerID: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusFailed || resp.Err == "" {
		t.Fatalf("post-failure lease = %+v, want StatusFailed with the campaign error", resp)
	}
}

// TestLeaseWorkerReportedFailureRetries charges the retry budget through
// the other path: the worker reports a shard error instead of going
// silent. The task must re-lease, and exhaustion must fail the campaign.
func TestLeaseWorkerReportedFailureRetries(t *testing.T) {
	coord, _ := newTestCoordinator(t, tinyConfig(), Options{LeaseTimeout: time.Minute, MaxRetries: 1})

	l := mustLeaseTask(t, coord, "flaky")
	ack, err := coord.Result(context.Background(), &ResultRequest{
		CampaignID: coord.ID(), WorkerID: "flaky", LeaseID: l.LeaseID, Seq: l.Spec.Seq, Err: "simulated shard failure",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Failed {
		t.Fatal("first failure exhausted a budget of 1")
	}

	release := mustLeaseTask(t, coord, "flaky")
	if release.Spec.Seq != l.Spec.Seq {
		t.Fatalf("after worker failure the re-lease handed seq %d, want %d", release.Spec.Seq, l.Spec.Seq)
	}
	ack, err = coord.Result(context.Background(), &ResultRequest{
		CampaignID: coord.ID(), WorkerID: "flaky", LeaseID: release.LeaseID, Seq: release.Spec.Seq, Err: "simulated shard failure",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Failed {
		t.Fatal("second failure should exhaust MaxRetries=1 and fail the campaign")
	}
	if coord.Err() == nil {
		t.Fatal("campaign error not recorded")
	}
}

// TestLeaseWrongCampaignRejected pins the campaign-ID fence that keeps a
// worker from a previous coordinator out of this one's merge.
func TestLeaseWrongCampaignRejected(t *testing.T) {
	coord, _ := newTestCoordinator(t, tinyConfig(), Options{})
	if _, err := coord.Lease(context.Background(), &LeaseRequest{CampaignID: "stale", WorkerID: "ghost"}); err == nil {
		t.Fatal("lease for a stale campaign ID accepted")
	}
	if _, err := coord.Result(context.Background(), &ResultRequest{CampaignID: "stale", WorkerID: "ghost"}); err == nil {
		t.Fatal("result for a stale campaign ID accepted")
	}
}

// TestLeaseWindowRecovers pins the liveness property behind re-leasing:
// even with the dispatch window fully leased out, an expiry hands the
// head task back without consuming a fresh window slot, so the window
// can never wedge shut.
func TestLeaseWindowRecovers(t *testing.T) {
	cfg := baseConfig() // enough shards to overfill the smallest window
	cfg.Workers = 1     // withDefaults floors Lookahead at 8*Workers
	coord, _ := newTestCoordinator(t, cfg, Options{LeaseTimeout: 20 * time.Millisecond, MaxRetries: -1})

	// fill the dispatch window
	granted := map[int]bool{}
	lowest := -1
	for {
		resp, err := coord.Lease(context.Background(), &LeaseRequest{CampaignID: coord.ID(), WorkerID: "w1"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusWait {
			break
		}
		if resp.Status != StatusTask {
			t.Fatalf("lease status = %q", resp.Status)
		}
		granted[resp.Spec.Seq] = true
		if lowest == -1 || resp.Spec.Seq < lowest {
			lowest = resp.Spec.Seq
		}
	}
	if len(granted) == 0 {
		t.Fatal("window admitted no leases")
	}

	time.Sleep(30 * time.Millisecond) // every lease expires

	// the full window must recover: each expired seq re-leases (head of
	// line first) without consuming a fresh window slot
	re := mustLeaseTask(t, coord, "w2")
	if re.Spec.Seq != lowest {
		t.Fatalf("first re-lease handed seq %d, want the head-of-line %d", re.Spec.Seq, lowest)
	}
	reled := map[int]bool{re.Spec.Seq: true}
	for i := 1; i < len(granted); i++ {
		r := mustLeaseTask(t, coord, "w2")
		if !granted[r.Spec.Seq] {
			t.Fatalf("re-lease handed fresh seq %d while expired tasks wait", r.Spec.Seq)
		}
		reled[r.Spec.Seq] = true
	}
	if len(reled) != len(granted) {
		t.Fatalf("re-leased %d distinct seqs, want all %d expired ones", len(reled), len(granted))
	}
}

// TestLeaseBatchedGrants asks for two tasks in one round trip and
// asserts the batch carries two distinct leases whose legacy
// Spec/LeaseID mirror fields duplicate the first grant (what a
// pre-batching worker reads); a request without Max still gets exactly
// one grant. tinyConfig cuts exactly three shard tasks, so the batch
// leaves one for the legacy request.
func TestLeaseBatchedGrants(t *testing.T) {
	coord, _ := newTestCoordinator(t, tinyConfig(), Options{LeaseTimeout: time.Minute})

	resp, err := coord.Lease(context.Background(), &LeaseRequest{CampaignID: coord.ID(), WorkerID: "batch", Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusTask {
		t.Fatalf("lease status = %q, want %q", resp.Status, StatusTask)
	}
	if len(resp.Grants) != 2 {
		t.Fatalf("got %d grants, want 2", len(resp.Grants))
	}
	if resp.Spec.Seq != resp.Grants[0].Spec.Seq || resp.LeaseID != resp.Grants[0].LeaseID {
		t.Fatalf("legacy fields (seq %d, lease %q) do not mirror the first grant (seq %d, lease %q)",
			resp.Spec.Seq, resp.LeaseID, resp.Grants[0].Spec.Seq, resp.Grants[0].LeaseID)
	}
	seqs := map[int]bool{}
	leases := map[string]bool{}
	for _, g := range resp.Grants {
		seqs[g.Spec.Seq] = true
		leases[g.LeaseID] = true
	}
	if len(seqs) != 2 || len(leases) != 2 {
		t.Fatalf("grants not distinct: %d seqs, %d lease IDs", len(seqs), len(leases))
	}
	if coord.ActiveLeases() != 2 {
		t.Fatalf("ActiveLeases = %d, want 2", coord.ActiveLeases())
	}

	// a legacy request (no Max) gets exactly one grant
	legacy := mustLeaseTask(t, coord, "legacy")
	if len(legacy.Grants) != 1 {
		t.Fatalf("legacy request got %d grants, want 1", len(legacy.Grants))
	}
	if seqs[legacy.Spec.Seq] {
		t.Fatalf("legacy grant re-issued an already-leased seq %d", legacy.Spec.Seq)
	}
}
