package fabric

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spe/internal/campaign"
)

// Fault-injection matrix: every chaos scenario — dropped requests,
// dropped replies (results land but acks are lost, forcing duplicate
// delivery), duplicated calls, random delays (reordering across
// workers), and a worker that dies mid-shard — must still produce a
// report byte-identical to the in-process engine. Retries are unlimited
// under chaos (MaxRetries: -1): the contract under test is determinism,
// not the retry budget (lease_test.go pins that).

// chaosFactory hands each worker its own deterministic fault stream
// (workers build their transports concurrently, hence the atomic).
func chaosFactory(seed *int64, chaos ChaosConfig) func(*Coordinator) Transport {
	return func(c *Coordinator) Transport {
		cfg := chaos
		cfg.Seed = atomic.AddInt64(seed, 1)
		return NewChaos(&LocalTransport{C: c}, cfg)
	}
}

// TestFabricChaosMatrix runs each fault class alone and then all of them
// together, 2 workers each, short leases so orphaned grants re-lease
// quickly.
func TestFabricChaosMatrix(t *testing.T) {
	want := inProcessBaseline(t, baseConfig())

	scenarios := []struct {
		name  string
		chaos ChaosConfig
	}{
		{"drop-requests", ChaosConfig{DropRequest: 0.2}},
		{"drop-replies", ChaosConfig{DropReply: 0.2}},
		{"duplicates", ChaosConfig{Duplicate: 0.2}},
		{"delays-reorder", ChaosConfig{MaxDelay: 3 * time.Millisecond}},
		{"everything", ChaosConfig{DropRequest: 0.1, DropReply: 0.1, Duplicate: 0.1, MaxDelay: 2 * time.Millisecond}},
	}
	if testing.Short() {
		scenarios = scenarios[len(scenarios)-1:] // race CI: the combined scenario subsumes the rest
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seed := int64(1)
			opts := Options{LeaseTimeout: 250 * time.Millisecond, MaxRetries: -1}
			got := runFabric(t, baseConfig(), 2, opts, chaosFactory(&seed, sc.chaos))
			if got != want {
				t.Errorf("chaos %s diverges from in-process baseline:\n--- fabric ---\n%s--- in-process ---\n%s",
					sc.name, got, want)
			}
		})
	}
}

// deadlyTransport kills its worker mid-shard: the first leased task is
// accepted and then the transport reports the worker dead (every
// subsequent call fails), so the shard is never reported and must be
// re-leased to a survivor.
type deadlyTransport struct {
	inner Transport
	mu    sync.Mutex
	dead  bool
}

func (d *deadlyTransport) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	return d.inner.Join(ctx, req)
}

func (d *deadlyTransport) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return nil, context.Canceled
	}
	d.mu.Unlock()
	resp, err := d.inner.Lease(ctx, req)
	if err == nil && resp.Status == StatusTask {
		// took the lease to the grave: die before executing
		d.mu.Lock()
		d.dead = true
		d.mu.Unlock()
		return nil, context.Canceled
	}
	return resp, err
}

func (d *deadlyTransport) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return nil, context.Canceled
	}
	d.mu.Unlock()
	return d.inner.Result(ctx, req)
}

// TestFabricWorkerDiesMidShard pairs one worker that takes a lease and
// dies with one healthy worker. The dead worker's lease must expire and
// re-dispatch, and the report must stay byte-identical.
func TestFabricWorkerDiesMidShard(t *testing.T) {
	want := inProcessBaseline(t, baseConfig())

	core, err := campaign.NewRemoteEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(core, Options{LeaseTimeout: 100 * time.Millisecond, MaxRetries: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(2)
	var healthyErr error
	go func() {
		defer wg.Done()
		w := &Worker{Transport: &deadlyTransport{inner: local(coord)}, ID: "victim", RetryBackoff: time.Millisecond, MaxErrors: 3}
		w.Run(ctx) // dies by design; its error is the point
	}()
	go func() {
		defer wg.Done()
		w := &Worker{Transport: local(coord), ID: "survivor", Parallelism: 2, RetryBackoff: time.Millisecond}
		healthyErr = w.Run(ctx)
	}()
	rep, waitErr := coord.Wait(ctx)
	wg.Wait()
	if waitErr != nil {
		t.Fatalf("coordinator: %v", waitErr)
	}
	if healthyErr != nil {
		t.Fatalf("surviving worker: %v", healthyErr)
	}
	if got := rep.Format(); got != want {
		t.Errorf("report diverges after mid-shard worker death:\n--- fabric ---\n%s--- in-process ---\n%s", got, want)
	}
}

// zombieTransport executes its shard but reports the result twice — the
// second copy arriving after the coordinator already merged the first
// (the classic zombie worker whose lease expired and whose task was
// re-run elsewhere in real deployments).
type zombieTransport struct {
	inner Transport
}

func (z *zombieTransport) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	return z.inner.Join(ctx, req)
}

func (z *zombieTransport) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	return z.inner.Lease(ctx, req)
}

func (z *zombieTransport) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	resp, err := z.inner.Result(ctx, req)
	if err != nil {
		return resp, err
	}
	if again, err2 := z.inner.Result(ctx, req); err2 == nil && again.Accepted {
		// the duplicate must be discarded, never merged twice
		return nil, context.Canceled
	}
	return resp, err
}

// TestFabricZombieResultDiscarded sends every shard result twice and
// asserts the duplicates are all discarded (the zombieTransport turns an
// accepted duplicate into a transport failure, which would blow the
// worker's MaxErrors) while the report stays byte-identical.
func TestFabricZombieResultDiscarded(t *testing.T) {
	want := inProcessBaseline(t, baseConfig())
	got := runFabric(t, baseConfig(), 2, Options{LeaseTimeout: 30 * time.Second},
		func(c *Coordinator) Transport { return &zombieTransport{inner: local(c)} })
	if got != want {
		t.Errorf("report diverges with zombie duplicate results:\n--- fabric ---\n%s--- in-process ---\n%s", got, want)
	}
}
