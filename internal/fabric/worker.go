package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spe/internal/campaign"
)

// Worker drains shard leases from a coordinator. It is thin by design:
// the plan comes from campaign.NewPlanner on the joined Config, and every
// leased shard runs through Planner.RunSpec — the same pooled,
// batched execution path the in-process engine uses — so distributed and
// local campaigns share one code path below the lease loop.
//
// One lease loop serves all execution slots: each round trip reports how
// many slots are free (LeaseRequest.Max) and the coordinator grants up to
// that many tasks at once, so a worker with N idle slots pays one HTTP
// round trip instead of N.
type Worker struct {
	// Transport carries the fabric calls (Dial for HTTP, LocalTransport
	// for loopback, Chaos to inject faults around either).
	Transport Transport
	// ID names this worker in leases and liveness tracking; defaults to
	// "worker".
	ID string
	// Parallelism is how many shard leases this process drains
	// concurrently; zero means 1. (The campaign Config's Workers field
	// sizes the coordinator's dispatch window, not this.)
	Parallelism int
	// RetryBackoff paces wait polls and transport-error retries when the
	// coordinator does not say otherwise; zero means 20ms.
	RetryBackoff time.Duration
	// MaxErrors bounds consecutive transport failures per loop before the
	// worker gives up; zero means 10.
	MaxErrors int
}

// errCampaignOver signals a clean exit.
var errCampaignOver = errors.New("fabric: campaign complete")

// Run joins the coordinator, derives the local plan, and drains leases
// until the campaign completes, fails, or ctx is canceled. A clean
// completion returns nil; campaign failure returns the coordinator's
// error; cancellation returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	id := w.ID
	if id == "" {
		id = "worker"
	}
	parallelism := w.Parallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	backoff := w.RetryBackoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	maxErrs := w.MaxErrors
	if maxErrs <= 0 {
		maxErrs = 10
	}

	join, err := w.join(ctx, id, backoff, maxErrs)
	if err != nil {
		return err
	}
	planner, err := campaign.NewPlanner(join.Config)
	if err != nil {
		return fmt.Errorf("fabric: worker %s: plan from joined config: %w", id, err)
	}
	if planner.TotalTasks() != join.TotalTasks {
		return fmt.Errorf("fabric: worker %s derives %d tasks, coordinator has %d: corpus or config drift",
			id, planner.TotalTasks(), join.TotalTasks)
	}
	return w.drain(ctx, join.CampaignID, id, planner, parallelism, backoff, maxErrs)
}

// join performs the handshake, retrying transport errors.
func (w *Worker) join(ctx context.Context, id string, backoff time.Duration, maxErrs int) (*JoinResponse, error) {
	var lastErr error
	for attempt := 0; attempt < maxErrs; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := w.Transport.Join(ctx, &JoinRequest{WorkerID: id})
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !sleepCtx(ctx, backoff) {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("fabric: worker %s: join: %w", id, lastErr)
}

// drain is the single batched lease loop. Execution slots are semaphore
// tokens: the loop blocks until at least one slot frees, drains whatever
// others are free without blocking, asks for that many tasks in one
// lease call, and hands each grant to its own executor goroutine (which
// returns its token on completion). Unused slots from a short grant go
// straight back. The first terminal outcome — campaign done, campaign
// failure, or transport exhaustion — cancels everything.
func (w *Worker) drain(parent context.Context, campaignID, id string, planner *campaign.Planner, parallelism int, backoff time.Duration, maxErrs int) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	tokens := make(chan struct{}, parallelism)
	for i := 0; i < parallelism; i++ {
		tokens <- struct{}{}
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		loopErr error
	)
	// record notes a terminal outcome and stops the loop. A real failure
	// outranks the benign errCampaignOver; cancellation noise from
	// executors aborted by that very stop is ignored (the parent context
	// check at exit reports genuine cancellation).
	record := func(err error) {
		if err == nil || errors.Is(err, context.Canceled) {
			return
		}
		mu.Lock()
		if loopErr == nil || (errors.Is(loopErr, errCampaignOver) && !errors.Is(err, errCampaignOver)) {
			loopErr = err
		}
		mu.Unlock()
		cancel()
	}
	refund := func(n int) {
		for i := 0; i < n; i++ {
			tokens <- struct{}{}
		}
	}

	consecutive := 0
loop:
	for {
		// block until one slot frees, then drain the rest non-blocking
		select {
		case <-ctx.Done():
			break loop
		case <-tokens:
		}
		free := 1
	drainSlots:
		for free < parallelism {
			select {
			case <-tokens:
				free++
			default:
				break drainSlots
			}
		}
		resp, err := w.Transport.Lease(ctx, &LeaseRequest{CampaignID: campaignID, WorkerID: id, Max: free})
		if err != nil {
			refund(free)
			consecutive++
			if consecutive >= maxErrs {
				record(fmt.Errorf("fabric: worker %s: lease: %w", id, err))
				break loop
			}
			if !sleepCtx(ctx, backoff) {
				break loop
			}
			continue
		}
		consecutive = 0
		switch resp.Status {
		case StatusDone:
			refund(free)
			record(errCampaignOver)
			break loop
		case StatusFailed:
			refund(free)
			record(fmt.Errorf("fabric: campaign failed: %s", resp.Err))
			break loop
		case StatusWait:
			refund(free)
			wait := time.Duration(resp.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = backoff
			}
			if !sleepCtx(ctx, wait) {
				break loop
			}
		case StatusTask:
			grants := resp.Grants
			if len(grants) == 0 {
				// pre-batching coordinator: single grant in legacy fields
				grants = []LeaseGrant{{Spec: resp.Spec, LeaseID: resp.LeaseID}}
			}
			if len(grants) > free {
				// over-grant from a misbehaving coordinator: run what fits,
				// let the excess leases expire and re-lease harmlessly
				grants = grants[:free]
			}
			refund(free - len(grants))
			for _, g := range grants {
				wg.Add(1)
				go func(g LeaseGrant) {
					defer wg.Done()
					defer refund(1)
					record(w.execute(ctx, campaignID, id, planner, g, backoff, maxErrs))
				}(g)
			}
		default:
			refund(free)
			record(fmt.Errorf("fabric: worker %s: unknown lease status %q", id, resp.Status))
			break loop
		}
	}
	wg.Wait()
	mu.Lock()
	err := loopErr
	mu.Unlock()
	if err != nil && !errors.Is(err, errCampaignOver) {
		return err
	}
	return parent.Err()
}

// execute runs one leased shard and reports the outcome. A worker-side
// shard error is reported to the coordinator (it charges a retry and
// re-leases); it returns errCampaignOver when the report confirms the
// campaign completed, a terminal error on transport exhaustion or
// campaign failure, and nil when the loop should simply continue.
func (w *Worker) execute(ctx context.Context, campaignID, id string, planner *campaign.Planner, g LeaseGrant, backoff time.Duration, maxErrs int) error {
	res, runErr := planner.RunSpec(ctx, g.Spec)
	if runErr != nil && ctx.Err() != nil {
		// canceled mid-shard: exit quietly, the lease will expire and the
		// task re-leases elsewhere
		return ctx.Err()
	}
	req := &ResultRequest{CampaignID: campaignID, WorkerID: id, LeaseID: g.LeaseID, Seq: g.Spec.Seq}
	if runErr != nil {
		req.Err = runErr.Error()
	} else {
		req.Result = res
	}
	consecutive := 0
	for {
		resp, err := w.Transport.Result(ctx, req)
		if err != nil {
			consecutive++
			if consecutive >= maxErrs {
				return fmt.Errorf("fabric: worker %s: report task %d: %w", id, g.Spec.Seq, err)
			}
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			continue // retried reports are how duplicate delivery happens; Deliver discards them
		}
		if resp.Failed {
			return fmt.Errorf("fabric: campaign failed: %s", resp.Err)
		}
		if resp.Done {
			return errCampaignOver
		}
		return nil
	}
}

// sleepCtx sleeps d unless ctx ends first; reports whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
