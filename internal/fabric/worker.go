package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spe/internal/campaign"
)

// Worker drains shard leases from a coordinator. It is thin by design:
// the plan comes from campaign.NewPlanner on the joined Config, and every
// leased shard runs through Planner.RunSpec — the same pooled,
// batched execution path the in-process engine uses — so distributed and
// local campaigns share one code path below the lease loop.
type Worker struct {
	// Transport carries the fabric calls (Dial for HTTP, LocalTransport
	// for loopback, Chaos to inject faults around either).
	Transport Transport
	// ID names this worker in leases and liveness tracking; defaults to
	// "worker".
	ID string
	// Parallelism is how many shard leases this process drains
	// concurrently; zero means 1. (The campaign Config's Workers field
	// sizes the coordinator's dispatch window, not this.)
	Parallelism int
	// RetryBackoff paces wait polls and transport-error retries when the
	// coordinator does not say otherwise; zero means 20ms.
	RetryBackoff time.Duration
	// MaxErrors bounds consecutive transport failures per loop before the
	// worker gives up; zero means 10.
	MaxErrors int
}

// errCampaignOver signals a clean per-goroutine exit.
var errCampaignOver = errors.New("fabric: campaign complete")

// Run joins the coordinator, derives the local plan, and drains leases
// until the campaign completes, fails, or ctx is canceled. A clean
// completion returns nil; campaign failure returns the coordinator's
// error; cancellation returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	id := w.ID
	if id == "" {
		id = "worker"
	}
	parallelism := w.Parallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	backoff := w.RetryBackoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	maxErrs := w.MaxErrors
	if maxErrs <= 0 {
		maxErrs = 10
	}

	join, err := w.join(ctx, id, backoff, maxErrs)
	if err != nil {
		return err
	}
	planner, err := campaign.NewPlanner(join.Config)
	if err != nil {
		return fmt.Errorf("fabric: worker %s: plan from joined config: %w", id, err)
	}
	if planner.TotalTasks() != join.TotalTasks {
		return fmt.Errorf("fabric: worker %s derives %d tasks, coordinator has %d: corpus or config drift",
			id, planner.TotalTasks(), join.TotalTasks)
	}

	var wg sync.WaitGroup
	errs := make([]error, parallelism)
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.drain(ctx, join.CampaignID, fmt.Sprintf("%s/%d", id, slot), planner, backoff, maxErrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, errCampaignOver) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// join performs the handshake, retrying transport errors.
func (w *Worker) join(ctx context.Context, id string, backoff time.Duration, maxErrs int) (*JoinResponse, error) {
	var lastErr error
	for attempt := 0; attempt < maxErrs; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := w.Transport.Join(ctx, &JoinRequest{WorkerID: id})
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !sleepCtx(ctx, backoff) {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("fabric: worker %s: join: %w", id, lastErr)
}

// drain is one lease loop: lease, execute, report, repeat.
func (w *Worker) drain(ctx context.Context, campaignID, slotID string, planner *campaign.Planner, backoff time.Duration, maxErrs int) error {
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Transport.Lease(ctx, &LeaseRequest{CampaignID: campaignID, WorkerID: slotID})
		if err != nil {
			consecutive++
			if consecutive >= maxErrs {
				return fmt.Errorf("fabric: worker %s: lease: %w", slotID, err)
			}
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch resp.Status {
		case StatusDone:
			return errCampaignOver
		case StatusFailed:
			return fmt.Errorf("fabric: campaign failed: %s", resp.Err)
		case StatusWait:
			wait := time.Duration(resp.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = backoff
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		case StatusTask:
			if err := w.execute(ctx, campaignID, slotID, planner, resp, backoff, maxErrs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fabric: worker %s: unknown lease status %q", slotID, resp.Status)
		}
	}
}

// execute runs one leased shard and reports the outcome. A worker-side
// shard error is reported to the coordinator (it charges a retry and
// re-leases); only transport exhaustion and cancellation abort the loop.
func (w *Worker) execute(ctx context.Context, campaignID, slotID string, planner *campaign.Planner, l *LeaseResponse, backoff time.Duration, maxErrs int) error {
	res, runErr := planner.RunSpec(ctx, l.Spec)
	if runErr != nil && ctx.Err() != nil {
		// canceled mid-shard: exit quietly, the lease will expire and the
		// task re-leases elsewhere
		return ctx.Err()
	}
	req := &ResultRequest{CampaignID: campaignID, WorkerID: slotID, LeaseID: l.LeaseID, Seq: l.Spec.Seq}
	if runErr != nil {
		req.Err = runErr.Error()
	} else {
		req.Result = res
	}
	consecutive := 0
	for {
		resp, err := w.Transport.Result(ctx, req)
		if err != nil {
			consecutive++
			if consecutive >= maxErrs {
				return fmt.Errorf("fabric: worker %s: report task %d: %w", slotID, l.Spec.Seq, err)
			}
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			continue // retried reports are how duplicate delivery happens; Deliver discards them
		}
		if resp.Failed {
			return fmt.Errorf("fabric: campaign failed: %s", resp.Err)
		}
		if resp.Done {
			return errCampaignOver
		}
		return nil
	}
}

// sleepCtx sleeps d unless ctx ends first; reports whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
