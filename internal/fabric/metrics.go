package fabric

import "spe/internal/obs"

// Metrics is the fabric's observability surface, registered alongside
// the campaign telemetry so one /metrics scrape covers the whole
// coordinator. Like campaign.Telemetry it is inert by contract: every
// recording site is nil-guarded, recording is atomic, and no fabric
// decision reads a metric back.
type Metrics struct {
	reg           *obs.Registry
	leasesGranted *obs.Counter
	releases      *obs.Counter
	expiries      *obs.Counter
	workerErrors  *obs.Counter
	resultsOK     *obs.Counter
	resultsDup    *obs.Counter
	waitPolls     *obs.Counter
}

// NewMetrics registers the fabric metric set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg:           reg,
		leasesGranted: reg.Counter("spe_fabric_leases_granted_total", "Shard leases handed to workers (re-leases included)."),
		releases:      reg.Counter("spe_fabric_re_leases_total", "Leases that re-dispatched a previously leased task after an expiry or worker failure."),
		expiries:      reg.Counter("spe_fabric_lease_expiries_total", "Leases that exceeded their deadline (straggler or dead worker) and were reclaimed."),
		workerErrors:  reg.Counter("spe_fabric_worker_errors_total", "Worker-reported shard execution failures."),
		resultsOK:     reg.Counter("spe_fabric_results_total", "Shard results folded into the campaign.", obs.L("status", "accepted")),
		resultsDup:    reg.Counter("spe_fabric_results_total", "Shard results folded into the campaign.", obs.L("status", "duplicate")),
		waitPolls:     reg.Counter("spe_fabric_wait_polls_total", "Lease requests answered with wait (window full or tail drain)."),
	}
}

// observeCoordinator registers the liveness gauges, which read the
// coordinator's own lease table at scrape time instead of mirroring it
// on the serving path.
func (m *Metrics) observeCoordinator(c *Coordinator) {
	if m == nil {
		return
	}
	reg := m.registry()
	if reg == nil {
		return
	}
	reg.GaugeFunc("spe_fabric_active_leases", "Unexpired outstanding shard leases.", func() float64 {
		return float64(c.ActiveLeases())
	})
	reg.GaugeFunc("spe_fabric_workers_live", "Workers seen within two lease timeouts.", func() float64 {
		return float64(c.LiveWorkers())
	})
}

// registry is unavailable from counters, so Metrics carries it for the
// gauge hookup.
func (m *Metrics) registry() *obs.Registry { return m.reg }

func (m *Metrics) incLeases() {
	if m != nil {
		m.leasesGranted.Inc()
	}
}

func (m *Metrics) incReleases() {
	if m != nil {
		m.releases.Inc()
	}
}

func (m *Metrics) incExpiries() {
	if m != nil {
		m.expiries.Inc()
	}
}

func (m *Metrics) incWorkerErrors() {
	if m != nil {
		m.workerErrors.Inc()
	}
}

func (m *Metrics) incResults(accepted bool) {
	if m == nil {
		return
	}
	if accepted {
		m.resultsOK.Inc()
	} else {
		m.resultsDup.Inc()
	}
}

func (m *Metrics) incWaitPolls() {
	if m != nil {
		m.waitPolls.Inc()
	}
}
