package fabric

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// LocalTransport wires a worker straight to an in-process coordinator —
// the loopback fabric used by the equivalence tests and the spebench
// fabric experiment's baseline.
type LocalTransport struct {
	C *Coordinator
}

func (t *LocalTransport) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	return t.C.Join(ctx, req)
}

func (t *LocalTransport) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	return t.C.Lease(ctx, req)
}

func (t *LocalTransport) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	return t.C.Result(ctx, req)
}

// ErrChaosDrop is the injected transport failure.
var ErrChaosDrop = errors.New("fabric: chaos: message dropped")

// Chaos wraps a Transport with deterministic fault injection for the
// byte-identity tests: requests vanish before the coordinator sees them,
// replies vanish after it acted (so results land but their acks are
// lost, forcing duplicate delivery), calls are duplicated outright, and
// random delays reorder messages across concurrent workers. Join is left
// reliable — the handshake carries no campaign state, so faulting it
// only exercises the worker's generic retry.
//
// The wrapped faults compose with lease expiry: a dropped Lease reply
// leaves an orphaned lease the coordinator must expire and re-lease.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// ChaosConfig tunes the injected fault mix.
type ChaosConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// DropRequest is the probability a call is dropped before delivery.
	DropRequest float64
	// DropReply is the probability a reply is dropped after the
	// coordinator acted.
	DropReply float64
	// Duplicate is the probability a call is delivered twice (the first
	// reply discarded).
	Duplicate float64
	// MaxDelay, when positive, sleeps a uniform random duration up to
	// this before each delivery, reordering messages across workers.
	MaxDelay time.Duration
}

// NewChaos wraps inner with the given fault mix.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// roll draws the fault decisions for one call under the lock, so
// concurrent workers see one deterministic fault sequence.
func (c *Chaos) roll() (dropReq, dropReply, dup bool, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropReq = c.rng.Float64() < c.cfg.DropRequest
	dropReply = c.rng.Float64() < c.cfg.DropReply
	dup = c.rng.Float64() < c.cfg.Duplicate
	if c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay) + 1))
	}
	return
}

func (c *Chaos) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	return c.inner.Join(ctx, req)
}

func (c *Chaos) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	return chaosCall(ctx, c, req, c.inner.Lease)
}

func (c *Chaos) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	return chaosCall(ctx, c, req, c.inner.Result)
}

// chaosCall applies one call's drawn faults around fn.
func chaosCall[Req, Resp any](ctx context.Context, c *Chaos, req Req, fn func(context.Context, Req) (Resp, error)) (Resp, error) {
	var zero Resp
	dropReq, dropReply, dup, delay := c.roll()
	if delay > 0 && !sleepCtx(ctx, delay) {
		return zero, ctx.Err()
	}
	if dropReq {
		return zero, ErrChaosDrop
	}
	if dup {
		// the duplicated send: the coordinator processes it, the "network"
		// loses the reply, and the retry below is the copy that survives
		if _, err := fn(ctx, req); err != nil {
			return zero, err
		}
	}
	resp, err := fn(ctx, req)
	if err != nil {
		return zero, err
	}
	if dropReply {
		return zero, ErrChaosDrop
	}
	return resp, nil
}
