// Package fabric distributes one campaign across a coordinator and a
// fleet of workers over HTTP+JSON (net/http only — zero new deps).
//
// The split rides the campaign package's remote bridge: the coordinator
// owns a campaign.RemoteEngine (plan, coverage-steered dispatch, the
// seq-ordered aggregator, checkpointing) and leases serialized shard
// tasks to workers with deadlines; workers own campaign.Planners (the
// identical plan derived locally from the Config carried by the join
// handshake) and execute leased shards through the exact code path the
// in-process engine uses. Only campaign.TaskSpec and campaign.ShardResult
// cross the wire.
//
// Determinism contract: a shard's result is a pure function of its
// TaskSpec and the shared Config, the merge consumes results strictly in
// canonical seq order, and the engine accepts each seq exactly once — so
// worker count, lease timing, message loss, duplication, reordering, and
// re-execution after a crash cannot change a byte of the final Report.
// The fault-injection tests in this package pin that equivalence against
// the in-process engine.
//
// Fault model and lease semantics:
//
//   - A lease is (task seq, worker, deadline). Expired leases are handed
//     back to the engine and re-leased lowest-seq-first without consuming
//     a fresh dispatch-window slot, so a full window can always recover.
//   - The first result delivered for a seq wins, whether or not its lease
//     is still current; later copies (zombie workers, retried messages)
//     are acknowledged and discarded.
//   - Each expiry or worker-reported shard failure counts one retry for
//     that seq. When a seq exceeds MaxRetries the campaign fails with an
//     error (never a hang); in-flight progress is checkpointed.
package fabric

import (
	"context"

	"spe/internal/campaign"
)

// Protocol version prefix for the HTTP endpoints.
const apiPrefix = "/fabric/v1/"

// JoinRequest introduces a worker to the coordinator.
type JoinRequest struct {
	WorkerID string `json:"worker"`
}

// JoinResponse hands the worker everything it needs to plan locally: the
// coordinator's resolved Config (the plan is a pure function of it), the
// expected task count for early drift detection, and the lease deadline
// the worker should stay within.
type JoinResponse struct {
	CampaignID     string          `json:"campaign"`
	Config         campaign.Config `json:"config"`
	TotalTasks     int             `json:"total_tasks"`
	LeaseTimeoutMs int64           `json:"lease_timeout_ms"`
}

// Lease statuses.
const (
	// StatusTask carries a leased shard task.
	StatusTask = "task"
	// StatusWait means nothing is leasable right now (window full or all
	// remaining tasks leased); poll again after RetryAfterMs.
	StatusWait = "wait"
	// StatusDone means every shard has merged; the worker may exit.
	StatusDone = "done"
	// StatusFailed means the campaign failed; Err says why.
	StatusFailed = "failed"
)

// LeaseRequest asks for shard tasks.
type LeaseRequest struct {
	CampaignID string `json:"campaign"`
	WorkerID   string `json:"worker"`
	// Max is how many tasks the worker can start right now (its free
	// execution slots), letting the coordinator grant a whole batch in
	// one round trip instead of one lease per HTTP call. Zero or absent
	// (an older worker) means one.
	Max int `json:"max,omitempty"`
}

// LeaseGrant is one leased shard task inside a (possibly batched)
// LeaseResponse.
type LeaseGrant struct {
	Spec    campaign.TaskSpec `json:"spec"`
	LeaseID string            `json:"lease"`
}

// LeaseResponse grants one or more leases or tells the worker what to do
// instead. On StatusTask the batched Grants slice carries every grant;
// the legacy Spec/LeaseID fields duplicate the first grant so older
// workers (which ignore Grants) keep working against a newer coordinator.
type LeaseResponse struct {
	Status       string            `json:"status"`
	Spec         campaign.TaskSpec `json:"spec,omitempty"`
	LeaseID      string            `json:"lease,omitempty"`
	Grants       []LeaseGrant      `json:"grants,omitempty"`
	RetryAfterMs int64             `json:"retry_after_ms,omitempty"`
	Err          string            `json:"err,omitempty"`
}

// ResultRequest reports a finished (or failed) shard back under a lease.
type ResultRequest struct {
	CampaignID string `json:"campaign"`
	WorkerID   string `json:"worker"`
	LeaseID    string `json:"lease"`
	Seq        int    `json:"seq"`
	// Result is the shard outcome; nil when Err is set.
	Result *campaign.ShardResult `json:"result,omitempty"`
	// Err reports a worker-side shard failure (counts a retry for the seq).
	Err string `json:"err,omitempty"`
}

// ResultResponse acknowledges a result.
type ResultResponse struct {
	// Accepted is false for duplicates (harmless — the first copy merged).
	Accepted bool `json:"accepted"`
	// Done reports whether the campaign completed with this result.
	Done bool `json:"done"`
	// Failed reports that the campaign has failed; the worker should exit.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Transport carries the three fabric calls from a worker to its
// coordinator. Implementations: LocalTransport (direct calls, loopback
// tests), Dial's HTTP client, and Chaos (fault injection around either).
type Transport interface {
	Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error)
	Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error)
	Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error)
}
