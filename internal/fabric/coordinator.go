package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"spe/internal/campaign"
)

// Options tunes the coordinator's lease discipline.
type Options struct {
	// LeaseTimeout is how long a worker holds a shard before the lease
	// expires and the task is re-leased. Zero means 30s.
	LeaseTimeout time.Duration
	// MaxRetries bounds how many times one seq may be re-dispatched after
	// expiries or worker-reported failures before the campaign fails.
	// Zero means 3; negative means unlimited.
	MaxRetries int
	// Metrics, when non-nil, receives fabric counters (nil is inert).
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.LeaseTimeout == 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	return o
}

// lease is one outstanding grant.
type lease struct {
	id       string
	seq      int
	worker   string
	deadline time.Time
}

// Coordinator owns the campaign and leases its shard tasks to workers.
// All methods are safe for concurrent use; the HTTP handler and the
// loopback transport both call straight into them.
type Coordinator struct {
	core *campaign.RemoteEngine
	opts Options
	id   string

	mu        sync.Mutex
	leases    map[string]*lease // by lease ID
	bySeq     map[int]*lease    // at most one active lease per seq
	retries   map[int]int       // re-dispatch count per seq
	workers   map[string]time.Time
	nextLease int64
	failure   error
	done      chan struct{}
}

// NewCoordinator wraps an engine core (fresh via campaign.NewRemoteEngine
// or resumed via campaign.ResumeRemoteEngine).
func NewCoordinator(core *campaign.RemoteEngine, opts Options) *Coordinator {
	c := &Coordinator{
		core:    core,
		opts:    opts.withDefaults(),
		id:      newCampaignID(),
		leases:  make(map[string]*lease),
		bySeq:   make(map[int]*lease),
		retries: make(map[int]int),
		workers: make(map[string]time.Time),
		done:    make(chan struct{}),
	}
	c.opts.Metrics.observeCoordinator(c)
	if core.Done() {
		close(c.done)
	}
	return c
}

// newCampaignID mints a random identifier so a worker that outlives one
// coordinator cannot feed results into the next campaign by accident.
func newCampaignID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("spe-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ID returns the campaign identifier carried by every fabric message.
func (c *Coordinator) ID() string { return c.id }

// Core exposes the underlying engine (progress accessors for /status).
func (c *Coordinator) Core() *campaign.RemoteEngine { return c.core }

// ActiveLeases returns the number of unexpired outstanding leases.
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// LiveWorkers returns how many workers called in within two lease
// timeouts — the liveness window the metrics gauge reports.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := time.Now().Add(-2 * c.opts.LeaseTimeout)
	n := 0
	for _, seen := range c.workers {
		if seen.After(cutoff) {
			n++
		}
	}
	return n
}

// Join answers a worker's handshake with the resolved config. The worker
// derives its plan from this config alone, so agreement is by
// construction; CheckpointPath is cleared because checkpointing is the
// coordinator's job.
func (c *Coordinator) Join(ctx context.Context, req *JoinRequest) (*JoinResponse, error) {
	c.touch(req.WorkerID)
	cfg := c.core.Config()
	cfg.CheckpointPath = ""
	return &JoinResponse{
		CampaignID:     c.id,
		Config:         cfg,
		TotalTasks:     c.core.TotalTasks(),
		LeaseTimeoutMs: c.opts.LeaseTimeout.Milliseconds(),
	}, nil
}

// Lease hands out up to req.Max shard tasks in one batch, or tells the
// worker to wait, exit on completion, or abort on campaign failure. The
// response's legacy Spec/LeaseID fields mirror the first grant for older
// workers that predate batching.
func (c *Coordinator) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	if err := c.checkCampaign(req.CampaignID); err != nil {
		return nil, err
	}
	c.touch(req.WorkerID)
	c.sweepExpired()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return &LeaseResponse{Status: StatusFailed, Err: c.failure.Error()}, nil
	}
	if c.core.Done() {
		return &LeaseResponse{Status: StatusDone}, nil
	}
	max := req.Max
	if max <= 0 {
		max = 1 // pre-batching worker
	}
	var grants []LeaseGrant
	for len(grants) < max {
		spec, ok := c.core.NextTask()
		if !ok {
			break
		}
		c.nextLease++
		l := &lease{
			id:       fmt.Sprintf("%s-%d", c.id, c.nextLease),
			seq:      spec.Seq,
			worker:   req.WorkerID,
			deadline: time.Now().Add(c.opts.LeaseTimeout),
		}
		c.leases[l.id] = l
		c.bySeq[l.seq] = l
		if c.retries[l.seq] > 0 {
			c.opts.Metrics.incReleases()
		}
		c.opts.Metrics.incLeases()
		grants = append(grants, LeaseGrant{Spec: spec, LeaseID: l.id})
	}
	if len(grants) == 0 {
		c.opts.Metrics.incWaitPolls()
		return &LeaseResponse{Status: StatusWait, RetryAfterMs: c.retryAfterMs()}, nil
	}
	return &LeaseResponse{
		Status:  StatusTask,
		Spec:    grants[0].Spec,
		LeaseID: grants[0].LeaseID,
		Grants:  grants,
	}, nil
}

// retryAfterMs paces wait polling: a quarter lease timeout, clamped so
// short test timeouts still poll briskly and long production ones do not
// hammer the coordinator.
func (c *Coordinator) retryAfterMs() int64 {
	ms := c.opts.LeaseTimeout.Milliseconds() / 4
	if ms < 5 {
		ms = 5
	}
	if ms > 1000 {
		ms = 1000
	}
	return ms
}

// Result folds a worker's shard outcome back into the campaign. The
// first result per seq is accepted no matter whose lease produced it —
// shard results are pure functions of the task, so any copy carries the
// same bytes; duplicates are acknowledged and discarded.
func (c *Coordinator) Result(ctx context.Context, req *ResultRequest) (*ResultResponse, error) {
	if err := c.checkCampaign(req.CampaignID); err != nil {
		return nil, err
	}
	c.touch(req.WorkerID)
	c.sweepExpired()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return &ResultResponse{Failed: true, Err: c.failure.Error()}, nil
	}
	// the seq's active lease is moot now whether this succeeds or not —
	// drop it so an expiry sweep cannot double-count a retry
	if l := c.bySeq[req.Seq]; l != nil {
		delete(c.leases, l.id)
		delete(c.bySeq, req.Seq)
	}
	if req.Err != "" {
		c.opts.Metrics.incWorkerErrors()
		if err := c.retryLocked(req.Seq, fmt.Errorf("worker %s: %s", req.WorkerID, req.Err)); err != nil {
			return &ResultResponse{Failed: true, Err: err.Error()}, nil
		}
		return &ResultResponse{}, nil
	}
	accepted, err := c.core.Deliver(req.Result)
	if err != nil {
		c.failLocked(err)
		return &ResultResponse{Accepted: accepted, Failed: true, Err: err.Error()}, nil
	}
	c.opts.Metrics.incResults(accepted)
	done := c.core.Done()
	if done {
		c.closeDoneLocked()
	}
	return &ResultResponse{Accepted: accepted, Done: done}, nil
}

// checkCampaign rejects messages addressed to a different campaign (a
// worker that outlived a previous coordinator).
func (c *Coordinator) checkCampaign(id string) error {
	if id != c.id {
		return fmt.Errorf("fabric: unknown campaign %q (serving %q)", id, c.id)
	}
	return nil
}

// touch records worker liveness.
func (c *Coordinator) touch(worker string) {
	if worker == "" {
		return
	}
	c.mu.Lock()
	c.workers[worker] = time.Now()
	c.mu.Unlock()
}

// sweepExpired hands every expired lease back to the engine for
// re-dispatch; each expiry counts a retry for its seq. Runs on every
// fabric call and on Wait's ticker, so a fleet that goes completely
// silent still makes the campaign fail (or re-lease) instead of hanging.
func (c *Coordinator) sweepExpired() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return
	}
	for id, l := range c.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(c.leases, id)
		delete(c.bySeq, l.seq)
		c.opts.Metrics.incExpiries()
		if err := c.retryLocked(l.seq, fmt.Errorf("lease for task %d on worker %s expired", l.seq, l.worker)); err != nil {
			return
		}
	}
}

// retryLocked requeues a seq after an expiry or worker failure, failing
// the campaign once the seq has been re-dispatched MaxRetries times.
func (c *Coordinator) retryLocked(seq int, cause error) error {
	c.retries[seq]++
	if c.opts.MaxRetries >= 0 && c.retries[seq] > c.opts.MaxRetries {
		err := fmt.Errorf("fabric: task %d failed %d times, giving up: %w", seq, c.retries[seq], cause)
		c.failLocked(err)
		return err
	}
	c.core.Requeue(seq)
	return nil
}

// failLocked records the campaign failure and releases waiters.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.closeDoneLocked()
}

func (c *Coordinator) closeDoneLocked() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// Err returns the campaign failure, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Wait blocks until the campaign completes, fails, or ctx is canceled,
// sweeping expired leases in the background so silent workers cannot
// stall it. On completion it returns the finalized Report; on failure or
// cancellation it checkpoints merged progress (so a restarted
// coordinator resumes instead of recomputing) and returns the error.
func (c *Coordinator) Wait(ctx context.Context) (*campaign.Report, error) {
	tick := c.opts.LeaseTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.failLocked(ctx.Err())
			c.mu.Unlock()
			if err := c.core.Checkpoint(); err != nil {
				return nil, fmt.Errorf("fabric: shutdown checkpoint: %w (after %w)", err, ctx.Err())
			}
			return nil, ctx.Err()
		case <-c.done:
			if err := c.Err(); err != nil {
				c.core.Checkpoint()
				return nil, err
			}
			return c.core.Finalize()
		case <-ticker.C:
			// a retries-exhausted sweep fails the campaign, which closes
			// c.done and resolves the next select iteration
			c.sweepExpired()
		}
	}
}
