package spe

import (
	"math/big"
	"sync"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/skeleton"
)

// sampleIndices picks a deterministic spread of enumeration indices for a
// space of the given total: the edges plus a fixed-stride walk, the same
// shape the campaign's stride sampling visits.
func sampleIndices(total *big.Int, n int) []*big.Int {
	if total.Sign() == 0 {
		return nil
	}
	last := new(big.Int).Sub(total, big.NewInt(1))
	var out []*big.Int
	seen := make(map[string]bool)
	add := func(v *big.Int) {
		if v.Sign() < 0 || v.Cmp(total) >= 0 || seen[v.String()] {
			return
		}
		seen[v.String()] = true
		out = append(out, v)
	}
	add(big.NewInt(0))
	add(last)
	step := new(big.Int).Quo(total, big.NewInt(int64(n)))
	if step.Sign() == 0 {
		step = big.NewInt(1)
	}
	for v := new(big.Int); v.Cmp(total) < 0 && len(out) < n+2; v = new(big.Int).Add(v, step) {
		add(new(big.Int).Set(v))
	}
	return out
}

// TestProgramAtRoundTripsOverCorpus is the tentpole property test: for
// every corpus seed and a sample of indices, RenderAt(i) round-trips
// byte-identically with cc.PrintFile(ProgramAt(i)).
func TestProgramAtRoundTripsOverCorpus(t *testing.T) {
	for seedIdx, src := range corpus.Seeds() {
		prog := cc.MustAnalyze(src)
		sk, err := skeleton.Build(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seedIdx, err)
		}
		for _, gran := range []Granularity{Intra, Inter} {
			space, err := NewSpace(sk, Options{Mode: ModeCanonical, Granularity: gran})
			if err != nil {
				t.Fatalf("seed %d: %v", seedIdx, err)
			}
			space.CheckedRebind = true
			for _, idx := range sampleIndices(space.Total(), 12) {
				want, err := space.RenderAt(idx)
				if err != nil {
					t.Fatalf("seed %d idx %s: RenderAt: %v", seedIdx, idx, err)
				}
				p, release, err := space.ProgramAt(idx)
				if err != nil {
					t.Fatalf("seed %d idx %s: ProgramAt: %v", seedIdx, idx, err)
				}
				got := cc.PrintFile(p.File)
				release()
				if got != want {
					t.Errorf("seed %d gran %v idx %s: typed program diverges from render:\n--- ProgramAt ---\n%s--- RenderAt ---\n%s",
						seedIdx, gran, idx, got, want)
				}
			}
		}
	}
}

// TestFillDeltaAtMatchesFillAt asserts the incremental unranking produces
// exactly FillAt's fillings over a stride walk, including the changed-hole
// bookkeeping.
func TestFillDeltaAtMatchesFillAt(t *testing.T) {
	for seedIdx, src := range corpus.Seeds() {
		sk, err := skeleton.Build(cc.MustAnalyze(src))
		if err != nil {
			t.Fatalf("seed %d: %v", seedIdx, err)
		}
		delta, err := NewSpace(sk, Options{Mode: ModeCanonical})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewSpace(sk, Options{Mode: ModeCanonical})
		if err != nil {
			t.Fatal(err)
		}
		var prevFill []int // flattened previous fill for change verification
		for _, idx := range sampleIndices(delta.Total(), 16) {
			fill, changed, err := delta.FillDeltaAt(idx)
			if err != nil {
				t.Fatalf("seed %d idx %s: %v", seedIdx, idx, err)
			}
			want, err := direct.FillAt(idx)
			if err != nil {
				t.Fatal(err)
			}
			if len(fill) != len(want) {
				t.Fatalf("seed %d idx %s: fill length %d, want %d", seedIdx, idx, len(fill), len(want))
			}
			flat := make([]int, 0, 2*len(fill))
			for i := range fill {
				if fill[i] != want[i] {
					t.Fatalf("seed %d idx %s hole %d: delta fill %v, want %v", seedIdx, idx, i, fill[i], want[i])
				}
				flat = append(flat, fill[i].Group, fill[i].Index)
			}
			if prevFill != nil {
				// changed must list exactly the holes that differ from the
				// previous call
				ch := make(map[int]bool, len(changed))
				for _, h := range changed {
					ch[h] = true
				}
				for i := range fill {
					moved := flat[2*i] != prevFill[2*i] || flat[2*i+1] != prevFill[2*i+1]
					if moved != ch[i] {
						t.Fatalf("seed %d idx %s hole %d: moved=%v but changed set says %v", seedIdx, idx, i, moved, ch[i])
					}
				}
			}
			prevFill = flat
		}
	}
}

// TestProgramAtDeltaWalk asserts release→reacquire reuses the instance and
// that a long walk of neighboring indices stays byte-identical to the
// render path (the delta-patching fast path the campaign engine exercises).
func TestProgramAtDeltaWalk(t *testing.T) {
	src := `
int a, b;
int f() { int x = 1; return a + x; }
int main() {
    int c = 0, d = 0;
    c = a + d;
    return b + c + f();
}
`
	sk, err := skeleton.Build(cc.MustAnalyze(src))
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpace(sk, Options{Mode: ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	check, err := NewSpace(sk, Options{Mode: ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	total := space.Total()
	limit := big.NewInt(300)
	if total.Cmp(limit) > 0 {
		total = limit
	}
	for idx := new(big.Int); idx.Cmp(total) < 0; idx.Add(idx, big.NewInt(1)) {
		p, release, err := space.ProgramAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		got := cc.PrintFile(p.File)
		release()
		want, err := check.RenderAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("idx %s: delta walk diverges from render path:\n--- got ---\n%s--- want ---\n%s", idx, got, want)
		}
	}
	if len(space.instances) != 1 {
		t.Errorf("free list holds %d instances after a released walk, want 1", len(space.instances))
	}
}

// TestProgramAtOverlappingLifetimes asserts two live programs from one
// Space never alias (the free list hands out distinct instances while one
// is held).
func TestProgramAtOverlappingLifetimes(t *testing.T) {
	sk := skeleton.MustBuild(`
int a, b;
int main() { return a + b; }
`)
	space, err := NewSpace(sk, Options{Mode: ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	p0, rel0, err := space.ProgramAt(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	snap0 := cc.PrintFile(p0.File)
	p1, rel1, err := space.ProgramAt(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if p0 == p1 {
		t.Fatal("two live ProgramAt results share one instance")
	}
	if got := cc.PrintFile(p0.File); got != snap0 {
		t.Errorf("second ProgramAt mutated the first's program:\n--- after ---\n%s--- before ---\n%s", got, snap0)
	}
	rel1()
	rel0()
}

// TestPoolConcurrentUse drives the Pool from many goroutines (run under
// -race in CI): each drains a disjoint slice of indices through ProgramAt
// and checks byte-identity against a private render-path Space.
func TestPoolConcurrentUse(t *testing.T) {
	sk := skeleton.MustBuild(`
int a, b;
int f() { int x = 1; return a + x; }
int main() {
    int c = 0, d = 0;
    c = a + d;
    return b + c + f();
}
`)
	pool, err := NewPool(sk, Options{Mode: ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			space := pool.Get()
			defer pool.Put(space)
			check, err := NewSpace(sk, Options{Mode: ModeCanonical})
			if err != nil {
				errs <- err
				return
			}
			total := space.Total()
			for i := 0; i < perWorker; i++ {
				idx := big.NewInt(int64(w*perWorker + i))
				if idx.Cmp(total) >= 0 {
					break
				}
				p, release, err := space.ProgramAt(idx)
				if err != nil {
					errs <- err
					return
				}
				got := cc.PrintFile(p.File)
				release()
				want, err := check.RenderAt(idx)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("worker %d idx %s: pooled program diverges from render", w, idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolRejectsNonCanonical asserts option validation happens at pool
// construction, not first use.
func TestPoolRejectsNonCanonical(t *testing.T) {
	sk := skeleton.MustBuild("int a;\nint main() { return a; }\n")
	if _, err := NewPool(sk, Options{Mode: ModeNaive}); err == nil {
		t.Error("pool over naive mode constructed")
	}
}
