package spe

import (
	"math/big"
	"strings"
	"testing"

	"spe/internal/skeleton"
)

const motivating = `
int a, b;
int main() {
    b = b - a;
    if (a)
        a = a - b;
    return 0;
}
`

func TestCountModes(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	// 7 use holes over one group {a,b} of size 2 (both uninitialized
	// ints) give 2^7 = 128 fillings; the paper's naive baseline also
	// enumerates the two declaration holes (x2 each): 128 * 4 = 512.
	// Canonical quotients everything to 1 + {7 2} = 64.
	naive := Count(sk, Options{Mode: ModeNaive, Granularity: Inter})
	if naive.Cmp(big.NewInt(512)) != 0 {
		t.Errorf("naive = %s, want 512", naive)
	}
	canon := Count(sk, Options{Mode: ModeCanonical, Granularity: Inter})
	if canon.Cmp(big.NewInt(64)) != 0 {
		t.Errorf("canonical = %s, want 64", canon)
	}
	// scope-free: paper arithmetic agrees with canonical
	paper := Count(sk, Options{Mode: ModePaper, Granularity: Inter})
	if paper.Cmp(canon) != 0 {
		t.Errorf("paper = %s, want %s", paper, canon)
	}
}

func TestEnumerateCanonicalDistinctAndComplete(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	opts := Options{Mode: ModeCanonical, Granularity: Inter}
	seen := make(map[string]bool)
	n, err := Enumerate(sk, opts, func(v Variant) bool {
		if seen[v.Source] {
			t.Errorf("duplicate variant source at index %d", v.Index)
		}
		seen[v.Source] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("enumerated %d variants, want 64", n)
	}
	// every variant is a valid program
	for src := range seen {
		skeleton.MustBuild(src)
	}
}

func TestEnumerateNaiveCoversCanonical(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	canonical := make(map[string]bool)
	_, err := Enumerate(sk, Options{Mode: ModeCanonical, Granularity: Inter}, func(v Variant) bool {
		canonical[v.Source] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	naiveTotal := 0
	_, err = Enumerate(sk, Options{Mode: ModeNaive, Granularity: Inter}, func(v Variant) bool {
		naiveTotal++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if naiveTotal != 128 {
		t.Errorf("naive total = %d, want 128", naiveTotal)
	}
	if len(canonical) != 64 {
		t.Errorf("canonical distinct = %d, want 64", len(canonical))
	}
}

func TestEnumerateIntraCartesianProduct(t *testing.T) {
	src := `
int f() { int x, y; x = y; return x; }
int g() { int p, q; p = q; return p; }
int main() { return f() + g(); }
`
	sk := skeleton.MustBuild(src)
	// each function: 3 holes over one 2-var group: 1+{3 2} = 4 canonical
	intra := Count(sk, Options{Mode: ModeCanonical, Granularity: Intra})
	if intra.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("intra count = %s, want 16 (= 4 * 4)", intra)
	}
	n, err := Enumerate(sk, Options{Mode: ModeCanonical, Granularity: Intra}, func(v Variant) bool {
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Errorf("enumerated %d, want 16", n)
	}
}

func TestThreshold(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	opts := Options{Mode: ModeCanonical, Granularity: Inter, Threshold: big.NewInt(10)}
	if !ExceedsThreshold(sk, opts) {
		t.Error("64 variants should exceed threshold 10")
	}
	opts.Threshold = big.NewInt(10000)
	if ExceedsThreshold(sk, opts) {
		t.Error("64 variants should not exceed threshold 10000")
	}
	opts.Threshold = nil
	if ExceedsThreshold(sk, opts) {
		t.Error("nil threshold must never be exceeded")
	}
}

func TestEnumeratePaperModeRejected(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	if _, err := Enumerate(sk, Options{Mode: ModePaper}, func(Variant) bool { return true }); err == nil {
		t.Error("ModePaper enumeration should return an error")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	n, err := Enumerate(sk, Options{Mode: ModeCanonical, Granularity: Inter}, func(v Variant) bool {
		return v.Index < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("yielded %d, want 5 (stop after index 4)", n)
	}
}

func TestTwoLevelFromProblemFigure7(t *testing.T) {
	sk := skeleton.MustBuild(`
int a, b;
int main() {
    a = b;
    b = a;
    if (1) {
        int c, d;
        c = d;
    }
    a = a;
    return 0;
}
`)
	cfg := TwoLevelFromProblem(sk.Problem())
	if cfg.GlobalVars != 2 || cfg.GlobalHoles != 6 {
		t.Errorf("globals = %d vars / %d holes, want 2/6", cfg.GlobalVars, cfg.GlobalHoles)
	}
	if len(cfg.ScopeVars) != 1 || cfg.ScopeVars[0] != 2 || cfg.ScopeHoles[0] != 2 {
		t.Errorf("scopes = %+v", cfg)
	}
}

func TestEnumerateRealisticVariantShapes(t *testing.T) {
	// Paper Figure 1: enumeration must produce both P2 (a = b - b) and P3
	// (if (b)) shapes from the P1 skeleton.
	sk := skeleton.MustBuild(motivating)
	var all []string
	_, err := Enumerate(sk, Options{Mode: ModeCanonical, Granularity: Inter}, func(v Variant) bool {
		all = append(all, v.Source)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(all, "====")
	for _, want := range []string{"a = b - b", "if (b)", "b = a - a", "a = a - b"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no variant contains %q", want)
		}
	}
}

func TestCountIntraLessOrEqualInter(t *testing.T) {
	srcs := []string{
		motivating,
		"int g;\nint f(int x) { return x + g; }\nint main() { g = f(g); return g; }",
		"int main() { int a, b, c; a = b + c; b = a; return c; }",
	}
	for _, src := range srcs {
		sk := skeleton.MustBuild(src)
		intra := Count(sk, Options{Mode: ModeCanonical, Granularity: Intra})
		inter := Count(sk, Options{Mode: ModeCanonical, Granularity: Inter})
		if intra.Cmp(inter) > 0 {
			t.Errorf("%q: intra %s > inter %s", src[:20], intra, inter)
		}
	}
}
