package spe

import (
	"testing"

	"spe/internal/partition"
	"spe/internal/skeleton"
)

func TestEnumerateFillsMatchesEnumerate(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	opts := Options{Mode: ModeCanonical, Granularity: Inter}
	var rendered []string
	if _, err := Enumerate(sk, opts, func(v Variant) bool {
		rendered = append(rendered, v.Source)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var viaFills []string
	if _, err := EnumerateFills(sk, opts, func(idx int, fill []partition.VarRef) bool {
		if idx != len(viaFills) {
			t.Fatalf("index %d out of order", idx)
		}
		viaFills = append(viaFills, sk.Render(fill))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(rendered) != len(viaFills) {
		t.Fatalf("lengths differ: %d vs %d", len(rendered), len(viaFills))
	}
	for i := range rendered {
		if rendered[i] != viaFills[i] {
			t.Fatalf("variant %d differs", i)
		}
	}
}

func TestEnumerateFillsStrideSampling(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	opts := Options{Mode: ModeCanonical, Granularity: Inter}
	// sampling every 8th filling yields ceil(64/8) = 8 fillings
	sampled := 0
	if _, err := EnumerateFills(sk, opts, func(idx int, fill []partition.VarRef) bool {
		if idx%8 == 0 {
			sampled++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if sampled != 8 {
		t.Errorf("sampled = %d, want 8", sampled)
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	sk := skeleton.MustBuild(motivating)
	opts := Options{Mode: ModeCanonical, Granularity: Intra}
	run := func() []string {
		var out []string
		if _, err := Enumerate(sk, opts, func(v Variant) bool {
			out = append(out, v.Source)
			return len(out) < 30
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration order unstable at %d", i)
		}
	}
}
