package spe

import (
	"math/big"
	"math/rand"
	"testing"

	"spe/internal/partition"
)

// example6 is the configuration of paper Figure 7 / Example 6: 3 global
// holes, 2 global variables, one scope with 2 holes and 2 locals.
func example6() *TwoLevelConfig {
	return &TwoLevelConfig{
		GlobalHoles: 3,
		GlobalVars:  2,
		ScopeHoles:  []int{2},
		ScopeVars:   []int{2},
	}
}

func TestExample6PaperArithmetic(t *testing.T) {
	c := example6()
	// Paper Example 6: S'_f = {5 2}+{5 1} = 16; promoting either local
	// hole: 2 * ({4 2} * {1 1}) = 14; promoting neither: {3 2} * ({2 2} +
	// {2 1}) = 6. Total 36. The naive count is 2^3 * 4^2 = 128.
	if got := c.PaperCount(); got.Cmp(big.NewInt(36)) != 0 {
		t.Errorf("PaperCount = %s, want 36 (paper Example 6)", got)
	}
	if got := c.NaiveCount(); got.Cmp(big.NewInt(128)) != 0 {
		t.Errorf("NaiveCount = %s, want 128", got)
	}
	// The exact orbit count is 40 (DESIGN.md §2).
	if got := c.CanonicalProblem().CanonicalCount(); got.Cmp(big.NewInt(40)) != 0 {
		t.Errorf("canonical count = %s, want 40", got)
	}
}

func TestEachPaperMatchesPaperCount(t *testing.T) {
	cfgs := []*TwoLevelConfig{
		example6(),
		{GlobalHoles: 4, GlobalVars: 2},
		{GlobalHoles: 0, GlobalVars: 2, ScopeHoles: []int{3}, ScopeVars: []int{1}},
		{GlobalHoles: 2, GlobalVars: 1, ScopeHoles: []int{2, 2}, ScopeVars: []int{1, 2}},
		{GlobalHoles: 1, GlobalVars: 3, ScopeHoles: []int{2}, ScopeVars: []int{2}},
		{GlobalHoles: 0, GlobalVars: 1, ScopeHoles: []int{0}, ScopeVars: []int{2}},
	}
	for i, c := range cfgs {
		want := c.PaperCount()
		got := c.EachPaper(func([]int) bool { return true })
		if big.NewInt(int64(got)).Cmp(want) != 0 {
			t.Errorf("cfg %d (%+v): EachPaper yielded %d, PaperCount = %s", i, c, got, want)
		}
	}
}

func TestEachPaperRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		c := &TwoLevelConfig{
			GlobalHoles: rng.Intn(4),
			GlobalVars:  1 + rng.Intn(3),
		}
		for s := 0; s < rng.Intn(3); s++ {
			c.ScopeHoles = append(c.ScopeHoles, rng.Intn(3))
			c.ScopeVars = append(c.ScopeVars, 1+rng.Intn(2))
		}
		want := c.PaperCount()
		got := c.EachPaper(func([]int) bool { return true })
		if big.NewInt(int64(got)).Cmp(want) != 0 {
			t.Fatalf("trial %d (%+v): enumerated %d, counted %s", trial, c, got, want)
		}
	}
}

func TestEachPaperProducesValidAssignments(t *testing.T) {
	c := example6()
	c.EachPaper(func(assign []int) bool {
		if len(assign) != 5 {
			t.Fatalf("assign length %d", len(assign))
		}
		for i := 0; i < c.GlobalHoles; i++ {
			if assign[i] < 0 || assign[i] >= c.GlobalVars {
				t.Fatalf("global hole %d assigned %d", i, assign[i])
			}
		}
		for i := c.GlobalHoles; i < 5; i++ {
			if assign[i] < 0 || assign[i] >= c.NumVars() {
				t.Fatalf("scope hole %d assigned %d", i, assign[i])
			}
		}
		return true
	})
}

func TestEachPaperDuplicateAnalysis(t *testing.T) {
	// The paper's procedure double-counts exactly one partition shape on
	// the Example 6 configuration: {{1,2,5},{3},{4}} arises both from
	// promoting hole 3 and from promoting hole 4. Verify 36 yields but
	// only 35 distinct set partitions.
	c := example6()
	distinct := make(map[string]bool)
	total := 0
	c.EachPaper(func(assign []int) bool {
		total++
		distinct[string(rgsKey(assign))] = true
		return true
	})
	if total != 36 {
		t.Fatalf("total = %d, want 36", total)
	}
	if len(distinct) != 35 {
		t.Errorf("distinct partitions = %d, want 35", len(distinct))
	}
}

// rgsKey canonicalizes an assignment to its set-partition key.
func rgsKey(assign []int) []byte {
	rgs := partition.RGSOf(assign)
	b := make([]byte, len(rgs))
	for i, v := range rgs {
		b[i] = byte(v)
	}
	return b
}

func TestPaperMissesOrbitsCanonicalFinds(t *testing.T) {
	// Distinct compact-alpha orbits number 40; the paper's 36 yields cover
	// only 35 distinct partitions. Under the *orbit* relation (which is
	// finer than partition equality across scope boundaries), the paper
	// set covers fewer classes than canonical enumeration.
	c := example6()
	p := c.CanonicalProblem()
	canonKeys := make(map[string]bool)
	p.EachCanonical(func(fill []partition.VarRef) bool {
		canonKeys[partition.FillKey(p.CanonicalizeFill(fill))] = true
		return true
	})
	if len(canonKeys) != 40 {
		t.Fatalf("canonical classes = %d, want 40", len(canonKeys))
	}
	// Map each paper assignment into the canonical problem's fill space.
	paperKeys := make(map[string]bool)
	c.EachPaper(func(assign []int) bool {
		fill := make([]partition.VarRef, len(assign))
		for i, v := range assign {
			if v < c.GlobalVars {
				fill[i] = partition.VarRef{Group: 0, Index: v}
			} else {
				fill[i] = partition.VarRef{Group: 1, Index: v - c.GlobalVars}
			}
		}
		paperKeys[partition.FillKey(p.CanonicalizeFill(fill))] = true
		return true
	})
	if len(paperKeys) >= len(canonKeys) {
		t.Errorf("paper covers %d orbit classes, canonical %d; expected paper < canonical",
			len(paperKeys), len(canonKeys))
	}
}

func TestTwoLevelValidate(t *testing.T) {
	bad := []*TwoLevelConfig{
		{GlobalHoles: -1},
		{GlobalHoles: 1, GlobalVars: 0},
		{GlobalHoles: 0, GlobalVars: 1, ScopeHoles: []int{1}, ScopeVars: nil},
		{GlobalHoles: 0, GlobalVars: 1, ScopeHoles: []int{-1}, ScopeVars: []int{1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := example6().Validate(); err != nil {
		t.Errorf("Validate rejected Example 6 config: %v", err)
	}
}

func TestPaperCountScopeFreeEqualsStirlingSum(t *testing.T) {
	// With no scopes the paper's algorithm is exact: SumStirling(n, k).
	for n := 0; n <= 8; n++ {
		for k := 1; k <= 3; k++ {
			c := &TwoLevelConfig{GlobalHoles: n, GlobalVars: k}
			want := partition.SumStirling(n, k)
			if got := c.PaperCount(); got.Cmp(want) != 0 {
				t.Errorf("n=%d k=%d: PaperCount = %s, want %s", n, k, got, want)
			}
			// and agrees with the exact canonical count
			if got := c.CanonicalProblem().CanonicalCount(); got.Cmp(want) != 0 {
				t.Errorf("n=%d k=%d: canonical = %s, want %s", n, k, got, want)
			}
		}
	}
}

func TestEachPaperEarlyStop(t *testing.T) {
	c := example6()
	calls := 0
	c.EachPaper(func([]int) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("early stop after %d calls, want 10", calls)
	}
}
