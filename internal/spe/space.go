package spe

import (
	"fmt"
	"math/big"

	"spe/internal/partition"
	"spe/internal/skeleton"
)

// Space is a random-access view of a skeleton's canonical enumeration
// sequence: Total() is its size and FillAt(i) returns the i-th filling of
// EnumerateFills' order without enumerating the i-1 before it. With intra-
// procedural granularity the sequence is the Cartesian product of the
// per-function canonical sequences, so a global index is a mixed-radix
// numeral whose digits are per-function ranks (the first function is the
// most significant digit, matching EnumerateFills' recursion order).
//
// A Space owns mutable ranker memo tables and is not safe for concurrent
// use; construction is cheap (the tables fill lazily), so give each
// goroutine its own.
type Space struct {
	sk   *skeleton.Skeleton
	opts Options
	// intra granularity
	fps     []*skeleton.FuncProblem
	rankers []*partition.Ranker
	counts  []*big.Int
	// inter granularity
	ranker *partition.Ranker

	total *big.Int
}

// NewSpace builds the random-access view. Only ModeCanonical is supported:
// the naive sequence needs no ranker (it is a plain mixed-radix product)
// and ModePaper is count-only.
func NewSpace(sk *skeleton.Skeleton, opts Options) (*Space, error) {
	if opts.Mode != ModeCanonical {
		return nil, fmt.Errorf("spe: Space requires ModeCanonical, got %v", opts.Mode)
	}
	s := &Space{sk: sk, opts: opts}
	switch opts.Granularity {
	case Inter:
		s.ranker = sk.Problem().NewRanker()
		s.total = s.ranker.Count()
	default:
		s.fps = sk.FuncProblems()
		s.total = big.NewInt(1)
		for _, fp := range s.fps {
			r := fp.Problem.NewRanker()
			s.rankers = append(s.rankers, r)
			c := r.Count()
			s.counts = append(s.counts, c)
			s.total.Mul(s.total, c)
		}
	}
	return s, nil
}

// Total returns the number of fillings in the sequence (the skeleton's
// canonical count).
func (s *Space) Total() *big.Int { return new(big.Int).Set(s.total) }

// FillAt returns the idx-th whole-skeleton filling of the canonical
// enumeration order. The returned slice is freshly allocated.
func (s *Space) FillAt(idx *big.Int) ([]partition.VarRef, error) {
	if idx.Sign() < 0 || idx.Cmp(s.total) >= 0 {
		return nil, fmt.Errorf("spe: fill index %s out of range [0, %s)", idx, s.total)
	}
	if s.ranker != nil {
		return s.ranker.Unrank(idx)
	}
	// digit extraction, least significant (= last, fastest-varying
	// function) first
	digits := make([]*big.Int, len(s.fps))
	rem := new(big.Int).Set(idx)
	for i := len(s.fps) - 1; i >= 0; i-- {
		q, m := new(big.Int).QuoRem(rem, s.counts[i], new(big.Int))
		digits[i] = m
		rem = q
	}
	whole := s.sk.OriginalFill()
	for i, fp := range s.fps {
		fill, err := s.rankers[i].Unrank(digits[i])
		if err != nil {
			return nil, err
		}
		for j, vr := range fill {
			whole[fp.HoleIdx[j]] = partition.VarRef{
				Group: fp.GroupIdx[vr.Group],
				Index: vr.Index,
			}
		}
	}
	return whole, nil
}

// RenderAt renders the program at the given enumeration index.
func (s *Space) RenderAt(idx *big.Int) (string, error) {
	fill, err := s.FillAt(idx)
	if err != nil {
		return "", err
	}
	return s.sk.Render(fill), nil
}
