package spe

import (
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"spe/internal/cc"
	"spe/internal/partition"
	"spe/internal/skeleton"
)

// Space is a random-access view of a skeleton's canonical enumeration
// sequence: Total() is its size and FillAt(i) returns the i-th filling of
// EnumerateFills' order without enumerating the i-1 before it. With intra-
// procedural granularity the sequence is the Cartesian product of the
// per-function canonical sequences, so a global index is a mixed-radix
// numeral whose digits are per-function ranks (the first function is the
// most significant digit, matching EnumerateFills' recursion order).
//
// Beside the textual RenderAt, a Space serves typed programs: ProgramAt
// patches a pooled AST-resident skeleton.Instance to the indexed filling
// and hands back the analyzed *cc.Program directly, skipping the
// render→re-lex→re-parse→re-sema cycle entirely. FillDeltaAt exposes the
// underlying incremental unranking (per-function rank digits are cached, so
// stride-neighbor indices only unrank the functions whose digit moved).
//
// Concurrency contract: a Space owns mutable state — ranker memo tables,
// the delta-unranking cache, and its instance free list — and is strictly
// single-goroutine. Concurrent callers go through a Pool, which hands each
// goroutine a private Space over the shared (immutable) skeleton; sharing
// one Space across goroutines without a Pool is a data race, enforced by
// the race-detector tests over the campaign hot path.
type Space struct {
	sk   *skeleton.Skeleton
	opts Options
	// intra granularity
	fps     []*skeleton.FuncProblem
	rankers []*partition.Ranker
	counts  []*big.Int
	// inter granularity
	ranker *partition.Ranker

	total *big.Int

	// delta-unranking cache: the per-function rank digits and whole-skeleton
	// filling of the last FillDeltaAt call. prevBuf and changed are reused
	// scratch space so the per-variant hot path stays allocation-free.
	lastDigits []*big.Int
	lastFill   []partition.VarRef
	prevBuf    []partition.VarRef
	changed    []int

	// instances is a LIFO free list for ProgramAt: releasing and
	// re-acquiring yields the same instance, so consecutive ProgramAt calls
	// patch only the holes that differ between neighboring fillings.
	instances []*skeleton.Instance
	// CheckedRebind makes every instance patch assert the sema invariants
	// (visibility, type compatibility) before applying — the spe half of
	// the campaign engine's -paranoid mode.
	CheckedRebind bool
}

// NewSpace builds the random-access view. Only ModeCanonical is supported:
// the naive sequence needs no ranker (it is a plain mixed-radix product)
// and ModePaper is count-only.
func NewSpace(sk *skeleton.Skeleton, opts Options) (*Space, error) {
	if opts.Mode != ModeCanonical {
		return nil, fmt.Errorf("spe: Space requires ModeCanonical, got %v", opts.Mode)
	}
	s := &Space{sk: sk, opts: opts}
	switch opts.Granularity {
	case Inter:
		s.ranker = sk.Problem().NewRanker()
		s.total = s.ranker.Count()
	default:
		s.fps = sk.FuncProblems()
		s.total = big.NewInt(1)
		for _, fp := range s.fps {
			r := fp.Problem.NewRanker()
			s.rankers = append(s.rankers, r)
			c := r.Count()
			s.counts = append(s.counts, c)
			s.total.Mul(s.total, c)
		}
	}
	return s, nil
}

// Total returns the number of fillings in the sequence (the skeleton's
// canonical count).
func (s *Space) Total() *big.Int { return new(big.Int).Set(s.total) }

// FillAt returns the idx-th whole-skeleton filling of the canonical
// enumeration order. The returned slice is freshly allocated.
func (s *Space) FillAt(idx *big.Int) ([]partition.VarRef, error) {
	if idx.Sign() < 0 || idx.Cmp(s.total) >= 0 {
		return nil, fmt.Errorf("spe: fill index %s out of range [0, %s)", idx, s.total)
	}
	if s.ranker != nil {
		return s.ranker.Unrank(idx)
	}
	// digit extraction, least significant (= last, fastest-varying
	// function) first
	digits := make([]*big.Int, len(s.fps))
	rem := new(big.Int).Set(idx)
	for i := len(s.fps) - 1; i >= 0; i-- {
		q, m := new(big.Int).QuoRem(rem, s.counts[i], new(big.Int))
		digits[i] = m
		rem = q
	}
	whole := s.sk.OriginalFill()
	for i, fp := range s.fps {
		fill, err := s.rankers[i].Unrank(digits[i])
		if err != nil {
			return nil, err
		}
		for j, vr := range fill {
			whole[fp.HoleIdx[j]] = partition.VarRef{
				Group: fp.GroupIdx[vr.Group],
				Index: vr.Index,
			}
		}
	}
	return whole, nil
}

// FillDeltaAt is FillAt with incremental unranking: the Space caches the
// per-function rank digits of its previous call and re-unranks only the
// functions whose digit changed, which is what makes walking stride
// neighbors within a shard cheap (the low-order functions vary, the rest
// stand still). It returns the filling plus the sorted hole indices whose
// variable differs from the previous call's filling (all holes on the first
// call). Both slices are owned by the Space and valid until the next
// FillDeltaAt call.
func (s *Space) FillDeltaAt(idx *big.Int) ([]partition.VarRef, []int, error) {
	if idx.Sign() < 0 || idx.Cmp(s.total) >= 0 {
		return nil, nil, fmt.Errorf("spe: fill index %s out of range [0, %s)", idx, s.total)
	}
	if s.lastFill == nil {
		// first call: unrank everything, every hole counts as changed
		fill, err := s.FillAt(idx)
		if err != nil {
			return nil, nil, err
		}
		s.lastFill = fill
		s.changed = make([]int, len(fill))
		for i := range s.changed {
			s.changed[i] = i
		}
		if s.ranker == nil {
			s.lastDigits = s.digitsOf(idx)
		}
		return s.lastFill, s.changed, nil
	}
	prev := append(s.prevBuf[:0], s.lastFill...)
	s.prevBuf = prev
	if s.ranker != nil {
		fill, err := s.ranker.Unrank(idx)
		if err != nil {
			return nil, nil, err
		}
		s.lastFill = fill
	} else {
		digits := s.digitsOf(idx)
		for i, fp := range s.fps {
			if digits[i].Cmp(s.lastDigits[i]) == 0 {
				continue // this function's rank did not move: keep its holes
			}
			fill, err := s.rankers[i].Unrank(digits[i])
			if err != nil {
				return nil, nil, err
			}
			for j, vr := range fill {
				s.lastFill[fp.HoleIdx[j]] = partition.VarRef{
					Group: fp.GroupIdx[vr.Group],
					Index: vr.Index,
				}
			}
		}
		s.lastDigits = digits
	}
	s.changed = s.changed[:0]
	for i, vr := range s.lastFill {
		if vr != prev[i] {
			s.changed = append(s.changed, i)
		}
	}
	return s.lastFill, s.changed, nil
}

// digitsOf extracts idx's per-function mixed-radix rank digits.
func (s *Space) digitsOf(idx *big.Int) []*big.Int {
	digits := make([]*big.Int, len(s.fps))
	rem := new(big.Int).Set(idx)
	for i := len(s.fps) - 1; i >= 0; i-- {
		q, m := new(big.Int).QuoRem(rem, s.counts[i], new(big.Int))
		digits[i] = m
		rem = q
	}
	return digits
}

// RenderAt renders the program at the given enumeration index. This is the
// textual (render) path; the campaign hot path uses ProgramAt instead and
// renders lazily only when a finding needs reproduction text.
func (s *Space) RenderAt(idx *big.Int) (string, error) {
	fill, err := s.FillAt(idx)
	if err != nil {
		return "", err
	}
	return s.sk.Render(fill), nil
}

// ProgramAt returns the analyzed program at the given enumeration index by
// patching a pooled AST-resident instance — no lexing, parsing, or semantic
// analysis happens per variant. The program is valid until release is
// called; release returns the instance to the Space's free list, where the
// next ProgramAt call reuses it (and, for neighboring indices, patches only
// the holes that moved). Printing the program with cc.PrintFile yields
// exactly RenderAt's bytes.
func (s *Space) ProgramAt(idx *big.Int) (*cc.Program, func(), error) {
	in, release, err := s.AcquireAt(idx)
	if err != nil {
		return nil, nil, err
	}
	return in.Program(), release, nil
}

// AcquireAt is ProgramAt exposing the instance itself: callers that key
// per-skeleton backend state (the campaign's interpreter machines and
// compiler IR-template caches) need the instance's hole→use-site metadata
// (Instance.HoleIdents) alongside the program. The instance is owned by the
// caller until release is called and must not be used after.
func (s *Space) AcquireAt(idx *big.Int) (*skeleton.Instance, func(), error) {
	fill, _, err := s.FillDeltaAt(idx)
	if err != nil {
		return nil, nil, err
	}
	var in *skeleton.Instance
	if n := len(s.instances); n > 0 {
		in = s.instances[n-1]
		s.instances = s.instances[:n-1]
	} else {
		in = s.sk.NewInstance()
	}
	in.Checked = s.CheckedRebind
	if err := in.Instantiate(fill); err != nil {
		return nil, nil, err
	}
	release := func() { s.instances = append(s.instances, in) }
	return in, release, nil
}

// Pool shares one skeleton's enumeration across goroutines by handing each
// caller a private Space. It is the enforced concurrency API over Space:
// Get/Put are safe from any goroutine, while everything on the Space itself
// remains single-goroutine between a Get and its Put. Pooled Spaces retain
// their ranker memo tables and template instances across uses, so shard
// workers draining one file amortize those allocations instead of
// rebuilding them per shard.
type Pool struct {
	sk   *skeleton.Skeleton
	opts Options
	pool sync.Pool
	// CheckedRebind is propagated to every Space the pool hands out.
	CheckedRebind bool
	// hits/misses count Gets served by a recycled Space versus a fresh
	// build — telemetry the campaign's /metrics surface sums at scrape
	// time (see Stats). One atomic add per Get, i.e. per shard task.
	hits, misses atomic.Int64
}

// Stats reports how many Gets were served by a recycled Space (hits)
// versus building a fresh one (misses). Purely observational.
func (p *Pool) Stats() (hits, misses int64) { return p.hits.Load(), p.misses.Load() }

// NewPool validates the options once (by building a probe Space) and
// returns the pool. The probe is kept for the first Get.
func NewPool(sk *skeleton.Skeleton, opts Options) (*Pool, error) {
	probe, err := NewSpace(sk, opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{sk: sk, opts: opts}
	p.pool.Put(probe)
	return p, nil
}

// Get hands out a Space for exclusive use by the calling goroutine.
func (p *Pool) Get() *Space {
	if s, ok := p.pool.Get().(*Space); ok && s != nil {
		p.hits.Add(1)
		s.CheckedRebind = p.CheckedRebind
		return s
	}
	// construction cannot fail here: NewPool validated the options
	p.misses.Add(1)
	s, err := NewSpace(p.sk, p.opts)
	if err != nil {
		panic(fmt.Sprintf("spe: pool: %v", err))
	}
	s.CheckedRebind = p.CheckedRebind
	return s
}

// Put returns a Space obtained from Get. The Space must not be used after.
func (p *Pool) Put(s *Space) { p.pool.Put(s) }
