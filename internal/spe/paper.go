// Package spe implements skeletal program enumeration: the paper's
// PartitionScope/Algorithm 1 procedure, the provably-canonical grouped
// restricted-growth-string enumerator, naive enumeration, big-integer
// counting for all three, and the thresholded corpus driver used by the
// evaluation harness.
//
// Concurrency and ownership: a Skeleton and its analyzed program are
// immutable after Build and may be shared freely. Everything mutable hangs
// off a Space — ranker memo tables, the delta-unranking cache, the pooled
// AST instances — and a Space is strictly single-goroutine; concurrent
// callers go through a Pool, which hands each goroutine a private Space
// over the shared skeleton. Programs and instances returned by
// ProgramAt/AcquireAt are exclusively owned until their release function
// is called; workers may read them, hand them to the backends, and patch
// them only through Instantiate — never retain them past release.
package spe

import (
	"fmt"
	"math/big"

	"spe/internal/partition"
)

// TwoLevelConfig is the paper's abstraction of one function in normal form
// (§4.2.2, Figure 7): a set of global holes fillable only by the |v^g|
// global variables, plus t flat local scopes; the holes of scope l are
// fillable by the globals and that scope's |v^l| locals.
//
// Variables are numbered: globals are 0..GlobalVars-1, and scope i's locals
// occupy the next ScopeVars[i] ids in scope order. Holes are in normal
// form: global holes first, then each scope's holes.
type TwoLevelConfig struct {
	GlobalHoles int
	GlobalVars  int
	ScopeHoles  []int
	ScopeVars   []int
}

// Validate reports a descriptive error for malformed configurations.
func (c *TwoLevelConfig) Validate() error {
	if c.GlobalHoles < 0 || c.GlobalVars < 0 {
		return fmt.Errorf("spe: negative global sizes")
	}
	if len(c.ScopeHoles) != len(c.ScopeVars) {
		return fmt.Errorf("spe: %d scope hole counts but %d scope var counts",
			len(c.ScopeHoles), len(c.ScopeVars))
	}
	for i := range c.ScopeHoles {
		if c.ScopeHoles[i] < 0 || c.ScopeVars[i] < 0 {
			return fmt.Errorf("spe: negative sizes in scope %d", i)
		}
	}
	totalHoles := c.GlobalHoles
	for _, h := range c.ScopeHoles {
		totalHoles += h
	}
	if totalHoles > 0 && c.GlobalVars == 0 {
		// the paper's model requires every hole to admit the globals
		if c.GlobalHoles > 0 {
			return fmt.Errorf("spe: global holes with no global variables")
		}
	}
	return nil
}

// NumHoles returns the total hole count.
func (c *TwoLevelConfig) NumHoles() int {
	n := c.GlobalHoles
	for _, h := range c.ScopeHoles {
		n += h
	}
	return n
}

// NumVars returns the total variable count.
func (c *TwoLevelConfig) NumVars() int {
	n := c.GlobalVars
	for _, v := range c.ScopeVars {
		n += v
	}
	return n
}

// scopeVarBase returns the first variable id of scope i.
func (c *TwoLevelConfig) scopeVarBase(i int) int {
	base := c.GlobalVars
	for j := 0; j < i; j++ {
		base += c.ScopeVars[j]
	}
	return base
}

// NaiveCount is the size of the unreduced Cartesian product:
// |v^g|^GlobalHoles * prod_i (|v^g|+|v^i|)^ScopeHoles[i] (paper §3.1).
func (c *TwoLevelConfig) NaiveCount() *big.Int {
	total := new(big.Int).Exp(big.NewInt(int64(c.GlobalVars)), big.NewInt(int64(c.GlobalHoles)), nil)
	if c.GlobalHoles == 0 {
		total.SetInt64(1)
	}
	for i, h := range c.ScopeHoles {
		if h == 0 {
			continue
		}
		k := big.NewInt(int64(c.GlobalVars + c.ScopeVars[i]))
		total.Mul(total, new(big.Int).Exp(k, big.NewInt(int64(h)), nil))
	}
	return total
}

// PaperCount reproduces the arithmetic of the paper's PartitionScope
// procedure and Algorithm 1 exactly (Example 6 evaluates to 36):
//
//	S'_f = SumStirling(n, |v^g|)                       (all holes global)
//	     + sum over per-scope promotions k_i in [0, u_i-1]:
//	         prod_i C(u_i, k_i) * SumStirling(u_i-k_i, |v^i|)
//	         * Stirling2(G + sum k_i, |v^g|)           (exactly-|v^g| blocks)
//
// Note this is the paper's published arithmetic, which both misses some
// compact-alpha classes and double-counts one partition shape relative to
// the exact orbit count (DESIGN.md §2); CanonicalProblem().CanonicalCount()
// gives the exact count.
func (c *TwoLevelConfig) PaperCount() *big.Int {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	total := partition.SumStirling(c.NumHoles(), c.GlobalVars)
	t := len(c.ScopeHoles)
	if t == 0 {
		return total
	}
	var rec func(i, promoted int, weight *big.Int)
	rec = func(i, promoted int, weight *big.Int) {
		if i == t {
			g := c.GlobalHoles + promoted
			term := new(big.Int).Mul(weight, partition.Stirling2(g, c.GlobalVars))
			total.Add(total, term)
			return
		}
		u := c.ScopeHoles[i]
		v := c.ScopeVars[i]
		for k := 0; k <= u-1; k++ {
			w := new(big.Int).Mul(weight, partition.Binomial(u, k))
			w.Mul(w, partition.SumStirling(u-k, v))
			rec(i+1, promoted+k, w)
		}
		// scopes with zero holes contribute the empty choice
		if u == 0 {
			rec(i+1, promoted, weight)
		}
	}
	rec(0, 0, big.NewInt(1))
	return total
}

// EachPaper enumerates the fillings produced by a literal implementation of
// the paper's PartitionScope procedure: the all-global solutions S'_f plus,
// for every combination of promoted local holes, the Cartesian product of
// an exactly-|v^g|-block partition of the global+promoted holes with
// at-most-|v^i|-block partitions of each scope's remaining holes.
//
// assign[i] is the variable id filling hole i (normal form order). The
// slice is reused; copy to retain. Returns the number of fillings yielded,
// which equals PaperCount(); the paper's procedure can emit duplicate
// fillings (one partition shape is reachable through two different
// promotion choices), and duplicates are yielded faithfully.
func (c *TwoLevelConfig) EachPaper(yield func(assign []int) bool) int {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	n := c.NumHoles()
	assign := make([]int, n)
	count := 0
	stop := false
	emit := func() bool {
		count++
		if !yield(assign) {
			stop = true
			return false
		}
		return true
	}

	// S'_f: all holes filled with global variables.
	partition.EachRGS(n, c.GlobalVars, func(rgs []int) bool {
		for i, b := range rgs {
			assign[i] = b // block b -> global variable b
		}
		return emit()
	})
	if stop || len(c.ScopeHoles) == 0 {
		return count
	}

	// scopeHoleOffset[i] is the index in normal form of scope i's first hole.
	offset := make([]int, len(c.ScopeHoles))
	off := c.GlobalHoles
	for i, h := range c.ScopeHoles {
		offset[i] = off
		off += h
	}

	// promoted[i] holds the chosen promoted holes of scope i (hole indices
	// local to the scope).
	promoted := make([][]int, len(c.ScopeHoles))

	var assignScopes func(i int) bool
	// assignScopes enumerates local partitions for scopes i..t-1 and then
	// the global partition; returns false to abort everything.
	var assignGlobalAndEmit func() bool

	assignGlobalAndEmit = func() bool {
		// gather global-side holes: the true globals plus all promoted
		var gh []int
		for i := 0; i < c.GlobalHoles; i++ {
			gh = append(gh, i)
		}
		for si, pr := range promoted {
			for _, lh := range pr {
				gh = append(gh, offset[si]+lh)
			}
		}
		ok := true
		partition.EachRGSExact(len(gh), c.GlobalVars, func(rgs []int) bool {
			for j, b := range rgs {
				assign[gh[j]] = b
			}
			if !emit() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}

	var assignLocals func(si int) bool
	assignLocals = func(si int) bool {
		if si == len(c.ScopeHoles) {
			return assignGlobalAndEmit()
		}
		rem := partition.Complement(c.ScopeHoles[si], promoted[si])
		base := c.scopeVarBase(si)
		ok := true
		partition.EachRGS(len(rem), c.ScopeVars[si], func(rgs []int) bool {
			for j, b := range rgs {
				assign[offset[si]+rem[j]] = base + b
			}
			if !assignLocals(si + 1) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}

	var chooseProm func(si int) bool
	chooseProm = func(si int) bool {
		if si == len(c.ScopeHoles) {
			return assignLocals(0)
		}
		u := c.ScopeHoles[si]
		if u == 0 {
			promoted[si] = nil
			return chooseProm(si + 1)
		}
		ok := true
		for k := 0; k <= u-1 && ok; k++ {
			partition.EachCombination(u, k, func(comb []int) bool {
				promoted[si] = append([]int(nil), comb...)
				if !chooseProm(si + 1) {
					ok = false
					return false
				}
				return true
			})
		}
		return ok
	}

	assignScopes = chooseProm
	assignScopes(0)
	return count
}

// CanonicalProblem converts the two-level configuration into the abstract
// grouped problem solved exactly by the canonical enumerator: one group of
// global variables admissible everywhere, plus one group per scope
// admissible at that scope's holes.
func (c *TwoLevelConfig) CanonicalProblem() *partition.Problem {
	n := c.NumHoles()
	p := &partition.Problem{NumHoles: n, Allowed: make([][]int, n)}
	groups := []int{}
	if c.GlobalVars > 0 {
		groups = append(groups, c.GlobalVars)
	}
	globalGroup := -1
	if c.GlobalVars > 0 {
		globalGroup = 0
	}
	scopeGroup := make([]int, len(c.ScopeVars))
	for i, v := range c.ScopeVars {
		if v > 0 {
			scopeGroup[i] = len(groups)
			groups = append(groups, v)
		} else {
			scopeGroup[i] = -1
		}
	}
	p.GroupSizes = groups
	hi := 0
	for ; hi < c.GlobalHoles; hi++ {
		p.Allowed[hi] = []int{globalGroup}
	}
	for i, h := range c.ScopeHoles {
		for j := 0; j < h; j++ {
			var as []int
			if globalGroup >= 0 {
				as = append(as, globalGroup)
			}
			if scopeGroup[i] >= 0 {
				as = append(as, scopeGroup[i])
			}
			p.Allowed[hi] = as
			hi++
		}
	}
	return p
}
