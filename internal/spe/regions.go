package spe

import "math/big"

// Region cuts: a campaign plan walks the canonical indices {j*stride :
// 0 <= j < tested}. With intra-procedural granularity that walk is a
// mixed-radix counter over per-function rank digits, so contiguous spans
// of tested positions share the filling of every function more
// significant than the highest digit the walk actually moves. Cutting
// the tested range at the points where that highest-moving digit
// increments yields scheduling regions whose variants share one
// function's filling — the hole-group ranges the region scheduler
// scores independently.
//
// The derivation is pure arithmetic over the per-function counts (no
// unranking): digit i has suffix weight suffix(i) = Π counts[i+1..];
// it moves over the walked range iff suffix(i) <= maxIdx, where
// maxIdx = (tested-1)*stride is the last walked canonical index. The
// most significant such digit with more than one value is the region
// axis. The walk crosses a region boundary each time the canonical
// index passes a multiple of the axis suffix, so the cut points in
// tested space are j = ceil(p*suffix/stride) for p = 1..maxIdx/suffix,
// coalesced evenly so at most maxRegions regions remain.
//
// All arithmetic fits int64 because the campaign clamps stride to 64:
// maxIdx <= tested*64 and the axis suffix is <= maxIdx by construction.

var bigOne = big.NewInt(1)

// FuncCounts returns the per-function canonical filling counts, in
// source order — the mixed-radix digits of the space (first function
// most significant). Useful for diagnosing how RegionCuts chose its
// axis; returns nil under inter-procedural granularity.
func (s *Space) FuncCounts() []*big.Int {
	if s.ranker != nil {
		return nil
	}
	out := make([]*big.Int, len(s.counts))
	for i, c := range s.counts {
		out[i] = new(big.Int).Set(c)
	}
	return out
}

// RegionCuts returns the sorted tested-space start positions of the
// plan's scheduling regions; starts[0] is always 0 and a single-element
// result means the file is one opaque region (inter-procedural
// granularity, a single varying function, or a walk too short to cut).
// The result is a pure function of the skeleton's counts, stride, and
// tested — every engine (in-process, remote, worker-side planner)
// derives identical cuts.
func (s *Space) RegionCuts(stride, tested int64, maxRegions int) []int64 {
	single := []int64{0}
	if tested <= 1 || maxRegions <= 1 || stride <= 0 || s.ranker != nil || len(s.fps) == 0 {
		return single
	}
	maxIdx := (tested - 1) * stride
	maxBig := big.NewInt(maxIdx)
	// pick the most significant digit that both moves over the walked
	// range (suffix <= maxIdx) and has more than one value
	axis := -1
	var axisSuffix int64 = 1
	suffix := big.NewInt(1)
	for i := len(s.fps) - 1; i >= 0; i-- {
		if suffix.Cmp(maxBig) > 0 {
			break
		}
		if s.counts[i].Cmp(bigOne) > 0 {
			axis = i
			axisSuffix = suffix.Int64()
		}
		suffix.Mul(suffix, s.counts[i])
	}
	if axis < 0 {
		return single
	}
	// d = how many times the axis digit increments over the walk; >= 1
	// because axisSuffix <= maxIdx held when the axis was chosen
	d := maxIdx / axisSuffix
	group := (d + int64(maxRegions)) / int64(maxRegions) // ceil((d+1)/maxRegions)
	starts := []int64{0}
	for p := group; p <= d; p += group {
		j := (p*axisSuffix + stride - 1) / stride
		if j >= tested {
			break
		}
		if j > starts[len(starts)-1] {
			starts = append(starts, j)
		}
	}
	return starts
}
