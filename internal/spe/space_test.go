package spe

import (
	"math/big"
	"testing"

	"spe/internal/partition"
	"spe/internal/skeleton"
)

// spaceSeeds are multi-function programs kept small enough that the whole
// canonical sequence can be checked against FillAt, including the
// mixed-radix rollovers between per-function digit positions.
var spaceSeeds = []string{
	`
int a, b;
int f() { return a + b; }
int main() {
    int c = 0;
    c = a + c;
    return b + c;
}
`,
	`
int g;
int f() { int x = 1; return g + x; }
int h() { int y = 2, z = 3; return y + z + g; }
int main() { return f() + h() + g; }
`,
}

// TestSpaceMatchesEnumeration asserts that FillAt(i) reproduces the i-th
// fill of EnumerateFills for every index, under both granularities.
func TestSpaceMatchesEnumeration(t *testing.T) {
	for si, src := range spaceSeeds {
		sk := skeleton.MustBuild(src)
		for _, gran := range []Granularity{Intra, Inter} {
			opts := Options{Mode: ModeCanonical, Granularity: gran}
			sp, err := NewSpace(sk, opts)
			if err != nil {
				t.Fatalf("seed %d gran %v: %v", si, gran, err)
			}
			var fills []string
			_, err = EnumerateFills(sk, opts, func(idx int, fill []partition.VarRef) bool {
				fills = append(fills, partition.FillKey(fill))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if sp.Total().Cmp(big.NewInt(int64(len(fills)))) != 0 {
				t.Fatalf("seed %d gran %v: total %s, enumerated %d", si, gran, sp.Total(), len(fills))
			}
			if sp.Total().Cmp(Count(sk, opts)) != 0 {
				t.Fatalf("seed %d gran %v: total %s != Count %s", si, gran, sp.Total(), Count(sk, opts))
			}
			for i := range fills {
				fill, err := sp.FillAt(big.NewInt(int64(i)))
				if err != nil {
					t.Fatalf("seed %d gran %v: FillAt(%d): %v", si, gran, i, err)
				}
				if partition.FillKey(fill) != fills[i] {
					t.Fatalf("seed %d gran %v: FillAt(%d) diverges from enumeration", si, gran, i)
				}
			}
			if _, err := sp.FillAt(sp.Total()); err == nil {
				t.Errorf("seed %d gran %v: FillAt(total) did not error", si, gran)
			}
		}
	}
}

func TestSpaceRejectsNonCanonical(t *testing.T) {
	sk := skeleton.MustBuild(spaceSeeds[0])
	if _, err := NewSpace(sk, Options{Mode: ModeNaive}); err == nil {
		t.Error("NewSpace accepted ModeNaive")
	}
	if _, err := NewSpace(sk, Options{Mode: ModePaper}); err == nil {
		t.Error("NewSpace accepted ModePaper")
	}
}
