package spe

import (
	"fmt"
	"math/big"

	"spe/internal/partition"
	"spe/internal/skeleton"
)

// Mode selects the enumeration algorithm.
type Mode int

// Enumeration modes.
const (
	// ModeCanonical enumerates exactly one representative per
	// compact-alpha-equivalence class (grouped restricted growth strings).
	ModeCanonical Mode = iota
	// ModeNaive enumerates the full Cartesian product (paper §3.1).
	ModeNaive
	// ModePaper counts with the paper's PartitionScope arithmetic
	// (Algorithm 1); counting only at the skeleton level.
	ModePaper
)

func (m Mode) String() string {
	switch m {
	case ModeCanonical:
		return "canonical"
	case ModeNaive:
		return "naive"
	default:
		return "paper"
	}
}

// Granularity selects the paper's §4.3 enumeration granularity.
type Granularity int

// Granularities.
const (
	// Intra enumerates each function independently and combines solutions
	// by Cartesian product (the paper's default).
	Intra Granularity = iota
	// Inter enumerates the whole program as a single problem.
	Inter
)

// Options configures counting and enumeration.
type Options struct {
	Mode        Mode
	Granularity Granularity
	// Threshold, when non-nil, is the paper's per-file variant cap (§5.2.1
	// uses 10,000): files whose count exceeds it should be skipped.
	Threshold *big.Int
}

// Count returns the number of programs the configured enumeration would
// produce for the skeleton. ModeNaive reproduces the paper's naive
// baseline, which enumerates declaration holes as well as uses (Figure 6);
// the other modes quotient declaration arrangements away entirely, so only
// the naive count carries the skeleton's DeclHoleFactor.
func Count(sk *skeleton.Skeleton, opts Options) *big.Int {
	var total *big.Int
	switch opts.Granularity {
	case Inter:
		total = countProblem(sk.Problem(), opts.Mode, nil)
	default:
		total = big.NewInt(1)
		for _, fp := range sk.FuncProblems() {
			total.Mul(total, countProblem(fp.Problem, opts.Mode, fp))
		}
	}
	if opts.Mode == ModeNaive {
		total.Mul(total, sk.DeclHoleFactor())
	}
	return total
}

func countProblem(p *partition.Problem, mode Mode, fp *skeleton.FuncProblem) *big.Int {
	switch mode {
	case ModeNaive:
		return p.NaiveCount()
	case ModePaper:
		return TwoLevelFromProblem(p).PaperCount()
	default:
		return p.CanonicalCount()
	}
}

// ExceedsThreshold reports whether the skeleton's variant count exceeds the
// configured threshold (always false when no threshold is set).
func ExceedsThreshold(sk *skeleton.Skeleton, opts Options) bool {
	if opts.Threshold == nil {
		return false
	}
	return Count(sk, opts).Cmp(opts.Threshold) > 0
}

// Variant is one enumerated program.
type Variant struct {
	// Index is the 0-based position in enumeration order.
	Index int
	// Source is the rendered C program.
	Source string
	// Fill is the whole-skeleton filling that produced it.
	Fill []partition.VarRef
}

// Enumerate renders every program of the configured enumeration, calling
// yield for each; enumeration stops early when yield returns false.
// ModePaper is count-only and returns an error. Returns the number of
// variants yielded.
func Enumerate(sk *skeleton.Skeleton, opts Options, yield func(v Variant) bool) (int, error) {
	return EnumerateFills(sk, opts, func(idx int, fill []partition.VarRef) bool {
		return yield(Variant{
			Index:  idx,
			Source: sk.Render(fill),
			Fill:   append([]partition.VarRef(nil), fill...),
		})
	})
}

// EnumerateFills is Enumerate without rendering: yield receives the raw
// filling, letting callers sample sparsely (rendering only what they test)
// over very large enumeration sets. Returns the number of fillings yielded.
func EnumerateFills(sk *skeleton.Skeleton, opts Options, yield func(idx int, fill []partition.VarRef) bool) (int, error) {
	if opts.Mode == ModePaper {
		return 0, fmt.Errorf("spe: ModePaper supports counting only; use TwoLevelConfig.EachPaper for abstract enumeration")
	}
	n := 0
	emit := func(fill []partition.VarRef) bool {
		ok := yield(n, fill)
		n++
		return ok
	}
	switch opts.Granularity {
	case Inter:
		p := sk.Problem()
		if opts.Mode == ModeNaive {
			p.EachNaive(emit)
		} else {
			p.EachCanonical(emit)
		}
	default:
		fps := sk.FuncProblems()
		whole := sk.OriginalFill()
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(fps) {
				return emit(whole)
			}
			fp := fps[i]
			each := fp.Problem.EachCanonical
			if opts.Mode == ModeNaive {
				each = fp.Problem.EachNaive
			}
			ok := true
			each(func(fill []partition.VarRef) bool {
				for j, vr := range fill {
					whole[fp.HoleIdx[j]] = partition.VarRef{
						Group: fp.GroupIdx[vr.Group],
						Index: vr.Index,
					}
				}
				if !rec(i + 1) {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		rec(0)
	}
	return n, nil
}

// TwoLevelFromProblem abstracts a grouped problem into the paper's
// two-level (global + flat scopes) model:
//
//   - groups admissible at every hole form the global variable pool;
//   - the remaining groups are clustered into scopes (groups sharing a hole
//     belong to the same scope), matching the paper's assumption that each
//     hole sees the globals plus at most one local scope;
//   - a scope's holes are the holes admitting any of its groups.
//
// The abstraction drops per-type constraints, exactly as the paper's
// formalization does (§4.2.1 treats all variables of a scope as one set).
func TwoLevelFromProblem(p *partition.Problem) *TwoLevelConfig {
	numHoles := p.NumHoles
	isGlobal := make([]bool, len(p.GroupSizes))
	admitCount := make([]int, len(p.GroupSizes))
	for _, as := range p.Allowed {
		for _, g := range as {
			admitCount[g]++
		}
	}
	for g := range p.GroupSizes {
		isGlobal[g] = admitCount[g] == numHoles && numHoles > 0
	}

	// union-find over non-global groups connected through shared holes
	parent := make([]int, len(p.GroupSizes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, as := range p.Allowed {
		var prev = -1
		for _, g := range as {
			if isGlobal[g] {
				continue
			}
			if prev >= 0 {
				union(prev, g)
			}
			prev = g
		}
	}

	cfg := &TwoLevelConfig{}
	for g, sz := range p.GroupSizes {
		if isGlobal[g] {
			cfg.GlobalVars += sz
		}
	}
	scopeOf := make(map[int]int)
	for g, sz := range p.GroupSizes {
		if isGlobal[g] {
			continue
		}
		root := find(g)
		si, ok := scopeOf[root]
		if !ok {
			si = len(cfg.ScopeVars)
			scopeOf[root] = si
			cfg.ScopeVars = append(cfg.ScopeVars, 0)
			cfg.ScopeHoles = append(cfg.ScopeHoles, 0)
		}
		cfg.ScopeVars[si] += sz
	}
	for _, as := range p.Allowed {
		scope := -1
		for _, g := range as {
			if !isGlobal[g] {
				scope = scopeOf[find(g)]
				break
			}
		}
		if scope >= 0 {
			cfg.ScopeHoles[scope]++
		} else {
			cfg.GlobalHoles++
		}
	}
	return cfg
}
