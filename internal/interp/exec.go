package interp

import (
	"fmt"

	"spe/internal/cc"
)

// execBlock executes a block statement.
func (m *machine) execBlock(b *cc.BlockStmt) flow {
	return m.execList(b.List)
}

// execList executes a statement list, handling goto targeting any label
// contained in the list (possibly nested).
func (m *machine) execList(stmts []cc.Stmt) flow {
	i := 0
	for i < len(stmts) {
		f := m.exec(stmts[i])
		if f == flowGoto {
			j := findLabel(stmts, m.gotoLabel)
			if j < 0 {
				return flowGoto // propagate to an enclosing list
			}
			m.seeking = true
			i = j
			continue
		}
		if f != flowNormal {
			return f
		}
		i++
	}
	return flowNormal
}

// findLabel returns the index of the statement containing label, or -1.
func findLabel(stmts []cc.Stmt, label string) int {
	for i, st := range stmts {
		if stmtContainsLabel(st, label) {
			return i
		}
	}
	return -1
}

func stmtContainsLabel(st cc.Stmt, label string) bool {
	switch st := st.(type) {
	case *cc.LabeledStmt:
		return st.Label == label || stmtContainsLabel(st.Stmt, label)
	case *cc.BlockStmt:
		for _, s := range st.List {
			if stmtContainsLabel(s, label) {
				return true
			}
		}
		return false
	case *cc.IfStmt:
		if stmtContainsLabel(st.Then, label) {
			return true
		}
		return st.Else != nil && stmtContainsLabel(st.Else, label)
	case *cc.WhileStmt:
		return stmtContainsLabel(st.Body, label)
	case *cc.DoWhileStmt:
		return stmtContainsLabel(st.Body, label)
	case *cc.ForStmt:
		return stmtContainsLabel(st.Body, label)
	default:
		return false
	}
}

// exec executes one statement. In seeking mode (an in-flight goto), it
// skips statements until the target label is reached, descending into
// compound statements that contain it.
func (m *machine) exec(st cc.Stmt) flow {
	if m.seeking {
		return m.execSeeking(st)
	}
	m.stepNode(st)
	if m.trackExec {
		m.executed[st] = true
	}
	switch st := st.(type) {
	case *cc.BlockStmt:
		return m.execList(st.List)
	case *cc.DeclStmt:
		for _, d := range st.Decls {
			m.execDecl(d)
		}
		return flowNormal
	case *cc.ExprStmt:
		m.evalDiscard(st.X)
		return flowNormal
	case *cc.EmptyStmt:
		return flowNormal
	case *cc.IfStmt:
		cond := m.evalCond(st.Cond)
		if cond {
			return m.exec(st.Then)
		}
		if st.Else != nil {
			return m.exec(st.Else)
		}
		return flowNormal
	case *cc.WhileStmt:
		for {
			if !m.evalCond(st.Cond) {
				return flowNormal
			}
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
		}
	case *cc.DoWhileStmt:
		for {
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
			if !m.evalCond(st.Cond) {
				return flowNormal
			}
		}
	case *cc.ForStmt:
		if st.Init != nil {
			if f := m.exec(st.Init); f != flowNormal {
				return f
			}
		}
		for {
			if st.Cond != nil && !m.evalCond(st.Cond) {
				return flowNormal
			}
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
			if st.Post != nil {
				m.evalDiscard(st.Post)
			}
		}
	case *cc.ReturnStmt:
		if st.X != nil {
			m.retVal = m.eval(st.X)
			m.retSet = true
		} else {
			m.retSet = false
		}
		return flowReturn
	case *cc.BreakStmt:
		return flowBreak
	case *cc.ContinueStmt:
		return flowContinue
	case *cc.GotoStmt:
		m.gotoLabel = st.Label
		return flowGoto
	case *cc.LabeledStmt:
		return m.exec(st.Stmt)
	default:
		panic(fmt.Sprintf("interp: unknown statement %T", st))
	}
}

// execSeeking advances toward the goto target label.
func (m *machine) execSeeking(st cc.Stmt) flow {
	label := m.gotoLabel
	switch st := st.(type) {
	case *cc.LabeledStmt:
		if st.Label == label {
			m.seeking = false
			return m.exec(st.Stmt)
		}
		return m.execSeeking(st.Stmt)
	case *cc.BlockStmt:
		if findLabel(st.List, label) < 0 {
			return flowNormal // skip: target not here
		}
		return m.execList(st.List)
	case *cc.IfStmt:
		if stmtContainsLabel(st.Then, label) {
			return m.exec(st.Then)
		}
		if st.Else != nil && stmtContainsLabel(st.Else, label) {
			return m.exec(st.Else)
		}
		return flowNormal
	case *cc.WhileStmt:
		if !stmtContainsLabel(st.Body, label) {
			return flowNormal
		}
		// enter the loop body at the label, then continue looping normally
		for first := true; ; first = false {
			if !first {
				if !m.evalCond(st.Cond) {
					return flowNormal
				}
			}
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
		}
	case *cc.DoWhileStmt:
		if !stmtContainsLabel(st.Body, label) {
			return flowNormal
		}
		for {
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
			if !m.evalCond(st.Cond) {
				return flowNormal
			}
		}
	case *cc.ForStmt:
		if !stmtContainsLabel(st.Body, label) {
			return flowNormal
		}
		for first := true; ; first = false {
			if !first {
				if st.Post != nil {
					m.evalDiscard(st.Post)
				}
				if st.Cond != nil && !m.evalCond(st.Cond) {
					return flowNormal
				}
			}
			f := m.exec(st.Body)
			switch f {
			case flowBreak:
				return flowNormal
			case flowReturn, flowGoto:
				return f
			}
		}
	default:
		return flowNormal // skip simple statements while seeking
	}
}

// execDecl allocates a local variable and runs its initializer. Static
// locals are allocated and initialized exactly once and persist across
// calls (C semantics).
func (m *machine) execDecl(d *cc.VarDecl) {
	if d.Storage == cc.StorageStatic {
		obj := m.statics[d.Sym.ID]
		if obj == nil {
			obj = m.alloc(d.Sym.Type, d.Name)
			obj.Persistent = true
			m.statics[d.Sym.ID] = obj
			if d.Init != nil {
				m.initObject(obj, d.Sym.Type, d.Init)
			} else {
				m.zeroObject(obj, d.Sym.Type)
			}
		}
		if len(m.frames) > 0 {
			m.frames[len(m.frames)-1].vars[d.Sym.ID] = obj
		}
		return
	}
	obj := m.alloc(d.Sym.Type, d.Name)
	if len(m.frames) > 0 {
		m.frames[len(m.frames)-1].vars[d.Sym.ID] = obj
	} else {
		m.globals[d.Sym.ID] = obj
	}
	if d.Init != nil {
		m.initObject(obj, d.Sym.Type, d.Init)
	}
}

// evalCond evaluates a controlling expression to a boolean, flagging
// uninitialized reads.
func (m *machine) evalCond(e cc.Expr) bool {
	return !m.eval(e).IsZero()
}
