package interp

import (
	"fmt"
	"strings"

	"spe/internal/cc"
)

// Config bounds an execution.
type Config struct {
	// MaxSteps limits the number of statements+expressions evaluated
	// (default 2,000,000).
	MaxSteps int64
	// MaxDepth limits call-stack depth (default 256).
	MaxDepth int
	// MaxOutput limits printf output bytes (default 1 MiB).
	MaxOutput int
}

func (c Config) withDefaults() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 256
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 20
	}
	return c
}

// Result is the outcome of running a program.
type Result struct {
	// Output is everything printed via printf.
	Output string
	// Exit is the process exit code (defined only when UB and Limit are
	// nil and Aborted is false).
	Exit int
	// UB is non-nil when execution encountered undefined behavior.
	UB *UBError
	// Limit is non-nil when a resource limit stopped execution.
	Limit *LimitError
	// Aborted reports a call to abort().
	Aborted bool
	// Steps is the number of evaluation steps performed.
	Steps int64
	// Executed records every statement that was actually executed,
	// for dead-region detection by the mutation baseline.
	Executed map[cc.Stmt]bool
}

// Defined reports whether the program has a defined result (no UB, no
// resource exhaustion).
func (r *Result) Defined() bool { return r.UB == nil && r.Limit == nil }

// Run interprets the program's main function.
func Run(prog *cc.Program, cfg Config) (res *Result) {
	cfg = cfg.withDefaults()
	m := &machine{
		prog:     prog,
		cfg:      cfg,
		globals:  make(map[*cc.Symbol]*Object),
		funcs:    make(map[string]*cc.FuncDecl),
		executed: make(map[cc.Stmt]bool),
	}
	res = &Result{Executed: m.executed}
	defer func() {
		if r := recover(); r != nil {
			switch p := r.(type) {
			case ubPanic:
				res.UB = p.err
			case limitPanic:
				res.Limit = p.err
			case exitPanic:
				res.Exit = p.code
			case abortPanic:
				res.Aborted = true
			default:
				panic(r)
			}
		}
		res.Output = m.out.String()
		res.Steps = m.steps
	}()

	for _, fd := range prog.Funcs {
		m.funcs[fd.Name] = fd
	}
	// initialize globals in declaration order
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			obj := m.alloc(vd.Sym.Type, vd.Name)
			m.globals[vd.Sym] = obj
			if vd.Init != nil {
				m.initObject(obj, vd.Sym.Type, vd.Init)
			} else {
				// file-scope objects are zero-initialized in C
				m.zeroObject(obj, vd.Sym.Type)
			}
		}
	}
	mainFn, ok := m.funcs["main"]
	if !ok {
		res.Limit = &LimitError{Msg: "no main function"}
		return res
	}
	v, has := m.call(mainFn, nil, cc.Pos{Line: 0, Col: 0})
	if has {
		res.Exit = int(uint8(v.I))
	} else {
		res.Exit = 0 // C99 5.1.2.2.3: falling off main returns 0
	}
	return res
}

type ubPanic struct{ err *UBError }
type limitPanic struct{ err *LimitError }
type exitPanic struct{ code int }
type abortPanic struct{}

// flow is the control-flow signal threaded through statement execution.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
	flowGoto
)

type machine struct {
	prog     *cc.Program
	cfg      Config
	globals  map[*cc.Symbol]*Object
	frames   []*frame
	funcs    map[string]*cc.FuncDecl
	out      strings.Builder
	steps    int64
	nextID   int
	executed map[cc.Stmt]bool

	// return value of the innermost returning function
	retVal Value
	retSet bool
	// target label of an in-flight goto
	gotoLabel string
	// seeking is true while unwinding forward to a goto target
	seeking bool
	// string literal objects are interned per literal node
	strLits map[*cc.StringLit]*Object
	// statics holds static-local objects, initialized once and persistent
	// across calls
	statics map[*cc.Symbol]*Object
}

type frame struct {
	fn   *cc.FuncDecl
	vars map[*cc.Symbol]*Object
}

func (m *machine) ub(kind UBKind, pos cc.Pos, format string, args ...interface{}) {
	panic(ubPanic{&UBError{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

func (m *machine) limit(format string, args ...interface{}) {
	panic(limitPanic{&LimitError{Msg: fmt.Sprintf(format, args...)}})
}

func (m *machine) step(pos cc.Pos) {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		m.limit("step budget exhausted at %s", pos)
	}
}

func (m *machine) alloc(t cc.Type, name string) *Object {
	m.nextID++
	return &Object{ID: m.nextID, Cells: make([]Cell, cellCount(t)), Live: true, Name: name}
}

func (m *machine) zeroObject(obj *Object, t cc.Type) {
	st := scalarType(t)
	for i := range obj.Cells {
		obj.Cells[i] = Cell{Val: zeroOf(st), Init: true}
	}
}

func zeroOf(t cc.Type) Value {
	switch {
	case isFloatType(t):
		return FloatValue(0, t)
	default:
		if _, ok := t.(*cc.PointerType); ok {
			return PtrValue(Pointer{}, t)
		}
		return IntValue(0, t)
	}
}

// initObject evaluates an initializer into obj.
func (m *machine) initObject(obj *Object, t cc.Type, init cc.Expr) {
	switch init := init.(type) {
	case *cc.InitList:
		m.initCells(obj, 0, t, init)
		// C zero-fills the remainder of a partially initialized aggregate
		st := scalarType(t)
		for i := range obj.Cells {
			if !obj.Cells[i].Init {
				obj.Cells[i] = Cell{Val: zeroOf(st), Init: true}
			}
		}
	default:
		v := m.eval(init)
		v = m.convert(v, valueType(t), init.NodePos())
		obj.Cells[0] = Cell{Val: v, Init: true}
	}
}

// initCells fills cells from an initializer list, returning the next cell.
func (m *machine) initCells(obj *Object, off int, t cc.Type, il *cc.InitList) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		elemCells := cellCount(t.Elem)
		for i, e := range il.List {
			if i >= t.Len {
				m.ub(UBOutOfBounds, il.Pos, "excess array initializers")
			}
			if sub, ok := e.(*cc.InitList); ok {
				m.initCells(obj, off+i*elemCells, t.Elem, sub)
			} else {
				v := m.convert(m.eval(e), valueType(t.Elem), e.NodePos())
				obj.Cells[off+i*elemCells] = Cell{Val: v, Init: true}
			}
		}
		return off + t.Len*elemCells
	case *cc.StructType:
		fo := off
		for i, e := range il.List {
			if i >= len(t.Fields) {
				m.ub(UBOutOfBounds, il.Pos, "excess struct initializers")
			}
			ft := t.Fields[i].Type
			if sub, ok := e.(*cc.InitList); ok {
				m.initCells(obj, fo, ft, sub)
			} else {
				v := m.convert(m.eval(e), valueType(ft), e.NodePos())
				obj.Cells[fo] = Cell{Val: v, Init: true}
			}
			fo += cellCount(ft)
		}
		return off + cellCount(t)
	default:
		if len(il.List) != 1 {
			m.ub(UBOutOfBounds, il.Pos, "scalar initializer list")
		}
		v := m.convert(m.eval(il.List[0]), valueType(t), il.Pos)
		obj.Cells[off] = Cell{Val: v, Init: true}
		return off + 1
	}
}

// valueType maps a declared type to the scalar type stored in cells (arrays
// of T store T cells; pointers and scalars store themselves).
func valueType(t cc.Type) cc.Type {
	return scalarType(t)
}

// call invokes fn with evaluated arguments, returning its value (if any).
func (m *machine) call(fn *cc.FuncDecl, args []Value, pos cc.Pos) (Value, bool) {
	if len(m.frames) >= m.cfg.MaxDepth {
		m.limit("call depth exceeded at %s", pos)
	}
	fr := &frame{fn: fn, vars: make(map[*cc.Symbol]*Object)}
	for i, p := range fn.Params {
		obj := m.alloc(p.Type, p.Name)
		var v Value
		if i < len(args) {
			v = m.convert(args[i], valueType(p.Type), pos)
		} else {
			v = zeroOf(valueType(p.Type))
		}
		obj.Cells[0] = Cell{Val: v, Init: true}
		if p.Sym != nil {
			fr.vars[p.Sym] = obj
		}
	}
	m.frames = append(m.frames, fr)
	defer func() {
		for _, obj := range fr.vars {
			if !obj.Persistent {
				obj.Live = false
			}
		}
		m.frames = m.frames[:len(m.frames)-1]
	}()

	m.retSet = false
	f := m.execBlock(fn.Body)
	if f == flowGoto {
		m.ub(UBOutOfBounds, pos, "goto to label %q escaped function", m.gotoLabel)
	}
	if m.retSet {
		ret := m.retVal
		m.retSet = false
		return ret, true
	}
	return Value{}, false
}

// lookupVar finds the object bound to a symbol.
func (m *machine) lookupVar(sym *cc.Symbol, pos cc.Pos) *Object {
	if len(m.frames) > 0 {
		if obj, ok := m.frames[len(m.frames)-1].vars[sym]; ok {
			return obj
		}
	}
	if obj, ok := m.globals[sym]; ok {
		return obj
	}
	// a local of an enclosing block not yet allocated (e.g. jumped over by
	// goto before its DeclStmt ran): allocate lazily, uninitialized
	obj := m.alloc(sym.Type, sym.Name)
	if len(m.frames) > 0 && sym.FuncIdx >= 0 {
		m.frames[len(m.frames)-1].vars[sym] = obj
	} else {
		m.globals[sym] = obj
	}
	return obj
}
