package interp

import (
	"fmt"

	"spe/internal/cc"
)

// Config bounds an execution.
type Config struct {
	// MaxSteps limits the number of statements+expressions evaluated
	// (default 2,000,000).
	MaxSteps int64
	// MaxDepth limits call-stack depth (default 256).
	MaxDepth int
	// MaxOutput limits printf output bytes (default 1 MiB).
	MaxOutput int
}

func (c Config) withDefaults() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 256
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 20
	}
	return c
}

// Result is the outcome of running a program.
type Result struct {
	// Output is everything printed via printf.
	Output string
	// Exit is the process exit code (defined only when UB and Limit are
	// nil and Aborted is false).
	Exit int
	// UB is non-nil when execution encountered undefined behavior.
	UB *UBError
	// Limit is non-nil when a resource limit stopped execution.
	Limit *LimitError
	// Aborted reports a call to abort().
	Aborted bool
	// Steps is the number of evaluation steps performed.
	Steps int64
	// Executed records every statement that was actually executed,
	// for dead-region detection by the mutation baseline. When the Result
	// comes from a reusable Machine, the map is owned by the Machine and
	// only valid until its next Run.
	Executed map[cc.Stmt]bool
}

// Defined reports whether the program has a defined result (no UB, no
// resource exhaustion).
func (r *Result) Defined() bool { return r.UB == nil && r.Limit == nil }

// Run interprets the program's main function on a fresh, single-use
// machine. The returned Result (including Result.Executed) is independently
// owned by the caller. Callers executing many programs in sequence — the
// campaign engine runs one per variant — should reuse a Machine instead,
// which recycles its frames, environments, and memory objects across runs.
func Run(prog *cc.Program, cfg Config) *Result {
	m := machine{trackExec: true}
	return m.run(prog, cfg)
}

// Machine is a reusable interpreter. Running a program through a Machine is
// observationally identical to the package-level Run, but the machine's
// internal state — object slab, frame free list, environment maps, output
// buffer — is reset and reused instead of reallocated, which removes
// nearly all per-run allocation on the campaign hot path.
//
// Ownership contract: a Machine is strictly single-goroutine (give each
// worker its own; there is no internal locking), and the Result of Run —
// in particular Result.Executed — aliases machine-owned storage that is
// recycled by the next Run. Callers that retain a Result across runs must
// copy what they need first. No state leaks between runs: globals, static
// locals, interned string literals, and the heap are rebuilt from the
// program on every Run (pinned by the dirty-state regression tests).
type Machine struct {
	m machine
}

// NewMachine returns an empty reusable interpreter.
func NewMachine() *Machine { return &Machine{} }

// Run interprets the program's main function, reusing the machine's pooled
// state. See the Machine ownership contract for Result lifetime.
func (mm *Machine) Run(prog *cc.Program, cfg Config) *Result {
	return mm.m.run(prog, cfg)
}

type ubPanic struct{ err *UBError }
type limitPanic struct{ err *LimitError }
type exitPanic struct{ code int }
type abortPanic struct{}

// flow is the control-flow signal threaded through statement execution.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
	flowGoto
)

type machine struct {
	prog *cc.Program
	cfg  Config
	// globals and statics are object environments indexed by the dense
	// Symbol.ID (valid because every symbol of the running program is in
	// prog.Symbols); frames carry the same representation per call.
	globals []*Object
	statics []*Object
	nsyms   int
	frames  []*frame
	funcs   map[string]*cc.FuncDecl
	out     []byte
	steps   int64
	nextID  int
	// trackExec enables the Result.Executed statement map. The package-
	// level Run records it (the mutation baseline consumes it); pooled
	// Machines skip the per-statement map write on the campaign hot path.
	trackExec bool
	executed  map[cc.Stmt]bool

	// return value of the innermost returning function
	retVal Value
	retSet bool
	// target label of an in-flight goto
	gotoLabel string
	// seeking is true while unwinding forward to a goto target
	seeking bool
	// string literal objects are interned per literal node
	strLits map[*cc.StringLit]*Object

	// objs is the object slab: every Object this machine ever allocated,
	// reused in allocation order. objUsed is the live prefix of the current
	// run; reset rewinds it to zero instead of releasing anything, so run
	// N+1 re-fills the cells run N left behind.
	objs    []*Object
	objUsed int
	// frameFree recycles call frames (and their variable maps) popped by
	// returning calls.
	frameFree []*frame
}

type frame struct {
	fn *cc.FuncDecl
	// vars is the local environment, indexed by Symbol.ID; nil slots are
	// unbound. A dense slice beats a map here: variable lookup is the
	// single hottest operation of the interpreter.
	vars []*Object
}

// reset rewinds the machine for a fresh run of prog: maps are cleared in
// place, the output buffer and object slab are truncated, and live frames
// (none unless a previous run panicked out) are dropped.
func (m *machine) reset(prog *cc.Program, cfg Config) {
	m.prog = prog
	m.cfg = cfg
	m.steps = 0
	m.nextID = 0
	m.retVal = Value{}
	m.retSet = false
	m.gotoLabel = ""
	m.seeking = false
	m.out = m.out[:0]
	m.objUsed = 0
	m.frames = m.frames[:0]
	m.nsyms = len(prog.Symbols)
	m.globals = resizeEnv(m.globals, m.nsyms)
	m.statics = resizeEnv(m.statics, m.nsyms)
	if m.funcs == nil {
		m.funcs = make(map[string]*cc.FuncDecl)
	} else {
		for k := range m.funcs {
			delete(m.funcs, k)
		}
	}
	if m.trackExec {
		if m.executed == nil {
			m.executed = make(map[cc.Stmt]bool)
		} else {
			for k := range m.executed {
				delete(m.executed, k)
			}
		}
	}
	for k := range m.strLits {
		delete(m.strLits, k)
	}
}

// resizeEnv returns env resized to n slots, all nil.
func resizeEnv(env []*Object, n int) []*Object {
	if cap(env) < n {
		return make([]*Object, n)
	}
	env = env[:n]
	for i := range env {
		env[i] = nil
	}
	return env
}

// run interprets the program's main function.
func (m *machine) run(prog *cc.Program, cfg Config) (res *Result) {
	cfg = cfg.withDefaults()
	m.reset(prog, cfg)
	res = &Result{}
	if m.trackExec {
		res.Executed = m.executed
	}
	defer func() {
		if r := recover(); r != nil {
			switch p := r.(type) {
			case ubPanic:
				res.UB = p.err
			case limitPanic:
				res.Limit = p.err
			case exitPanic:
				res.Exit = p.code
			case abortPanic:
				res.Aborted = true
			default:
				panic(r)
			}
		}
		res.Output = string(m.out)
		res.Steps = m.steps
	}()

	for _, fd := range prog.Funcs {
		m.funcs[fd.Name] = fd
	}
	// initialize globals in declaration order
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			obj := m.alloc(vd.Sym.Type, vd.Name)
			m.globals[vd.Sym.ID] = obj
			if vd.Init != nil {
				m.initObject(obj, vd.Sym.Type, vd.Init)
			} else {
				// file-scope objects are zero-initialized in C
				m.zeroObject(obj, vd.Sym.Type)
			}
		}
	}
	mainFn, ok := m.funcs["main"]
	if !ok {
		res.Limit = &LimitError{Msg: "no main function"}
		return res
	}
	v, has := m.call(mainFn, nil, cc.Pos{Line: 0, Col: 0})
	if has {
		res.Exit = int(uint8(v.I()))
	} else {
		res.Exit = 0 // C99 5.1.2.2.3: falling off main returns 0
	}
	return res
}

func (m *machine) ub(kind UBKind, pos cc.Pos, format string, args ...interface{}) {
	panic(ubPanic{&UBError{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

func (m *machine) limit(format string, args ...interface{}) {
	panic(limitPanic{&LimitError{Msg: fmt.Sprintf(format, args...)}})
}

func (m *machine) step(pos cc.Pos) {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		m.limit("step budget exhausted at %s", pos)
	}
}

// stepNode is step with the position resolved lazily: NodePos is an
// interface call per evaluation step, only needed on the (terminal) budget-
// exhaustion path.
func (m *machine) stepNode(n interface{ NodePos() cc.Pos }) {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		m.limit("step budget exhausted at %s", n.NodePos())
	}
}

// alloc carves an object out of the slab, reusing a previous run's object
// (and its cell capacity) when one is available. Reused cells are cleared
// back to the uninitialized state, so UB detection of uninitialized reads
// is unaffected by pooling. Objects are never recycled within a run —
// dangling-pointer detection relies on dead objects staying distinct.
func (m *machine) alloc(t cc.Type, name string) *Object {
	m.nextID++
	n := cellCount(t)
	if m.objUsed < len(m.objs) {
		obj := m.objs[m.objUsed]
		m.objUsed++
		cells := obj.Cells
		if cap(cells) >= n {
			cells = cells[:n]
			for i := range cells {
				cells[i] = Cell{}
			}
		} else {
			cells = make([]Cell, n)
		}
		*obj = Object{ID: m.nextID, Cells: cells, Live: true, Name: name}
		return obj
	}
	obj := &Object{ID: m.nextID, Cells: make([]Cell, n), Live: true, Name: name}
	m.objs = append(m.objs, obj)
	m.objUsed++
	return obj
}

func (m *machine) zeroObject(obj *Object, t cc.Type) {
	st := scalarType(t)
	for i := range obj.Cells {
		obj.Cells[i] = Cell{Val: zeroOf(st), Init: true}
	}
}

func zeroOf(t cc.Type) Value {
	switch {
	case isFloatType(t):
		return FloatValue(0, t)
	default:
		if _, ok := t.(*cc.PointerType); ok {
			return PtrValue(Pointer{}, t)
		}
		return IntValue(0, t)
	}
}

// initObject evaluates an initializer into obj.
func (m *machine) initObject(obj *Object, t cc.Type, init cc.Expr) {
	switch init := init.(type) {
	case *cc.InitList:
		m.initCells(obj, 0, t, init)
		// C zero-fills the remainder of a partially initialized aggregate
		st := scalarType(t)
		for i := range obj.Cells {
			if !obj.Cells[i].Init {
				obj.Cells[i] = Cell{Val: zeroOf(st), Init: true}
			}
		}
	default:
		v := m.eval(init)
		v = m.convert(v, valueType(t), init.NodePos())
		obj.Cells[0] = Cell{Val: v, Init: true}
	}
}

// initCells fills cells from an initializer list, returning the next cell.
func (m *machine) initCells(obj *Object, off int, t cc.Type, il *cc.InitList) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		elemCells := cellCount(t.Elem)
		for i, e := range il.List {
			if i >= t.Len {
				m.ub(UBOutOfBounds, il.Pos, "excess array initializers")
			}
			if sub, ok := e.(*cc.InitList); ok {
				m.initCells(obj, off+i*elemCells, t.Elem, sub)
			} else {
				v := m.convert(m.eval(e), valueType(t.Elem), e.NodePos())
				obj.Cells[off+i*elemCells] = Cell{Val: v, Init: true}
			}
		}
		return off + t.Len*elemCells
	case *cc.StructType:
		fo := off
		for i, e := range il.List {
			if i >= len(t.Fields) {
				m.ub(UBOutOfBounds, il.Pos, "excess struct initializers")
			}
			ft := t.Fields[i].Type
			if sub, ok := e.(*cc.InitList); ok {
				m.initCells(obj, fo, ft, sub)
			} else {
				v := m.convert(m.eval(e), valueType(ft), e.NodePos())
				obj.Cells[fo] = Cell{Val: v, Init: true}
			}
			fo += cellCount(ft)
		}
		return off + cellCount(t)
	default:
		if len(il.List) != 1 {
			m.ub(UBOutOfBounds, il.Pos, "scalar initializer list")
		}
		v := m.convert(m.eval(il.List[0]), valueType(t), il.Pos)
		obj.Cells[off] = Cell{Val: v, Init: true}
		return off + 1
	}
}

// valueType maps a declared type to the scalar type stored in cells (arrays
// of T store T cells; pointers and scalars store themselves).
func valueType(t cc.Type) cc.Type {
	return scalarType(t)
}

// newFrame takes a frame off the free list (or allocates one) and binds it
// to fn with an empty variable environment.
func (m *machine) newFrame(fn *cc.FuncDecl) *frame {
	var fr *frame
	if n := len(m.frameFree); n > 0 {
		fr = m.frameFree[n-1]
		m.frameFree = m.frameFree[:n-1]
	} else {
		fr = &frame{}
	}
	fr.fn = fn
	fr.vars = resizeEnv(fr.vars, m.nsyms)
	return fr
}

// freeFrame returns a popped frame to the free list for the next call (its
// environment is cleared on reacquisition, sized to the then-current
// program).
func (m *machine) freeFrame(fr *frame) {
	fr.fn = nil
	m.frameFree = append(m.frameFree, fr)
}

// call invokes fn with evaluated arguments, returning its value (if any).
func (m *machine) call(fn *cc.FuncDecl, args []Value, pos cc.Pos) (Value, bool) {
	if len(m.frames) >= m.cfg.MaxDepth {
		m.limit("call depth exceeded at %s", pos)
	}
	fr := m.newFrame(fn)
	for i, p := range fn.Params {
		obj := m.alloc(p.Type, p.Name)
		var v Value
		if i < len(args) {
			v = m.convert(args[i], valueType(p.Type), pos)
		} else {
			v = zeroOf(valueType(p.Type))
		}
		obj.Cells[0] = Cell{Val: v, Init: true}
		if p.Sym != nil {
			fr.vars[p.Sym.ID] = obj
		}
	}
	m.frames = append(m.frames, fr)
	defer func() {
		for _, obj := range fr.vars {
			if obj != nil && !obj.Persistent {
				obj.Live = false
			}
		}
		m.frames = m.frames[:len(m.frames)-1]
		m.freeFrame(fr)
	}()

	m.retSet = false
	f := m.execBlock(fn.Body)
	if f == flowGoto {
		m.ub(UBOutOfBounds, pos, "goto to label %q escaped function", m.gotoLabel)
	}
	if m.retSet {
		ret := m.retVal
		m.retSet = false
		return ret, true
	}
	return Value{}, false
}

// lookupVar finds the object bound to a symbol.
func (m *machine) lookupVar(sym *cc.Symbol, pos cc.Pos) *Object {
	if n := len(m.frames); n > 0 {
		if obj := m.frames[n-1].vars[sym.ID]; obj != nil {
			return obj
		}
	}
	if obj := m.globals[sym.ID]; obj != nil {
		return obj
	}
	// a local of an enclosing block not yet allocated (e.g. jumped over by
	// goto before its DeclStmt ran): allocate lazily, uninitialized
	obj := m.alloc(sym.Type, sym.Name)
	if len(m.frames) > 0 && sym.FuncIdx >= 0 {
		m.frames[len(m.frames)-1].vars[sym.ID] = obj
	} else {
		m.globals[sym.ID] = obj
	}
	return obj
}
