package interp

import (
	"fmt"
	"strings"

	"spe/internal/cc"
)

// FormatPrintf renders a printf format string against a value stream. It is
// shared by the reference interpreter and the minicc VM so that both
// produce byte-identical output for identical values — a requirement for
// differential testing (an output mismatch must imply a miscompilation,
// never a formatting divergence).
//
// next returns successive arguments; readStr resolves a char* value to its
// NUL-terminated contents. Either may report failure, which aborts
// formatting with ok=false.
func FormatPrintf(format string, next func() (Value, bool), readStr func(Value) (string, bool)) (string, bool) {
	var sb strings.Builder
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		spec := "%"
		for i < len(format) && (format[i] == '-' || format[i] == '0' || format[i] == '+' || format[i] == ' ') {
			spec += string(format[i])
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			spec += string(format[i])
			i++
		}
		if i < len(format) && format[i] == '.' {
			spec += "."
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec += string(format[i])
				i++
			}
		}
		long := 0
		for i < len(format) && (format[i] == 'l' || format[i] == 'h') {
			if format[i] == 'l' {
				long++
			}
			i++
		}
		if i >= len(format) {
			break
		}
		conv := format[i]
		i++
		switch conv {
		case '%':
			sb.WriteByte('%')
		case 'd', 'i':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			n := v.I()
			if long == 0 {
				n = int64(int32(n))
			}
			fmt.Fprintf(&sb, spec+"d", n)
		case 'u':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			var n uint64
			if long == 0 {
				n = uint64(uint32(v.I()))
			} else {
				n = uint64(v.I())
			}
			fmt.Fprintf(&sb, spec+"d", n)
		case 'x', 'X':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			var n uint64
			if long == 0 {
				n = uint64(uint32(v.I()))
			} else {
				n = uint64(v.I())
			}
			fmt.Fprintf(&sb, spec+string(conv), n)
		case 'c':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			sb.WriteByte(byte(v.I()))
		case 'f', 'g', 'e':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			fmt.Fprintf(&sb, spec+string(conv), toF(&v))
		case 's':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			s, ok := readStr(v)
			if !ok {
				return sb.String(), false
			}
			sb.WriteString(s)
		case 'p':
			v, ok := next()
			if !ok {
				return sb.String(), false
			}
			if v.Kind == VPtr && !v.P.IsNull() {
				fmt.Fprintf(&sb, "0x%x", v.P.Obj.ID*1_000_000+v.P.Off)
			} else {
				sb.WriteString("(nil)")
			}
		default:
			sb.WriteString(spec)
			sb.WriteByte(conv)
		}
	}
	return sb.String(), true
}

// ToFloat exposes the numeric coercion used by %f/%g for sharing with the
// minicc VM.
func ToFloat(v Value) float64 { return toF(&v) }

// builtinPrintf implements the printf builtin for the reference
// interpreter.
func (m *machine) builtinPrintf(e *cc.CallExpr) Value {
	if len(e.Args) == 0 {
		m.limit("printf with no format at %s", e.Pos)
	}
	fv := m.eval(e.Args[0])
	format := m.readCString(fv, e.Pos)
	argi := 1
	next := func() (Value, bool) {
		if argi >= len(e.Args) {
			m.limit("printf: missing argument for conversion at %s", e.Pos)
		}
		v := m.eval(e.Args[argi])
		argi++
		return v, true
	}
	readStr := func(v Value) (string, bool) {
		return m.readCString(v, e.Pos), true
	}
	out, _ := FormatPrintf(format, next, readStr)
	m.out = append(m.out, out...)
	if len(m.out) > m.cfg.MaxOutput {
		m.limit("output budget exhausted")
	}
	return IntValue(int64(len(out)), cc.TypeInt)
}

// readCString reads a NUL-terminated string through a char pointer.
func (m *machine) readCString(v Value, pos cc.Pos) string {
	if v.Kind != VPtr {
		m.ub(UBNullDeref, pos, "%%s argument is not a pointer")
	}
	var sb strings.Builder
	p := v.P
	for n := 0; ; n++ {
		if n > 1<<16 {
			m.limit("unterminated string at %s", pos)
		}
		m.checkAccess(p, pos, false)
		cell := p.Obj.Cells[p.Off]
		if !cell.Init {
			m.ub(UBUninitRead, pos, "string read")
		}
		if cell.Val.I() == 0 {
			return sb.String()
		}
		sb.WriteByte(byte(cell.Val.I()))
		p.Off++
	}
}
