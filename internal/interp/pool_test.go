package interp

import (
	"fmt"
	"testing"

	"spe/internal/cc"
)

// TestMachineReuseMatchesRun pins the pooling refactor's core contract: a
// reused Machine produces, for every program, exactly the Result a fresh
// single-use machine produces — same output, exit code, UB classification,
// and step count — no matter what ran on the machine before.
func TestMachineReuseMatchesRun(t *testing.T) {
	srcs := []string{
		// plain arithmetic
		`int main() { int a = 3, b = 4; return a * b; }`,
		// globals mutated in place
		`int g = 1;
		 int bump() { g = g + 7; return g; }
		 int main() { bump(); bump(); return g; }`,
		// static locals persisting across calls
		`int f() { static int n = 0; n++; return n; }
		 int main() { f(); f(); return f(); }`,
		// printf output
		`int main() { int i; for (i = 0; i < 3; i++) printf("%d;", i); return 0; }`,
		// uninitialized read (UB)
		`int main() { int x; return x + 1; }`,
		// arrays and pointers
		`int main() { int a[4]; int *p = a; int i;
		   for (i = 0; i < 4; i++) p[i] = i * i;
		   return a[3]; }`,
		// recursion exercising the frame free list
		`int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
		 int main() { return fib(10); }`,
		// dangling pointer (UB via frame-exit kill)
		`int *leak() { int x = 5; return &x; }
		 int main() { int *p = leak(); return *p; }`,
		// abort
		`int main() { abort(); return 1; }`,
	}
	m := NewMachine()
	for i, src := range srcs {
		prog := cc.MustAnalyze(src)
		want := Run(prog, Config{})
		// run everything twice on the shared machine: the second pass hits
		// the slab/frame reuse paths warmed by the first
		for pass := 0; pass < 2; pass++ {
			got := m.Run(prog, Config{})
			if err := sameResult(got, want); err != nil {
				t.Errorf("src %d pass %d: %v", i, pass, err)
			}
		}
	}
}

func sameResult(got, want *Result) error {
	if got.Output != want.Output {
		return fmt.Errorf("output %q, want %q", got.Output, want.Output)
	}
	if got.Exit != want.Exit {
		return fmt.Errorf("exit %d, want %d", got.Exit, want.Exit)
	}
	if (got.UB == nil) != (want.UB == nil) {
		return fmt.Errorf("UB %v, want %v", got.UB, want.UB)
	}
	if got.UB != nil && (got.UB.Kind != want.UB.Kind || got.UB.Msg != want.UB.Msg) {
		return fmt.Errorf("UB %v, want %v", got.UB, want.UB)
	}
	if (got.Limit == nil) != (want.Limit == nil) {
		return fmt.Errorf("limit %v, want %v", got.Limit, want.Limit)
	}
	if got.Aborted != want.Aborted {
		return fmt.Errorf("aborted %v, want %v", got.Aborted, want.Aborted)
	}
	if got.Steps != want.Steps {
		return fmt.Errorf("steps %d, want %d", got.Steps, want.Steps)
	}
	return nil
}

// TestMachineNoStateLeak is the dirty-state regression test: a variant that
// mutates globals, statics, and heap objects must not leak any of it into
// the next variant run on the same machine. The probe program's result
// depends on exactly the state a leak would corrupt.
func TestMachineNoStateLeak(t *testing.T) {
	dirty := cc.MustAnalyze(`
int g = 0;
int arr[8];
int f() { static int calls = 0; calls++; return calls; }
int main() {
    int i;
    g = 999;
    for (i = 0; i < 8; i++) arr[i] = 7;
    f(); f(); f();
    printf("dirty g=%d arr0=%d\n", g, arr[0]);
    return 0;
}`)
	probe := cc.MustAnalyze(`
int g = 0;
int arr[8];
int f() { static int calls = 0; calls++; return calls; }
int main() {
    printf("probe g=%d arr3=%d calls=%d\n", g, arr[3], f());
    return g + arr[3];
}`)
	want := Run(probe, Config{})
	m := NewMachine()
	for round := 0; round < 3; round++ {
		if r := m.Run(dirty, Config{}); !r.Defined() || r.Exit != 0 {
			t.Fatalf("round %d: dirty run failed: %+v", round, r)
		}
		got := m.Run(probe, Config{})
		if err := sameResult(got, want); err != nil {
			t.Fatalf("round %d: state leaked into probe: %v", round, err)
		}
		if got.Exit != 0 || got.Output != "probe g=0 arr3=0 calls=1\n" {
			t.Fatalf("round %d: probe saw dirty state: exit=%d output=%q",
				round, got.Exit, got.Output)
		}
	}
}

// TestMachineUninitAfterReuse pins that slab reuse clears cells back to the
// uninitialized state: a program reading an uninitialized local must report
// UB even when the backing object previously held initialized data.
func TestMachineUninitAfterReuse(t *testing.T) {
	writer := cc.MustAnalyze(`int main() { int x = 42; return x; }`)
	reader := cc.MustAnalyze(`int main() { int x; return x; }`)
	m := NewMachine()
	if r := m.Run(writer, Config{}); r.Exit != 42 || !r.Defined() {
		t.Fatalf("writer: %+v", r)
	}
	r := m.Run(reader, Config{})
	if r.UB == nil || r.UB.Kind != UBUninitRead {
		t.Fatalf("reader after reuse: want uninitialized-read UB, got %+v", r)
	}
}

// TestMachineResultOwnership documents the Result lifetime contract: the
// fresh-machine Run hands out an independent Executed map, so callers that
// need it across runs use Run (or copy), not a shared Machine.
func TestMachineResultOwnership(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { return 3; }`)
	r1 := Run(prog, Config{})
	n := len(r1.Executed)
	prog2 := cc.MustAnalyze(`int main() { int a = 1, b = 2; return a + b; }`)
	Run(prog2, Config{})
	if len(r1.Executed) != n {
		t.Fatalf("package-level Run results must be independent")
	}
}
