package interp

import (
	"fmt"
	"math"

	"spe/internal/cc"
)

// eval evaluates an expression to a scalar value; aggregate-typed
// expressions evaluate to a pointer to their storage (array decay, struct
// by reference).
func (m *machine) eval(e cc.Expr) Value {
	m.stepNode(e)
	// hot cases first: a type switch tests cases in order, and variable
	// reads, literals, and binary arithmetic dominate C expression trees
	switch e := e.(type) {
	case *cc.Ident:
		return m.loadIdent(e)
	case *cc.IntLit:
		return IntValue(e.Val, e.Type)
	case *cc.BinaryExpr:
		return m.evalBinary(e)
	case *cc.AssignExpr:
		return m.evalAssign(e)
	case *cc.UnaryExpr:
		return m.evalUnary(e)
	case *cc.PostfixExpr:
		return m.evalPostfix(e)
	case *cc.FloatLit:
		return FloatValue(e.Val, e.Type)
	case *cc.CharLit:
		return IntValue(int64(e.Val), cc.TypeInt)
	case *cc.StringLit:
		return m.stringValue(e)
	case *cc.CondExpr:
		if m.evalCond(e.Cond) {
			return m.evalBranch(e.T, e)
		}
		return m.evalBranch(e.F, e)
	case *cc.CallExpr:
		v, has := m.evalCall(e)
		if !has {
			m.ub(UBNoReturnValue, e.Pos, "value of %s() used but function returned without a value", e.Fun.Name)
		}
		return v
	case *cc.IndexExpr:
		ptr := m.lvalue(e)
		return m.load(ptr, e.NodePos(), e.ExprType())
	case *cc.MemberExpr:
		ptr := m.lvalue(e)
		return m.load(ptr, e.NodePos(), e.ExprType())
	case *cc.CastExpr:
		v := m.eval(e.X)
		return m.convert(v, e.To, e.Pos)
	case *cc.SizeofExpr:
		t := e.OfType
		if t == nil {
			t = e.X.ExprType()
		}
		if t == nil {
			t = cc.TypeInt
		}
		return IntValue(int64(t.Size()), cc.TypeULong)
	case *cc.CommaExpr:
		var last Value
		for i, x := range e.List {
			if i == len(e.List)-1 {
				last = m.eval(x)
			} else {
				m.evalDiscard(x)
			}
		}
		return last
	default:
		panic(fmt.Sprintf("interp: unknown expression %T", e))
	}
}

// evalBranch evaluates one arm of a conditional; aggregate arms yield their
// storage pointer.
func (m *machine) evalBranch(e cc.Expr, parent *cc.CondExpr) Value {
	if isAggregate(e.ExprType()) {
		ptr := m.lvalue(e)
		return PtrValue(ptr, &cc.PointerType{Elem: e.ExprType()})
	}
	return m.eval(e)
}

func isAggregate(t cc.Type) bool {
	switch t.(type) {
	case *cc.StructType, *cc.ArrayType:
		return true
	}
	return false
}

// evalDiscard evaluates an expression for effect, tolerating functions that
// return no value.
func (m *machine) evalDiscard(e cc.Expr) {
	if call, ok := e.(*cc.CallExpr); ok {
		m.step(call.Pos)
		m.evalCall(call)
		return
	}
	if comma, ok := e.(*cc.CommaExpr); ok {
		for _, x := range comma.List {
			m.evalDiscard(x)
		}
		return
	}
	m.eval(e)
}

// stringValue interns a string literal as a char array object and returns a
// pointer to its first cell.
func (m *machine) stringValue(e *cc.StringLit) Value {
	if m.strLits == nil {
		m.strLits = make(map[*cc.StringLit]*Object)
	}
	obj, ok := m.strLits[e]
	if !ok {
		obj = &Object{ID: -1, Name: "strlit", Live: true, Persistent: true, Cells: make([]Cell, len(e.Val)+1)}
		for i := 0; i < len(e.Val); i++ {
			obj.Cells[i] = Cell{Val: IntValue(int64(e.Val[i]), cc.TypeChar), Init: true}
		}
		obj.Cells[len(e.Val)] = Cell{Val: IntValue(0, cc.TypeChar), Init: true}
		m.strLits[e] = obj
	}
	return PtrValue(Pointer{Obj: obj, Off: 0, Elem: cc.TypeChar}, &cc.PointerType{Elem: cc.TypeChar})
}

// loadIdent reads a variable; arrays decay to pointers, structs evaluate to
// their storage pointer.
func (m *machine) loadIdent(e *cc.Ident) Value {
	sym := e.Sym
	if sym == nil {
		m.ub(UBUninitRead, e.Pos, "unresolved identifier %q", e.Name)
	}
	obj := m.lookupVar(sym, e.Pos)
	switch t := sym.Type.(type) {
	case *cc.ArrayType:
		return PtrValue(Pointer{Obj: obj, Off: 0, Elem: t.Elem}, &cc.PointerType{Elem: t.Elem})
	case *cc.StructType:
		return PtrValue(Pointer{Obj: obj, Off: 0, Elem: t}, &cc.PointerType{Elem: t})
	default:
		return m.load(Pointer{Obj: obj, Off: 0, Elem: sym.Type}, e.Pos, sym.Type)
	}
}

// load reads the scalar at ptr.
func (m *machine) load(ptr Pointer, pos cc.Pos, t cc.Type) Value {
	if isAggregate(t) {
		// aggregates load as a pointer to their storage
		return PtrValue(Pointer{Obj: ptr.Obj, Off: ptr.Off, Elem: elemOf(t)}, &cc.PointerType{Elem: elemOf(t)})
	}
	m.checkAccess(ptr, pos, false)
	cell := ptr.Obj.Cells[ptr.Off]
	if !cell.Init {
		m.ub(UBUninitRead, pos, "object %s cell %d", ptr.Obj.Name, ptr.Off)
	}
	return cell.Val
}

func elemOf(t cc.Type) cc.Type {
	if at, ok := t.(*cc.ArrayType); ok {
		return at.Elem
	}
	return t
}

// store writes a scalar to ptr.
func (m *machine) store(ptr Pointer, v Value, pos cc.Pos) {
	m.checkAccess(ptr, pos, true)
	ptr.Obj.Cells[ptr.Off] = Cell{Val: v, Init: true}
}

func (m *machine) checkAccess(ptr Pointer, pos cc.Pos, write bool) {
	if ptr.IsNull() {
		m.ub(UBNullDeref, pos, "")
	}
	if !ptr.Obj.Live {
		m.ub(UBDangling, pos, "object %s is out of scope", ptr.Obj.Name)
	}
	if ptr.Off < 0 || ptr.Off >= len(ptr.Obj.Cells) {
		m.ub(UBOutOfBounds, pos, "offset %d of object %s (%d cells)", ptr.Off, ptr.Obj.Name, len(ptr.Obj.Cells))
	}
}

// lvalue computes the location of an lvalue expression.
func (m *machine) lvalue(e cc.Expr) Pointer {
	switch e := e.(type) {
	case *cc.Ident:
		if e.Sym == nil {
			m.ub(UBUninitRead, e.Pos, "unresolved identifier %q", e.Name)
		}
		obj := m.lookupVar(e.Sym, e.Pos)
		return Pointer{Obj: obj, Off: 0, Elem: elemOf(e.Sym.Type)}
	case *cc.UnaryExpr:
		if e.Op != "*" {
			m.ub(UBNullDeref, e.Pos, "not an lvalue")
		}
		v := m.eval(e.X)
		if v.Kind != VPtr {
			m.ub(UBNullDeref, e.Pos, "dereferencing non-pointer value")
		}
		return v.P
	case *cc.IndexExpr:
		base := m.eval(e.X) // pointer (possibly decayed array)
		if base.Kind != VPtr {
			m.ub(UBNullDeref, e.Pos, "indexing non-pointer value")
		}
		idx := m.eval(e.Idx)
		if idx.Kind != VInt {
			m.ub(UBOutOfBounds, e.Pos, "non-integer index")
		}
		scale := cellCount(base.P.Elem)
		return Pointer{Obj: base.P.Obj, Off: base.P.Off + int(idx.I())*scale, Elem: elemOf(base.P.Elem)}
	case *cc.MemberExpr:
		var base Pointer
		var st *cc.StructType
		if e.Arrow {
			v := m.eval(e.X)
			if v.Kind != VPtr {
				m.ub(UBNullDeref, e.Pos, "-> on non-pointer")
			}
			base = v.P
			pt, _ := cc.Decay(e.X.ExprType()).(*cc.PointerType)
			if pt != nil {
				st, _ = pt.Elem.(*cc.StructType)
			}
		} else {
			base = m.lvalue(e.X)
			st, _ = e.X.ExprType().(*cc.StructType)
		}
		if st == nil {
			m.ub(UBNullDeref, e.Pos, "member access on non-struct")
		}
		fi := st.FieldIndex(e.Name)
		if fi < 0 {
			m.ub(UBOutOfBounds, e.Pos, "no field %q", e.Name)
		}
		return Pointer{Obj: base.Obj, Off: base.Off + fieldOffset(st, fi), Elem: elemOf(st.Fields[fi].Type)}
	case *cc.CondExpr:
		if m.evalCond(e.Cond) {
			return m.lvalue(e.T)
		}
		return m.lvalue(e.F)
	default:
		m.ub(UBNullDeref, e.NodePos(), "expression is not an lvalue")
		panic("unreachable")
	}
}

func (m *machine) evalUnary(e *cc.UnaryExpr) Value {
	switch e.Op {
	case "&":
		ptr := m.lvalue(e.X)
		return PtrValue(ptr, e.Type)
	case "*":
		v := m.eval(e.X)
		if v.Kind != VPtr {
			m.ub(UBNullDeref, e.Pos, "dereferencing non-pointer")
		}
		return m.load(v.P, e.Pos, e.Type)
	case "!":
		return IntValue(b2i(m.eval(e.X).IsZero()), cc.TypeInt)
	case "-":
		v := m.eval(e.X)
		if v.Kind == VFloat {
			return FloatValue(-v.F(), v.Typ())
		}
		zero := IntValue(0, v.Typ())
		return m.intArith("-", &zero, &v, e.Pos, v.Typ())
	case "+":
		return m.eval(e.X)
	case "~":
		v := m.eval(e.X)
		if v.Kind != VInt {
			m.ub(UBShift, e.Pos, "~ on non-integer")
		}
		t := promoteType(v.Typ())
		return IntValue(^v.I(), t)
	case "++", "--":
		ptr := m.lvalue(e.X)
		old := m.load(ptr, e.Pos, e.X.ExprType())
		op := "+"
		if e.Op == "--" {
			op = "-"
		}
		one := IntValue(1, cc.TypeInt)
		nv := m.addSub(op, &old, &one, e.Pos, old.Typ())
		m.store(ptr, nv, e.Pos)
		return nv
	default:
		panic("interp: unknown unary " + e.Op)
	}
}

func (m *machine) evalPostfix(e *cc.PostfixExpr) Value {
	ptr := m.lvalue(e.X)
	old := m.load(ptr, e.Pos, e.X.ExprType())
	op := "+"
	if e.Op == "--" {
		op = "-"
	}
	one := IntValue(1, cc.TypeInt)
	nv := m.addSub(op, &old, &one, e.Pos, old.Typ())
	m.store(ptr, nv, e.Pos)
	return old
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *machine) evalBinary(e *cc.BinaryExpr) Value {
	switch e.Op {
	case "&&":
		if !m.evalCond(e.X) {
			return IntValue(0, cc.TypeInt)
		}
		return IntValue(b2i(m.evalCond(e.Y)), cc.TypeInt)
	case "||":
		if m.evalCond(e.X) {
			return IntValue(1, cc.TypeInt)
		}
		return IntValue(b2i(m.evalCond(e.Y)), cc.TypeInt)
	}
	x := m.eval(e.X)
	y := m.eval(e.Y)
	return m.binop(e.Op, &x, &y, e.Pos, e.Type)
}

// binop dispatches a (non-short-circuit) binary operation.
func (m *machine) binop(op string, x, y *Value, pos cc.Pos, resType cc.Type) Value {
	// pointer arithmetic and comparisons
	if x.Kind == VPtr || y.Kind == VPtr {
		return m.ptrOp(op, x, y, pos)
	}
	if x.Kind == VFloat || y.Kind == VFloat {
		return m.floatOp(op, x, y, pos)
	}
	switch op {
	case "+", "-", "*", "/", "%":
		t := usualArith(x.Typ(), y.Typ())
		return m.intArith(op, x, y, pos, t)
	case "<<", ">>":
		return m.shift(op, x, y, pos)
	case "&", "|", "^":
		t := usualArith(x.Typ(), y.Typ())
		var r int64
		switch op {
		case "&":
			r = x.I() & y.I()
		case "|":
			r = x.I() | y.I()
		case "^":
			r = x.I() ^ y.I()
		}
		return IntValue(r, t)
	case "==", "!=", "<", ">", "<=", ">=":
		return IntValue(b2i(intCompare(op, x, y)), cc.TypeInt)
	default:
		panic("interp: unknown binop " + op)
	}
}

func intCompare(op string, x, y *Value) bool {
	t := usualArith(x.Typ(), y.Typ())
	if isUnsigned(t) {
		a, b := uint64(truncInt(x.I(), t)), uint64(truncInt(y.I(), t))
		// normalize sub-64-bit widths to their unsigned value
		if w := widthOf(t); w < 64 {
			mask := uint64(1)<<w - 1
			a &= mask
			b &= mask
		}
		switch op {
		case "==":
			return a == b
		case "!=":
			return a != b
		case "<":
			return a < b
		case ">":
			return a > b
		case "<=":
			return a <= b
		default:
			return a >= b
		}
	}
	a, b := x.I(), y.I()
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

// addSub performs x op 1 style increments honoring pointer types.
func (m *machine) addSub(op string, x, y *Value, pos cc.Pos, t cc.Type) Value {
	if x.Kind == VPtr {
		return m.ptrOp(op, x, y, pos)
	}
	if x.Kind == VFloat {
		return m.floatOp(op, x, y, pos)
	}
	return m.intArith(op, x, y, pos, t)
}

// intArith performs integer arithmetic with signed-overflow detection.
func (m *machine) intArith(op string, x, y *Value, pos cc.Pos, t cc.Type) Value {
	if isUnsigned(t) {
		w := widthOf(t)
		a, b := uint64(x.I()), uint64(y.I())
		if w < 64 {
			mask := uint64(1)<<w - 1
			a &= mask
			b &= mask
		}
		var r uint64
		switch op {
		case "+":
			r = a + b
		case "-":
			r = a - b
		case "*":
			r = a * b
		case "/":
			if b == 0 {
				m.ub(UBDivByZero, pos, "")
			}
			r = a / b
		case "%":
			if b == 0 {
				m.ub(UBDivByZero, pos, "")
			}
			r = a % b
		}
		return IntValue(int64(r), t)
	}
	a, b := x.I(), y.I()
	var r int64
	switch op {
	case "+":
		r = a + b
		if (a > 0 && b > 0 && r < a) || (a < 0 && b < 0 && r > a) {
			m.ub(UBSignedOverflow, pos, "%d + %d", a, b)
		}
	case "-":
		r = a - b
		if (b < 0 && r < a) || (b > 0 && r > a) {
			m.ub(UBSignedOverflow, pos, "%d - %d", a, b)
		}
	case "*":
		r = a * b
		if a != 0 && (r/a != b || (a == -1 && b == math.MinInt64)) {
			m.ub(UBSignedOverflow, pos, "%d * %d", a, b)
		}
	case "/":
		if b == 0 {
			m.ub(UBDivByZero, pos, "")
		}
		if a == math.MinInt64 && b == -1 {
			m.ub(UBSignedOverflow, pos, "INT_MIN / -1")
		}
		r = a / b
	case "%":
		if b == 0 {
			m.ub(UBDivByZero, pos, "")
		}
		if a == math.MinInt64 && b == -1 {
			m.ub(UBSignedOverflow, pos, "INT_MIN %% -1")
		}
		r = a % b
	}
	// the result must be representable in t
	if tr := truncInt(r, t); tr != r {
		m.ub(UBSignedOverflow, pos, "result %d not representable in %s", r, t)
	}
	return IntValue(r, t)
}

func (m *machine) shift(op string, x, y *Value, pos cc.Pos) Value {
	t := promoteType(x.Typ())
	w := widthOf(t)
	if y.I() < 0 || uint(y.I()) >= w {
		m.ub(UBShift, pos, "shift count %d for %d-bit type", y.I(), w)
	}
	if isUnsigned(t) {
		a := uint64(truncInt(x.I(), t))
		if w < 64 {
			a &= uint64(1)<<w - 1
		}
		var r uint64
		if op == "<<" {
			r = a << uint(y.I())
		} else {
			r = a >> uint(y.I())
		}
		return IntValue(int64(r), t)
	}
	if op == "<<" {
		if x.I() < 0 {
			m.ub(UBShift, pos, "left shift of negative value %d", x.I())
		}
		r := x.I() << uint(y.I())
		if truncInt(r, t) != r || r < 0 {
			m.ub(UBShift, pos, "left shift overflow")
		}
		return IntValue(r, t)
	}
	return IntValue(x.I()>>uint(y.I()), t)
}

func (m *machine) floatOp(op string, x, y *Value, pos cc.Pos) Value {
	a := toF(x)
	b := toF(y)
	t := cc.Type(cc.TypeDouble)
	switch op {
	case "+":
		return FloatValue(a+b, t)
	case "-":
		return FloatValue(a-b, t)
	case "*":
		return FloatValue(a*b, t)
	case "/":
		return FloatValue(a/b, t) // IEEE division by zero is defined
	case "==", "!=", "<", ">", "<=", ">=":
		var r bool
		switch op {
		case "==":
			r = a == b
		case "!=":
			r = a != b
		case "<":
			r = a < b
		case ">":
			r = a > b
		case "<=":
			r = a <= b
		default:
			r = a >= b
		}
		return IntValue(b2i(r), cc.TypeInt)
	default:
		m.ub(UBShift, pos, "invalid float operation %s", op)
		panic("unreachable")
	}
}

func toF(v *Value) float64 {
	if v.Kind == VFloat {
		return v.F()
	}
	if isUnsigned(v.Typ()) {
		return float64(uint64(v.I()))
	}
	return float64(v.I())
}

func (m *machine) ptrOp(op string, x, y *Value, pos cc.Pos) Value {
	switch op {
	case "+", "-":
		if x.Kind == VPtr && y.Kind == VInt {
			delta := int(y.I()) * cellCount(x.P.Elem)
			if op == "-" {
				delta = -delta
			}
			np := Pointer{Obj: x.P.Obj, Off: x.P.Off + delta, Elem: x.P.Elem}
			if np.Obj != nil && (np.Off < 0 || np.Off > len(np.Obj.Cells)) {
				m.ub(UBOutOfBounds, pos, "pointer arithmetic past object %s", np.Obj.Name)
			}
			return PtrValue(np, x.Typ())
		}
		if x.Kind == VInt && y.Kind == VPtr && op == "+" {
			return m.ptrOp("+", y, x, pos)
		}
		if x.Kind == VPtr && y.Kind == VPtr && op == "-" {
			if x.P.Obj != y.P.Obj {
				m.ub(UBOutOfBounds, pos, "subtracting pointers to different objects")
			}
			scale := cellCount(x.P.Elem)
			return IntValue(int64((x.P.Off-y.P.Off)/scale), cc.TypeLong)
		}
	case "==", "!=":
		same := x.Kind == VPtr && y.Kind == VPtr && x.P.Obj == y.P.Obj && x.P.Off == y.P.Off
		if x.Kind == VInt && x.I() == 0 {
			same = y.P.IsNull()
		}
		if y.Kind == VInt && y.I() == 0 {
			same = x.P.IsNull()
		}
		if op == "!=" {
			same = !same
		}
		return IntValue(b2i(same), cc.TypeInt)
	case "<", ">", "<=", ">=":
		if x.Kind != VPtr || y.Kind != VPtr || x.P.Obj != y.P.Obj {
			m.ub(UBOutOfBounds, pos, "relational comparison of unrelated pointers")
		}
		xo, yo := IntValue(int64(x.P.Off), cc.TypeLong), IntValue(int64(y.P.Off), cc.TypeLong)
		return IntValue(b2i(intCompare(op, &xo, &yo)), cc.TypeInt)
	}
	m.ub(UBOutOfBounds, pos, "invalid pointer operation %s", op)
	panic("unreachable")
}

func (m *machine) evalAssign(e *cc.AssignExpr) Value {
	ptr := m.lvalue(e.LHS)
	lt := e.LHS.ExprType()
	if st, ok := lt.(*cc.StructType); ok && e.Op == "=" {
		// struct assignment copies all cells
		rv := m.eval(e.RHS)
		if rv.Kind != VPtr {
			m.ub(UBOutOfBounds, e.Pos, "struct assignment from non-struct")
		}
		n := cellCount(st)
		for i := 0; i < n; i++ {
			src := Pointer{Obj: rv.P.Obj, Off: rv.P.Off + i}
			m.checkAccess(src, e.Pos, false)
			cell := rv.P.Obj.Cells[rv.P.Off+i]
			if !cell.Init {
				m.ub(UBUninitRead, e.Pos, "copy of uninitialized struct field")
			}
			dst := Pointer{Obj: ptr.Obj, Off: ptr.Off + i}
			m.store(dst, cell.Val, e.Pos)
		}
		return PtrValue(ptr, &cc.PointerType{Elem: st})
	}
	var v Value
	if e.Op == "=" {
		v = m.convert(m.eval(e.RHS), valueType(lt), e.Pos)
	} else {
		old := m.load(ptr, e.Pos, lt)
		rhs := m.eval(e.RHS)
		op := e.Op[:len(e.Op)-1]
		v = m.convert(m.binop(op, &old, &rhs, e.Pos, lt), valueType(lt), e.Pos)
	}
	m.store(ptr, v, e.Pos)
	return v
}

func (m *machine) evalCall(e *cc.CallExpr) (Value, bool) {
	name := e.Fun.Name
	switch name {
	case "printf":
		return m.builtinPrintf(e), true
	case "abort":
		panic(abortPanic{})
	case "exit":
		code := 0
		if len(e.Args) > 0 {
			code = int(uint8(m.eval(e.Args[0]).I()))
		}
		panic(exitPanic{code: code})
	}
	fn, ok := m.funcs[name]
	if !ok {
		m.limit("call to undefined function %q at %s", name, e.Pos)
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = m.eval(a)
	}
	return m.call(fn, args, e.Pos)
}

// convert converts v to type t (integer truncation, int<->float, pointer
// casts).
func (m *machine) convert(v Value, t cc.Type, pos cc.Pos) Value {
	switch tt := t.(type) {
	case *cc.PointerType:
		switch v.Kind {
		case VPtr:
			return PtrValue(Pointer{Obj: v.P.Obj, Off: v.P.Off, Elem: tt.Elem}, t)
		case VInt:
			if v.I() == 0 {
				return PtrValue(Pointer{Elem: tt.Elem}, t)
			}
			// integers forged into pointers dereference as UB later
			return PtrValue(Pointer{Obj: &Object{Name: "forged", Live: false}, Off: int(v.I()), Elem: tt.Elem}, t)
		}
		return v
	case *cc.BasicType:
		if tt.IsFloat() {
			return FloatValue(toF(&v), t)
		}
		switch v.Kind {
		case VFloat:
			if math.IsNaN(v.F()) || v.F() >= 9.3e18 || v.F() <= -9.3e18 {
				m.ub(UBSignedOverflow, pos, "float-to-int conversion of %g", v.F())
			}
			return IntValue(int64(v.F()), t)
		case VPtr:
			// pointer-to-integer: a stable synthetic address
			addr := int64(0)
			if v.P.Obj != nil {
				addr = int64(v.P.Obj.ID)*1_000_000 + int64(v.P.Off)
			}
			return IntValue(addr, t)
		default:
			return IntValue(v.I(), t)
		}
	}
	return v
}

// promoteType applies the integer promotions.
func promoteType(t cc.Type) cc.Type {
	bt, ok := t.(*cc.BasicType)
	if !ok {
		return t
	}
	switch bt.Kind {
	case cc.Char, cc.UChar, cc.Short, cc.UShort:
		return cc.TypeInt
	}
	return t
}

// usualArith applies the usual arithmetic conversions for integers.
func usualArith(a, b cc.Type) cc.Type {
	pa, _ := promoteType(a).(*cc.BasicType)
	pb, _ := promoteType(b).(*cc.BasicType)
	if pa == nil {
		return b
	}
	if pb == nil {
		return a
	}
	if pa.Kind >= pb.Kind {
		return pa
	}
	return pb
}
