package interp

import (
	"testing"
	"unsafe"
)

// TestValueSize pins the packed Value layout. The reference interpreter
// moves a Value on every evaluation step, so its size is a first-order
// term of campaign throughput: the historical layout carried the integer
// and float payloads side by side plus a cc.Type interface and weighed 72
// bytes. If a change grows Value (or Cell) past these bounds, shrink the
// new field instead of raising the limit.
func TestValueSize(t *testing.T) {
	if got, max := unsafe.Sizeof(Value{}), uintptr(56); got > max {
		t.Errorf("interp.Value is %d bytes, want <= %d", got, max)
	}
	if got, max := unsafe.Sizeof(Cell{}), uintptr(64); got > max {
		t.Errorf("interp.Cell is %d bytes, want <= %d", got, max)
	}
	if got, max := unsafe.Sizeof(Pointer{}), uintptr(32); got > max {
		t.Errorf("interp.Pointer is %d bytes, want <= %d", got, max)
	}
}
