package interp

import (
	"strings"
	"testing"

	"spe/internal/cc"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	prog := cc.MustAnalyze(src)
	return Run(prog, Config{})
}

func mustExit(t *testing.T, src string, want int) *Result {
	t.Helper()
	r := run(t, src)
	if !r.Defined() {
		t.Fatalf("not defined: UB=%v Limit=%v", r.UB, r.Limit)
	}
	if r.Aborted {
		t.Fatal("aborted")
	}
	if r.Exit != want {
		t.Fatalf("exit = %d, want %d", r.Exit, want)
	}
	return r
}

func mustUB(t *testing.T, src string, kind UBKind) {
	t.Helper()
	r := run(t, src)
	if r.UB == nil {
		t.Fatalf("no UB detected (exit %d, output %q)", r.Exit, r.Output)
	}
	if r.UB.Kind != kind {
		t.Fatalf("UB kind = %v, want %v (%v)", r.UB.Kind, kind, r.UB)
	}
}

func TestArithmeticBasics(t *testing.T) {
	mustExit(t, "int main() { return 2 + 3 * 4; }", 14)
	mustExit(t, "int main() { return (2 + 3) * 4; }", 20)
	mustExit(t, "int main() { return 17 / 5 + 17 % 5; }", 5)
	mustExit(t, "int main() { return 1 << 4; }", 16)
	mustExit(t, "int main() { return 255 >> 4; }", 15)
	mustExit(t, "int main() { return (5 & 3) + (5 | 3) + (5 ^ 3); }", 14)
	mustExit(t, "int main() { return 10 - 3 - 2; }", 5)
	mustExit(t, "int main() { return -5 + 10; }", 5)
	mustExit(t, "int main() { return ~0 + 2; }", 1)
	mustExit(t, "int main() { return !0 + !5; }", 1)
}

func TestComparisonsAndLogic(t *testing.T) {
	mustExit(t, "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }", 4)
	mustExit(t, "int main() { return (1 && 2) + (0 || 3) + (0 && 1) + (0 || 0); }", 2)
	// short-circuit: the divide by zero must not run
	mustExit(t, "int main() { int x = 0; return (x && (1 / x)) + 7; }", 7)
	mustExit(t, "int main() { int x = 1; return (x || (1 / 0)) + 7; }", 8)
}

func TestVariablesAndAssignment(t *testing.T) {
	mustExit(t, "int main() { int a = 1, b = 2; a = b; return a + b; }", 4)
	mustExit(t, "int main() { int a = 10; a += 5; a -= 3; a *= 2; a /= 4; a %= 4; return a; }", 2)
	mustExit(t, "int main() { int a = 1; a <<= 3; a >>= 1; a |= 2; a &= 6; a ^= 1; return a; }", 7)
	mustExit(t, "int main() { int a = 0; int b = (a = 5); return a + b; }", 10)
}

func TestIncrementDecrement(t *testing.T) {
	mustExit(t, "int main() { int a = 5; return a++ + a; }", 11)
	mustExit(t, "int main() { int a = 5; return ++a + a; }", 12)
	mustExit(t, "int main() { int a = 5; return a-- - a; }", 1)
	mustExit(t, "int main() { int a = 5; return --a; }", 4)
}

func TestControlFlow(t *testing.T) {
	mustExit(t, `int main() { int s = 0, i; for (i = 1; i <= 10; i++) s += i; return s; }`, 55)
	mustExit(t, `int main() { int s = 0, i = 0; while (i < 5) { s += i; i++; } return s; }`, 10)
	mustExit(t, `int main() { int i = 0; do i++; while (i < 3); return i; }`, 3)
	mustExit(t, `int main() { int i, s = 0; for (i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; s += i; } return s; }`, 6)
	mustExit(t, `int main() { if (1) return 7; else return 8; }`, 7)
	mustExit(t, `int main() { if (0) return 7; else return 8; }`, 8)
	mustExit(t, `int main() { return 1 ? 4 : 5; }`, 4)
}

func TestGoto(t *testing.T) {
	mustExit(t, `
int main() {
    int i = 0;
loop:
    i++;
    if (i < 5) goto loop;
    return i;
}`, 5)
	// paper Figure 11(d): goto backward over a declaration
	mustExit(t, `
int main() {
    int *p = 0;
trick:
    if (p)
        return *p;
    int x = 0;
    p = &x;
    goto trick;
    return 9;
}`, 0)
	// forward goto into a nested block
	mustExit(t, `
int main() {
    int r = 1;
    goto inside;
    r = 100;
    {
        r = 200;
inside:
        r += 41;
    }
    return r;
}`, 42)
}

func TestFunctions(t *testing.T) {
	mustExit(t, `
int add(int x, int y) { return x + y; }
int main() { return add(add(1, 2), 4); }`, 7)
	mustExit(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`, 55)
	mustExit(t, `
int counter() { static int n = 0; n++; return n; }
int main() { counter(); counter(); return counter(); }`, 3)
	// void function and fall-through-main
	mustExit(t, `
int g;
void setg(int v) { g = v; }
int main() { setg(3); return g; }`, 3)
}

func TestPointers(t *testing.T) {
	mustExit(t, `
int a = 0;
int main() {
    int *p = &a, *q = &a;
    *p = 1;
    *q = 2;
    return a;
}`, 2)
	mustExit(t, `
int main() {
    int x = 5;
    int *p = &x;
    *p += 2;
    return x;
}`, 7)
	mustExit(t, `
int main() {
    int arr[5] = {1, 2, 3, 4, 5};
    int *p = arr;
    p = p + 2;
    return *p + p[1] + *(p - 1);
}`, 9)
	// pointer difference
	mustExit(t, `
int main() {
    int arr[5];
    int *p = &arr[4], *q = &arr[1];
    return (int)(p - q);
}`, 3)
}

func TestArrays(t *testing.T) {
	mustExit(t, `
int main() {
    int a[4] = {1, 2, 3};
    return a[0] + a[1] + a[2] + a[3];
}`, 6) // trailing element zero-filled
	mustExit(t, `
int m[2][3];
int main() {
    m[1][2] = 7;
    m[0][1] = 3;
    return m[1][2] + m[0][1];
}`, 10)
}

func TestStructs(t *testing.T) {
	mustExit(t, `
struct s { int x; int y; };
struct s v;
int main() {
    v.x = 3;
    v.y = 4;
    return v.x + v.y;
}`, 7)
	mustExit(t, `
struct s { int x; int y; };
int main() {
    struct s a = {1, 2}, b;
    b = a;
    b.x += 10;
    return a.x + b.x + b.y;
}`, 14)
	mustExit(t, `
struct s { int n; };
int get(struct s *p) { return p->n; }
int main() {
    struct s v = {41};
    v.n++;
    return get(&v);
}`, 42)
	// paper Figure 3 shape: member of conditional expression
	mustExit(t, `
struct s { int c; };
struct s a, b, c;
int d; int e;
int main() {
    b.c = 1;
    c.c = 2;
    return e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
}`, 1)
}

func TestGlobalsZeroInitialized(t *testing.T) {
	mustExit(t, "int g;\nint main() { return g; }", 0)
	mustExit(t, "int arr[3];\nint main() { return arr[0] + arr[1] + arr[2]; }", 0)
}

func TestUnsignedWraparound(t *testing.T) {
	// unsigned arithmetic wraps: defined behavior
	mustExit(t, `
int main() {
    unsigned int u = 4294967295u;
    u = u + 1u;
    return (int)u;
}`, 0)
	mustExit(t, `
int main() {
    unsigned char c = 255;
    c = c + 1;
    return c;
}`, 0)
}

func TestCharShortTruncation(t *testing.T) {
	mustExit(t, `
int main() {
    char c = (char)300;
    return c == 44;
}`, 1)
	mustExit(t, `
int main() {
    short s = (short)65536;
    return s == 0;
}`, 1)
}

func TestFloats(t *testing.T) {
	mustExit(t, `
int main() {
    double d = 1.5;
    d = d * 4.0;
    return (int)d;
}`, 6)
	r := mustExit(t, `
int main() {
    double d = 2.5;
    printf("%g %f", d, d);
    return 0;
}`, 0)
	if !strings.Contains(r.Output, "2.5") || !strings.Contains(r.Output, "2.500000") {
		t.Errorf("float output = %q", r.Output)
	}
}

func TestPrintf(t *testing.T) {
	r := mustExit(t, `
int main() {
    printf("%d %u %x %c %s|", -1, 7u, 255, 65, "hi");
    printf("%05d %ld", 42, 1234567890123l);
    return 0;
}`, 0)
	want := "-1 7 ff A hi|00042 1234567890123"
	if r.Output != want {
		t.Errorf("output = %q, want %q", r.Output, want)
	}
}

func TestExitAndAbort(t *testing.T) {
	r := run(t, `int main() { exit(3); return 0; }`)
	if !r.Defined() || r.Exit != 3 {
		t.Errorf("exit(3): %+v", r)
	}
	r = run(t, `int main() { abort(); return 0; }`)
	if !r.Aborted {
		t.Errorf("abort not detected: %+v", r)
	}
}

// --- undefined behavior detection ---

func TestUBUninitializedRead(t *testing.T) {
	mustUB(t, `int main() { int a; return a; }`, UBUninitRead)
	mustUB(t, `int main() { int a, b; b = a + 1; return b; }`, UBUninitRead)
	mustUB(t, `int main() { int arr[3]; return arr[1]; }`, UBUninitRead)
}

func TestUBDivByZero(t *testing.T) {
	mustUB(t, `int main() { int z = 0; return 5 / z; }`, UBDivByZero)
	mustUB(t, `int main() { int z = 0; return 5 % z; }`, UBDivByZero)
}

func TestUBSignedOverflow(t *testing.T) {
	mustUB(t, `int main() { int x = 2147483647; x = x + 1; return 0; }`, UBSignedOverflow)
	mustUB(t, `int main() { int x = -2147483647; x = x - 2; return 0; }`, UBSignedOverflow)
	mustUB(t, `int main() { int x = 65536; x = x * 65536; return 0; }`, UBSignedOverflow)
}

func TestUBShift(t *testing.T) {
	mustUB(t, `int main() { int x = 1; return x << 32; }`, UBShift)
	mustUB(t, `int main() { int x = 1; int n = -1; return x << n; }`, UBShift)
	mustUB(t, `int main() { int x = -1; return x << 1; }`, UBShift)
}

func TestUBOutOfBounds(t *testing.T) {
	mustUB(t, `int main() { int arr[3]; arr[3] = 1; return 0; }`, UBOutOfBounds)
	mustUB(t, `int main() { int arr[3]; arr[-1] = 1; return 0; }`, UBOutOfBounds)
	mustUB(t, `int main() { int arr[2]; int *p = arr; p = p + 5; return 0; }`, UBOutOfBounds)
}

func TestUBNullDeref(t *testing.T) {
	mustUB(t, `int main() { int *p = 0; return *p; }`, UBNullDeref)
	mustUB(t, `int main() { int *p = 0; *p = 1; return 0; }`, UBNullDeref)
}

func TestUBDanglingPointer(t *testing.T) {
	mustUB(t, `
int *f() { int x = 1; return &x; }
int main() { int *p = f(); return *p; }`, UBDangling)
}

func TestUBMissingReturnValue(t *testing.T) {
	mustUB(t, `
int f(int x) { if (x > 0) return 1; }
int main() { return f(-1); }`, UBNoReturnValue)
	// unused missing return value is fine
	mustExit(t, `
int f(int x) { if (x > 0) return 1; }
int main() { f(-1); return 0; }`, 0)
}

func TestOnePastEndPointerAllowed(t *testing.T) {
	mustExit(t, `
int main() {
    int arr[3];
    int *p = &arr[0];
    p = p + 3; /* one past the end: defined */
    return (int)(p - arr);
}`, 3)
}

func TestStepLimit(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { for (;;) ; return 0; }`)
	r := Run(prog, Config{MaxSteps: 1000})
	if r.Limit == nil {
		t.Fatal("infinite loop not stopped")
	}
}

func TestStackLimit(t *testing.T) {
	prog := cc.MustAnalyze(`
int f(int n) { return f(n + 0); }
int main() { return f(1); }`)
	r := Run(prog, Config{MaxDepth: 64})
	if r.Limit == nil {
		t.Fatal("unbounded recursion not stopped")
	}
}

func TestExecutedStatementTracking(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int a = 1;
    if (a) {
        a = 2;
    } else {
        a = 3;
    }
    return a;
}`)
	r := Run(prog, Config{})
	if !r.Defined() || r.Exit != 2 {
		t.Fatalf("result %+v", r)
	}
	// the else branch must not be marked executed
	executedAssign3 := false
	for st := range r.Executed {
		var p cc.Printer
		_ = p
		if es, ok := st.(*cc.ExprStmt); ok {
			if as, ok := es.X.(*cc.AssignExpr); ok {
				if il, ok := as.RHS.(*cc.IntLit); ok && il.Val == 3 {
					executedAssign3 = true
				}
			}
		}
	}
	if executedAssign3 {
		t.Error("dead branch marked as executed")
	}
}

func TestFigure1SemanticsDiffer(t *testing.T) {
	// The three variable usage patterns of paper Figure 1 have different
	// semantics; SPE's premise is that they exercise different dataflow.
	p2 := run(t, `
int main() {
    int a, b = 1;
    a = b - b;
    if (a)
        a = a - b;
    return a;
}`)
	if !p2.Defined() || p2.Exit != 0 {
		t.Errorf("P2: %+v", p2)
	}
	p3 := run(t, `
int main() {
    int a, b = 1;
    a = b - b;
    if (b)
        a = b - b;
    return a + b;
}`)
	if !p3.Defined() || p3.Exit != 1 {
		t.Errorf("P3: %+v", p3)
	}
}

func TestCommaAndCast(t *testing.T) {
	mustExit(t, `int main() { int a; a = (1, 2, 3); return a; }`, 3)
	mustExit(t, `int main() { return (int)2.9 + (int)(char)257; }`, 3)
	mustExit(t, `int main() { return (int)sizeof(int) + (int)sizeof(double); }`, 12)
}

func TestStringIndexing(t *testing.T) {
	mustExit(t, `
int main() {
    char *s = "abc";
    return s[0] + s[2] - 2 * 'a' - 2;
}`, 0)
}
