package interp

import (
	"testing"

	"spe/internal/cc"
)

func runOut(t *testing.T, src string) string {
	t.Helper()
	prog := cc.MustAnalyze(src)
	r := Run(prog, Config{})
	if !r.Defined() {
		t.Fatalf("UB/limit: %v %v", r.UB, r.Limit)
	}
	return r.Output
}

func TestPrintfWidthAndFlags(t *testing.T) {
	cases := []struct {
		call string
		want string
	}{
		{`printf("%5d", 42)`, "   42"},
		{`printf("%-5d|", 42)`, "42   |"},
		{`printf("%05d", 42)`, "00042"},
		{`printf("%+d", 42)`, "+42"},
		{`printf("%%")`, "%"},
		{`printf("%x", 255)`, "ff"},
		{`printf("%X", 255)`, "FF"},
		{`printf("%08x", 255)`, "000000ff"},
		{`printf("%c%c", 72, 105)`, "Hi"},
		{`printf("%u", -1)`, "4294967295"},
		{`printf("%lu", -1l)`, "18446744073709551615"},
		{`printf("%.2f", 3.14159)`, "3.14"},
		{`printf("%10.3f", 3.14159)`, "     3.142"},
		{`printf("%e", 1500.0)`, "1.500000e+03"},
	}
	for _, c := range cases {
		src := "int main() { " + c.call + "; return 0; }"
		if got := runOut(t, src); got != c.want {
			t.Errorf("%s => %q, want %q", c.call, got, c.want)
		}
	}
}

func TestPrintfStringConversions(t *testing.T) {
	out := runOut(t, `
int main() {
    char buf[4];
    buf[0] = 'a';
    buf[1] = 'b';
    buf[2] = 0;
    printf("[%s]", buf);
    printf("[%s]", "literal");
    return 0;
}`)
	if out != "[ab][literal]" {
		t.Errorf("output = %q", out)
	}
}

func TestPrintfReturnsLength(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int n = printf("abcd");
    return n;
}`)
	r := Run(prog, Config{})
	if r.Exit != 4 {
		t.Errorf("printf return = %d, want 4", r.Exit)
	}
}

func TestPrintfUnknownConversionLenient(t *testing.T) {
	out := runOut(t, `int main() { printf("a%qz"); return 0; }`)
	if out != "a%qz" {
		t.Errorf("output = %q", out)
	}
}

func TestFormatPrintfSharedSemantics(t *testing.T) {
	// the shared formatter must agree with what the interpreter printed
	// for negative ints under %d with and without length modifiers
	out := runOut(t, `int main() { long big = 3000000000l; printf("%d %ld", (int)big, big); return 0; }`)
	// (int)3000000000 truncates to -1294967296 in 32-bit
	if out != "-1294967296 3000000000" {
		t.Errorf("output = %q", out)
	}
}

func TestPrintfMissingArgumentIsLimit(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { printf("%d"); return 0; }`)
	r := Run(prog, Config{})
	if r.Limit == nil {
		t.Errorf("missing printf argument not flagged: %+v", r)
	}
}

func TestOutputBudget(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int i;
    for (i = 0; i < 100000; i++) printf("xxxxxxxxxxxxxxxx");
    return 0;
}`)
	r := Run(prog, Config{MaxOutput: 4096})
	if r.Limit == nil {
		t.Error("output budget not enforced")
	}
}
