// Package interp is a reference interpreter for the cc C subset with full
// undefined-behavior detection. It plays the role CompCert's reference
// interpreter plays in the paper (§5.1, §5.4): a trustworthy oracle that
// yields the defined semantics of a test program — or a report that the
// program has no defined semantics — so that miscompilations by the
// compiler under test can be distinguished from false alarms.
//
// Detected undefined behaviors: reads of uninitialized objects, signed
// integer overflow, division/modulo by zero, INT_MIN/-1 division,
// out-of-bounds array and pointer accesses, null and dangling pointer
// dereferences, oversized or negative shift counts, and falling off the end
// of a value-returning function whose value is used.
//
// Concurrency and ownership: the package-level Run is safe to call from any
// goroutine (each call builds a private machine) and its Result is caller-
// owned. A Machine amortizes machine state across sequential runs and is
// strictly single-goroutine; its Results alias machine-owned storage that
// the next Run recycles. Campaign workers hold one Machine each and never
// share it — the pattern every backend in this repository follows: shared
// inputs are immutable (the analyzed AST), mutable execution state is
// per-worker and reset, not reallocated, between variants.
package interp

import (
	"fmt"
	"math"

	"spe/internal/cc"
)

// UBKind classifies undefined behaviors.
type UBKind int

// Undefined behavior kinds.
const (
	UBUninitRead UBKind = iota
	UBDivByZero
	UBSignedOverflow
	UBShift
	UBOutOfBounds
	UBNullDeref
	UBDangling
	UBNoReturnValue
)

var ubNames = map[UBKind]string{
	UBUninitRead:     "read of uninitialized value",
	UBDivByZero:      "division by zero",
	UBSignedOverflow: "signed integer overflow",
	UBShift:          "undefined shift",
	UBOutOfBounds:    "out-of-bounds access",
	UBNullDeref:      "null pointer dereference",
	UBDangling:       "dangling pointer access",
	UBNoReturnValue:  "missing return value",
}

func (k UBKind) String() string { return ubNames[k] }

// UBError reports an undefined behavior with its source position.
type UBError struct {
	Kind UBKind
	Pos  cc.Pos
	Msg  string
}

func (e *UBError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("%s: undefined behavior: %s", e.Pos, e.Kind)
	}
	return fmt.Sprintf("%s: undefined behavior: %s (%s)", e.Pos, e.Kind, e.Msg)
}

// LimitError reports resource exhaustion (step budget or stack depth);
// not undefined behavior, but execution cannot continue.
type LimitError struct{ Msg string }

func (e *LimitError) Error() string { return "resource limit: " + e.Msg }

// Object is an allocated memory object: a flat sequence of scalar cells.
type Object struct {
	ID    int
	Cells []Cell
	Live  bool
	Name  string // for diagnostics
	// Persistent objects (globals, static locals, string literals) are
	// never killed on frame exit.
	Persistent bool
}

// Cell is one scalar memory slot.
type Cell struct {
	Val  Value
	Init bool
}

// Pointer is a typed pointer value: an object plus a scalar-cell offset.
// The nil Object represents the null pointer.
type Pointer struct {
	Obj *Object
	Off int
	// Elem is the pointee type (used for pointer arithmetic scaling).
	Elem cc.Type
}

// IsNull reports whether p is the null pointer.
func (p Pointer) IsNull() bool { return p.Obj == nil }

// ValueKind discriminates runtime values.
type ValueKind uint8

// Value kinds.
const (
	VInt ValueKind = iota
	VFloat
	VPtr
)

// Value is a runtime scalar value, packed for the campaign hot path: the
// integer and float payloads share one 64-bit word and the type is a
// *cc.BasicType pointer instead of a cc.Type interface (pointer values
// carry their typing in P.Elem; their basic type is nil). The historical
// 72-byte interface-carrying layout taxed every evaluation step of the
// reference interpreter; TestValueSize pins the packed size so it cannot
// creep back up.
type Value struct {
	bits uint64 // VInt: sign-extended integer; VFloat: IEEE-754 bits
	// typ is the basic C type governing width and signedness; nil for
	// pointers and for values built with non-basic types (which the
	// arithmetic helpers treat exactly like the old non-basic interface
	// values: no truncation, signed, 64-bit wide).
	typ  *cc.BasicType
	P    Pointer
	Kind ValueKind
}

// I returns the integer payload (sign-extended storage). Like the
// historical separate I field, it reads as zero for float and pointer
// values — printf %d of a float argument, for example, must keep printing
// 0, not the float's bit pattern.
func (v Value) I() int64 {
	if v.Kind != VInt {
		return 0
	}
	return int64(v.bits)
}

// F returns the floating payload (zero for non-float values, like the
// historical separate F field).
func (v Value) F() float64 {
	if v.Kind != VFloat {
		return 0
	}
	return math.Float64frombits(v.bits)
}

// Typ returns the C type governing width and signedness (nil for pointer
// values, whose typing lives in P.Elem).
func (v Value) Typ() cc.Type {
	if v.typ == nil {
		return nil
	}
	return v.typ
}

// BasicTyp returns the value's basic type (nil for pointers and values of
// non-basic type).
func (v Value) BasicTyp() *cc.BasicType { return v.typ }

// IntValue builds an integer value of type t, truncating to t's width.
func IntValue(v int64, t cc.Type) Value {
	bt, _ := t.(*cc.BasicType)
	return Value{Kind: VInt, bits: uint64(truncBasic(v, bt)), typ: bt}
}

// RawIntValue builds an integer value of type t without truncating the
// payload to t's width (the minicc VM's seeded truncation-skipping bug
// needs the un-normalized representation).
func RawIntValue(v int64, t cc.Type) Value {
	bt, _ := t.(*cc.BasicType)
	return Value{Kind: VInt, bits: uint64(v), typ: bt}
}

// FloatValue builds a floating value of type t.
func FloatValue(f float64, t cc.Type) Value {
	bt, ok := t.(*cc.BasicType)
	if ok && bt.Kind == cc.Float {
		f = float64(float32(f))
	}
	return Value{Kind: VFloat, bits: math.Float64bits(f), typ: bt}
}

// PtrValue builds a pointer value. The type argument is accepted for
// call-site symmetry with IntValue/FloatValue but not stored: nothing in
// the evaluator consumes a pointer value's own C type — pointer semantics
// (arithmetic scaling, element typing) flow through p.Elem.
func PtrValue(p Pointer, t cc.Type) Value { return Value{Kind: VPtr, P: p} }

// IsZero reports whether the value is scalar zero (used for conditions).
func (v Value) IsZero() bool {
	switch v.Kind {
	case VInt:
		return v.bits == 0
	case VFloat:
		return v.F() == 0
	default:
		return v.P.IsNull()
	}
}

func (v Value) String() string {
	switch v.Kind {
	case VInt:
		return fmt.Sprintf("%d", v.I())
	case VFloat:
		return fmt.Sprintf("%g", v.F())
	default:
		if v.P.IsNull() {
			return "nullptr"
		}
		return fmt.Sprintf("&%s+%d", v.P.Obj.Name, v.P.Off)
	}
}

// truncInt truncates v to the width and signedness of t.
func truncInt(v int64, t cc.Type) int64 {
	bt, _ := t.(*cc.BasicType)
	return truncBasic(v, bt)
}

// truncBasic is truncInt on the basic type directly (nil behaves like the
// historical non-basic case: no truncation).
func truncBasic(v int64, bt *cc.BasicType) int64 {
	if bt == nil {
		return v
	}
	switch bt.Kind {
	case cc.Char:
		return int64(int8(v))
	case cc.UChar:
		return int64(uint8(v))
	case cc.Short:
		return int64(int16(v))
	case cc.UShort:
		return int64(uint16(v))
	case cc.Int:
		return int64(int32(v))
	case cc.UInt:
		return int64(uint32(v))
	case cc.ULong:
		return v // stored as the signed bit pattern
	default:
		return v
	}
}

// isUnsigned reports whether t is an unsigned integer type.
func isUnsigned(t cc.Type) bool {
	bt, ok := t.(*cc.BasicType)
	return ok && bt.IsUnsigned()
}

// isFloatType reports whether t is float or double.
func isFloatType(t cc.Type) bool {
	bt, ok := t.(*cc.BasicType)
	return ok && bt.IsFloat()
}

// widthOf returns the bit width of an integer type.
func widthOf(t cc.Type) uint {
	bt, ok := t.(*cc.BasicType)
	if !ok {
		return 64
	}
	switch bt.Kind {
	case cc.Char, cc.UChar:
		return 8
	case cc.Short, cc.UShort:
		return 16
	case cc.Int, cc.UInt:
		return 32
	default:
		return 64
	}
}

// cellCount returns the number of scalar cells occupied by type t.
func cellCount(t cc.Type) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		return t.Len * cellCount(t.Elem)
	case *cc.StructType:
		n := 0
		for _, f := range t.Fields {
			n += cellCount(f.Type)
		}
		return n
	default:
		return 1
	}
}

// fieldOffset returns the cell offset of field index i within struct t.
func fieldOffset(t *cc.StructType, i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += cellCount(t.Fields[j].Type)
	}
	return off
}

// scalarType returns the scalar element type at the "bottom" of t (arrays
// and structs flattened); for scalars it is t itself.
func scalarType(t cc.Type) cc.Type {
	switch t := t.(type) {
	case *cc.ArrayType:
		return scalarType(t.Elem)
	default:
		return t
	}
}
