// Package report renders the evaluation's tables and figures as aligned
// ASCII, mirroring the layout of the paper's Tables 1-4 and Figures 8-10.
package report

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Table is a simple aligned-column table writer.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Histogram renders labeled horizontal bars (the ASCII analogue of the
// paper's bar charts).
type Histogram struct {
	Title string
	// Labels and Values are parallel.
	Labels []string
	Values []float64
	// Unit is appended to each printed value.
	Unit string
	// Width is the maximum bar width in characters (default 40).
	Width int
}

// String renders the histogram.
func (h *Histogram) String() string {
	width := h.Width
	if width == 0 {
		width = 40
	}
	max := 0.0
	for _, v := range h.Values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range h.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if h.Title != "" {
		sb.WriteString(h.Title + "\n")
	}
	for i, l := range h.Labels {
		v := h.Values[i]
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s |%s %.4g%s\n", labelW, l, strings.Repeat("#", bar), v, h.Unit)
	}
	return sb.String()
}

// SciBig formats a big integer in scientific notation like the paper's
// Table 1 ("5.24e163").
func SciBig(v *big.Int) string {
	s := v.String()
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	if len(s) <= 6 {
		if neg {
			return "-" + s
		}
		return s
	}
	mant := s[:1] + "." + s[1:3]
	out := fmt.Sprintf("%se%d", mant, len(s)-1)
	if neg {
		return "-" + out
	}
	return out
}

// RatioOrders returns the order-of-magnitude difference between two counts
// (digits of naive minus digits of reduced), the paper's "orders of
// magnitude reduction".
func RatioOrders(naive, reduced *big.Int) int {
	return len(naive.String()) - len(reduced.String())
}

// BucketCounts buckets values by decimal magnitude ([1,10), [10,100), ...),
// the x-axis of the paper's Figure 8. Returns bucket labels and counts;
// bucket i covers [10^i, 10^(i+1)), with a final ">=10^max" bucket.
func BucketCounts(values []*big.Int, maxBucket int) ([]string, []int) {
	labels := make([]string, maxBucket+1)
	counts := make([]int, maxBucket+1)
	for i := 0; i < maxBucket; i++ {
		labels[i] = fmt.Sprintf("[1e%d,1e%d)", i, i+1)
	}
	labels[maxBucket] = fmt.Sprintf(">=1e%d", maxBucket)
	for _, v := range values {
		d := len(v.String()) - 1 // decimal magnitude
		if v.Sign() <= 0 {
			d = 0
		}
		if d > maxBucket {
			d = maxBucket
		}
		counts[d]++
	}
	return labels, counts
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// SortedKeys returns sorted map keys for deterministic iteration.
func SortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
