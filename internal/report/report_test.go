package report

import (
	"math/big"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"A", "LongHeader"},
	}
	tbl.AddRow("xxxx", "1")
	tbl.AddRow("y", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// all data lines equal width
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and separator widths differ:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("no separator:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{
		Title:  "H",
		Labels: []string{"a", "bb"},
		Values: []float64{1, 2},
		Unit:   "%",
	}
	out := h.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "2%") {
		t.Errorf("histogram malformed:\n%s", out)
	}
	// the larger value gets the longer bar
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestHistogramZeroMax(t *testing.T) {
	h := &Histogram{Labels: []string{"a"}, Values: []float64{0}}
	if out := h.String(); !strings.Contains(out, "a") {
		t.Errorf("zero histogram: %q", out)
	}
}

func TestSciBig(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"0", "0"},
		{"123", "123"},
		{"999999", "999999"},
		{"1000000", "1.00e6"},
		{"52400000", "5.24e7"},
		{"-1234567", "-1.23e6"},
	}
	for _, c := range cases {
		v, _ := new(big.Int).SetString(c.in, 10)
		if got := SciBig(v); got != c.want {
			t.Errorf("SciBig(%s) = %q, want %q", c.in, got, c.want)
		}
	}
	// the paper's Table 1 magnitude: 5.24e163
	v := new(big.Int).Exp(big.NewInt(10), big.NewInt(163), nil)
	v.Mul(v, big.NewInt(5))
	if got := SciBig(v); got != "5.00e163" {
		t.Errorf("SciBig(5e163) = %q", got)
	}
}

func TestRatioOrders(t *testing.T) {
	naive, _ := new(big.Int).SetString("1310943547383", 10) // paper Table 1
	our := big.NewInt(2050671)
	if got := RatioOrders(naive, our); got != 6 {
		t.Errorf("RatioOrders = %d, want 6 (the paper's headline)", got)
	}
}

func TestBucketCounts(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(5),         // [1,10)
		big.NewInt(50),        // [10,100)
		big.NewInt(512),       // [100,1000)
		big.NewInt(1_000_000), // 1e6 bucket
		new(big.Int).Exp(big.NewInt(10), big.NewInt(15), nil), // overflow bucket
	}
	labels, counts := BucketCounts(vals, 10)
	if len(labels) != 11 || len(counts) != 11 {
		t.Fatalf("lengths = %d/%d", len(labels), len(counts))
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 || counts[6] != 1 || counts[10] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.291); got != "29.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if strings.Join(got, "") != "abc" {
		t.Errorf("SortedKeys = %v", got)
	}
}
