package whilelang

import (
	"math/big"
	"reflect"
	"strings"
	"testing"
)

func TestFigure5Structure(t *testing.T) {
	p := Figure5()
	holes := p.Holes()
	if len(holes) != 6 {
		t.Fatalf("holes = %d, want 6 (paper Figure 5)", len(holes))
	}
	if got := p.CharacteristicVector(); !reflect.DeepEqual(got, []string{"a", "b", "a", "a", "a", "b"}) {
		t.Errorf("characteristic vector = %v", got)
	}
	if got := p.RGS(); !reflect.DeepEqual(got, []int{0, 1, 0, 0, 0, 1}) {
		t.Errorf("RGS = %v, want 010001 (paper Example 5)", got)
	}
}

func TestFigure5Counts(t *testing.T) {
	p := Figure5()
	if got := p.NaiveCount(); got.Cmp(big.NewInt(64)) != 0 {
		t.Errorf("naive = %s, want 64 (= 2^6)", got)
	}
	// canonical = {6 1} + {6 2} = 1 + 31 = 32
	if got := p.CanonicalCount(); got.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("canonical = %s, want 32", got)
	}
	if got := p.EachCanonical(func(string) bool { return true }); got != 32 {
		t.Errorf("canonical enumeration = %d, want 32", got)
	}
	if got := p.EachNaive(func(string) bool { return true }); got != 64 {
		t.Errorf("naive enumeration = %d, want 64", got)
	}
}

func TestEnumerationDistinctAndRestoring(t *testing.T) {
	p := Figure5()
	before := p.String()
	seen := map[string]bool{}
	p.EachCanonical(func(src string) bool {
		if seen[src] {
			t.Fatalf("duplicate canonical program:\n%s", src)
		}
		seen[src] = true
		return true
	})
	if after := p.String(); after != before {
		t.Errorf("enumeration did not restore the program:\n%s\nvs\n%s", before, after)
	}
}

func TestCanonicalIsSubsetOfNaiveModuloAlpha(t *testing.T) {
	p := Figure5()
	// every naive filling's RGS must appear among canonical fillings
	canonical := map[string]bool{}
	p.EachCanonical(func(string) bool {
		canonical[rgsKey(p.RGS())] = true
		return true
	})
	p.EachNaive(func(string) bool {
		if !canonical[rgsKey(p.RGS())] {
			t.Fatalf("naive filling %v not covered", p.CharacteristicVector())
		}
		return true
	})
}

func rgsKey(rgs []int) string {
	b := make([]byte, len(rgs))
	for i, v := range rgs {
		b[i] = byte('0' + v)
	}
	return string(b)
}

func TestFigure5ProgramsP1P2(t *testing.T) {
	// paper Example 1: P1 = <b,a,b,b,b,a> and P2 = <a,b,b,b,a,b> realize
	// the same skeleton; P ~ P1 but P !~ P2 (Example 2)
	p := Figure5()
	holes := p.Holes()
	set := func(names ...string) {
		for i, n := range names {
			holes[i].Name = n
		}
	}
	set("b", "a", "b", "b", "b", "a")
	rgsP1 := rgsKey(p.RGS())
	set("a", "b", "b", "b", "a", "b")
	rgsP2 := rgsKey(p.RGS())
	set("a", "b", "a", "a", "a", "b")
	rgsP := rgsKey(p.RGS())
	if rgsP != rgsP1 {
		t.Errorf("P and P1 should be alpha-equivalent: %s vs %s", rgsP, rgsP1)
	}
	if rgsP == rgsP2 {
		t.Errorf("P and P2 should not be alpha-equivalent")
	}
}

func TestEval(t *testing.T) {
	p := Figure5()
	st, err := p.Eval(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st["a"] != 0 || st["b"] != 1 {
		t.Errorf("final state = %v, want a=0 b=1", st)
	}
	// the alpha-renamed variant has the renamed final state
	holes := p.Holes()
	names := []string{"b", "a", "b", "b", "b", "a"}
	for i, n := range names {
		holes[i].Name = n
	}
	st2, err := p.Eval(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st2["b"] != 0 || st2["a"] != 1 {
		t.Errorf("renamed final state = %v, want b=0 a=1", st2)
	}
}

func TestEvalBudget(t *testing.T) {
	// filling the loop condition with b (constant 1) diverges; the budget
	// must stop it
	p := Figure5()
	holes := p.Holes()
	holes[2].Name = "b" // while (b) with b = 1 and a := a-b inside: b stays 1
	holes[3].Name = "b" // b := b - b ... actually assign target b
	if _, err := p.Eval(1000); err == nil {
		t.Log("variant converged; trying explicit divergence")
		holes[3].Name = "a"
		holes[4].Name = "b"
		holes[5].Name = "b"
		if _, err := p.Eval(1000); err == nil {
			t.Error("expected step budget exhaustion")
		}
	}
}

func TestSkeletonString(t *testing.T) {
	p := Figure5()
	s := p.SkeletonString()
	for _, want := range []string{"<1> := 10", "<2> := 1", "while (<3>)", "<4> := <5> - <6>"} {
		if !strings.Contains(s, want) {
			t.Errorf("skeleton missing %q:\n%s", want, s)
		}
	}
	// rendering the skeleton must not clobber the program
	if !strings.Contains(p.String(), "a := 10") {
		t.Error("skeleton rendering mutated the program")
	}
}
