package whilelang

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a WHILE program in the concrete syntax of the paper's
// Figure 4 / Figure 5:
//
//	x := 10;
//	y := 1;
//	while (x) do
//	  x := x - y;
//	if (x < y) then
//	  y := 0;
//	else
//	  y := 1;
//
// Statement bodies of while/if are either a single statement or a
// braces-enclosed sequence. The variable set V is collected from all
// identifiers.
func Parse(src string) (*Program, error) {
	p := &wparser{toks: wlex(src)}
	body, err := p.seq(func() bool { return p.eof() })
	if err != nil {
		return nil, err
	}
	prog := &Program{Body: body}
	seen := map[string]bool{}
	for _, h := range prog.Holes() {
		if !seen[h.Name] {
			seen[h.Name] = true
			prog.Vars = append(prog.Vars, h.Name)
		}
	}
	return prog, nil
}

// MustParse parses or panics; for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func wlex(src string) []string {
	// protect multi-character operators before splitting single characters
	src = strings.ReplaceAll(src, ":=", " \x01 ")
	src = strings.ReplaceAll(src, "<=", " \x02 ")
	for _, p := range []string{"(", ")", "{", "}", ";", "+", "-", "*", "<", "="} {
		src = strings.ReplaceAll(src, p, " "+p+" ")
	}
	src = strings.ReplaceAll(src, "\x01", ":=")
	src = strings.ReplaceAll(src, "\x02", "<=")
	return strings.Fields(src)
}

type wparser struct {
	toks []string
	pos  int
}

func (p *wparser) eof() bool { return p.pos >= len(p.toks) }

func (p *wparser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *wparser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *wparser) expect(t string) error {
	if p.peek() != t {
		return fmt.Errorf("whilelang: expected %q, found %q at token %d", t, p.peek(), p.pos)
	}
	p.pos++
	return nil
}

func (p *wparser) seq(done func() bool) (Stmt, error) {
	var list []Stmt
	for !done() {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
	if len(list) == 1 {
		return list[0], nil
	}
	return &Seq{List: list}, nil
}

func (p *wparser) stmt() (Stmt, error) {
	switch p.peek() {
	case "{":
		p.next()
		s, err := p.seq(func() bool { return p.peek() == "}" || p.eof() })
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return s, nil
	case "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect("do"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect("then"); err != nil {
			return nil, err
		}
		thenS, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: thenS}
		if p.peek() == "else" {
			p.next()
			elseS, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.Else = elseS
		}
		return st, nil
	case "":
		return nil, fmt.Errorf("whilelang: unexpected end of input")
	default:
		name := p.next()
		if !isIdent(name) {
			return nil, fmt.Errorf("whilelang: expected statement, found %q", name)
		}
		if err := p.expect(":="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Assign{Var: &Var{Name: name}, Expr: rhs}, nil
	}
}

// expr parses left-associative chains over +, -, *, and the relational and
// boolean operators of Figure 4 (flat precedence suffices for the paper's
// programs; parenthesize to group).
func (p *wparser) expr() (Expr, error) {
	lhs, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		switch op {
		case "+", "-", "*", "<", "<=", "=", "and", "or":
			p.next()
			rhs, err := p.atom()
			if err != nil {
				return nil, err
			}
			lhs = &BinOp{Op: op, L: lhs, R: rhs}
		default:
			return lhs, nil
		}
	}
}

func (p *wparser) atom() (Expr, error) {
	t := p.next()
	switch {
	case t == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t == "not":
		x, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case t == "true":
		return &Bool{Val: true}, nil
	case t == "false":
		return &Bool{Val: false}, nil
	case isNumber(t):
		v, _ := strconv.ParseInt(t, 10, 64)
		return &Num{Val: v}, nil
	case isIdent(t):
		return &Var{Name: t}, nil
	default:
		return nil, fmt.Errorf("whilelang: unexpected token %q", t)
	}
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		if c == '-' && i == 0 && len(s) > 1 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

var wlKeywords = map[string]bool{
	"while": true, "do": true, "if": true, "then": true, "else": true,
	"not": true, "true": true, "false": true, "and": true, "or": true,
}

func isIdent(s string) bool {
	if s == "" || wlKeywords[s] {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
