// Package whilelang implements the WHILE language of the paper's Section 3
// (Figure 4): arithmetic and boolean expressions, assignment, sequencing,
// conditionals, and loops, with no lexical scoping — every variable is
// global. It serves as the pedagogical substrate for skeletal program
// enumeration: the scope-free case where SPE reduces exactly to set
// partition enumeration via restricted growth strings (Section 4.1).
package whilelang

import (
	"fmt"
	"math/big"
	"strings"

	"spe/internal/partition"
)

// Stmt is a WHILE statement.
type Stmt interface{ stmt() }

// Assign is "x := a".
type Assign struct {
	Var  *Var
	Expr Expr
}

func (*Assign) stmt() {}

// Seq is "S1 ; S2".
type Seq struct{ List []Stmt }

func (*Seq) stmt() {}

// While is "while (b) do S".
type While struct {
	Cond Expr
	Body Stmt
}

func (*While) stmt() {}

// If is "if (b) then S1 else S2".
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

func (*If) stmt() {}

// Expr is a WHILE expression.
type Expr interface{ expr() }

// Var is a variable occurrence — a skeleton hole.
type Var struct{ Name string }

func (*Var) expr() {}

// Num is an integer literal.
type Num struct{ Val int64 }

func (*Num) expr() {}

// Bool is a boolean literal.
type Bool struct{ Val bool }

func (*Bool) expr() {}

// BinOp is an arithmetic, boolean, or relational operation.
type BinOp struct {
	Op   string
	L, R Expr
}

func (*BinOp) expr() {}

// Not is boolean negation.
type Not struct{ X Expr }

func (*Not) expr() {}

// Program is a WHILE program: a statement plus its variable population.
type Program struct {
	Body Stmt
	// Vars is the global variable set V, in first-appearance order.
	Vars []string
}

// Holes returns every variable occurrence in source order (the skeleton's
// characteristic vector positions).
func (p *Program) Holes() []*Var {
	var out []*Var
	var walkE func(Expr)
	walkE = func(e Expr) {
		switch e := e.(type) {
		case *Var:
			out = append(out, e)
		case *BinOp:
			walkE(e.L)
			walkE(e.R)
		case *Not:
			walkE(e.X)
		}
	}
	var walkS func(Stmt)
	walkS = func(s Stmt) {
		switch s := s.(type) {
		case *Assign:
			out = append(out, s.Var)
			walkE(s.Expr)
		case *Seq:
			for _, x := range s.List {
				walkS(x)
			}
		case *While:
			walkE(s.Cond)
			walkS(s.Body)
		case *If:
			walkE(s.Cond)
			walkS(s.Then)
			if s.Else != nil {
				walkS(s.Else)
			}
		}
	}
	walkS(p.Body)
	return out
}

// CharacteristicVector returns the current filling as variable names, the
// s_P vector of Definition 1.
func (p *Program) CharacteristicVector() []string {
	holes := p.Holes()
	out := make([]string, len(holes))
	for i, h := range holes {
		out[i] = h.Name
	}
	return out
}

// RGS returns the restricted growth string of the current filling — the
// canonical form deciding alpha-equivalence (paper Example 5).
func (p *Program) RGS() []int {
	vec := p.CharacteristicVector()
	idx := make([]int, len(vec))
	seen := map[string]int{}
	for i, name := range vec {
		id, ok := seen[name]
		if !ok {
			id = len(seen)
			seen[name] = id
		}
		idx[i] = id
	}
	return partition.RGSOf(idx)
}

// NaiveCount is |V|^n (paper §3.1).
func (p *Program) NaiveCount() *big.Int {
	n := len(p.Holes())
	return new(big.Int).Exp(big.NewInt(int64(len(p.Vars))), big.NewInt(int64(n)), nil)
}

// CanonicalCount is sum_{i=1..k} {n i} (paper Eq. 1).
func (p *Program) CanonicalCount() *big.Int {
	return partition.SumStirling(len(p.Holes()), len(p.Vars))
}

// EachCanonical enumerates one representative per alpha-equivalence class
// by filling holes along restricted growth strings; block i is assigned
// Vars[i]. The program's holes are mutated in place for each yield and
// restored afterwards.
func (p *Program) EachCanonical(yield func(src string) bool) int {
	holes := p.Holes()
	saved := make([]string, len(holes))
	for i, h := range holes {
		saved[i] = h.Name
	}
	defer func() {
		for i, h := range holes {
			h.Name = saved[i]
		}
	}()
	return partition.EachRGS(len(holes), len(p.Vars), func(rgs []int) bool {
		for i, b := range rgs {
			holes[i].Name = p.Vars[b]
		}
		return yield(p.String())
	})
}

// EachNaive enumerates the full Cartesian product of fillings.
func (p *Program) EachNaive(yield func(src string) bool) int {
	holes := p.Holes()
	saved := make([]string, len(holes))
	for i, h := range holes {
		saved[i] = h.Name
	}
	defer func() {
		for i, h := range holes {
			h.Name = saved[i]
		}
	}()
	count := 0
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(holes) {
			count++
			return yield(p.String())
		}
		for _, v := range p.Vars {
			holes[i].Name = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// String renders the program in WHILE concrete syntax.
func (p *Program) String() string {
	var sb strings.Builder
	writeStmt(&sb, p.Body, 0)
	return sb.String()
}

// SkeletonString renders the program with holes as numbered boxes.
func (p *Program) SkeletonString() string {
	holes := p.Holes()
	saved := make([]string, len(holes))
	for i, h := range holes {
		saved[i] = h.Name
		h.Name = fmt.Sprintf("<%d>", i+1)
	}
	out := p.String()
	for i, h := range holes {
		h.Name = saved[i]
	}
	return out
}

func writeStmt(sb *strings.Builder, s Stmt, indent int) {
	ind := strings.Repeat("  ", indent)
	switch s := s.(type) {
	case *Assign:
		sb.WriteString(ind + s.Var.Name + " := " + exprString(s.Expr) + ";\n")
	case *Seq:
		for _, x := range s.List {
			writeStmt(sb, x, indent)
		}
	case *While:
		sb.WriteString(ind + "while (" + exprString(s.Cond) + ") do\n")
		writeBody(sb, s.Body, indent)
	case *If:
		sb.WriteString(ind + "if (" + exprString(s.Cond) + ") then\n")
		writeBody(sb, s.Then, indent)
		if s.Else != nil {
			sb.WriteString(ind + "else\n")
			writeBody(sb, s.Else, indent)
		}
	}
}

// writeBody renders a loop/branch body, bracing multi-statement sequences
// so that printing round-trips through the parser.
func writeBody(sb *strings.Builder, s Stmt, indent int) {
	ind := strings.Repeat("  ", indent)
	if seq, ok := s.(*Seq); ok && len(seq.List) != 1 {
		sb.WriteString(ind + "{\n")
		writeStmt(sb, seq, indent+1)
		sb.WriteString(ind + "}\n")
		return
	}
	writeStmt(sb, s, indent+1)
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case *Var:
		return e.Name
	case *Num:
		return fmt.Sprintf("%d", e.Val)
	case *Bool:
		if e.Val {
			return "true"
		}
		return "false"
	case *BinOp:
		return exprString(e.L) + " " + e.Op + " " + exprString(e.R)
	case *Not:
		return "not " + exprString(e.X)
	default:
		return "?"
	}
}

// Eval runs the program over integer state with a step budget, returning
// the final state. Boolean conditions treat nonzero as true for arithmetic
// expressions and use comparisons directly.
func (p *Program) Eval(maxSteps int) (map[string]int64, error) {
	state := make(map[string]int64)
	for _, v := range p.Vars {
		state[v] = 0
	}
	steps := 0
	var evalE func(Expr) int64
	evalE = func(e Expr) int64 {
		switch e := e.(type) {
		case *Var:
			return state[e.Name]
		case *Num:
			return e.Val
		case *Bool:
			if e.Val {
				return 1
			}
			return 0
		case *Not:
			if evalE(e.X) == 0 {
				return 1
			}
			return 0
		case *BinOp:
			l, r := evalE(e.L), evalE(e.R)
			switch e.Op {
			case "+":
				return l + r
			case "-":
				return l - r
			case "*":
				return l * r
			case "and":
				if l != 0 && r != 0 {
					return 1
				}
				return 0
			case "or":
				if l != 0 || r != 0 {
					return 1
				}
				return 0
			case "<":
				if l < r {
					return 1
				}
				return 0
			case "<=":
				if l <= r {
					return 1
				}
				return 0
			case "=":
				if l == r {
					return 1
				}
				return 0
			}
		}
		return 0
	}
	var run func(Stmt) error
	run = func(s Stmt) error {
		steps++
		if steps > maxSteps {
			return fmt.Errorf("whilelang: step budget exhausted")
		}
		switch s := s.(type) {
		case *Assign:
			state[s.Var.Name] = evalE(s.Expr)
		case *Seq:
			for _, x := range s.List {
				if err := run(x); err != nil {
					return err
				}
			}
		case *While:
			for evalE(s.Cond) != 0 {
				if err := run(s.Body); err != nil {
					return err
				}
				steps++
				if steps > maxSteps {
					return fmt.Errorf("whilelang: step budget exhausted")
				}
			}
		case *If:
			if evalE(s.Cond) != 0 {
				return run(s.Then)
			} else if s.Else != nil {
				return run(s.Else)
			}
		}
		return nil
	}
	if err := run(p.Body); err != nil {
		return nil, err
	}
	return state, nil
}

// Figure5 builds the paper's Figure 5 program:
//
//	a := 10; b := 1; while (a) do a := a - b;
func Figure5() *Program {
	a1 := &Var{Name: "a"}
	b1 := &Var{Name: "b"}
	a2 := &Var{Name: "a"}
	a3 := &Var{Name: "a"}
	a4 := &Var{Name: "a"}
	b2 := &Var{Name: "b"}
	return &Program{
		Vars: []string{"a", "b"},
		Body: &Seq{List: []Stmt{
			&Assign{Var: a1, Expr: &Num{Val: 10}},
			&Assign{Var: b1, Expr: &Num{Val: 1}},
			&While{
				Cond: a2,
				Body: &Assign{Var: a3, Expr: &BinOp{Op: "-", L: a4, R: b2}},
			},
		}},
	}
}
