package whilelang

import (
	"math/big"
	"reflect"
	"testing"
)

const figure5Src = `
a := 10;
b := 1;
while (a) do
  a := a - b;
`

func TestParseFigure5(t *testing.T) {
	p := MustParse(figure5Src)
	if !reflect.DeepEqual(p.Vars, []string{"a", "b"}) {
		t.Fatalf("vars = %v", p.Vars)
	}
	if got := len(p.Holes()); got != 6 {
		t.Fatalf("holes = %d, want 6", got)
	}
	// parsed and hand-built programs agree on all counts and semantics
	built := Figure5()
	if p.NaiveCount().Cmp(built.NaiveCount()) != 0 {
		t.Error("naive counts disagree")
	}
	if p.CanonicalCount().Cmp(big.NewInt(32)) != 0 {
		t.Errorf("canonical = %s", p.CanonicalCount())
	}
	st, err := p.Eval(10000)
	if err != nil {
		t.Fatal(err)
	}
	if st["a"] != 0 || st["b"] != 1 {
		t.Errorf("final state = %v", st)
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		figure5Src,
		"x := 1;\nif (x < 2) then\n  y := x;\nelse\n  y := 0;",
		"s := 0;\ni := 5;\nwhile (i) do {\n  s := s + i;\n  i := i - 1;\n}",
		"b := true;\nif (not b) then\n  x := 1;",
		"x := (1 + 2) * 3;",
	}
	for _, src := range srcs {
		p := MustParse(src)
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, printed)
		}
		if p2.String() != printed {
			t.Errorf("print not a fixed point:\n%s\nvs\n%s", printed, p2.String())
		}
	}
}

func TestParseBraceBodies(t *testing.T) {
	p := MustParse(`
s := 0;
i := 3;
while (i) do {
  s := s + i;
  i := i - 1;
}
`)
	st, err := p.Eval(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st["s"] != 6 || st["i"] != 0 {
		t.Errorf("state = %v, want s=6 i=0", st)
	}
}

func TestParseIfElse(t *testing.T) {
	p := MustParse(`
x := 5;
if (x < 3) then
  y := 1;
else
  y := 2;
`)
	st, err := p.Eval(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st["y"] != 2 {
		t.Errorf("y = %d, want 2", st["y"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x := ;",
		"x = 1;",
		"while x do y := 1;",
		"if (x) y := 1;",
		"x := 1",
		"while (x) do",
		"123 := x;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParsedEnumerationMatchesTheory(t *testing.T) {
	p := MustParse("x := y + z;\ny := x;")
	// holes: x, y, z, y, x = 5; vars = 3 => canonical = sum {5 i}, i=1..3
	n := len(p.Holes())
	if n != 5 {
		t.Fatalf("holes = %d", n)
	}
	want := big.NewInt(1 + 15 + 25) // {5 1} + {5 2} + {5 3}
	if got := p.CanonicalCount(); got.Cmp(want) != 0 {
		t.Errorf("canonical = %s, want %s", got, want)
	}
	seen := map[string]bool{}
	p.EachCanonical(func(src string) bool {
		if seen[src] {
			t.Fatalf("duplicate variant:\n%s", src)
		}
		seen[src] = true
		return true
	})
	if int64(len(seen)) != want.Int64() {
		t.Errorf("enumerated %d, want %s", len(seen), want)
	}
}
