package corpus

// Seeds returns the handwritten corpus: small programs adapted from the
// paper's figures (1, 2, 3, 11, 12) and c-torture-style snippets. Each is
// UB-free under its original filling; enumerated variants are re-checked
// by the harness.
func Seeds() []string {
	return []string{
		// paper Figure 1 (P1 skeleton family, initialized to stay defined)
		`int main() {
    int a = 0, b = 1;
    b = b - a;
    if (a)
        a = a - b;
    printf("%d %d\n", a, b);
    return 0;
}`,
		// paper Figure 2 (alias attribute replaced by two pointers)
		`int a = 0;
int b = 0;
int main() {
    a = 0;
    int *p = &a, *q = &a;
    *p = 1;
    *q = 2;
    printf("%d\n", a + b);
    return a;
}`,
		// paper Figure 3 (struct field via nested conditionals)
		`struct s { int c; };
struct s a, b, c;
int d; int e;
int main() {
    b.c = 1;
    c.c = 2;
    int r = e ? (e == 0 ? b : c).c : (d == 0 ? b : c).c;
    printf("%d\n", r);
    return 0;
}`,
		// paper Figure 6
		`int main() {
    int a = 1, b = 0;
    if (a) {
        int c = 3, d = 5;
        b = c + d;
    }
    printf("%d", a);
    printf("%d", b);
    return 0;
}`,
		// paper Figure 11(b): irreducible loop via goto
		`int a; int b;
int main() {
    if (b)
        ;
    else {
        int c = 0;
        a = c;
l1:
        a = a + 1;
    }
    if (a < 3) goto l1;
    printf("%d\n", a);
    return 0;
}`,
		// paper Figure 11(c) shape: nested loops over an array
		`double u[20];
int a, b;
void fn1(int p1) {
    int lim = p1;
    for (a = 0; a < lim; a++) {
        b = 0;
        for (; b < 3; b++)
            u[a + 3 * b] = u[a + 3 * b] + 1.0;
    }
}
int main() {
    int i;
    for (i = 0; i < 20; i++) u[i] = 0.0;
    fn1(2);
    printf("%g\n", u[0] + u[3]);
    return 0;
}`,
		// paper Figure 11(d): goto over a declaration
		`int main() {
    int *p = 0;
trick:
    if (p)
        return *p;
    int x = 0;
    p = &x;
    goto trick;
    return 9;
}`,
		// paper Figure 12(b) shape: loop with strided array accesses
		`double u[30];
int a, b, d, e;
static void foo(int *p1) {
    double c = 0.0;
    for (a = 0; a < 5; a++) {
        b = 0;
        for (; b < 5; b++)
            c = c + u[a + 5 * b];
        u[6 * a] = u[6 * a] * 2.0;
    }
    *p1 = (int)c;
}
int main() {
    int r = 0;
    int i;
    for (i = 0; i < 30; i++) u[i] = 1.0;
    foo(&r);
    printf("%d\n", r);
    return 0;
}`,
		// paper Figure 12(c) shape: static locals
		`int counter() {
    static int n = 0;
    n = n + 1;
    return n;
}
int main() {
    int a = counter();
    int b = counter();
    printf("%d %d\n", a, b);
    return a + b;
}`,
		// c-torture style: accumulating helper calls
		`int g1 = 5, g2 = 7;
int swap() {
    int t = g1;
    g1 = g2;
    g2 = t;
    return g1 - g2;
}
int main() {
    int d = swap();
    d = d + swap();
    printf("%d %d %d\n", g1, g2, d);
    return 0;
}`,
		// c-torture style: chars and shifts
		`int main() {
    int c = 3;
    int r = c << 2;
    r = r >> 1;
    r = r ^ (c << 1);
    printf("%d\n", r);
    return r & 15;
}`,
		// c-torture style: comma and conditional mix
		`int main() {
    int a = 2, b = 5, c = 0;
    c = (a = a + 1, b - a);
    b = c > 0 ? a : b;
    printf("%d %d %d\n", a, b, c);
    return 0;
}`,
		// unsigned wraparound (defined)
		`int main() {
    unsigned int u = 4294967290u;
    unsigned int step = 3u;
    u = u + step;
    u = u + step;
    printf("%u\n", u);
    return 0;
}`,
		// pointer walk over an array
		`int main() {
    int arr[6] = {1, 2, 3, 4, 5, 6};
    int *p = arr;
    int *q = &arr[5];
    int s = 0;
    while (p < q) {
        s += *p;
        p = p + 1;
    }
    printf("%d\n", s);
    return s & 63;
}`,
		// do-while with break/continue
		`int main() {
    int i = 0, s = 0;
    do {
        i++;
        if (i == 3) continue;
        if (i > 7) break;
        s += i;
    } while (i < 10);
    printf("%d %d\n", i, s);
    return 0;
}`,
	}
}
