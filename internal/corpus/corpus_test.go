package corpus

import (
	"testing"

	"spe/internal/interp"
	"spe/internal/skeleton"
)

func TestSeedsAreCleanAndDeterministic(t *testing.T) {
	for i, src := range Seeds() {
		prog, err := analyze(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", i, err, src)
		}
		r := interp.Run(prog, interp.Config{})
		if !r.Defined() {
			t.Errorf("seed %d has UB/limit: %v %v\n%s", i, r.UB, r.Limit, src)
		}
		// skeletons must build
		sk, err := skeleton.Build(prog)
		if err != nil {
			t.Errorf("seed %d: skeleton: %v", i, err)
			continue
		}
		if len(sk.Holes) == 0 {
			t.Errorf("seed %d has no holes", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 10, Seed: 1})
	b := Generate(Config{N: 10, Seed: 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := Generate(Config{N: 10, Seed: 2})
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == len(c) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratedProgramsAreClean(t *testing.T) {
	for i, src := range Generate(Config{N: 30, Seed: 7}) {
		prog, err := analyze(src)
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		r := interp.Run(prog, interp.Config{})
		if !r.Defined() {
			t.Errorf("program %d has UB: %v\n%s", i, r.UB, src)
		}
		if _, err := skeleton.Build(prog); err != nil {
			t.Errorf("program %d: skeleton: %v", i, err)
		}
	}
}

func TestGeneratedCharacteristicsNearTable2(t *testing.T) {
	progs := Generate(Config{N: 60, Seed: 42})
	var holes, scopes, funcs, vars float64
	for _, src := range progs {
		prog, err := analyze(src)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		st := sk.ComputeStats()
		holes += float64(st.Holes)
		scopes += float64(st.Scopes)
		funcs += float64(st.Funcs)
		vars += st.Vars
	}
	n := float64(len(progs))
	holes /= n
	scopes /= n
	funcs /= n
	vars /= n
	// Table 2 reports 7.34 holes, 2.77 scopes, 1.85 funcs, 3.46 vars/hole;
	// the synthetic corpus should be in the same regime (loose bands).
	if holes < 4 || holes > 25 {
		t.Errorf("avg holes = %.2f, want ~7 (band 4..25)", holes)
	}
	if scopes < 1.5 || scopes > 6 {
		t.Errorf("avg scopes = %.2f, want ~2.8 (band 1.5..6)", scopes)
	}
	if funcs < 1 || funcs > 3 {
		t.Errorf("avg funcs = %.2f, want ~1.85", funcs)
	}
	if vars < 2 || vars > 8 {
		t.Errorf("avg vars/hole = %.2f, want ~3.5 (band 2..8)", vars)
	}
	t.Logf("corpus characteristics: holes=%.2f scopes=%.2f funcs=%.2f vars/hole=%.2f",
		holes, scopes, funcs, vars)
}
