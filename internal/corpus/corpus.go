// Package corpus provides the test-program population for the evaluation:
// a deterministic synthetic generator calibrated to the paper's Table 2
// characteristics (small c-torture-style functions: ~7 holes, ~2-3 scopes,
// ~1-2 functions, ~3.5 admissible variables per hole), plus handwritten
// seeds adapted from the paper's figures.
//
// Every generated program is verified UB-free under the reference
// interpreter before being admitted to the corpus — the enumeration
// harness then re-checks each enumerated variant, exactly as the paper
// uses CompCert's reference interpreter to filter undefined behavior.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"spe/internal/cc"
	"spe/internal/interp"
)

// Config parameterizes generation.
type Config struct {
	// N is the number of programs.
	N int
	// Seed drives the deterministic generator.
	Seed int64
}

// Generate produces N UB-free programs.
func Generate(cfg Config) []string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]string, 0, cfg.N)
	for len(out) < cfg.N {
		src := genProgram(rng)
		prog, err := analyze(src)
		if err != nil {
			continue
		}
		r := interp.Run(prog, interp.Config{MaxSteps: 500_000})
		if !r.Defined() || r.Aborted {
			continue
		}
		out = append(out, src)
	}
	return out
}

func analyze(src string) (*cc.Program, error) {
	f, err := cc.Parse(src)
	if err != nil {
		return nil, err
	}
	return cc.Analyze(f)
}

type gen struct {
	rng *rand.Rand
	sb  strings.Builder
	// visible int variables by nesting level
	scopes  [][]string
	counter int
	indent  int
}

func (g *gen) line(format string, args ...interface{}) {
	for i := 0; i < g.indent; i++ {
		g.sb.WriteString("    ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) fresh(prefix string) string {
	g.counter++
	return fmt.Sprintf("%s%d", prefix, g.counter)
}

func (g *gen) visible() []string {
	var out []string
	for _, s := range g.scopes {
		out = append(out, s...)
	}
	return out
}

func (g *gen) push() { g.scopes = append(g.scopes, nil) }
func (g *gen) pop()  { g.scopes = g.scopes[:len(g.scopes)-1] }
func (g *gen) declare(name string) {
	g.scopes[len(g.scopes)-1] = append(g.scopes[len(g.scopes)-1], name)
}

// expr builds a small arithmetic expression over visible int variables.
// Only +, -, * with small constants: no division (quotients may become
// zero denominators under re-filling; the harness filters those, but the
// original must be clean) and no overflow risk at the magnitudes produced.
func (g *gen) expr(depth int) string {
	vars := g.visible()
	if depth <= 0 || len(vars) == 0 || g.rng.Intn(3) == 0 {
		if len(vars) > 0 && g.rng.Intn(4) != 0 {
			return vars[g.rng.Intn(len(vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(9))
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "-u"}
	op := ops[g.rng.Intn(len(ops))]
	switch op {
	case "*":
		// keep one side a small constant to bound magnitudes
		return fmt.Sprintf("%s * %d", g.expr(depth-1), 1+g.rng.Intn(3))
	case "-u":
		return fmt.Sprintf("-(%s)", g.expr(depth-1))
	}
	return fmt.Sprintf("%s %s %s", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *gen) cond() string {
	vars := g.visible()
	if len(vars) == 0 {
		return "1"
	}
	v := vars[g.rng.Intn(len(vars))]
	rel := []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)]
	return fmt.Sprintf("%s %s %d", v, rel, g.rng.Intn(9))
}

// stmts emits a statement sequence at the current scope.
func (g *gen) stmts(budget, depth int) {
	for budget > 0 {
		budget -= g.stmt(depth, budget)
	}
}

func (g *gen) stmt(depth, budget int) int {
	vars := g.visible()
	choice := g.rng.Intn(10)
	switch {
	case choice < 4 && len(vars) > 0: // assignment
		v := vars[g.rng.Intn(len(vars))]
		if g.rng.Intn(4) == 0 {
			op := []string{"+=", "-=", "^=", "|="}[g.rng.Intn(4)]
			g.line("%s %s %s;", v, op, g.expr(1))
		} else {
			g.line("%s = %s;", v, g.expr(2))
		}
		return 1
	case choice < 6 && depth > 0 && budget >= 3: // if block with inner scope
		g.line("if (%s) {", g.cond())
		g.indent++
		g.push()
		if g.rng.Intn(2) == 0 {
			n := g.fresh("t")
			g.declare(n)
			g.line("int %s = %s;", n, g.expr(1))
		}
		g.stmts(budget/2, depth-1)
		g.pop()
		g.indent--
		g.line("}")
		if g.rng.Intn(3) == 0 && len(vars) > 0 {
			g.line("else")
			g.indent++
			g.line("%s = %s;", vars[g.rng.Intn(len(vars))], g.expr(1))
			g.indent--
		}
		return 3
	case choice < 8 && depth > 0 && budget >= 3 && len(vars) > 0: // bounded loop
		i := g.fresh("i")
		acc := vars[g.rng.Intn(len(vars))]
		bound := 2 + g.rng.Intn(5)
		g.line("for (int %s = 0; %s < %d; %s++) {", i, i, bound, i)
		g.indent++
		g.push()
		g.declare(i)
		g.line("%s += %s;", acc, g.expr(1))
		if g.rng.Intn(3) == 0 {
			g.line("if (%s) { %s ^= %s; }", g.cond(), acc, i)
		}
		g.pop()
		g.indent--
		g.line("}")
		return 3
	case choice < 9 && len(vars) > 0: // observation point
		v := vars[g.rng.Intn(len(vars))]
		g.line(`printf("%%d\n", %s);`, v)
		return 1
	default:
		if len(vars) > 0 {
			g.line("%s = %s;", vars[g.rng.Intn(len(vars))], g.expr(2))
		} else {
			g.line(";")
		}
		return 1
	}
}

// genProgram emits one candidate program; callers re-check UB-freedom.
func genProgram(rng *rand.Rand) string {
	g := &gen{rng: rng}
	g.push() // global scope

	// size tier: most files are small (c-torture style); a tail of larger
	// files stretches the enumeration-count distribution like the paper's
	// Figure 8
	large := rng.Intn(8) == 0

	// globals
	nGlobals := rng.Intn(3)
	if large {
		nGlobals += 3
	}
	for i := 0; i < nGlobals; i++ {
		n := g.fresh("g")
		g.declare(n)
		init := 0
		if rng.Intn(3) == 0 {
			init = 1 + rng.Intn(2)
		}
		g.line("int %s = %d;", n, init)
	}

	// sprinkle one special pattern per program (or none): these are the
	// pattern families whose re-fillings exercise the seeded bug surface
	special := rng.Intn(12)

	if special == 6 {
		// struct ternary family (paper Figure 3)
		g.line("struct s%d { int c; int d; };", g.counter)
		g.line("struct s%d sa, sb, sc;", g.counter)
	}
	if special == 1 && nGlobals == 0 {
		// the observer family needs a global
		n := g.fresh("g")
		g.declare(n)
		g.line("int %s = 0;", n)
		nGlobals = 1
	}
	var obsName string
	if special == 1 {
		// observer function: reads the global without an argument load, so
		// the store-call-store family exercises dead-store elimination
		obsName = g.fresh("obs")
		g.line("int %s() { return %s; }", obsName, g.scopes[0][0])
	}

	// helper function
	var helper string
	if rng.Intn(2) == 0 {
		helper = g.fresh("f")
		p1 := g.fresh("x")
		g.line("int %s(int %s) {", helper, p1)
		g.indent++
		g.push()
		g.declare(p1)
		n := g.fresh("a")
		g.declare(n)
		g.line("int %s = %d;", n, rng.Intn(5))
		g.stmts(1+rng.Intn(2), 1)
		g.line("return %s;", g.expr(1))
		g.pop()
		g.indent--
		g.line("}")
	}

	g.line("int main() {")
	g.indent++
	g.push()
	nLocals := 3 + rng.Intn(2)
	if large {
		nLocals += 4 + rng.Intn(4)
	}
	for i := 0; i < nLocals; i++ {
		n := g.fresh("v")
		g.declare(n)
		// a heavily shared initializer pool makes most same-scope variables
		// interchangeable (identical declaration shape) — the dominant
		// pattern in real regression suites ("int a = 0, b = 0, c = 0;")
		init := 0
		if rng.Intn(3) == 0 {
			init = 1 + rng.Intn(2)
		}
		g.line("int %s = %d;", n, init)
	}

	switch special {
	case 0: // pointer alias family (paper Figure 2)
		vars := g.visible()
		target := vars[len(vars)-1]
		g.line("int *p = &%s, *q = &%s;", target, target)
		g.line("*p = 1;")
		g.line("*q = 2;")
	case 1: // call-sandwich stores (dead-store-elimination family)
		gv := g.scopes[0][0]
		vars := g.visible()
		acc := vars[len(vars)-1]
		g.line("%s = 1;", gv)
		g.line("%s = %s();", acc, obsName)
		g.line("%s = 2;", gv)
		g.line("%s += %s();", acc, obsName)
		g.line(`printf("%%d\n", %s);`, acc)
	case 2: // guarded division in a loop (LICM family): the guard is out of
		// range, so the division never executes and the original program is
		// UB-free for every denominator the enumeration picks
		vars := g.visible()
		den := vars[rng.Intn(len(vars))]
		acc := vars[rng.Intn(len(vars))]
		i := g.fresh("i")
		g.line("for (int %s = 0; %s < 4; %s++) {", i, i, i)
		g.indent++
		g.line("if (%s > %d) { %s += 10 / %s; }", i, 4+rng.Intn(4), acc, den)
		g.line("%s += %s;", acc, i)
		g.indent--
		g.line("}")
	case 3: // unsigned char arithmetic (backend family)
		n := g.fresh("u")
		g.line("unsigned char %s = %d;", n, 150+rng.Intn(100))
		g.line("%s = %s + %d;", n, n, 50+rng.Intn(100))
		g.line(`printf("%%d\n", %s);`, n)
	case 4: // subtraction pairs (constant-folding family, Figure 1)
		vars := g.visible()
		a := vars[rng.Intn(len(vars))]
		b := vars[rng.Intn(len(vars))]
		c := vars[rng.Intn(len(vars))]
		g.line("%s = %s - %s;", a, b, c)
		g.line("if (%s)", a)
		g.indent++
		g.line("%s = %s - %s;", a, a, b)
		g.indent--
	case 5: // goto family
		vars := g.visible()
		v := vars[rng.Intn(len(vars))]
		g.line("if (%s > 20) goto done;", v)
		g.line("%s += 3;", v)
		g.line("done:")
		g.line(`printf("%%d\n", %s);`, v)
	case 6: // struct ternary family
		g.line("sb.c = 1; sc.c = 2; sb.d = 3; sc.d = 4;")
		vars := g.visible()
		a := vars[rng.Intn(len(vars))]
		b := vars[rng.Intn(len(vars))]
		g.line("%s = %s ? (%s == 0 ? sb : sc).c : (%s == 0 ? sb : sc).d;", a, b, a, b)
	case 7: // array walk
		arr := g.fresh("arr")
		i := g.fresh("i")
		n := 3 + rng.Intn(4)
		g.line("int %s[%d] = {0};", arr, n)
		g.line("for (int %s = 0; %s < %d; %s++) %s[%s] = %s * 2;", i, i, n, i, arr, i, i)
		vars := g.visible()
		g.line("%s = %s[%d];", vars[rng.Intn(len(vars))], arr, rng.Intn(n))
	case 8: // char shift family (frontend)
		c := g.fresh("c")
		g.line("char %s = %d;", c, 1+rng.Intn(7))
		vars := g.visible()
		g.line("%s = %s << %d;", vars[rng.Intn(len(vars))], c, 1+rng.Intn(3))
	case 9: // subtraction pair (CSE commutativity family); the operands are
		// register-promoted locals of main made opaque to constant
		// propagation by a loop, so the subtractions survive to CSE
		locals := g.scopes[len(g.scopes)-1]
		a := locals[rng.Intn(len(locals))]
		b := locals[rng.Intn(len(locals))]
		i := g.fresh("i")
		g.line("for (int %s = 0; %s < 2; %s++) { %s += %s; %s += %s * 2; }", i, i, i, a, i, b, i)
		x := g.fresh("x")
		y := g.fresh("y")
		g.declare(x)
		g.declare(y)
		g.line("int %s = %s - %s;", x, a, b)
		g.line("int %s = %s - %s;", y, b, a)
		g.line(`printf("%%d %%d\n", %s, %s);`, x, y)
	case 10: // goto inside a loop (irreducible-loop family)
		vars := g.visible()
		v := vars[rng.Intn(len(vars))]
		i := g.fresh("i")
		g.line("for (int %s = 0; %s < 3; %s++) {", i, i, i)
		g.indent++
		g.line("again%d:", g.counter)
		g.line("%s += 1;", v)
		g.line("if (%s == 100) goto again%d;", v, g.counter)
		g.indent--
		g.line("}")
	}

	budget := 1 + rng.Intn(3)
	if large {
		budget += 6 + rng.Intn(6)
	}
	g.stmts(budget, 2)
	if helper != "" {
		vars := g.visible()
		v := vars[rng.Intn(len(vars))]
		g.line("%s = %s(%s);", v, helper, g.expr(1))
	}
	vars := g.visible()
	g.line(`printf("%%d\n", %s);`, vars[rng.Intn(len(vars))])
	g.line("return %s & 127;", vars[rng.Intn(len(vars))])
	g.pop()
	g.indent--
	g.line("}")
	return g.sb.String()
}
