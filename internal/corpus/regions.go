// Package corpus holds generated and hand-built seed programs embedded
// into the binary so experiments and tests run without filesystem
// access to the examples tree.
package corpus

// RegionsSeed returns the large multi-function region-scheduler corpus
// file, byte-identical to examples/regions/large.c (a test pins the two
// copies together). See the C file's header comment for the design.
func RegionsSeed() string { return regionsSeed }

const regionsSeed = `/* Large multi-function corpus file for the region scheduler.
 *
 * The file is built so the campaign's region cuts land inside it in an
 * interesting way (see internal/spe/regions.go):
 *
 *   - sel() sits just before main(), and main() keeps exactly one
 *     variable of each type in scope so it enumerates to a single
 *     filling. That makes sel's filling index the least significant
 *     moving digit of the file's mixed-radix partition space: the
 *     strided campaign walk sweeps sel's fillings directly, while the
 *     padding functions above it (whose digit weights dwarf the walk
 *     bound) never leave their original fillings. The engine's region
 *     cuts slice the walk into contiguous stretches of sel fillings.
 *
 *   - sel has exactly ten holes over three int candidates (seed, r, k),
 *     so its canonical count (3^10 = 59049) sits just above the walk
 *     bound and the walk sweeps most of sel's space: sel's leading
 *     guard hole is the region-scale digit. The source spells the
 *     boring filling (seed < 2 is false at runtime, so the shift never
 *     executes and r/k folds), while the guard hole's second candidate
 *     (r, reached halfway through the walk) makes the guard
 *     constant-true: every variant in the back regions executes the
 *     shift/divide block, surfacing coverage sites (vm.bin.shl,
 *     constfold.bin.lt, runtime divides) that no front-region variant
 *     reaches. A fifo or per-file-score walk only meets them ~310
 *     variants in; region probes meet them in the first shard of any
 *     back region, which is the steering win BENCH_schedule.json
 *     records.
 *
 *   - The padding functions are ordinary c-torture-style code: their
 *     fillings are pinned, so their coverage contribution is identical
 *     in every variant and exhausted by the first shard of any
 *     schedule.
 *
 * Used by the "schedule" spebench experiment (BENCH_schedule.json) and
 * mirrored as a Go string in internal/corpus (corpus.RegionsSeed, with a
 * test pinning the two copies identical).
 */
int pad_mix(int x) {
    int m = x, n = 7;
    m = m * 2;
    n = n - m;
    if (n < 0)
        n = m - n;
    return n;
}
int pad_fold(void) {
    int u = 3, v = 9;
    v = v - u;
    u = u + v;
    return u * v;
}
double pad_float(double f) {
    unsigned k = 2u;
    f = f * 0.5;
    f = f + 1.5;
    k = k + 3u;
    return f + (double)k;
}
int pad_loop(int bound) {
    int s = 0, t = bound;
    unsigned i = 0u;
    for (i = 0u; i < 4u; i = i + 1u)
        s = s + t;
    return s;
}
int pad_ptr(void) {
    int cell = 5;
    int *p = &cell;
    *p = *p + 3;
    return cell;
}
int sel(int seed) {
    int r = 1, k = 6;
    if (seed < 2)
        k = k << 1;
    if (k > 9)
        r = r / k;
    k = r ^ seed;
    return 0;
}
int main() {
    int acc = 0;
    double df = 2.0;
    acc = acc + pad_mix(3);
    acc = acc + pad_fold();
    df = pad_float(df);
    acc = acc + pad_loop(2);
    acc = acc + pad_ptr();
    acc = acc + sel(2);
    acc = acc + sel(acc);
    printf("%d %d\n", acc, (int)df);
    return 0;
}
`
