package corpus

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"spe/internal/interp"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// TestRegionsSeedMatchesExample pins the embedded region-benchmark seed
// to the checked-in examples/regions/large.c byte for byte, so the file
// users read and the corpus the benchmark runs cannot drift apart.
func TestRegionsSeedMatchesExample(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "regions", "large.c")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != RegionsSeed() {
		t.Fatalf("examples/regions/large.c diverges from corpus.RegionsSeed(); regenerate one from the other")
	}
}

// TestRegionsSeedShape asserts the properties the region benchmark
// relies on: the seed analyzes cleanly, is UB-free under its original
// filling, leads with a function whose filling count dwarfs the suffix
// product behind it (so it is the most significant moving digit of any
// strided walk), and yields multiple region cuts under a realistic plan.
func TestRegionsSeedShape(t *testing.T) {
	src := RegionsSeed()
	prog, err := analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	r := interp.Run(prog, interp.Config{MaxSteps: 500_000})
	if !r.Defined() || r.Aborted {
		t.Fatalf("original filling is not cleanly defined: %+v", r)
	}
	sk, err := skeleton.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	total := sp.Total()
	t.Logf("canonical fillings: %s, per function: %v", total, sp.FuncCounts())
	if total.Cmp(big.NewInt(1000)) < 0 {
		t.Fatalf("canonical count %s too small for a meaningful strided walk", total)
	}
	counts := sp.FuncCounts()
	if last := counts[len(counts)-1]; last.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("main enumerates %s fillings, want exactly 1 (it must not dilute sel's digit)", last)
	}

	// a realistic plan: budget 600 → stride total/600 clamped to 64
	// (mirrors campaign buildPlan: non-int64 canonical counts clamp to 64)
	budget := int64(600)
	stride := int64(64)
	if total.IsInt64() {
		stride = total.Int64() / budget
		if stride < 1 {
			stride = 1
		}
		if stride > 64 {
			stride = 64
		}
	}
	ceil := new(big.Int).Add(total, big.NewInt(stride-1))
	ceil.Quo(ceil, big.NewInt(stride))
	tested := budget
	if ceil.Cmp(big.NewInt(budget)) < 0 {
		tested = ceil.Int64()
	}
	cuts := sp.RegionCuts(stride, tested, 16)
	t.Logf("stride=%d tested=%d cuts=%v", stride, tested, cuts)
	if len(cuts) < 4 {
		t.Fatalf("RegionCuts = %v (%d regions); want at least 4 for the schedule benchmark to steer", cuts, len(cuts))
	}
}
