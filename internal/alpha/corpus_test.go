package alpha

import (
	"testing"

	"spe/internal/corpus"
	"spe/internal/partition"
	"spe/internal/skeleton"
)

// TestCorpusCanonicalizationSound sweeps the synthetic corpus: for sampled
// pairs of naive fillings, fill-level equivalence must coincide with
// canonical-text equality, and canonicalization must be idempotent.
func TestCorpusCanonicalizationSound(t *testing.T) {
	progs := corpus.Generate(corpus.Config{N: 12, Seed: 2024})
	for pi, src := range progs {
		sk := skeleton.MustBuild(src)
		p := sk.Problem()
		var fills [][]partition.VarRef
		p.EachNaive(func(fill []partition.VarRef) bool {
			fills = append(fills, append([]partition.VarRef(nil), fill...))
			return len(fills) < 40
		})
		for i := 0; i < len(fills); i += 11 {
			for j := i; j < len(fills); j += 17 {
				fillEq := EquivalentFills(sk, fills[i], fills[j])
				textEq := RenderCanonical(sk, fills[i]) == RenderCanonical(sk, fills[j])
				if fillEq != textEq {
					t.Fatalf("corpus[%d]: fill-eq=%v text-eq=%v for fills %d/%d\n%s",
						pi, fillEq, textEq, i, j, src)
				}
			}
		}
	}
}

// TestCorpusCanonicalFormsReanalyzable verifies canonical renamings stay
// valid programs (the renaming hook must not corrupt declarations).
func TestCorpusCanonicalFormsReanalyzable(t *testing.T) {
	progs := corpus.Generate(corpus.Config{N: 15, Seed: 31})
	for pi, src := range progs {
		canon := MustCanonicalize(src)
		// idempotence after a round trip
		again := MustCanonicalize(canon)
		if canon != again {
			t.Errorf("corpus[%d]: canonicalization unstable:\n%s\nvs\n%s", pi, canon, again)
		}
	}
}

// TestSeedsCanonicalization runs the paper-figure seeds through the full
// alpha pipeline.
func TestSeedsCanonicalization(t *testing.T) {
	for i, src := range corpus.Seeds() {
		canon, err := Canonicalize(src)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if canon == "" {
			t.Errorf("seed %d: empty canonical form", i)
		}
		eq, err := Equivalent(src, canon)
		if err != nil {
			t.Fatalf("seed %d: equivalence check: %v", i, err)
		}
		if !eq {
			t.Errorf("seed %d: program not equivalent to its canonical form", i)
		}
	}
}

// TestOrbitCountOnSeeds cross-checks the enumeration engine against the
// brute-force orbit oracle on the smallest seeds.
func TestOrbitCountOnSeeds(t *testing.T) {
	checked := 0
	for i, src := range corpus.Seeds() {
		sk := skeleton.MustBuild(src)
		p := sk.Problem()
		// only brute-force the small ones
		if n := p.NaiveCount(); !n.IsInt64() || n.Int64() > 3000 {
			continue
		}
		want := OrbitCount(sk)
		got := p.CanonicalCount()
		if got.Int64() != int64(want) {
			t.Errorf("seed %d: canonical %s vs brute-force %d", i, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no seed small enough for brute force")
	}
	t.Logf("brute-force-verified %d seeds", checked)
}
