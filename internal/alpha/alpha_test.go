package alpha

import (
	"math/big"
	"testing"

	"spe/internal/partition"
	"spe/internal/skeleton"
)

func TestEquivalentFigure6(t *testing.T) {
	// Paper Figure 6: P, P1, P2 are alpha-equivalent. Our group relation
	// refuses to exchange variables with different initializers, so we use
	// the uninitialized analogue, where a<->b and c<->d are exchangeable.
	p := `
int main() {
    int a, b;
    int c, d;
    b = c + d;
    a = b;
    return a;
}
`
	p1 := `
int main() {
    int a, b;
    int c, d;
    a = d + c;
    b = a;
    return b;
}
`
	eq, err := Equivalent(p, p1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("P and its compact-alpha-renaming must be equivalent")
	}
}

func TestNonEquivalent(t *testing.T) {
	// Paper Example 2: <a,b,a,a,a,b> vs <a,b,b,b,a,b> are not equivalent.
	p := `
int a, b;
int main() {
    a = b;
    a = a - a;
    return b;
}
`
	p2 := `
int a, b;
int main() {
    a = b;
    b = b - a;
    return b;
}
`
	eq, err := Equivalent(p, p2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("programs with different partitions must not be equivalent")
	}
}

func TestEquivalenceRespectsScopes(t *testing.T) {
	// Renaming a global into a local crosses scopes and is not a compact
	// alpha-renaming: the programs below use b (global) vs c (local) at
	// the same hole and must be inequivalent even though the usage pattern
	// is isomorphic.
	pGlobal := `
int a, b;
int main() {
    a = b;
    if (1) {
        int c, d;
        a = b;
    }
    return a;
}
`
	pLocal := `
int a, b;
int main() {
    a = b;
    if (1) {
        int c, d;
        a = c;
    }
    return a;
}
`
	eq, err := Equivalent(pGlobal, pLocal)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("global/local usage must not be conflated across scopes")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	srcs := []string{
		"int a, b;\nint main() { b = b - a; if (a) a = a - b; return 0; }",
		"int main() { int x, y; x = y; { int z; z = x; } return y; }",
	}
	for _, src := range srcs {
		c1 := MustCanonicalize(src)
		c2 := MustCanonicalize(c1)
		if c1 != c2 {
			t.Errorf("canonicalization not idempotent:\n--- 1 ---\n%s\n--- 2 ---\n%s", c1, c2)
		}
	}
}

func TestRenderCanonicalConsistentWithFillCanonicalization(t *testing.T) {
	// End-to-end: two fillings are fill-equivalent iff their rendered
	// programs canonicalize to the same text.
	sk := skeleton.MustBuild(`
int a, b;
int main() {
    a = b;
    b = a;
    if (1) {
        int c, d;
        c = d;
    }
    return a;
}
`)
	p := sk.Problem()
	var fills [][]partition.VarRef
	p.EachNaive(func(fill []partition.VarRef) bool {
		fills = append(fills, append([]partition.VarRef(nil), fill...))
		return len(fills) < 64
	})
	for i := 0; i < len(fills); i += 7 {
		for j := i; j < len(fills); j += 13 {
			fillEq := EquivalentFills(sk, fills[i], fills[j])
			texti := RenderCanonical(sk, fills[i])
			textj := RenderCanonical(sk, fills[j])
			if fillEq != (texti == textj) {
				t.Fatalf("fill equivalence %v but text equivalence %v for fills %v / %v",
					fillEq, texti == textj, fills[i], fills[j])
			}
		}
	}
}

func TestOrbitCountMatchesCanonicalCount(t *testing.T) {
	srcs := []string{
		"int a, b;\nint main() { a = b; b = a; return 0; }",
		"int main() { int x, y, z; x = y + z; return x; }",
		"int a, b;\nint main() { a = b; if (1) { int c, d; c = d; } a = a; b = b; return 0; }",
	}
	for _, src := range srcs {
		sk := skeleton.MustBuild(src)
		want := OrbitCount(sk)
		got := sk.Problem().CanonicalCount()
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Errorf("%q: canonical count %s, brute-force orbits %d", src[:20], got, want)
		}
	}
}

func TestCanonicalFormsOfEnumerationAreDistinct(t *testing.T) {
	sk := skeleton.MustBuild("int a, b;\nint main() { b = b - a; if (a) a = a - b; return 0; }")
	p := sk.Problem()
	texts := make(map[string]bool)
	p.EachCanonical(func(fill []partition.VarRef) bool {
		text := RenderCanonical(sk, fill)
		if texts[text] {
			t.Fatalf("two canonical fillings render to the same canonical text:\n%s", text)
		}
		texts[text] = true
		return true
	})
	if len(texts) != 64 {
		t.Errorf("distinct canonical texts = %d, want 64", len(texts))
	}
}

func TestEquivalentErrors(t *testing.T) {
	if _, err := Equivalent("int main() {", "int main() { return 0; }"); err == nil {
		t.Error("want error for unparsable first program")
	}
	if _, err := Equivalent("int main() { return 0; }", "int x = ;"); err == nil {
		t.Error("want error for unparsable second program")
	}
}
