// Package alpha implements program alpha-equivalence (paper §3.2): the
// compact alpha-renaming relation between programs, canonical forms, and a
// brute-force orbit oracle used to validate the enumeration engine.
//
// Two programs are compact-alpha-equivalent iff one can be transformed into
// the other by renaming variables within their interchangeability groups
// (same scope, same type, same declaration shape, same visibility). The
// canonical form renames every variable to a deterministic name derived
// from its group and its first-use order, so textual equality of canonical
// forms decides equivalence.
package alpha

import (
	"fmt"

	"spe/internal/cc"
	"spe/internal/partition"
	"spe/internal/skeleton"
)

// Canonicalize returns the canonical form of a program: every variable is
// renamed to v<group>_<k>, where k is the variable's rank in the order of
// first use among its interchangeability group (unused variables follow in
// declaration order). Compact-alpha-equivalent programs (w.r.t. the group
// relation of package skeleton) have identical canonical forms.
func Canonicalize(src string) (string, error) {
	f, err := cc.Parse(src)
	if err != nil {
		return "", err
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		return "", err
	}
	sk, err := skeleton.Build(prog)
	if err != nil {
		return "", err
	}
	return CanonicalizeSkeleton(sk), nil
}

// MustCanonicalize is Canonicalize, panicking on error.
func MustCanonicalize(src string) string {
	out, err := Canonicalize(src)
	if err != nil {
		panic(err)
	}
	return out
}

// CanonicalizeSkeleton renders the canonical form of the skeleton's own
// program (its original filling).
func CanonicalizeSkeleton(sk *skeleton.Skeleton) string {
	return RenderCanonical(sk, sk.OriginalFill())
}

// RenderCanonical renders the canonical form of the program realized by the
// given filling of sk.
func RenderCanonical(sk *skeleton.Skeleton, fill []partition.VarRef) string {
	// rank[g][i] = canonical index of member i of group g
	rank := make([]map[int]int, len(sk.Groups))
	next := make([]int, len(sk.Groups))
	for g := range rank {
		rank[g] = make(map[int]int, len(sk.Groups[g].Syms))
	}
	for _, vr := range fill {
		if _, ok := rank[vr.Group][vr.Index]; !ok {
			rank[vr.Group][vr.Index] = next[vr.Group]
			next[vr.Group]++
		}
	}
	// unused members follow in declaration order
	for g := range sk.Groups {
		for i := range sk.Groups[g].Syms {
			if _, ok := rank[g][i]; !ok {
				rank[g][i] = next[g]
				next[g]++
			}
		}
	}
	// Uses are named by first-use rank; declaration slots are named by
	// their position within the group. Group members' declarations are
	// interchangeable (identical shape, scope, and visibility), so binding
	// the rank-r name to the slot-r declaration realizes a valid compact
	// alpha-renaming, and the declaration text becomes independent of the
	// filling — exactly what a canonical form requires.
	slotName := func(sym *cc.Symbol) string {
		for g, grp := range sk.Groups {
			for i, s := range grp.Syms {
				if s.ID == sym.ID {
					return fmt.Sprintf("v%d_%d", g, i)
				}
			}
		}
		return sym.Name // functions and other non-grouped symbols
	}
	holeName := make(map[*cc.Ident]string, len(fill))
	for i, vr := range fill {
		holeName[sk.Holes[i].Ident] = fmt.Sprintf("v%d_%d", vr.Group, rank[vr.Group][vr.Index])
	}
	p := cc.Printer{
		Rename: func(id *cc.Ident) string {
			if n, ok := holeName[id]; ok {
				return n
			}
			if id.Sym != nil && id.Sym.Kind != cc.SymFunc {
				return slotName(id.Sym)
			}
			return id.Name
		},
		RenameDecl: func(d *cc.VarDecl) string {
			if d.Sym != nil {
				return slotName(d.Sym)
			}
			return d.Name
		},
	}
	return p.File(sk.Prog.File)
}

// Equivalent reports whether two programs are compact-alpha-equivalent,
// i.e. whether their canonical forms coincide.
func Equivalent(src1, src2 string) (bool, error) {
	c1, err := Canonicalize(src1)
	if err != nil {
		return false, fmt.Errorf("alpha: first program: %w", err)
	}
	c2, err := Canonicalize(src2)
	if err != nil {
		return false, fmt.Errorf("alpha: second program: %w", err)
	}
	return c1 == c2, nil
}

// EquivalentFills reports whether two fillings of the same skeleton realize
// compact-alpha-equivalent programs.
func EquivalentFills(sk *skeleton.Skeleton, f1, f2 []partition.VarRef) bool {
	p := sk.Problem()
	return partition.FillKey(p.CanonicalizeFill(f1)) == partition.FillKey(p.CanonicalizeFill(f2))
}

// OrbitCount returns the exact number of compact-alpha-equivalence classes
// among all naive fillings of the skeleton, by brute-force enumeration.
// Exponential; intended as a test oracle on small skeletons.
func OrbitCount(sk *skeleton.Skeleton) int {
	p := sk.Problem()
	seen := make(map[string]bool)
	p.EachNaive(func(fill []partition.VarRef) bool {
		seen[partition.FillKey(p.CanonicalizeFill(fill))] = true
		return true
	})
	return len(seen)
}
