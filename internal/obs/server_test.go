package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testHandler() http.Handler {
	reg := NewRegistry()
	reg.Counter("spe_variants_total", "Variants.").Add(5)
	ring := NewRing(8)
	ring.Publish("finding", map[string]string{"class": "crash"})
	ring.Publish("coverage", map[string]int{"sites": 3})
	return Handler(reg, ring, func() interface{} {
		return map[string]interface{}{"running": true, "planned_variants": 10}
	})
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(body), "spe_variants_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}

func TestHandlerStatus(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(body), `"planned_variants": 10`) {
		t.Fatalf("status body = %s", body)
	}
}

func TestHandlerStatusNil(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, path := range []string{"/status", "/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without backing state: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHandlerIndexAndNotFound(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/metrics") {
		t.Fatalf("index = %s", body)
	}
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestHandlerEventsSSE(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	// read until both buffered events have streamed, then hang up
	buf := make([]byte, 4096)
	var got strings.Builder
	for {
		n, err := resp.Body.Read(buf)
		got.Write(buf[:n])
		if strings.Contains(got.String(), "id: 2") || err != nil {
			break
		}
	}
	out := got.String()
	for _, want := range []string{"id: 1", "event: finding", `"class":"crash"`, "id: 2", "event: coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SSE stream missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
}

func TestServeEphemeralPort(t *testing.T) {
	s, err := Serve("127.0.0.1:0", testHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.Addr, ":") || strings.HasSuffix(s.Addr, ":0") {
		t.Fatalf("Addr = %q, want a concrete bound port", s.Addr)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics over Serve: status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// both paths empty: a no-op
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
