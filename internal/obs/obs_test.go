package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000*3 {
		t.Fatalf("counter = %d, want %d", got, 8*1000*3)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Load(); got < 0 || got > 7 {
		t.Fatalf("gauge = %v, want one of the written values", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	snap := h.snapshot()
	want := []BucketCount{{"1", 2}, {"2", 3}, {"4", 4}, {"+Inf", 5}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 700))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	var wantSum float64
	for i := 0; i < 1000; i++ {
		wantSum += float64(i % 700)
	}
	if h.Sum() != 8*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), 8*wantSum)
	}
	snap := h.snapshot()
	if last := snap.Buckets[len(snap.Buckets)-1]; last.Count != 8000 {
		t.Fatalf("+Inf bucket = %d, want 8000", last.Count)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("k", "v"))
	b := reg.Counter("x_total", "other help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("different labels must return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("x_total", "help", L("k", "v"))
}

func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("spe_things_total", "Things processed.").Add(42)
	reg.Counter("spe_by_class_total", "By class.", L("class", "a")).Add(1)
	reg.Counter("spe_by_class_total", "By class.", L("class", "b")).Add(2)
	reg.Gauge("spe_level", "Current level.").Set(2.5)
	reg.GaugeFunc("spe_fn", "Computed.", func() float64 { return 7 })
	h := reg.Histogram("spe_lat_ms", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP spe_by_class_total By class.
# TYPE spe_by_class_total counter
spe_by_class_total{class="a"} 1
spe_by_class_total{class="b"} 2
# HELP spe_fn Computed.
# TYPE spe_fn gauge
spe_fn 7
# HELP spe_lat_ms Latency.
# TYPE spe_lat_ms histogram
spe_lat_ms_bucket{le="1"} 1
spe_lat_ms_bucket{le="2"} 1
spe_lat_ms_bucket{le="+Inf"} 2
spe_lat_ms_sum 3.5
spe_lat_ms_count 2
# HELP spe_level Current level.
# TYPE spe_level gauge
spe_level 2.5
# HELP spe_things_total Things processed.
# TYPE spe_things_total counter
spe_things_total 42
`
	if sb.String() != want {
		t.Fatalf("prometheus encoding:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSnapshotGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(3)
	reg.Gauge("b", "").Set(1.5)
	reg.Histogram("c_ms", "", []float64{10}).Observe(4)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a_total":3,"b":1.5,"c_ms":{"count":1,"sum":4,"buckets":[{"le":"10","count":1},{"le":"+Inf","count":1}]}}`
	if string(data) != want {
		t.Fatalf("snapshot = %s, want %s", data, want)
	}
}

func TestRingSinceAndWrap(t *testing.T) {
	r := NewRing(8)
	if r.Last() != 0 {
		t.Fatalf("Last = %d before publish", r.Last())
	}
	if got := r.Since(0); got != nil {
		t.Fatalf("Since(0) = %v on empty ring", got)
	}
	for i := 1; i <= 20; i++ {
		r.Publish("k", i)
	}
	if r.Last() != 20 {
		t.Fatalf("Last = %d, want 20", r.Last())
	}
	evs := r.Since(0)
	// capacity 8: only the 8 newest survive the wrap
	if len(evs) != 8 {
		t.Fatalf("Since(0) returned %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if got := r.Since(18); len(got) != 2 || got[0].Seq != 19 || got[1].Seq != 20 {
		t.Fatalf("Since(18) = %v, want seqs 19,20", got)
	}
	if got := r.Since(20); got != nil {
		t.Fatalf("Since(Last) = %v, want nil", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var since uint64
		for {
			for _, ev := range r.Since(since) {
				if ev.Seq <= since {
					t.Error("Since returned non-ascending seq")
					return
				}
				since = ev.Seq
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var pubs sync.WaitGroup
	for w := 0; w < 4; w++ {
		pubs.Add(1)
		go func(w int) {
			defer pubs.Done()
			for i := 0; i < 2000; i++ {
				r.Publish("k", fmt.Sprintf("%d/%d", w, i))
			}
		}(w)
	}
	pubs.Wait()
	close(stop)
	<-readerDone
	if r.Last() != 8000 {
		t.Fatalf("Last = %d, want 8000", r.Last())
	}
}
