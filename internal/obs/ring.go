package obs

import (
	"sync/atomic"
	"time"
)

// Event is one entry of the recent-events ring: a finding, a coverage
// point, a checkpoint write — anything a live consumer wants pushed
// rather than polled. Data must be JSON-encodable.
type Event struct {
	Seq  uint64      `json:"seq"`
	Time time.Time   `json:"time"`
	Kind string      `json:"kind"`
	Data interface{} `json:"data,omitempty"`
}

// Ring is a lock-free fixed-capacity buffer of recent events. Publishing
// is wait-free (one atomic increment plus one atomic pointer store) and
// never blocks on readers: when the ring wraps, the oldest events are
// overwritten. Readers poll Since and tolerate gaps — the ring is a
// live-streaming surface, not a durable log (the durable campaign record
// is the Report and the checkpoint).
type Ring struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	next  atomic.Uint64 // last assigned seq; seq numbering starts at 1
}

// NewRing returns a ring holding the most recent size events (rounded up
// to a power of two, minimum 8).
func NewRing(size int) *Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Publish appends an event and returns its sequence number.
func (r *Ring) Publish(kind string, data interface{}) uint64 {
	seq := r.next.Add(1)
	ev := &Event{Seq: seq, Time: time.Now(), Kind: kind, Data: data}
	r.slots[seq&r.mask].Store(ev)
	return seq
}

// Last returns the sequence number of the most recently published event
// (0 before the first Publish).
func (r *Ring) Last() uint64 { return r.next.Load() }

// Since returns the buffered events with sequence numbers greater than
// seq, in ascending order. Events that have already been overwritten are
// silently skipped; an event whose slot is mid-overwrite is detected by
// its embedded sequence number and skipped likewise.
func (r *Ring) Since(seq uint64) []*Event {
	cur := r.next.Load()
	if cur <= seq {
		return nil
	}
	lo := seq + 1
	if n := uint64(len(r.slots)); cur-lo+1 > n {
		lo = cur - n + 1
	}
	out := make([]*Event, 0, cur-lo+1)
	for i := lo; i <= cur; i++ {
		ev := r.slots[i&r.mask].Load()
		if ev != nil && ev.Seq == i {
			out = append(out, ev)
		}
	}
	return out
}
