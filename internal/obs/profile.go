package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles is the shared -cpuprofile/-memprofile setup used by both
// binaries (cmd/spe and cmd/spebench): it starts a CPU profile at cpuPath
// (when non-empty) and arranges a heap snapshot at memPath (when
// non-empty). The returned stop function finalizes both — callers must
// run it on every exit path that should produce usable profiles, which in
// practice means deferring it before os.Exit-style error handling.
// Either path may be empty; with both empty, stop is a no-op.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
