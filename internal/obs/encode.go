package obs

import (
	"fmt"
	"io"
	"strconv"
)

// formatFloat renders a float the way Prometheus text exposition expects:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by series id so output is
// deterministic for a given set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, s := range r.sorted() {
		if s.name != lastName {
			typ := "counter"
			switch s.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, typ); err != nil {
				return err
			}
			lastName = s.name
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, renderLabels(s.labels), s.counter.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels), formatFloat(s.gauge.Load()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels), formatFloat(s.fn()))
		case kindHistogram:
			snap := s.hist.snapshot()
			for _, b := range snap.Buckets {
				le := append(append([]Label(nil), s.labels...), Label{Key: "le", Value: b.LE})
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabels(le), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels), formatFloat(snap.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels), snap.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a JSON-encodable view of every registered metric,
// keyed by series id (name plus label set). Counter values are int64,
// gauge values float64, histograms HistogramSnapshot. Go's JSON encoder
// sorts map keys, so the encoding is deterministic for given values.
func (r *Registry) Snapshot() map[string]interface{} {
	out := make(map[string]interface{})
	for _, s := range r.sorted() {
		switch s.kind {
		case kindCounter:
			out[s.id()] = s.counter.Load()
		case kindGauge:
			out[s.id()] = s.gauge.Load()
		case kindGaugeFunc:
			out[s.id()] = s.fn()
		case kindHistogram:
			out[s.id()] = s.hist.snapshot()
		}
	}
	return out
}
