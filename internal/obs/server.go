package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// StatusFunc produces the /status document: a JSON-encodable snapshot of
// whatever the instrumented process considers its vital signs.
type StatusFunc func() interface{}

// ssePollInterval is how often the /events handler polls the ring for
// fresh events. The ring is lock-free on the publish side, so polling
// cost lands entirely on the reader.
const ssePollInterval = 200 * time.Millisecond

// sseKeepalive is the idle-comment interval that keeps proxies from
// timing out a quiet stream.
const sseKeepalive = 15 * time.Second

// Handler assembles the observability endpoints:
//
//	/metrics        Prometheus text exposition of reg
//	/status         JSON document from status (404 when status is nil)
//	/events         Server-Sent Events stream of ring (404 when ring is nil)
//	/debug/pprof/*  the standard runtime profiles
//	/               a plain-text index of the above
//
// The handler only reads atomics and the ring; it never blocks or slows
// the instrumented process.
func Handler(reg *Registry, ring *Ring, status StatusFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		if status == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(status())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		serveSSE(w, req, ring)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "spe telemetry\n\n/metrics\n/status\n/events\n/debug/pprof/\n")
	})
	return mux
}

// serveSSE streams ring events as Server-Sent Events. The client's resume
// point is taken from ?since=N or the Last-Event-ID header; by default the
// stream starts from the oldest event still buffered, so a fresh client
// sees the recent history before going live.
func serveSSE(w http.ResponseWriter, req *http.Request, ring *Ring) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var since uint64
	if s := req.URL.Query().Get("since"); s != "" {
		since, _ = strconv.ParseUint(s, 10, 64)
	} else if s := req.Header.Get("Last-Event-ID"); s != "" {
		since, _ = strconv.ParseUint(s, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(ssePollInterval)
	defer ticker.Stop()
	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		for _, ev := range ring.Since(since) {
			since = ev.Seq
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
		}
		flusher.Flush()
		select {
		case <-req.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-ticker.C:
		}
	}
}

// Server is a running telemetry HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr and serves h on it in a background goroutine. The
// returned Server reports the concrete bound address, so callers may pass
// ":0" (tests, the overhead bench) and discover the port.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: h}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
