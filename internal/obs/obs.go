// Package obs is the repository's zero-dependency observability core: a
// small metrics library (atomic counters, float gauges, sampled
// histograms) with Prometheus-text and JSON snapshot encoders, a
// lock-free ring of recent events for live streaming, and an embedded
// HTTP server exposing /metrics, /status, /events (SSE), and
// /debug/pprof/*.
//
// The package exists so long-running campaigns can stream their vitals
// without perturbing the work they observe. Everything here is built for
// that inertness contract:
//
//   - recording is wait-free on the hot path — counters and gauges are
//     single atomic operations, histogram observation is one atomic add
//     per bucket plus a CAS loop for the sum;
//   - nothing ever blocks a recorder on a reader: encoders read the same
//     atomics, the event ring overwrites instead of applying backpressure
//     (readers that fall behind lose the oldest events, never slow the
//     writer);
//   - registration is idempotent, so instrumented code can look metrics
//     up by name without threading instances around.
//
// Consumers hold the typed metric handles; the Registry only exists to
// enumerate them deterministically at encode time. Metric values are
// advisory telemetry by construction — no decision that affects a
// campaign's Report may read them.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket sampled distribution: cumulative bucket
// counts in the Prometheus style (each bucket counts observations <= its
// upper bound; an implicit +Inf bucket catches the rest), plus a total
// count and sum. Observation is lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; immutable after construction
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is the JSON-encodable state of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets maps each upper bound (formatted like the Prometheus le
	// label, "+Inf" last) to its cumulative count.
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
	}
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered metric instance.
type series struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// id is the unique registration key: name plus rendered label set.
func (s *series) id() string { return s.name + renderLabels(s.labels) }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Registry holds named metrics and encodes them deterministically.
// Registration is idempotent: registering the same name+labels again
// returns the existing instance (a kind mismatch panics — that is a
// programming error, not an operational condition).
type Registry struct {
	mu     sync.Mutex
	byID   map[string]*series
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*series)}
}

func (r *Registry) register(s *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[s.id()]; ok {
		if old.kind != s.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", s.id()))
		}
		return old
	}
	r.byID[s.id()] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(&series{name: name, help: help, kind: kindCounter, labels: labels, counter: &Counter{}})
	return s.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(&series{name: name, help: help, kind: kindGauge, labels: labels, gauge: &Gauge{}})
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at encode time —
// the hook for state that already maintains its own counters (pool
// hit/miss atomics, scheduler internals) and should not be mirrored on
// the hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&series{name: name, help: help, kind: kindGaugeFunc, labels: labels, fn: fn})
}

// Histogram registers (or returns the existing) histogram series with the
// given upper bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(&series{name: name, help: help, kind: kindHistogram, labels: labels, hist: newHistogram(bounds)})
	return s.hist
}

// sorted returns the series in deterministic encode order.
func (r *Registry) sorted() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id() < out[j].id() })
	return out
}
