package partition

import (
	"math/big"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEachRGSCountsMatchStirling(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 1; k <= n+2; k++ {
			got := EachRGS(n, k, func([]int) bool { return true })
			want := SumStirling(n, k)
			if big.NewInt(int64(got)).Cmp(want) != 0 {
				t.Errorf("EachRGS(%d,%d) yielded %d, want %s", n, k, got, want)
			}
		}
	}
}

func TestEachRGSExactCountsMatchStirling(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n+1; k++ {
			got := EachRGSExact(n, k, func([]int) bool { return true })
			want := Stirling2(n, k)
			if big.NewInt(int64(got)).Cmp(want) != 0 {
				t.Errorf("EachRGSExact(%d,%d) yielded %d, want %s", n, k, got, want)
			}
		}
	}
}

func TestEachRGSLexOrderAndValidity(t *testing.T) {
	var prev []int
	EachRGS(6, 3, func(rgs []int) bool {
		if !IsRGS(rgs) {
			t.Fatalf("yielded invalid RGS %v", rgs)
		}
		if prev != nil && !lexLess(prev, rgs) {
			t.Fatalf("not lexicographically increasing: %v then %v", prev, rgs)
		}
		prev = append(prev[:0], rgs...)
		return true
	})
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestEachRGSEarlyStop(t *testing.T) {
	calls := 0
	n := EachRGS(8, 4, func([]int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 || n != 5 {
		t.Errorf("early stop: calls=%d returned=%d, want 5/5", calls, n)
	}
}

func TestEachRGSDegenerate(t *testing.T) {
	if n := EachRGS(0, 3, func(rgs []int) bool {
		if len(rgs) != 0 {
			t.Errorf("empty skeleton yielded non-empty RGS %v", rgs)
		}
		return true
	}); n != 1 {
		t.Errorf("EachRGS(0,3) = %d, want 1", n)
	}
	if n := EachRGS(3, 0, func([]int) bool { return true }); n != 0 {
		t.Errorf("EachRGS(3,0) = %d, want 0", n)
	}
	if n := EachRGS(-1, 2, func([]int) bool { return true }); n != 0 {
		t.Errorf("EachRGS(-1,2) = %d, want 0", n)
	}
}

func TestRGSOfCanonicalizes(t *testing.T) {
	// Paper Example 5: <a,b,a,a,a,b> -> "010001", <a,b,b,b,a,b> -> "011101".
	got := RGSOf([]int{0, 1, 0, 0, 0, 1})
	if want := []int{0, 1, 0, 0, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("RGSOf = %v, want %v", got, want)
	}
	// The alpha-renamed variant <b,a,b,b,b,a> canonicalizes identically.
	got2 := RGSOf([]int{1, 0, 1, 1, 1, 0})
	if !reflect.DeepEqual(got, got2) {
		t.Errorf("alpha-equivalent fillings canonicalize differently: %v vs %v", got, got2)
	}
	got3 := RGSOf([]int{0, 1, 1, 1, 0, 1})
	if want := []int{0, 1, 1, 1, 0, 1}; !reflect.DeepEqual(got3, want) {
		t.Errorf("RGSOf(P2) = %v, want %v", got3, want)
	}
}

func TestRGSOfProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		assign := make([]int, len(raw))
		for i, r := range raw {
			assign[i] = int(r % 7)
		}
		rgs := RGSOf(assign)
		if !IsRGS(rgs) {
			return false
		}
		// idempotent
		return reflect.DeepEqual(RGSOf(rgs), rgs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRGSOfPreservesPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		assign := make([]int, len(raw))
		for i, r := range raw {
			assign[i] = int(r % 5)
		}
		rgs := RGSOf(assign)
		// same-block relation must be preserved exactly
		for i := range assign {
			for j := range assign {
				if (assign[i] == assign[j]) != (rgs[i] == rgs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlocksOfRoundTrip(t *testing.T) {
	EachRGS(7, 3, func(rgs []int) bool {
		blocks := BlocksOf(rgs)
		rebuilt := make([]int, len(rgs))
		for b, elems := range blocks {
			if len(elems) == 0 {
				t.Fatalf("BlocksOf(%v) produced empty block %d", rgs, b)
			}
			for _, e := range elems {
				rebuilt[e] = b
			}
		}
		if !reflect.DeepEqual(rebuilt, rgs) {
			t.Fatalf("BlocksOf round-trip failed for %v: got %v", rgs, rebuilt)
		}
		return true
	})
}

func TestNumBlocks(t *testing.T) {
	if got := NumBlocks([]int{0, 1, 0, 2}); got != 3 {
		t.Errorf("NumBlocks = %d, want 3", got)
	}
	if got := NumBlocks(nil); got != 0 {
		t.Errorf("NumBlocks(nil) = %d, want 0", got)
	}
}

func TestEachCombinationCounts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			got := EachCombination(n, k, func([]int) bool { return true })
			if want := Binomial(n, k); big.NewInt(int64(got)).Cmp(want) != 0 {
				t.Errorf("EachCombination(%d,%d) yielded %d, want %s", n, k, got, want)
			}
		}
	}
	if got := EachCombination(3, 5, func([]int) bool { return true }); got != 0 {
		t.Errorf("EachCombination(3,5) = %d, want 0", got)
	}
}

func TestEachCombinationContents(t *testing.T) {
	var all [][]int
	EachCombination(4, 2, func(c []int) bool {
		cp := append([]int(nil), c...)
		all = append(all, cp)
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(all, want) {
		t.Errorf("combinations of C(4,2) = %v, want %v", all, want)
	}
}

func TestEachSubsetCounts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		got := EachSubset(n, func([]int) bool { return true })
		if want := 1 << n; got != want {
			t.Errorf("EachSubset(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestComplement(t *testing.T) {
	got := Complement(5, []int{1, 3})
	if want := []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
	if got := Complement(3, nil); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Complement(3, nil) = %v", got)
	}
}
