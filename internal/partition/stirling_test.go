package partition

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 1},
		{3, 2, 3}, {4, 2, 7}, {5, 2, 15}, {5, 3, 25},
		{6, 2, 31}, {6, 3, 90}, {7, 3, 301}, {10, 5, 42525},
		{5, 1, 1}, {5, 5, 1}, {5, 6, 0}, {3, 0, 0}, {0, 1, 0},
		{-1, 2, 0}, {2, -1, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Stirling2(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirling2Recurrence(t *testing.T) {
	for n := 2; n <= 30; n++ {
		for k := 1; k <= n; k++ {
			want := new(big.Int).Mul(big.NewInt(int64(k)), Stirling2(n-1, k))
			want.Add(want, Stirling2(n-1, k-1))
			if got := Stirling2(n, k); got.Cmp(want) != 0 {
				t.Fatalf("recurrence fails at {%d %d}: got %s want %s", n, k, got, want)
			}
		}
	}
}

func TestBellNumbers(t *testing.T) {
	// OEIS A000110
	want := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975}
	for n, w := range want {
		if got := Bell(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("Bell(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestSumStirling(t *testing.T) {
	// SumStirling(n, k) for k >= n equals Bell(n).
	for n := 0; n <= 12; n++ {
		if got, want := SumStirling(n, n+3), Bell(n); got.Cmp(want) != 0 {
			t.Errorf("SumStirling(%d,%d) = %s, want Bell = %s", n, n+3, got, want)
		}
	}
	// Paper Fig. 5: skeleton with 6 holes and 2 variables -> 1 + {6 2} = 32
	// canonical programs out of 2^6 = 64 naive ones.
	if got := SumStirling(6, 2); got.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("SumStirling(6,2) = %s, want 32", got)
	}
	// Example 6 component: {5 2} + {5 1} = 16.
	if got := SumStirling(5, 2); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("SumStirling(5,2) = %s, want 16", got)
	}
}

func TestFactorialAndBinomial(t *testing.T) {
	if got := Factorial(0); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("0! = %s, want 1", got)
	}
	if got := Factorial(10); got.Cmp(big.NewInt(3628800)) != 0 {
		t.Errorf("10! = %s, want 3628800", got)
	}
	if got := Factorial(-1); got.Sign() != 0 {
		t.Errorf("(-1)! = %s, want 0", got)
	}
	if got := Binomial(10, 3); got.Cmp(big.NewInt(120)) != 0 {
		t.Errorf("C(10,3) = %s, want 120", got)
	}
	if got := Binomial(5, 9); got.Sign() != 0 {
		t.Errorf("C(5,9) = %s, want 0", got)
	}
}

func TestDerangements(t *testing.T) {
	// OEIS A000166
	want := []int64{1, 0, 1, 2, 9, 44, 265, 1854, 14833}
	for n, w := range want {
		if got := Derangements(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("!%d = %s, want %d", n, got, w)
		}
	}
}

func TestPermsWithFixedPointsSumToFactorial(t *testing.T) {
	for n := 0; n <= 9; n++ {
		sum := new(big.Int)
		for f := 0; f <= n; f++ {
			sum.Add(sum, PermsWithFixedPoints(n, f))
		}
		if want := Factorial(n); sum.Cmp(want) != 0 {
			t.Errorf("sum over fixed-point profiles for n=%d = %s, want %s", n, sum, want)
		}
	}
}

func TestStirlingSymmetryProperty(t *testing.T) {
	// {n 2} = 2^(n-1) - 1 for n >= 1
	f := func(raw uint8) bool {
		n := int(raw%20) + 1
		want := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
		want.Sub(want, big.NewInt(1))
		return Stirling2(n, 2).Cmp(want) == 0 || n == 1 && Stirling2(n, 2).Sign() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStirlingAsymptoticReductionFactor(t *testing.T) {
	// Paper Eq. 2: the canonical set is ~k^n/k!, i.e. a (k-1)! reduction of
	// k^n/k; verify the ratio naive/canonical approaches k!/(1 + o(1)) from
	// below for growing n at fixed k.
	for _, k := range []int{2, 3, 4} {
		n := 24
		naive := new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(n)), nil)
		canon := SumStirling(n, k)
		ratio := new(big.Int).Quo(naive, canon)
		kfact := Factorial(k)
		// ratio must be within [k!/2, k!]
		if ratio.Cmp(kfact) > 0 {
			t.Errorf("k=%d: reduction ratio %s exceeds k! = %s", k, ratio, kfact)
		}
		half := new(big.Int).Quo(kfact, big.NewInt(2))
		if ratio.Cmp(half) < 0 {
			t.Errorf("k=%d: reduction ratio %s below k!/2 = %s", k, ratio, half)
		}
	}
}
