package partition

import (
	"fmt"
	"math/big"
)

// Problem is the abstract combinatorial form of a scoped SPE instance
// (paper §4.2.1): n holes must each be filled with one variable drawn from a
// per-hole set of admissible variables, and two fillings are equivalent iff
// one maps to the other under a compact alpha-renaming. Variables are
// grouped into interchangeability classes: two variables in the same group
// are admissible at exactly the same holes and may be exchanged by a compact
// alpha-renaming that fixes the skeleton (same scope, same type, same
// declaration shape). The group of renamings is therefore the direct product
// of the full symmetric groups on each group.
type Problem struct {
	// NumHoles is the number of holes n.
	NumHoles int
	// GroupSizes[g] is the number of interchangeable variables in group g.
	GroupSizes []int
	// Allowed[i] lists, in increasing order, the groups admissible at hole
	// i. Every hole must admit at least one non-empty group.
	Allowed [][]int
}

// Validate reports a descriptive error if the problem is malformed.
func (p *Problem) Validate() error {
	if p.NumHoles < 0 {
		return fmt.Errorf("partition: negative hole count %d", p.NumHoles)
	}
	if len(p.Allowed) != p.NumHoles {
		return fmt.Errorf("partition: %d holes but %d allowed-sets", p.NumHoles, len(p.Allowed))
	}
	for g, sz := range p.GroupSizes {
		if sz < 0 {
			return fmt.Errorf("partition: group %d has negative size %d", g, sz)
		}
	}
	for i, as := range p.Allowed {
		if len(as) == 0 {
			return fmt.Errorf("partition: hole %d admits no groups", i)
		}
		total := 0
		for j, g := range as {
			if g < 0 || g >= len(p.GroupSizes) {
				return fmt.Errorf("partition: hole %d references unknown group %d", i, g)
			}
			if j > 0 && as[j-1] >= g {
				return fmt.Errorf("partition: hole %d allowed-set not strictly increasing", i)
			}
			total += p.GroupSizes[g]
		}
		if total == 0 {
			return fmt.Errorf("partition: hole %d admits only empty groups", i)
		}
	}
	return nil
}

// VarRef identifies a concrete variable: the Index-th member (0-based) of
// group Group.
type VarRef struct {
	Group int
	Index int
}

// EachCanonical enumerates exactly one filling per compact-alpha-equivalence
// class of the problem, in lexicographic order of the (group, index)
// sequences. The fill slice passed to yield is reused across calls; copy to
// retain. Enumeration stops early if yield returns false. Returns the number
// of fillings yielded.
//
// Canonical form: restricted to the holes filled from any single group g,
// the member indices form a restricted growth string (index j may appear
// only after indices 0..j-1 of the same group have appeared). Because the
// renaming group acts independently and fully symmetrically on each group,
// every equivalence class contains exactly one such filling.
func (p *Problem) EachCanonical(yield func(fill []VarRef) bool) int {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fill := make([]VarRef, p.NumHoles)
	used := make([]int, len(p.GroupSizes))
	count := 0
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == p.NumHoles {
			count++
			return yield(fill)
		}
		for _, g := range p.Allowed[i] {
			// already-introduced members of g, plus at most one fresh member
			limit := used[g]
			fresh := used[g] < p.GroupSizes[g]
			for idx := 0; idx < limit; idx++ {
				fill[i] = VarRef{Group: g, Index: idx}
				if !rec(i + 1) {
					return false
				}
			}
			if fresh {
				fill[i] = VarRef{Group: g, Index: used[g]}
				used[g]++
				ok := rec(i + 1)
				used[g]--
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec(0)
	return count
}

// EachNaive enumerates every filling of the problem (the full Cartesian
// product of per-hole admissible variables), without any equivalence
// reduction. Semantics of yield match EachCanonical. Returns the count
// yielded.
func (p *Problem) EachNaive(yield func(fill []VarRef) bool) int {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fill := make([]VarRef, p.NumHoles)
	count := 0
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == p.NumHoles {
			count++
			return yield(fill)
		}
		for _, g := range p.Allowed[i] {
			for idx := 0; idx < p.GroupSizes[g]; idx++ {
				fill[i] = VarRef{Group: g, Index: idx}
				if !rec(i + 1) {
					return false
				}
			}
		}
		return true
	}
	rec(0)
	return count
}

// NaiveCount returns the size of the naive enumeration set,
// prod_i sum_{g in Allowed[i]} |g| (paper §3.1).
func (p *Problem) NaiveCount() *big.Int {
	total := big.NewInt(1)
	for _, as := range p.Allowed {
		s := 0
		for _, g := range as {
			s += p.GroupSizes[g]
		}
		total.Mul(total, big.NewInt(int64(s)))
	}
	if p.NumHoles == 0 {
		return big.NewInt(1)
	}
	return total
}

// CanonicalCount returns the number of canonical fillings (= the number of
// compact-alpha-equivalence classes) without enumerating them, via dynamic
// programming over per-group used-variable counts.
func (p *Problem) CanonicalCount() *big.Int {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	type state string
	encode := func(used []int) state {
		b := make([]byte, len(used))
		for i, u := range used {
			b[i] = byte(u)
		}
		return state(b)
	}
	cur := map[state]*big.Int{encode(make([]int, len(p.GroupSizes))): big.NewInt(1)}
	usedBuf := make([]int, len(p.GroupSizes))
	for i := 0; i < p.NumHoles; i++ {
		next := make(map[state]*big.Int, len(cur))
		add := func(s state, ways *big.Int) {
			if v, ok := next[s]; ok {
				v.Add(v, ways)
			} else {
				next[s] = new(big.Int).Set(ways)
			}
		}
		for s, ways := range cur {
			for j := range usedBuf {
				usedBuf[j] = int(s[j])
			}
			for _, g := range p.Allowed[i] {
				if usedBuf[g] > 0 {
					w := new(big.Int).Mul(ways, big.NewInt(int64(usedBuf[g])))
					add(s, w)
				}
				if usedBuf[g] < p.GroupSizes[g] {
					usedBuf[g]++
					add(encode(usedBuf), ways)
					usedBuf[g]--
				}
			}
		}
		cur = next
	}
	total := new(big.Int)
	for _, v := range cur {
		total.Add(total, v)
	}
	return total
}

// OrbitCountBurnside returns the number of compact-alpha-equivalence classes
// computed independently via Burnside's lemma over the renaming group
// G = prod_g Sym(GroupSizes[g]):
//
//	|orbits| = (1 / |G|) * sum_{sigma in G} |fillings fixed by sigma|
//
// A filling is fixed by sigma iff every hole is filled with a fixed point of
// sigma, so the count depends only on the number of fixed points per group.
// Summing over fixed-point profiles (f_1..f_m) weighted by the number of
// permutations realizing each profile gives an exact polynomial-size
// computation. Used as an independent oracle for CanonicalCount in tests.
func (p *Problem) OrbitCountBurnside() *big.Int {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	m := len(p.GroupSizes)
	numerator := new(big.Int)
	profile := make([]int, m)
	var rec func(g int, weight *big.Int)
	rec = func(g int, weight *big.Int) {
		if g == m {
			// product over holes of total fixed points available
			prod := new(big.Int).Set(weight)
			for _, as := range p.Allowed {
				s := 0
				for _, gg := range as {
					s += profile[gg]
				}
				prod.Mul(prod, big.NewInt(int64(s)))
				if s == 0 {
					break
				}
			}
			numerator.Add(numerator, prod)
			return
		}
		for f := 0; f <= p.GroupSizes[g]; f++ {
			profile[g] = f
			w := new(big.Int).Mul(weight, PermsWithFixedPoints(p.GroupSizes[g], f))
			rec(g+1, w)
		}
	}
	rec(0, big.NewInt(1))
	order := big.NewInt(1)
	for _, sz := range p.GroupSizes {
		order.Mul(order, Factorial(sz))
	}
	q, r := new(big.Int).QuoRem(numerator, order, new(big.Int))
	if r.Sign() != 0 {
		panic("partition: Burnside count not integral; group structure violated")
	}
	return q
}

// CanonicalizeFill returns the canonical representative of the equivalence
// class containing fill: per group, member indices are relabeled in first-
// occurrence order. The input is not modified.
func (p *Problem) CanonicalizeFill(fill []VarRef) []VarRef {
	out := make([]VarRef, len(fill))
	relabel := make([]map[int]int, len(p.GroupSizes))
	next := make([]int, len(p.GroupSizes))
	for i, vr := range fill {
		if relabel[vr.Group] == nil {
			relabel[vr.Group] = make(map[int]int)
		}
		idx, ok := relabel[vr.Group][vr.Index]
		if !ok {
			idx = next[vr.Group]
			relabel[vr.Group][vr.Index] = idx
			next[vr.Group]++
		}
		out[i] = VarRef{Group: vr.Group, Index: idx}
	}
	return out
}

// FillKey returns a compact string key identifying a filling, suitable for
// use as a map key when deduplicating fillings.
func FillKey(fill []VarRef) string {
	b := make([]byte, 0, len(fill)*2)
	for _, vr := range fill {
		b = append(b, byte(vr.Group), byte(vr.Index))
	}
	return string(b)
}
