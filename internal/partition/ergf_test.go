package partition

import (
	"math/big"
	"testing"
)

func TestERGFReducesToRGS(t *testing.T) {
	// e = 1 restricted growth functions are exactly the RGS
	for n := 0; n <= 7; n++ {
		for k := 1; k <= 4; k++ {
			ergf := EachERGF(n, 1, k, func([]int) bool { return true })
			rgs := EachRGS(n, k, func([]int) bool { return true })
			if ergf != rgs {
				t.Errorf("n=%d k=%d: e-RGF(e=1) count %d != RGS count %d", n, k, ergf, rgs)
			}
		}
	}
}

func TestERGFValidity(t *testing.T) {
	EachERGF(6, 2, 5, func(a []int) bool {
		if !IsERGF(a, 2) {
			t.Fatalf("yielded invalid 2-RGF %v", a)
		}
		return true
	})
	// e=2 admits strings invalid for e=1
	found := false
	EachERGF(3, 2, 4, func(a []int) bool {
		if !IsRGS(a) {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("no e=2 string beyond RGS found")
	}
}

func TestCountERGFMatchesEnumeration(t *testing.T) {
	for n := 0; n <= 7; n++ {
		for e := 1; e <= 3; e++ {
			for max := 1; max <= 5; max++ {
				got := CountERGF(n, e, max)
				want := EachERGF(n, e, max, func([]int) bool { return true })
				if got.Cmp(big.NewInt(int64(want))) != 0 {
					t.Errorf("n=%d e=%d max=%d: count %s, enumeration %d", n, e, max, got, want)
				}
			}
		}
	}
}

func TestERGFKnownCounts(t *testing.T) {
	// unbounded 2-RGFs of length n: 1, 3, 13, 73, 501, ... wait — verify a
	// couple of hand-computed small values instead. Length 2, e=2,
	// unbounded (max big): a_1 = 0, a_2 in {0,1,2} -> 3.
	if got := CountERGF(2, 2, 100); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("2-RGF length 2 = %s, want 3", got)
	}
	// Length 3, e=2: a2 in 0..2; per a2, a3 in 0..max+2:
	// a2=0 -> max 0 -> 3; a2=1 -> max 1 -> 4; a2=2 -> max 2 -> 5 => 12
	if got := CountERGF(3, 2, 100); got.Cmp(big.NewInt(12)) != 0 {
		t.Errorf("2-RGF length 3 = %s, want 12", got)
	}
	// e=1 counts are Bell numbers when unbounded
	for n := 0; n <= 8; n++ {
		if got, want := CountERGF(n, 1, n+1), Bell(n); n > 0 && got.Cmp(want) != 0 {
			t.Errorf("1-RGF length %d = %s, want Bell %s", n, got, want)
		}
	}
}

func TestERGFDegenerate(t *testing.T) {
	if n := EachERGF(-1, 1, 2, func([]int) bool { return true }); n != 0 {
		t.Errorf("negative length yielded %d", n)
	}
	if n := EachERGF(3, 0, 2, func([]int) bool { return true }); n != 0 {
		t.Errorf("e=0 yielded %d", n)
	}
	if got := CountERGF(3, 1, 0); got.Sign() != 0 {
		t.Errorf("maxVal=0 count = %s", got)
	}
}

func TestIsERGF(t *testing.T) {
	cases := []struct {
		a    []int
		e    int
		want bool
	}{
		{[]int{0, 1, 2}, 1, true},
		{[]int{0, 2}, 1, false},
		{[]int{0, 2}, 2, true},
		{[]int{1, 0}, 1, false},
		{nil, 1, true},
		{[]int{0, 0, 3}, 2, false},
		{[]int{0, 0, 2}, 2, true},
	}
	for _, c := range cases {
		if got := IsERGF(c.a, c.e); got != c.want {
			t.Errorf("IsERGF(%v, %d) = %v, want %v", c.a, c.e, got, c.want)
		}
	}
}
