package partition

import "math/big"

// e-restricted growth functions (Mansour & Nassar; Mansour, Nassar &
// Vajnovszki — the paper's §4.3 cites them as the promising direction for
// counting the scoped SPE enumeration set). An e-RGF of length n is a
// string a_1 ... a_n with a_1 = 0 and
//
//	a_{i+1} <= max(a_1, ..., a_i) + e.
//
// For e = 1 these are exactly the restricted growth strings (set
// partitions); larger e admits "jumps" of up to e fresh labels at once,
// which models promoting blocks of scope variables in one step.

// EachERGF enumerates all e-restricted growth functions of length n whose
// values are < maxVal, in lexicographic order. The slice passed to yield is
// reused; copy to retain. Stops early when yield returns false; returns the
// number yielded.
func EachERGF(n, e, maxVal int, yield func(a []int) bool) int {
	if n < 0 || e < 1 || maxVal < 1 {
		return 0
	}
	if n == 0 {
		yield(nil)
		return 1
	}
	a := make([]int, n)
	count := 0
	var rec func(i, max int) bool
	rec = func(i, max int) bool {
		if i == n {
			count++
			return yield(a)
		}
		hi := max + e
		if hi >= maxVal {
			hi = maxVal - 1
		}
		for v := 0; v <= hi; v++ {
			a[i] = v
			next := max
			if v > max {
				next = v
			}
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	a[0] = 0 // a_1 = 0 by definition
	rec(1, 0)
	return count
}

// CountERGF counts e-restricted growth functions of length n with values
// < maxVal via dynamic programming over the running maximum, without
// enumerating.
func CountERGF(n, e, maxVal int) *big.Int {
	if n < 0 || e < 1 || maxVal < 1 {
		return big.NewInt(0)
	}
	if n == 0 {
		return big.NewInt(1)
	}
	// state: current maximum value m (after >= 1 elements); a_1 = 0 => m=0
	cur := map[int]*big.Int{0: big.NewInt(1)}
	for i := 1; i < n; i++ {
		next := make(map[int]*big.Int)
		add := func(m int, w *big.Int) {
			if v, ok := next[m]; ok {
				v.Add(v, w)
			} else {
				next[m] = new(big.Int).Set(w)
			}
		}
		for m, w := range cur {
			hi := m + e
			if hi >= maxVal {
				hi = maxVal - 1
			}
			// values 0..m keep the maximum
			if m >= 0 {
				keep := new(big.Int).Mul(w, big.NewInt(int64(m+1)))
				add(m, keep)
			}
			// values m+1..hi raise the maximum
			for v := m + 1; v <= hi; v++ {
				add(v, w)
			}
		}
		cur = next
	}
	total := new(big.Int)
	for _, w := range cur {
		total.Add(total, w)
	}
	return total
}

// IsERGF reports whether a is a valid e-restricted growth function.
func IsERGF(a []int, e int) bool {
	max := -1
	for i, v := range a {
		if i == 0 && v != 0 {
			return false
		}
		if v < 0 || v > max+e {
			return false
		}
		if v > max {
			max = v
		}
	}
	return true
}
