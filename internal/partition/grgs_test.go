package partition

import (
	"math/big"
	"math/rand"
	"testing"
)

// figure7 builds the Problem of paper Figure 7: holes 1,2,5 are global
// (variables {a,b}) and holes 3,4 additionally admit the inner scope's
// locals {c,d}. Group 0 = globals (size 2), group 1 = locals (size 2).
func figure7() *Problem {
	return &Problem{
		NumHoles:   5,
		GroupSizes: []int{2, 2},
		Allowed: [][]int{
			{0}, {0}, {0}, // holes 1, 2, 5 in the paper's normal form
			{0, 1}, {0, 1}, // holes 3, 4
		},
	}
}

func TestFigure7Counts(t *testing.T) {
	p := figure7()
	if got := p.NaiveCount(); got.Cmp(big.NewInt(128)) != 0 {
		t.Errorf("naive count = %s, want 128 (= 2^3 * 4^2)", got)
	}
	// The true number of compact-alpha orbits is 40 (Burnside over
	// Sym{a,b} x Sym{c,d}); the paper's Example 6 arithmetic yields 36.
	// See DESIGN.md §2 for the discrepancy analysis.
	if got := p.OrbitCountBurnside(); got.Cmp(big.NewInt(40)) != 0 {
		t.Errorf("Burnside orbit count = %s, want 40", got)
	}
	if got := p.CanonicalCount(); got.Cmp(big.NewInt(40)) != 0 {
		t.Errorf("canonical DP count = %s, want 40", got)
	}
	if got := p.EachCanonical(func([]VarRef) bool { return true }); got != 40 {
		t.Errorf("canonical enumeration yielded %d, want 40", got)
	}
	if got := p.EachNaive(func([]VarRef) bool { return true }); got != 128 {
		t.Errorf("naive enumeration yielded %d, want 128", got)
	}
}

func TestScopeFreeProblemMatchesStirling(t *testing.T) {
	// A single group of k variables over n holes must reproduce
	// SumStirling(n, k) — the scope-free SPE solution size (paper Eq. 1).
	for n := 0; n <= 8; n++ {
		for k := 1; k <= 4; k++ {
			allowed := make([][]int, n)
			for i := range allowed {
				allowed[i] = []int{0}
			}
			p := &Problem{NumHoles: n, GroupSizes: []int{k}, Allowed: allowed}
			want := SumStirling(n, k)
			if got := p.CanonicalCount(); got.Cmp(want) != 0 {
				t.Errorf("n=%d k=%d: canonical count %s, want %s", n, k, got, want)
			}
			if got := p.OrbitCountBurnside(); got.Cmp(want) != 0 {
				t.Errorf("n=%d k=%d: Burnside %s, want %s", n, k, got, want)
			}
		}
	}
}

// bruteForceOrbits enumerates every naive filling and counts distinct
// canonical forms — the ground-truth number of equivalence classes.
func bruteForceOrbits(p *Problem) int {
	seen := make(map[string]bool)
	p.EachNaive(func(fill []VarRef) bool {
		seen[FillKey(p.CanonicalizeFill(fill))] = true
		return true
	})
	return len(seen)
}

func TestCanonicalAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20170611))
	for trial := 0; trial < 60; trial++ {
		numGroups := 1 + rng.Intn(3)
		sizes := make([]int, numGroups)
		for g := range sizes {
			sizes[g] = 1 + rng.Intn(3)
		}
		n := rng.Intn(7)
		allowed := make([][]int, n)
		for i := range allowed {
			// random non-empty subset of groups
			var as []int
			for g := 0; g < numGroups; g++ {
				if rng.Intn(2) == 0 {
					as = append(as, g)
				}
			}
			if len(as) == 0 {
				as = []int{rng.Intn(numGroups)}
			}
			allowed[i] = as
		}
		p := &Problem{NumHoles: n, GroupSizes: sizes, Allowed: allowed}
		want := bruteForceOrbits(p)
		if got := p.EachCanonical(func([]VarRef) bool { return true }); got != want {
			t.Fatalf("trial %d (%+v): canonical enum %d, brute force %d", trial, p, got, want)
		}
		if got := p.CanonicalCount(); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: DP count %s, brute force %d", trial, got, want)
		}
		if got := p.OrbitCountBurnside(); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: Burnside %s, brute force %d", trial, got, want)
		}
	}
}

func TestCanonicalFillingsAreCanonicalAndDistinct(t *testing.T) {
	p := figure7()
	seen := make(map[string]bool)
	p.EachCanonical(func(fill []VarRef) bool {
		canon := p.CanonicalizeFill(fill)
		if FillKey(canon) != FillKey(fill) {
			t.Fatalf("enumerated filling %v is not canonical (canon %v)", fill, canon)
		}
		key := FillKey(fill)
		if seen[key] {
			t.Fatalf("duplicate canonical filling %v", fill)
		}
		seen[key] = true
		return true
	})
}

func TestCanonicalCompleteness(t *testing.T) {
	// Every naive filling must canonicalize to some enumerated filling.
	p := figure7()
	canonical := make(map[string]bool)
	p.EachCanonical(func(fill []VarRef) bool {
		canonical[FillKey(fill)] = true
		return true
	})
	p.EachNaive(func(fill []VarRef) bool {
		key := FillKey(p.CanonicalizeFill(fill))
		if !canonical[key] {
			t.Fatalf("naive filling %v canonicalizes outside the canonical set", fill)
		}
		return true
	})
}

func TestProblemValidate(t *testing.T) {
	bad := []*Problem{
		{NumHoles: -1},
		{NumHoles: 1, GroupSizes: []int{2}, Allowed: nil},
		{NumHoles: 1, GroupSizes: []int{2}, Allowed: [][]int{{}}},
		{NumHoles: 1, GroupSizes: []int{2}, Allowed: [][]int{{1}}},
		{NumHoles: 1, GroupSizes: []int{-2}, Allowed: [][]int{{0}}},
		{NumHoles: 1, GroupSizes: []int{0}, Allowed: [][]int{{0}}},
		{NumHoles: 2, GroupSizes: []int{1, 1}, Allowed: [][]int{{0}, {1, 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed problem %+v", i, p)
		}
	}
	good := figure7()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid problem: %v", err)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{NumHoles: 0, GroupSizes: []int{3}, Allowed: nil}
	if got := p.CanonicalCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty problem canonical count = %s, want 1", got)
	}
	if got := p.NaiveCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty problem naive count = %s, want 1", got)
	}
	n := p.EachCanonical(func(fill []VarRef) bool {
		if len(fill) != 0 {
			t.Errorf("empty problem yielded non-empty fill %v", fill)
		}
		return true
	})
	if n != 1 {
		t.Errorf("empty problem enumeration yielded %d, want 1", n)
	}
}

func TestEachCanonicalEarlyStop(t *testing.T) {
	p := figure7()
	calls := 0
	p.EachCanonical(func([]VarRef) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Errorf("early stop after %d calls, want 7", calls)
	}
}

func TestCanonicalizeFillIdempotent(t *testing.T) {
	p := figure7()
	p.EachNaive(func(fill []VarRef) bool {
		c1 := p.CanonicalizeFill(fill)
		c2 := p.CanonicalizeFill(c1)
		if FillKey(c1) != FillKey(c2) {
			t.Fatalf("canonicalization not idempotent: %v -> %v -> %v", fill, c1, c2)
		}
		return true
	})
}
