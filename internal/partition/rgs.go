package partition

// A restricted growth string (RGS) a_1 a_2 ... a_n encodes a set partition of
// {1..n}: element i belongs to block a_i, with the normalization a_1 = 0 and
// a_{i+1} <= 1 + max(a_1..a_i). Two fillings of a scope-free skeleton are
// alpha-equivalent iff they have the same RGS (paper §4.1.2).

// EachRGS enumerates, in lexicographic order, every restricted growth string
// of length n whose values are < maxBlocks (i.e. every set partition of n
// elements into at most maxBlocks non-empty blocks). The slice passed to
// yield is reused between calls; callers must copy it if they retain it.
// Enumeration stops early if yield returns false. EachRGS returns the number
// of strings yielded.
//
// For n == 0 the single empty partition is yielded once.
func EachRGS(n, maxBlocks int, yield func(rgs []int) bool) int {
	if n < 0 || maxBlocks < 1 {
		return 0
	}
	if n == 0 {
		yield(nil)
		return 1
	}
	a := make([]int, n)
	count := 0
	// backtracking enumeration in lexicographic order
	var rec func(i, maxSoFar int) bool
	rec = func(i, maxSoFar int) bool {
		if i == n {
			count++
			return yield(a)
		}
		hi := maxSoFar + 1
		if hi >= maxBlocks {
			hi = maxBlocks - 1
		}
		for v := 0; v <= hi; v++ {
			a[i] = v
			next := maxSoFar
			if v > maxSoFar {
				next = v
			}
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	rec(0, -1)
	return count
}

// EachRGSExact enumerates every restricted growth string of length n using
// exactly k distinct values (set partitions into exactly k non-empty
// blocks). Semantics of yield match EachRGS. Returns the number yielded.
func EachRGSExact(n, k int, yield func(rgs []int) bool) int {
	if n < 0 || k < 0 {
		return 0
	}
	if n == 0 {
		if k == 0 {
			yield(nil)
			return 1
		}
		return 0
	}
	if k == 0 || k > n {
		return 0
	}
	count := 0
	EachRGS(n, k, func(rgs []int) bool {
		max := -1
		for _, v := range rgs {
			if v > max {
				max = v
			}
		}
		if max == k-1 {
			count++
			return yield(rgs)
		}
		return true
	})
	return count
}

// BlocksOf converts a restricted growth string to its explicit block
// representation: BlocksOf("0101") = [[0 2] [1 3]]. Blocks are ordered by
// their smallest element; elements within a block are increasing.
func BlocksOf(rgs []int) [][]int {
	max := -1
	for _, v := range rgs {
		if v > max {
			max = v
		}
	}
	blocks := make([][]int, max+1)
	for i, v := range rgs {
		blocks[v] = append(blocks[v], i)
	}
	return blocks
}

// RGSOf converts an arbitrary block assignment (element i -> label a[i]) to
// its canonical restricted growth string, relabeling blocks in first-
// occurrence order. It is the canonical form used for alpha-equivalence of
// scope-free fillings.
func RGSOf(assign []int) []int {
	rgs := make([]int, len(assign))
	relabel := make(map[int]int, len(assign))
	next := 0
	for i, v := range assign {
		r, ok := relabel[v]
		if !ok {
			r = next
			relabel[v] = r
			next++
		}
		rgs[i] = r
	}
	return rgs
}

// IsRGS reports whether a is a valid restricted growth string.
func IsRGS(a []int) bool {
	max := -1
	for _, v := range a {
		if v < 0 || v > max+1 {
			return false
		}
		if v > max {
			max = v
		}
	}
	return true
}

// NumBlocks returns the number of distinct blocks in a restricted growth
// string (0 for the empty string).
func NumBlocks(rgs []int) int {
	max := -1
	for _, v := range rgs {
		if v > max {
			max = v
		}
	}
	return max + 1
}
