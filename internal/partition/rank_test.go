package partition

import (
	"math/big"
	"math/rand"
	"testing"
)

// rankProblems is a mix of hand-built and random instances exercising the
// ranker: the paper's Figure 7, scope-free Stirling shapes, and random
// multi-group problems like those in grgs_test.
func rankProblems(t *testing.T) []*Problem {
	t.Helper()
	ps := []*Problem{
		figure7(),
		{NumHoles: 0, GroupSizes: []int{}, Allowed: [][]int{}},
		{NumHoles: 1, GroupSizes: []int{3}, Allowed: [][]int{{0}}},
		{NumHoles: 6, GroupSizes: []int{3}, Allowed: [][]int{{0}, {0}, {0}, {0}, {0}, {0}}},
		{
			NumHoles:   7,
			GroupSizes: []int{2, 3, 1},
			Allowed:    [][]int{{0}, {0, 1}, {1}, {0, 1, 2}, {2}, {1, 2}, {0, 2}},
		},
	}
	rng := rand.New(rand.NewSource(20170612))
	for trial := 0; trial < 20; trial++ {
		numGroups := 1 + rng.Intn(3)
		sizes := make([]int, numGroups)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(3)
		}
		numHoles := 1 + rng.Intn(6)
		allowed := make([][]int, numHoles)
		for i := range allowed {
			for g := 0; g < numGroups; g++ {
				if rng.Intn(2) == 0 {
					allowed[i] = append(allowed[i], g)
				}
			}
			if len(allowed[i]) == 0 {
				allowed[i] = []int{rng.Intn(numGroups)}
			}
		}
		p := &Problem{NumHoles: numHoles, GroupSizes: sizes, Allowed: allowed}
		if p.Validate() != nil {
			continue
		}
		ps = append(ps, p)
	}
	return ps
}

// TestRankUnrankRoundTrip asserts Unrank(Rank(fill)) == fill and
// Rank(fill) == enumeration position for every canonical filling.
func TestRankUnrankRoundTrip(t *testing.T) {
	for pi, p := range rankProblems(t) {
		r := p.NewRanker()
		if got, want := r.Count(), p.CanonicalCount(); got.Cmp(want) != 0 {
			t.Errorf("problem %d: ranker count %s, want %s", pi, got, want)
			continue
		}
		pos := int64(0)
		p.EachCanonical(func(fill []VarRef) bool {
			rank, err := r.Rank(fill)
			if err != nil {
				t.Errorf("problem %d: rank(%v): %v", pi, fill, err)
				return false
			}
			if rank.Cmp(big.NewInt(pos)) != 0 {
				t.Errorf("problem %d: fill %v ranked %s, want %d", pi, fill, rank, pos)
				return false
			}
			back, err := r.Unrank(rank)
			if err != nil {
				t.Errorf("problem %d: unrank(%s): %v", pi, rank, err)
				return false
			}
			if FillKey(back) != FillKey(fill) {
				t.Errorf("problem %d: unrank(%d) = %v, want %v", pi, pos, back, fill)
				return false
			}
			pos++
			return true
		})
		// out-of-range ranks must error
		if _, err := r.Unrank(r.Count()); err == nil {
			t.Errorf("problem %d: unrank(count) did not error", pi)
		}
		if _, err := r.Unrank(big.NewInt(-1)); err == nil {
			t.Errorf("problem %d: unrank(-1) did not error", pi)
		}
	}
}

// TestRankRejectsNonCanonical asserts that fillings breaking the restricted
// growth property are rejected.
func TestRankRejectsNonCanonical(t *testing.T) {
	p := figure7()
	r := p.NewRanker()
	// index 1 of group 0 used before index 0: not a restricted growth string
	bad := []VarRef{{0, 1}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	if _, err := r.Rank(bad); err == nil {
		t.Error("rank accepted a non-canonical filling")
	}
	if _, err := r.Rank([]VarRef{{0, 0}}); err == nil {
		t.Error("rank accepted a short filling")
	}
	// group 1 is not admissible at hole 0
	if _, err := r.Rank([]VarRef{{1, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}); err == nil {
		t.Error("rank accepted an inadmissible group")
	}
}

// TestShardConcatenation asserts that concatenating K contiguous shard
// enumerations (each started with Skip at its offset) reproduces
// EachCanonical's exact sequence and CanonicalCount total.
func TestShardConcatenation(t *testing.T) {
	for pi, p := range rankProblems(t) {
		var want []string
		p.EachCanonical(func(fill []VarRef) bool {
			want = append(want, FillKey(fill))
			return true
		})
		total := p.CanonicalCount()
		if total.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("problem %d: canonical count %s but enumerated %d", pi, total, len(want))
		}
		for _, shards := range []int{1, 2, 3, 7} {
			var got []string
			for k := 0; k < shards; k++ {
				lo := int64(k) * int64(len(want)) / int64(shards)
				hi := int64(k+1) * int64(len(want)) / int64(shards)
				n := hi - lo
				if n == 0 {
					continue
				}
				yielded := p.Skip(big.NewInt(lo), func(fill []VarRef) bool {
					got = append(got, FillKey(fill))
					n--
					return n > 0
				})
				if int64(yielded) != hi-lo {
					t.Fatalf("problem %d: shard %d/%d yielded %d, want %d", pi, k, shards, yielded, hi-lo)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("problem %d: %d shards yielded %d fills, want %d", pi, shards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("problem %d: %d shards diverge at position %d", pi, shards, i)
				}
			}
		}
		// skipping everything yields nothing
		if n := p.Skip(total, func([]VarRef) bool { return true }); n != 0 {
			t.Errorf("problem %d: skip(count) yielded %d fills", pi, n)
		}
	}
}
