package partition

import (
	"fmt"
	"math/big"
)

// Ranker indexes the canonical enumeration order of a Problem: it maps any
// canonical filling to its 0-based position in EachCanonical's sequence
// (Rank), maps a position back to its filling (Unrank), and enumerates the
// sequence from an arbitrary offset (EachFrom). Together these let the
// canonical variant space be cut into contiguous shards that independent
// workers enumerate without coordination.
//
// The machinery is the counting side of the paper's Algorithm 1 turned into
// a positional number system: the number of canonical completions of a
// suffix of holes depends only on the per-group used-variable counts, so a
// memoized suffix count plays the role the Stirling/product arithmetic
// plays in CanonicalCount, and ranking is digit extraction against those
// counts. All big.Int values returned by suffix counting are shared with
// the memo table and must not be mutated by callers.
type Ranker struct {
	p *Problem
	// memo[i][usedKey] is the number of canonical completions of holes
	// i..n-1 under the used-variable profile encoded by usedKey.
	memo []map[string]*big.Int
}

// NewRanker validates the problem and prepares an empty memo table. The
// table fills lazily; a Ranker is cheap to create and is not safe for
// concurrent use (give each goroutine its own).
func (p *Problem) NewRanker() *Ranker {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Ranker{p: p, memo: make([]map[string]*big.Int, p.NumHoles+1)}
}

var rankOne = big.NewInt(1)

func usedKey(used []int) string {
	b := make([]byte, len(used))
	for i, u := range used {
		b[i] = byte(u)
	}
	return string(b)
}

// suffix returns the number of canonical completions of holes i..n-1 given
// the used profile. The result aliases the memo table; do not mutate.
func (r *Ranker) suffix(i int, used []int) *big.Int {
	if i == r.p.NumHoles {
		return rankOne
	}
	if r.memo[i] == nil {
		r.memo[i] = make(map[string]*big.Int)
	}
	k := usedKey(used)
	if v, ok := r.memo[i][k]; ok {
		return v
	}
	total := new(big.Int)
	var tmp big.Int
	for _, g := range r.p.Allowed[i] {
		if used[g] > 0 {
			tmp.SetInt64(int64(used[g]))
			tmp.Mul(&tmp, r.suffix(i+1, used))
			total.Add(total, &tmp)
		}
		if used[g] < r.p.GroupSizes[g] {
			used[g]++
			total.Add(total, r.suffix(i+1, used))
			used[g]--
		}
	}
	r.memo[i][k] = total
	return total
}

// Count returns the size of the canonical enumeration, computed through the
// suffix-count table (equal to CanonicalCount; the DP there runs forward,
// this one backward).
func (r *Ranker) Count() *big.Int {
	return new(big.Int).Set(r.suffix(0, make([]int, len(r.p.GroupSizes))))
}

// Rank returns the 0-based position of the canonical filling in
// EachCanonical's order. It errors if fill is not a canonical filling of
// the problem (wrong length, inadmissible group, or a member index that
// breaks the restricted-growth property).
func (r *Ranker) Rank(fill []VarRef) (*big.Int, error) {
	p := r.p
	if len(fill) != p.NumHoles {
		return nil, fmt.Errorf("partition: rank: fill length %d, want %d", len(fill), p.NumHoles)
	}
	used := make([]int, len(p.GroupSizes))
	rank := new(big.Int)
	var tmp big.Int
	for i, vr := range fill {
		admissible := false
		for _, g := range p.Allowed[i] {
			if g == vr.Group {
				admissible = true
				break
			}
		}
		if !admissible {
			return nil, fmt.Errorf("partition: rank: hole %d filled from inadmissible group %d", i, vr.Group)
		}
		if vr.Index < 0 || vr.Index > used[vr.Group] || vr.Index >= p.GroupSizes[vr.Group] {
			return nil, fmt.Errorf("partition: rank: hole %d index %d breaks restricted growth (used %d of %d)",
				i, vr.Index, used[vr.Group], p.GroupSizes[vr.Group])
		}
		// count the choices enumerated before (vr.Group, vr.Index) at this
		// hole: whole earlier groups, then earlier members of vr.Group
		for _, g := range p.Allowed[i] {
			if g == vr.Group {
				break
			}
			if used[g] > 0 {
				tmp.SetInt64(int64(used[g]))
				tmp.Mul(&tmp, r.suffix(i+1, used))
				rank.Add(rank, &tmp)
			}
			if used[g] < p.GroupSizes[g] {
				used[g]++
				rank.Add(rank, r.suffix(i+1, used))
				used[g]--
			}
		}
		if vr.Index > 0 {
			tmp.SetInt64(int64(vr.Index))
			tmp.Mul(&tmp, r.suffix(i+1, used))
			rank.Add(rank, &tmp)
		}
		if vr.Index == used[vr.Group] {
			used[vr.Group]++
		}
	}
	return rank, nil
}

// Unrank returns the canonical filling at 0-based position rank in
// EachCanonical's order, or an error if rank is outside [0, Count).
func (r *Ranker) Unrank(rank *big.Int) ([]VarRef, error) {
	p := r.p
	if rank.Sign() < 0 {
		return nil, fmt.Errorf("partition: unrank: negative rank %s", rank)
	}
	if rank.Cmp(r.suffix(0, make([]int, len(p.GroupSizes)))) >= 0 {
		return nil, fmt.Errorf("partition: unrank: rank %s out of range [0, %s)", rank, r.Count())
	}
	rem := new(big.Int).Set(rank)
	used := make([]int, len(p.GroupSizes))
	fill := make([]VarRef, p.NumHoles)
	var tmp big.Int
	for i := 0; i < p.NumHoles; i++ {
		chosen := false
		for _, g := range p.Allowed[i] {
			// old members of g: used[g] equally-sized subtrees
			if used[g] > 0 {
				sub := r.suffix(i+1, used)
				tmp.SetInt64(int64(used[g]))
				tmp.Mul(&tmp, sub)
				if rem.Cmp(&tmp) < 0 {
					q, m := new(big.Int).QuoRem(rem, sub, new(big.Int))
					fill[i] = VarRef{Group: g, Index: int(q.Int64())}
					rem.Set(m)
					chosen = true
					break
				}
				rem.Sub(rem, &tmp)
			}
			// the fresh member of g
			if used[g] < p.GroupSizes[g] {
				used[g]++
				sub := r.suffix(i+1, used)
				if rem.Cmp(sub) < 0 {
					fill[i] = VarRef{Group: g, Index: used[g] - 1}
					chosen = true
					break
				}
				rem.Sub(rem, sub)
				used[g]--
			}
		}
		if !chosen {
			return nil, fmt.Errorf("partition: unrank: rank %s out of range [0, %s)", rank, r.Count())
		}
	}
	return fill, nil
}

// EachFrom enumerates canonical fillings starting at 0-based position
// offset, in the exact order and with the exact yield semantics of
// EachCanonical (the fill slice is reused; copy to retain). It descends the
// enumeration tree subtracting whole-subtree counts until the offset is
// consumed, so reaching the first filling costs O(holes × choices) suffix
// counts rather than offset enumeration steps. Returns the number of
// fillings yielded.
func (r *Ranker) EachFrom(offset *big.Int, yield func(fill []VarRef) bool) int {
	p := r.p
	skip := new(big.Int).Set(offset)
	if skip.Sign() < 0 {
		skip.SetInt64(0)
	}
	fill := make([]VarRef, p.NumHoles)
	used := make([]int, len(p.GroupSizes))
	count := 0
	var tmp big.Int
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == p.NumHoles {
			if skip.Sign() > 0 {
				// cannot happen: skip is consumed against subtree counts
				// before descending to a leaf
				skip.Sub(skip, rankOne)
				return true
			}
			count++
			return yield(fill)
		}
		skipping := skip.Sign() > 0
		for _, g := range p.Allowed[i] {
			limit := used[g]
			if skipping {
				// drop whole old-member subtrees while the offset allows
				sub := r.suffix(i+1, used)
				if limit > 0 && sub.Sign() > 0 {
					tmp.SetInt64(int64(limit))
					tmp.Mul(&tmp, sub)
					if skip.Cmp(&tmp) >= 0 {
						skip.Sub(skip, &tmp)
						limit = 0
					} else {
						q, m := new(big.Int).QuoRem(skip, sub, new(big.Int))
						first := int(q.Int64())
						skip.Set(m)
						for idx := first; idx < used[g]; idx++ {
							fill[i] = VarRef{Group: g, Index: idx}
							if !rec(i + 1) {
								return false
							}
						}
						limit = 0
						skipping = skip.Sign() > 0
					}
				}
			}
			for idx := 0; idx < limit; idx++ {
				fill[i] = VarRef{Group: g, Index: idx}
				if !rec(i + 1) {
					return false
				}
			}
			if used[g] < p.GroupSizes[g] {
				used[g]++
				drop := false
				if skipping {
					sub := r.suffix(i+1, used)
					if skip.Cmp(sub) >= 0 {
						skip.Sub(skip, sub)
						drop = true
					}
				}
				if !drop {
					fill[i] = VarRef{Group: g, Index: used[g] - 1}
					ok := rec(i + 1)
					skipping = skip.Sign() > 0
					used[g]--
					if !ok {
						return false
					}
				} else {
					used[g]--
				}
			}
		}
		return true
	}
	rec(0)
	return count
}

// Skip enumerates the canonical sequence with the first offset fillings
// skipped — EachCanonical with a fast-forwarded start. Yield semantics
// match EachCanonical. Returns the number of fillings yielded.
func (p *Problem) Skip(offset *big.Int, yield func(fill []VarRef) bool) int {
	return p.NewRanker().EachFrom(offset, yield)
}
