package partition

import (
	"math/big"
	"testing"
	"testing/quick"
)

// quickProblem decodes a random byte string into a small valid Problem.
type quickProblem struct {
	p *Problem
}

func decodeProblem(raw []byte) *Problem {
	if len(raw) < 3 {
		return nil
	}
	numGroups := int(raw[0]%3) + 1
	sizes := make([]int, numGroups)
	for g := range sizes {
		sizes[g] = int(raw[1+g%2]%3) + 1
	}
	n := int(raw[2] % 6)
	allowed := make([][]int, n)
	for i := range allowed {
		b := raw[(3+i)%len(raw)]
		var as []int
		for g := 0; g < numGroups; g++ {
			if b&(1<<g) != 0 {
				as = append(as, g)
			}
		}
		if len(as) == 0 {
			as = []int{int(b) % numGroups}
		}
		allowed[i] = as
	}
	return &Problem{NumHoles: n, GroupSizes: sizes, Allowed: allowed}
}

// TestQuickCanonicalSoundComplete: for random problems, (1) the canonical
// enumeration has no two equivalent fillings, and (2) every naive filling
// canonicalizes into the enumerated set.
func TestQuickCanonicalSoundComplete(t *testing.T) {
	f := func(raw []byte) bool {
		p := decodeProblem(raw)
		if p == nil || p.Validate() != nil {
			return true
		}
		canonical := map[string]bool{}
		ok := true
		p.EachCanonical(func(fill []VarRef) bool {
			key := FillKey(fill)
			if canonical[key] {
				ok = false
				return false
			}
			canonical[key] = true
			// enumerated fillings must be fixed points of canonicalization
			if FillKey(p.CanonicalizeFill(fill)) != key {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		complete := true
		p.EachNaive(func(fill []VarRef) bool {
			if !canonical[FillKey(p.CanonicalizeFill(fill))] {
				complete = false
				return false
			}
			return true
		})
		return complete
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickThreeCountsAgree: DP count, Burnside count, and enumeration
// count agree on random problems.
func TestQuickThreeCountsAgree(t *testing.T) {
	f := func(raw []byte) bool {
		p := decodeProblem(raw)
		if p == nil || p.Validate() != nil {
			return true
		}
		enum := p.EachCanonical(func([]VarRef) bool { return true })
		dp := p.CanonicalCount()
		burn := p.OrbitCountBurnside()
		e := big.NewInt(int64(enum))
		return dp.Cmp(e) == 0 && burn.Cmp(e) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonicalLEQNaive: canonical counts never exceed naive counts.
func TestQuickCanonicalLEQNaive(t *testing.T) {
	f := func(raw []byte) bool {
		p := decodeProblem(raw)
		if p == nil || p.Validate() != nil {
			return true
		}
		return p.CanonicalCount().Cmp(p.NaiveCount()) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickERGFMonotoneInE: enlarging e can only enlarge the e-RGF set.
func TestQuickERGFMonotoneInE(t *testing.T) {
	f := func(rn, rmax uint8) bool {
		n := int(rn % 7)
		max := int(rmax%5) + 1
		prev := -1
		for e := 1; e <= 3; e++ {
			c := int(CountERGF(n, e, max).Int64())
			if prev >= 0 && c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickStirlingRowSumsBell: sum of a Stirling row is the Bell number.
func TestQuickStirlingRowSumsBell(t *testing.T) {
	f := func(rn uint8) bool {
		n := int(rn%15) + 1
		sum := new(big.Int)
		for k := 1; k <= n; k++ {
			sum.Add(sum, Stirling2(n, k))
		}
		return sum.Cmp(Bell(n)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCombinationsComplementBijection: complement of a k-subset is an
// (n-k)-subset partitioning {0..n-1}.
func TestQuickCombinationsComplementBijection(t *testing.T) {
	f := func(rn, rk uint8) bool {
		n := int(rn % 9)
		k := 0
		if n > 0 {
			k = int(rk) % (n + 1)
		}
		ok := true
		EachCombination(n, k, func(c []int) bool {
			comp := Complement(n, c)
			if len(comp) != n-k {
				ok = false
				return false
			}
			seen := make(map[int]bool, n)
			for _, x := range c {
				seen[x] = true
			}
			for _, x := range comp {
				if seen[x] {
					ok = false
					return false
				}
				seen[x] = true
			}
			return len(seen) == n
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
