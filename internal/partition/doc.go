// Package partition provides the combinatorial substrate for skeletal
// program enumeration (SPE): Stirling and Bell numbers, restricted growth
// strings, set-partition and combination iterators, and the grouped
// restricted-growth-string (GRGS) machinery used to enumerate exactly one
// representative per compact-alpha-equivalence class.
//
// The algorithms follow Knuth, TAOCP vol. 4A §7.2.1.5 (set partitions in
// restricted-growth-string order) and the SPE paper's formulation of
// enumeration as constrained set partitioning (PLDI 2017, §4).
package partition
