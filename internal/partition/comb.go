package partition

// EachCombination enumerates all k-element subsets of {0, ..., n-1} in
// lexicographic order, mirroring the COMBINATIONS routine used by the
// paper's PartitionScope procedure. The slice passed to yield is reused;
// copy it to retain it. Enumeration stops early if yield returns false.
// Returns the number of combinations yielded. EachCombination(n, 0, f)
// yields the single empty combination.
func EachCombination(n, k int, yield func(comb []int) bool) int {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k == 0 {
		yield(nil)
		return 1
	}
	c := make([]int, k)
	for i := range c {
		c[i] = i
	}
	count := 0
	for {
		count++
		if !yield(c) {
			return count
		}
		// advance to the next combination
		i := k - 1
		for i >= 0 && c[i] == n-k+i {
			i--
		}
		if i < 0 {
			return count
		}
		c[i]++
		for j := i + 1; j < k; j++ {
			c[j] = c[j-1] + 1
		}
	}
}

// EachSubset enumerates all subsets of {0..n-1} grouped by increasing
// cardinality (all 0-subsets, then 1-subsets, ...). Stops early when yield
// returns false. Returns the number of subsets yielded.
func EachSubset(n int, yield func(sub []int) bool) int {
	total := 0
	for k := 0; k <= n; k++ {
		stop := false
		total += EachCombination(n, k, func(c []int) bool {
			if !yield(c) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			break
		}
	}
	return total
}

// Complement returns the elements of {0..n-1} not present in the sorted
// subset sub.
func Complement(n int, sub []int) []int {
	out := make([]int, 0, n-len(sub))
	j := 0
	for i := 0; i < n; i++ {
		if j < len(sub) && sub[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}
