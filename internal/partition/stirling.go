package partition

import (
	"math/big"
	"sync"
)

// stirlingCache memoizes Stirling numbers of the second kind. Keys are
// packed as n<<32|k; values are immutable *big.Int that callers must not
// mutate.
var stirlingCache sync.Map

// Stirling2 returns the Stirling number of the second kind {n k}: the number
// of ways to partition a set of n labeled elements into exactly k non-empty
// unlabeled subsets. By convention {0 0} = 1, and {n k} = 0 when k > n,
// k == 0 < n, or either argument is negative.
func Stirling2(n, k int) *big.Int {
	switch {
	case n < 0 || k < 0:
		return big.NewInt(0)
	case n == 0 && k == 0:
		return big.NewInt(1)
	case k == 0 || k > n:
		return big.NewInt(0)
	case k == 1 || k == n:
		return big.NewInt(1)
	}
	key := uint64(n)<<32 | uint64(k)
	if v, ok := stirlingCache.Load(key); ok {
		return new(big.Int).Set(v.(*big.Int))
	}
	// {n k} = k*{n-1 k} + {n-1 k-1}
	r := new(big.Int).Mul(big.NewInt(int64(k)), Stirling2(n-1, k))
	r.Add(r, Stirling2(n-1, k-1))
	stirlingCache.Store(key, new(big.Int).Set(r))
	return r
}

// SumStirling returns S = sum_{i=1..k} {n i}, the number of ways to
// partition n labeled elements into at most k non-empty subsets. This is the
// size of the SPE solution set for a scope-free skeleton with n holes and k
// variables (paper, Eq. 1). For k >= n it equals the Bell number B(n).
// SumStirling(0, k) is 1 (the empty partition) for any k >= 0.
func SumStirling(n, k int) *big.Int {
	if n == 0 {
		return big.NewInt(1)
	}
	s := new(big.Int)
	if k > n {
		k = n
	}
	for i := 1; i <= k; i++ {
		s.Add(s, Stirling2(n, i))
	}
	return s
}

// Bell returns the n-th Bell number: the total number of set partitions of n
// labeled elements. Bell(0) = 1.
func Bell(n int) *big.Int {
	return SumStirling(n, n)
}

// Factorial returns n! as a big integer; Factorial(0) = 1. Negative n yields 0.
func Factorial(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).MulRange(1, int64(n))
}

// Binomial returns the binomial coefficient C(n, k); zero outside 0<=k<=n.
func Binomial(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Derangements returns the number of permutations of n elements with no
// fixed point (the subfactorial !n). Derangements(0) = 1.
func Derangements(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	// !n = n*!(n-1) + (-1)^n, computed iteratively.
	d := big.NewInt(1)
	for i := 1; i <= n; i++ {
		d.Mul(d, big.NewInt(int64(i)))
		if i%2 == 0 {
			d.Add(d, big.NewInt(1))
		} else {
			d.Sub(d, big.NewInt(1))
		}
	}
	return d
}

// PermsWithFixedPoints returns the number of permutations of n elements with
// exactly f fixed points: C(n, f) * !(n-f).
func PermsWithFixedPoints(n, f int) *big.Int {
	if f < 0 || f > n {
		return big.NewInt(0)
	}
	r := Binomial(n, f)
	return r.Mul(r, Derangements(n-f))
}
