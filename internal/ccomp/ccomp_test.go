package ccomp

import (
	"testing"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

func TestCleanProgramCompiles(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { int a = 1; return a + 1; }`)
	c := &Compiler{}
	if ce := c.Compile(prog); ce != nil {
		t.Fatalf("clean program crashed: %v", ce)
	}
	res, ce := c.Run(prog, interp.Config{})
	if ce != nil {
		t.Fatal(ce)
	}
	if res.Exit != 2 {
		t.Errorf("exit = %d, want 2", res.Exit)
	}
}

func TestBug121IncompleteParam(t *testing.T) {
	// paper Figure 12(g): parameter with incomplete struct type
	prog := cc.MustAnalyze(`
struct A;
void foo(struct A a) { }
int main() { return 0; }
`)
	c := &Compiler{}
	ce := c.Compile(prog)
	if ce == nil || ce.BugID != "121" {
		t.Fatalf("expected bug 121, got %v", ce)
	}
	// fixed build accepts it
	fixed := &Compiler{WithFixes: true}
	if ce := fixed.Compile(prog); ce != nil {
		t.Errorf("fixed build still crashes: %v", ce)
	}
}

func TestBug125IncompleteInit(t *testing.T) {
	// paper Figure 12(e): initializer for an incomplete type
	prog := cc.MustAnalyze(`
struct U;
struct U u = {0};
int main() { return 0; }
`)
	c := &Compiler{}
	ce := c.Compile(prog)
	if ce == nil || ce.BugID != "125" {
		t.Fatalf("expected bug 125, got %v", ce)
	}
}

func TestBug137GotoOverDecl(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int *p = 0;
trick:
    if (p)
        return *p;
    int x = 0;
    p = &x;
    goto trick;
    return 9;
}
`)
	c := &Compiler{}
	ce := c.Compile(prog)
	if ce == nil || ce.BugID != "137" {
		t.Fatalf("expected bug 137, got %v", ce)
	}
}

func TestBug143IdenticalAggregateArms(t *testing.T) {
	prog := cc.MustAnalyze(`
struct s { int c; };
struct s a, b;
int d;
int main() { int r = (d ? a : a).c; return r; }
`)
	c := &Compiler{}
	ce := c.Compile(prog)
	if ce == nil || ce.BugID != "143" {
		t.Fatalf("expected bug 143, got %v", ce)
	}
	// the non-degenerate conditional is fine
	ok := cc.MustAnalyze(`
struct s { int c; };
struct s a, b;
int d;
int main() { int r = (d ? a : b).c; return r; }
`)
	if ce := c.Compile(ok); ce != nil {
		t.Errorf("distinct arms crashed: %v", ce)
	}
}

func TestBug150CastChain(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { return (int)(long)(int)1; }`)
	c := &Compiler{}
	ce := c.Compile(prog)
	if ce == nil || ce.BugID != "150" {
		t.Fatalf("expected bug 150, got %v", ce)
	}
}

func TestVerifiedBackendProperty(t *testing.T) {
	// when compilation succeeds, ccomp's semantics equal the reference by
	// construction — the CompCert analogy
	prog := cc.MustAnalyze(`
int main() {
    int s = 0;
    for (int i = 0; i < 5; i++) s += i;
    printf("%d\n", s);
    return s;
}`)
	c := &Compiler{}
	res, ce := c.Run(prog, interp.Config{})
	if ce != nil {
		t.Fatal(ce)
	}
	ref := interp.Run(prog, interp.Config{})
	if res.Exit != ref.Exit || res.Output != ref.Output {
		t.Error("verified backend diverged from reference")
	}
}

func TestHuntFindsEnumeratedCrash(t *testing.T) {
	// SPE enumeration of the Figure 3 seed produces the identical-arm
	// variant (d ? a : a).c, which crashes ccomp's elaborator — the exact
	// mechanism of the paper's CompCert findings
	seed := `
struct s { int c; };
struct s a, b;
int d;
int main() {
    a.c = 1;
    b.c = 2;
    int r = (d ? a : b).c;
    printf("%d\n", r);
    return 0;
}
`
	sk := skeleton.MustBuild(seed)
	var variants []string
	_, err := spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical}, func(v spe.Variant) bool {
		variants = append(variants, v.Source)
		return len(variants) < 300
	})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Hunt(variants, false)
	if err != nil {
		t.Fatal(err)
	}
	found143 := false
	for _, f := range findings {
		if f.BugID == "143" {
			found143 = true
		}
	}
	if !found143 {
		t.Errorf("enumeration did not expose bug 143 over %d variants", len(variants))
	}
	// the original seed itself must not crash
	prog := cc.MustAnalyze(seed)
	if ce := (&Compiler{}).Compile(prog); ce != nil {
		t.Errorf("original seed crashes: %v", ce)
	}
}

func TestRegistryShape(t *testing.T) {
	bugs := Registry()
	if len(bugs) < 5 {
		t.Fatalf("registry has %d bugs", len(bugs))
	}
	fixed := 0
	ids := map[string]bool{}
	for _, b := range bugs {
		if ids[b.ID] {
			t.Errorf("duplicate id %s", b.ID)
		}
		ids[b.ID] = true
		if b.Fixed {
			fixed++
		}
		if b.Signature == "" || b.Trigger == nil {
			t.Errorf("bug %s incomplete", b.ID)
		}
	}
	// the paper: 25 of 29 fixed — a majority fixed here too
	if fixed*2 < len(bugs) {
		t.Errorf("only %d/%d fixed; expected a majority", fixed, len(bugs))
	}
}
