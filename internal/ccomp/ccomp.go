// Package ccomp is the reproduction's second compiler under test, standing
// in for CompCert in the paper's generality experiment (§5.3: "in about
// three weeks, we have reported 29 CompCert crashing bugs ... 25 have been
// fixed").
//
// Like CompCert, ccomp has a semantically trustworthy backend — execution
// delegates to the reference interpreter, the analogue of a verified
// middle-end — so it exhibits no wrong-code bugs at all. Its seeded defects
// are exclusively frontend crashes: the elaboration phase rejects or
// mishandles unusual-but-legal input shapes, exactly the bug class the
// paper found (Appendix A, Figures 12(e) and 12(g): an unchecked
// incomplete type and an "Unbound struct A" assertion in the frontend).
package ccomp

import (
	"fmt"

	"spe/internal/cc"
	"spe/internal/interp"
)

// Bug is a seeded frontend defect.
type Bug struct {
	// ID is the simulated issue number (the paper's CompCert issues 121,
	// 125, ... are the models).
	ID string
	// Signature is the assertion message shown on the crash.
	Signature string
	// Fixed marks bugs addressed upstream (25 of the paper's 29 were
	// fixed); Check still reports them unless testing the fixed build.
	Fixed bool
	// Trigger inspects the analyzed program.
	Trigger func(prog *cc.Program) bool
}

// registry holds the seeded frontend bugs, modeled on the construct
// classes of the paper's CompCert reports.
var registry = []Bug{
	{
		ID:        "121",
		Signature: "Unbound struct: parameter with incomplete struct type",
		Fixed:     true,
		Trigger: func(prog *cc.Program) bool {
			// a function parameter whose struct type has no fields defined
			for _, fd := range prog.Funcs {
				for _, p := range fd.Params {
					if st, ok := p.Type.(*cc.StructType); ok && len(st.Fields) == 0 {
						return true
					}
				}
			}
			return false
		},
	},
	{
		ID:        "125",
		Signature: "Elab: initializer for incomplete union/struct object",
		Fixed:     true,
		Trigger: func(prog *cc.Program) bool {
			// brace-initialized object whose aggregate type is empty
			found := false
			eachVarDecl(prog, func(d *cc.VarDecl) {
				if _, ok := d.Init.(*cc.InitList); !ok {
					return
				}
				if st, ok := d.Type.(*cc.StructType); ok && len(st.Fields) == 0 {
					found = true
				}
			})
			return found
		},
	},
	{
		ID:        "137",
		Signature: "Elab: goto into the scope of a declared object",
		Fixed:     false,
		Trigger: func(prog *cc.Program) bool {
			// a backward goto whose target label precedes a declaration in
			// the same block (the Figure 11(d) shape)
			found := false
			for fi, fd := range prog.Funcs {
				labels := prog.Labels[fi]
				if len(labels) == 0 {
					continue
				}
				var walk func(st cc.Stmt)
				walk = func(st cc.Stmt) {
					switch st := st.(type) {
					case *cc.BlockStmt:
						sawLabel := false
						for _, s := range st.List {
							if _, ok := s.(*cc.LabeledStmt); ok {
								sawLabel = true
							}
							if _, ok := s.(*cc.DeclStmt); ok && sawLabel {
								found = true
							}
							walk(s)
						}
					case *cc.IfStmt:
						walk(st.Then)
						if st.Else != nil {
							walk(st.Else)
						}
					case *cc.WhileStmt:
						walk(st.Body)
					case *cc.DoWhileStmt:
						walk(st.Body)
					case *cc.ForStmt:
						walk(st.Body)
					case *cc.LabeledStmt:
						walk(st.Stmt)
					}
				}
				walk(fd.Body)
			}
			return found
		},
	},
	{
		ID:        "143",
		Signature: "Elab: conditional expression with identical aggregate arms",
		Fixed:     true,
		Trigger: func(prog *cc.Program) bool {
			// struct-typed conditional whose arms are the same variable —
			// the degenerate shape enumeration produces from Figure 3
			found := false
			eachExpr(prog, func(e cc.Expr) {
				ce, ok := e.(*cc.CondExpr)
				if !ok {
					return
				}
				ti, ok1 := ce.T.(*cc.Ident)
				fi, ok2 := ce.F.(*cc.Ident)
				if ok1 && ok2 && ti.Sym != nil && ti.Sym == fi.Sym {
					if _, isStruct := ti.Sym.Type.(*cc.StructType); isStruct {
						found = true
					}
				}
			})
			return found
		},
	},
	{
		ID:        "150",
		Signature: "Elab: redundant cast chain of depth 3",
		Fixed:     false,
		Trigger: func(prog *cc.Program) bool {
			found := false
			eachExpr(prog, func(e cc.Expr) {
				c1, ok := e.(*cc.CastExpr)
				if !ok {
					return
				}
				c2, ok := c1.X.(*cc.CastExpr)
				if !ok {
					return
				}
				if _, ok := c2.X.(*cc.CastExpr); ok {
					found = true
				}
			})
			return found
		},
	},
}

// Registry returns the seeded frontend bugs.
func Registry() []Bug { return append([]Bug(nil), registry...) }

// CrashError is a ccomp frontend crash.
type CrashError struct {
	BugID     string
	Signature string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("ccomp: assertion failed: %s", e.Signature)
}

// Compiler configures a ccomp run. WithFixes drops the bugs the paper
// reports as fixed.
type Compiler struct {
	WithFixes bool
}

// Compile elaborates the program, crashing on seeded frontend bugs. On
// success the "compiled" semantics are, by construction, the reference
// semantics (the verified-backend property).
func (c *Compiler) Compile(prog *cc.Program) *CrashError {
	for i := range registry {
		b := &registry[i]
		if c.WithFixes && b.Fixed {
			continue
		}
		if b.Trigger(prog) {
			return &CrashError{BugID: b.ID, Signature: b.Signature}
		}
	}
	return nil
}

// Run compiles and, on success, executes with reference semantics.
func (c *Compiler) Run(prog *cc.Program, cfg interp.Config) (*interp.Result, *CrashError) {
	if ce := c.Compile(prog); ce != nil {
		return nil, ce
	}
	return interp.Run(prog, cfg), nil
}

func eachVarDecl(prog *cc.Program, f func(*cc.VarDecl)) {
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			f(vd)
		}
	}
	var walk func(st cc.Stmt)
	walk = func(st cc.Stmt) {
		switch st := st.(type) {
		case *cc.BlockStmt:
			for _, s := range st.List {
				walk(s)
			}
		case *cc.DeclStmt:
			for _, d := range st.Decls {
				f(d)
			}
		case *cc.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *cc.WhileStmt:
			walk(st.Body)
		case *cc.DoWhileStmt:
			walk(st.Body)
		case *cc.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			walk(st.Body)
		case *cc.LabeledStmt:
			walk(st.Stmt)
		}
	}
	for _, fd := range prog.Funcs {
		walk(fd.Body)
	}
}

func eachExpr(prog *cc.Program, f func(cc.Expr)) {
	var walkE func(cc.Expr)
	walkE = func(e cc.Expr) {
		if e == nil {
			return
		}
		f(e)
		switch e := e.(type) {
		case *cc.UnaryExpr:
			walkE(e.X)
		case *cc.PostfixExpr:
			walkE(e.X)
		case *cc.BinaryExpr:
			walkE(e.X)
			walkE(e.Y)
		case *cc.AssignExpr:
			walkE(e.LHS)
			walkE(e.RHS)
		case *cc.CondExpr:
			walkE(e.Cond)
			walkE(e.T)
			walkE(e.F)
		case *cc.CallExpr:
			for _, a := range e.Args {
				walkE(a)
			}
		case *cc.IndexExpr:
			walkE(e.X)
			walkE(e.Idx)
		case *cc.MemberExpr:
			walkE(e.X)
		case *cc.CastExpr:
			walkE(e.X)
		case *cc.SizeofExpr:
			walkE(e.X)
		case *cc.CommaExpr:
			for _, x := range e.List {
				walkE(x)
			}
		case *cc.InitList:
			for _, x := range e.List {
				walkE(x)
			}
		}
	}
	var walkS func(st cc.Stmt)
	walkS = func(st cc.Stmt) {
		switch st := st.(type) {
		case *cc.BlockStmt:
			for _, s := range st.List {
				walkS(s)
			}
		case *cc.DeclStmt:
			for _, d := range st.Decls {
				walkE(d.Init)
			}
		case *cc.ExprStmt:
			walkE(st.X)
		case *cc.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *cc.WhileStmt:
			walkE(st.Cond)
			walkS(st.Body)
		case *cc.DoWhileStmt:
			walkS(st.Body)
			walkE(st.Cond)
		case *cc.ForStmt:
			if st.Init != nil {
				walkS(st.Init)
			}
			walkE(st.Cond)
			walkE(st.Post)
			walkS(st.Body)
		case *cc.ReturnStmt:
			walkE(st.X)
		case *cc.LabeledStmt:
			walkS(st.Stmt)
		}
	}
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			walkE(vd.Init)
		}
	}
	for _, fd := range prog.Funcs {
		walkS(fd.Body)
	}
}

// Hunt enumerates skeleton variants of the corpus and collects the seeded
// frontend crashes found — the paper's three-week CompCert campaign in
// miniature. It returns distinct bug IDs with sample test cases.
type HuntFinding struct {
	BugID     string
	Signature string
	TestCase  string
}

// Hunt runs a crash-hunting campaign over pre-analyzed variants supplied
// by the caller as source texts.
func Hunt(variants []string, withFixes bool) ([]HuntFinding, error) {
	comp := &Compiler{WithFixes: withFixes}
	seen := map[string]bool{}
	var out []HuntFinding
	for _, src := range variants {
		f, err := cc.Parse(src)
		if err != nil {
			continue
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			continue
		}
		if ce := comp.Compile(prog); ce != nil && !seen[ce.BugID] {
			seen[ce.BugID] = true
			out = append(out, HuntFinding{BugID: ce.BugID, Signature: ce.Signature, TestCase: src})
		}
	}
	return out, nil
}
