package skeleton

import (
	"math/big"
	"strings"
	"testing"

	"spe/internal/partition"
)

// figure6 is the paper's Figure 6 program.
const figure6 = `
int main() {
    int a = 1, b = 0;
    if (a) {
        int c = 3, d = 5;
        b = c + d;
    }
    printf("%d", a);
    printf("%d", b);
    return 0;
}
`

func TestBuildFigure6(t *testing.T) {
	sk := MustBuild(figure6)
	// holes: a(if), b, c, d, a(printf), b(printf) = 6 uses
	if len(sk.Holes) != 6 {
		t.Fatalf("holes = %d, want 6", len(sk.Holes))
	}
	// groups: {a} and {b} separate (different initializers 1 vs 0);
	// {c} and {d} separate (3 vs 5). All singleton groups.
	if len(sk.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(sk.Groups))
	}
	prob := sk.Problem()
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// inner holes (b = c + d) admit all four variables; outer holes two.
	naive := prob.NaiveCount()
	// naive = 2*2*4*4*4*2 ... order: a(if):2 vars visible of type int? all
	// four variables are int; outer holes see a,b only => 2; inner three
	// see 4 => 4^3; two printf holes => 2*2. Total 2*4*4*4*2*2 = 512.
	if naive.Cmp(big.NewInt(512)) != 0 {
		t.Errorf("naive count = %s, want 512", naive)
	}
	// all groups are singletons, so canonical == naive
	if got := prob.CanonicalCount(); got.Cmp(naive) != 0 {
		t.Errorf("canonical = %s, want %s (singleton groups)", got, naive)
	}
}

// figure6Uninit drops the distinct initializers so that a,b and c,d become
// interchangeable pairs, recovering the paper's Figure 7 structure.
const figure6Uninit = `
int main() {
    int a, b;
    if (1) {
        int c, d;
        b = c + d;
    }
    a = b;
    b = a;
    return 0;
}
`

func TestBuildInterchangeableGroups(t *testing.T) {
	sk := MustBuild(figure6Uninit)
	// groups: {a,b} (same scope, no init) and {c,d}
	if len(sk.Groups) != 2 {
		for _, g := range sk.Groups {
			t.Logf("group %d: %s (%d syms)", g.Index, g.Key(), len(g.Syms))
		}
		t.Fatalf("groups = %d, want 2", len(sk.Groups))
	}
	sizes := []int{len(sk.Groups[0].Syms), len(sk.Groups[1].Syms)}
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Errorf("group sizes = %v, want [2 2]", sizes)
	}
	prob := sk.Problem()
	// holes: b, c, d (inner), a, b, b, a (outer) = 7; inner 3 holes admit
	// both groups, outer 4 admit only the {a,b} group.
	if prob.NumHoles != 7 {
		t.Fatalf("holes = %d, want 7", prob.NumHoles)
	}
	naive := prob.NaiveCount()
	// inner holes: 4 choices each; outer: 2 each => 4^3 * 2^4 = 1024
	if naive.Cmp(big.NewInt(1024)) != 0 {
		t.Errorf("naive = %s, want 1024", naive)
	}
	canon := prob.CanonicalCount()
	burn := prob.OrbitCountBurnside()
	if canon.Cmp(burn) != 0 {
		t.Errorf("canonical %s != Burnside %s", canon, burn)
	}
	if canon.Cmp(naive) >= 0 {
		t.Errorf("canonical %s not smaller than naive %s", canon, naive)
	}
}

func TestFigure7Exact(t *testing.T) {
	// Exactly the paper's Figure 7: 3 global holes over {a,b}, 2 local
	// holes over {a,b,c,d}. Expect canonical = 40 (DESIGN.md §2).
	src := `
int a, b;
int main() {
    a = b;
    b = a;
    if (1) {
        int c, d;
        c = d;
    }
    a = a;
    return 0;
}
`
	sk := MustBuild(src)
	if len(sk.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(sk.Groups))
	}
	prob := sk.Problem()
	if prob.NumHoles != 8 {
		t.Fatalf("holes = %d, want 8", prob.NumHoles)
	}
	// 6 global-only holes (a=b; b=a; a=a) and 2 dual holes (c=d)
	dual := 0
	for _, as := range prob.Allowed {
		if len(as) == 2 {
			dual++
		}
	}
	if dual != 2 {
		t.Fatalf("dual holes = %d, want 2", dual)
	}
}

func TestOriginalFillRendersIdentity(t *testing.T) {
	sk := MustBuild(figure6)
	out := sk.Render(sk.OriginalFill())
	if !strings.Contains(out, "b = c + d") {
		t.Errorf("original fill mangled:\n%s", out)
	}
}

func TestRenderFill(t *testing.T) {
	sk := MustBuild(`
int a, b;
int main() {
    a = b;
    return 0;
}
`)
	prob := sk.Problem()
	var variants []string
	prob.EachCanonical(func(fill []partition.VarRef) bool {
		variants = append(variants, sk.Render(fill))
		return true
	})
	// 2 holes, one group {a,b}: canonical fillings aa, ab => 2 variants
	if len(variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(variants))
	}
	joined := strings.Join(variants, "\n====\n")
	if !strings.Contains(joined, "a = a") || !strings.Contains(joined, "a = b") {
		t.Errorf("unexpected variants:\n%s", joined)
	}
	// every variant must reparse and reanalyze
	for _, v := range variants {
		MustBuild(v)
	}
}

func TestRenderedVariantsAreValidPrograms(t *testing.T) {
	sk := MustBuild(figure6Uninit)
	prob := sk.Problem()
	n := 0
	prob.EachCanonical(func(fill []partition.VarRef) bool {
		src := sk.Render(fill)
		MustBuild(src) // panics (failing the test) if invalid
		n++
		return n < 200
	})
	if n == 0 {
		t.Fatal("no variants rendered")
	}
}

func TestFuncProblemsIntraProcedural(t *testing.T) {
	sk := MustBuild(`
int g1, g2;
int f(int x, int y) { return x + y + g1; }
int main() { g2 = f(g1, g2); return g2; }
`)
	fps := sk.FuncProblems()
	if len(fps) != 2 {
		t.Fatalf("func problems = %d, want 2", len(fps))
	}
	// f's holes: x, y, g1 = 3; main's: g2, g1, g2, g2 = 4
	if fps[0].Problem.NumHoles != 3 || fps[1].Problem.NumHoles != 4 {
		t.Errorf("hole counts = %d, %d; want 3, 4",
			fps[0].Problem.NumHoles, fps[1].Problem.NumHoles)
	}
	for _, fp := range fps {
		if err := fp.Problem.Validate(); err != nil {
			t.Errorf("func %d: %v", fp.FuncIdx, err)
		}
	}
	// intra-procedural product must not exceed the inter-procedural count
	intra := new(big.Int).Mul(fps[0].Problem.CanonicalCount(), fps[1].Problem.CanonicalCount())
	inter := sk.Problem().CanonicalCount()
	if intra.Cmp(inter) > 0 {
		t.Errorf("intra product %s exceeds inter count %s", intra, inter)
	}
}

func TestRenderFuncVariant(t *testing.T) {
	sk := MustBuild(`
int g;
int f(int x) { return x + g; }
int main() { g = f(g); return g; }
`)
	fps := sk.FuncProblems()
	fp := fps[0] // function f
	n := 0
	fp.Problem.EachCanonical(func(fill []partition.VarRef) bool {
		src := sk.RenderFunc(fp, fill)
		MustBuild(src)
		n++
		return true
	})
	if n < 2 {
		t.Errorf("function f yielded %d variants, want >= 2", n)
	}
}

func TestComputeStats(t *testing.T) {
	sk := MustBuild(figure6)
	st := sk.ComputeStats()
	if st.Holes != 6 {
		t.Errorf("Holes = %d, want 6", st.Holes)
	}
	if st.Funcs != 1 {
		t.Errorf("Funcs = %d, want 1", st.Funcs)
	}
	if st.Scopes != 2 {
		t.Errorf("Scopes = %d, want 2", st.Scopes)
	}
	if st.Types != 1 {
		t.Errorf("Types = %d, want 1", st.Types)
	}
	if st.Vars <= 0 {
		t.Errorf("Vars = %v, want > 0", st.Vars)
	}
}

func TestTypeStrictFilling(t *testing.T) {
	sk := MustBuild(`
int i1, i2;
double d1, d2;
int main() {
    i1 = i2;
    d1 = d2;
    return 0;
}
`)
	prob := sk.Problem()
	// int holes admit only {i1,i2}; double holes only {d1,d2}
	for hi, h := range sk.Holes {
		for _, g := range h.Allowed {
			gt := sk.Groups[g].Syms[0].Type.String()
			ot := h.Ident.Sym.Type.String()
			if gt != ot {
				t.Errorf("hole %d (%s) admits group of type %s", hi, ot, gt)
			}
		}
	}
	if got := prob.NaiveCount(); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("naive = %s, want 16 (2^4)", got)
	}
}

func TestSkeletonString(t *testing.T) {
	sk := MustBuild("int a, b;\nint main() { a = b; return 0; }")
	s := sk.String()
	if !strings.Contains(s, "<1> = <2>") {
		t.Errorf("skeleton rendering missing holes:\n%s", s)
	}
}

func TestShadowingRestrictsGroups(t *testing.T) {
	sk := MustBuild(`
int x;
int main() {
    int x = 1;
    x = x + 1;
    return x;
}
`)
	// uses of x resolve to the local; the shadowed global is not visible,
	// so every hole admits exactly one variable.
	prob := sk.Problem()
	if got := prob.NaiveCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("naive = %s, want 1 (shadowed global not admissible)", got)
	}
}

func TestParamsGroupSeparateFromLocals(t *testing.T) {
	sk := MustBuild(`
int f(int x, int y) {
    int a, b;
    a = x;
    b = y;
    return a + b;
}
int main() { return f(1, 2); }
`)
	// {x,y} interchangeable params; {a,b} interchangeable locals
	if len(sk.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(sk.Groups))
	}
	prob := sk.Problem()
	canon := prob.CanonicalCount()
	burn := prob.OrbitCountBurnside()
	if canon.Cmp(burn) != 0 {
		t.Errorf("canonical %s != Burnside %s", canon, burn)
	}
}
