package skeleton

import (
	"testing"

	"spe/internal/cc"
	"spe/internal/partition"
)

const instSrc = `
int a, b;
int main() {
    int c = 0, d = 0;
    b = c + d;
    if (a) { int e = 1; c = e + b; }
    for (int i = 0; i < 4; i++) d += i;
    return a + b + c + d;
}
`

// enumerateFills walks the canonical whole-skeleton fillings via the
// per-function problems (mirroring spe.EnumerateFills without importing spe,
// which would cycle).
func enumerateFills(sk *Skeleton, limit int) [][]partition.VarRef {
	fps := sk.FuncProblems()
	whole := sk.OriginalFill()
	var out [][]partition.VarRef
	var rec func(i int) bool
	rec = func(i int) bool {
		if len(out) >= limit {
			return false
		}
		if i == len(fps) {
			out = append(out, append([]partition.VarRef(nil), whole...))
			return true
		}
		fp := fps[i]
		ok := true
		fp.Problem.EachCanonical(func(fill []partition.VarRef) bool {
			for j, vr := range fill {
				whole[fp.HoleIdx[j]] = partition.VarRef{Group: fp.GroupIdx[vr.Group], Index: vr.Index}
			}
			if !rec(i + 1) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	rec(0)
	return out
}

// TestInstanceRenderMatchesRender is the core byte-identity property: for
// every canonical filling, patching the instance and printing it produces
// exactly what the render path produces.
func TestInstanceRenderMatchesRender(t *testing.T) {
	sk := MustBuild(instSrc)
	in := sk.NewInstance()
	in.Checked = true
	for i, fill := range enumerateFills(sk, 200) {
		if err := in.Instantiate(fill); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		if got, want := in.Render(), sk.Render(fill); got != want {
			t.Fatalf("fill %d: instance render diverges:\n--- instance ---\n%s--- render ---\n%s", i, got, want)
		}
	}
}

// TestInstanceDeltaPatching asserts instantiating A then B equals
// instantiating B on a fresh instance (the diff-based patching is exact).
func TestInstanceDeltaPatching(t *testing.T) {
	sk := MustBuild(instSrc)
	fills := enumerateFills(sk, 50)
	walker := sk.NewInstance()
	for i, fill := range fills {
		if err := walker.Instantiate(fill); err != nil {
			t.Fatal(err)
		}
		fresh := sk.NewInstance()
		if err := fresh.Instantiate(fill); err != nil {
			t.Fatal(err)
		}
		if walker.Render() != fresh.Render() {
			t.Fatalf("fill %d: walked instance diverges from fresh instance", i)
		}
	}
}

// TestInstanceTemplateIsolation asserts instantiation never touches the
// shared template: the skeleton's own AST still renders the original
// program and its holes still bind their original symbols.
func TestInstanceTemplateIsolation(t *testing.T) {
	sk := MustBuild(instSrc)
	before := cc.PrintFile(sk.Prog.File)
	origSyms := make([]*cc.Symbol, len(sk.Holes))
	for i, h := range sk.Holes {
		origSyms[i] = h.Ident.Sym
	}

	a, b := sk.NewInstance(), sk.NewInstance()
	fills := enumerateFills(sk, 20)
	for _, fill := range fills {
		if err := a.Instantiate(fill); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Instantiate(fills[len(fills)-1]); err != nil {
		t.Fatal(err)
	}

	if got := cc.PrintFile(sk.Prog.File); got != before {
		t.Errorf("template AST mutated by instance use:\n--- after ---\n%s--- before ---\n%s", got, before)
	}
	for i, h := range sk.Holes {
		if h.Ident.Sym != origSyms[i] {
			t.Errorf("template hole %d rebound", i)
		}
	}
	// two instances must not alias each other either
	if err := a.Instantiate(fills[0]); err != nil {
		t.Fatal(err)
	}
	if b.Render() != sk.Render(fills[len(fills)-1]) {
		t.Error("instantiating one instance disturbed another")
	}
}

// TestInstanceRestore asserts Restore returns to the original program.
func TestInstanceRestore(t *testing.T) {
	sk := MustBuild(instSrc)
	in := sk.NewInstance()
	orig := in.Render()
	fills := enumerateFills(sk, 10)
	if err := in.Instantiate(fills[len(fills)-1]); err != nil {
		t.Fatal(err)
	}
	if in.Render() == orig && len(fills) > 1 {
		t.Fatal("instantiation did not change the program; restore test is vacuous")
	}
	if err := in.Restore(); err != nil {
		t.Fatal(err)
	}
	if got := in.Render(); got != orig {
		t.Errorf("restore did not return to the original:\n--- got ---\n%s--- want ---\n%s", got, orig)
	}
	if got, want := in.Render(), sk.Render(sk.OriginalFill()); got != want {
		t.Errorf("restored instance diverges from rendered original fill")
	}
}

// TestInstanceProgramIsAnalyzed asserts the instance's program is usable as
// a typed program: uses bind symbols of matching type and the program's Uses
// list tracks the patched idents.
func TestInstanceProgramIsAnalyzed(t *testing.T) {
	sk := MustBuild(instSrc)
	in := sk.NewInstance()
	fills := enumerateFills(sk, 10)
	if err := in.Instantiate(fills[len(fills)-1]); err != nil {
		t.Fatal(err)
	}
	prog := in.Program()
	if len(prog.Uses) != len(sk.Holes) {
		t.Fatalf("instance program has %d uses, want %d", len(prog.Uses), len(sk.Holes))
	}
	for i, use := range prog.Uses {
		if use.Sym == nil {
			t.Fatalf("use %d unresolved after instantiation", i)
		}
		if got, want := use.Sym.Type.String(), sk.Holes[i].Ident.Sym.Type.String(); got != want {
			t.Errorf("use %d: type %s, want %s", i, got, want)
		}
		if use.Name != use.Sym.Name {
			t.Errorf("use %d: printed name %q diverges from symbol %q", i, use.Name, use.Sym.Name)
		}
	}
}

// TestInstanceFillLengthMismatch asserts the error path.
func TestInstanceFillLengthMismatch(t *testing.T) {
	sk := MustBuild(instSrc)
	in := sk.NewInstance()
	if err := in.Instantiate(nil); err == nil {
		t.Error("nil fill accepted")
	}
}
