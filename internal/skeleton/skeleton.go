// Package skeleton derives syntactic skeletons from analyzed C programs and
// maps them onto the abstract set-partition problems solved by the
// enumeration engine.
//
// Following the paper's tool (§2: test programs are "derived by replacing e
// with d", i.e. by re-filling variable *uses*), every variable reference is
// a hole and declarations stay fixed. The hole variable set v_i of a hole is
// the set of variables visible at the use site whose type matches the
// original reference (type-compatible filling keeps every enumerated
// program well-typed).
//
// Variables are partitioned into interchangeability groups: two variables
// are exchangeable by a compact alpha-renaming that fixes the skeleton iff
// they are declared in the same scope with the same type, the same constant
// initializer shape, the same storage class, and are visible at exactly the
// same holes. The grouped restricted-growth-string enumerator then yields
// exactly one representative per equivalence class of this relation, which
// is a sound refinement of full program alpha-equivalence (DESIGN.md §2).
package skeleton

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"spe/internal/cc"
	"spe/internal/partition"
)

// Hole is a variable-use position in the skeleton.
type Hole struct {
	Index   int       // position in source order
	Ident   *cc.Ident // the underlying use
	FuncIdx int       // enclosing function index
	// Allowed lists the interchangeability groups admissible at this hole,
	// in increasing group order.
	Allowed []int
}

// Group is a set of mutually interchangeable variables, ordered by
// declaration.
type Group struct {
	Index int
	Syms  []*cc.Symbol
	// Global reports whether the group's variables are declared at file
	// scope (used by the paper-faithful two-level algorithm).
	Global bool
	// FuncIdx is the declaring function (-1 for globals).
	FuncIdx int
	// ScopeDepth is the lexical depth of the declaring scope.
	ScopeDepth int
}

// Key returns a short descriptor of the group for diagnostics.
func (g *Group) Key() string {
	if len(g.Syms) == 0 {
		return "empty"
	}
	s := g.Syms[0]
	return fmt.Sprintf("scope%d/%s", s.Scope.ID, s.Type.String())
}

// Skeleton is a program skeleton: the fixed syntax plus its holes and
// variable groups.
type Skeleton struct {
	Prog   *cc.Program
	Holes  []*Hole
	Groups []*Group
	// symToRef maps symbol ID to its (group, index) coordinates.
	symToRef map[int]partition.VarRef
}

// Build extracts the skeleton of an analyzed program.
func Build(prog *cc.Program) (*Skeleton, error) {
	sk := &Skeleton{Prog: prog, symToRef: make(map[int]partition.VarRef)}

	// Holes: every resolved variable use, in source order.
	for i, use := range prog.Uses {
		if use.Sym == nil {
			return nil, fmt.Errorf("skeleton: unresolved use %q at %v", use.Name, use.Pos)
		}
		sk.Holes = append(sk.Holes, &Hole{Index: i, Ident: use, FuncIdx: use.FuncIdx})
	}

	// Visibility profile per symbol: bitset over holes.
	visProfile := make(map[int]string)
	{
		bits := make(map[int][]byte)
		for hi, h := range sk.Holes {
			for _, s := range h.Ident.Visible {
				b := bits[s.ID]
				if b == nil {
					b = make([]byte, (len(sk.Holes)+7)/8)
					bits[s.ID] = b
				}
				b[hi/8] |= 1 << (hi % 8)
			}
		}
		for id, b := range bits {
			visProfile[id] = string(b)
		}
	}

	// Group variables by (scope, type, decl shape, visibility profile).
	type groupKey struct {
		scopeID int
		typ     string
		init    string
		storage cc.StorageClass
		vis     string
	}
	byKey := make(map[groupKey]*Group)
	var keysInOrder []groupKey
	for _, sym := range prog.Symbols {
		if sym.Kind == cc.SymFunc {
			continue
		}
		key := groupKey{
			scopeID: sym.Scope.ID,
			typ:     sym.Type.String(),
			init:    sym.InitLiteral,
			storage: sym.Storage,
			vis:     visProfile[sym.ID], // unused symbols have empty profiles
		}
		g, ok := byKey[key]
		if !ok {
			g = &Group{
				Index:      len(keysInOrder),
				Global:     sym.Scope.Parent == nil,
				FuncIdx:    sym.FuncIdx,
				ScopeDepth: sym.Scope.Depth,
			}
			byKey[key] = g
			keysInOrder = append(keysInOrder, key)
		}
		g.Syms = append(g.Syms, sym)
		sk.symToRef[sym.ID] = partition.VarRef{Group: g.Index, Index: len(g.Syms) - 1}
	}
	sk.Groups = make([]*Group, len(keysInOrder))
	for _, k := range keysInOrder {
		g := byKey[k]
		sk.Groups[g.Index] = g
	}

	// Allowed groups per hole: groups whose representative is visible at
	// the hole and whose type matches the original reference's type.
	for hi, h := range sk.Holes {
		origType := h.Ident.Sym.Type.String()
		visible := make(map[int]bool, len(h.Ident.Visible))
		for _, s := range h.Ident.Visible {
			visible[s.ID] = true
		}
		for _, g := range sk.Groups {
			if len(g.Syms) == 0 || g.Syms[0].Type.String() != origType {
				continue
			}
			if !visible[g.Syms[0].ID] {
				continue
			}
			h.Allowed = append(h.Allowed, g.Index)
		}
		if len(h.Allowed) == 0 {
			return nil, fmt.Errorf("skeleton: hole %d (%q at %v) admits no variables", hi, h.Ident.Name, h.Ident.Pos)
		}
		sort.Ints(h.Allowed)
	}
	return sk, nil
}

// MustBuild parses, analyzes, and builds a skeleton from source, panicking
// on error; intended for tests and examples.
func MustBuild(src string) *Skeleton {
	prog := cc.MustAnalyze(src)
	sk, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return sk
}

// Problem converts the whole skeleton into a single abstract enumeration
// problem (the paper's inter-procedural granularity).
func (sk *Skeleton) Problem() *partition.Problem {
	p := &partition.Problem{
		NumHoles:   len(sk.Holes),
		GroupSizes: make([]int, len(sk.Groups)),
		Allowed:    make([][]int, len(sk.Holes)),
	}
	for i, g := range sk.Groups {
		p.GroupSizes[i] = len(g.Syms)
	}
	for i, h := range sk.Holes {
		p.Allowed[i] = h.Allowed
	}
	return p
}

// FuncProblem is the enumeration problem of one function (intra-procedural
// granularity): its holes, with group indices remapped densely.
type FuncProblem struct {
	FuncIdx int
	Problem *partition.Problem
	// HoleIdx maps the problem's hole positions back to skeleton holes.
	HoleIdx []int
	// GroupIdx maps the problem's dense group indices back to skeleton
	// groups.
	GroupIdx []int
}

// FuncProblems splits the skeleton into one problem per function, the
// paper's default intra-procedural enumeration granularity (§4.3). Holes
// outside any function (global initializers) are gathered into a pseudo
// function with index -1, placed first when present.
func (sk *Skeleton) FuncProblems() []*FuncProblem {
	byFunc := make(map[int][]*Hole)
	var order []int
	for _, h := range sk.Holes {
		if _, seen := byFunc[h.FuncIdx]; !seen {
			order = append(order, h.FuncIdx)
		}
		byFunc[h.FuncIdx] = append(byFunc[h.FuncIdx], h)
	}
	sort.Ints(order)
	var out []*FuncProblem
	for _, fi := range order {
		holes := byFunc[fi]
		fp := &FuncProblem{FuncIdx: fi}
		denseOf := make(map[int]int)
		for _, h := range holes {
			fp.HoleIdx = append(fp.HoleIdx, h.Index)
			for _, g := range h.Allowed {
				if _, ok := denseOf[g]; !ok {
					denseOf[g] = len(fp.GroupIdx)
					fp.GroupIdx = append(fp.GroupIdx, g)
				}
			}
		}
		sort.Ints(fp.GroupIdx)
		for dense, g := range fp.GroupIdx {
			denseOf[g] = dense
		}
		prob := &partition.Problem{
			NumHoles:   len(holes),
			GroupSizes: make([]int, len(fp.GroupIdx)),
			Allowed:    make([][]int, len(holes)),
		}
		for dense, g := range fp.GroupIdx {
			prob.GroupSizes[dense] = len(sk.Groups[g].Syms)
		}
		for i, h := range holes {
			allowed := make([]int, len(h.Allowed))
			for j, g := range h.Allowed {
				allowed[j] = denseOf[g]
			}
			sort.Ints(allowed)
			prob.Allowed[i] = allowed
		}
		fp.Problem = prob
		out = append(out, fp)
	}
	return out
}

// OriginalFill returns the filling corresponding to the original program's
// own variable choices.
func (sk *Skeleton) OriginalFill() []partition.VarRef {
	fill := make([]partition.VarRef, len(sk.Holes))
	for i, h := range sk.Holes {
		fill[i] = sk.symToRef[h.Ident.Sym.ID]
	}
	return fill
}

// Render prints the program realized by the given whole-skeleton filling.
func (sk *Skeleton) Render(fill []partition.VarRef) string {
	if len(fill) != len(sk.Holes) {
		panic(fmt.Sprintf("skeleton: fill length %d, want %d", len(fill), len(sk.Holes)))
	}
	names := make(map[*cc.Ident]string, len(fill))
	for i, vr := range fill {
		g := sk.Groups[vr.Group]
		names[sk.Holes[i].Ident] = g.Syms[vr.Index].Name
	}
	p := cc.Printer{Rename: func(id *cc.Ident) string {
		if n, ok := names[id]; ok {
			return n
		}
		return id.Name
	}}
	return p.File(sk.Prog.File)
}

// RenderFunc renders the program with only the holes of one function
// problem re-filled (other holes keep their original variables).
func (sk *Skeleton) RenderFunc(fp *FuncProblem, fill []partition.VarRef) string {
	whole := sk.OriginalFill()
	for i, vr := range fill {
		g := sk.Groups[fp.GroupIdx[vr.Group]]
		whole[fp.HoleIdx[i]] = partition.VarRef{Group: fp.GroupIdx[vr.Group], Index: vr.Index}
		_ = g
	}
	return sk.Render(whole)
}

// DeclHoleFactor returns the contribution of declaration holes to the
// paper's naive enumeration baseline. The paper's skeletons hole the
// declared names as well as the uses (Figure 6: "int <>=1, <>=0"), so its
// naive count multiplies, per declaration, the number of same-type
// variables available in the declaring scope chain (Figure 6's 2^5 * 4^5
// counts two choices for each outer declaration and four for each inner
// one). The SPE solution set quotients those choices away completely —
// every arrangement of declared names within a scope is alpha-equivalent —
// so only the naive baseline carries this factor.
func (sk *Skeleton) DeclHoleFactor() *big.Int {
	factor := big.NewInt(1)
	for _, sym := range sk.Prog.Symbols {
		if sym.Kind == cc.SymFunc {
			continue
		}
		n := 0
		for _, other := range sk.Prog.Symbols {
			if other.Kind == cc.SymFunc || other.Type.String() != sym.Type.String() {
				continue
			}
			// other is in sym's scope chain?
			for sc := sym.Scope; sc != nil; sc = sc.Parent {
				if other.Scope == sc {
					n++
					break
				}
			}
		}
		if n > 1 {
			factor.Mul(factor, big.NewInt(int64(n)))
		}
	}
	return factor
}

// Stats summarizes a skeleton with the metrics of the paper's Table 2.
type Stats struct {
	Holes  int     // number of holes
	Scopes int     // scopes declaring at least one variable
	Funcs  int     // function definitions
	Types  int     // distinct variable types
	Vars   float64 // average size of the hole variable set |v_i|
}

// ComputeStats returns the Table 2 metrics for the skeleton.
func (sk *Skeleton) ComputeStats() Stats {
	st := Stats{Holes: len(sk.Holes), Funcs: len(sk.Prog.Funcs)}
	scopes := make(map[int]bool)
	types := make(map[string]bool)
	for _, sym := range sk.Prog.Symbols {
		if sym.Kind == cc.SymFunc {
			continue
		}
		scopes[sym.Scope.ID] = true
		types[sym.Type.String()] = true
	}
	st.Scopes = len(scopes)
	st.Types = len(types)
	if len(sk.Holes) > 0 {
		total := 0
		for _, h := range sk.Holes {
			for _, g := range h.Allowed {
				total += len(sk.Groups[g].Syms)
			}
		}
		st.Vars = float64(total) / float64(len(sk.Holes))
	}
	return st
}

// String renders the skeleton with holes shown as numbered boxes, for
// diagnostics and documentation.
func (sk *Skeleton) String() string {
	idx := make(map[*cc.Ident]int, len(sk.Holes))
	for i, h := range sk.Holes {
		idx[h.Ident] = i
	}
	p := cc.Printer{Rename: func(id *cc.Ident) string {
		if i, ok := idx[id]; ok {
			return fmt.Sprintf("<%d>", i+1)
		}
		return id.Name
	}}
	return strings.TrimRight(p.File(sk.Prog.File), "\n")
}
