package skeleton

// This file implements AST-resident variant instantiation. The historical
// pipeline rendered each filling to C text and re-lexed/re-parsed/
// re-analyzed it before testing — discarding, for every variant, exactly
// the structure the skeleton guarantees is shared. An Instance keeps the
// analyzed program resident: one clone of the template AST whose hole
// Idents are patched in place per filling, preserving the sema invariants
// (symbol binding, types) by construction, so the interpreter and compilers
// consume the variant with no front-end work at all.

import (
	"fmt"

	"spe/internal/cc"
	"spe/internal/partition"
)

// Instance is a privately owned clone of the skeleton's analyzed program
// whose holes can be rebound in place. The clone shares the template's
// symbols, scopes, and types (read-only after analysis) but owns every tree
// node, so concurrent Instances never alias mutable state — give each
// goroutine its own (see spe.Pool for the pooled entry point).
//
// The zero-cost contract: Instantiate diffs the requested filling against
// the instance's current one and patches only the holes that changed, so
// walking nearby fillings (the campaign engine's stride-neighbor shards)
// costs a handful of pointer writes per variant.
type Instance struct {
	sk    *Skeleton
	prog  *cc.Program
	holes []*cc.Ident // clone-side hole idents, aligned with sk.Holes
	cur   []partition.VarRef
	orig  []partition.VarRef
	// Checked enables invariant-checked rebinding (cc.RebindVarChecked):
	// every patch asserts visibility and type compatibility before
	// applying. It is the skeleton half of the campaign's -paranoid mode.
	Checked bool
}

// NewInstance clones the template for in-place instantiation. The clone
// starts at the original program's own filling.
func (sk *Skeleton) NewInstance() *Instance {
	prog, idents := cc.CloneProgram(sk.Prog)
	in := &Instance{
		sk:    sk,
		prog:  prog,
		holes: make([]*cc.Ident, len(sk.Holes)),
		cur:   sk.OriginalFill(),
		orig:  sk.OriginalFill(),
	}
	for i, h := range sk.Holes {
		in.holes[i] = idents[h.Ident]
	}
	return in
}

// Program returns the instance's typed program reflecting the current
// filling. The pointer stays valid across Instantiate calls but the tree it
// names is patched in place by them: callers must finish consuming (or
// render) the program before the next Instantiate.
func (in *Instance) Program() *cc.Program { return in.prog }

// Fill returns a copy of the instance's current filling.
func (in *Instance) Fill() []partition.VarRef {
	return append([]partition.VarRef(nil), in.cur...)
}

// HoleIdents exposes the clone-side hole use sites, aligned with the
// skeleton's Holes: HoleIdents()[i].Sym is the variable the i-th hole is
// currently bound to. This is the hole→use-site metadata the backends key
// their per-skeleton caches on (minicc records which IR sites each ident
// feeds and patches only those per filling). The slice and its idents are
// owned by the instance — callers must treat both as read-only and rebind
// exclusively through Instantiate.
func (in *Instance) HoleIdents() []*cc.Ident { return in.holes }

// Instantiate patches the instance to the given whole-skeleton filling,
// rebinding only the holes whose variable changed since the last call.
func (in *Instance) Instantiate(fill []partition.VarRef) error {
	if len(fill) != len(in.holes) {
		return fmt.Errorf("skeleton: instantiate: fill length %d, want %d", len(fill), len(in.holes))
	}
	for i, vr := range fill {
		if vr == in.cur[i] {
			continue
		}
		sym := in.sk.Groups[vr.Group].Syms[vr.Index]
		if in.Checked {
			if err := cc.RebindVarChecked(in.holes[i], sym); err != nil {
				return fmt.Errorf("skeleton: instantiate hole %d: %w", i, err)
			}
		} else {
			cc.RebindVar(in.holes[i], sym)
		}
		in.cur[i] = vr
	}
	return nil
}

// Restore rebinds the instance back to the template's original filling.
func (in *Instance) Restore() error { return in.Instantiate(in.orig) }

// Render prints the instance's current program. The output is byte-identical
// to Skeleton.Render of the same filling: rebinding patches each hole's
// printed name to exactly the name the render path's Rename hook would have
// substituted.
func (in *Instance) Render() string { return cc.PrintFile(in.prog.File) }
