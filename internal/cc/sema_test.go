package cc

import (
	"testing"
)

func TestAnalyzeResolvesUses(t *testing.T) {
	prog := MustAnalyze(`
int a, b = 1;
int main() {
    b = b - a;
    if (a)
        a = a - b;
    return 0;
}
`)
	// uses: b, b, a, a, a, a, b -> 7 variable references
	if len(prog.Uses) != 7 {
		t.Fatalf("uses = %d, want 7", len(prog.Uses))
	}
	for _, u := range prog.Uses {
		if u.Sym == nil {
			t.Errorf("use %q at %v unresolved", u.Name, u.Pos)
		}
		if len(u.Visible) == 0 {
			t.Errorf("use %q has empty visible set", u.Name)
		}
	}
	// all uses see both globals
	for _, u := range prog.Uses {
		if len(u.Visible) != 2 {
			t.Errorf("use %q sees %d symbols, want 2", u.Name, len(u.Visible))
		}
	}
}

func TestAnalyzeScopesFigure6(t *testing.T) {
	// Paper Figure 6: a, b global to main; c, d in the if-block scope.
	prog := MustAnalyze(`
int main() {
    int a = 1, b = 0;
    if (a) {
        int c = 3, d = 5;
        b = c + d;
    }
    printf("%d", a);
    printf("%d", b);
    return 0;
}
`)
	// holes: a(if) b c d (inner), a, b (printf) = 6 uses
	if len(prog.Uses) != 6 {
		t.Fatalf("uses = %d, want 6", len(prog.Uses))
	}
	byName := map[string]*Ident{}
	for _, u := range prog.Uses {
		byName[u.Name] = u
	}
	// the use of c sees a, b, c (d not yet declared at c's initializer? no:
	// c is used in "b = c + d" after both declared, so sees all four)
	if got := len(byName["c"].Visible); got != 4 {
		t.Errorf("use of c sees %d symbols, want 4", got)
	}
	// the printf use of a sees only a, b
	var lastA *Ident
	for _, u := range prog.Uses {
		if u.Name == "a" {
			lastA = u
		}
	}
	if got := len(lastA.Visible); got != 2 {
		t.Errorf("printf use of a sees %d symbols, want 2", got)
	}
}

func TestAnalyzeVisibilityOrderAndShadowing(t *testing.T) {
	prog := MustAnalyze(`
int x = 1;
int main() {
    int y = 2;
    {
        int x = 3;
        y = x;
    }
    return y;
}
`)
	// the use of x in "y = x" must resolve to the inner x
	var useX *Ident
	for _, u := range prog.Uses {
		if u.Name == "x" {
			useX = u
		}
	}
	if useX == nil || useX.Sym.Scope.Depth < 2 {
		t.Fatalf("x resolved to %+v", useX.Sym)
	}
	// shadowed global x must not be in the visible set twice
	names := map[string]int{}
	for _, s := range useX.Visible {
		names[s.Name]++
	}
	if names["x"] != 1 {
		t.Errorf("x appears %d times in visible set", names["x"])
	}
}

func TestAnalyzeDeclarationPointVisibility(t *testing.T) {
	prog := MustAnalyze(`
int main() {
    int a = 1;
    int b = a;
    int c = 2;
    return b + c;
}
`)
	// the use of a in b's initializer must not see b or c yet
	useA := prog.Uses[0]
	if useA.Name != "a" {
		t.Fatalf("first use = %q", useA.Name)
	}
	if len(useA.Visible) != 1 || useA.Visible[0].Name != "a" {
		var names []string
		for _, s := range useA.Visible {
			names = append(names, s.Name)
		}
		t.Errorf("a's visible set = %v, want [a]", names)
	}
}

func TestAnalyzeParamsAndFuncs(t *testing.T) {
	prog := MustAnalyze(`
int g;
int add(int x, int y) { return x + y + g; }
int main() { return add(1, 2); }
`)
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	add := prog.Funcs[0]
	if add.Params[0].Sym == nil || add.Params[0].Sym.Kind != SymParam {
		t.Errorf("param x = %+v", add.Params[0].Sym)
	}
	// uses in add: x, y, g
	if len(prog.Uses) != 3 {
		t.Errorf("uses = %d, want 3 (function names are not holes)", len(prog.Uses))
	}
}

func TestAnalyzeTypes(t *testing.T) {
	prog := MustAnalyze(`
struct s { int n; char c; };
struct s v;
int arr[3];
int main() {
    int *p = &arr[0];
    double d = 1.5;
    v.n = 1;
    p[1] = (int)d;
    return v.n + *p;
}
`)
	_ = prog
	f := prog.Funcs[0]
	// v.n assignment has type int
	as := f.Body.List[2].(*ExprStmt).X.(*AssignExpr)
	if as.Type.String() != "int" {
		t.Errorf("v.n type = %s", as.Type)
	}
	m := as.LHS.(*MemberExpr)
	if m.Type.String() != "int" {
		t.Errorf("member type = %s", m.Type)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []string{
		"int main() { return x; }",                                    // undeclared
		"int main() { int a; int a; return 0; }",                      // redeclared
		"int main() { 1 = 2; return 0; }",                             // non-lvalue assign
		"int main() { goto nowhere; return 0; }",                      // missing label
		"int main() { return missing(); }",                            // undeclared function
		"struct s { int n; }; int main() { struct s v; return v.q; }", // no field
		"int main() { int a; return a.x; }",                           // member of non-struct
		"int main() { int a; return *a; }",                            // deref non-pointer
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if _, err := Analyze(f); err == nil {
			t.Errorf("Analyze(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeBuiltins(t *testing.T) {
	prog := MustAnalyze(`int main() { printf("%d", 1); exit(0); abort(); return 0; }`)
	if len(prog.Uses) != 0 {
		t.Errorf("builtin calls must not create holes; uses = %d", len(prog.Uses))
	}
}

func TestAnalyzeForScope(t *testing.T) {
	prog := MustAnalyze(`
int main() {
    int s = 0;
    for (int i = 0; i < 4; i++)
        s = s + i;
    return s;
}
`)
	// uses: i (cond), i (post), s, s, i (body), s (return) = 6
	if len(prog.Uses) != 6 {
		t.Fatalf("uses = %d, want 6", len(prog.Uses))
	}
	// the return-site use of s must not see i
	last := prog.Uses[len(prog.Uses)-1]
	if last.Name != "s" {
		t.Fatalf("last use = %q", last.Name)
	}
	for _, v := range last.Visible {
		if v.Name == "i" {
			t.Error("loop variable i escapes its for-scope")
		}
	}
	// a body use of i sees both s and i
	for _, u := range prog.Uses {
		if u.Name == "i" && len(u.Visible) != 2 {
			t.Errorf("use of i sees %d symbols, want 2", len(u.Visible))
		}
	}
}

func TestAnalyzeInitializerSpellings(t *testing.T) {
	prog := MustAnalyze(`
int a = 1, b = 1, c = 2, d;
int main() { return a + b + c + d; }
`)
	sym := func(name string) *Symbol {
		for _, s := range prog.Symbols {
			if s.Name == name {
				return s
			}
		}
		return nil
	}
	if sym("a").InitLiteral != sym("b").InitLiteral {
		t.Error("a and b have equal initializers but different spellings")
	}
	if sym("a").InitLiteral == sym("c").InitLiteral {
		t.Error("a and c have different initializers but equal spellings")
	}
	if sym("d").DeclHasInit {
		t.Error("d has no initializer")
	}
}

func TestAnalyzeUsesInSourceOrder(t *testing.T) {
	prog := MustAnalyze(`
int a, b;
int main() {
    a = b;
    b = a;
    return 0;
}
`)
	var names []string
	for _, u := range prog.Uses {
		names = append(names, u.Name)
	}
	want := []string{"a", "b", "b", "a"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("uses order = %v, want %v", names, want)
		}
	}
}
