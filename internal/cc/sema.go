package cc

import "fmt"

// Symbol is a resolved program entity: variable, parameter, or function.
type Symbol struct {
	ID      int // dense, unique within a File
	Name    string
	Type    Type
	Kind    SymKind
	Scope   *Scope
	FuncIdx int // index of the enclosing function among FuncDecls; -1 for globals
	// DeclHasInit records whether the declaration carries an initializer;
	// part of the "declaration shape" used to form interchangeability
	// groups (two variables with different initializers are not
	// exchangeable by a renaming that fixes the skeleton).
	DeclHasInit bool
	// InitLiteral is the canonical spelling of a constant initializer, or
	// "" when absent/non-constant. Two variables are interchangeable only
	// if these agree.
	InitLiteral string
	Storage     StorageClass
}

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymVar SymKind = iota
	SymParam
	SymFunc
)

func (k SymKind) String() string {
	switch k {
	case SymVar:
		return "variable"
	case SymParam:
		return "parameter"
	default:
		return "function"
	}
}

// Scope is a lexical scope. The global scope has Parent == nil. Function
// parameters live in a scope between the global scope and the body block.
type Scope struct {
	ID      int
	Parent  *Scope
	Syms    []*Symbol // in declaration order
	FuncIdx int       // -1 for the global scope
	Depth   int
}

// Lookup finds name in this scope or an ancestor; nil if absent.
func (s *Scope) Lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.Parent {
		for i := len(sc.Syms) - 1; i >= 0; i-- {
			if sc.Syms[i].Name == name {
				return sc.Syms[i]
			}
		}
	}
	return nil
}

// SemaError describes a semantic error.
type SemaError struct {
	Pos Pos
	Msg string
}

func (e *SemaError) Error() string { return fmt.Sprintf("%s: semantic error: %s", e.Pos, e.Msg) }

// Program is a semantically analyzed translation unit.
type Program struct {
	File    *File
	Global  *Scope
	Scopes  []*Scope  // all scopes, by ID
	Symbols []*Symbol // all symbols, by ID
	Funcs   []*FuncDecl
	// Uses lists every variable-reference Ident in source order: these are
	// the skeleton holes.
	Uses []*Ident
	// Labels maps function index to its declared label set.
	Labels []map[string]bool
}

type semaCtx struct {
	prog    *Program
	errs    []error
	curFunc int
}

// Analyze resolves names, scopes, and types for file, returning the
// analyzed Program. Builtin functions printf, abort, and exit are
// predeclared. Analysis continues after recoverable errors; the first error
// (if any) is returned alongside the partial result.
func Analyze(file *File) (*Program, error) {
	prog := &Program{File: file}
	ctx := &semaCtx{prog: prog, curFunc: -1}
	global := ctx.newScope(nil, -1)
	prog.Global = global

	// predeclare builtins
	for _, b := range []struct {
		name string
		typ  *FuncType
	}{
		{"printf", &FuncType{Ret: TypeInt, Params: []Type{&PointerType{Elem: TypeChar}}}},
		{"abort", &FuncType{Ret: TypeVoid}},
		{"exit", &FuncType{Ret: TypeVoid, Params: []Type{TypeInt}}},
	} {
		ctx.declare(global, &Symbol{Name: b.name, Type: b.typ, Kind: SymFunc, FuncIdx: -1}, Pos{0, 0})
	}

	// pass 1: declare all functions (allows forward calls)
	for _, d := range file.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			if existing := findOwn(global, fd.Name); existing != nil {
				if existing.Kind != SymFunc {
					ctx.errorf(fd.Pos, "%s redeclared as function", fd.Name)
				}
				fd.Sym = existing
				continue
			}
			params := make([]Type, len(fd.Params))
			for i, p := range fd.Params {
				params[i] = p.Type
			}
			sym := &Symbol{Name: fd.Name, Type: &FuncType{Ret: fd.Ret, Params: params}, Kind: SymFunc, FuncIdx: -1}
			ctx.declare(global, sym, fd.Pos)
			fd.Sym = sym
		}
	}

	// pass 2: globals and function bodies in source order
	funcIdx := 0
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *VarDecl:
			ctx.declareVar(global, d)
		case *StructDecl:
			// nothing to resolve
		case *FuncDecl:
			if d.Body == nil {
				continue
			}
			ctx.curFunc = funcIdx
			prog.Funcs = append(prog.Funcs, d)
			prog.Labels = append(prog.Labels, collectLabels(d.Body))
			paramScope := ctx.newScope(global, funcIdx)
			for _, p := range d.Params {
				if p.Name == "" {
					continue
				}
				sym := &Symbol{Name: p.Name, Type: p.Type, Kind: SymParam, FuncIdx: funcIdx}
				ctx.declare(paramScope, sym, p.Pos)
				p.Sym = sym
			}
			ctx.block(paramScope, d.Body)
			ctx.checkLabels(d, funcIdx)
			funcIdx++
			ctx.curFunc = -1
		}
	}
	var first error
	if len(ctx.errs) > 0 {
		first = ctx.errs[0]
	}
	return prog, first
}

// MustAnalyze parses and analyzes src, panicking on any error.
func MustAnalyze(src string) *Program {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	p, err := Analyze(f)
	if err != nil {
		panic(err)
	}
	return p
}

func findOwn(s *Scope, name string) *Symbol {
	for _, sym := range s.Syms {
		if sym.Name == name {
			return sym
		}
	}
	return nil
}

func (c *semaCtx) errorf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &SemaError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *semaCtx) newScope(parent *Scope, funcIdx int) *Scope {
	depth := 0
	if parent != nil {
		depth = parent.Depth + 1
	}
	s := &Scope{ID: len(c.prog.Scopes), Parent: parent, FuncIdx: funcIdx, Depth: depth}
	c.prog.Scopes = append(c.prog.Scopes, s)
	return s
}

func (c *semaCtx) declare(s *Scope, sym *Symbol, pos Pos) {
	if existing := findOwn(s, sym.Name); existing != nil && sym.Kind != SymFunc {
		c.errorf(pos, "%s redeclared in this scope", sym.Name)
	}
	sym.ID = len(c.prog.Symbols)
	sym.Scope = s
	c.prog.Symbols = append(c.prog.Symbols, sym)
	s.Syms = append(s.Syms, sym)
}

func (c *semaCtx) declareVar(s *Scope, d *VarDecl) {
	// The initializer is resolved before the name becomes visible, matching
	// C's rule for the subset (we disallow self-reference in initializers).
	if d.Init != nil {
		c.expr(s, d.Init)
	}
	spelling := constantSpelling(d.Init)
	if spelling == "≠" {
		// non-constant initializers are never interchangeable: make the
		// spelling unique per declaration site
		spelling = fmt.Sprintf("≠%d:%d", d.Pos.Line, d.Pos.Col)
	}
	sym := &Symbol{
		Name:        d.Name,
		Type:        d.Type,
		Kind:        SymVar,
		FuncIdx:     c.curFunc,
		DeclHasInit: d.Init != nil,
		InitLiteral: spelling,
		Storage:     d.Storage,
	}
	c.declare(s, sym, d.Pos)
	d.Sym = sym
}

// constantSpelling returns a canonical string for simple constant
// initializers, used to decide variable interchangeability.
func constantSpelling(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("i%d", e.Val)
	case *FloatLit:
		return fmt.Sprintf("f%g", e.Val)
	case *CharLit:
		return fmt.Sprintf("c%d", e.Val)
	case *StringLit:
		return "s" + e.Val
	case *UnaryExpr:
		if inner := constantSpelling(e.X); inner != "" {
			return e.Op + inner
		}
	case *InitList:
		s := "{"
		for _, x := range e.List {
			inner := constantSpelling(x)
			if inner == "" {
				return "≠" // non-constant: never interchangeable
			}
			s += inner + ","
		}
		return s + "}"
	}
	return "≠"
}

func (c *semaCtx) block(parent *Scope, b *BlockStmt) {
	scope := c.newScope(parent, c.curFunc)
	b.Scope = scope
	for _, st := range b.List {
		c.stmt(scope, st)
	}
}

func (c *semaCtx) stmt(s *Scope, st Stmt) {
	switch st := st.(type) {
	case *BlockStmt:
		c.block(s, st)
	case *DeclStmt:
		for _, d := range st.Decls {
			c.declareVar(s, d)
		}
	case *ExprStmt:
		c.expr(s, st.X)
	case *EmptyStmt:
	case *IfStmt:
		c.expr(s, st.Cond)
		c.stmt(s, st.Then)
		if st.Else != nil {
			c.stmt(s, st.Else)
		}
	case *WhileStmt:
		c.expr(s, st.Cond)
		c.stmt(s, st.Body)
	case *DoWhileStmt:
		c.stmt(s, st.Body)
		c.expr(s, st.Cond)
	case *ForStmt:
		scope := c.newScope(s, c.curFunc)
		st.Scope = scope
		if st.Init != nil {
			c.stmt(scope, st.Init)
		}
		if st.Cond != nil {
			c.expr(scope, st.Cond)
		}
		if st.Post != nil {
			c.expr(scope, st.Post)
		}
		c.stmt(scope, st.Body)
	case *ReturnStmt:
		if st.X != nil {
			c.expr(s, st.X)
		}
	case *BreakStmt, *ContinueStmt, *GotoStmt:
	case *LabeledStmt:
		c.stmt(s, st.Stmt)
	default:
		panic(fmt.Sprintf("sema: unknown statement %T", st))
	}
}

// visibleSymbols snapshots all variable/parameter symbols visible from s,
// outermost first, shadowed names excluded.
func visibleSymbols(s *Scope) []*Symbol {
	var chain []*Scope
	for sc := s; sc != nil; sc = sc.Parent {
		chain = append(chain, sc)
	}
	shadow := make(map[string]bool)
	var out []*Symbol
	// innermost-first to honor shadowing, then reverse for stable order
	for _, sc := range chain {
		for i := len(sc.Syms) - 1; i >= 0; i-- {
			sym := sc.Syms[i]
			if sym.Kind == SymFunc || shadow[sym.Name] {
				continue
			}
			shadow[sym.Name] = true
			out = append(out, sym)
		}
	}
	// reverse into outermost-first declaration order
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (c *semaCtx) expr(s *Scope, e Expr) Type {
	switch e := e.(type) {
	case *Ident:
		sym := s.Lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos, "undeclared identifier %q", e.Name)
			return nil
		}
		e.Sym = sym
		if sym.Kind != SymFunc {
			e.Visible = visibleSymbols(s)
			e.FuncIdx = c.curFunc
			c.prog.Uses = append(c.prog.Uses, e)
		}
		return Decay(sym.Type)
	case *IntLit:
		return e.Type
	case *FloatLit:
		return e.Type
	case *CharLit:
		return e.Type
	case *StringLit:
		return e.Type
	case *UnaryExpr:
		xt := c.expr(s, e.X)
		switch e.Op {
		case "*":
			if pt, ok := Decay(xt).(*PointerType); ok {
				e.Type = pt.Elem
			} else if xt != nil {
				c.errorf(e.Pos, "cannot dereference non-pointer type %s", xt)
			}
		case "&":
			if xt != nil {
				e.Type = &PointerType{Elem: undecayed(e.X, xt)}
			}
		case "!":
			e.Type = TypeInt
		default:
			e.Type = promote(xt)
		}
		return e.Type
	case *PostfixExpr:
		e.Type = c.expr(s, e.X)
		return e.Type
	case *BinaryExpr:
		xt := c.expr(s, e.X)
		yt := c.expr(s, e.Y)
		switch e.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			e.Type = TypeInt
		default:
			e.Type = arithResult(Decay(xt), Decay(yt))
		}
		return e.Type
	case *AssignExpr:
		lt := c.expr(s, e.LHS)
		c.expr(s, e.RHS)
		if !isLvalue(e.LHS) {
			c.errorf(e.Pos, "assignment to non-lvalue")
		}
		e.Type = lt
		return e.Type
	case *CondExpr:
		c.expr(s, e.Cond)
		tt := c.expr(s, e.T)
		ft := c.expr(s, e.F)
		e.Type = arithResult(Decay(tt), Decay(ft))
		if e.Type == nil {
			e.Type = Decay(tt)
		}
		return e.Type
	case *CallExpr:
		sym := s.Lookup(e.Fun.Name)
		if sym == nil {
			c.errorf(e.Pos, "call to undeclared function %q", e.Fun.Name)
		} else {
			e.Fun.Sym = sym
			if ft, ok := sym.Type.(*FuncType); ok {
				e.Type = ft.Ret
			} else {
				c.errorf(e.Pos, "%q is not a function", e.Fun.Name)
			}
		}
		for _, a := range e.Args {
			c.expr(s, a)
		}
		if e.Type == nil {
			e.Type = TypeInt
		}
		return e.Type
	case *IndexExpr:
		xt := c.expr(s, e.X)
		c.expr(s, e.Idx)
		switch t := Decay(xt).(type) {
		case *PointerType:
			e.Type = t.Elem
		default:
			if xt != nil {
				c.errorf(e.Pos, "cannot index type %s", xt)
			}
		}
		return e.Type
	case *MemberExpr:
		xt := c.expr(s, e.X)
		var st *StructType
		if e.Arrow {
			pt, ok := Decay(xt).(*PointerType)
			if !ok {
				c.errorf(e.Pos, "-> applied to non-pointer")
				return nil
			}
			st, ok = pt.Elem.(*StructType)
			if !ok {
				c.errorf(e.Pos, "-> applied to pointer to non-struct")
				return nil
			}
		} else {
			var ok bool
			st, ok = xt.(*StructType)
			if !ok {
				c.errorf(e.Pos, ". applied to non-struct type")
				return nil
			}
		}
		idx := st.FieldIndex(e.Name)
		if idx < 0 {
			c.errorf(e.Pos, "struct %s has no field %q", st.Tag, e.Name)
			return nil
		}
		e.Type = st.Fields[idx].Type
		return e.Type
	case *CastExpr:
		c.expr(s, e.X)
		e.Type = e.To
		return e.Type
	case *SizeofExpr:
		if e.X != nil {
			c.expr(s, e.X)
		}
		e.Type = TypeULong
		return e.Type
	case *CommaExpr:
		var last Type
		for _, x := range e.List {
			last = c.expr(s, x)
		}
		e.Type = last
		return e.Type
	case *InitList:
		for _, x := range e.List {
			c.expr(s, x)
		}
		e.Type = nil
		return nil
	default:
		panic(fmt.Sprintf("sema: unknown expression %T", e))
	}
}

// undecayed returns the type of x before array decay when x denotes an
// object (used for &arr).
func undecayed(x Expr, decayed Type) Type {
	if id, ok := x.(*Ident); ok && id.Sym != nil {
		return id.Sym.Type
	}
	return decayed
}

func isLvalue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return true
	case *IndexExpr, *MemberExpr:
		return true
	case *UnaryExpr:
		return e.Op == "*"
	default:
		return false
	}
}

func promote(t Type) Type {
	b, ok := Decay(t).(*BasicType)
	if !ok {
		return Decay(t)
	}
	switch b.Kind {
	case Char, UChar, Short, UShort:
		return TypeInt
	}
	return b
}

// arithResult computes the usual arithmetic conversion result; pointer
// arithmetic yields the pointer type.
func arithResult(a, b Type) Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if pt, ok := a.(*PointerType); ok {
		return pt
	}
	if pt, ok := b.(*PointerType); ok {
		return pt
	}
	ab, aok := a.(*BasicType)
	bb, bok := b.(*BasicType)
	if !aok || !bok {
		return a
	}
	pa, pb := promote(ab).(*BasicType), promote(bb).(*BasicType)
	if pa.Kind >= pb.Kind {
		return pa
	}
	return pb
}

func collectLabels(b *BlockStmt) map[string]bool {
	labels := make(map[string]bool)
	var walk func(Stmt)
	walk = func(st Stmt) {
		switch st := st.(type) {
		case *LabeledStmt:
			labels[st.Label] = true
			walk(st.Stmt)
		case *BlockStmt:
			for _, s := range st.List {
				walk(s)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *DoWhileStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		}
	}
	walk(b)
	return labels
}

func (c *semaCtx) checkLabels(fd *FuncDecl, funcIdx int) {
	labels := c.prog.Labels[funcIdx]
	var walk func(Stmt)
	walk = func(st Stmt) {
		switch st := st.(type) {
		case *GotoStmt:
			if !labels[st.Label] {
				c.errorf(st.Pos, "goto undefined label %q", st.Label)
			}
		case *LabeledStmt:
			walk(st.Stmt)
		case *BlockStmt:
			for _, s := range st.List {
				walk(s)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *DoWhileStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		}
	}
	walk(fd.Body)
}
