package cc

import (
	"fmt"
	"strings"
)

// Printer renders an AST back to C source. It is precedence-aware (emitting
// parentheses only where required) and supports two hooks used by the SPE
// machinery:
//
//   - Rename maps an *Ident to the name to print, letting skeleton fillings
//     be rendered without mutating or cloning the AST;
//   - Omit suppresses statements, letting the Orion-style mutation baseline
//     render statement-deletion variants without cloning.
type Printer struct {
	// Rename, if non-nil, supplies the name for each identifier use.
	Rename func(*Ident) string
	// RenameDecl, if non-nil, supplies the declared name for variables and
	// parameters (used by alpha-canonicalization, which renames
	// declarations and uses consistently).
	RenameDecl func(*VarDecl) string
	// Omit, if non-nil, reports statements to drop (replaced by ';').
	Omit map[Stmt]bool

	sb     strings.Builder
	indent int
}

// PrintFile renders a whole translation unit with default settings.
func PrintFile(f *File) string {
	var p Printer
	return p.File(f)
}

// File renders a translation unit.
func (p *Printer) File(f *File) string {
	p.sb.Reset()
	printed := make(map[string]bool)
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *StructDecl:
			p.structDef(d.Type)
			printed[d.Type.Tag] = true
		case *VarDecl:
			// a global whose type is a struct defined inline elsewhere
			p.varDecl(d, true)
			p.raw(";\n")
		case *FuncDecl:
			p.funcDecl(d)
		}
	}
	return p.sb.String()
}

func (p *Printer) raw(s string) { p.sb.WriteString(s) }

func (p *Printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	p.sb.WriteString(s)
}

func (p *Printer) structDef(st *StructType) {
	p.line("struct " + st.Tag + " {\n")
	p.indent++
	for _, f := range st.Fields {
		p.line(declString(f.Type, f.Name) + ";\n")
	}
	p.indent--
	p.line("};\n")
}

// declString renders a declaration of name with type t using C declarator
// syntax (handling pointers and arrays).
func declString(t Type, name string) string {
	switch t := t.(type) {
	case *PointerType:
		inner := declString(t.Elem, "*"+name)
		return inner
	case *ArrayType:
		return declString(t.Elem, fmt.Sprintf("%s[%d]", name, t.Len))
	default:
		if name == "" {
			return t.String()
		}
		return t.String() + " " + name
	}
}

func storagePrefix(s StorageClass) string {
	switch s {
	case StorageStatic:
		return "static "
	case StorageExtern:
		return "extern "
	default:
		return ""
	}
}

func (p *Printer) varDecl(d *VarDecl, top bool) {
	if top {
		p.line("")
	}
	p.raw(storagePrefix(d.Storage))
	name := d.Name
	if p.RenameDecl != nil {
		name = p.RenameDecl(d)
	}
	p.raw(declString(d.Type, name))
	if d.Init != nil {
		p.raw(" = ")
		p.expr(d.Init, precAssign)
	}
}

func (p *Printer) funcDecl(d *FuncDecl) {
	p.line(declString(d.Ret, d.Name))
	p.raw("(")
	if len(d.Params) == 0 {
		p.raw("void")
	}
	for i, par := range d.Params {
		if i > 0 {
			p.raw(", ")
		}
		name := par.Name
		if p.RenameDecl != nil {
			name = p.RenameDecl(par)
		}
		p.raw(declString(par.Type, name))
	}
	p.raw(")")
	if d.Body == nil {
		p.raw(";\n")
		return
	}
	p.raw(" ")
	p.blockInline(d.Body)
	p.raw("\n")
}

func (p *Printer) blockInline(b *BlockStmt) {
	p.raw("{\n")
	p.indent++
	for _, st := range b.List {
		p.stmt(st)
	}
	p.indent--
	p.line("}")
}

func (p *Printer) stmt(st Stmt) {
	if p.Omit != nil && p.Omit[st] {
		p.line(";\n")
		return
	}
	switch st := st.(type) {
	case *BlockStmt:
		p.line("")
		p.blockInline(st)
		p.raw("\n")
	case *DeclStmt:
		// one declarator per line so that printing is a fixed point under
		// reparsing (a multi-declarator statement reparses to several)
		for _, d := range st.Decls {
			p.line("")
			p.varDecl(d, false)
			p.raw(";\n")
		}
	case *ExprStmt:
		p.line("")
		p.expr(st.X, precComma)
		p.raw(";\n")
	case *EmptyStmt:
		p.line(";\n")
	case *IfStmt:
		p.line("if (")
		p.expr(st.Cond, precComma)
		p.raw(")")
		p.nested(st.Then)
		if st.Else != nil {
			p.line("else")
			p.nested(st.Else)
		}
	case *WhileStmt:
		p.line("while (")
		p.expr(st.Cond, precComma)
		p.raw(")")
		p.nested(st.Body)
	case *DoWhileStmt:
		p.line("do")
		p.nested(st.Body)
		p.line("while (")
		p.expr(st.Cond, precComma)
		p.raw(");\n")
	case *ForStmt:
		p.line("for (")
		switch init := st.Init.(type) {
		case nil:
			p.raw(";")
		case *DeclStmt:
			for i, d := range init.Decls {
				if i > 0 {
					p.raw(", ")
					p.raw(d.Name)
					if d.Init != nil {
						p.raw(" = ")
						p.expr(d.Init, precAssign)
					}
					continue
				}
				p.varDecl(d, false)
			}
			p.raw(";")
		case *ExprStmt:
			p.expr(init.X, precComma)
			p.raw(";")
		}
		if st.Cond != nil {
			p.raw(" ")
			p.expr(st.Cond, precComma)
		}
		p.raw(";")
		if st.Post != nil {
			p.raw(" ")
			p.expr(st.Post, precComma)
		}
		p.raw(")")
		p.nested(st.Body)
	case *ReturnStmt:
		if st.X == nil {
			p.line("return;\n")
		} else {
			p.line("return ")
			p.expr(st.X, precComma)
			p.raw(";\n")
		}
	case *BreakStmt:
		p.line("break;\n")
	case *ContinueStmt:
		p.line("continue;\n")
	case *GotoStmt:
		p.line("goto " + st.Label + ";\n")
	case *LabeledStmt:
		if _, ok := st.Stmt.(*EmptyStmt); ok {
			p.line(st.Label + ":;\n")
			return
		}
		p.line(st.Label + ":\n")
		p.stmt(st.Stmt)
	default:
		panic(fmt.Sprintf("printer: unknown statement %T", st))
	}
}

// nested renders a statement as the body of a control construct.
func (p *Printer) nested(st Stmt) {
	if b, ok := st.(*BlockStmt); ok && (p.Omit == nil || !p.Omit[st]) {
		p.raw(" ")
		p.blockInline(b)
		p.raw("\n")
		return
	}
	p.raw("\n")
	p.indent++
	p.stmt(st)
	p.indent--
}

// Operator precedence levels for printing; higher binds tighter.
const (
	precComma = iota
	precAssign
	precCond
	precLor
	precLand
	precBitor
	precBitxor
	precBitand
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
	precPrimary
)

var binPrec = map[string]int{
	"||": precLor, "&&": precLand, "|": precBitor, "^": precBitxor,
	"&": precBitand, "==": precEq, "!=": precEq,
	"<": precRel, ">": precRel, "<=": precRel, ">=": precRel,
	"<<": precShift, ">>": precShift,
	"+": precAdd, "-": precAdd,
	"*": precMul, "/": precMul, "%": precMul,
}

// expr renders e; parens are emitted when e's precedence is below min.
func (p *Printer) expr(e Expr, min int) {
	switch e := e.(type) {
	case *Ident:
		if p.Rename != nil {
			p.raw(p.Rename(e))
		} else {
			p.raw(e.Name)
		}
	case *IntLit:
		p.raw(e.Text)
	case *FloatLit:
		p.raw(e.Text)
	case *CharLit:
		p.raw("'" + escapeChar(e.Val) + "'")
	case *StringLit:
		p.raw("\"" + escapeString(e.Val) + "\"")
	case *UnaryExpr:
		p.parenIf(precUnary < min, func() {
			p.raw(e.Op)
			// avoid gluing "- -x" into "--x"
			if u, ok := e.X.(*UnaryExpr); ok && (u.Op == e.Op && (e.Op == "-" || e.Op == "+" || e.Op == "&")) {
				p.raw(" ")
			}
			p.expr(e.X, precUnary)
		})
	case *PostfixExpr:
		p.parenIf(precPostfix < min, func() {
			p.expr(e.X, precPostfix)
			p.raw(e.Op)
		})
	case *BinaryExpr:
		prec := binPrec[e.Op]
		p.parenIf(prec < min, func() {
			p.expr(e.X, prec)
			p.raw(" " + e.Op + " ")
			p.expr(e.Y, prec+1)
		})
	case *AssignExpr:
		p.parenIf(precAssign < min, func() {
			p.expr(e.LHS, precUnary)
			p.raw(" " + e.Op + " ")
			p.expr(e.RHS, precAssign)
		})
	case *CondExpr:
		p.parenIf(precCond < min, func() {
			p.expr(e.Cond, precLor)
			p.raw(" ? ")
			p.expr(e.T, precAssign)
			p.raw(" : ")
			p.expr(e.F, precCond)
		})
	case *CallExpr:
		p.parenIf(precPostfix < min, func() {
			p.expr(e.Fun, precPostfix)
			p.raw("(")
			for i, a := range e.Args {
				if i > 0 {
					p.raw(", ")
				}
				p.expr(a, precAssign)
			}
			p.raw(")")
		})
	case *IndexExpr:
		p.parenIf(precPostfix < min, func() {
			p.expr(e.X, precPostfix)
			p.raw("[")
			p.expr(e.Idx, precComma)
			p.raw("]")
		})
	case *MemberExpr:
		p.parenIf(precPostfix < min, func() {
			p.expr(e.X, precPostfix)
			if e.Arrow {
				p.raw("->")
			} else {
				p.raw(".")
			}
			p.raw(e.Name)
		})
	case *CastExpr:
		p.parenIf(precUnary < min, func() {
			p.raw("(" + declString(e.To, "") + ")")
			p.expr(e.X, precUnary)
		})
	case *SizeofExpr:
		p.parenIf(precUnary < min, func() {
			if e.OfType != nil {
				p.raw("sizeof(" + declString(e.OfType, "") + ")")
			} else {
				p.raw("sizeof ")
				p.expr(e.X, precUnary)
			}
		})
	case *CommaExpr:
		p.parenIf(precComma < min, func() {
			for i, x := range e.List {
				if i > 0 {
					p.raw(", ")
				}
				p.expr(x, precAssign)
			}
		})
	case *InitList:
		p.raw("{")
		for i, x := range e.List {
			if i > 0 {
				p.raw(", ")
			}
			p.expr(x, precAssign)
		}
		p.raw("}")
	default:
		panic(fmt.Sprintf("printer: unknown expression %T", e))
	}
}

func (p *Printer) parenIf(need bool, f func()) {
	if need {
		p.raw("(")
		f()
		p.raw(")")
		return
	}
	f()
}

func escapeChar(c byte) string {
	switch c {
	case '\n':
		return "\\n"
	case '\t':
		return "\\t"
	case '\r':
		return "\\r"
	case 0:
		return "\\0"
	case '\\':
		return "\\\\"
	case '\'':
		return "\\'"
	}
	if c < 32 || c > 126 {
		return fmt.Sprintf("\\x%02x", c)
	}
	return string(c)
}

func escapeString(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			sb.WriteString("\\\"")
		case '\\':
			sb.WriteString("\\\\")
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		default:
			if c < 32 || c > 126 {
				fmt.Fprintf(&sb, "\\x%02x", c)
			} else {
				sb.WriteByte(c)
			}
		}
	}
	return sb.String()
}
