// Package cc implements a self-contained frontend for a substantial subset
// of C: lexer, recursive-descent parser, typed AST, scope-aware semantic
// analysis, and a precedence-aware source printer. It is the substrate on
// which skeletal program enumeration (skeleton extraction, enumeration, and
// differential compiler testing) operates.
//
// The subset covers the features exercised by the SPE paper's evaluation
// corpus: global and local variable declarations with initializers; the
// integer and floating basic types with signedness; pointers, fixed-size
// arrays, and struct types; functions with parameters; the full C statement
// repertoire including goto/labels; and the full C expression grammar with
// assignment operators, the conditional operator, casts, sizeof, and
// pointer/array/struct accesses.
package cc

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT
	STRINGLIT
	KEYWORD
	PUNCT
)

func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case IDENT:
		return "identifier"
	case INTLIT:
		return "integer literal"
	case FLOATLIT:
		return "float literal"
	case CHARLIT:
		return "char literal"
	case STRINGLIT:
		return "string literal"
	case KEYWORD:
		return "keyword"
	case PUNCT:
		return "punctuator"
	default:
		return "unknown"
	}
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string // raw text; for INTLIT the literal spelling, etc.
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords recognized by the lexer. Unsupported C keywords are still lexed
// as keywords so the parser can report a precise error.
var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"struct": true, "union": true, "enum": true, "typedef": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true, "goto": true,
	"switch": true, "case": true, "default": true,
	"sizeof": true, "static": true, "extern": true, "const": true,
	"volatile": true, "register": true, "auto": true, "inline": true,
}

// typeKeywords are keywords that can begin a declaration.
var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"struct": true, "static": true, "extern": true, "const": true,
	"volatile": true, "register": true,
}

// IsTypeStart reports whether tok can begin a declaration.
func IsTypeStart(tok Token) bool {
	return tok.Kind == KEYWORD && typeKeywords[tok.Text]
}
