package cc

// This file defines the abstract syntax tree for the C subset. Nodes carry
// positions for error reporting and, after semantic analysis, resolved
// symbol and type information.

// Node is the interface implemented by all AST nodes.
type Node interface{ NodePos() Pos }

// File is a translation unit: a sequence of top-level declarations.
type File struct {
	Decls []Decl
	// Structs maps struct tags to their resolved types (filled by sema).
	Structs map[string]*StructType
}

// NodePos implements Node.
func (f *File) NodePos() Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].NodePos()
	}
	return Pos{1, 1}
}

// Decl is a top-level or block-level declaration.
type Decl interface {
	Node
	declNode()
}

// StorageClass describes a declaration's storage class specifier.
type StorageClass int

// Storage classes.
const (
	StorageNone StorageClass = iota
	StorageStatic
	StorageExtern
)

// VarDecl declares a single variable (a multi-declarator declaration is
// parsed into several VarDecls sharing a position).
type VarDecl struct {
	Pos     Pos
	Name    string
	Type    Type
	Init    Expr // nil if none; for arrays/structs an InitList
	Storage StorageClass
	Sym     *Symbol // filled by sema
}

func (d *VarDecl) declNode() {}

// NodePos implements Node.
func (d *VarDecl) NodePos() Pos { return d.Pos }

// FuncDecl declares (and possibly defines) a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *BlockStmt // nil for prototypes
	Sym    *Symbol
}

func (d *FuncDecl) declNode() {}

// NodePos implements Node.
func (d *FuncDecl) NodePos() Pos { return d.Pos }

// StructDecl introduces a struct type definition.
type StructDecl struct {
	Pos  Pos
	Type *StructType
}

func (d *StructDecl) declNode() {}

// NodePos implements Node.
func (d *StructDecl) NodePos() Pos { return d.Pos }

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-enclosed statement list opening a new scope.
type BlockStmt struct {
	Pos   Pos
	List  []Stmt
	Scope *Scope // filled by sema
}

func (s *BlockStmt) stmtNode() {}

// NodePos implements Node.
func (s *BlockStmt) NodePos() Pos { return s.Pos }

// DeclStmt wraps one or more variable declarations appearing in a block.
type DeclStmt struct {
	Pos   Pos
	Decls []*VarDecl
}

func (s *DeclStmt) stmtNode() {}

// NodePos implements Node.
func (s *DeclStmt) NodePos() Pos { return s.Pos }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *ExprStmt) stmtNode() {}

// NodePos implements Node.
func (s *ExprStmt) NodePos() Pos { return s.Pos }

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Pos Pos }

func (s *EmptyStmt) stmtNode() {}

// NodePos implements Node.
func (s *EmptyStmt) NodePos() Pos { return s.Pos }

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

func (s *IfStmt) stmtNode() {}

// NodePos implements Node.
func (s *IfStmt) NodePos() Pos { return s.Pos }

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

func (s *WhileStmt) stmtNode() {}

// NodePos implements Node.
func (s *WhileStmt) NodePos() Pos { return s.Pos }

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

func (s *DoWhileStmt) stmtNode() {}

// NodePos implements Node.
func (s *DoWhileStmt) NodePos() Pos { return s.Pos }

// ForStmt is a for loop. Init may be a DeclStmt or ExprStmt or nil; Cond and
// Post may be nil.
type ForStmt struct {
	Pos   Pos
	Init  Stmt
	Cond  Expr
	Post  Expr
	Body  Stmt
	Scope *Scope // scope of the init declaration, filled by sema
}

func (s *ForStmt) stmtNode() {}

// NodePos implements Node.
func (s *ForStmt) NodePos() Pos { return s.Pos }

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for bare return
}

func (s *ReturnStmt) stmtNode() {}

// NodePos implements Node.
func (s *ReturnStmt) NodePos() Pos { return s.Pos }

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

func (s *BreakStmt) stmtNode() {}

// NodePos implements Node.
func (s *BreakStmt) NodePos() Pos { return s.Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *ContinueStmt) stmtNode() {}

// NodePos implements Node.
func (s *ContinueStmt) NodePos() Pos { return s.Pos }

// GotoStmt jumps to a label.
type GotoStmt struct {
	Pos   Pos
	Label string
}

func (s *GotoStmt) stmtNode() {}

// NodePos implements Node.
func (s *GotoStmt) NodePos() Pos { return s.Pos }

// LabeledStmt attaches a label to a statement.
type LabeledStmt struct {
	Pos   Pos
	Label string
	Stmt  Stmt
}

func (s *LabeledStmt) stmtNode() {}

// NodePos implements Node.
func (s *LabeledStmt) NodePos() Pos { return s.Pos }

// Expr is an expression. After sema, ExprType reports its type.
type Expr interface {
	Node
	exprNode()
	// ExprType returns the resolved type (nil before sema).
	ExprType() Type
}

// Ident is a variable or function reference. Each Ident use-site is a
// potential skeleton hole.
type Ident struct {
	Pos  Pos
	Name string
	Sym  *Symbol // filled by sema
	// Visible lists the symbols in scope at this use, in declaration order,
	// filled by sema. It defines the hole variable set v_i of the paper.
	Visible []*Symbol
	// FuncIdx is the index of the function containing this use, or -1 for
	// uses in global initializers; filled by sema.
	FuncIdx int
}

func (e *Ident) exprNode() {}

// NodePos implements Node.
func (e *Ident) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *Ident) ExprType() Type {
	if e.Sym == nil {
		return nil
	}
	return e.Sym.Type
}

// IntLit is an integer literal.
type IntLit struct {
	Pos  Pos
	Text string // original spelling
	Val  int64
	Type Type
}

func (e *IntLit) exprNode() {}

// NodePos implements Node.
func (e *IntLit) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *IntLit) ExprType() Type { return e.Type }

// FloatLit is a floating literal.
type FloatLit struct {
	Pos  Pos
	Text string
	Val  float64
	Type Type
}

func (e *FloatLit) exprNode() {}

// NodePos implements Node.
func (e *FloatLit) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *FloatLit) ExprType() Type { return e.Type }

// CharLit is a character constant (type int, as in C).
type CharLit struct {
	Pos  Pos
	Val  byte
	Type Type
}

func (e *CharLit) exprNode() {}

// NodePos implements Node.
func (e *CharLit) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *CharLit) ExprType() Type { return e.Type }

// StringLit is a string literal (type char*).
type StringLit struct {
	Pos  Pos
	Val  string
	Type Type
}

func (e *StringLit) exprNode() {}

// NodePos implements Node.
func (e *StringLit) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *StringLit) ExprType() Type { return e.Type }

// UnaryExpr is a prefix unary operation: one of + - ! ~ * & ++ --.
type UnaryExpr struct {
	Pos  Pos
	Op   string
	X    Expr
	Type Type
}

func (e *UnaryExpr) exprNode() {}

// NodePos implements Node.
func (e *UnaryExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *UnaryExpr) ExprType() Type { return e.Type }

// PostfixExpr is a postfix ++ or --.
type PostfixExpr struct {
	Pos  Pos
	Op   string // "++" or "--"
	X    Expr
	Type Type
}

func (e *PostfixExpr) exprNode() {}

// NodePos implements Node.
func (e *PostfixExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *PostfixExpr) ExprType() Type { return e.Type }

// BinaryExpr is an infix binary operation (arithmetic, relational, logical,
// bitwise, shift).
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
	Type Type
}

func (e *BinaryExpr) exprNode() {}

// NodePos implements Node.
func (e *BinaryExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *BinaryExpr) ExprType() Type { return e.Type }

// AssignExpr is an assignment, possibly compound (=, +=, ...).
type AssignExpr struct {
	Pos  Pos
	Op   string
	LHS  Expr
	RHS  Expr
	Type Type
}

func (e *AssignExpr) exprNode() {}

// NodePos implements Node.
func (e *AssignExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *AssignExpr) ExprType() Type { return e.Type }

// CondExpr is the ternary conditional operator.
type CondExpr struct {
	Pos        Pos
	Cond, T, F Expr
	Type       Type
}

func (e *CondExpr) exprNode() {}

// NodePos implements Node.
func (e *CondExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *CondExpr) ExprType() Type { return e.Type }

// CallExpr is a function call. Fun is an Ident in the subset.
type CallExpr struct {
	Pos  Pos
	Fun  *Ident
	Args []Expr
	Type Type
}

func (e *CallExpr) exprNode() {}

// NodePos implements Node.
func (e *CallExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *CallExpr) ExprType() Type { return e.Type }

// IndexExpr is array/pointer subscripting a[i].
type IndexExpr struct {
	Pos  Pos
	X    Expr
	Idx  Expr
	Type Type
}

func (e *IndexExpr) exprNode() {}

// NodePos implements Node.
func (e *IndexExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *IndexExpr) ExprType() Type { return e.Type }

// MemberExpr is struct member access: X.Name or X->Name (Arrow).
type MemberExpr struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
	Type  Type
}

func (e *MemberExpr) exprNode() {}

// NodePos implements Node.
func (e *MemberExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *MemberExpr) ExprType() Type { return e.Type }

// CastExpr is an explicit cast (T)X.
type CastExpr struct {
	Pos  Pos
	To   Type
	X    Expr
	Type Type
}

func (e *CastExpr) exprNode() {}

// NodePos implements Node.
func (e *CastExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *CastExpr) ExprType() Type { return e.Type }

// SizeofExpr is sizeof(expr) or sizeof(type).
type SizeofExpr struct {
	Pos    Pos
	X      Expr // nil when OfType is set
	OfType Type // nil when X is set
	Type   Type
}

func (e *SizeofExpr) exprNode() {}

// NodePos implements Node.
func (e *SizeofExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *SizeofExpr) ExprType() Type { return e.Type }

// CommaExpr is the comma operator: evaluate all, yield the last.
type CommaExpr struct {
	Pos  Pos
	List []Expr
	Type Type
}

func (e *CommaExpr) exprNode() {}

// NodePos implements Node.
func (e *CommaExpr) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *CommaExpr) ExprType() Type { return e.Type }

// InitList is a brace initializer for arrays and structs.
type InitList struct {
	Pos  Pos
	List []Expr
	Type Type
}

func (e *InitList) exprNode() {}

// NodePos implements Node.
func (e *InitList) NodePos() Pos { return e.Pos }

// ExprType implements Expr.
func (e *InitList) ExprType() Type { return e.Type }
