package cc

import (
	"strings"
	"testing"
)

func TestParseGlobalDecls(t *testing.T) {
	f := MustParse("int a, b = 1; double d = 2.5; char *s = \"hi\"; int arr[4];")
	if len(f.Decls) != 5 {
		t.Fatalf("got %d decls, want 5", len(f.Decls))
	}
	a := f.Decls[0].(*VarDecl)
	if a.Name != "a" || a.Type.String() != "int" || a.Init != nil {
		t.Errorf("decl a = %+v", a)
	}
	b := f.Decls[1].(*VarDecl)
	if b.Name != "b" || b.Init == nil {
		t.Errorf("decl b = %+v", b)
	}
	s := f.Decls[3].(*VarDecl)
	if s.Type.String() != "char*" {
		t.Errorf("s type = %s, want char*", s.Type)
	}
	arr := f.Decls[4].(*VarDecl)
	if at, ok := arr.Type.(*ArrayType); !ok || at.Len != 4 {
		t.Errorf("arr type = %s", arr.Type)
	}
}

func TestParseFunction(t *testing.T) {
	f := MustParse(`
int add(int x, int y) {
    return x + y;
}
void nop(void) { }
`)
	fd := f.Decls[0].(*FuncDecl)
	if fd.Name != "add" || len(fd.Params) != 2 || fd.Ret.String() != "int" {
		t.Fatalf("add = %+v", fd)
	}
	ret := fd.Body.List[0].(*ReturnStmt)
	bin := ret.X.(*BinaryExpr)
	if bin.Op != "+" {
		t.Errorf("return op = %q", bin.Op)
	}
	nop := f.Decls[1].(*FuncDecl)
	if len(nop.Params) != 0 || nop.Ret.String() != "void" {
		t.Errorf("nop = %+v", nop)
	}
}

func TestParseStruct(t *testing.T) {
	f := MustParse(`
struct s { char c[1]; int n; };
struct s a, b;
int use(struct s *p) { return p->n + a.n; }
`)
	sd := f.Decls[0].(*StructDecl)
	if sd.Type.Tag != "s" || len(sd.Type.Fields) != 2 {
		t.Fatalf("struct = %+v", sd.Type)
	}
	if sd.Type.Fields[0].Type.String() != "char[1]" {
		t.Errorf("field c type = %s", sd.Type.Fields[0].Type)
	}
	a := f.Decls[1].(*VarDecl)
	if a.Type.String() != "struct s" {
		t.Errorf("a type = %s", a.Type)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := MustParse(`
int main() {
    int i;
    for (i = 0; i < 10; i++) {
        if (i % 2) continue;
        else break;
    }
    while (i) i--;
    do i++; while (i < 5);
    goto done;
done:
    return 0;
}
`)
	body := f.Decls[0].(*FuncDecl).Body.List
	if _, ok := body[1].(*ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want ForStmt", body[1])
	}
	if _, ok := body[2].(*WhileStmt); !ok {
		t.Errorf("stmt 2 is %T, want WhileStmt", body[2])
	}
	if _, ok := body[3].(*DoWhileStmt); !ok {
		t.Errorf("stmt 3 is %T, want DoWhileStmt", body[3])
	}
	if g, ok := body[4].(*GotoStmt); !ok || g.Label != "done" {
		t.Errorf("stmt 4 = %+v", body[4])
	}
	if l, ok := body[5].(*LabeledStmt); !ok || l.Label != "done" {
		t.Errorf("stmt 5 = %+v", body[5])
	}
}

func TestParseForWithDecl(t *testing.T) {
	f := MustParse("int main() { for (int i = 0; i < 3; i++) ; return 0; }")
	fs := f.Decls[0].(*FuncDecl).Body.List[0].(*ForStmt)
	ds, ok := fs.Init.(*DeclStmt)
	if !ok || ds.Decls[0].Name != "i" {
		t.Fatalf("for init = %+v", fs.Init)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := MustParse("int a = 1 + 2 * 3;")
	init := f.Decls[0].(*VarDecl).Init.(*BinaryExpr)
	if init.Op != "+" {
		t.Fatalf("top op = %q, want +", init.Op)
	}
	rhs := init.Y.(*BinaryExpr)
	if rhs.Op != "*" {
		t.Errorf("rhs op = %q, want *", rhs.Op)
	}
}

func TestParseAssignRightAssociative(t *testing.T) {
	f := MustParse("int main() { int a, b, c; a = b = c = 1; return a; }")
	es := f.Decls[0].(*FuncDecl).Body.List[1].(*ExprStmt)
	top := es.X.(*AssignExpr)
	if _, ok := top.RHS.(*AssignExpr); !ok {
		t.Errorf("assignment is not right-associative: RHS is %T", top.RHS)
	}
}

func TestParseTernaryAndNestedConditional(t *testing.T) {
	// Paper Figure 3's shape: nested conditionals with member access.
	f := MustParse(`
struct s { char c[1]; };
struct s a, b, c;
int d; int e;
void bar(void) {
    e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
}
`)
	es := f.Decls[len(f.Decls)-1].(*FuncDecl).Body.List[0].(*ExprStmt)
	cond := es.X.(*CondExpr)
	m, ok := cond.T.(*MemberExpr)
	if !ok || m.Name != "c" {
		t.Fatalf("true branch = %T", cond.T)
	}
	if _, ok := m.X.(*CondExpr); !ok {
		t.Errorf("member base = %T, want CondExpr", m.X)
	}
}

func TestParsePointerOperations(t *testing.T) {
	f := MustParse(`
int a = 0;
int main() {
    int *p = &a, *q = p;
    *p = 1;
    *q = 2;
    return a;
}
`)
	body := f.Decls[1].(*FuncDecl).Body.List
	ds := body[0].(*DeclStmt)
	if len(ds.Decls) != 2 || ds.Decls[0].Type.String() != "int*" {
		t.Fatalf("pointer decls = %+v", ds)
	}
	as := body[1].(*ExprStmt).X.(*AssignExpr)
	u, ok := as.LHS.(*UnaryExpr)
	if !ok || u.Op != "*" {
		t.Errorf("LHS = %T", as.LHS)
	}
}

func TestParseCastsAndSizeof(t *testing.T) {
	f := MustParse("int main() { int a; a = (int)2.5; a = (int)sizeof(int); a = (int)sizeof a; return a; }")
	body := f.Decls[0].(*FuncDecl).Body.List
	c1 := body[1].(*ExprStmt).X.(*AssignExpr).RHS.(*CastExpr)
	if c1.To.String() != "int" {
		t.Errorf("cast to %s", c1.To)
	}
	c2 := body[2].(*ExprStmt).X.(*AssignExpr).RHS.(*CastExpr).X.(*SizeofExpr)
	if c2.OfType == nil || c2.OfType.String() != "int" {
		t.Errorf("sizeof(type) = %+v", c2)
	}
	c3 := body[3].(*ExprStmt).X.(*AssignExpr).RHS.(*CastExpr).X.(*SizeofExpr)
	if c3.X == nil {
		t.Errorf("sizeof expr = %+v", c3)
	}
}

func TestParseCommaExpr(t *testing.T) {
	f := MustParse("int main() { int a, b; a = 1, b = 2; return b; }")
	es := f.Decls[0].(*FuncDecl).Body.List[1].(*ExprStmt)
	ce, ok := es.X.(*CommaExpr)
	if !ok || len(ce.List) != 2 {
		t.Fatalf("comma expr = %T %+v", es.X, es.X)
	}
}

func TestParseInitList(t *testing.T) {
	f := MustParse("int c[2] = {0, 1}; struct s { int x; int y; }; struct s v = {1, 2};")
	c := f.Decls[0].(*VarDecl)
	il, ok := c.Init.(*InitList)
	if !ok || len(il.List) != 2 {
		t.Fatalf("array init = %+v", c.Init)
	}
}

func TestParseUnsignedLongTypes(t *testing.T) {
	f := MustParse("unsigned long ul; unsigned u; long l; unsigned char uc; short s; unsigned short us;")
	wants := []string{"unsigned long", "unsigned int", "long", "unsigned char", "short", "unsigned short"}
	for i, w := range wants {
		d := f.Decls[i].(*VarDecl)
		if d.Type.String() != w {
			t.Errorf("decl %d type = %s, want %s", i, d.Type, w)
		}
	}
}

func TestParseStorageClasses(t *testing.T) {
	f := MustParse("static int si; extern int ei; int main() { static int x = 1; return x; }")
	if f.Decls[0].(*VarDecl).Storage != StorageStatic {
		t.Error("si not static")
	}
	if f.Decls[1].(*VarDecl).Storage != StorageExtern {
		t.Error("ei not extern")
	}
	inner := f.Decls[2].(*FuncDecl).Body.List[0].(*DeclStmt).Decls[0]
	if inner.Storage != StorageStatic {
		t.Error("x not static")
	}
}

func TestParseMultiDimArray(t *testing.T) {
	f := MustParse("int m[2][3];")
	at := f.Decls[0].(*VarDecl).Type.(*ArrayType)
	if at.Len != 2 {
		t.Fatalf("outer len = %d", at.Len)
	}
	in := at.Elem.(*ArrayType)
	if in.Len != 3 || in.Elem.String() != "int" {
		t.Fatalf("inner = %s", in)
	}
	if at.Size() != 24 {
		t.Errorf("size = %d, want 24", at.Size())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int a = ;",
		"int main() { return 0 }",
		"int main() { if return; }",
		"union u { int x; };",
		"typedef int myint;",
		"int main() { switch (1) {} }",
		"int a[];",
		"int main() { (1)(); }",
		"int 3x;",
		"int main() { int a; a = ; }",
		"int main() {",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("int main() {\n  return 0\n}")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error %q lacks line 3 position", err)
	}
}

func TestParseFig2Shape(t *testing.T) {
	// Paper Figure 2 adapted (alias attribute replaced by pointer aliasing).
	src := `
int a = 0;
int b = 0;
int main() {
    int *p = &a, *q = &b;
    *p = 1;
    *q = 2;
    return a;
}
`
	f := MustParse(src)
	if len(f.Decls) != 3 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
}
