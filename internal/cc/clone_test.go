package cc

import "testing"

const cloneSrc = `
int g1 = 1, g2 = 1;
struct pt { int x; int y; };
int add(int a, int b) { return a + b; }
int main() {
    int c = 0, d = 0;
    struct pt p;
    int arr[3] = {1, 2, 3};
    char *s = "hi";
    p.x = add(c, d);
    for (int i = 0; i < 3; i++) c += arr[i] * g1;
    while (d < 4) { d++; }
    do { c--; } while (c > 10);
    if (c ? g1 : g2) goto out;
    d = (int)sizeof(arr) + -c;
out:
    printf("%d", c + d + p.x);
    return g2;
}
`

func TestCloneProgramPrintsIdentically(t *testing.T) {
	prog := MustAnalyze(cloneSrc)
	clone, _ := CloneProgram(prog)
	if got, want := PrintFile(clone.File), PrintFile(prog.File); got != want {
		t.Errorf("clone prints differently:\n--- clone ---\n%s--- original ---\n%s", got, want)
	}
}

func TestCloneProgramSharesSemaState(t *testing.T) {
	prog := MustAnalyze(cloneSrc)
	clone, idents := CloneProgram(prog)
	if &clone.Symbols[0] != &prog.Symbols[0] || &clone.Scopes[0] != &prog.Scopes[0] {
		t.Error("symbols/scopes not shared with the original")
	}
	if len(clone.Uses) != len(prog.Uses) {
		t.Fatalf("clone has %d uses, original %d", len(clone.Uses), len(prog.Uses))
	}
	for i, use := range prog.Uses {
		nu := idents[use]
		if nu == nil {
			t.Fatalf("use %d (%q) missing from ident map", i, use.Name)
		}
		if nu != clone.Uses[i] {
			t.Errorf("use %d: ident map and Uses order disagree", i)
		}
		if nu == use {
			t.Errorf("use %d (%q) not cloned", i, use.Name)
		}
		if nu.Sym != use.Sym {
			t.Errorf("use %d (%q): symbol not shared", i, use.Name)
		}
	}
	if len(clone.Funcs) != len(prog.Funcs) {
		t.Fatalf("clone has %d funcs, original %d", len(clone.Funcs), len(prog.Funcs))
	}
	for i, fd := range prog.Funcs {
		if clone.Funcs[i] == fd {
			t.Errorf("func %d (%q) not cloned", i, fd.Name)
		}
		if clone.Funcs[i].Sym != fd.Sym {
			t.Errorf("func %d (%q): symbol not shared", i, fd.Name)
		}
	}
}

func TestCloneProgramIsolatesMutation(t *testing.T) {
	prog := MustAnalyze(cloneSrc)
	before := PrintFile(prog.File)
	clone, _ := CloneProgram(prog)
	// rebind every variable use in the clone to the first visible symbol of
	// matching type — a worst-case instantiation — and check the original
	// tree is untouched
	for _, use := range clone.Uses {
		for _, s := range use.Visible {
			if s.Type.String() == use.Sym.Type.String() {
				RebindVar(use, s)
				break
			}
		}
	}
	if got := PrintFile(prog.File); got != before {
		t.Errorf("mutating the clone changed the original:\n--- after ---\n%s--- before ---\n%s", got, before)
	}
	for i, use := range prog.Uses {
		if use.Name != use.Sym.Name {
			t.Errorf("original use %d: name %q diverged from symbol %q", i, use.Name, use.Sym.Name)
		}
	}
}

func TestRebindVar(t *testing.T) {
	prog := MustAnalyze("int a = 1, b = 2;\nint main() { return a; }\n")
	use := prog.Uses[0]
	var target *Symbol
	for _, s := range prog.Symbols {
		if s.Name == "b" {
			target = s
		}
	}
	RebindVar(use, target)
	if use.Sym != target || use.Name != "b" {
		t.Fatalf("rebind did not retarget the use: sym=%v name=%q", use.Sym, use.Name)
	}
	if got := PrintFile(prog.File); got != "int a = 1;\nint b = 2;\nint main(void) {\n    return b;\n}\n" {
		t.Errorf("rebound program prints:\n%s", got)
	}
}

func TestRebindVarCheckedRejectsInvisible(t *testing.T) {
	prog := MustAnalyze(`
int main() {
    int a = 1;
    { int b = 2; a = b; }
    return a;
}
`)
	// the use of a in "return a" cannot be rebound to b: b is out of scope
	retUse := prog.Uses[len(prog.Uses)-1]
	var b *Symbol
	for _, s := range prog.Symbols {
		if s.Name == "b" {
			b = s
		}
	}
	if err := RebindVarChecked(retUse, b); err == nil {
		t.Error("rebinding to an out-of-scope symbol passed the checked rebind")
	}
}

func TestRebindVarCheckedRejectsTypeMismatch(t *testing.T) {
	prog := MustAnalyze(`
int main() {
    int a = 1;
    char c = 'x';
    return a;
}
`)
	retUse := prog.Uses[len(prog.Uses)-1]
	var c *Symbol
	for _, s := range prog.Symbols {
		if s.Name == "c" {
			c = s
		}
	}
	if err := RebindVarChecked(retUse, c); err == nil {
		t.Error("rebinding across types passed the checked rebind")
	}
}

func TestRebindVarCheckedAcceptsValid(t *testing.T) {
	prog := MustAnalyze("int a = 1, b = 2;\nint main() { return a; }\n")
	use := prog.Uses[0]
	var b *Symbol
	for _, s := range prog.Symbols {
		if s.Name == "b" {
			b = s
		}
	}
	if err := RebindVarChecked(use, b); err != nil {
		t.Fatalf("valid rebind rejected: %v", err)
	}
	if use.Sym != b {
		t.Error("checked rebind did not apply")
	}
}
