package cc

import "testing"

// Golden tests pin the printer's concrete output format; skeleton
// rendering, alpha-canonicalization, and the harness all rely on its
// stability.

func TestGoldenPrintFormats(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "simple function",
			src:  "int main() { int a = 1; return a; }",
			want: `int main(void) {
    int a = 1;
    return a;
}
`,
		},
		{
			name: "globals and struct",
			src:  "struct s { int x; }; struct s v; int g = 2;",
			want: `struct s {
    int x;
};
struct s v;
int g = 2;
`,
		},
		{
			name: "control flow",
			src:  "int main() { int i; for (i = 0; i < 3; i++) { if (i) continue; else break; } while (i) i--; return 0; }",
			want: `int main(void) {
    int i;
    for (i = 0; i < 3; i++) {
        if (i)
            continue;
        else
            break;
    }
    while (i)
        i--;
    return 0;
}
`,
		},
		{
			name: "pointers and arrays",
			src:  "int main() { int a[3] = {1, 2, 3}; int *p = &a[0]; return *p + a[1]; }",
			want: `int main(void) {
    int a[3] = {1, 2, 3};
    int *p = &a[0];
    return *p + a[1];
}
`,
		},
		{
			name: "goto and label",
			src:  "int main() { int x = 0; l: x++; if (x < 2) goto l; return x; }",
			want: `int main(void) {
    int x = 0;
    l:
    x++;
    if (x < 2)
        goto l;
    return x;
}
`,
		},
		{
			name: "ternary precedence",
			src:  "int main() { int a = 1, b = 2; return a ? b : a + b; }",
			want: `int main(void) {
    int a = 1;
    int b = 2;
    return a ? b : a + b;
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := MustParse(c.src)
			got := PrintFile(f)
			if got != c.want {
				t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, c.want)
			}
		})
	}
}

func TestGoldenTypeSizes(t *testing.T) {
	cases := []struct {
		typ  Type
		want int
	}{
		{TypeVoid, 0},
		{TypeChar, 1},
		{&BasicType{Kind: Short}, 2},
		{TypeInt, 4},
		{TypeUInt, 4},
		{TypeLong, 8},
		{TypeFloat, 4},
		{TypeDouble, 8},
		{&PointerType{Elem: TypeChar}, 8},
		{&ArrayType{Elem: TypeInt, Len: 5}, 20},
		{&StructType{Tag: "s", Fields: []Field{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeChar}}}, 5},
		{&FuncType{Ret: TypeInt}, 8},
	}
	for _, c := range cases {
		if got := c.typ.Size(); got != c.want {
			t.Errorf("%s.Size() = %d, want %d", c.typ, got, c.want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !IsArithmetic(TypeInt) || !IsArithmetic(TypeDouble) || IsArithmetic(&PointerType{Elem: TypeInt}) {
		t.Error("IsArithmetic misclassifies")
	}
	if !IsIntegerType(TypeChar) || IsIntegerType(TypeFloat) {
		t.Error("IsIntegerType misclassifies")
	}
	if !IsScalar(&PointerType{Elem: TypeInt}) || IsScalar(&StructType{Tag: "s"}) {
		t.Error("IsScalar misclassifies")
	}
	if Decay(&ArrayType{Elem: TypeInt, Len: 2}).String() != "int*" {
		t.Error("Decay fails on arrays")
	}
	if Decay(TypeInt) != Type(TypeInt) {
		t.Error("Decay changes scalars")
	}
	if !SameType(TypeInt, &BasicType{Kind: Int}) || SameType(TypeInt, TypeUInt) {
		t.Error("SameType misclassifies")
	}
}

func TestStructFieldIndex(t *testing.T) {
	st := &StructType{Tag: "s", Fields: []Field{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeChar}}}
	if st.FieldIndex("a") != 0 || st.FieldIndex("b") != 1 || st.FieldIndex("z") != -1 {
		t.Error("FieldIndex wrong")
	}
}

func TestBasicTypePredicates(t *testing.T) {
	unsigned := []BasicKind{UChar, UShort, UInt, ULong}
	for _, k := range unsigned {
		if !(&BasicType{Kind: k}).IsUnsigned() {
			t.Errorf("%v not unsigned", k)
		}
	}
	signed := []BasicKind{Char, Short, Int, Long}
	for _, k := range signed {
		if (&BasicType{Kind: k}).IsUnsigned() {
			t.Errorf("%v unsigned", k)
		}
	}
	if !(&BasicType{Kind: Float}).IsFloat() || (&BasicType{Kind: Int}).IsFloat() {
		t.Error("IsFloat misclassifies")
	}
}
