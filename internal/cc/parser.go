package cc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the C subset. Errors are
// reported with positions; the parser stops at the first error.
type Parser struct {
	toks    []Token
	pos     int
	structs map[string]*StructType
	// pendingStorage holds a storage class seen by parseDeclSpecifiers
	// until the declaration parser consumes it.
	pendingStorage StorageClass
}

// ParseError describes a syntax error.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

type parseBail struct{ err error }

// Parse parses a complete translation unit.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, structs: make(map[string]*StructType)}
	var file *File
	err = p.catch(func() { file = p.parseFile() })
	if err != nil {
		return nil, err
	}
	return file, nil
}

// MustParse parses src and panics on error; intended for tests and seeds.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) catch(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(parseBail); ok {
				err = b.err
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) {
	panic(parseBail{&ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		last := Pos{1, 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == PUNCT || t.Kind == KEYWORD) && t.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) Token {
	if !p.at(text) {
		p.errorf(p.cur().Pos, "expected %q, found %s", text, p.cur())
	}
	return p.next()
}

func (p *Parser) expectIdent() Token {
	if p.cur().Kind != IDENT {
		p.errorf(p.cur().Pos, "expected identifier, found %s", p.cur())
	}
	return p.next()
}

// ---------------------------------------------------------------- file

func (p *Parser) parseFile() *File {
	file := &File{Structs: p.structs}
	for p.cur().Kind != EOF {
		file.Decls = append(file.Decls, p.parseTopDecl()...)
	}
	return file
}

func (p *Parser) parseTopDecl() []Decl {
	pos := p.cur().Pos
	if !IsTypeStart(p.cur()) {
		p.errorf(pos, "expected declaration, found %s", p.cur())
	}
	base, isStructDef := p.parseDeclSpecifiers()
	// a bare "struct s { ... };" definition
	if isStructDef != nil && p.accept(";") {
		return []Decl{&StructDecl{Pos: pos, Type: isStructDef}}
	}
	storage := p.pendingStorage
	p.pendingStorage = StorageNone

	name, typ := p.parseDeclarator(base)
	if p.at("(") {
		return []Decl{p.parseFuncRest(pos, name, typ, storage)}
	}
	// variable declaration list
	var decls []Decl
	d := &VarDecl{Pos: pos, Name: name, Type: typ, Storage: storage}
	if p.accept("=") {
		d.Init = p.parseInitializer()
	}
	decls = append(decls, d)
	for p.accept(",") {
		n2, t2 := p.parseDeclarator(base)
		d2 := &VarDecl{Pos: p.cur().Pos, Name: n2, Type: t2, Storage: storage}
		if p.accept("=") {
			d2.Init = p.parseInitializer()
		}
		decls = append(decls, d2)
	}
	p.expect(";")
	return decls
}

func (p *Parser) parseFuncRest(pos Pos, name string, ret Type, storage StorageClass) Decl {
	p.expect("(")
	fd := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if p.at("void") && p.peekAt(1).Text == ")" {
		p.next()
	}
	for !p.at(")") {
		ppos := p.cur().Pos
		if !IsTypeStart(p.cur()) {
			p.errorf(ppos, "expected parameter type, found %s", p.cur())
		}
		base, _ := p.parseDeclSpecifiers()
		p.pendingStorage = StorageNone
		pname, ptyp := p.parseDeclarator(base)
		ptyp = Decay(ptyp) // parameters of array type decay to pointers
		fd.Params = append(fd.Params, &VarDecl{Pos: ppos, Name: pname, Type: ptyp})
		if !p.accept(",") {
			break
		}
	}
	p.expect(")")
	if p.accept(";") {
		return fd // prototype
	}
	fd.Body = p.parseBlock()
	return fd
}

// ---------------------------------------------------------------- types

// parseDeclSpecifiers parses the leading type specifier sequence (possibly
// including a struct definition) and records any storage class in
// p.pendingStorage. It returns the base type and, if a struct body was
// defined inline, the struct type.
func (p *Parser) parseDeclSpecifiers() (Type, *StructType) {
	unsigned := false
	signed := false
	longCount := 0
	var baseKind BasicKind = -1
	var structDef *StructType
	var structRef *StructType
	sawSpec := false

	for {
		t := p.cur()
		if t.Kind != KEYWORD {
			break
		}
		switch t.Text {
		case "const", "volatile", "register", "inline":
			p.next() // qualifiers are accepted and ignored
			continue
		case "static":
			p.pendingStorage = StorageStatic
			p.next()
			continue
		case "extern":
			p.pendingStorage = StorageExtern
			p.next()
			continue
		case "unsigned":
			unsigned = true
			sawSpec = true
			p.next()
			continue
		case "signed":
			signed = true
			sawSpec = true
			p.next()
			continue
		case "long":
			longCount++
			sawSpec = true
			p.next()
			continue
		case "void", "char", "short", "int", "float", "double":
			if baseKind >= 0 && !(baseKind == Int && t.Text == "int") {
				p.errorf(t.Pos, "conflicting type specifiers")
			}
			switch t.Text {
			case "void":
				baseKind = Void
			case "char":
				baseKind = Char
			case "short":
				baseKind = Short
			case "int":
				if baseKind < 0 {
					baseKind = Int
				}
			case "float":
				baseKind = Float
			case "double":
				baseKind = Double
			}
			sawSpec = true
			p.next()
			continue
		case "struct":
			pos := p.next().Pos
			st, def := p.parseStructSpecifier(pos)
			if def {
				structDef = st
			}
			structRef = st
			sawSpec = true
			continue
		case "union", "enum", "typedef", "switch", "case", "default", "auto":
			p.errorf(t.Pos, "unsupported construct %q", t.Text)
		}
		break
	}
	if structRef != nil {
		return structRef, structDef
	}
	if !sawSpec {
		p.errorf(p.cur().Pos, "expected type specifier, found %s", p.cur())
	}
	_ = signed
	// resolve basic kind with long/unsigned modifiers
	kind := Int
	if baseKind >= 0 {
		kind = baseKind
	}
	if longCount > 0 && (kind == Int) {
		kind = Long
	}
	if longCount > 0 && kind == Double {
		kind = Double // long double treated as double
	}
	if unsigned {
		switch kind {
		case Char:
			kind = UChar
		case Short:
			kind = UShort
		case Int:
			kind = UInt
		case Long:
			kind = ULong
		}
	}
	return &BasicType{Kind: kind}, nil
}

func (p *Parser) parseStructSpecifier(pos Pos) (*StructType, bool) {
	var tag string
	if p.cur().Kind == IDENT {
		tag = p.next().Text
	}
	if !p.at("{") {
		if tag == "" {
			p.errorf(pos, "anonymous struct requires a body")
		}
		st, ok := p.structs[tag]
		if !ok {
			// forward reference: create an incomplete struct
			st = &StructType{Tag: tag}
			p.structs[tag] = st
		}
		return st, false
	}
	p.expect("{")
	if tag == "" {
		tag = fmt.Sprintf("anon%d", len(p.structs))
	}
	st, exists := p.structs[tag]
	if !exists {
		st = &StructType{Tag: tag}
		p.structs[tag] = st
	}
	st.Fields = nil
	for !p.at("}") {
		if !IsTypeStart(p.cur()) {
			p.errorf(p.cur().Pos, "expected field declaration, found %s", p.cur())
		}
		base, _ := p.parseDeclSpecifiers()
		p.pendingStorage = StorageNone
		for {
			fname, ftyp := p.parseDeclarator(base)
			st.Fields = append(st.Fields, Field{Name: fname, Type: ftyp})
			if !p.accept(",") {
				break
			}
		}
		p.expect(";")
	}
	p.expect("}")
	return st, true
}

// parseDeclarator parses pointer stars, a name, and array suffixes,
// returning the declared name and full type.
func (p *Parser) parseDeclarator(base Type) (string, Type) {
	typ := base
	for p.accept("*") {
		for p.at("const") || p.at("volatile") {
			p.next()
		}
		typ = &PointerType{Elem: typ}
	}
	name := ""
	if p.cur().Kind == IDENT {
		name = p.next().Text
	}
	// array suffixes, innermost last: int a[2][3] is array 2 of array 3 of int
	var dims []int
	for p.accept("[") {
		if p.at("]") {
			p.errorf(p.cur().Pos, "array size required in the subset")
		}
		sz := p.parseConstIntExpr()
		p.expect("]")
		dims = append(dims, sz)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = &ArrayType{Elem: typ, Len: dims[i]}
	}
	return name, typ
}

// parseAbstractType parses a type name as used in casts and sizeof.
func (p *Parser) parseAbstractType() Type {
	base, _ := p.parseDeclSpecifiers()
	p.pendingStorage = StorageNone
	typ := base
	for p.accept("*") {
		typ = &PointerType{Elem: typ}
	}
	return typ
}

func (p *Parser) parseConstIntExpr() int {
	t := p.cur()
	if t.Kind != INTLIT {
		p.errorf(t.Pos, "expected integer constant, found %s", t)
	}
	p.next()
	v, err := parseIntText(t.Text)
	if err != nil {
		p.errorf(t.Pos, "bad integer literal %q", t.Text)
	}
	return int(v)
}

// ---------------------------------------------------------------- stmts

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.expect("{").Pos
	b := &BlockStmt{Pos: pos}
	for !p.at("}") {
		if p.cur().Kind == EOF {
			p.errorf(pos, "unterminated block")
		}
		b.List = append(b.List, p.parseStmt())
	}
	p.expect("}")
	return b
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	// label: only when IDENT followed by ':' and not '::'
	if t.Kind == IDENT && p.peekAt(1).Text == ":" {
		p.next()
		p.next()
		// a label directly before '}' labels an empty statement
		if p.at("}") {
			return &LabeledStmt{Pos: t.Pos, Label: t.Text, Stmt: &EmptyStmt{Pos: t.Pos}}
		}
		return &LabeledStmt{Pos: t.Pos, Label: t.Text, Stmt: p.parseStmt()}
	}
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at(";"):
		p.next()
		return &EmptyStmt{Pos: t.Pos}
	case p.at("if"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		then := p.parseStmt()
		var els Stmt
		if p.accept("else") {
			els = p.parseStmt()
		}
		return &IfStmt{Pos: t.Pos, Cond: cond, Then: then, Else: els}
	case p.at("while"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: p.parseStmt()}
	case p.at("do"):
		p.next()
		body := p.parseStmt()
		p.expect("while")
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}
	case p.at("for"):
		p.next()
		p.expect("(")
		f := &ForStmt{Pos: t.Pos}
		if !p.at(";") {
			if IsTypeStart(p.cur()) {
				f.Init = p.parseDeclStmt()
			} else {
				e := p.parseExpr()
				f.Init = &ExprStmt{Pos: e.NodePos(), X: e}
				p.expect(";")
			}
		} else {
			p.next()
		}
		if !p.at(";") {
			f.Cond = p.parseExpr()
		}
		p.expect(";")
		if !p.at(")") {
			f.Post = p.parseExpr()
		}
		p.expect(")")
		f.Body = p.parseStmt()
		return f
	case p.at("return"):
		p.next()
		r := &ReturnStmt{Pos: t.Pos}
		if !p.at(";") {
			r.X = p.parseExpr()
		}
		p.expect(";")
		return r
	case p.at("break"):
		p.next()
		p.expect(";")
		return &BreakStmt{Pos: t.Pos}
	case p.at("continue"):
		p.next()
		p.expect(";")
		return &ContinueStmt{Pos: t.Pos}
	case p.at("goto"):
		p.next()
		lbl := p.expectIdent()
		p.expect(";")
		return &GotoStmt{Pos: t.Pos, Label: lbl.Text}
	case IsTypeStart(t):
		return p.parseDeclStmt()
	}
	e := p.parseExpr()
	p.expect(";")
	return &ExprStmt{Pos: t.Pos, X: e}
}

// parseDeclStmt parses a local declaration statement, consuming the
// trailing semicolon.
func (p *Parser) parseDeclStmt() *DeclStmt {
	pos := p.cur().Pos
	base, _ := p.parseDeclSpecifiers()
	storage := p.pendingStorage
	p.pendingStorage = StorageNone
	ds := &DeclStmt{Pos: pos}
	for {
		name, typ := p.parseDeclarator(base)
		if name == "" {
			p.errorf(pos, "expected declarator name")
		}
		d := &VarDecl{Pos: pos, Name: name, Type: typ, Storage: storage}
		if p.accept("=") {
			d.Init = p.parseInitializer()
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(",") {
			break
		}
	}
	p.expect(";")
	return ds
}

func (p *Parser) parseInitializer() Expr {
	if p.at("{") {
		pos := p.next().Pos
		il := &InitList{Pos: pos}
		for !p.at("}") {
			il.List = append(il.List, p.parseInitializer())
			if !p.accept(",") {
				break
			}
		}
		p.expect("}")
		return il
	}
	return p.parseAssign()
}

// ---------------------------------------------------------------- exprs

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() Expr {
	e := p.parseAssign()
	if !p.at(",") {
		return e
	}
	ce := &CommaExpr{Pos: e.NodePos(), List: []Expr{e}}
	for p.accept(",") {
		ce.List = append(ce.List, p.parseAssign())
	}
	return ce
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() Expr {
	lhs := p.parseConditional()
	t := p.cur()
	if t.Kind == PUNCT && assignOps[t.Text] {
		p.next()
		rhs := p.parseAssign()
		return &AssignExpr{Pos: t.Pos, Op: t.Text, LHS: lhs, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseConditional() Expr {
	cond := p.parseBinary(0)
	if !p.at("?") {
		return cond
	}
	pos := p.next().Pos
	thenE := p.parseExpr()
	p.expect(":")
	elseE := p.parseConditional()
	return &CondExpr{Pos: pos, Cond: cond, T: thenE, F: elseE}
}

// binary operator precedence levels, lowest first.
var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) Expr {
	if level == len(binaryLevels) {
		return p.parseUnary()
	}
	lhs := p.parseBinary(level + 1)
	for {
		t := p.cur()
		if t.Kind != PUNCT || !contains(binaryLevels[level], t.Text) {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(level + 1)
		lhs = &BinaryExpr{Pos: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	switch {
	case p.at("++") || p.at("--"):
		p.next()
		x := p.parseUnary()
		return &UnaryExpr{Pos: t.Pos, Op: t.Text, X: x}
	case p.at("+") || p.at("-") || p.at("!") || p.at("~") || p.at("*") || p.at("&"):
		p.next()
		x := p.parseUnary()
		return &UnaryExpr{Pos: t.Pos, Op: t.Text, X: x}
	case p.at("sizeof"):
		p.next()
		if p.at("(") && IsTypeStart(p.peekAt(1)) {
			p.expect("(")
			typ := p.parseAbstractType()
			p.expect(")")
			return &SizeofExpr{Pos: t.Pos, OfType: typ}
		}
		x := p.parseUnary()
		return &SizeofExpr{Pos: t.Pos, X: x}
	case p.at("(") && IsTypeStart(p.peekAt(1)):
		p.expect("(")
		typ := p.parseAbstractType()
		p.expect(")")
		x := p.parseUnary()
		return &CastExpr{Pos: t.Pos, To: typ, X: x}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		t := p.cur()
		switch {
		case p.at("("):
			id, ok := e.(*Ident)
			if !ok {
				p.errorf(t.Pos, "calls through non-identifier expressions are unsupported")
			}
			p.next()
			call := &CallExpr{Pos: t.Pos, Fun: id}
			for !p.at(")") {
				call.Args = append(call.Args, p.parseAssign())
				if !p.accept(",") {
					break
				}
			}
			p.expect(")")
			e = call
		case p.at("["):
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			e = &IndexExpr{Pos: t.Pos, X: e, Idx: idx}
		case p.at("."):
			p.next()
			name := p.expectIdent()
			e = &MemberExpr{Pos: t.Pos, X: e, Name: name.Text}
		case p.at("->"):
			p.next()
			name := p.expectIdent()
			e = &MemberExpr{Pos: t.Pos, X: e, Name: name.Text, Arrow: true}
		case p.at("++") || p.at("--"):
			p.next()
			e = &PostfixExpr{Pos: t.Pos, Op: t.Text, X: e}
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case IDENT:
		p.next()
		return &Ident{Pos: t.Pos, Name: t.Text}
	case INTLIT:
		p.next()
		v, err := parseIntText(t.Text)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Text)
		}
		typ := Type(TypeInt)
		lower := strings.ToLower(t.Text)
		switch {
		case strings.Contains(lower, "ul") || strings.Contains(lower, "lu"):
			typ = TypeULong
		case strings.HasSuffix(lower, "u"):
			typ = TypeUInt
		case strings.HasSuffix(lower, "l"):
			typ = TypeLong
		}
		return &IntLit{Pos: t.Pos, Text: t.Text, Val: v, Type: typ}
	case FLOATLIT:
		p.next()
		text := strings.TrimRight(t.Text, "fFlL")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q", t.Text)
		}
		typ := Type(TypeDouble)
		if strings.HasSuffix(strings.ToLower(t.Text), "f") {
			typ = TypeFloat
		}
		return &FloatLit{Pos: t.Pos, Text: t.Text, Val: v, Type: typ}
	case CHARLIT:
		p.next()
		return &CharLit{Pos: t.Pos, Val: t.Text[0], Type: TypeInt}
	case STRINGLIT:
		p.next()
		return &StringLit{Pos: t.Pos, Val: t.Text, Type: &PointerType{Elem: TypeChar}}
	case PUNCT:
		if t.Text == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	return nil
}

func parseIntText(text string) (int64, error) {
	trimmed := strings.TrimRight(strings.ToLower(text), "ul")
	if trimmed == "" {
		return 0, fmt.Errorf("empty literal")
	}
	// strconv handles 0x and 0 octal prefixes with base 0
	u, err := strconv.ParseUint(trimmed, 0, 64)
	if err != nil {
		return 0, err
	}
	return int64(u), nil
}
