package cc

import (
	"strings"
	"testing"
)

// reprint parses src, prints it, reparses the print, and reprints; the two
// prints must agree (printer fixed point) and the reparse must succeed.
func reprint(t *testing.T, src string) string {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := PrintFile(f)
	f2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, out1)
	}
	out2 := PrintFile(f2)
	if out1 != out2 {
		t.Fatalf("printer not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return out1
}

func TestPrintRoundTrips(t *testing.T) {
	sources := []string{
		"int a, b = 1;\nint main() { b = b - a; if (a) a = a - b; return 0; }",
		"struct s { char c[1]; };\nstruct s a, b, c;\nint d; int e;\nvoid bar(void) { e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c; }",
		"int a = 0;\nint main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }",
		"int main() { int x = 0; for (int i = 0; i < 10; i++) x += i; return x; }",
		"int main() { int a = 1; { int b = 2; a = b; } do a--; while (a); return a; }",
		"char ch = 'x'; char nl = '\\n';\nint main() { printf(\"%c%c\", ch, nl); return 0; }",
		"int main() { int a = 5, b = 2; return a / b + a % b - (a << 1) + (a >> 1); }",
		"int main() { int a = 1; a += 2; a -= 1; a *= 3; a /= 2; a %= 3; a &= 7; a |= 8; a ^= 1; a <<= 2; a >>= 1; return a; }",
		"unsigned long n = 42ul;\nint main() { return (int)n; }",
		"int m[2][3];\nint main() { m[1][2] = 7; return m[1][2]; }",
		"int main() { int p = 0; trick: if (p) return p; p = 1; goto trick; return 0; }",
		"double u[10];\nint a, b, d, e;\nstatic void foo(int *p1) { double c = 0.0; for (; a < 5; a++) { b = 0; for (; b < 5; b++) c = c + u[a + 5 * a]; u[a] *= 2; } *p1 = (int)c; }\nint main() { int r; foo(&r); return 0; }",
	}
	for i, src := range sources {
		t.Run(strings.Fields(src)[0]+string(rune('A'+i)), func(t *testing.T) {
			reprint(t, src)
		})
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	// (1+2)*3 must keep its parens; 1+2*3 must not gain them.
	out := reprint(t, "int a = (1 + 2) * 3; int b = 1 + 2 * 3;")
	if !strings.Contains(out, "(1 + 2) * 3") {
		t.Errorf("lost required parens:\n%s", out)
	}
	if strings.Contains(out, "1 + (2 * 3)") {
		t.Errorf("inserted redundant parens:\n%s", out)
	}
}

func TestPrintUnaryMinusSpacing(t *testing.T) {
	out := reprint(t, "int a = 1; int main() { return - -a; }")
	if strings.Contains(out, "--a") {
		t.Errorf("glued unary minuses into predecrement:\n%s", out)
	}
}

func TestPrintRenameHook(t *testing.T) {
	prog := MustAnalyze("int a, b;\nint main() { a = b; return a; }")
	p := Printer{Rename: func(id *Ident) string {
		if id.Sym != nil && id.Sym.Kind != SymFunc {
			return strings.ToUpper(id.Name)
		}
		return id.Name
	}}
	out := p.File(prog.File)
	if !strings.Contains(out, "A = B") || !strings.Contains(out, "return A") {
		t.Errorf("rename hook not applied:\n%s", out)
	}
	// declarations keep their names: the hook only fires on Ident nodes
	if !strings.Contains(out, "int a") || !strings.Contains(out, "int b") {
		t.Errorf("declarations were renamed:\n%s", out)
	}
}

func TestPrintOmitHook(t *testing.T) {
	f := MustParse("int main() { int a = 1; a = 2; return a; }")
	body := f.Decls[0].(*FuncDecl).Body
	p := Printer{Omit: map[Stmt]bool{body.List[1]: true}}
	out := p.File(f)
	if strings.Contains(out, "a = 2") {
		t.Errorf("omitted statement still printed:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("omitted-variant does not reparse: %v\n%s", err, out)
	}
}

func TestPrintStringEscapes(t *testing.T) {
	out := reprint(t, `int main() { printf("a\"b\n\t\\"); return 0; }`)
	if !strings.Contains(out, `"a\"b\n\t\\"`) {
		t.Errorf("escapes mangled:\n%s", out)
	}
}

func TestDeclString(t *testing.T) {
	cases := []struct {
		typ  Type
		name string
		want string
	}{
		{TypeInt, "x", "int x"},
		{&PointerType{Elem: TypeInt}, "p", "int *p"},
		{&PointerType{Elem: &PointerType{Elem: TypeChar}}, "pp", "char **pp"},
		{&ArrayType{Elem: TypeInt, Len: 4}, "a", "int a[4]"},
		{&ArrayType{Elem: &ArrayType{Elem: TypeInt, Len: 3}, Len: 2}, "m", "int m[2][3]"},
		{&PointerType{Elem: TypeDouble}, "", "double *"},
	}
	for _, c := range cases {
		if got := declString(c.typ, c.name); got != c.want {
			t.Errorf("declString(%s, %q) = %q, want %q", c.typ, c.name, got, c.want)
		}
	}
}
