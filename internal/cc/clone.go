package cc

// This file provides the AST-resident variant-instantiation support: a deep
// clone of an analyzed Program whose tree a caller may mutate freely, plus
// the hole-rebinding primitive the skeleton layer patches variants with.
//
// A clone shares everything semantic analysis established about the
// *declarations* of the program — Symbol, Scope, and Type values are
// immutable after Analyze and are referenced, not copied — while every tree
// node (declarations, statements, expressions) is a fresh allocation. That
// split is what makes per-worker template clones cheap: rebinding a variable
// use only rewrites the clone's Ident node, never anything shared.

import "fmt"

// CloneProgram deep-copies prog's syntax tree. Symbols, scopes, and types
// are shared with the original (they are read-only after Analyze); every
// Decl/Stmt/Expr node is freshly allocated. The returned map sends each
// original *Ident to its clone, which is how callers that recorded pointers
// into the original tree (e.g. skeleton holes) relocate them.
func CloneProgram(prog *Program) (*Program, map[*Ident]*Ident) {
	c := &cloner{idents: make(map[*Ident]*Ident, len(prog.Uses)), funcs: make(map[*FuncDecl]*FuncDecl, len(prog.Funcs))}
	out := &Program{
		File:    c.file(prog.File),
		Global:  prog.Global,
		Scopes:  prog.Scopes,
		Symbols: prog.Symbols,
		Labels:  prog.Labels,
	}
	for _, fd := range prog.Funcs {
		nf, ok := c.funcs[fd]
		if !ok {
			// a Program always lists its Funcs among File.Decls; a missing
			// entry means the caller handed us an inconsistent Program
			panic(fmt.Sprintf("cc: CloneProgram: function %q not among file decls", fd.Name))
		}
		out.Funcs = append(out.Funcs, nf)
	}
	for _, use := range prog.Uses {
		nu, ok := c.idents[use]
		if !ok {
			panic(fmt.Sprintf("cc: CloneProgram: use %q at %v not reached from file decls", use.Name, use.Pos))
		}
		out.Uses = append(out.Uses, nu)
	}
	return out, c.idents
}

type cloner struct {
	idents map[*Ident]*Ident
	funcs  map[*FuncDecl]*FuncDecl
}

func (c *cloner) file(f *File) *File {
	out := &File{Structs: f.Structs}
	for _, d := range f.Decls {
		out.Decls = append(out.Decls, c.decl(d))
	}
	return out
}

func (c *cloner) decl(d Decl) Decl {
	switch d := d.(type) {
	case *VarDecl:
		return c.varDecl(d)
	case *FuncDecl:
		nd := &FuncDecl{Pos: d.Pos, Name: d.Name, Ret: d.Ret, Sym: d.Sym}
		for _, p := range d.Params {
			nd.Params = append(nd.Params, c.varDecl(p))
		}
		if d.Body != nil {
			nd.Body = c.stmt(d.Body).(*BlockStmt)
		}
		c.funcs[d] = nd
		return nd
	case *StructDecl:
		return &StructDecl{Pos: d.Pos, Type: d.Type}
	default:
		panic(fmt.Sprintf("cc: clone: unknown declaration %T", d))
	}
}

func (c *cloner) varDecl(d *VarDecl) *VarDecl {
	nd := &VarDecl{Pos: d.Pos, Name: d.Name, Type: d.Type, Storage: d.Storage, Sym: d.Sym}
	if d.Init != nil {
		nd.Init = c.expr(d.Init)
	}
	return nd
}

func (c *cloner) stmt(st Stmt) Stmt {
	switch st := st.(type) {
	case *BlockStmt:
		ns := &BlockStmt{Pos: st.Pos, Scope: st.Scope}
		for _, s := range st.List {
			ns.List = append(ns.List, c.stmt(s))
		}
		return ns
	case *DeclStmt:
		ns := &DeclStmt{Pos: st.Pos}
		for _, d := range st.Decls {
			ns.Decls = append(ns.Decls, c.varDecl(d))
		}
		return ns
	case *ExprStmt:
		return &ExprStmt{Pos: st.Pos, X: c.expr(st.X)}
	case *EmptyStmt:
		return &EmptyStmt{Pos: st.Pos}
	case *IfStmt:
		ns := &IfStmt{Pos: st.Pos, Cond: c.expr(st.Cond), Then: c.stmt(st.Then)}
		if st.Else != nil {
			ns.Else = c.stmt(st.Else)
		}
		return ns
	case *WhileStmt:
		return &WhileStmt{Pos: st.Pos, Cond: c.expr(st.Cond), Body: c.stmt(st.Body)}
	case *DoWhileStmt:
		return &DoWhileStmt{Pos: st.Pos, Body: c.stmt(st.Body), Cond: c.expr(st.Cond)}
	case *ForStmt:
		ns := &ForStmt{Pos: st.Pos, Scope: st.Scope, Body: c.stmt(st.Body)}
		if st.Init != nil {
			ns.Init = c.stmt(st.Init)
		}
		if st.Cond != nil {
			ns.Cond = c.expr(st.Cond)
		}
		if st.Post != nil {
			ns.Post = c.expr(st.Post)
		}
		return ns
	case *ReturnStmt:
		ns := &ReturnStmt{Pos: st.Pos}
		if st.X != nil {
			ns.X = c.expr(st.X)
		}
		return ns
	case *BreakStmt:
		return &BreakStmt{Pos: st.Pos}
	case *ContinueStmt:
		return &ContinueStmt{Pos: st.Pos}
	case *GotoStmt:
		return &GotoStmt{Pos: st.Pos, Label: st.Label}
	case *LabeledStmt:
		return &LabeledStmt{Pos: st.Pos, Label: st.Label, Stmt: c.stmt(st.Stmt)}
	default:
		panic(fmt.Sprintf("cc: clone: unknown statement %T", st))
	}
}

func (c *cloner) expr(e Expr) Expr {
	switch e := e.(type) {
	case *Ident:
		ne := &Ident{Pos: e.Pos, Name: e.Name, Sym: e.Sym, Visible: e.Visible, FuncIdx: e.FuncIdx}
		c.idents[e] = ne
		return ne
	case *IntLit:
		ne := *e
		return &ne
	case *FloatLit:
		ne := *e
		return &ne
	case *CharLit:
		ne := *e
		return &ne
	case *StringLit:
		ne := *e
		return &ne
	case *UnaryExpr:
		return &UnaryExpr{Pos: e.Pos, Op: e.Op, X: c.expr(e.X), Type: e.Type}
	case *PostfixExpr:
		return &PostfixExpr{Pos: e.Pos, Op: e.Op, X: c.expr(e.X), Type: e.Type}
	case *BinaryExpr:
		return &BinaryExpr{Pos: e.Pos, Op: e.Op, X: c.expr(e.X), Y: c.expr(e.Y), Type: e.Type}
	case *AssignExpr:
		return &AssignExpr{Pos: e.Pos, Op: e.Op, LHS: c.expr(e.LHS), RHS: c.expr(e.RHS), Type: e.Type}
	case *CondExpr:
		return &CondExpr{Pos: e.Pos, Cond: c.expr(e.Cond), T: c.expr(e.T), F: c.expr(e.F), Type: e.Type}
	case *CallExpr:
		ne := &CallExpr{Pos: e.Pos, Fun: c.expr(e.Fun).(*Ident), Type: e.Type}
		for _, a := range e.Args {
			ne.Args = append(ne.Args, c.expr(a))
		}
		return ne
	case *IndexExpr:
		return &IndexExpr{Pos: e.Pos, X: c.expr(e.X), Idx: c.expr(e.Idx), Type: e.Type}
	case *MemberExpr:
		return &MemberExpr{Pos: e.Pos, X: c.expr(e.X), Name: e.Name, Arrow: e.Arrow, Type: e.Type}
	case *CastExpr:
		return &CastExpr{Pos: e.Pos, To: e.To, X: c.expr(e.X), Type: e.Type}
	case *SizeofExpr:
		ne := &SizeofExpr{Pos: e.Pos, OfType: e.OfType, Type: e.Type}
		if e.X != nil {
			ne.X = c.expr(e.X)
		}
		return ne
	case *CommaExpr:
		ne := &CommaExpr{Pos: e.Pos, Type: e.Type}
		for _, x := range e.List {
			ne.List = append(ne.List, c.expr(x))
		}
		return ne
	case *InitList:
		ne := &InitList{Pos: e.Pos, Type: e.Type}
		for _, x := range e.List {
			ne.List = append(ne.List, c.expr(x))
		}
		return ne
	default:
		panic(fmt.Sprintf("cc: clone: unknown expression %T", e))
	}
}

// RebindVar repoints a variable use at a different symbol, the per-variant
// primitive of AST-resident instantiation: after the call the Ident both
// resolves to sym (interpreter and compiler key on Ident.Sym) and prints as
// sym (the printer emits Ident.Name). The caller is responsible for sym
// being visible at the use with a compatible type; RebindVarChecked
// verifies exactly that.
func RebindVar(id *Ident, sym *Symbol) {
	id.Sym = sym
	id.Name = sym.Name
}

// RebindVarChecked is RebindVar with the sema invariants asserted: sym must
// be in the use's visible set (so a re-parse of the printed program resolves
// the name to the same declaration — no shadowing surprises) and its type
// must match the use's current type (so enclosing expression types stay
// valid without re-running type checking). It is the debug mode behind the
// campaign engine's -paranoid flag.
func RebindVarChecked(id *Ident, sym *Symbol) error {
	if id.Sym == nil {
		return fmt.Errorf("cc: rebind %q at %v: unresolved use", id.Name, id.Pos)
	}
	if got, want := sym.Type.String(), id.Sym.Type.String(); got != want {
		return fmt.Errorf("cc: rebind %q at %v: type %s does not match %s", id.Name, id.Pos, got, want)
	}
	visible := false
	for _, s := range id.Visible {
		if s == sym {
			visible = true
			break
		}
	}
	if !visible {
		return fmt.Errorf("cc: rebind %q at %v: %q (symbol %d) is not visible at the use", id.Name, id.Pos, sym.Name, sym.ID)
	}
	RebindVar(id, sym)
	return nil
}
