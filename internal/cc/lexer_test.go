package cc

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("int a = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"int", "a", "=", "42", ";"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	if toks[0].Kind != KEYWORD || toks[1].Kind != IDENT || toks[3].Kind != INTLIT {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestLexOperators(t *testing.T) {
	src := "a <<= b >>= c << d >> e <= f >= g == h != i && j || k -> l ++ -- += -= *= /= %= &= |= ^= ..."
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == PUNCT {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "..."}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v\nwant %v", ops, want)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"0", INTLIT}, {"123", INTLIT}, {"0x1f", INTLIT}, {"0X1F", INTLIT},
		{"07", INTLIT}, {"42u", INTLIT}, {"42UL", INTLIT}, {"42l", INTLIT},
		{"1.5", FLOATLIT}, {"1.", FLOATLIT}, {".5", FLOATLIT},
		{"1e10", FLOATLIT}, {"1.5e-3", FLOATLIT}, {"2.5f", FLOATLIT},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != c.kind {
			t.Errorf("%q lexed to %v (%v), want single %v", c.src, texts(toks), kinds(toks), c.kind)
		}
	}
}

func TestLexCharAndString(t *testing.T) {
	toks, err := LexAll(`'a' '\n' '\0' '\x41' "hello\n" "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a" || toks[1].Text != "\n" || toks[2].Text != "\x00" || toks[3].Text != "A" {
		t.Errorf("char lits = %q %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text, toks[3].Text)
	}
	if toks[4].Text != "hello\n" || toks[5].Text != `a"b` {
		t.Errorf("string lits = %q %q", toks[4].Text, toks[5].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a // line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(texts(toks), ""); got != "abc" {
		t.Errorf("after comments: %q, want abc", got)
	}
}

func TestLexPreprocessorLinesDropped(t *testing.T) {
	toks, err := LexAll("#include <stdio.h>\nint a;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "int" {
		t.Errorf("first token %q, want int", toks[0].Text)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  a;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("a at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'x", `"unterminated`, "/* unterminated", "'\\q'", "@", "$"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}
