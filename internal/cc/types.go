package cc

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the scalar types of the subset.
type BasicKind int

// Basic type kinds, ordered roughly by conversion rank.
const (
	Void BasicKind = iota
	Char
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	Float
	Double
)

var basicNames = map[BasicKind]string{
	Void: "void", Char: "char", UChar: "unsigned char",
	Short: "short", UShort: "unsigned short",
	Int: "int", UInt: "unsigned int",
	Long: "long", ULong: "unsigned long",
	Float: "float", Double: "double",
}

// Type is the interface implemented by all types in the subset.
type Type interface {
	// String returns the canonical spelling used for type equality.
	String() string
	// Size returns the size in bytes under the ILP32-like model used by the
	// interpreter and compiler (char=1, short=2, int=4, long=8, float=4,
	// double=8, pointer=8).
	Size() int
}

// BasicType is a scalar builtin type.
type BasicType struct{ Kind BasicKind }

func (t *BasicType) String() string { return basicNames[t.Kind] }

// Size implements Type.
func (t *BasicType) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Char, UChar:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt, Float:
		return 4
	default:
		return 8
	}
}

// IsUnsigned reports whether the kind is an unsigned integer type.
func (t *BasicType) IsUnsigned() bool {
	switch t.Kind {
	case UChar, UShort, UInt, ULong:
		return true
	}
	return false
}

// IsInteger reports whether the kind is an integer type.
func (t *BasicType) IsInteger() bool {
	switch t.Kind {
	case Char, UChar, Short, UShort, Int, UInt, Long, ULong:
		return true
	}
	return false
}

// IsFloat reports whether the kind is a floating type.
func (t *BasicType) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// PointerType is a pointer to Elem.
type PointerType struct{ Elem Type }

func (t *PointerType) String() string { return t.Elem.String() + "*" }

// Size implements Type.
func (t *PointerType) Size() int { return 8 }

// ArrayType is a fixed-size array of Elem.
type ArrayType struct {
	Elem Type
	Len  int
}

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len) }

// Size implements Type.
func (t *ArrayType) Size() int { return t.Elem.Size() * t.Len }

// Field is a struct member.
type Field struct {
	Name string
	Type Type
}

// StructType is a struct with named fields. Struct identity is nominal:
// two struct types are equal iff their tags are equal.
type StructType struct {
	Tag    string
	Fields []Field
}

func (t *StructType) String() string { return "struct " + t.Tag }

// Size implements Type (no padding: the subset's ABI packs fields).
func (t *StructType) Size() int {
	total := 0
	for _, f := range t.Fields {
		total += f.Type.Size()
	}
	return total
}

// FieldIndex returns the index of the named field, or -1.
func (t *StructType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FuncType is a function type.
type FuncType struct {
	Ret    Type
	Params []Type
}

func (t *FuncType) String() string {
	var sb strings.Builder
	sb.WriteString(t.Ret.String())
	sb.WriteString("(")
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Size implements Type.
func (t *FuncType) Size() int { return 8 }

// Shared singletons for common basic types.
var (
	TypeVoid   = &BasicType{Kind: Void}
	TypeChar   = &BasicType{Kind: Char}
	TypeInt    = &BasicType{Kind: Int}
	TypeUInt   = &BasicType{Kind: UInt}
	TypeLong   = &BasicType{Kind: Long}
	TypeULong  = &BasicType{Kind: ULong}
	TypeFloat  = &BasicType{Kind: Float}
	TypeDouble = &BasicType{Kind: Double}
)

// SameType reports whether two types are identical (by canonical spelling).
func SameType(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IsArithmetic reports whether t is an integer or floating type.
func IsArithmetic(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && (b.IsInteger() || b.IsFloat())
}

// IsIntegerType reports whether t is an integer type.
func IsIntegerType(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.IsInteger()
}

// IsScalar reports whether t is arithmetic or a pointer.
func IsScalar(t Type) bool {
	if _, ok := t.(*PointerType); ok {
		return true
	}
	return IsArithmetic(t)
}

// Decay converts array types to pointer types (array-to-pointer decay) and
// leaves other types unchanged.
func Decay(t Type) Type {
	if at, ok := t.(*ArrayType); ok {
		return &PointerType{Elem: at.Elem}
	}
	return t
}
