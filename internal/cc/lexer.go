package cc

import (
	"fmt"
	"strings"
)

// Lexer converts C source text into a token stream. It handles line and
// block comments, all integer literal bases with suffixes, floating
// literals, character and string literals with escapes, and the full C
// punctuator set.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error at a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: lex error: %s", e.Pos, e.Msg) }

func (l *Lexer) errorf(format string, args ...interface{}) error {
	return &LexError{Pos: Pos{l.line, l.col}, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments, and
// preprocessor lines (which are ignored: the corpus is preprocessor-free
// except for occasional #include lines in seeds, which we tolerate and drop).
func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '#' && l.col == 1:
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// punctuators, longest first within each leading byte, checked greedily.
var punct3 = []string{"<<=", ">>=", "..."}
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"++", "--", "->",
}

// Next returns the next token, or an error.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := IDENT
		if keywords[text] {
			kind = KEYWORD
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c) || c == '.' && isDigit(l.peek2()):
		return l.lexNumber(pos)
	case c == '\'':
		return l.lexCharLit(pos)
	case c == '"':
		return l.lexStringLit(pos)
	}
	// punctuators
	rest := l.src[l.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: PUNCT, Text: p, Pos: pos}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			l.advance()
			l.advance()
			return Token{Kind: PUNCT, Text: p, Pos: pos}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '!', '~', '&', '|', '^',
		'(', ')', '{', '}', '[', ']', ';', ',', '.', '?', ':':
		l.advance()
		return Token{Kind: PUNCT, Text: string(c), Pos: pos}, nil
	}
	return Token{}, l.errorf("unexpected character %q", c)
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			return Token{}, l.errorf("malformed hex literal")
		}
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.off
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if isDigit(l.peek()) {
				isFloat = true
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				// not an exponent after all; back up (cannot happen with
				// valid C, but keep the lexer total)
				l.off = save
			}
		}
	}
	// suffixes
	if isFloat {
		if l.peek() == 'f' || l.peek() == 'F' || l.peek() == 'l' || l.peek() == 'L' {
			l.advance()
		}
		return Token{Kind: FLOATLIT, Text: l.src[start:l.off], Pos: pos}, nil
	}
	for l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L' {
		l.advance()
	}
	return Token{Kind: INTLIT, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *Lexer) lexEscape() (byte, error) {
	// called after consuming the backslash
	if l.off >= len(l.src) {
		return 0, l.errorf("unterminated escape sequence")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case 'x':
		v := 0
		n := 0
		for l.off < len(l.src) && isHexDigit(l.peek()) && n < 2 {
			d := l.advance()
			switch {
			case d >= '0' && d <= '9':
				v = v*16 + int(d-'0')
			case d >= 'a' && d <= 'f':
				v = v*16 + int(d-'a'+10)
			default:
				v = v*16 + int(d-'A'+10)
			}
			n++
		}
		if n == 0 {
			return 0, l.errorf("malformed hex escape")
		}
		return byte(v), nil
	default:
		return 0, l.errorf("unknown escape \\%c", c)
	}
}

func (l *Lexer) lexCharLit(pos Pos) (Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return Token{}, l.errorf("unterminated character literal")
	}
	var val byte
	c := l.advance()
	if c == '\\' {
		v, err := l.lexEscape()
		if err != nil {
			return Token{}, err
		}
		val = v
	} else {
		val = c
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		return Token{}, l.errorf("unterminated character literal")
	}
	l.advance()
	return Token{Kind: CHARLIT, Text: string(val), Pos: pos}, nil
}

func (l *Lexer) lexStringLit(pos Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errorf("unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			v, err := l.lexEscape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(v)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: STRINGLIT, Text: sb.String(), Pos: pos}, nil
}

// LexAll tokenizes the entire input, excluding the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
