package cc

import (
	"testing"
	"testing/quick"

	"strings"
)

// TestQuickLexerTotal: the lexer never panics and either tokenizes or
// returns an error on arbitrary printable input.
func TestQuickLexerTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// restrict to printable ASCII plus whitespace so the corpus stays
		// in the lexer's input domain
		var sb strings.Builder
		for _, b := range raw {
			c := b%95 + 32
			sb.WriteByte(c)
		}
		_, _ = LexAll(sb.String())
		return true // totality is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserTotal: the parser never panics on arbitrary token soup.
func TestQuickParserTotal(t *testing.T) {
	words := []string{
		"int", "char", "double", "struct", "if", "else", "while", "for",
		"return", "goto", "a", "b", "x", "1", "2", "0x1f", "1.5",
		"(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/",
		"&", "&&", "==", "<", "?", ":", "\"s\"", "'c'",
	}
	f := func(raw []byte) bool {
		var sb strings.Builder
		for _, b := range raw {
			sb.WriteString(words[int(b)%len(words)])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrinterFixedPoint: printing a parsed program and reparsing it
// reaches a fixed point for a generated family of programs.
func TestQuickPrinterFixedPoint(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ops := []string{"+", "-", "*", "&", "|", "^"}
		src := "int main() { int x = " + itoa(int(a%10)) +
			"; int y = x " + ops[int(b)%len(ops)] + " " + itoa(int(c%9)+1) +
			"; if (x " + []string{"<", ">", "=="}[int(c)%3] + " y) y = x; return y & 63; }"
		f1, err := Parse(src)
		if err != nil {
			return false
		}
		p1 := PrintFile(f1)
		f2, err := Parse(p1)
		if err != nil {
			return false
		}
		return PrintFile(f2) == p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestQuickTruncatedInputsError: every prefix of a valid program either
// parses or errors cleanly — no panics, no hangs.
func TestQuickTruncatedInputsError(t *testing.T) {
	const full = `
struct s { int x; };
struct s v;
int g = 2;
int add(int a, int b) { return a + b; }
int main() {
    int i, n = 0;
    for (i = 0; i < 4; i++) { n += add(i, g); }
    v.x = n;
    return v.x;
}
`
	for cut := 0; cut <= len(full); cut++ {
		_, _ = Parse(full[:cut])
	}
}
