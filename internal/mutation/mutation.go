// Package mutation implements the Orion statement-deletion mutation
// baseline (Le et al., PLDI 2014) that the paper compares against in its
// coverage experiment (Figure 9, "PM-X"): delete up to X statements from
// the program's dead regions — statements the reference execution never
// reaches — producing equivalence-modulo-inputs variants.
package mutation

import (
	"math/rand"

	"spe/internal/cc"
	"spe/internal/interp"
)

// AllStatements collects every statement in the program, in source order.
func AllStatements(prog *cc.Program) []cc.Stmt {
	var out []cc.Stmt
	var walk func(cc.Stmt)
	walk = func(st cc.Stmt) {
		if st == nil {
			return
		}
		out = append(out, st)
		switch st := st.(type) {
		case *cc.BlockStmt:
			for _, s := range st.List {
				walk(s)
			}
		case *cc.IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *cc.WhileStmt:
			walk(st.Body)
		case *cc.DoWhileStmt:
			walk(st.Body)
		case *cc.ForStmt:
			walk(st.Init)
			walk(st.Body)
		case *cc.LabeledStmt:
			walk(st.Stmt)
		}
	}
	for _, fd := range prog.Funcs {
		for _, s := range fd.Body.List {
			walk(s)
		}
	}
	return out
}

// DeadStatements returns the statements never executed by the reference
// run, excluding declarations (whose deletion usually breaks compilation)
// and labels (which may be goto targets).
func DeadStatements(prog *cc.Program, executed map[cc.Stmt]bool) []cc.Stmt {
	var dead []cc.Stmt
	for _, st := range AllStatements(prog) {
		if executed[st] {
			continue
		}
		switch st.(type) {
		case *cc.DeclStmt, *cc.LabeledStmt, *cc.EmptyStmt, *cc.BlockStmt:
			continue
		}
		dead = append(dead, st)
	}
	return dead
}

// Variant is one mutation result.
type Variant struct {
	Source  string
	Deleted int
}

// Options configures a mutation campaign over one program.
type Options struct {
	// MaxDelete is the paper's X in PM-X: at most X statements deleted per
	// variant.
	MaxDelete int
	// Count is the number of variants to generate.
	Count int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate runs the reference interpreter to find dead regions and emits
// statement-deletion variants. Variants that no longer parse and analyze
// are discarded (mirroring Orion's validity filtering). The original
// program is never among the results.
func Generate(prog *cc.Program, opts Options) []Variant {
	ref := interp.Run(prog, interp.Config{})
	dead := DeadStatements(prog, ref.Executed)
	if len(dead) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := map[string]bool{}
	var out []Variant
	for attempt := 0; attempt < opts.Count*4 && len(out) < opts.Count; attempt++ {
		k := 1 + rng.Intn(opts.MaxDelete)
		if k > len(dead) {
			k = len(dead)
		}
		omit := make(map[cc.Stmt]bool, k)
		perm := rng.Perm(len(dead))
		for i := 0; i < k; i++ {
			omit[dead[perm[i]]] = true
		}
		p := cc.Printer{Omit: omit}
		src := p.File(prog.File)
		if seen[src] {
			continue
		}
		seen[src] = true
		// validity filter: the variant must still compile
		f, err := cc.Parse(src)
		if err != nil {
			continue
		}
		if _, err := cc.Analyze(f); err != nil {
			continue
		}
		out = append(out, Variant{Source: src, Deleted: len(omit)})
	}
	return out
}
