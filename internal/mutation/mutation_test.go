package mutation

import (
	"fmt"
	"testing"

	"spe/internal/cc"
	"spe/internal/interp"
)

const deadRegionProg = `
int main() {
    int a = 1;
    if (a) {
        a = 2;
    } else {
        a = 3;
        a = 4;
    }
    if (a > 100) {
        a = 5;
        a = 6;
    }
    return a;
}
`

func TestDeadStatements(t *testing.T) {
	prog := cc.MustAnalyze(deadRegionProg)
	ref := interp.Run(prog, interp.Config{})
	if !ref.Defined() || ref.Exit != 2 {
		t.Fatalf("reference: %+v", ref)
	}
	dead := DeadStatements(prog, ref.Executed)
	// dead: a=3, a=4 (else branch), a=5, a=6 (untaken if) = 4 statements
	if len(dead) != 4 {
		for _, d := range dead {
			t.Logf("dead: %T at %v", d, d.NodePos())
		}
		t.Fatalf("dead statements = %d, want 4", len(dead))
	}
}

func TestGenerateVariantsAreValidAndEMI(t *testing.T) {
	prog := cc.MustAnalyze(deadRegionProg)
	ref := interp.Run(prog, interp.Config{})
	variants := Generate(prog, Options{MaxDelete: 2, Count: 8, Seed: 1})
	if len(variants) == 0 {
		t.Fatal("no variants generated")
	}
	for _, v := range variants {
		vp := cc.MustAnalyze(v.Source) // must remain valid
		// EMI property: deleting dead statements preserves behavior
		vr := interp.Run(vp, interp.Config{})
		if !vr.Defined() {
			t.Errorf("variant has UB: %v\n%s", vr.UB, v.Source)
			continue
		}
		if vr.Exit != ref.Exit || vr.Output != ref.Output {
			t.Errorf("EMI violated: variant (%d, %q) vs reference (%d, %q)\n%s",
				vr.Exit, vr.Output, ref.Exit, ref.Output, v.Source)
		}
		if v.Deleted < 1 || v.Deleted > 2 {
			t.Errorf("deleted = %d, want 1..2", v.Deleted)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prog := cc.MustAnalyze(deadRegionProg)
	a := Generate(prog, Options{MaxDelete: 2, Count: 5, Seed: 3})
	b := Generate(prog, Options{MaxDelete: 2, Count: 5, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateNoDeadRegions(t *testing.T) {
	prog := cc.MustAnalyze(`int main() { int a = 1; a = 2; return a; }`)
	variants := Generate(prog, Options{MaxDelete: 3, Count: 5, Seed: 1})
	if len(variants) != 0 {
		t.Errorf("fully-live program produced %d variants", len(variants))
	}
}

func TestAllStatementsWalk(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int i;
    for (i = 0; i < 3; i++) {
        while (0) { i = 9; }
        do ; while (0);
    }
l:  return i;
}`)
	stmts := AllStatements(prog)
	kinds := map[string]bool{}
	for _, s := range stmts {
		kinds[fmt.Sprintf("%T", s)] = true
	}
	for _, want := range []string{"*cc.ForStmt", "*cc.WhileStmt", "*cc.DoWhileStmt", "*cc.LabeledStmt", "*cc.ReturnStmt", "*cc.DeclStmt"} {
		if !kinds[want] {
			t.Errorf("AllStatements missed %s (have %v)", want, kinds)
		}
	}
}
