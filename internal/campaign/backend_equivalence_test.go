package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"spe/internal/corpus"
)

// These tests pin the central invariant of backend reuse: campaign reports
// are byte-identical with the pooled backends on (the default: interpreter
// machine pooling + minicc IR-template caching) and off (NoBackendReuse,
// every variant on cold state) — across worker counts, dispatch schedules,
// and checkpoint/resume. The cold report is the PR 3 semantics, so these
// tests are what licenses shipping reuse as the default.

func backendBaseConfig() Config {
	return Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		ShardSize:          8,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestBackendReuseEquivalence compares reuse on/off at several worker
// counts under both schedules.
func TestBackendReuseEquivalence(t *testing.T) {
	cold := backendBaseConfig()
	cold.NoBackendReuse = true
	cold.Workers = 1
	want := mustRun(t, cold).Format()

	workerCounts := []int{1, 3, runtime.NumCPU() + 1}
	if testing.Short() {
		workerCounts = []int{3} // race CI: one parallel config per schedule
	}
	for _, schedule := range []string{ScheduleFIFO, ScheduleCoverage} {
		for _, workers := range workerCounts {
			cfg := backendBaseConfig()
			cfg.Schedule = schedule
			cfg.Workers = workers
			if got := mustRun(t, cfg).Format(); got != want {
				t.Errorf("reuse report diverges (schedule=%s workers=%d):\n--- reuse ---\n%s--- cold ---\n%s",
					schedule, workers, got, want)
			}
		}
	}
}

// TestBackendReusePlusVersions widens the configuration matrix: several
// compiler versions and the full -O ladder, where seeded frontend crashes
// come and go per version — the replayed crash-check trace must track the
// live bug set exactly.
func TestBackendReusePlusVersions(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:3],
		Versions:           []string{"4.8", "6.0", "trunk"},
		MaxVariantsPerFile: 40,
		Workers:            2,
	}
	cold := base
	cold.NoBackendReuse = true
	want := mustRun(t, cold).Format()
	if got := mustRun(t, base).Format(); got != want {
		t.Errorf("reuse report diverges across versions:\n--- reuse ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestBackendReuseParanoid runs the reuse path with -paranoid: every
// template-derived lowering is cross-checked against a fresh Lower, every
// rebind is invariant-checked, and the report must still match the cold
// baseline.
func TestBackendReuseParanoid(t *testing.T) {
	cold := backendBaseConfig()
	cold.NoBackendReuse = true
	want := mustRun(t, cold).Format()

	cfg := backendBaseConfig()
	cfg.Paranoid = true
	cfg.Workers = 2
	if got := mustRun(t, cfg).Format(); got != want {
		t.Errorf("paranoid reuse report diverges:\n--- paranoid ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestBackendReuseRenderPath pins that the -render-path baseline is also
// unaffected by machine pooling (the IR cache is AST-path-only, but the
// interpreter machine is reused on both paths).
func TestBackendReuseRenderPath(t *testing.T) {
	if testing.Short() {
		t.Skip("render-path flavor is covered unpooled by the ast-equivalence tests")
	}
	cold := backendBaseConfig()
	cold.NoBackendReuse = true
	cold.ForceRenderPath = true
	want := mustRun(t, cold).Format()

	cfg := backendBaseConfig()
	cfg.ForceRenderPath = true
	cfg.Workers = 2
	if got := mustRun(t, cfg).Format(); got != want {
		t.Errorf("render-path reuse report diverges:\n--- reuse ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestBackendReuseResume kills a reuse-enabled checkpointed campaign
// mid-run and asserts the resumed report matches the cold uninterrupted
// baseline: pooled backends hold no state a checkpoint would need.
func TestBackendReuseResume(t *testing.T) {
	base := backendBaseConfig()
	base.Workers = 2
	base.CheckpointEvery = 1

	cold := base
	cold.NoBackendReuse = true
	want := mustRun(t, cold).Format()

	path := filepath.Join(t.TempDir(), "backend.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; resume still replays the tail")
	}
	cancel()
	<-done
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed reuse report diverges from cold baseline:\n--- resumed ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestBackendReuseDirtyState is the campaign-level dirty-state regression
// test: a corpus whose variants mutate globals, static locals, and heap
// objects through pointers must report identically on pooled and cold
// backends — any state leaking from variant N into variant N+1 through a
// reused interpreter machine, VM slab, or patched IR template would show
// up as diverging UB filtering or differential verdicts.
func TestBackendReuseDirtyState(t *testing.T) {
	dirty := `
int g = 1;
int h = 2;
int counter() { static int n = 0; n = n + 1; return n; }
int main() {
    int a = 3, b = 4;
    int buf[6];
    int *p = &a;
    int i;
    for (i = 0; i < 6; i++) buf[i] = g + i;
    g = g + b;
    h = h + a;
    *p = counter() + buf[2];
    printf("%d %d %d %d\n", g, h, a, counter());
    return g + h + a + b;
}
`
	base := Config{
		Corpus:             []string{dirty},
		Versions:           []string{"trunk"},
		Threshold:          -1, // the probe's canonical space is large by design
		MaxVariantsPerFile: 120,
		Workers:            1,
	}
	cold := base
	cold.NoBackendReuse = true
	want := mustRun(t, cold)
	if want.Stats.VariantsClean == 0 {
		t.Fatal("dirty-state corpus produced no clean variants; test is vacuous")
	}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		got := mustRun(t, cfg)
		if got.Format() != want.Format() {
			t.Errorf("workers=%d: dirty-state report diverges:\n--- reuse ---\n%s--- cold ---\n%s",
				workers, got.Format(), want.Format())
		}
	}
}
