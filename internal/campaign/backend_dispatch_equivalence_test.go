package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// These tests pin the speed-axis invariant of the compiled-binary backend
// rework: campaign reports are byte-identical across -backend-dispatch
// threaded (the default fused handler-table minicc VM) and switch (the
// monolithic opcode switch), and with the batched per-config shard walk on
// and off (-backend-batch) — across worker counts and schedules, under
// -paranoid, and through checkpoint/resume. The baseline is the
// variant-outer, switch-dispatch shape (the PR 7 semantics), so every cell
// is compared against it rather than against a sibling cell.

// TestBackendDispatchEquivalenceMatrix is the full cross of backend
// dispatch engine x per-config batching x schedule x workers against the
// variant-outer switch baseline.
func TestBackendDispatchEquivalenceMatrix(t *testing.T) {
	base := backendBaseConfig()
	base.Workers = 1
	base.BackendDispatch = BackendDispatchSwitch
	base.NoBackendBatch = true
	want := mustRun(t, base).Format()

	workerCounts := []int{1, 3}
	schedules := []string{ScheduleFIFO, ScheduleCoverage}
	if testing.Short() {
		workerCounts = []int{3} // race CI: one parallel config per cell
		schedules = []string{ScheduleFIFO}
	}
	for _, schedule := range schedules {
		for _, workers := range workerCounts {
			for _, dispatch := range []string{BackendDispatchThreaded, BackendDispatchSwitch} {
				for _, noBatch := range []bool{false, true} {
					cfg := backendBaseConfig()
					cfg.Schedule = schedule
					cfg.Workers = workers
					cfg.BackendDispatch = dispatch
					cfg.NoBackendBatch = noBatch
					if got := mustRun(t, cfg).Format(); got != want {
						t.Errorf("report diverges (schedule=%s workers=%d backend-dispatch=%s noBatch=%v):\n--- got ---\n%s--- baseline ---\n%s",
							schedule, workers, dispatch, noBatch, got, want)
					}
				}
			}
		}
	}
}

// TestBackendDispatchParanoid runs both backend dispatch engines with
// batching on under -paranoid, where every re-bound variant of the
// config-outer walk carries the render+reparse and patched-IR
// cross-checks; the report must still match the variant-outer baseline.
func TestBackendDispatchParanoid(t *testing.T) {
	base := backendBaseConfig()
	base.Workers = 1
	base.BackendDispatch = BackendDispatchSwitch
	base.NoBackendBatch = true
	want := mustRun(t, base).Format()

	for _, dispatch := range []string{BackendDispatchThreaded, BackendDispatchSwitch} {
		cfg := backendBaseConfig()
		cfg.BackendDispatch = dispatch
		cfg.Paranoid = true
		cfg.Workers = 2
		if got := mustRun(t, cfg).Format(); got != want {
			t.Errorf("paranoid report diverges (backend-dispatch=%s):\n--- got ---\n%s--- baseline ---\n%s",
				dispatch, got, want)
		}
	}
}

// TestBackendDispatchResume kills a checkpointed switch-dispatch batched
// campaign mid-run and asserts the resumed report matches the baseline:
// the checkpoint embeds BackendDispatch in its config, and the
// config-outer walk replays deterministically from the shard boundary.
func TestBackendDispatchResume(t *testing.T) {
	base := backendBaseConfig()
	base.Workers = 2
	base.CheckpointEvery = 1

	baseline := base
	baseline.BackendDispatch = BackendDispatchSwitch
	baseline.NoBackendBatch = true
	want := mustRun(t, baseline).Format()

	path := filepath.Join(t.TempDir(), "backend-dispatch.ckpt.json")
	cfg := base
	cfg.BackendDispatch = BackendDispatchSwitch
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; resume still replays the tail")
	}
	cancel()
	<-done
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed switch-dispatch report diverges from baseline:\n--- resumed ---\n%s--- baseline ---\n%s", got, want)
	}
}

// TestBackendDispatchUnknownRejected pins the config validation.
func TestBackendDispatchUnknownRejected(t *testing.T) {
	cfg := backendBaseConfig()
	cfg.BackendDispatch = "quantum"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown backend dispatch accepted")
	}
}
