package campaign

import (
	"sort"
	"sync"

	"spe/internal/minicc"
)

// The scheduler is the engine's dispatch policy: it owns every not-yet-
// dispatched shard task and decides which one a worker gets next. Dispatch
// order is the ONLY thing it controls — the aggregator still merges results
// in canonical seq order, so any policy produces a byte-identical Report —
// but order determines how fast the campaign's compiler-coverage frontier
// grows, which is what the paper's Figure-9 measurements steer by.
//
// Two policies exist. ScheduleFIFO replays PR 1's canonical enumeration
// order. ScheduleCoverage is feedback-directed: each completed shard
// reports the instrumentation sites it hit, the scheduler diffs them
// against the campaign-wide frontier, and credits its region (corpus file)
// with the novelty. Regions whose recent shards found new sites are
// drained first; a region whose shards stop producing novelty decays
// geometrically and the scheduler moves on. Unvisited regions start with
// an optimistic score so every region is sampled early — the breadth pass
// that makes coverage grow much faster than grinding files in order.
//
// Dispatch is bounded by a lookahead horizon: a task may only be sent
// while its seq is within cfg.Lookahead of the aggregator's merge cursor.
// The horizon equals the engine's dispatch-credit window, which yields two
// invariants: the reorder buffer stays O(Lookahead), and the producer can
// never deadlock — whenever it holds a free credit, the lowest undispatched
// seq is provably within the horizon (at most Lookahead-1 tasks can sit
// unmerged below it), so pop always has an eligible candidate.

// optimisticScore ranks never-visited regions above any observed novelty.
const optimisticScore = 1e18

// noveltyDecay is the geometric memory of a region's score: each observed
// shard halves the past before adding its own new-site count, so a few
// barren shards in a row demote a stale region below fresher ones.
const noveltyDecay = 0.5

// costDecay is the EWMA weight of the per-variant wall-clock model used by
// adaptive shard sizing.
const costDecay = 0.7

// maxBatch caps how many micro-shards one adaptive dispatch may group.
const maxBatch = 64

// steering is the persisted half of the scheduler: the coverage frontier,
// cost model, and region scores a checkpoint carries so a resumed campaign
// keeps the steering it had learned before the interruption.
type steering struct {
	// Frontier is the sorted set of instrumentation sites hit so far.
	Frontier minicc.Snapshot
	// CostNsPerVariant is the adaptive-sizing cost model (0 = unlearned).
	CostNsPerVariant float64
	// RegionScores maps corpus seed index to its current novelty score.
	RegionScores map[int]float64
}

// regionQueue holds one corpus file's undispatched tasks in seq order.
type regionQueue struct {
	seedIdx int
	tasks   []*task
	head    int
}

func (q *regionQueue) peek() *task {
	if q.head >= len(q.tasks) {
		return nil
	}
	return q.tasks[q.head]
}

type scheduler struct {
	mu  sync.Mutex
	cfg Config
	// cursor mirrors the aggregator's merge cursor (st.nextSeq); the
	// eligibility horizon is [cursor, cursor+Lookahead).
	cursor  int
	regions []*regionQueue
	pending int // undispatched tasks across all regions

	frontier map[string]bool
	scores   map[int]float64
	visited  map[int]bool
	costNs   float64

	curve    []CoveragePoint
	variants int // cumulative variants completed, in observation order
}

// newScheduler indexes the undispatched suffix of the task sequence
// (startSeq is the resume point) and seeds steering from a checkpoint.
func newScheduler(cfg Config, all []*task, startSeq int, st *steering) *scheduler {
	s := &scheduler{
		cfg:      cfg,
		cursor:   startSeq,
		frontier: make(map[string]bool),
		scores:   make(map[int]float64),
		visited:  make(map[int]bool),
	}
	byRegion := make(map[int]*regionQueue)
	for _, t := range all {
		if t.seq < startSeq {
			continue // already merged into the resumed state
		}
		q, ok := byRegion[t.plan.seedIdx]
		if !ok {
			q = &regionQueue{seedIdx: t.plan.seedIdx}
			byRegion[t.plan.seedIdx] = q
			s.regions = append(s.regions, q)
		}
		q.tasks = append(q.tasks, t)
		s.pending++
	}
	if st != nil {
		for _, site := range st.Frontier {
			s.frontier[site] = true
		}
		s.costNs = st.CostNsPerVariant
		for seed, score := range st.RegionScores {
			s.scores[seed] = score
			s.visited[seed] = true
		}
		if n := len(s.frontier); n > 0 {
			// the resumed curve restarts at the restored frontier
			s.curve = append(s.curve, CoveragePoint{Variants: 0, Sites: n})
		}
	}
	return s
}

// score returns a region's dispatch priority under the coverage policy.
func (s *scheduler) score(seedIdx int) float64 {
	if !s.visited[seedIdx] {
		return optimisticScore
	}
	return s.scores[seedIdx]
}

// pop hands out the next task to dispatch, or ok=false when every task has
// been dispatched. The caller must hold one free dispatch credit, which is
// what guarantees an eligible candidate exists (see the package comment on
// the lookahead invariant).
//
// lastCredit must be true when the caller holds the final free dispatch
// credit. Liveness depends on it: the merge cursor only advances through
// dispatched seqs, and credits only return on merges, so spending the last
// credit on anything but the lowest undispatched seq could leave the
// aggregator waiting forever on a task no credit remains to dispatch.
// Forcing the head-of-line pick there guarantees every seq at or below the
// forced one is in flight, so the merge (and the credit supply) always
// recovers — and in exchange every other pick is free to chase novelty.
func (s *scheduler) pop(lastCredit bool) (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 {
		return nil, false
	}
	horizon := s.cursor + s.cfg.Lookahead
	prioritize := s.cfg.Schedule == ScheduleCoverage && !lastCredit
	var best, min *regionQueue
	for _, q := range s.regions {
		t := q.peek()
		if t == nil {
			continue
		}
		if min == nil || t.seq < min.peek().seq {
			min = q
		}
		if !prioritize || t.seq >= horizon {
			continue
		}
		if best == nil {
			best = q
			continue
		}
		bs, qs := s.score(best.seedIdx), s.score(q.seedIdx)
		if qs > bs || (qs == bs && t.seq < best.peek().seq) {
			best = q
		}
	}
	// fifo, the last-credit case, and the no-eligible-head fallback all
	// dispatch head-of-line
	q := min
	if best != nil {
		q = best
	}
	t := q.peek()
	q.head++
	s.pending--
	return t, true
}

// observe folds one completed shard's report back into the steering state:
// frontier growth, region novelty, cost model, and the coverage curve.
// Called on arrival (not merge) so feedback reaches dispatch decisions as
// early as possible. It reports the shard's coverage point and whether the
// shard pushed the frontier (novel), for the campaign's telemetry; steering
// itself never depends on the return values.
func (s *scheduler) observe(r *taskResult) (CoveragePoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.ranVariants == 0 {
		return CoveragePoint{}, false // header of a skipped/empty file: no information
	}
	novel := 0
	for _, site := range r.sites {
		if !s.frontier[site] {
			s.frontier[site] = true
			novel++
		}
	}
	seed := r.plan.seedIdx
	if !s.visited[seed] {
		s.visited[seed] = true
		s.scores[seed] = float64(novel)
	} else {
		s.scores[seed] = noveltyDecay*s.scores[seed] + float64(novel)
	}
	if r.ranVariants > 0 && r.elapsedNs > 0 {
		sample := float64(r.elapsedNs) / float64(r.ranVariants)
		if s.costNs == 0 {
			s.costNs = sample
		} else {
			s.costNs = costDecay*s.costNs + (1-costDecay)*sample
		}
	}
	s.variants += r.ranVariants
	point := CoveragePoint{Variants: s.variants, Sites: len(s.frontier)}
	if novel > 0 {
		s.curve = append(s.curve, point)
	}
	return point, novel > 0
}

// costSample reports the EWMA cost model's current per-variant estimate in
// nanoseconds (0 = unlearned). Telemetry-facing; dispatch uses predictNs.
func (s *scheduler) costSample() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.costNs
}

// advance tracks the aggregator's merge cursor, widening the eligibility
// horizon. The aggregator calls it before releasing the merged task's
// dispatch credit, which is what keeps the pop invariant sound.
func (s *scheduler) advance(cursor int) {
	s.mu.Lock()
	s.cursor = cursor
	s.mu.Unlock()
}

// targetNs returns the adaptive batch duration target, or 0 when adaptive
// sizing is disabled or the cost model has not learned yet.
func (s *scheduler) targetNs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.TargetShardMillis <= 0 || s.costNs == 0 {
		return 0
	}
	return float64(s.cfg.TargetShardMillis) * 1e6
}

// predictNs estimates a task's wall-clock cost from the EWMA model.
func (s *scheduler) predictNs(t *task) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := t.toJ - t.fromJ
	if t.includeOriginal {
		n++
	}
	if n <= 0 {
		n = 1 // headers still cost a dispatch
	}
	return s.costNs * float64(n)
}

// steeringSnapshot captures the persistent half of the scheduler for a
// checkpoint write.
func (s *scheduler) steeringSnapshot() *steering {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &steering{CostNsPerVariant: s.costNs}
	if len(s.frontier) > 0 {
		st.Frontier = make(minicc.Snapshot, 0, len(s.frontier))
		for site := range s.frontier {
			st.Frontier = append(st.Frontier, site)
		}
		sort.Strings(st.Frontier)
	}
	if len(s.scores) > 0 {
		st.RegionScores = make(map[int]float64, len(s.scores))
		for seed, score := range s.scores {
			st.RegionScores[seed] = score
		}
	}
	return st
}

// curveSnapshot returns the coverage-over-time curve observed so far.
func (s *scheduler) curveSnapshot() []CoveragePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CoveragePoint(nil), s.curve...)
}
