package campaign

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"spe/internal/minicc"
)

// The scheduler is the engine's dispatch policy: it owns every not-yet-
// dispatched shard task and decides which one a worker gets next. Dispatch
// order is the ONLY thing it controls — the aggregator still merges results
// in canonical seq order, so any policy produces a byte-identical Report —
// but order determines how fast the campaign's compiler-coverage frontier
// grows, which is what the paper's Figure-9 measurements steer by.
//
// Three policies exist. ScheduleFIFO replays PR 1's canonical enumeration
// order. ScheduleCoverage is feedback-directed at corpus-file granularity:
// each completed shard reports the instrumentation sites it hit, the
// scheduler diffs them against the campaign-wide frontier, and credits its
// scoring unit with the novelty. Units whose recent shards found new sites
// are drained first; a unit whose shards stop producing novelty decays
// geometrically and the scheduler moves on. Unvisited units start with an
// optimistic score so every unit is sampled early — the breadth pass that
// makes coverage grow much faster than grinding files in order.
// ScheduleRegion applies the identical model one level deeper: each file's
// walk is cut into regions (contiguous hole-group ranges sharing one
// function's filling, spe.Space.RegionCuts), and the (seed, region) pair
// becomes the scoring unit, so a large multi-function file steers
// internally instead of draining as one opaque block. The EWMA cost model
// and the coverage frontier also go per-region under this policy (with the
// campaign-wide aggregates kept as fallbacks), and checkpoint v3 persists
// the per-region state.
//
// Dispatch is bounded by a lookahead horizon: a task may only be sent
// while its seq is within cfg.Lookahead of the aggregator's merge cursor.
// The horizon equals the engine's dispatch-credit window, which yields two
// invariants: the reorder buffer stays O(Lookahead), and the producer can
// never deadlock — whenever it holds a free credit, the lowest undispatched
// seq is provably within the horizon (at most Lookahead-1 tasks can sit
// unmerged below it), so pop always has an eligible candidate.

// optimisticScore ranks never-visited scoring units above any observed
// novelty.
const optimisticScore = 1e18

// noveltyDecay is the geometric memory of a unit's score: each observed
// shard halves the past before adding its own new-site count, so a few
// barren shards in a row demote a stale unit below fresher ones.
const noveltyDecay = 0.5

// costDecay is the EWMA weight of the per-variant wall-clock model used by
// adaptive shard sizing.
const costDecay = 0.7

// maxBatch caps how many micro-shards one adaptive dispatch may group.
const maxBatch = 64

// qkey identifies one scoring unit: a corpus file under the coverage
// policy (region 0), a (file, region) pair under the region policy.
type qkey struct {
	seed   int
	region int
}

// String renders the checkpoint-v3 map key ("seed:region").
func (k qkey) String() string { return fmt.Sprintf("%d:%d", k.seed, k.region) }

// parseQKey inverts qkey.String; malformed keys (from a hand-edited
// checkpoint) are dropped by the caller.
func parseQKey(s string) (qkey, bool) {
	seedS, regionS, ok := strings.Cut(s, ":")
	if !ok {
		return qkey{}, false
	}
	seed, err1 := strconv.Atoi(seedS)
	region, err2 := strconv.Atoi(regionS)
	if err1 != nil || err2 != nil {
		return qkey{}, false
	}
	return qkey{seed: seed, region: region}, true
}

// steering is the persisted half of the scheduler: the coverage frontier,
// cost model, and scores a checkpoint carries so a resumed campaign keeps
// the steering it had learned before the interruption. Steering is
// advisory only — it shapes dispatch order, never the merged report — so
// a checkpoint from an older version restoring a subset of it is always
// report-safe.
type steering struct {
	// Frontier is the sorted set of instrumentation sites hit so far.
	Frontier minicc.Snapshot
	// CostNsPerVariant is the adaptive-sizing cost model (0 = unlearned).
	CostNsPerVariant float64
	// RegionScores maps corpus seed index to its current novelty score
	// (the checkpoint-v2 field, written under the coverage policy).
	RegionScores map[int]float64
	// The v3 per-region fields, written under the region policy and keyed
	// "seed:region". A v2 checkpoint simply lacks them: the resumed
	// scheduler then restarts region scores from the optimistic init while
	// the campaign-wide frontier (above) still seeds the curve, and the
	// report is byte-identical either way.
	RegionScoresV3  map[string]float64         `json:",omitempty"`
	RegionCostNs    map[string]float64         `json:",omitempty"`
	RegionFrontiers map[string]minicc.Snapshot `json:",omitempty"`
}

// unitQueue holds one scoring unit's undispatched tasks in seq order.
type unitQueue struct {
	key   qkey
	tasks []*task
	head  int
}

func (q *unitQueue) peek() *task {
	if q.head >= len(q.tasks) {
		return nil
	}
	return q.tasks[q.head]
}

// RegionStatus is one scoring unit's live steering state, surfaced by the
// telemetry /status endpoint under the region policy.
type RegionStatus struct {
	Seed     int     `json:"seed"`
	Region   int     `json:"region"`
	Score    float64 `json:"score"`
	Sites    int     `json:"sites"`
	Variants int     `json:"variants"`
	CostNs   float64 `json:"cost_ns_per_variant"`
	Pending  int     `json:"pending_tasks"`
}

// RegionCoveragePoint is one sample of a region's coverage curve: after
// Variants variants completed in that region, its frontier held Sites
// sites. Telemetry-facing (event ring / status); reports never carry it.
type RegionCoveragePoint struct {
	Seed     int `json:"seed"`
	Region   int `json:"region"`
	Variants int `json:"variants"`
	Sites    int `json:"sites"`
}

type scheduler struct {
	mu  sync.Mutex
	cfg Config
	// cursor mirrors the aggregator's merge cursor (st.nextSeq); the
	// eligibility horizon is [cursor, cursor+Lookahead).
	cursor int
	units  []*unitQueue
	byKey  map[qkey]*unitQueue
	// pending counts undispatched tasks across all units.
	pending int

	frontier map[string]bool
	scores   map[qkey]float64
	visited  map[qkey]bool
	costNs   float64

	// per-region state, maintained only under ScheduleRegion: each unit's
	// own coverage frontier, EWMA cost model, and completed-variant count.
	regionSites    map[qkey]map[string]bool
	regionCostNs   map[qkey]float64
	regionVariants map[qkey]int

	curve    []CoveragePoint
	variants int // cumulative variants completed, in observation order
}

// keyOf maps a task's (seed, region) to its scoring unit under the
// configured policy: region granularity only under ScheduleRegion, file
// granularity (region 0) otherwise.
func (s *scheduler) keyOf(seedIdx, region int) qkey {
	if s.cfg.Schedule == ScheduleRegion {
		return qkey{seed: seedIdx, region: region}
	}
	return qkey{seed: seedIdx}
}

// newScheduler indexes the undispatched suffix of the task sequence
// (startSeq is the resume point) and seeds steering from a checkpoint.
func newScheduler(cfg Config, all []*task, startSeq int, st *steering) *scheduler {
	s := &scheduler{
		cfg:      cfg,
		cursor:   startSeq,
		byKey:    make(map[qkey]*unitQueue),
		frontier: make(map[string]bool),
		scores:   make(map[qkey]float64),
		visited:  make(map[qkey]bool),
	}
	if cfg.Schedule == ScheduleRegion {
		s.regionSites = make(map[qkey]map[string]bool)
		s.regionCostNs = make(map[qkey]float64)
		s.regionVariants = make(map[qkey]int)
	}
	for _, t := range all {
		if t.seq < startSeq {
			continue // already merged into the resumed state
		}
		key := s.keyOf(t.plan.seedIdx, t.region)
		q, ok := s.byKey[key]
		if !ok {
			q = &unitQueue{key: key}
			s.byKey[key] = q
			s.units = append(s.units, q)
		}
		q.tasks = append(q.tasks, t)
		s.pending++
	}
	if st != nil {
		for _, site := range st.Frontier {
			s.frontier[site] = true
		}
		s.costNs = st.CostNsPerVariant
		if s.cfg.Schedule == ScheduleRegion {
			// v3 per-region state; a v2 checkpoint has none, leaving every
			// region on the optimistic init (advisory, report-safe)
			for ks, score := range st.RegionScoresV3 {
				if k, ok := parseQKey(ks); ok {
					s.scores[k] = score
					s.visited[k] = true
				}
			}
			for ks, cost := range st.RegionCostNs {
				if k, ok := parseQKey(ks); ok {
					s.regionCostNs[k] = cost
				}
			}
			for ks, snap := range st.RegionFrontiers {
				if k, ok := parseQKey(ks); ok {
					set := make(map[string]bool, len(snap))
					snap.AddTo(set)
					s.regionSites[k] = set
				}
			}
		} else {
			for seed, score := range st.RegionScores {
				k := qkey{seed: seed}
				s.scores[k] = score
				s.visited[k] = true
			}
		}
		if n := len(s.frontier); n > 0 {
			// the resumed curve restarts at the restored frontier
			s.curve = append(s.curve, CoveragePoint{Variants: 0, Sites: n})
		}
	}
	return s
}

// score returns a scoring unit's dispatch priority under the coverage and
// region policies.
func (s *scheduler) score(k qkey) float64 {
	if !s.visited[k] {
		return optimisticScore
	}
	return s.scores[k]
}

// pop hands out the next task to dispatch, or ok=false when every task has
// been dispatched. The caller must hold one free dispatch credit, which is
// what guarantees an eligible candidate exists (see the package comment on
// the lookahead invariant).
//
// lastCredit must be true when the caller holds the final free dispatch
// credit. Liveness depends on it: the merge cursor only advances through
// dispatched seqs, and credits only return on merges, so spending the last
// credit on anything but the lowest undispatched seq could leave the
// aggregator waiting forever on a task no credit remains to dispatch.
// Forcing the head-of-line pick there guarantees every seq at or below the
// forced one is in flight, so the merge (and the credit supply) always
// recovers — and in exchange every other pick is free to chase novelty.
func (s *scheduler) pop(lastCredit bool) (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 {
		return nil, false
	}
	horizon := s.cursor + s.cfg.Lookahead
	prioritize := (s.cfg.Schedule == ScheduleCoverage || s.cfg.Schedule == ScheduleRegion) && !lastCredit
	var best, min *unitQueue
	for _, q := range s.units {
		t := q.peek()
		if t == nil {
			continue
		}
		if min == nil || t.seq < min.peek().seq {
			min = q
		}
		if !prioritize || t.seq >= horizon {
			continue
		}
		if best == nil {
			best = q
			continue
		}
		bs, qs := s.score(best.key), s.score(q.key)
		if qs > bs || (qs == bs && t.seq < best.peek().seq) {
			best = q
		}
	}
	// fifo, the last-credit case, and the no-eligible-head fallback all
	// dispatch head-of-line
	q := min
	if best != nil {
		q = best
	}
	t := q.peek()
	q.head++
	s.pending--
	return t, true
}

// observe folds one completed shard's report back into the steering state:
// frontier growth, unit novelty, cost models, and the coverage curve.
// Called on arrival (not merge) so feedback reaches dispatch decisions as
// early as possible. It reports the shard's coverage point, whether the
// shard pushed the campaign-wide frontier (novel), and — under the region
// policy — the shard's region-curve sample when it pushed its region's
// frontier, for the campaign's telemetry; steering itself never depends on
// the return values.
func (s *scheduler) observe(r *taskResult) (CoveragePoint, bool, *RegionCoveragePoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.ranVariants == 0 {
		return CoveragePoint{}, false, nil // header of a skipped/empty file: no information
	}
	novel := r.sites.AddTo(s.frontier)
	key := s.keyOf(r.plan.seedIdx, r.region)
	if !s.visited[key] {
		s.visited[key] = true
		s.scores[key] = float64(novel)
	} else {
		s.scores[key] = noveltyDecay*s.scores[key] + float64(novel)
	}
	var sample float64
	if r.ranVariants > 0 && r.elapsedNs > 0 {
		sample = float64(r.elapsedNs) / float64(r.ranVariants)
		if s.costNs == 0 {
			s.costNs = sample
		} else {
			s.costNs = costDecay*s.costNs + (1-costDecay)*sample
		}
	}
	var rp *RegionCoveragePoint
	if s.cfg.Schedule == ScheduleRegion {
		if sample > 0 {
			if c := s.regionCostNs[key]; c == 0 {
				s.regionCostNs[key] = sample
			} else {
				s.regionCostNs[key] = costDecay*c + (1-costDecay)*sample
			}
		}
		set := s.regionSites[key]
		if set == nil {
			set = make(map[string]bool, len(r.sites))
			s.regionSites[key] = set
		}
		regionNovel := r.sites.AddTo(set)
		s.regionVariants[key] += r.ranVariants
		if regionNovel > 0 {
			rp = &RegionCoveragePoint{
				Seed:     key.seed,
				Region:   key.region,
				Variants: s.regionVariants[key],
				Sites:    len(set),
			}
		}
	}
	s.variants += r.ranVariants
	point := CoveragePoint{Variants: s.variants, Sites: len(s.frontier)}
	if novel > 0 {
		s.curve = append(s.curve, point)
	}
	return point, novel > 0, rp
}

// costSample reports the EWMA cost model's current per-variant estimate in
// nanoseconds (0 = unlearned). Telemetry-facing; dispatch uses predictNs.
func (s *scheduler) costSample() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.costNs
}

// advance tracks the aggregator's merge cursor, widening the eligibility
// horizon. The aggregator calls it before releasing the merged task's
// dispatch credit, which is what keeps the pop invariant sound.
func (s *scheduler) advance(cursor int) {
	s.mu.Lock()
	s.cursor = cursor
	s.mu.Unlock()
}

// targetNs returns the adaptive batch duration target, or 0 when adaptive
// sizing is disabled or the cost model has not learned yet.
func (s *scheduler) targetNs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.TargetShardMillis <= 0 || s.costNs == 0 {
		return 0
	}
	return float64(s.cfg.TargetShardMillis) * 1e6
}

// predictNs estimates a task's wall-clock cost. Under the region policy
// the task's own region's EWMA is preferred — regions of one file can
// have very different per-variant costs (different functions dominate
// execution) — with the campaign-wide model as the cold-start fallback.
func (s *scheduler) predictNs(t *task) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := t.toJ - t.fromJ
	if t.includeOriginal {
		n++
	}
	if n <= 0 {
		n = 1 // headers still cost a dispatch
	}
	cost := s.costNs
	if s.cfg.Schedule == ScheduleRegion {
		if c := s.regionCostNs[s.keyOf(t.plan.seedIdx, t.region)]; c > 0 {
			cost = c
		}
	}
	return cost * float64(n)
}

// steeringSnapshot captures the persistent half of the scheduler for a
// checkpoint write.
func (s *scheduler) steeringSnapshot() *steering {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &steering{CostNsPerVariant: s.costNs}
	if len(s.frontier) > 0 {
		st.Frontier = make(minicc.Snapshot, 0, len(s.frontier))
		for site := range s.frontier {
			st.Frontier = append(st.Frontier, site)
		}
		sort.Strings(st.Frontier)
	}
	if s.cfg.Schedule == ScheduleRegion {
		if len(s.scores) > 0 {
			st.RegionScoresV3 = make(map[string]float64, len(s.scores))
			for k, score := range s.scores {
				st.RegionScoresV3[k.String()] = score
			}
		}
		if len(s.regionCostNs) > 0 {
			st.RegionCostNs = make(map[string]float64, len(s.regionCostNs))
			for k, cost := range s.regionCostNs {
				st.RegionCostNs[k.String()] = cost
			}
		}
		if len(s.regionSites) > 0 {
			st.RegionFrontiers = make(map[string]minicc.Snapshot, len(s.regionSites))
			for k, set := range s.regionSites {
				snap := make(minicc.Snapshot, 0, len(set))
				for site := range set {
					snap = append(snap, site)
				}
				sort.Strings(snap)
				st.RegionFrontiers[k.String()] = snap
			}
		}
	} else if len(s.scores) > 0 {
		st.RegionScores = make(map[int]float64, len(s.scores))
		for k, score := range s.scores {
			st.RegionScores[k.seed] = score
		}
	}
	return st
}

// regionStatuses snapshots every scoring unit's live steering state for
// the telemetry /status surface, sorted by (seed, region).
func (s *scheduler) regionStatuses() []RegionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RegionStatus, 0, len(s.units))
	for _, q := range s.units {
		rs := RegionStatus{
			Seed:    q.key.seed,
			Region:  q.key.region,
			Pending: len(q.tasks) - q.head,
			CostNs:  s.regionCostNs[q.key],
		}
		if s.visited[q.key] {
			rs.Score = s.scores[q.key]
		} else {
			rs.Score = optimisticScore
		}
		rs.Sites = len(s.regionSites[q.key])
		rs.Variants = s.regionVariants[q.key]
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// curveSnapshot returns the coverage-over-time curve observed so far.
func (s *scheduler) curveSnapshot() []CoveragePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CoveragePoint(nil), s.curve...)
}
