package campaign

import (
	"fmt"
	"time"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/refvm"
)

// The classification pipeline is split across the worker/aggregator
// boundary: workers do everything expensive (parsing, reference
// interpretation, compilation, execution, root-cause attribution) and emit
// compact symptom records; the aggregator replays those records in
// canonical enumeration order, which keeps finding deduplication,
// attribution memoization, and sample-test-case selection byte-identical to
// the sequential harness regardless of worker scheduling.

// variantStatus is the coarse outcome of preparing one variant.
type variantStatus int

const (
	// statusParseFail marks a rendered variant the front end rejected — a
	// bug in us. On the AST-resident hot path no per-variant parse happens,
	// so this status can only arise from the original seed source, from
	// ForceRenderPath, or from the -paranoid cross-check (which re-parses
	// every variant and fails the campaign loudly on divergence).
	statusParseFail variantStatus = iota
	statusUB                      // filtered by the reference interpreter
	statusClean
)

// symptomClass discriminates symptom records.
type symptomClass int

const (
	classCrash symptomClass = iota
	classPerfHang
	classMismatch
)

// symptom is one compiler-configuration-level divergence observed by a
// worker.
type symptom struct {
	Ver   string
	Opt   int
	Class symptomClass
	// BugID carries the crash's bug, the compile-hang attribution, or the
	// shard-local wrong-code attribution (the aggregator keeps only the
	// first-in-order attribution per memo key, matching the sequential
	// memoization).
	BugID  string
	Sig    string
	Coarse string // mismatch symptom class for memoization
}

// variantResult is everything the aggregator needs to replay one tested
// variant. src is populated lazily: the aggregator only reads it when a
// symptom turns into a finding's sample test case, so the AST-resident hot
// path renders source exclusively for symptomatic variants.
type variantResult struct {
	status     variantStatus
	executions int
	src        string
	symptoms   []symptom
}

// attrKey keys the shard-local wrong-code attribution memo: a compact
// comparable struct instead of the historical "ver|opt|coarse" string, so
// the per-mismatch memo probe allocates and formats nothing.
type attrKey struct {
	ver    string
	opt    int
	coarse string
}

// symRec is one symptom observed by the batched shard path, tagged with
// its variant slot. Records accumulate in arrival order and are
// bucket-filled into a single shard-wide symptom arena afterwards (see
// runShardBatch), replacing a per-symptomatic-variant slice allocation.
type symRec struct {
	slot int
	s    symptom
}

// classifier carries a shard task's classification state: the attribution
// memo and the batched path's symptom-record scratch. It is checked out
// per shard task exactly like the Space and backendState — shard-local,
// never shared across workers — which keeps attribution memoization
// deterministic (seed-scoped: a task never spans files).
type classifier struct {
	attr map[attrKey]string
	recs []symRec
}

func newClassifier() *classifier {
	return &classifier{attr: make(map[attrKey]string)}
}

// evalSource runs one variant given as source text: the historical
// render→parse→analyze front end followed by evalProgram. It serves the
// original seed programs (whose report text must stay the raw corpus
// bytes), the ForceRenderPath baseline, and the reduction predicate's
// candidates. A freshly parsed program has no stable identity to key the
// IR-template cache on, so only the interpreter machine of be is reused
// here; compilation runs cold.
func evalSource(cfg Config, src string, be *backendState, cl *classifier, cov *minicc.Coverage, so *shardObs) variantResult {
	file, err := cc.Parse(src)
	if err != nil {
		return variantResult{src: src}
	}
	prog, err := cc.Analyze(file)
	if err != nil {
		return variantResult{src: src}
	}
	vr, _ := evalProgram(cfg, prog, nil, be, func() string { return src }, cl, cov, so)
	return vr
}

// evalProgram runs one analyzed variant through the reference interpreter
// and all compiler configurations — the worker half of the old testVariant,
// now consuming the typed program directly so the AST-resident hot path
// skips the front end entirely. render supplies the variant's source on
// demand; it is invoked at most once, and only when the variant exhibits a
// symptom (the text becomes a finding's reproduction test case). cl is
// the shard-local classifier (see classifyOutcome); cov records the
// compiler instrumentation sites the variant exercises (recording is
// side-effect-free in minicc, so coverage collection never perturbs the
// differential verdicts). Attribution recompilations deliberately bypass
// the recorder: they re-run the same program with bugs deactivated and
// would only blur the novelty signal.
func evalProgram(cfg Config, prog *cc.Program, holes []*cc.Ident, be *backendState, render func() string, cl *classifier, cov *minicc.Coverage, so *shardObs) (variantResult, error) {
	vr := variantResult{}
	// stage timing exists only when telemetry is attached (so != nil): with
	// telemetry off, no clock is read anywhere on the per-variant path
	var t0 time.Time
	if so != nil {
		t0 = time.Now()
	}
	ref, err := referenceRun(cfg, prog, holes, be, so)
	if so != nil {
		so.oracleNs += time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return vr, err
	}
	if !ref.Defined() {
		vr.status = statusUB
		return vr, nil
	}
	vr.status = statusClean
	if err := evalBackends(cfg, prog, holes, be, ref, render, cl, cov, so, &vr); err != nil {
		return vr, err
	}
	return vr, nil
}

// evalBackends is the compiler half of evalProgram: it runs one clean
// variant through every (version, optimization level) configuration and
// classifies each divergence from the oracle verdict ref into vr's
// symptoms. It serves the interleaved per-variant path (evalProgram); the
// batched shard path walks the same configurations config-outer through
// minicc.Cache.RunBatch instead (runShardBatch) with byte-identical
// results. Stage timing splits compile+execute (backend) from
// classification and attribution (classify), so /status shows where a
// configuration's time actually goes.
func evalBackends(cfg Config, prog *cc.Program, holes []*cc.Ident, be *backendState, ref *interp.Result, render func() string, cl *classifier, cov *minicc.Coverage, so *shardObs, vr *variantResult) error {
	// the compiled binary needs only a small multiple of the reference's
	// step count; a much larger consumption is already a hang symptom, so
	// an adaptive budget keeps miscompiled infinite loops cheap to detect
	execSteps := ref.Steps*20 + 50_000
	var t0 time.Time
	for _, ver := range cfg.Versions {
		for _, opt := range cfg.OptLevels {
			vr.executions++
			comp := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: cov}
			if so != nil {
				t0 = time.Now()
			}
			ecfg := minicc.ExecConfig{MaxSteps: execSteps, Dispatch: cfg.BackendDispatch}
			var ro *minicc.RunOutcome
			if be != nil && holes != nil {
				// template-cached backend: the skeleton was lowered once,
				// this variant replays the trace and patches the moved
				// holes' IR sites; under -paranoid each patched lowering is
				// checked against a fresh Lower and a divergence aborts the
				// campaign
				cached, err := comp.RunCached(be.cache, prog, holes, ecfg, cfg.Paranoid)
				if err != nil {
					return err
				}
				ro = cached
			} else {
				ro = comp.Run(prog, ecfg)
			}
			if so != nil {
				now := time.Now()
				so.backendNs += now.Sub(t0).Nanoseconds()
				t0 = now
			}
			if s, found := classifyOutcome(cfg, ver, opt, ref, ro, prog, cl); found {
				if vr.src == "" {
					vr.src = render()
				}
				vr.symptoms = append(vr.symptoms, s)
			}
			if so != nil {
				so.classifyNs += time.Since(t0).Nanoseconds()
			}
		}
	}
	return nil
}

// referenceRun obtains the variant's reference semantics from the
// configured oracle. The bytecode engine serves the AST-resident hot path
// (it keys its template cache on the analyzed program's identity and the
// skeleton's hole metadata); evalSource callers pass nil holes and always
// get the tree-walker. With backend reuse off, the bytecode oracle
// compiles fresh per variant — still the bytecode semantics, cold — so
// reuse on/off stays byte-identical under either oracle. Under Paranoid,
// the bytecode verdict is cross-checked against the tree-walker and a
// divergence aborts the campaign with an error naming the difference.
func referenceRun(cfg Config, prog *cc.Program, holes []*cc.Ident, be *backendState, so *shardObs) (*interp.Result, error) {
	runTree := func() *interp.Result {
		if be != nil {
			// pooled machine: frames/objects/environments reset, not reallocated
			return be.mach.Run(prog, interp.Config{MaxSteps: cfg.Steps})
		}
		return interp.Run(prog, interp.Config{MaxSteps: cfg.Steps})
	}
	if cfg.Oracle != OracleBytecode || holes == nil {
		return runTree(), nil
	}
	var ref *interp.Result
	if be != nil {
		ref = be.ref.Run(prog, holes, refvm.Config{MaxSteps: cfg.Steps, Dispatch: cfg.Dispatch})
	} else {
		ref = refvm.Run(prog, refvm.Config{MaxSteps: cfg.Steps, Dispatch: cfg.Dispatch})
	}
	if cfg.Paranoid {
		if so != nil {
			so.paranoidChecks++
		}
		if err := crossCheckOracle(runTree(), ref); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

// crossCheckOracle is the -paranoid assertion for the bytecode oracle:
// the two engines must agree on the whole verdict surface the campaign
// consumes — UB kind and position, limit presence, abort flag, exit
// status, stdout bytes, and (for defined runs) the step count that sizes
// the compiled binary's execution budget.
func crossCheckOracle(tree, bc *interp.Result) error {
	switch {
	case (tree.UB == nil) != (bc.UB == nil):
		return fmt.Errorf("paranoid: oracle divergence: tree UB %v, bytecode UB %v", tree.UB, bc.UB)
	case tree.UB != nil:
		if tree.UB.Kind != bc.UB.Kind || tree.UB.Pos != bc.UB.Pos {
			return fmt.Errorf("paranoid: oracle divergence: tree UB %v at %v, bytecode UB %v at %v",
				tree.UB.Kind, tree.UB.Pos, bc.UB.Kind, bc.UB.Pos)
		}
		return nil
	case (tree.Limit == nil) != (bc.Limit == nil):
		return fmt.Errorf("paranoid: oracle divergence: tree limit %v, bytecode limit %v", tree.Limit, bc.Limit)
	case tree.Limit != nil:
		return nil
	case tree.Aborted != bc.Aborted:
		return fmt.Errorf("paranoid: oracle divergence: tree aborted %v, bytecode aborted %v", tree.Aborted, bc.Aborted)
	case tree.Exit != bc.Exit:
		return fmt.Errorf("paranoid: oracle divergence: tree exit %d, bytecode exit %d", tree.Exit, bc.Exit)
	case tree.Output != bc.Output:
		return fmt.Errorf("paranoid: oracle divergence: tree output %q, bytecode output %q", tree.Output, bc.Output)
	case tree.Steps != bc.Steps:
		return fmt.Errorf("paranoid: oracle divergence: tree steps %d, bytecode steps %d", tree.Steps, bc.Steps)
	}
	return nil
}

// classifyOutcome turns one compile+run outcome into a symptom record.
// Wrong-code symptoms are attributed by selectively deactivating seeded
// bugs, memoized per shard and symptom class: within one shard the first
// variant exhibiting a class pays for the recompilations and later ones
// reuse its verdict, exactly as the sequential campaignState memo did
// within a whole campaign. The aggregator reduces the shard-local memos to
// the campaign-global one.
func classifyOutcome(cfg Config, ver string, opt int, ref *interp.Result,
	ro *minicc.RunOutcome, prog *cc.Program, cl *classifier) (symptom, bool) {

	out := ro.Compile
	switch {
	case out.Crash != nil:
		return symptom{Ver: ver, Opt: opt, Class: classCrash,
			BugID: out.Crash.BugID, Sig: out.Crash.Signature}, true
	case out.Timeout != nil:
		return symptom{Ver: ver, Opt: opt, Class: classPerfHang,
			BugID: attributePerf(ver, opt), Sig: "compile-time hang: " + out.Timeout.Pass}, true
	case out.Err != nil:
		return symptom{}, false // unsupported construct; not a bug signal
	}
	ex := ro.Exec
	ok := ex.Ok() == (ref.UB == nil && !ref.Aborted) &&
		ex.Aborted == ref.Aborted &&
		(ex.Aborted || (ex.Exit == ref.Exit && ex.Output == ref.Output && ex.Trap == "" && !ex.Timeout))
	if ok {
		return symptom{}, false
	}
	// symptom classes: the detailed signature is for display; the coarse
	// class drives deduplication and attribution memoization (the paper
	// likewise dedupes reports by symptom, not by concrete wrong values)
	coarse := "wrong-exit"
	sig := fmt.Sprintf("wrong code (exit %d, expected %d)", ex.Exit, ref.Exit)
	if ex.Exit == ref.Exit {
		coarse = "wrong-output"
		sig = fmt.Sprintf("wrong code (output %q, expected %q)", ex.Output, ref.Output)
	}
	if ex.Trap != "" {
		coarse = "trap"
		sig = "runtime trap: " + ex.Trap
	}
	if ex.Timeout {
		coarse = "hang"
		sig = "runtime hang (step budget exhausted)"
	}
	memo := attrKey{ver: ver, opt: opt, coarse: coarse}
	bugID, cached := cl.attr[memo]
	if !cached {
		bugID = attributeWrongCode(prog, ver, opt, ref, cfg)
		cl.attr[memo] = bugID
	}
	return symptom{Ver: ver, Opt: opt, Class: classMismatch,
		BugID: bugID, Sig: sig, Coarse: coarse}, true
}

// attributeWrongCode finds which single seeded bug explains a wrong-code
// symptom by deactivating active bugs one at a time — a seeded-oracle
// analogue of the paper's root-cause triage.
func attributeWrongCode(prog *cc.Program, ver string, opt int, ref *interp.Result, cfg Config) string {
	vi := minicc.VersionIndex(ver)
	if vi < 0 {
		vi = len(minicc.Versions) - 1
	}
	full := minicc.BugsFor(vi, opt)
	for _, hook := range full.Hooks() {
		reduced := full.Without(hook)
		comp := &minicc.Compiler{Version: ver, Opt: opt, Bugs: reduced}
		ro := comp.Run(prog, minicc.ExecConfig{MaxSteps: ref.Steps*20 + 50_000, Dispatch: cfg.BackendDispatch})
		if !ro.Compile.Ok() {
			continue
		}
		ex := ro.Exec
		if ex.Ok() && ex.Exit == ref.Exit && ex.Output == ref.Output && ex.Aborted == ref.Aborted {
			for _, b := range minicc.Registry() {
				if b.Hook == hook {
					return b.ID
				}
			}
		}
	}
	return ""
}

// attributePerf maps a compile timeout to the active performance bug.
func attributePerf(ver string, opt int) string {
	vi := minicc.VersionIndex(ver)
	if vi < 0 {
		vi = len(minicc.Versions) - 1
	}
	set := minicc.BugsFor(vi, opt)
	for _, b := range minicc.Registry() {
		if b.Kind == minicc.BugPerformance && set.Active(b.Hook) {
			return b.ID
		}
	}
	return ""
}
