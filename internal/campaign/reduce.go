package campaign

import (
	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/reduce"
)

// reduceFinding shrinks a finding's sample test case while preserving its
// symptom — the paper's pre-filing reduction step (§6, C-Reduce's role).
// The interestingness predicate re-runs the classification: a crash
// finding must keep crashing with the same signature; a wrong-code or
// performance finding must keep diverging from the reference.
//
// Reduction runs on the reducer's typed-program entry: the finding's test
// case is parsed once here and handed over as an analyzed program, which
// ReduceProgram defensively clones before mutating — so even if a future
// caller passes a program aliased to a live template or pooled instance,
// reduction can never corrupt it (pinned by the mutation-isolation tests).
func reduceFinding(fd *Finding, cfg Config) {
	ver := "trunk"
	if len(fd.Versions) > 0 {
		ver = fd.Versions[0]
	}
	opt := 3
	if len(fd.OptLevels) > 0 {
		opt = fd.OptLevels[0]
	}
	pred := findingPredicate(fd, ver, opt, cfg)
	prog, err := parseAnalyze(fd.TestCase)
	if err != nil {
		return // an unparsable test case is left as recorded
	}
	res, err := reduce.ReduceProgram(prog, pred, reduce.Options{MaxChecks: 400})
	if err != nil || !res.Interesting {
		// an uninteresting test case keeps its recorded text verbatim (the
		// historical string path echoed the input back)
		return
	}
	fd.TestCase = res.Source
}

// parseAnalyze parses and analyzes a source text.
func parseAnalyze(src string) (*cc.Program, error) {
	f, err := cc.Parse(src)
	if err != nil {
		return nil, err
	}
	return cc.Analyze(f)
}

// findingPredicate builds the interestingness test for one finding.
func findingPredicate(fd *Finding, ver string, opt int, cfg Config) reduce.Predicate {
	return func(prog *cc.Program) bool {
		comp := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true}
		switch fd.Kind {
		case minicc.BugCrash:
			out := comp.Compile(prog)
			return out.Crash != nil && out.Crash.Signature == fd.Signature
		case minicc.BugPerformance:
			out := comp.Compile(prog)
			return out.Timeout != nil
		default:
			ref := interp.Run(prog, interp.Config{MaxSteps: cfg.Steps})
			if !ref.Defined() {
				return false // a reduction must stay UB-free to count
			}
			ro := comp.Run(prog, minicc.ExecConfig{MaxSteps: ref.Steps*20 + 50_000})
			if !ro.Compile.Ok() {
				return false
			}
			ex := ro.Exec
			return !ex.Ok() || ex.Exit != ref.Exit || ex.Output != ref.Output || ex.Aborted != ref.Aborted
		}
	}
}
