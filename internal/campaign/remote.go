package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"spe/internal/minicc"
)

// The remote bridge is the campaign engine split at its natural seam for
// distribution: everything above the shard boundary (plan derivation,
// dispatch steering, the seq-ordered merge, checkpointing) stays on the
// coordinator in a RemoteEngine, and everything below it (instantiation,
// oracle, compilers, classification) runs wherever a Planner lives. The
// two halves communicate only through TaskSpec and ShardResult — plain
// serializable values — so any transport (internal/fabric's HTTP service,
// a loopback in tests) can carry them without touching determinism: the
// shard task sequence is a pure function of Config, every worker derives
// the identical plan from the same Config, a shard's result is a pure
// function of its TaskSpec, and the merge consumes results strictly in
// seq order. Crashed, duplicated, reordered, or re-executed shards
// therefore cannot change the Report — re-running a task reproduces the
// same bytes, and Deliver accepts each seq exactly once.

// TaskSpec is the serializable identity of one shard task: enough for a
// remote worker to locate the task in its own (identically derived) plan
// and for the coordinator to validate the result's provenance. It carries
// no corpus text or derived state — both sides reconstruct those from the
// shared Config.
type TaskSpec struct {
	Seq             int   `json:"seq"`
	SeedIdx         int   `json:"seed"`
	NewFile         bool  `json:"new_file,omitempty"`
	IncludeOriginal bool  `json:"include_original,omitempty"`
	FromJ           int64 `json:"from_j"`
	ToJ             int64 `json:"to_j"`
	// Region is the task's scheduling region (plan.regionOf of FromJ).
	// Both sides derive it from the same plan, so it agrees by
	// construction; it rides the wire so the drift check covers the
	// region cuts too.
	Region int `json:"region,omitempty"`
}

// specOf exports a task's wire identity.
func specOf(t *task) TaskSpec {
	return TaskSpec{
		Seq:             t.seq,
		SeedIdx:         t.plan.seedIdx,
		NewFile:         t.newFile,
		IncludeOriginal: t.includeOriginal,
		FromJ:           t.fromJ,
		ToJ:             t.toJ,
		Region:          t.region,
	}
}

// Symptom is the wire form of one compiler-configuration divergence
// record (an alias of the engine's internal symptom type; every field is
// exported, so it serializes as-is).
type Symptom = symptom

// VariantOutcome is the wire form of one tested variant's outcome.
type VariantOutcome struct {
	// Status is the variantStatus ordinal (parse-fail / UB / clean).
	Status     int       `json:"st"`
	Executions int       `json:"ex,omitempty"`
	Src        string    `json:"src,omitempty"`
	Symptoms   []Symptom `json:"sym,omitempty"`
}

// ShardResult is the serializable outcome of one shard task — exactly the
// data the aggregator consumes at merge time plus the scheduler's steering
// feedback (coverage sites, wall-clock cost). Worker-local telemetry
// accumulators deliberately do not cross the wire: stage-timing splits
// describe the machine that ran the shard, not the campaign.
type ShardResult struct {
	Seq         int              `json:"seq"`
	SeedIdx     int              `json:"seed"`
	Variants    []VariantOutcome `json:"variants,omitempty"`
	Sites       minicc.Snapshot  `json:"sites,omitempty"`
	ElapsedNs   int64            `json:"elapsed_ns"`
	RanVariants int              `json:"ran_variants"`
}

// validate rejects config values the engine would reject, shared by the
// in-process engine and both remote halves so a coordinator and its
// workers fail identically on a bad config.
func (c Config) validate() error {
	if c.Schedule != ScheduleFIFO && c.Schedule != ScheduleCoverage && c.Schedule != ScheduleRegion {
		return fmt.Errorf("campaign: unknown schedule %q (want %q, %q, or %q)",
			c.Schedule, ScheduleFIFO, ScheduleCoverage, ScheduleRegion)
	}
	if c.Oracle != OracleTree && c.Oracle != OracleBytecode {
		return fmt.Errorf("campaign: unknown oracle %q (want %q or %q)",
			c.Oracle, OracleTree, OracleBytecode)
	}
	if c.Dispatch != DispatchThreaded && c.Dispatch != DispatchSwitch {
		return fmt.Errorf("campaign: unknown dispatch %q (want %q or %q)",
			c.Dispatch, DispatchThreaded, DispatchSwitch)
	}
	if c.BackendDispatch != BackendDispatchThreaded && c.BackendDispatch != BackendDispatchSwitch {
		return fmt.Errorf("campaign: unknown backend dispatch %q (want %q or %q)",
			c.BackendDispatch, BackendDispatchThreaded, BackendDispatchSwitch)
	}
	return nil
}

// Planner is the worker half of the remote bridge: the full shard task
// sequence derived locally from the shared Config (parse, analyze,
// skeletonize, pool — each corpus file once), plus RunSpec to execute any
// task by its TaskSpec through the exact code path in-process workers use
// (pooled Spaces and backends, batched shard execution, paranoid
// cross-checks). Planners are safe for concurrent RunSpec calls: per-task
// mutable state is checked out of the per-file pools.
type Planner struct {
	cfg   Config
	bySeq []*task
}

// NewPlanner derives the plan a coordinator with the same Config derives.
// The Config should come off the wire from the coordinator (fabric's join
// handshake), so both sides agree byte-for-byte by construction.
func NewPlanner(cfg Config) (*Planner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	all, err := buildAllTasks(cfg)
	if err != nil {
		return nil, err
	}
	return &Planner{cfg: cfg, bySeq: all}, nil
}

// Config returns the resolved campaign config the plan was derived from.
func (p *Planner) Config() Config { return p.cfg }

// TotalTasks returns the number of shard tasks in the plan.
func (p *Planner) TotalTasks() int { return len(p.bySeq) }

// RunSpec executes the shard task named by spec and returns its
// serializable result. The spec must match the locally derived task
// identity exactly — a mismatch means the coordinator and worker disagree
// on the plan (diverged corpus or config), which would silently corrupt
// the merge, so it is an error instead.
func (p *Planner) RunSpec(ctx context.Context, spec TaskSpec) (*ShardResult, error) {
	if spec.Seq < 0 || spec.Seq >= len(p.bySeq) {
		return nil, fmt.Errorf("campaign: remote task seq %d out of range (plan has %d tasks)", spec.Seq, len(p.bySeq))
	}
	t := p.bySeq[spec.Seq]
	if got := specOf(t); got != spec {
		return nil, fmt.Errorf("campaign: remote task %d does not match the local plan (coordinator %+v, local %+v): corpus or config drift", spec.Seq, spec, got)
	}
	r := runTask(ctx, p.cfg, t)
	if r.err != nil {
		return nil, r.err
	}
	return shardResultOf(r), nil
}

// shardResultOf converts a worker-side taskResult to its wire form.
func shardResultOf(r *taskResult) *ShardResult {
	w := &ShardResult{
		Seq:         r.seq,
		SeedIdx:     r.plan.seedIdx,
		Sites:       r.sites,
		ElapsedNs:   r.elapsedNs,
		RanVariants: r.ranVariants,
	}
	if len(r.variants) > 0 {
		w.Variants = make([]VariantOutcome, len(r.variants))
		for i := range r.variants {
			vr := &r.variants[i]
			w.Variants[i] = VariantOutcome{
				Status:     int(vr.status),
				Executions: vr.executions,
				Src:        vr.src,
				Symptoms:   vr.symptoms,
			}
		}
	}
	return w
}

// RemoteEngine is the coordinator half of the remote bridge: it owns the
// plan, the dispatch scheduler (coverage steering included), the
// seq-ordered aggregator, and checkpointing — everything runEngine does
// except execute shards. A transport layer (internal/fabric) drives it
// through three calls: NextTask hands out the next shard to lease,
// Requeue returns an abandoned lease's task to the front of the queue,
// and Deliver folds a completed shard back in. The engine enforces the
// same dispatch-window invariant as the in-process producer (at most
// Lookahead tasks outstanding, the last slot forced head-of-line), so the
// reorder buffer stays bounded and the merge cursor can never starve.
//
// All methods are safe for concurrent use; Deliver is idempotent per seq
// (duplicates from zombie workers are discarded), and the checkpoint
// format is exactly the in-process engine's, so a coordinator crash
// resumes with ResumeRemoteEngine — or even as a plain in-process
// campaign.Resume — from the same file.
type RemoteEngine struct {
	mu  sync.Mutex
	cfg Config
	all []*task

	sched *scheduler
	st    *aggState
	tel   *Telemetry

	pending map[int]*taskResult
	// issued tracks seqs leased out but not yet delivered; its size is the
	// outstanding count bounded by Lookahead.
	issued map[int]bool
	// requeue holds issued seqs whose lease was abandoned, kept sorted so
	// re-leases go lowest-seq-first (head-of-line recovers fastest).
	requeue   []int
	finalized bool
}

// NewRemoteEngine builds a coordinator core for a fresh campaign.
func NewRemoteEngine(cfg Config) (*RemoteEngine, error) {
	cfg = cfg.withDefaults()
	return newRemoteEngine(cfg, newAggState())
}

// ResumeRemoteEngine builds a coordinator core from a checkpoint written
// by a previous coordinator (or by the in-process engine — the formats
// are identical). tel attaches fresh telemetry (never persisted); nil is
// fine.
func ResumeRemoteEngine(path string, tel *Telemetry) (*RemoteEngine, error) {
	cfg, st, err := loadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cfg.CheckpointPath = path
	cfg.Telemetry = tel
	return newRemoteEngine(cfg, st)
}

func newRemoteEngine(cfg Config, st *aggState) (*RemoteEngine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	all, err := buildAllTasks(cfg)
	if err != nil {
		return nil, err
	}
	e := &RemoteEngine{
		cfg:     cfg,
		all:     all,
		sched:   newScheduler(cfg, all, st.nextSeq, st.steer),
		st:      st,
		tel:     cfg.Telemetry,
		pending: make(map[int]*taskResult),
		issued:  make(map[int]bool),
	}
	st.tel = e.tel
	e.tel.campaignStarted(cfg, all, st.nextSeq)
	e.tel.attachRegions(cfg, e.sched)
	return e, nil
}

// Config returns the resolved campaign config (the one workers must plan
// from; Telemetry is json:"-" so it never crosses the wire).
func (e *RemoteEngine) Config() Config { return e.cfg }

// TotalTasks returns the number of shard tasks in the plan.
func (e *RemoteEngine) TotalTasks() int { return len(e.all) }

// MergedTasks returns how many shard tasks have been merged so far
// (including any prefix restored from a checkpoint).
func (e *RemoteEngine) MergedTasks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.nextSeq
}

// Outstanding returns how many leased tasks have not been delivered yet.
func (e *RemoteEngine) Outstanding() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.issued)
}

// Done reports whether every shard task has been merged.
func (e *RemoteEngine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.nextSeq >= len(e.all)
}

// NextTask hands out the next shard task to lease. ok=false means nothing
// is leasable right now: either the campaign is complete, every remaining
// task is already leased, or the dispatch window is full (Deliver will
// free it). Abandoned tasks handed back through Requeue are re-issued
// first, lowest seq first.
func (e *RemoteEngine) NextTask() (TaskSpec, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.requeue) > 0 {
		seq := e.requeue[0]
		e.requeue = e.requeue[1:]
		e.tel.observeDispatch(1)
		return specOf(e.all[seq]), true
	}
	outstanding := len(e.issued)
	if outstanding >= e.cfg.Lookahead {
		return TaskSpec{}, false // window full: wait for a merge
	}
	// mirror the in-process producer's credit discipline: the last free
	// slot must go head-of-line so the merge cursor is always supplied
	t, ok := e.sched.pop(outstanding == e.cfg.Lookahead-1)
	if !ok {
		return TaskSpec{}, false // everything dispatched
	}
	e.issued[t.seq] = true
	e.tel.observeDispatch(1)
	return specOf(t), true
}

// Requeue returns an issued-but-undelivered task to the lease queue (the
// transport calls this when a lease expires or a worker connection
// drops). Unknown or already-delivered seqs are ignored — a zombie's
// lease may race its own late result.
func (e *RemoteEngine) Requeue(seq int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.issued[seq] {
		return
	}
	for _, q := range e.requeue {
		if q == seq {
			return // already queued for re-lease
		}
	}
	e.requeue = append(e.requeue, seq)
	sort.Ints(e.requeue)
}

// Deliver folds one shard result into the campaign. It returns
// accepted=false when the seq was already delivered (a duplicate from a
// zombie worker or a retried transport message) — duplicates are
// harmless, the first copy already merged and re-execution reproduces the
// same bytes. A non-nil error is a campaign failure (result/plan
// mismatch or a checkpoint write error).
func (e *RemoteEngine) Deliver(res *ShardResult) (accepted bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if res == nil || res.Seq < 0 || res.Seq >= len(e.all) {
		return false, fmt.Errorf("campaign: remote result names unknown task %d (plan has %d tasks)", seqOf(res), len(e.all))
	}
	t := e.all[res.Seq]
	if res.SeedIdx != t.plan.seedIdx {
		return false, fmt.Errorf("campaign: remote result for task %d names seed %d, plan has %d: corpus or config drift",
			res.Seq, res.SeedIdx, t.plan.seedIdx)
	}
	if res.Seq < e.st.nextSeq || e.pending[res.Seq] != nil {
		return false, nil // duplicate: already merged or buffered
	}
	r := taskResultOf(res, t)
	// steering feedback on arrival, exactly as the in-process aggregator
	// feeds the scheduler before the ordered merge
	point, novel, rp := e.sched.observe(r)
	if e.tel != nil {
		e.tel.observeSteering(e.sched.costSample(), point, novel, rp)
	}
	e.pending[res.Seq] = r
	if e.issued[res.Seq] {
		delete(e.issued, res.Seq)
		for i, q := range e.requeue {
			if q == res.Seq { // its re-lease became moot
				e.requeue = append(e.requeue[:i], e.requeue[i+1:]...)
				break
			}
		}
	}
	for {
		nr, ok := e.pending[e.st.nextSeq]
		if !ok {
			break
		}
		delete(e.pending, e.st.nextSeq)
		e.st.merge(e.cfg, nr)
		e.st.nextSeq++
		e.st.sinceCkpt++
		e.sched.advance(e.st.nextSeq)
		if e.cfg.CheckpointPath != "" && e.st.sinceCkpt >= e.cfg.CheckpointEvery {
			if err := e.checkpointLocked(); err != nil {
				return true, err
			}
		}
	}
	e.tel.observeAggregator(len(e.pending))
	return true, nil
}

// seqOf is a nil-safe accessor for error messages.
func seqOf(res *ShardResult) int {
	if res == nil {
		return -1
	}
	return res.Seq
}

// taskResultOf rebinds a wire result to the coordinator's own plan state.
func taskResultOf(w *ShardResult, t *task) *taskResult {
	r := &taskResult{
		seq:         w.Seq,
		plan:        t.plan,
		newFile:     t.newFile,
		region:      t.region,
		sites:       w.Sites,
		elapsedNs:   w.ElapsedNs,
		ranVariants: w.RanVariants,
	}
	if len(w.Variants) > 0 {
		r.variants = make([]variantResult, len(w.Variants))
		for i := range w.Variants {
			v := &w.Variants[i]
			r.variants[i] = variantResult{
				status:     variantStatus(v.Status),
				executions: v.Executions,
				src:        v.Src,
				symptoms:   v.Symptoms,
			}
		}
	}
	return r
}

// Checkpoint forces a checkpoint write of the current merged state (the
// transport's clean-shutdown path: SIGINT or a fatal fabric error should
// persist progress instead of abandoning it). A no-op without a
// CheckpointPath or when nothing changed since the last write.
func (e *RemoteEngine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.CheckpointPath == "" || e.st.sinceCkpt == 0 {
		return nil
	}
	return e.checkpointLocked()
}

func (e *RemoteEngine) checkpointLocked() error {
	var ckStart time.Time
	if e.tel != nil {
		ckStart = time.Now()
	}
	if err := writeCheckpoint(e.cfg, e.st, e.sched.steeringSnapshot()); err != nil {
		return err
	}
	e.tel.observeCheckpoint(e.st.nextSeq, time.Since(ckStart))
	e.st.sinceCkpt = 0
	return nil
}

// Finalize assembles the Report after every task has merged. It matches
// runEngine's epilogue exactly, so a loopback fabric campaign formats
// byte-identically to the in-process engine.
func (e *RemoteEngine) Finalize() (*Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st.nextSeq < len(e.all) {
		return nil, fmt.Errorf("campaign: finalize before completion: %d of %d tasks merged", e.st.nextSeq, len(e.all))
	}
	if e.finalized {
		return nil, fmt.Errorf("campaign: campaign already finalized")
	}
	e.finalized = true
	e.tel.campaignDone()
	rep := e.st.finalize(e.cfg)
	rep.CoverageCurve = e.sched.curveSnapshot()
	for _, t := range e.all {
		if t.newFile {
			rep.Plans = append(rep.Plans, t.plan.info())
		}
	}
	return rep, nil
}
