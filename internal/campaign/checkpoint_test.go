package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"spe/internal/corpus"
)

// TestCheckpointResumeAfterKill kills a checkpointed campaign mid-run and
// asserts that resuming from the surviving checkpoint reproduces the exact
// findings of an uninterrupted run.
func TestCheckpointResumeAfterKill(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:4],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 80,
		Workers:            2,
		ShardSize:          8,
		CheckpointEvery:    1,
	}
	ref, err := Run(base) // uninterrupted, no checkpointing
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path

	// cancel the run as soon as a few shards have been durably merged —
	// the moral equivalent of kill -9 between two checkpoint writes
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	rep, err := RunContext(ctx, cfg)
	cancel()
	<-done
	if err == nil {
		// the campaign outran the watcher; the resume assertion below
		// still holds (it replays the tail after the last checkpoint)
		t.Logf("campaign completed before cancellation; findings=%d", len(rep.Findings))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Format(), ref.Format(); got != want {
		t.Errorf("resumed report diverges from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
	if !reflect.DeepEqual(resumed.Findings, ref.Findings) {
		t.Error("resumed findings differ structurally")
	}
	if !reflect.DeepEqual(resumed.Stats, ref.Stats) {
		t.Errorf("resumed stats differ: %+v vs %+v", resumed.Stats, ref.Stats)
	}
}

// TestCheckpointRoundTrip asserts the aggregator state survives a
// write/load cycle intact.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	cfg := Config{Corpus: []string{"int main() { return 0; }"}, CheckpointPath: path}.withDefaults()
	st := newAggState()
	st.nextSeq = 7
	st.stats.Files = 3
	st.stats.Variants = 41
	st.stats.NaiveTotal.SetInt64(1_000_000)
	st.stats.CanonicalTotal.SetInt64(12_345)
	st.attribution["0|trunk|2|wrong-exit"] = "69951"
	fd := &Finding{BugID: "69801", Signature: "sig", TestCase: "int main() {}", Occurrences: 4,
		OptLevels: []int{1, 2}, Versions: []string{"trunk"}}
	st.byKey[fd.key()] = fd
	if err := writeCheckpoint(cfg, st); err != nil {
		t.Fatal(err)
	}
	gotCfg, got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCfg, cfg) {
		t.Errorf("config mismatch: %+v vs %+v", gotCfg, cfg)
	}
	if got.nextSeq != st.nextSeq {
		t.Errorf("nextSeq = %d, want %d", got.nextSeq, st.nextSeq)
	}
	if !reflect.DeepEqual(got.stats, st.stats) {
		t.Errorf("stats mismatch: %+v vs %+v", got.stats, st.stats)
	}
	if !reflect.DeepEqual(got.byKey, st.byKey) {
		t.Errorf("findings mismatch")
	}
	if !reflect.DeepEqual(got.attribution, st.attribution) {
		t.Errorf("attribution mismatch")
	}
}

// TestResumeMissingFile asserts a helpful error for a bad path.
func TestResumeMissingFile(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("resume of missing checkpoint succeeded")
	}
}
