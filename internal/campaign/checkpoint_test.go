package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"spe/internal/corpus"
	"spe/internal/minicc"
)

// TestCheckpointResumeAfterKill kills a checkpointed campaign mid-run and
// asserts that resuming from the surviving checkpoint reproduces the exact
// findings of an uninterrupted run.
func TestCheckpointResumeAfterKill(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:4],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 80,
		Workers:            2,
		ShardSize:          8,
		CheckpointEvery:    1,
	}
	ref, err := Run(base) // uninterrupted, no checkpointing
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path

	// cancel the run as soon as a few shards have been durably merged —
	// the moral equivalent of kill -9 between two checkpoint writes
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	rep, err := RunContext(ctx, cfg)
	cancel()
	<-done
	if err == nil {
		// the campaign outran the watcher; the resume assertion below
		// still holds (it replays the tail after the last checkpoint)
		t.Logf("campaign completed before cancellation; findings=%d", len(rep.Findings))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Format(), ref.Format(); got != want {
		t.Errorf("resumed report diverges from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
	if !reflect.DeepEqual(resumed.Findings, ref.Findings) {
		t.Error("resumed findings differ structurally")
	}
	if !reflect.DeepEqual(resumed.Stats, ref.Stats) {
		t.Errorf("resumed stats differ: %+v vs %+v", resumed.Stats, ref.Stats)
	}
}

// TestCheckpointResumeCoverageSchedule kills a coverage-scheduled
// campaign mid-run and asserts (a) the surviving checkpoint carries the
// steering block — the coverage frontier a resume restores — and (b) the
// resumed campaign converges to the same report as an uninterrupted run.
func TestCheckpointResumeCoverageSchedule(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 80,
		Workers:            3,
		ShardSize:          4,
		Schedule:           ScheduleCoverage,
		Lookahead:          24, // keep checkpoints close behind dispatch
		CheckpointEvery:    1,
		TargetShardMillis:  10,
	}
	ref, err := Run(base) // uninterrupted, no checkpointing
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "coverage.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if rep, err := RunContext(ctx, cfg); err == nil {
		t.Logf("campaign completed before cancellation; findings=%d", len(rep.Findings))
	}
	cancel()
	<-done
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Steering == nil || len(ck.Steering.Frontier) == 0 {
		t.Fatalf("checkpoint carries no coverage frontier: %+v", ck.Steering)
	}
	if ck.Steering.CostNsPerVariant <= 0 {
		t.Errorf("checkpoint carries no cost model: %+v", ck.Steering)
	}

	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Format(), ref.Format(); got != want {
		t.Errorf("resumed coverage campaign diverges from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
	if !reflect.DeepEqual(resumed.Findings, ref.Findings) {
		t.Error("resumed findings differ structurally")
	}
	// the restored frontier must seed the resumed curve: its first point
	// replays the checkpointed sites at zero additional variants
	if len(resumed.CoverageCurve) == 0 || resumed.CoverageCurve[0].Variants != 0 ||
		resumed.CoverageCurve[0].Sites < len(ck.Steering.Frontier) {
		t.Errorf("resumed curve does not restart from the restored frontier (%d sites): %+v",
			len(ck.Steering.Frontier), resumed.CoverageCurve)
	}
}

// TestCheckpointRoundTrip asserts the aggregator state survives a
// write/load cycle intact.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	cfg := Config{Corpus: []string{"int main() { return 0; }"}, CheckpointPath: path}.withDefaults()
	st := newAggState()
	st.nextSeq = 7
	st.stats.Files = 3
	st.stats.Variants = 41
	st.stats.NaiveTotal.SetInt64(1_000_000)
	st.stats.CanonicalTotal.SetInt64(12_345)
	st.attribution["0|trunk|2|wrong-exit"] = "69951"
	fd := &Finding{BugID: "69801", Signature: "sig", TestCase: "int main() {}", Occurrences: 4,
		OptLevels: []int{1, 2}, Versions: []string{"trunk"}}
	st.byKey[fd.key()] = fd
	steer := &steering{
		Frontier:         minicc.Snapshot{"cse.hit", "lower.entry"},
		CostNsPerVariant: 123456.5,
		RegionScores:     map[int]float64{0: 3.25, 2: 0.5},
	}
	if err := writeCheckpoint(cfg, st, steer); err != nil {
		t.Fatal(err)
	}
	gotCfg, got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCfg, cfg) {
		t.Errorf("config mismatch: %+v vs %+v", gotCfg, cfg)
	}
	if got.nextSeq != st.nextSeq {
		t.Errorf("nextSeq = %d, want %d", got.nextSeq, st.nextSeq)
	}
	if !reflect.DeepEqual(got.stats, st.stats) {
		t.Errorf("stats mismatch: %+v vs %+v", got.stats, st.stats)
	}
	if !reflect.DeepEqual(got.byKey, st.byKey) {
		t.Errorf("findings mismatch")
	}
	if !reflect.DeepEqual(got.attribution, st.attribution) {
		t.Errorf("attribution mismatch")
	}
	if !reflect.DeepEqual(got.steer, steer) {
		t.Errorf("steering mismatch: %+v vs %+v", got.steer, steer)
	}
}

// TestResumeMissingFile asserts a helpful error for a bad path.
func TestResumeMissingFile(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("resume of missing checkpoint succeeded")
	}
}

// TestCheckpointMigrateV2 resumes a region-scheduled campaign from a
// version-2 checkpoint — the format an older build would have left
// behind, with no per-region steering block. The v3 fields are advisory:
// the resumed scheduler restarts region scores from the optimistic init,
// and the final report must stay byte-identical to an uninterrupted run.
func TestCheckpointMigrateV2(t *testing.T) {
	base := Config{
		Corpus:             append([]string{corpus.RegionsSeed()}, corpus.Seeds()[:3]...),
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: 120,
		Workers:            2,
		ShardSize:          4,
		Schedule:           ScheduleRegion,
		Lookahead:          24, // keep checkpoints close behind dispatch
		CheckpointEvery:    1,
	}
	ref, err := Run(base) // uninterrupted, no checkpointing
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "region.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; the downgraded resume below still replays the tail")
	}
	cancel()
	<-done
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Downgrade the surviving checkpoint to exactly what a v2 writer
	// would have produced: version 2, no per-region steering keys.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["Version"] = json.RawMessage("2")
	if raw, ok := doc["Steering"]; ok && string(raw) != "null" {
		var steer map[string]json.RawMessage
		if err := json.Unmarshal(raw, &steer); err != nil {
			t.Fatal(err)
		}
		delete(steer, "RegionScoresV3")
		delete(steer, "RegionCostNs")
		delete(steer, "RegionFrontiers")
		if doc["Steering"], err = json.Marshal(steer); err != nil {
			t.Fatal(err)
		}
	}
	if data, err = json.Marshal(doc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Format(), ref.Format(); got != want {
		t.Errorf("v2-resumed report diverges from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
	if !reflect.DeepEqual(resumed.Findings, ref.Findings) {
		t.Error("v2-resumed findings differ structurally")
	}
	if !reflect.DeepEqual(resumed.Stats, ref.Stats) {
		t.Errorf("v2-resumed stats differ: %+v vs %+v", resumed.Stats, ref.Stats)
	}
}
