package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"spe/internal/cc"
	"spe/internal/minicc"
	"spe/internal/spe"
)

// Run executes a campaign with the configured worker pool.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is canceled the engine
// stops dispatching shards, drains its workers, and returns ctx's error.
// A checkpointed campaign canceled mid-run resumes from its checkpoint to
// the same findings an uninterrupted run produces.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return runEngine(ctx, cfg, newAggState())
}

// taskResult is one shard's worth of worker output, merged by seq order.
type taskResult struct {
	seq     int
	err     error
	plan    *filePlan
	newFile bool
	// region is the shard's scheduling region (task.region), the key the
	// region policy credits coverage novelty and cost samples to.
	region   int
	variants []variantResult
	// sites is the sorted set of instrumentation sites the shard's
	// compilations hit — the coverage feedback the scheduler steers by.
	sites minicc.Snapshot
	// elapsedNs and ranVariants feed the adaptive-sizing cost model.
	elapsedNs   int64
	ranVariants int
	// obs carries the shard's locally-accumulated telemetry (stage
	// timing splits, cache stats deltas); nil when telemetry is off.
	obs *shardObs
}

// runEngine drives the scheduler → worker pool → aggregator pipeline.
// st carries the aggregator's merge state, pre-seeded by Resume.
func runEngine(ctx context.Context, cfg Config, st *aggState) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// the task sequence is derived up front (it is a pure function of the
	// config) so the scheduler can prioritize over the whole campaign;
	// tasks the checkpoint has already merged are excluded at startSeq
	all, err := buildAllTasks(cfg)
	if err != nil {
		return nil, err
	}
	sched := newScheduler(cfg, all, st.nextSeq, st.steer)
	tel := cfg.Telemetry
	tel.campaignStarted(cfg, all, st.nextSeq)
	tel.attachRegions(cfg, sched)
	st.tel = tel

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	batches := make(chan []*task, cfg.Workers)
	results := make(chan *taskResult, 2*cfg.Workers)

	// window bounds how far dispatch may run ahead of the aggregator's
	// merge cursor: each dispatched task takes a credit, each merged task
	// returns one. Its capacity doubles as the scheduler's reorder
	// horizon, so pending memory stays O(Lookahead) no matter how far the
	// priority policy strays from seq order.
	window := make(chan struct{}, cfg.Lookahead)

	var senders sync.WaitGroup

	// producer: drain the scheduler, grouping micro-shards into batches
	// sized toward the adaptive duration target (one credit per task;
	// batch extension only uses free credits, so a full window never
	// blocks the first dispatch)
	senders.Add(1)
	go func() {
		defer senders.Done()
		defer close(batches)
		for {
			select {
			case window <- struct{}{}:
			case <-ctx.Done():
				return
			}
			// only this goroutine acquires credits, so observing a full
			// window here means we hold the final one — pop must then
			// dispatch head-of-line to keep the merge cursor supplied
			t, ok := sched.pop(len(window) == cap(window))
			if !ok {
				return // everything dispatched; the spare credit is moot
			}
			batch := []*task{t}
			if target := sched.targetNs(); target > 0 {
				spent := sched.predictNs(t)
				for spent < target && len(batch) < maxBatch {
					select {
					case window <- struct{}{}:
					default:
						spent = target // window full: stop extending
						continue
					}
					t2, ok := sched.pop(len(window) == cap(window))
					if !ok {
						spent = target // drained; the spare credit is moot
						continue
					}
					batch = append(batch, t2)
					spent += sched.predictNs(t2)
				}
			}
			tel.observeDispatch(len(batch))
			select {
			case batches <- batch:
			case <-ctx.Done():
				return
			}
		}
	}()

	// worker pool: each task renders its shard's variants by unranking
	// their enumeration indices and runs the full differential pipeline
	for w := 0; w < cfg.Workers; w++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for batch := range batches {
				for _, t := range batch {
					if ctx.Err() != nil {
						continue // drain
					}
					select {
					case results <- runTask(ctx, cfg, t):
					case <-ctx.Done():
					}
				}
			}
		}()
	}

	// close results when the producer and every worker are done, so the
	// aggregator's range below always terminates
	go func() {
		senders.Wait()
		close(results)
	}()

	// aggregator: feed each arriving result back to the scheduler, then
	// reorder by seq and merge deterministically
	var firstErr error
	pending := make(map[int]*taskResult)
	for r := range results {
		if firstErr != nil {
			continue // drain
		}
		if r.err != nil {
			firstErr = r.err
			cancel()
			continue
		}
		point, novel, rp := sched.observe(r)
		if tel != nil {
			tel.observeSteering(sched.costSample(), point, novel, rp)
		}
		pending[r.seq] = r
		for {
			nr, ok := pending[st.nextSeq]
			if !ok {
				break
			}
			delete(pending, st.nextSeq)
			st.merge(cfg, nr)
			st.nextSeq++
			st.sinceCkpt++
			// widen the scheduler's horizon before returning the credit,
			// so a producer that wins the freed credit already sees the
			// advanced cursor (the pop invariant depends on this order)
			sched.advance(st.nextSeq)
			<-window
			if cfg.CheckpointPath != "" && st.sinceCkpt >= cfg.CheckpointEvery {
				var ckStart time.Time
				if tel != nil {
					ckStart = time.Now()
				}
				if err := writeCheckpoint(cfg, st, sched.steeringSnapshot()); err != nil {
					firstErr = err
					cancel()
					break
				}
				tel.observeCheckpoint(st.nextSeq, time.Since(ckStart))
				st.sinceCkpt = 0
			}
		}
		tel.observeAggregator(len(pending))
	}
	tel.campaignDone()
	// context-driven shutdown persists the merged prefix: a SIGINT (or any
	// cancellation) should leave the latest state on disk instead of
	// abandoning up to CheckpointEvery-1 merged shards, so the resumed
	// campaign continues from exactly where the interrupted one stopped
	if ctx.Err() != nil && cfg.CheckpointPath != "" && st.sinceCkpt > 0 &&
		(firstErr == nil || errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded)) {
		if err := writeCheckpoint(cfg, st, sched.steeringSnapshot()); err == nil {
			st.sinceCkpt = 0
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := st.finalize(cfg)
	rep.CoverageCurve = sched.curveSnapshot()
	// the plan schedule is a pure function of the config, so it is derived
	// fresh here (never checkpointed) and identical across resumes
	for _, t := range all {
		if t.newFile {
			rep.Plans = append(rep.Plans, t.plan.info())
		}
	}
	return rep, nil
}

// runTask processes one shard: the worker half of the pipeline. Alongside
// the differential results it reports the shard's wall-clock cost and the
// instrumentation sites its compilations hit — the feedback the scheduler
// steers by. The recorder is lenient so site-registry drift surfaces as a
// campaign error instead of a panicking worker.
//
// The per-variant work is AST-resident: the worker checks a Space out of
// the file's pool, and each enumeration index patches the Space's pooled
// template clone in place (Space.ProgramAt), so no variant is ever
// re-lexed, re-parsed, or re-analyzed. Source text is rendered lazily,
// only when a variant exhibits a symptom (to become a finding's test case)
// or when the -paranoid cross-check demands it. ForceRenderPath restores
// the historical render→re-parse pipeline for baselining.
//
// Alongside the Space, the worker checks out a backendState: the reference
// interpreter resets pooled machine state instead of reallocating it per
// variant, and minicc compiles through the file's IR-template cache (lower
// once per skeleton, patch the hole-dependent IR sites per fill). With
// Config.NoBackendReuse both backends run cold, byte-identically.
func runTask(ctx context.Context, cfg Config, t *task) *taskResult {
	res := &taskResult{seq: t.seq, plan: t.plan, newFile: t.newFile, region: t.region}
	if t.plan.skip {
		return res
	}
	start := time.Now()
	var cov *minicc.Coverage // nil receiver = no-op recorder
	if cfg.collectCoverage() {
		cov = minicc.NewLenientCoverage()
	}
	var be *backendState
	if t.plan.backends != nil {
		be = t.plan.backends.Get()
		defer t.plan.backends.Put(be)
	}
	// shard-local telemetry accumulator: plain ints touched on the variant
	// path, folded into the shared atomics once at merge. nil (and therefore
	// completely absent from the hot path) when telemetry is off.
	var so *shardObs
	if cfg.Telemetry != nil {
		so = &shardObs{}
		if be != nil {
			so.miniccBase = be.cache.Stats()
			so.refvmBase = be.ref.Stats()
		}
	}
	// shard-local classifier: attribution memo plus the batched path's
	// symptom scratch (seed-scoped: a task never spans files)
	cl := newClassifier()
	if t.includeOriginal {
		res.variants = append(res.variants, evalSource(cfg, t.plan.src, be, cl, cov, so))
	}
	if t.toJ > t.fromJ {
		space := t.plan.pool.Get()
		defer t.plan.pool.Put(space)
		if batchEligible(cfg, be) {
			// batched shard path: all oracle verdicts first on one
			// checked-out VM, then the compiler configurations over the
			// clean variants — same ascending order, byte-identical report
			if err := runShardBatch(ctx, cfg, t, space, be, cl, cov, so, res); err != nil {
				res.err = err
				return res
			}
		} else {
			idx := new(big.Int)
			stride := big.NewInt(t.plan.stride)
			for j := t.fromJ; j < t.toJ; j++ {
				if ctx.Err() != nil {
					res.err = ctx.Err()
					return res
				}
				idx.SetInt64(j)
				idx.Mul(idx, stride)
				vr, err := runVariant(cfg, space, be, idx, cl, cov, so)
				if err != nil {
					res.err = fmt.Errorf("campaign: corpus[%d] variant %d: %w", t.plan.seedIdx, j, err)
					return res
				}
				res.variants = append(res.variants, vr)
			}
		}
	}
	if err := cov.Err(); err != nil {
		res.err = fmt.Errorf("campaign: corpus[%d]: coverage registry drift: %w", t.plan.seedIdx, err)
		return res
	}
	if so != nil {
		if be != nil {
			so.minicc = be.cache.Stats().Sub(so.miniccBase)
			so.refvm = be.ref.Stats().Sub(so.refvmBase)
		}
		res.obs = so
	}
	res.sites = cov.Snapshot()
	res.elapsedNs = time.Since(start).Nanoseconds()
	res.ranVariants = len(res.variants)
	return res
}

// runVariant evaluates the variant at one enumeration index through the
// configured pipeline flavor.
func runVariant(cfg Config, space *spe.Space, be *backendState, idx *big.Int, cl *classifier, cov *minicc.Coverage, so *shardObs) (variantResult, error) {
	var t0 time.Time
	if so != nil {
		t0 = time.Now()
	}
	if cfg.ForceRenderPath {
		src, err := space.RenderAt(idx)
		if so != nil {
			so.instNs += time.Since(t0).Nanoseconds()
		}
		if err != nil {
			return variantResult{}, err
		}
		return evalSource(cfg, src, be, cl, cov, so), nil
	}
	in, release, err := space.AcquireAt(idx)
	if so != nil {
		so.instNs += time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return variantResult{}, err
	}
	defer release()
	prog := in.Program()
	rendered := ""
	if cfg.Paranoid {
		if so != nil {
			so.paranoidChecks++
		}
		rendered = cc.PrintFile(prog.File)
		if err := crossCheckVariant(prog, rendered); err != nil {
			return variantResult{}, err
		}
	}
	render := func() string {
		if rendered != "" {
			return rendered
		}
		return cc.PrintFile(prog.File)
	}
	return evalProgram(cfg, prog, in.HoleIdents(), be, render, cl, cov, so)
}

// crossCheckVariant is the -paranoid equivalence assertion: the typed
// program the in-place instantiation produced must agree with what the
// historical pipeline would have built from its rendered text. Concretely,
// the text must parse and analyze cleanly, printing must be a fixed point,
// and — the core sema invariant — every variable use of the re-analyzed
// program must bind the symbol (by ID) that the rebinding chose, proving
// no hole patch ever escaped its scope or collided with shadowing.
func crossCheckVariant(prog *cc.Program, rendered string) error {
	file, err := cc.Parse(rendered)
	if err != nil {
		return fmt.Errorf("paranoid: rendered variant does not parse: %w", err)
	}
	reprog, err := cc.Analyze(file)
	if err != nil {
		return fmt.Errorf("paranoid: rendered variant does not analyze: %w", err)
	}
	if got := cc.PrintFile(reprog.File); got != rendered {
		return fmt.Errorf("paranoid: print is not a fixed point of parse+print")
	}
	if len(reprog.Uses) != len(prog.Uses) {
		return fmt.Errorf("paranoid: re-analysis found %d variable uses, instantiation has %d",
			len(reprog.Uses), len(prog.Uses))
	}
	for i, use := range prog.Uses {
		re := reprog.Uses[i]
		if use.Sym == nil || re.Sym == nil {
			return fmt.Errorf("paranoid: use %d unresolved (instantiated: %v, re-analyzed: %v)",
				i, use.Sym != nil, re.Sym != nil)
		}
		if use.Sym.ID != re.Sym.ID {
			return fmt.Errorf("paranoid: use %d (%q at %v) binds symbol %d in the instantiated program but %d after re-analysis",
				i, use.Name, use.Pos, use.Sym.ID, re.Sym.ID)
		}
	}
	return nil
}

// aggState is the aggregator's merge state: everything the campaign has
// learned from the ordered prefix of shard results merged so far. It is
// exactly what a checkpoint persists.
type aggState struct {
	nextSeq   int
	sinceCkpt int
	stats     Stats
	byKey     map[string]*Finding
	// attribution is the campaign-global (seed, version, opt, symptom
	// class) → bug memo, reduced from the shard-local memos by keeping the
	// first value in merge order.
	attribution map[string]string
	// steer is the scheduler steering (coverage frontier, cost model,
	// region scores) restored from a checkpoint; nil on a fresh campaign.
	steer *steering
	// tel mirrors Config.Telemetry for the merge path; nil-safe (every
	// *Telemetry method no-ops on a nil receiver) and never persisted.
	tel *Telemetry
}

func newAggState() *aggState {
	return &aggState{
		byKey:       make(map[string]*Finding),
		attribution: make(map[string]string),
		stats:       Stats{NaiveTotal: new(big.Int), CanonicalTotal: new(big.Int)},
	}
}

// merge folds one shard result into the state. Results arrive here in seq
// order, so every decision below (finding creation, sample test case,
// attribution memo) replays the sequential harness bit for bit.
func (st *aggState) merge(cfg Config, r *taskResult) {
	if r.newFile {
		st.stats.Files++
		st.stats.NaiveTotal.Add(st.stats.NaiveTotal, r.plan.naive)
		st.stats.CanonicalTotal.Add(st.stats.CanonicalTotal, r.plan.canonical)
		if r.plan.skip {
			st.stats.FilesSkipped++
		}
	}
	for i := range r.variants {
		vr := &r.variants[i]
		st.stats.Variants++
		switch vr.status {
		case statusParseFail:
			continue
		case statusUB:
			st.stats.VariantsUB++
			continue
		}
		st.stats.VariantsClean++
		st.stats.Executions += vr.executions
		for _, s := range vr.symptoms {
			st.applySymptom(r.plan.seedIdx, vr.src, s)
		}
	}
	st.tel.observeMerge(r)
}

// applySymptom replays one symptom record against the finding map — the
// aggregator half of the old classify.
func (st *aggState) applySymptom(seedIdx int, src string, s symptom) {
	record := func(kind minicc.BugKind, bugID, signature string) {
		key := "sig:" + signature
		if bugID != "" {
			key = "id:" + bugID
		}
		fd, ok := st.byKey[key]
		if !ok {
			fd = &Finding{
				BugID:     bugID,
				Kind:      kind,
				Signature: signature,
				TestCase:  src,
				SeedIndex: seedIdx,
			}
			if b, found := minicc.BugByID(bugID); found {
				fd.Component = b.Component
				fd.Priority = b.Priority
			}
			st.byKey[key] = fd
		}
		fd.Occurrences++
		fd.OptLevels = addUniqueInt(fd.OptLevels, s.Opt)
		fd.Versions = addUniqueStr(fd.Versions, s.Ver)
		st.tel.observeFinding(fd, !ok)
	}

	switch s.Class {
	case classCrash:
		record(minicc.BugCrash, s.BugID, s.Sig)
	case classPerfHang:
		record(minicc.BugPerformance, s.BugID, s.Sig)
	case classMismatch:
		// attribute by the campaign-global memo; the first record in merge
		// order per (seed, version, opt, class) seeds it with its
		// shard-local verdict
		memoKey := fmt.Sprintf("%d|%s|%d|%s", seedIdx, s.Ver, s.Opt, s.Coarse)
		bugID, cached := st.attribution[memoKey]
		if !cached {
			bugID = s.BugID
			st.attribution[memoKey] = bugID
		}
		sig := s.Sig
		if bugID == "" {
			// unattributed: dedupe by coarse class and seed to avoid a
			// finding per concrete wrong value
			sig = fmt.Sprintf("%s (seed %d): e.g. %s", s.Coarse, seedIdx, sig)
		}
		if bugID != "" {
			if b, found := minicc.BugByID(bugID); found && b.Kind == minicc.BugPerformance {
				record(minicc.BugPerformance, bugID, sig)
				return
			}
		}
		record(minicc.BugWrongCode, bugID, sig)
	}
}

// finalize turns the merged state into the Report.
func (st *aggState) finalize(cfg Config) *Report {
	rep := &Report{Config: cfg, Stats: st.stats}
	for _, fd := range st.byKey {
		if cfg.ReduceTestCases {
			reduceFinding(fd, cfg)
		}
		rep.Findings = append(rep.Findings, fd)
	}
	sortFindings(rep.Findings)
	for _, fd := range rep.Findings {
		switch fd.Kind {
		case minicc.BugCrash:
			rep.Stats.CrashFindings++
		case minicc.BugWrongCode:
			rep.Stats.WrongFindings++
		default:
			rep.Stats.PerfFindings++
		}
	}
	return rep
}

func addUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	s = append(s, v)
	sort.Ints(s)
	return s
}

func addUniqueStr(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	s = append(s, v)
	sort.Strings(s)
	return s
}
