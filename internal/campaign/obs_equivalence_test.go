package campaign

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spe/internal/corpus"
	"spe/internal/obs"
)

// These tests pin the observability layer's inertness contract: a campaign
// report is byte-identical whether telemetry is fully live (metric
// recording, the embedded HTTP server under concurrent scraping, the
// progress ticker) or absent — across worker counts, both dispatch
// schedules, -paranoid, and checkpoint/resume. Telemetry is advisory by
// construction (the engine never reads a metric back); these tests are
// what license attaching it to production campaigns by default.

func obsBaseConfig() Config {
	return Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		ShardSize:          8,
	}
}

// liveTelemetry attaches the full observability stack to cfg: a fresh
// Telemetry, an HTTP server on an ephemeral port, a background scraper
// polling /metrics and /status for the test's duration, and a progress
// ticker. Cleanup tears all of it down.
func liveTelemetry(t *testing.T, cfg *Config) *Telemetry {
	t.Helper()
	tel := NewTelemetry()
	srv, err := obs.Serve("127.0.0.1:0", tel.Handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	stop := tel.StartProgressTicker(io.Discard, 5*time.Millisecond)
	t.Cleanup(stop)
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			scrapeBody(srv.Addr, "/metrics")
			scrapeBody(srv.Addr, "/status")
			select {
			case <-stopScrape:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	t.Cleanup(func() { close(stopScrape); <-scrapeDone })
	cfg.Telemetry = tel
	return tel
}

func scrapeBody(addr, path string) string {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

// TestTelemetryEquivalence compares reports with telemetry fully live
// versus off across worker counts and both schedules.
func TestTelemetryEquivalence(t *testing.T) {
	base := obsBaseConfig()
	base.Workers = 1
	want := mustRun(t, base).Format()

	workerCounts := []int{1, 3}
	if testing.Short() {
		workerCounts = []int{3}
	}
	for _, schedule := range []string{ScheduleFIFO, ScheduleCoverage} {
		for _, workers := range workerCounts {
			cfg := obsBaseConfig()
			cfg.Schedule = schedule
			cfg.Workers = workers
			liveTelemetry(t, &cfg)
			if got := mustRun(t, cfg).Format(); got != want {
				t.Errorf("telemetry-on report diverges (schedule=%s workers=%d):\n--- telemetry ---\n%s--- baseline ---\n%s",
					schedule, workers, got, want)
			}
		}
	}
}

// TestTelemetryParanoid runs the full cross-check matrix with telemetry
// attached (stage timing brackets the paranoid work too) and additionally
// asserts the paranoid-check counter advanced.
func TestTelemetryParanoid(t *testing.T) {
	base := obsBaseConfig()
	base.Workers = 1
	want := mustRun(t, base).Format()

	cfg := obsBaseConfig()
	cfg.Workers = 2
	cfg.Paranoid = true
	tel := liveTelemetry(t, &cfg)
	rep := mustRun(t, cfg)
	if got := rep.Format(); got != want {
		t.Errorf("paranoid telemetry report diverges:\n--- paranoid ---\n%s--- baseline ---\n%s", got, want)
	}
	if tel.paranoidChecks.Load() == 0 {
		t.Error("paranoid campaign recorded no spe_paranoid_checks_total")
	}
}

// TestTelemetryCountersMatchReport cross-checks the merged counters
// against the report: the telemetry surface must agree exactly with the
// campaign's own statistics, and the key documented series must appear in
// a /metrics scrape with those values.
func TestTelemetryCountersMatchReport(t *testing.T) {
	cfg := obsBaseConfig()
	cfg.Workers = 3
	cfg.Schedule = ScheduleCoverage
	tel := NewTelemetry()
	cfg.Telemetry = tel
	start := time.Now()
	rep := mustRun(t, cfg)
	elapsed := time.Since(start).Nanoseconds()

	// The per-stage wall-clock split must cover the campaign's real work:
	// every stage (including the classification split added with the
	// batched backend walk) advanced, and the stages sum to no more than
	// the workers' combined wall time — the gauges are a partition of
	// worker time, not overlapping rebrackets of the same nanoseconds.
	stages := map[string]int64{
		"instantiate": tel.stageInstantiateNs.Load(),
		"oracle":      tel.stageOracleNs.Load(),
		"backend":     tel.stageBackendNs.Load(),
		"classify":    tel.stageClassifyNs.Load(),
	}
	var stageSum int64
	for stage, ns := range stages {
		if ns <= 0 {
			t.Errorf("spe_stage_ns_total{stage=%q} = %d, want > 0", stage, ns)
		}
		stageSum += ns
	}
	if budget := elapsed * int64(cfg.Workers); stageSum > budget {
		t.Errorf("stage ns sum %d exceeds workers' wall-time budget %d (%d workers x %dns elapsed)",
			stageSum, budget, cfg.Workers, elapsed)
	}

	if got, want := tel.variants.Load(), int64(rep.Stats.Variants); got != want {
		t.Errorf("spe_variants_total = %d, report has %d", got, want)
	}
	if got, want := tel.variantsUB.Load(), int64(rep.Stats.VariantsUB); got != want {
		t.Errorf("spe_variants_ub_total = %d, report has %d", got, want)
	}
	if got, want := tel.variantsClean.Load(), int64(rep.Stats.VariantsClean); got != want {
		t.Errorf("spe_variants_clean_total = %d, report has %d", got, want)
	}
	if got, want := tel.executions.Load(), int64(rep.Stats.Executions); got != want {
		t.Errorf("spe_executions_total = %d, report has %d", got, want)
	}
	findings := tel.findingsCrash.Load() + tel.findingsWrong.Load() + tel.findingsPerf.Load()
	if got, want := findings, int64(len(rep.Findings)); got != want {
		t.Errorf("spe_findings_total = %d, report has %d findings", got, want)
	}
	if tel.shardsDispatched.Load() != tel.shardsMerged.Load() {
		t.Errorf("dispatched %d != merged %d after completion",
			tel.shardsDispatched.Load(), tel.shardsMerged.Load())
	}

	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, series := range []string{
		"spe_variants_total", "spe_shard_latency_ms", "spe_findings_total",
		"spe_stage_ns_total", "spe_space_pool_hits", "spe_backend_pool_hits",
		"spe_refvm_patch_runs_total", "spe_minicc_replays_total",
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("/metrics scrape missing %s", series)
		}
	}

	st := tel.Status()
	if st.Running {
		t.Error("status still running after campaign completed")
	}
	if st.CompletedVariants != int64(rep.Stats.Variants) {
		t.Errorf("status completed_variants = %d, report has %d", st.CompletedVariants, rep.Stats.Variants)
	}
	if st.PlannedVariants != st.CompletedVariants {
		t.Errorf("completed campaign: planned %d != completed %d", st.PlannedVariants, st.CompletedVariants)
	}
	if st.ProgressPercent < 99.9 || st.ProgressPercent > 100.1 {
		t.Errorf("progress_percent = %v, want ~100", st.ProgressPercent)
	}
}

// TestTelemetryEndpointsDuringRun polls the live endpoints while a
// campaign runs and asserts they serve the documented content mid-flight.
func TestTelemetryEndpointsDuringRun(t *testing.T) {
	cfg := obsBaseConfig()
	cfg.Workers = 2
	cfg.MaxVariantsPerFile = 400
	cfg.Corpus = corpus.Seeds()
	tel := NewTelemetry()
	cfg.Telemetry = tel
	srv, err := obs.Serve("127.0.0.1:0", tel.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var metricsOK, statusOK bool
	probeDone := make(chan struct{})
	stopProbe := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			if body := scrapeBody(srv.Addr, "/metrics"); strings.Contains(body, "spe_variants_total") &&
				strings.Contains(body, "spe_shard_latency_ms") &&
				strings.Contains(body, "spe_findings_total") {
				metricsOK = true
			}
			var st Status
			if body := scrapeBody(srv.Addr, "/status"); body != "" {
				if json.Unmarshal([]byte(body), &st) == nil && st.PlannedVariants > 0 {
					statusOK = true
				}
			}
			select {
			case <-stopProbe:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	mustRun(t, cfg)
	close(stopProbe)
	<-probeDone
	if !metricsOK {
		t.Error("/metrics never served the key series during the campaign")
	}
	if !statusOK {
		t.Error("/status never served a well-formed document during the campaign")
	}
}

// TestTelemetryResume kills a checkpointed telemetry campaign mid-run and
// resumes it with a fresh Telemetry via ResumeTelemetry: the report must
// match the untelemetered uninterrupted baseline, and the resumed
// instance's completed count must cover the whole campaign (resumed
// prefix included).
func TestTelemetryResume(t *testing.T) {
	base := obsBaseConfig()
	base.Workers = 2
	base.CheckpointEvery = 1
	want := mustRun(t, base).Format()

	path := filepath.Join(t.TempDir(), "obs.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path
	liveTelemetry(t, &cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; resume still replays the tail")
	}
	cancel()
	<-done
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	tel := NewTelemetry()
	resumed, err := ResumeTelemetry(context.Background(), path, tel)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed telemetry report diverges:\n--- resumed ---\n%s--- baseline ---\n%s", got, want)
	}
	st := tel.Status()
	if st.PlannedVariants == 0 || st.CompletedVariants != st.PlannedVariants {
		t.Errorf("resumed status: completed %d of planned %d, want full coverage",
			st.CompletedVariants, st.PlannedVariants)
	}
}

// TestTelemetryCheckpointClean pins that a telemetry pointer never leaks
// into the checkpoint file: Config.Telemetry is json:"-" and the
// checkpoint must deserialize into a config with a nil Telemetry.
func TestTelemetryCheckpointClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.ckpt.json")
	cfg := obsBaseConfig()
	cfg.Workers = 2
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 1
	liveTelemetry(t, &cfg)
	mustRun(t, cfg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	var raw struct {
		Config map[string]json.RawMessage
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, leaked := raw.Config["Telemetry"]; leaked {
		t.Error("checkpoint Config carries a Telemetry key; Config.Telemetry must stay json:\"-\"")
	}
	loaded, _, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Telemetry != nil {
		t.Error("loaded checkpoint carries a non-nil Telemetry")
	}
}
