package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"spe/internal/corpus"
)

// These tests pin the central invariant of the bytecode reference oracle
// (internal/refvm): campaign reports are byte-identical with
// -oracle=bytecode (the default: skeleton-compiled UB-checking bytecode,
// hole sites patched per variant) and -oracle=tree (the historical
// tree-walking interpreter) — across worker counts, dispatch schedules,
// checkpoint/resume, backend reuse on/off, and -paranoid. The tree report
// is the PR 4 semantics, so these tests are what licenses shipping the
// bytecode oracle as the default.

func oracleBaseConfig() Config {
	return Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		ShardSize:          8,
	}
}

// TestOracleEquivalence compares tree vs bytecode oracles at several
// worker counts under both schedules.
func TestOracleEquivalence(t *testing.T) {
	tree := oracleBaseConfig()
	tree.Oracle = OracleTree
	tree.Workers = 1
	want := mustRun(t, tree).Format()

	workerCounts := []int{1, 3, runtime.NumCPU() + 1}
	if testing.Short() {
		workerCounts = []int{3} // race CI: one parallel config per schedule
	}
	for _, schedule := range []string{ScheduleFIFO, ScheduleCoverage} {
		for _, workers := range workerCounts {
			cfg := oracleBaseConfig()
			cfg.Oracle = OracleBytecode
			cfg.Schedule = schedule
			cfg.Workers = workers
			if got := mustRun(t, cfg).Format(); got != want {
				t.Errorf("bytecode report diverges (schedule=%s workers=%d):\n--- bytecode ---\n%s--- tree ---\n%s",
					schedule, workers, got, want)
			}
		}
	}
}

// TestOracleEquivalenceVersions widens the configuration matrix: several
// compiler versions and the full -O ladder. Wrong-code attribution
// re-runs the reference result against selectively deactivated bug sets,
// so any step-count or verdict drift between the oracles would flip
// attribution verdicts here.
func TestOracleEquivalenceVersions(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:3],
		Versions:           []string{"4.8", "6.0", "trunk"},
		MaxVariantsPerFile: 40,
		Workers:            2,
	}
	tree := base
	tree.Oracle = OracleTree
	want := mustRun(t, tree).Format()
	bc := base
	bc.Oracle = OracleBytecode
	if got := mustRun(t, bc).Format(); got != want {
		t.Errorf("bytecode report diverges across versions:\n--- bytecode ---\n%s--- tree ---\n%s", got, want)
	}
}

// TestOracleParanoid runs the bytecode oracle with -paranoid, which
// cross-checks every variant's bytecode verdict against the tree-walker
// in-line (output bytes, exit status, UB kind/position, steps) and aborts
// on divergence; the report must still match the tree baseline.
func TestOracleParanoid(t *testing.T) {
	tree := oracleBaseConfig()
	tree.Oracle = OracleTree
	want := mustRun(t, tree).Format()

	cfg := oracleBaseConfig()
	cfg.Oracle = OracleBytecode
	cfg.Paranoid = true
	cfg.Workers = 2
	if got := mustRun(t, cfg).Format(); got != want {
		t.Errorf("paranoid bytecode report diverges:\n--- paranoid ---\n%s--- tree ---\n%s", got, want)
	}
}

// TestOracleColdBackends pins the NoBackendReuse flavor: with pooling
// off, the bytecode oracle compiles fresh per variant and must still
// agree with the pooled tree baseline.
func TestOracleColdBackends(t *testing.T) {
	tree := oracleBaseConfig()
	tree.Oracle = OracleTree
	want := mustRun(t, tree).Format()

	cfg := oracleBaseConfig()
	cfg.Oracle = OracleBytecode
	cfg.NoBackendReuse = true
	cfg.Workers = 2
	if got := mustRun(t, cfg).Format(); got != want {
		t.Errorf("cold bytecode report diverges:\n--- cold bytecode ---\n%s--- tree ---\n%s", got, want)
	}
}

// TestOracleResume kills a bytecode-oracle checkpointed campaign mid-run
// and asserts the resumed report matches the tree uninterrupted baseline:
// oracle templates hold no state a checkpoint would need, and a resume
// (whose checkpoint embeds Oracle in its config) replays identically.
func TestOracleResume(t *testing.T) {
	base := oracleBaseConfig()
	base.Workers = 2
	base.CheckpointEvery = 1

	tree := base
	tree.Oracle = OracleTree
	want := mustRun(t, tree).Format()

	path := filepath.Join(t.TempDir(), "oracle.ckpt.json")
	cfg := base
	cfg.Oracle = OracleBytecode
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; resume still replays the tail")
	}
	cancel()
	<-done
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed bytecode report diverges from tree baseline:\n--- resumed ---\n%s--- tree ---\n%s", got, want)
	}
}

// TestOracleDirtyState is the campaign-level dirty-state regression test
// for the pooled bytecode VM: variants that mutate globals, static
// locals, recurse, print, and forge pointers must report identically on
// the pooled bytecode oracle, the cold bytecode oracle, and the tree
// oracle — any slab, frame, static-slot, or string-intern state leaking
// from variant N into variant N+1 would show up as diverging UB
// filtering or differential verdicts.
func TestOracleDirtyState(t *testing.T) {
	dirty := `
int g = 1;
int h = 2;
int counter() { static int n = 0; n = n + 1; return n; }
int main() {
    int a = 3, b = 4;
    int buf[6];
    int *p = &a;
    int i;
    for (i = 0; i < 6; i++) buf[i] = g + i;
    g = g + b;
    h = h + a;
    *p = counter() + buf[2];
    printf("%d %d %d %d\n", g, h, a, counter());
    return g + h + a + b;
}
`
	base := Config{
		Corpus:             []string{dirty},
		Versions:           []string{"trunk"},
		Threshold:          -1, // the probe's canonical space is large by design
		MaxVariantsPerFile: 120,
		Workers:            1,
	}
	tree := base
	tree.Oracle = OracleTree
	want := mustRun(t, tree)
	if want.Stats.VariantsClean == 0 {
		t.Fatal("dirty-state corpus produced no clean variants; test is vacuous")
	}
	for _, workers := range []int{1, 4} {
		for _, cold := range []bool{false, true} {
			cfg := base
			cfg.Oracle = OracleBytecode
			cfg.Workers = workers
			cfg.NoBackendReuse = cold
			got := mustRun(t, cfg)
			if got.Format() != want.Format() {
				t.Errorf("workers=%d cold=%v: dirty-state report diverges:\n--- bytecode ---\n%s--- tree ---\n%s",
					workers, cold, got.Format(), want.Format())
			}
		}
	}
}

// TestOracleUnknownRejected pins the config validation.
func TestOracleUnknownRejected(t *testing.T) {
	cfg := oracleBaseConfig()
	cfg.Oracle = "quantum"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown oracle accepted")
	}
}
