package campaign

import (
	"math/big"
	"strings"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/minicc"
)

func TestCampaignWithReduction(t *testing.T) {
	// run a small campaign with test-case reduction enabled; the reduced
	// crash case must still trigger the same signature and be no larger
	// than the found variant
	rep, err := Run(Config{
		Corpus:             corpus.Seeds()[:4], // includes Figures 1-3
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 200,
		ReduceTestCases:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var crash *Finding
	for _, fd := range rep.Findings {
		if fd.Kind == minicc.BugCrash && fd.BugID == "69801" {
			crash = fd
		}
	}
	if crash == nil {
		t.Fatal("fold-ternary crash not found")
	}
	// the reduced case still crashes identically
	pred := findingPredicate(crash, crash.Versions[0], crash.OptLevels[0], Config{}.withDefaults())
	prog, err := parseAnalyze(crash.TestCase)
	if err != nil {
		t.Fatalf("reduced case invalid: %v\n%s", err, crash.TestCase)
	}
	if !pred(prog) {
		t.Fatalf("reduced case lost the crash:\n%s", crash.TestCase)
	}
	// it must be lean: no printf noise left around the trigger
	if strings.Count(crash.TestCase, "printf") > 1 {
		t.Errorf("reduction left noise:\n%s", crash.TestCase)
	}
	t.Logf("reduced crash case (%d bytes):\n%s", len(crash.TestCase), crash.TestCase)
}

// TestReductionLeavesTemplateIntact is the campaign half of the
// mutation-isolation contract: after a typed-path campaign with reduction
// enabled, a file plan's shared skeleton template (and its pooled spaces)
// must still produce pristine variants — reduction only ever touches
// clones.
func TestReductionLeavesTemplateIntact(t *testing.T) {
	cfg := Config{
		Corpus:             corpus.Seeds()[:4],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 120,
		ReduceTestCases:    true,
	}
	cfg = cfg.withDefaults()
	plan, err := buildPlan(cfg, 0, cfg.Corpus[0])
	if err != nil {
		t.Fatal(err)
	}
	space := plan.pool.Get()
	want0, err := space.RenderAt(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	plan.pool.Put(space)

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("campaign found nothing; integrity test is vacuous")
	}
	// reduce every finding once more against the plan's own template-backed
	// predicate machinery, then verify the shared template is untouched
	for _, fd := range rep.Findings {
		reduceFinding(fd, cfg)
	}
	if got := cc.PrintFile(plan.sk.Prog.File); got != cc.PrintFile(cc.MustAnalyze(cfg.Corpus[0]).File) {
		t.Error("skeleton template AST no longer matches a fresh analysis of the seed")
	}
	space = plan.pool.Get()
	defer plan.pool.Put(space)
	got0, err := space.RenderAt(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if got0 != want0 {
		t.Errorf("pooled space renders differently after reduction:\n--- after ---\n%s--- before ---\n%s", got0, want0)
	}
	p, release, err := space.ProgramAt(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got := cc.PrintFile(p.File); got != want0 {
		t.Errorf("pooled typed program diverges after reduction:\n--- got ---\n%s--- want ---\n%s", got, want0)
	}
}
