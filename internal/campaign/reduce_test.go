package campaign

import (
	"strings"
	"testing"

	"spe/internal/corpus"
	"spe/internal/minicc"
)

func TestCampaignWithReduction(t *testing.T) {
	// run a small campaign with test-case reduction enabled; the reduced
	// crash case must still trigger the same signature and be no larger
	// than the found variant
	rep, err := Run(Config{
		Corpus:             corpus.Seeds()[:4], // includes Figures 1-3
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 200,
		ReduceTestCases:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var crash *Finding
	for _, fd := range rep.Findings {
		if fd.Kind == minicc.BugCrash && fd.BugID == "69801" {
			crash = fd
		}
	}
	if crash == nil {
		t.Fatal("fold-ternary crash not found")
	}
	// the reduced case still crashes identically
	pred := findingPredicate(crash, crash.Versions[0], crash.OptLevels[0], Config{}.withDefaults())
	prog, err := parseAnalyze(crash.TestCase)
	if err != nil {
		t.Fatalf("reduced case invalid: %v\n%s", err, crash.TestCase)
	}
	if !pred(prog) {
		t.Fatalf("reduced case lost the crash:\n%s", crash.TestCase)
	}
	// it must be lean: no printf noise left around the trigger
	if strings.Count(crash.TestCase, "printf") > 1 {
		t.Errorf("reduction left noise:\n%s", crash.TestCase)
	}
	t.Logf("reduced crash case (%d bytes):\n%s", len(crash.TestCase), crash.TestCase)
}
