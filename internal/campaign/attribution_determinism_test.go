package campaign

import (
	"testing"

	"spe/internal/corpus"
)

// TestAttributionDeterminismGeneratedCorpus pins the Hooks()-order fix: on
// a corpus where several seeded bugs can each explain the same wrong-code
// symptom, attribution must be deterministic across runs and across the
// pooled/cold backend flavors. (Before PR 4, BugSet.Hooks() iterated a map,
// so the winning bug of an attribution tie was random per process.)
func TestAttributionDeterminismGeneratedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign determinism sweep")
	}
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: 10, Seed: 20170618 + 2})...)
	base := Config{
		Corpus:             progs,
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: 60,
	}
	cold := base
	cold.NoBackendReuse = true
	wantRep, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRep.Format()
	for round := 0; round < 2; round++ {
		for _, cfg := range []Config{base, cold} {
			gotRep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := gotRep.Format(); got != want {
				t.Fatalf("round %d (reuse=%v): report diverges:\n--- got ---\n%s--- want ---\n%s",
					round, !cfg.NoBackendReuse, got, want)
			}
		}
	}
}
