// Package campaign is the parallel, sharded core of the paper's evaluation
// loop (§5): derive a skeleton from each corpus program, enumerate its
// non-alpha-equivalent variants, filter out variants with undefined
// behavior using the reference interpreter, feed the clean variants to the
// compilers under test at several optimization levels, and classify every
// divergence from the reference semantics as a crash, wrong-code, or
// performance bug.
//
// The enumerate→filter→test pipeline is embarrassingly parallel once the
// variant space can be indexed, and the partition layer's rank/unrank
// machinery provides exactly that index: each corpus file's canonical
// variant space is cut into contiguous shards that a worker pool processes
// independently, while a deterministic aggregator merges shard results in
// canonical enumeration order. Any worker count therefore produces a
// byte-identical Report — Workers=1 reproduces the historical sequential
// harness output exactly. Long campaigns additionally write periodic JSON
// checkpoints from which Resume continues after a crash or kill.
//
// Concurrency and ownership inside a worker: shared inputs (corpus text,
// skeletons, analyzed template programs' symbols/scopes/types) are
// immutable; everything a worker mutates is checked out for exclusive use
// per shard task — a spe.Space (enumeration state + AST instances) and a
// backendState (interp.Machine + minicc.Cache) from the file's pools.
// Within a task the worker may reuse all of it across variants; across
// tasks the pools recycle it. Nothing checked out is ever retained past
// the task: results travel to the aggregator as plain values (symptom
// records, rendered source strings), never as references into pooled
// state.
package campaign

import (
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"strings"

	"spe/internal/minicc"
	"spe/internal/refvm"
	"spe/internal/spe"
)

// Config parameterizes a campaign.
type Config struct {
	// Corpus is the seed program population.
	Corpus []string
	// Versions lists the simulated compiler versions under test (names
	// from minicc.Versions); defaults to {"trunk"}.
	Versions []string
	// OptLevels defaults to {0, 1, 2, 3}.
	OptLevels []int
	// Threshold is the per-file variant cap (paper: 10,000). Zero means
	// 10,000; negative means unlimited.
	Threshold int64
	// MaxVariantsPerFile additionally bounds how many enumerated variants
	// are executed per file (budget control); zero means the threshold.
	MaxVariantsPerFile int
	// Granularity of the enumeration; defaults to intra-procedural.
	Granularity spe.Granularity
	// Steps bounds each execution.
	Steps int64
	// ReduceTestCases post-processes each finding's sample test case with
	// the delta-debugging reducer, as the paper does before filing (§6).
	ReduceTestCases bool
	// Workers sizes the shard worker pool; zero means GOMAXPROCS. Every
	// worker count yields a byte-identical Report: shard results are
	// merged in canonical enumeration order by a single aggregator.
	Workers int
	// ShardSize is the number of tested variants carried by one shard
	// task; zero means 32.
	ShardSize int
	// CheckpointPath, when non-empty, enables periodic JSON checkpoints
	// from which Resume can continue an interrupted campaign.
	CheckpointPath string
	// CheckpointEvery is the number of merged shard tasks between
	// checkpoint writes; zero means 8.
	CheckpointEvery int
	// Schedule selects the shard dispatch policy: ScheduleFIFO (the
	// default) dispatches shards in canonical enumeration order;
	// ScheduleCoverage re-orders pending shards by expected coverage
	// novelty — corpus files whose recent shards hit new minicc
	// instrumentation sites are drained first, stale files decay; and
	// ScheduleRegion applies the same novelty model per region (contiguous
	// hole-group ranges of one file's walk, derived from the skeleton's
	// per-function partition counts), so large multi-function files steer
	// internally instead of draining as one block. The dispatch order
	// never affects the Report: the aggregator always merges in canonical
	// order, so fifo and coverage campaigns produce identical findings.
	Schedule string
	// Lookahead bounds how far (in shard tasks) the scheduler may dispatch
	// ahead of the aggregator's merge cursor, which also bounds the reorder
	// buffer's memory. Zero means 256, raised to 8*Workers if smaller.
	Lookahead int
	// TargetShardMillis, when positive, enables adaptive shard sizing: the
	// engine tracks per-variant wall-clock cost and batches consecutive
	// shard dispatches toward this target duration, evening out worker tail
	// latency. Batching never changes task identity, but note that when
	// ShardSize is left zero this flag picks a finer default grain (4
	// instead of 32) so batches can size in both directions — set ShardSize
	// explicitly if checkpoint seq numbering must match a run without the
	// flag. A checkpoint embeds its resolved config, so resume is always
	// self-consistent either way.
	TargetShardMillis int
	// CoverageCurve records the coverage-over-time curve (Report.
	// CoverageCurve) even under ScheduleFIFO. Coverage collection is
	// otherwise skipped for fifo campaigns, sparing the VM instrumentation
	// cost when nothing consumes the data; ScheduleCoverage and
	// ScheduleRegion imply it.
	CoverageCurve bool
	// Paranoid cross-checks the AST-resident hot path on every variant:
	// holes are rebound with the sema invariants asserted, and the typed
	// program is rendered, re-parsed, re-analyzed, and required to bind
	// every variable use to the same symbol the in-place instantiation
	// chose. A divergence aborts the campaign with an error naming the
	// variant. This is a debug/validation mode — it deliberately pays the
	// full historical front-end cost per variant on top of the typed path.
	// It checks the AST path only: combined with ForceRenderPath there is
	// no instantiation to validate and the flag has no effect (cmd/spe
	// rejects the combination).
	Paranoid bool
	// ForceRenderPath routes variants through the historical
	// render→re-lex→re-parse→re-analyze pipeline instead of the
	// AST-resident one. Reports are byte-identical either way (the
	// equivalence tests pin this); the knob exists as the baseline for the
	// variants/sec benchmark and for bisecting suspected instantiation
	// bugs without -paranoid's double cost.
	ForceRenderPath bool
	// Oracle selects the reference-semantics engine that filters UB
	// variants and supplies the expected output/exit for differential
	// testing: OracleBytecode (the default) compiles each skeleton
	// template once into internal/refvm's compact UB-checking bytecode
	// and patches only the hole-fed sites per variant, OracleTree is the
	// historical tree-walking interpreter. The two are observationally
	// identical — same UB verdicts, output bytes, exit statuses, and step
	// counts — so reports are byte-identical under either engine (pinned
	// by the oracle-equivalence tests); the knob exists as the benchmark
	// baseline and for bisecting suspected oracle bugs. The bytecode
	// engine serves the AST-resident hot path; seed originals, the
	// ForceRenderPath baseline, and the test-case reducer always use the
	// tree-walker (a freshly parsed program has no template identity to
	// key the bytecode cache on). Under Paranoid, every bytecode verdict
	// is additionally cross-checked against the tree-walker per variant
	// (stdout bytes, exit status, UB kind and position, step count) and a
	// divergence aborts the campaign.
	Oracle string
	// Dispatch selects the bytecode oracle's instruction dispatch engine:
	// DispatchThreaded (the default) executes through refvm's
	// per-instruction function-pointer handler table, built at skeleton
	// compile time with superinstruction fusion and compile-time-provable
	// operand specialization; DispatchSwitch is the monolithic opcode
	// switch. The two engines are observationally identical — same UB
	// verdicts, output bytes, exit statuses, and step counts, so reports
	// are byte-identical either way (pinned by the dispatch-equivalence
	// tests) — and the knob exists as the benchmark baseline and for
	// bisecting suspected dispatch bugs. With Oracle set to OracleTree the
	// engine selection is accepted but moot.
	Dispatch string
	// NoOracleBatch disables batched shard execution. With batching on
	// (the default, when the bytecode oracle serves the AST-resident path
	// with pooled backends), a worker drains its whole shard through
	// refvm.Cache.RunBatch on one checked-out VM — each neighboring fill is
	// rebound into the instance and only the moved hole sites re-patched
	// between runs — and then replays the compiler configurations over the
	// clean variants. Reports are byte-identical either way (pinned by the
	// dispatch-equivalence tests); the knob exists as the benchmark
	// baseline and for bisecting suspected batching bugs.
	NoOracleBatch bool
	// BackendDispatch selects the minicc VM's instruction dispatch engine
	// for the compiled binaries under test: BackendDispatchThreaded (the
	// default) executes the superinstruction-fused IR through a per-opcode
	// handler table, BackendDispatchSwitch is the monolithic opcode switch
	// running the same fused code. The two engines are observationally
	// identical — same seeded crashes, coverage hits, trap/exit/output
	// verdicts, and step accounting — so reports are byte-identical either
	// way (pinned by the backend-dispatch-equivalence tests); the knob
	// exists as the benchmark baseline and for bisecting suspected
	// dispatch bugs.
	BackendDispatch string
	// NoBackendBatch disables batched compiler execution inside a batched
	// shard. With batching on (the default, whenever the shard takes the
	// batched oracle path), phase 2 walks configurations in the outer loop:
	// each (version, opt) pair drains every UB-free variant in ascending
	// order through minicc.Cache.RunBatch, keeping one compiler
	// configuration's template trace, pass pipeline, and VM state hot
	// across the whole shard. Reports are byte-identical either way
	// (pinned by the backend-dispatch-equivalence tests); the knob exists
	// as the benchmark baseline and for bisecting suspected batching bugs.
	NoBackendBatch bool
	// Telemetry, when non-nil, streams live campaign vitals: per-stage
	// timing splits, pool and cache hit rates, shard latency, coverage
	// frontier growth, findings by class — served over HTTP by
	// Telemetry.Handler (/metrics, /status, /events, /debug/pprof/) and
	// the stderr progress ticker. Telemetry is strictly observational and
	// provably inert: reports are byte-identical with it attached or nil
	// (pinned by the obs-equivalence tests), and it is never persisted in
	// checkpoints (a resume attaches a fresh instance via
	// ResumeTelemetry).
	Telemetry *Telemetry `json:"-"`
	// NoBackendReuse disables the pooled execution backends: with reuse on
	// (the default), each worker holds a reusable reference-interpreter
	// machine (frames, environments, and memory objects reset instead of
	// reallocated between variants) and a minicc backend cache (each
	// skeleton template is lowered to IR once, per-variant compilations
	// replay the recorded coverage/crash trace and patch only the IR sites
	// the moved holes feed). Reports are byte-identical either way — the
	// backend-equivalence tests pin reuse on/off across worker counts,
	// schedules, and resume — so the knob exists as the benchmark baseline
	// and for bisecting suspected reuse bugs. Under Paranoid, every
	// template-derived lowering is additionally cross-checked against a
	// fresh Lower of the variant.
	NoBackendReuse bool
}

// Schedule values for Config.Schedule.
const (
	ScheduleFIFO     = "fifo"
	ScheduleCoverage = "coverage"
	ScheduleRegion   = "region"
)

// Oracle values for Config.Oracle.
const (
	OracleTree     = "tree"
	OracleBytecode = "bytecode"
)

// Dispatch values for Config.Dispatch (aliases of refvm's, so the flag
// surface and the oracle agree by construction).
const (
	DispatchThreaded = refvm.DispatchThreaded
	DispatchSwitch   = refvm.DispatchSwitch
)

// BackendDispatch values for Config.BackendDispatch (aliases of minicc's,
// so the flag surface and the backend VM agree by construction).
const (
	BackendDispatchThreaded = minicc.DispatchThreaded
	BackendDispatchSwitch   = minicc.DispatchSwitch
)

func (c Config) withDefaults() Config {
	if len(c.Versions) == 0 {
		c.Versions = []string{"trunk"}
	}
	if len(c.OptLevels) == 0 {
		c.OptLevels = []int{0, 1, 2, 3}
	}
	if c.Threshold == 0 {
		c.Threshold = 10_000
	}
	if c.MaxVariantsPerFile == 0 {
		c.MaxVariantsPerFile = int(c.Threshold)
	}
	if c.Steps == 0 {
		c.Steps = 500_000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardSize <= 0 {
		if c.TargetShardMillis > 0 {
			// adaptive sizing groups micro-shards toward the duration
			// target; a finer default grain lets it size both down and up
			c.ShardSize = 4
		} else {
			c.ShardSize = 32
		}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.Schedule == "" {
		c.Schedule = ScheduleFIFO
	}
	if c.Oracle == "" {
		c.Oracle = OracleBytecode
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchThreaded
	}
	if c.BackendDispatch == "" {
		c.BackendDispatch = BackendDispatchThreaded
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 256
	}
	if c.Lookahead < 8*c.Workers {
		c.Lookahead = 8 * c.Workers
	}
	return c
}

// collectCoverage reports whether workers should record compiler coverage:
// the coverage schedule steers by it, and CoverageCurve requests the curve
// telemetry under fifo. Otherwise recording is skipped — per-instruction VM
// instrumentation is not free, and a fifo campaign would discard the data.
func (c Config) collectCoverage() bool {
	return c.Schedule == ScheduleCoverage || c.Schedule == ScheduleRegion || c.CoverageCurve
}

// Finding is one deduplicated bug discovery.
type Finding struct {
	// BugID is the seeded bug's simulated bugzilla number ("" when the
	// symptom could not be attributed).
	BugID string
	Kind  minicc.BugKind
	// Signature identifies crash findings (Table 3).
	Signature string
	Component string
	Priority  int
	// OptLevels lists the optimization levels at which the symptom
	// appeared.
	OptLevels []int
	// Versions lists the affected versions observed.
	Versions []string
	// TestCase is a minimal sample variant source triggering the bug.
	TestCase string
	// SeedIndex is the corpus file whose skeleton produced the test case.
	SeedIndex int
	// Occurrences counts variant-level duplicates collapsed into this
	// finding.
	Occurrences int
}

func (f *Finding) key() string {
	if f.BugID != "" {
		return "id:" + f.BugID
	}
	return "sig:" + f.Signature
}

// Stats aggregates campaign-level counters.
type Stats struct {
	Files          int
	FilesSkipped   int // over threshold
	Variants       int
	VariantsUB     int // filtered by the reference interpreter
	VariantsClean  int
	Executions     int
	CrashFindings  int
	WrongFindings  int
	PerfFindings   int
	NaiveTotal     *big.Int
	CanonicalTotal *big.Int
}

// PlanInfo summarizes one corpus file's derived testing schedule — in
// particular how much of the canonical space the stride walk actually
// covers, which used to be invisible when the stride clamp engaged.
type PlanInfo struct {
	SeedIndex int
	// Canonical is the file's canonical variant count (decimal string; the
	// count can exceed int64).
	Canonical string
	// Stride is the sampling stride the walk uses; UnclampedStride is what
	// the per-file budget alone would have chosen (a decimal string, since
	// canonical/budget can exceed int64). They differ exactly when the
	// walk-bound clamp engaged (Clamped), in which case only Tested*Stride
	// of the canonical space is reachable and the rest is silently out of
	// coverage — the clamp trades breadth for a bounded walk over huge
	// sets, and this record is what makes that trade visible.
	Stride          int64
	UnclampedStride string
	Tested          int64
	Clamped         bool
	// Skipped marks files over the canonical-count threshold (no variants
	// walked at all).
	Skipped bool
	// Regions is how many scheduling regions the file's walk was cut into
	// (spe.Space.RegionCuts; 1 means one opaque region). Advisory dispatch
	// metadata — task identity and findings never depend on it.
	Regions int
}

// CoveragePoint is one step of a campaign's coverage-over-time curve: after
// Variants tested variants had completed (in completion order), Sites
// distinct minicc instrumentation sites had been hit.
type CoveragePoint struct {
	Variants int
	Sites    int
}

// Report is the campaign outcome.
type Report struct {
	Config   Config
	Findings []*Finding
	Stats    Stats
	// Plans records each corpus file's testing schedule. It is a pure
	// function of Config (re-derived on resume, never checkpointed), so it
	// is part of the deterministic report surface: Format prints the files
	// whose stride was clamped.
	Plans []PlanInfo
	// CoverageCurve records frontier growth in shard completion order. It
	// is scheduling telemetry, not part of the deterministic report: the
	// curve depends on worker timing and dispatch policy (that sensitivity
	// is the point — it is how fifo and coverage schedules are compared),
	// so Format deliberately excludes it.
	CoverageCurve []CoveragePoint
}

// VariantsToSites returns how many variants had completed when the
// coverage frontier first reached n sites, or -1 if it never did.
func (r *Report) VariantsToSites(n int) int {
	for _, p := range r.CoverageCurve {
		if p.Sites >= n {
			return p.Variants
		}
	}
	return -1
}

// FinalSites returns the final coverage frontier size.
func (r *Report) FinalSites() int {
	if len(r.CoverageCurve) == 0 {
		return 0
	}
	return r.CoverageCurve[len(r.CoverageCurve)-1].Sites
}

// FormatCoverageCurve renders the curve for human consumption.
func (r *Report) FormatCoverageCurve() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "coverage curve (%s schedule): %d sites final\n", r.Config.Schedule, r.FinalSites())
	for _, p := range r.CoverageCurve {
		fmt.Fprintf(&sb, "  %6d variants -> %3d sites\n", p.Variants, p.Sites)
	}
	return sb.String()
}

// Format renders the report as deterministic text: identical campaigns
// produce byte-identical output regardless of worker count or
// interruption/resume history, which makes it the comparison key for the
// engine's determinism guarantees.
func (r *Report) Format() string {
	var sb strings.Builder
	st := r.Stats
	fmt.Fprintf(&sb, "campaign: %d files (%d skipped), %d variants (%d UB, %d clean), %d executions\n",
		st.Files, st.FilesSkipped, st.Variants, st.VariantsUB, st.VariantsClean, st.Executions)
	fmt.Fprintf(&sb, "space: naive %s, canonical %s\n", st.NaiveTotal, st.CanonicalTotal)
	for _, p := range r.Plans {
		if !p.Clamped {
			continue
		}
		fmt.Fprintf(&sb, "plan: file %d stride clamped %s -> %d (walked %d of %s canonical variants)\n",
			p.SeedIndex, p.UnclampedStride, p.Stride, p.Tested, p.Canonical)
	}
	fmt.Fprintf(&sb, "findings: %d crash, %d wrong-code, %d performance\n",
		st.CrashFindings, st.WrongFindings, st.PerfFindings)
	for _, fd := range r.Findings {
		fmt.Fprintf(&sb, "  [%s] id=%q sig=%q opts=%v versions=%v seed=%d occurrences=%d\n",
			fd.Kind, fd.BugID, fd.Signature, fd.OptLevels, fd.Versions, fd.SeedIndex, fd.Occurrences)
	}
	return sb.String()
}

// sortFindings orders findings the way the sequential harness always has:
// by kind, then by dedup key (total, since keys are unique).
func sortFindings(findings []*Finding) {
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Kind != findings[j].Kind {
			return findings[i].Kind < findings[j].Kind
		}
		return findings[i].key() < findings[j].key()
	})
}
