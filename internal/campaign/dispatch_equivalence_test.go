package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// These tests pin the dispatch/batching invariant of the bytecode oracle
// rework: campaign reports are byte-identical across -dispatch=threaded
// (the default handler-table engine), -dispatch=switch (the original
// monolithic switch), and -oracle-batch on/off (batched shard execution
// vs per-variant template runs) — across worker counts and schedules,
// under -paranoid, and through checkpoint/resume. The tree-walking
// oracle's report is the ground truth, so each cell is compared against
// it rather than against a sibling cell.

// TestDispatchEquivalenceMatrix is the full cross of dispatch engine x
// batching x schedule x workers against the tree baseline.
func TestDispatchEquivalenceMatrix(t *testing.T) {
	tree := oracleBaseConfig()
	tree.Oracle = OracleTree
	tree.Workers = 1
	want := mustRun(t, tree).Format()

	workerCounts := []int{1, 3}
	schedules := []string{ScheduleFIFO, ScheduleCoverage}
	if testing.Short() {
		workerCounts = []int{3} // race CI: one parallel config per cell
		schedules = []string{ScheduleFIFO}
	}
	for _, schedule := range schedules {
		for _, workers := range workerCounts {
			for _, dispatch := range []string{DispatchThreaded, DispatchSwitch} {
				for _, noBatch := range []bool{false, true} {
					cfg := oracleBaseConfig()
					cfg.Oracle = OracleBytecode
					cfg.Schedule = schedule
					cfg.Workers = workers
					cfg.Dispatch = dispatch
					cfg.NoOracleBatch = noBatch
					if got := mustRun(t, cfg).Format(); got != want {
						t.Errorf("report diverges (schedule=%s workers=%d dispatch=%s noBatch=%v):\n--- bytecode ---\n%s--- tree ---\n%s",
							schedule, workers, dispatch, noBatch, got, want)
					}
				}
			}
		}
	}
}

// TestDispatchParanoid runs the switch engine and the batched default
// under -paranoid, where every variant's bytecode verdict is re-checked
// against a tree run in-line. The batched path cross-checks inside the
// RunBatch yield, so this exercises that plumbing specifically.
func TestDispatchParanoid(t *testing.T) {
	tree := oracleBaseConfig()
	tree.Oracle = OracleTree
	tree.Workers = 1
	want := mustRun(t, tree).Format()

	for _, dispatch := range []string{DispatchThreaded, DispatchSwitch} {
		cfg := oracleBaseConfig()
		cfg.Oracle = OracleBytecode
		cfg.Dispatch = dispatch
		cfg.Paranoid = true
		cfg.Workers = 2
		if got := mustRun(t, cfg).Format(); got != want {
			t.Errorf("paranoid report diverges (dispatch=%s):\n--- bytecode ---\n%s--- tree ---\n%s",
				dispatch, got, want)
		}
	}
}

// TestDispatchResume kills a checkpointed switch-dispatch batched
// campaign mid-run and asserts the resumed report matches the tree
// baseline: the checkpoint embeds Dispatch in its config, and the
// batched shard loop replays deterministically from the shard boundary.
func TestDispatchResume(t *testing.T) {
	base := oracleBaseConfig()
	base.Workers = 2
	base.CheckpointEvery = 1

	tree := base
	tree.Oracle = OracleTree
	want := mustRun(t, tree).Format()

	path := filepath.Join(t.TempDir(), "dispatch.ckpt.json")
	cfg := base
	cfg.Oracle = OracleBytecode
	cfg.Dispatch = DispatchSwitch
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var ck checkpointFile
			if json.Unmarshal(data, &ck) == nil && ck.NextSeq >= 3 {
				cancel()
				return
			}
		}
	}()
	if _, err := RunContext(ctx, cfg); err == nil {
		t.Log("campaign completed before cancellation; resume still replays the tail")
	}
	cancel()
	<-done
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed switch-dispatch report diverges from tree baseline:\n--- resumed ---\n%s--- tree ---\n%s", got, want)
	}
}

// TestDispatchUnknownRejected pins the config validation.
func TestDispatchUnknownRejected(t *testing.T) {
	cfg := oracleBaseConfig()
	cfg.Dispatch = "quantum"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown dispatch accepted")
	}
}
