package campaign

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"spe/internal/corpus"
)

// TestScheduleEquivalenceAtFourWorkers is the acceptance check for the
// coverage scheduler: fifo and coverage dispatch policies must produce
// byte-identical final reports at >= 4 workers, with and without adaptive
// shard sizing. Only dispatch ORDER differs between the policies; the
// aggregator's canonical-order merge erases it.
func TestScheduleEquivalenceAtFourWorkers(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:6],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 120,
		Workers:            4,
		ShardSize:          8,
		Schedule:           ScheduleFIFO,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("fifo campaign found nothing; equivalence test is vacuous")
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"coverage", func(c *Config) { c.Schedule = ScheduleCoverage }},
		{"coverage-8-workers", func(c *Config) { c.Schedule = ScheduleCoverage; c.Workers = 8 }},
		{"coverage-small-lookahead", func(c *Config) { c.Schedule = ScheduleCoverage; c.Lookahead = 33 }},
		{"coverage-adaptive", func(c *Config) { c.Schedule = ScheduleCoverage; c.TargetShardMillis = 20 }},
		{"region", func(c *Config) { c.Schedule = ScheduleRegion }},
		{"region-8-workers", func(c *Config) { c.Schedule = ScheduleRegion; c.Workers = 8 }},
		{"region-small-lookahead", func(c *Config) { c.Schedule = ScheduleRegion; c.Lookahead = 33 }},
		{"region-adaptive", func(c *Config) { c.Schedule = ScheduleRegion; c.TargetShardMillis = 20 }},
		{"fifo-adaptive", func(c *Config) { c.TargetShardMillis = 5 }},
	} {
		cfg := base
		tc.mut(&cfg)
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got, want := rep.Format(), ref.Format(); got != want {
			t.Errorf("%s: report diverges from fifo:\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
		}
		if !reflect.DeepEqual(rep.Findings, ref.Findings) {
			t.Errorf("%s: findings differ structurally", tc.name)
		}
		if !reflect.DeepEqual(rep.Stats, ref.Stats) {
			t.Errorf("%s: stats differ: %+v vs %+v", tc.name, rep.Stats, ref.Stats)
		}
	}
}

// TestScheduleEquivalenceProperty is a randomized property test: across
// random corpus subsets, shard sizes, worker counts, lookaheads, and
// duration targets, the fifo, coverage, and region schedules converge to
// identical final findings.
func TestScheduleEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	seeds := corpus.Seeds()
	rng := rand.New(rand.NewSource(20170618))
	for trial := 0; trial < 5; trial++ {
		lo := rng.Intn(len(seeds) - 1)
		hi := lo + 2 + rng.Intn(len(seeds)-lo-1)
		if hi > len(seeds) {
			hi = len(seeds)
		}
		cfg := Config{
			Corpus:             seeds[lo:hi],
			Versions:           []string{"trunk"},
			MaxVariantsPerFile: 30 + rng.Intn(90),
			Workers:            1 + rng.Intn(8),
			ShardSize:          1 + rng.Intn(16),
			Lookahead:          16 + rng.Intn(256),
			TargetShardMillis:  []int{0, 0, 5, 50}[rng.Intn(4)],
		}
		name := fmt.Sprintf("trial %d (corpus[%d:%d] variants=%d workers=%d shard=%d lookahead=%d target=%dms)",
			trial, lo, hi, cfg.MaxVariantsPerFile, cfg.Workers, cfg.ShardSize, cfg.Lookahead, cfg.TargetShardMillis)
		fifoCfg := cfg
		fifoCfg.Schedule = ScheduleFIFO
		fifoRep, err := Run(fifoCfg)
		if err != nil {
			t.Fatalf("%s: fifo: %v", name, err)
		}
		for _, schedule := range []string{ScheduleCoverage, ScheduleRegion} {
			altCfg := cfg
			altCfg.Schedule = schedule
			altRep, err := Run(altCfg)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, schedule, err)
			}
			if got, want := altRep.Format(), fifoRep.Format(); got != want {
				t.Errorf("%s: %s report diverges:\n--- %s ---\n%s--- fifo ---\n%s", name, schedule, schedule, got, want)
			}
			if !reflect.DeepEqual(altRep.Findings, fifoRep.Findings) {
				t.Errorf("%s: %s findings differ structurally", name, schedule)
			}
		}
	}
}

// scheduleCurve runs the bundled corpus single-worker (making the dispatch
// order, and thus the curve, deterministic) and reports how many variants
// the campaign needed to reach its full final site coverage.
func scheduleCurve(tb testing.TB, schedule string) (rep *Report, variantsToFull int) {
	rep, err := Run(Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 120,
		Workers:            1,
		ShardSize:          4,
		Lookahead:          1 << 12, // cover the whole campaign
		Schedule:           schedule,
		CoverageCurve:      true, // fifo must record the curve to be compared
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep, rep.VariantsToSites(rep.FinalSites())
}

// TestCoverageScheduleConvergesFaster asserts the point of the feedback
// scheduler: on the bundled corpus, coverage-guided dispatch reaches the
// campaign's full site coverage in fewer tested variants than fifo.
func TestCoverageScheduleConvergesFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("single-worker convergence comparison is slow and has no concurrency to race-check")
	}
	fifoRep, fifoN := scheduleCurve(t, ScheduleFIFO)
	covRep, covN := scheduleCurve(t, ScheduleCoverage)
	if fifoRep.FinalSites() != covRep.FinalSites() {
		t.Fatalf("final frontiers differ: fifo %d sites, coverage %d sites",
			fifoRep.FinalSites(), covRep.FinalSites())
	}
	if fifoN < 0 || covN < 0 {
		t.Fatalf("curve never reached the final frontier (fifo=%d coverage=%d)", fifoN, covN)
	}
	t.Logf("variants to full coverage (%d sites): fifo=%d coverage=%d", covRep.FinalSites(), fifoN, covN)
	if covN >= fifoN {
		t.Errorf("coverage schedule needed %d variants to full coverage, fifo needed %d — no speedup",
			covN, fifoN)
	}
}

// BenchmarkVariantsToFullCoverage reports, per schedule, how many variants
// the bundled corpus campaign needs to reach full site coverage — the
// metric CI watches for scheduling regressions (lower is better).
func BenchmarkVariantsToFullCoverage(b *testing.B) {
	for _, schedule := range []string{ScheduleFIFO, ScheduleCoverage, ScheduleRegion} {
		b.Run(schedule, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, n := scheduleCurve(b, schedule)
				b.ReportMetric(float64(n), "variants-to-cov")
			}
		})
	}
}

// regionCurve mirrors the schedule spebench experiment: a single-worker
// campaign over the large multi-function region corpus file, reporting
// how many variants the given schedule needed to reach full coverage.
func regionCurve(tb testing.TB, schedule string) (rep *Report, variantsToFull int) {
	rep, err := Run(Config{
		Corpus:             []string{corpus.RegionsSeed()},
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: 600,
		Workers:            1,
		ShardSize:          4,
		Lookahead:          1 << 12, // cover the whole campaign
		Schedule:           schedule,
		CoverageCurve:      true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep, rep.VariantsToSites(rep.FinalSites())
}

// TestRegionScheduleConvergesFaster asserts the point of the region
// scheduler: on a file whose novel coverage hides in the back half of the
// walk (per-file scores cannot see inside a single file), region-granular
// probing reaches full site coverage in strictly fewer variants than both
// the per-file coverage schedule and fifo order.
func TestRegionScheduleConvergesFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("single-worker convergence comparison is slow and has no concurrency to race-check")
	}
	covRep, covN := regionCurve(t, ScheduleCoverage)
	regRep, regN := regionCurve(t, ScheduleRegion)
	if covRep.FinalSites() != regRep.FinalSites() {
		t.Fatalf("final frontiers differ: coverage %d sites, region %d sites",
			covRep.FinalSites(), regRep.FinalSites())
	}
	if covN < 0 || regN < 0 {
		t.Fatalf("curve never reached the final frontier (coverage=%d region=%d)", covN, regN)
	}
	if got, want := regRep.Format(), covRep.Format(); got != want {
		t.Errorf("region report diverges from coverage:\n--- region ---\n%s--- coverage ---\n%s", got, want)
	}
	t.Logf("variants to full coverage (%d sites): coverage=%d region=%d", regRep.FinalSites(), covN, regN)
	if regN >= covN {
		t.Errorf("region schedule needed %d variants to full coverage, per-file coverage needed %d — no speedup",
			regN, covN)
	}
}

// TestUnknownScheduleRejected asserts the engine validates the policy name.
func TestUnknownScheduleRejected(t *testing.T) {
	_, err := Run(Config{Corpus: corpus.Seeds()[:1], Schedule: "best-effort"})
	if err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestCoverageCurveMonotone sanity-checks the curve shape: variant counts
// and frontier sizes must both be strictly increasing, and the curve must
// account for the campaign's real variant total.
func TestCoverageCurveMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("single-worker curve check is slow and has no concurrency to race-check")
	}
	rep, _ := scheduleCurve(t, ScheduleCoverage)
	if len(rep.CoverageCurve) == 0 {
		t.Fatal("no coverage curve recorded")
	}
	prev := CoveragePoint{}
	for i, p := range rep.CoverageCurve {
		if p.Variants <= prev.Variants && i > 0 {
			t.Errorf("curve[%d]: variants %d not increasing past %d", i, p.Variants, prev.Variants)
		}
		if p.Sites <= prev.Sites {
			t.Errorf("curve[%d]: sites %d not increasing past %d", i, p.Sites, prev.Sites)
		}
		prev = p
	}
	if last := rep.CoverageCurve[len(rep.CoverageCurve)-1]; last.Variants > rep.Stats.Variants {
		t.Errorf("curve claims %d variants, campaign ran %d", last.Variants, rep.Stats.Variants)
	}
}
