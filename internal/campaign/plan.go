package campaign

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
	"sync/atomic"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/refvm"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// backendState is the per-worker-checkout bundle of reusable execution
// backends: a pooled reference-interpreter machine (tree oracle and
// paranoid cross-checks), the bytecode-oracle cache (skeleton-keyed
// bytecode templates + pooled VM, the default reference engine), and the
// minicc backend cache (IR templates + VM state). Like a spe.Space, a
// backendState is single-goroutine between a Get and its Put; workers
// check one out per shard task, so machines, templates, and slabs
// amortize across every variant a worker drains from one file.
type backendState struct {
	mach  *interp.Machine
	ref   *refvm.Cache
	cache *minicc.Cache
}

// backendPool pools backendStates per file and counts checkout hit/miss
// rates for telemetry (one atomic add per Get, i.e. per shard task —
// never per variant).
type backendPool struct {
	pool sync.Pool
	gets atomic.Int64
	news atomic.Int64
}

func newBackendPool() *backendPool {
	p := &backendPool{}
	p.pool.New = func() interface{} {
		p.news.Add(1)
		return &backendState{mach: interp.NewMachine(), ref: refvm.NewCache(), cache: minicc.NewCache()}
	}
	return p
}

// Get checks a backendState out for exclusive use until Put.
func (p *backendPool) Get() *backendState {
	p.gets.Add(1)
	return p.pool.Get().(*backendState)
}

// Put returns a state obtained from Get.
func (p *backendPool) Put(b *backendState) { p.pool.Put(b) }

// Stats reports checkouts served by a recycled state (hits) versus
// building fresh backends (misses). Purely observational.
func (p *backendPool) Stats() (hits, misses int64) {
	n := p.news.Load()
	return p.gets.Load() - n, n
}

// filePlan is the deterministic testing schedule of one corpus file: the
// stride-sampled subset of the canonical enumeration the sequential harness
// would have walked, expressed in closed form so shards can jump straight
// to their variants with Unrank instead of replaying the walk.
//
// The sequential loop tested the original program plus every stride-th
// canonical variant until the per-file budget or the walk bound ran out;
// that set is exactly {j*stride : 0 <= j < tested} with
// tested = min(budget, ceil(canonical/stride)).
type filePlan struct {
	seedIdx   int
	src       string
	skip      bool // canonical count over threshold
	naive     *big.Int
	canonical *big.Int
	sk        *skeleton.Skeleton
	stride    int64
	// unclamped is the stride the per-file budget alone would have chosen
	// (canonical/budget, a big.Int because huge canonical counts overflow
	// int64); stride < unclamped exactly when the walk-bound clamp engaged
	// (clamped), collapsing coverage of a huge canonical space to a fixed
	// walk bound. The clamp is surfaced through Report.Plans instead of
	// being silently absorbed.
	unclamped *big.Int
	clamped   bool
	tested    int64 // number of enumerated variants tested
	// pool shares the file's enumeration across shard workers: each worker
	// checks out a private spe.Space (ranker memo tables + AST template
	// instances) and returns it when its shard completes.
	pool *spe.Pool
	// backends pools the per-worker execution backends the same way (nil
	// when Config.NoBackendReuse disables reuse).
	backends *backendPool
	// regionStarts are the sorted tested-space start positions of the
	// file's scheduling regions (spe.Space.RegionCuts): contiguous
	// hole-group ranges the region scheduler scores independently. Nil or
	// single-element means the file is one opaque region. Regions are
	// advisory scheduling metadata only — task identity, seq numbers, and
	// the merged report never depend on them.
	regionStarts []int64
}

// maxRegionsPerFile bounds how many scheduling regions one file's walk
// is cut into, keeping per-region score/frontier state small even for
// very large multi-function files.
const maxRegionsPerFile = 16

// regions returns how many scheduling regions the plan has (>= 1).
func (p *filePlan) regions() int {
	if len(p.regionStarts) == 0 {
		return 1
	}
	return len(p.regionStarts)
}

// regionOf maps a tested-space position to its region index.
func (p *filePlan) regionOf(fromJ int64) int {
	r := sort.Search(len(p.regionStarts), func(i int) bool { return p.regionStarts[i] > fromJ }) - 1
	if r < 0 {
		r = 0
	}
	return r
}

// info exports the plan's schedule facts for the report.
func (p *filePlan) info() PlanInfo {
	unclamped := ""
	if p.unclamped != nil {
		unclamped = p.unclamped.String()
	}
	return PlanInfo{
		SeedIndex:       p.seedIdx,
		Canonical:       p.canonical.String(),
		Stride:          p.stride,
		UnclampedStride: unclamped,
		Tested:          p.tested,
		Clamped:         p.clamped,
		Skipped:         p.skip,
		Regions:         p.regions(),
	}
}

// buildPlan derives the plan of one corpus file, reproducing the
// sequential harness's per-file decisions bit for bit.
func buildPlan(cfg Config, seedIdx int, src string) (*filePlan, error) {
	f, err := cc.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus[%d]: %w", seedIdx, err)
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus[%d]: %w", seedIdx, err)
	}
	sk, err := skeleton.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus[%d]: %w", seedIdx, err)
	}
	opts := spe.Options{Mode: spe.ModeCanonical, Granularity: cfg.Granularity}
	plan := &filePlan{
		seedIdx:   seedIdx,
		src:       src,
		sk:        sk,
		canonical: spe.Count(sk, opts),
		naive:     spe.Count(sk, spe.Options{Mode: spe.ModeNaive, Granularity: cfg.Granularity}),
	}
	if cfg.Threshold > 0 && plan.canonical.Cmp(big.NewInt(cfg.Threshold)) > 0 {
		plan.skip = true
		return plan, nil
	}
	plan.pool, err = spe.NewPool(sk, opts)
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus[%d]: %w", seedIdx, err)
	}
	plan.pool.CheckedRebind = cfg.Paranoid
	if !cfg.NoBackendReuse {
		plan.backends = newBackendPool()
	}
	budget := cfg.MaxVariantsPerFile
	if budget <= 0 {
		// a non-positive budget exhausts itself on the first enumerated
		// variant (the historical loop decremented before checking)
		plan.stride = 1
		plan.unclamped = big.NewInt(1)
		plan.tested = 0
		if plan.canonical.Sign() > 0 {
			plan.tested = 1
		}
		return plan, nil
	}
	stride := int64(1)
	unclamped := big.NewInt(1)
	if plan.canonical.IsInt64() {
		if total := plan.canonical.Int64(); total > int64(budget) {
			stride = total / int64(budget)
			unclamped.SetInt64(stride)
			if stride > 64 {
				stride = 64 // bound the walk over huge sets (see PlanInfo)
			}
		}
	} else {
		// the canonical count exceeds int64: the budget-proportional stride
		// (canonical/budget) is astronomically larger than the walk bound
		stride = 64
		unclamped.Quo(plan.canonical, big.NewInt(int64(budget)))
	}
	plan.stride = stride
	plan.unclamped = unclamped
	plan.clamped = unclamped.Cmp(big.NewInt(stride)) > 0
	// tested = min(budget, ceil(canonical/stride))
	ceil := new(big.Int).Add(plan.canonical, big.NewInt(stride-1))
	ceil.Quo(ceil, big.NewInt(stride))
	if ceil.Cmp(big.NewInt(int64(budget))) >= 0 {
		plan.tested = int64(budget)
	} else {
		plan.tested = ceil.Int64()
	}
	if plan.tested > 1 {
		sp := plan.pool.Get()
		plan.regionStarts = sp.RegionCuts(plan.stride, plan.tested, maxRegionsPerFile)
		plan.pool.Put(sp)
	}
	return plan, nil
}

// buildAllTasks derives every corpus file's plan and cuts the full shard
// task sequence with global seq numbers. The sequence is a pure function
// of Config — dispatch policy, adaptive batching, and resume never change
// task identity, which is what keeps checkpoints and the deterministic
// merge stable across schedules.
func buildAllTasks(cfg Config) ([]*task, error) {
	var out []*task
	seq := 0
	for seedIdx, src := range cfg.Corpus {
		plan, err := buildPlan(cfg, seedIdx, src)
		if err != nil {
			return nil, err
		}
		for _, t := range plan.tasks(cfg) {
			t.seq = seq
			seq++
			out = append(out, t)
		}
	}
	return out, nil
}

// task is one unit of shard work: a contiguous range of tested-variant
// positions of one file, plus (on the file's first task) the original
// program and the file-level statistics header.
type task struct {
	seq  int
	plan *filePlan
	// newFile marks the file's first task, which carries the Files /
	// NaiveTotal / CanonicalTotal / FilesSkipped statistics.
	newFile bool
	// includeOriginal tests the unmodified seed source before the range.
	includeOriginal bool
	fromJ, toJ      int64 // tested-variant positions [fromJ, toJ)
	// region is the scheduling region the range starts in (plan.regionOf
	// of fromJ): advisory dispatch metadata, never part of task identity.
	region int
}

// tasks cuts the plan into shard tasks of at most cfg.ShardSize variants.
// A skipped or empty file still contributes one header task so its
// statistics flow through the same ordered merge as everything else.
func (p *filePlan) tasks(cfg Config) []*task {
	if p.skip {
		return []*task{{plan: p, newFile: true}}
	}
	out := []*task{{plan: p, newFile: true, includeOriginal: true}}
	shard := int64(cfg.ShardSize)
	for from := int64(0); from < p.tested; from += shard {
		to := from + shard
		if to > p.tested {
			to = p.tested
		}
		// the original rides along with the first range
		if from == 0 {
			out[0].fromJ, out[0].toJ = from, to
			continue
		}
		out = append(out, &task{plan: p, fromJ: from, toJ: to, region: p.regionOf(from)})
	}
	return out
}
