package campaign

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/refvm"
	"spe/internal/spe"
)

// Batched shard execution: instead of interleaving oracle and compiler
// work per variant, an eligible shard first drains all of its oracle
// verdicts through refvm.Cache.RunBatch on one checked-out VM — each
// neighboring fill is rebound into the held instance and only the moved
// hole sites are re-patched between runs — and then replays the compiler
// configurations over the clean variants in the same ascending order.
// The split keeps the oracle's bytecode, handler tables, and slab hot in
// cache across the whole shard and drops the per-variant template lookup.
//
// Determinism: both phases walk the shard's enumeration indices in
// ascending order, so the refvm patch sequence, the minicc replay
// sequence, the shard-local attribution memo, coverage recording, and
// symptom emission all replay exactly what the interleaved path does —
// reports are byte-identical with batching on or off (pinned by the
// dispatch-equivalence tests). Clean variants are instantiated twice
// (once per phase); instantiation is orders of magnitude cheaper than a
// differential test, so the second bind is noise next to the locality
// won.

// batchEligible reports whether a shard can take the batched oracle
// path: the bytecode oracle serving the AST-resident pipeline with
// pooled backends, and batching not disabled.
func batchEligible(cfg Config, be *backendState) bool {
	return cfg.Oracle == OracleBytecode && !cfg.ForceRenderPath &&
		be != nil && !cfg.NoOracleBatch
}

// runShardBatch processes one shard's enumerated variants through the
// two-phase batched pipeline, appending to res.variants. The -paranoid
// cross-checks (sema invariants per bind, tree-walker verdict per run)
// ride inside phase 1, exactly as they wrap the interleaved path.
func runShardBatch(ctx context.Context, cfg Config, t *task, space *spe.Space, be *backendState, attr map[string]string, cov *minicc.Coverage, so *shardObs, res *taskResult) error {
	n := int(t.toJ - t.fromJ)
	idx := new(big.Int)
	stride := big.NewInt(t.plan.stride)
	setIdx := func(i int) {
		idx.SetInt64(t.fromJ + int64(i))
		idx.Mul(idx, stride)
	}
	wrap := func(i int, err error) error {
		return fmt.Errorf("campaign: corpus[%d] variant %d: %w", t.plan.seedIdx, t.fromJ+int64(i), err)
	}

	// RunBatch needs the analyzed template program and hole metadata
	// before its first bind, so the first variant is acquired up front and
	// bind(0) skips straight to the cross-checks.
	setIdx(0)
	var t0 time.Time
	if so != nil {
		t0 = time.Now()
	}
	in, release, err := space.AcquireAt(idx)
	if so != nil {
		so.instNs += time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return wrap(0, err)
	}
	defer release()
	prog := in.Program()
	holes := in.HoleIdents()

	// phase 1: every oracle verdict for the shard, one batch, one VM
	refs := make([]*interp.Result, n)
	var tOracle time.Time
	bind := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i > 0 {
			setIdx(i)
			if so != nil {
				t0 = time.Now()
			}
			fill, _, err := space.FillDeltaAt(idx)
			if err == nil {
				err = in.Instantiate(fill)
			}
			if so != nil {
				so.instNs += time.Since(t0).Nanoseconds()
			}
			if err != nil {
				return wrap(i, err)
			}
		}
		if cfg.Paranoid {
			if so != nil {
				so.paranoidChecks++
			}
			if err := crossCheckVariant(prog, cc.PrintFile(prog.File)); err != nil {
				return wrap(i, err)
			}
		}
		if so != nil {
			tOracle = time.Now()
		}
		return nil
	}
	yield := func(i int, ref *interp.Result) error {
		if cfg.Paranoid {
			if so != nil {
				so.paranoidChecks++
			}
			if err := crossCheckOracle(be.mach.Run(prog, interp.Config{MaxSteps: cfg.Steps}), ref); err != nil {
				return wrap(i, err)
			}
		}
		if so != nil {
			so.oracleNs += time.Since(tOracle).Nanoseconds()
		}
		refs[i] = ref
		return nil
	}
	rcfg := refvm.Config{MaxSteps: cfg.Steps, Dispatch: cfg.Dispatch}
	if err := be.ref.RunBatch(prog, holes, rcfg, n, bind, yield); err != nil {
		return err
	}

	// phase 2: compiler configurations over the clean variants, ascending
	// — the same order the interleaved path classifies in
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ref := refs[i]
		vr := variantResult{}
		if !ref.Defined() {
			vr.status = statusUB
			res.variants = append(res.variants, vr)
			continue
		}
		vr.status = statusClean
		setIdx(i)
		if so != nil {
			t0 = time.Now()
		}
		fill, _, err := space.FillDeltaAt(idx)
		if err == nil {
			err = in.Instantiate(fill)
		}
		if so != nil {
			so.instNs += time.Since(t0).Nanoseconds()
		}
		if err != nil {
			return wrap(i, err)
		}
		render := func() string { return cc.PrintFile(prog.File) }
		if so != nil {
			t0 = time.Now()
		}
		err = evalBackends(cfg, prog, holes, be, ref, render, attr, cov, &vr)
		if so != nil {
			so.backendNs += time.Since(t0).Nanoseconds()
		}
		if err != nil {
			return wrap(i, err)
		}
		res.variants = append(res.variants, vr)
	}
	return nil
}
