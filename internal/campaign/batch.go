package campaign

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/refvm"
	"spe/internal/spe"
)

// Batched shard execution: instead of interleaving oracle and compiler
// work per variant, an eligible shard first drains all of its oracle
// verdicts through refvm.Cache.RunBatch on one checked-out VM — each
// neighboring fill is rebound into the held instance and only the moved
// hole sites are re-patched between runs — and then replays the compiler
// configurations over the clean variants. The split keeps the oracle's
// bytecode, handler tables, and slab hot in cache across the whole shard
// and drops the per-variant template lookup.
//
// Phase 2 is itself batched (unless NoBackendBatch): the configuration
// loop moves outside the variant loop, and each (version, opt) pair
// drains every clean variant in ascending order through
// minicc.Cache.RunBatch. One compiler configuration's template trace,
// pass pipeline, and fused VM state then stay hot across the whole
// shard, and the per-run setup (bug-set resolution, template lookup) is
// paid once per configuration instead of once per execution.
//
// Determinism: every loop walks the shard's enumeration indices in
// ascending order (and configurations in the campaign's canonical
// version-outer, opt-inner order), so the refvm patch sequence, the
// minicc replay sequence, the shard-local attribution memo, coverage
// recording, and symptom emission all replay exactly what the
// interleaved path does — the attribution memo is keyed per (version,
// opt, symptom class), so the config-outer walk fills each key from the
// same lowest-index variant the variant-outer walk does. Reports are
// byte-identical with batching on or off (pinned by the
// dispatch-equivalence tests). Clean variants are re-instantiated per
// phase and per configuration; instantiation is orders of magnitude
// cheaper than a compile+execute, so the extra binds are noise next to
// the locality won.

// batchEligible reports whether a shard can take the batched oracle
// path: the bytecode oracle serving the AST-resident pipeline with
// pooled backends, and batching not disabled.
func batchEligible(cfg Config, be *backendState) bool {
	return cfg.Oracle == OracleBytecode && !cfg.ForceRenderPath &&
		be != nil && !cfg.NoOracleBatch
}

// runShardBatch processes one shard's enumerated variants through the
// two-phase batched pipeline, appending to res.variants. The -paranoid
// cross-checks (sema invariants per bind, tree-walker verdict per run)
// ride inside phase 1, exactly as they wrap the interleaved path.
func runShardBatch(ctx context.Context, cfg Config, t *task, space *spe.Space, be *backendState, cl *classifier, cov *minicc.Coverage, so *shardObs, res *taskResult) error {
	n := int(t.toJ - t.fromJ)
	idx := new(big.Int)
	stride := big.NewInt(t.plan.stride)
	setIdx := func(i int) {
		idx.SetInt64(t.fromJ + int64(i))
		idx.Mul(idx, stride)
	}
	wrap := func(i int, err error) error {
		return fmt.Errorf("campaign: corpus[%d] variant %d: %w", t.plan.seedIdx, t.fromJ+int64(i), err)
	}

	// RunBatch needs the analyzed template program and hole metadata
	// before its first bind, so the first variant is acquired up front and
	// bind(0) skips straight to the cross-checks.
	setIdx(0)
	var t0 time.Time
	if so != nil {
		t0 = time.Now()
	}
	in, release, err := space.AcquireAt(idx)
	if so != nil {
		so.instNs += time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return wrap(0, err)
	}
	defer release()
	prog := in.Program()
	holes := in.HoleIdents()

	// phase 1: every oracle verdict for the shard, one batch, one VM
	refs := make([]*interp.Result, n)
	var tOracle time.Time
	bind := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i > 0 {
			setIdx(i)
			if so != nil {
				t0 = time.Now()
			}
			fill, _, err := space.FillDeltaAt(idx)
			if err == nil {
				err = in.Instantiate(fill)
			}
			if so != nil {
				so.instNs += time.Since(t0).Nanoseconds()
			}
			if err != nil {
				return wrap(i, err)
			}
		}
		if cfg.Paranoid {
			if so != nil {
				so.paranoidChecks++
			}
			if err := crossCheckVariant(prog, cc.PrintFile(prog.File)); err != nil {
				return wrap(i, err)
			}
		}
		if so != nil {
			tOracle = time.Now()
		}
		return nil
	}
	yield := func(i int, ref *interp.Result) error {
		if cfg.Paranoid {
			if so != nil {
				so.paranoidChecks++
			}
			if err := crossCheckOracle(be.mach.Run(prog, interp.Config{MaxSteps: cfg.Steps}), ref); err != nil {
				return wrap(i, err)
			}
		}
		if so != nil {
			so.oracleNs += time.Since(tOracle).Nanoseconds()
		}
		refs[i] = ref
		return nil
	}
	rcfg := refvm.Config{MaxSteps: cfg.Steps, Dispatch: cfg.Dispatch}
	if err := be.ref.RunBatch(prog, holes, rcfg, n, bind, yield); err != nil {
		return err
	}

	if cfg.NoBackendBatch {
		// variant-outer fallback: one bind per clean variant, all compiler
		// configurations interleaved through evalBackends — the benchmark
		// baseline for the config-outer batched walk below
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			ref := refs[i]
			vr := variantResult{}
			if !ref.Defined() {
				vr.status = statusUB
				res.variants = append(res.variants, vr)
				continue
			}
			vr.status = statusClean
			setIdx(i)
			if so != nil {
				t0 = time.Now()
			}
			fill, _, err := space.FillDeltaAt(idx)
			if err == nil {
				err = in.Instantiate(fill)
			}
			if so != nil {
				so.instNs += time.Since(t0).Nanoseconds()
			}
			if err != nil {
				return wrap(i, err)
			}
			render := func() string { return cc.PrintFile(prog.File) }
			if err := evalBackends(cfg, prog, holes, be, ref, render, cl, cov, so, &vr); err != nil {
				return wrap(i, err)
			}
			res.variants = append(res.variants, vr)
		}
		return nil
	}

	// phase 2, config-outer: each (version, opt) pair drains all clean
	// variants in ascending order through minicc.Cache.RunBatch, so one
	// configuration's template trace and VM stay hot across the shard
	slots := make([]variantResult, n)
	clean := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if refs[i].Defined() {
			slots[i].status = statusClean
			clean = append(clean, i)
		} else {
			slots[i].status = statusUB
		}
	}
	if len(clean) > 0 {
		var tRun time.Time
		bound := clean[0]
		for _, ver := range cfg.Versions {
			for _, opt := range cfg.OptLevels {
				comp := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: cov}
				bind := func(k int) (minicc.ExecConfig, error) {
					i := clean[k]
					bound = i
					if err := ctx.Err(); err != nil {
						return minicc.ExecConfig{}, err
					}
					setIdx(i)
					if so != nil {
						t0 = time.Now()
					}
					fill, _, err := space.FillDeltaAt(idx)
					if err == nil {
						err = in.Instantiate(fill)
					}
					if so != nil {
						now := time.Now()
						so.instNs += now.Sub(t0).Nanoseconds()
						tRun = now
					}
					if err != nil {
						return minicc.ExecConfig{}, err
					}
					return minicc.ExecConfig{MaxSteps: refs[i].Steps*20 + 50_000, Dispatch: cfg.BackendDispatch}, nil
				}
				yield := func(k int, ro *minicc.RunOutcome) error {
					i := clean[k]
					if so != nil {
						now := time.Now()
						so.backendNs += now.Sub(tRun).Nanoseconds()
						t0 = now
					}
					slots[i].executions++
					if s, found := classifyOutcome(cfg, ver, opt, refs[i], ro, prog, cl); found {
						if slots[i].src == "" {
							// the instance is still bound to variant i while
							// yield runs, so the test case can render here
							slots[i].src = cc.PrintFile(prog.File)
						}
						cl.recs = append(cl.recs, symRec{slot: i, s: s})
					}
					if so != nil {
						so.classifyNs += time.Since(t0).Nanoseconds()
					}
					return nil
				}
				if err := comp.RunBatch(be.cache, prog, holes, cfg.Paranoid, len(clean), bind, yield); err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					return wrap(bound, err)
				}
			}
		}
	}
	// bucket-fill the arrival-ordered symptom records into one shard-wide
	// arena. Arrival order is config-outer, variant-inner; filtering it by
	// slot recovers each variant's canonical (version, opt) symptom order,
	// and the single allocation replaces one slice per symptomatic variant.
	// The arena is allocated fresh per shard and handed off with the
	// results, so nothing pooled escapes the task.
	if len(cl.recs) > 0 {
		counts := make([]int, n)
		for _, r := range cl.recs {
			counts[r.slot]++
		}
		arena := make([]symptom, len(cl.recs))
		off := 0
		for i := range slots {
			c := counts[i]
			if c == 0 {
				continue
			}
			// zero-length, capacity-capped window: appends fill the arena in
			// place and can never cross into the next variant's bucket
			slots[i].symptoms = arena[off : off : off+c]
			off += c
		}
		for _, r := range cl.recs {
			s := &slots[r.slot]
			s.symptoms = append(s.symptoms, r.s)
		}
		cl.recs = cl.recs[:0]
	}
	res.variants = append(res.variants, slots...)
	return nil
}
