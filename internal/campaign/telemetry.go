package campaign

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"spe/internal/minicc"
	"spe/internal/obs"
	"spe/internal/refvm"
	"spe/internal/spe"
)

// Telemetry is the campaign's live observability surface: typed handles
// on every engine metric, the recent-events ring behind /events, and the
// /status snapshot. Attach one via Config.Telemetry (and ResumeTelemetry
// for resumed campaigns); nil disables instrumentation entirely.
//
// Telemetry is provably inert: every recording site is nil-guarded, all
// recording is atomic or shard-local, nothing in the engine ever reads a
// metric back, and the Report surface does not change whether telemetry
// is attached or not (the obs-equivalence tests pin byte-identical
// reports with the server and ticker on versus off). Counters are
// touched per shard, not per variant — workers accumulate into a plain
// shardObs and the aggregator folds it in at merge time — so hot-path
// overhead stays within measurement noise (recorded by BENCH_obs.json).
//
// One Telemetry may outlive a single campaign (cmd/spebench attaches the
// same instance to every experiment's campaigns): counters accumulate
// monotonically across campaigns while the progress fields (planned,
// completed, ETA) always describe the most recently started campaign.
type Telemetry struct {
	reg  *obs.Registry
	ring *obs.Ring

	variants      *obs.Counter
	variantsUB    *obs.Counter
	variantsClean *obs.Counter
	executions    *obs.Counter

	shardsDispatched *obs.Counter
	shardsMerged     *obs.Counter
	shardLatencyMs   *obs.Histogram
	batchSize        *obs.Histogram

	stageInstantiateNs *obs.Counter
	stageOracleNs      *obs.Counter
	stageBackendNs     *obs.Counter
	stageClassifyNs    *obs.Counter

	miniccTemplateBuilds *obs.Counter
	miniccReplays        *obs.Counter
	miniccFreshLowerings *obs.Counter
	miniccThreadedRuns   *obs.Counter
	miniccSwitchRuns     *obs.Counter
	miniccBatchRuns      *obs.Counter
	miniccBatches        *obs.Counter
	refvmCompiles        *obs.Counter
	refvmPatchRuns       *obs.Counter
	refvmFallbacks       *obs.Counter
	refvmThreadedRuns    *obs.Counter
	refvmSwitchRuns      *obs.Counter
	refvmBatchRuns       *obs.Counter
	refvmBatches         *obs.Counter

	costNsPerVariant *obs.Gauge
	reorderPending   *obs.Gauge
	mergeLagShards   *obs.Gauge
	coverageSites    *obs.Gauge

	regionsTotal      *obs.Gauge
	regionsVisited    *obs.Gauge
	regionCurvePoints *obs.Counter

	checkpointWriteMs *obs.Histogram
	checkpointsTotal  *obs.Counter
	paranoidChecks    *obs.Counter

	findingsCrash      *obs.Counter
	findingsWrong      *obs.Counter
	findingsPerf       *obs.Counter
	findingOccurrences *obs.Counter

	plannedVariants *obs.Gauge
	resumedVariants *obs.Gauge

	// mu guards the campaign-scoped progress state below; it is touched
	// once per campaign start plus once per coverage point, never on the
	// per-variant hot path.
	mu        sync.Mutex
	start     time.Time
	workers   int
	planned   int64
	resumed   int64
	running   bool
	curveTail []CoveragePoint
	pools     []*spe.Pool
	bpools    []*backendPool
	// regionStats snapshots the region scheduler's live per-region state
	// for /status; nil unless the current campaign runs ScheduleRegion.
	regionStats func() []RegionStatus
}

// curveTailLen bounds how many trailing coverage points /status carries.
const curveTailLen = 32

// NewTelemetry constructs the metric set. Every series the catalog
// documents is registered eagerly (label'd finding classes included), so
// /metrics exposes the full schema from the first scrape.
func NewTelemetry() *Telemetry {
	reg := obs.NewRegistry()
	t := &Telemetry{
		reg:  reg,
		ring: obs.NewRing(256),

		variants:      reg.Counter("spe_variants_total", "Variants merged into the report so far."),
		variantsUB:    reg.Counter("spe_variants_ub_total", "Variants the reference oracle filtered as undefined behavior."),
		variantsClean: reg.Counter("spe_variants_clean_total", "Variants that passed UB filtering and were differentially tested."),
		executions:    reg.Counter("spe_executions_total", "Compile+execute runs across all compiler configurations."),

		shardsDispatched: reg.Counter("spe_shards_dispatched_total", "Shard tasks handed to workers."),
		shardsMerged:     reg.Counter("spe_shards_merged_total", "Shard results merged in canonical order."),
		shardLatencyMs:   reg.Histogram("spe_shard_latency_ms", "Wall-clock per shard task, milliseconds.", obs.ExpBuckets(1, 2, 12)),
		batchSize:        reg.Histogram("spe_batch_size", "Shard tasks grouped per adaptive dispatch batch.", obs.ExpBuckets(1, 2, 7)),

		stageInstantiateNs: reg.Counter("spe_stage_ns_total", "Per-stage wall-clock split, nanoseconds.", obs.L("stage", "instantiate")),
		stageOracleNs:      reg.Counter("spe_stage_ns_total", "Per-stage wall-clock split, nanoseconds.", obs.L("stage", "oracle")),
		stageBackendNs:     reg.Counter("spe_stage_ns_total", "Per-stage wall-clock split, nanoseconds.", obs.L("stage", "backend")),
		stageClassifyNs:    reg.Counter("spe_stage_ns_total", "Per-stage wall-clock split, nanoseconds.", obs.L("stage", "classify")),

		miniccTemplateBuilds: reg.Counter("spe_minicc_template_builds_total", "minicc IR templates lowered (once per skeleton per cache)."),
		miniccReplays:        reg.Counter("spe_minicc_replays_total", "Compilations served by IR-template trace replay."),
		miniccFreshLowerings: reg.Counter("spe_minicc_fresh_lowerings_total", "Compilations that fell back to a fresh lowering."),
		miniccThreadedRuns:   reg.Counter("spe_minicc_runs_total", "Compiled-binary executions by instruction dispatch engine.", obs.L("dispatch", "threaded")),
		miniccSwitchRuns:     reg.Counter("spe_minicc_runs_total", "Compiled-binary executions by instruction dispatch engine.", obs.L("dispatch", "switch")),
		miniccBatchRuns:      reg.Counter("spe_minicc_batch_runs_total", "Compiled-binary executions served inside a batched per-config shard walk."),
		miniccBatches:        reg.Counter("spe_minicc_batches_total", "Batched per-config shard walks (one RunBatch per configuration per eligible shard)."),
		refvmCompiles:        reg.Counter("spe_refvm_template_compiles_total", "refvm bytecode templates compiled (once per skeleton per cache)."),
		refvmPatchRuns:       reg.Counter("spe_refvm_patch_runs_total", "Oracle runs served by patching moved holes in cached bytecode."),
		refvmFallbacks:       reg.Counter("spe_refvm_fallbacks_total", "Oracle runs that fell back to a fresh bytecode compilation."),
		refvmThreadedRuns:    reg.Counter("spe_refvm_runs_total", "Oracle runs by instruction dispatch engine.", obs.L("dispatch", "threaded")),
		refvmSwitchRuns:      reg.Counter("spe_refvm_runs_total", "Oracle runs by instruction dispatch engine.", obs.L("dispatch", "switch")),
		refvmBatchRuns:       reg.Counter("spe_refvm_batch_runs_total", "Oracle runs served inside a batched shard execution."),
		refvmBatches:         reg.Counter("spe_refvm_batches_total", "Batched shard executions (one RunBatch per eligible shard)."),

		costNsPerVariant: reg.Gauge("spe_cost_ns_per_variant", "EWMA per-variant wall-clock cost model (adaptive shard sizing)."),
		reorderPending:   reg.Gauge("spe_reorder_pending_shards", "Shard results buffered awaiting in-order merge."),
		mergeLagShards:   reg.Gauge("spe_merge_lag_shards", "Dispatched-but-not-yet-merged shard tasks."),
		coverageSites:    reg.Gauge("spe_coverage_sites", "Distinct minicc instrumentation sites on the coverage frontier."),

		regionsTotal:      reg.Gauge("spe_regions_total", "Scheduling regions (seed, region pairs) in the campaign plan."),
		regionsVisited:    reg.Gauge("spe_regions_visited", "Scheduling regions that have completed at least one shard."),
		regionCurvePoints: reg.Counter("spe_region_curve_points_total", "Per-region coverage-curve samples published to the event ring."),

		checkpointWriteMs: reg.Histogram("spe_checkpoint_write_ms", "Checkpoint write latency, milliseconds.", obs.ExpBuckets(0.25, 2, 12)),
		checkpointsTotal:  reg.Counter("spe_checkpoints_total", "Checkpoint files written."),
		paranoidChecks:    reg.Counter("spe_paranoid_checks_total", "Per-variant -paranoid cross-checks performed."),

		findingsCrash:      reg.Counter("spe_findings_total", "Deduplicated findings by class.", obs.L("class", "crash")),
		findingsWrong:      reg.Counter("spe_findings_total", "Deduplicated findings by class.", obs.L("class", "wrong-code")),
		findingsPerf:       reg.Counter("spe_findings_total", "Deduplicated findings by class.", obs.L("class", "performance")),
		findingOccurrences: reg.Counter("spe_finding_occurrences_total", "Variant-level symptom occurrences collapsed into findings."),

		plannedVariants: reg.Gauge("spe_campaign_planned_variants", "Variants the current campaign will test in total."),
		resumedVariants: reg.Gauge("spe_campaign_resumed_variants", "Variants restored from the checkpoint at resume."),
	}
	t.reg.GaugeFunc("spe_space_pool_hits", "spe.Space pool checkouts served by a recycled Space.", func() float64 {
		h, _ := t.spacePoolStats()
		return float64(h)
	})
	t.reg.GaugeFunc("spe_space_pool_misses", "spe.Space pool checkouts that built a fresh Space.", func() float64 {
		_, m := t.spacePoolStats()
		return float64(m)
	})
	t.reg.GaugeFunc("spe_backend_pool_hits", "backendState pool checkouts served by a recycled state.", func() float64 {
		h, _ := t.backendPoolStats()
		return float64(h)
	})
	t.reg.GaugeFunc("spe_backend_pool_misses", "backendState pool checkouts that built fresh backends.", func() float64 {
		_, m := t.backendPoolStats()
		return float64(m)
	})
	return t
}

// Registry exposes the underlying metric registry (for /metrics and for
// embedding the campaign metrics into a larger process's registry-less
// scrape).
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// Ring exposes the recent-events ring behind /events.
func (t *Telemetry) Ring() *obs.Ring { return t.ring }

// Handler returns the HTTP surface: /metrics, /status, /events, and
// /debug/pprof/*. Serve it with obs.Serve (the -status-addr flag).
func (t *Telemetry) Handler() http.Handler {
	return obs.Handler(t.reg, t.ring, func() interface{} { return t.Status() })
}

// spacePoolStats sums hit/miss counters across the current campaign's
// spe.Space pools (scrape-time collection; zero hot-path mirroring).
func (t *Telemetry) spacePoolStats() (hits, misses int64) {
	t.mu.Lock()
	pools := t.pools
	t.mu.Unlock()
	for _, p := range pools {
		h, m := p.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// backendPoolStats is spacePoolStats for the backendState pools.
func (t *Telemetry) backendPoolStats() (hits, misses int64) {
	t.mu.Lock()
	bpools := t.bpools
	t.mu.Unlock()
	for _, p := range bpools {
		h, m := p.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// campaignStarted records the new campaign's shape: planned and
// already-merged (resumed) variant totals, the worker count the ETA
// model divides by, and the pools the scrape-time gauges read.
func (t *Telemetry) campaignStarted(cfg Config, all []*task, startSeq int) {
	if t == nil {
		return
	}
	var planned, resumed int64
	var pools []*spe.Pool
	var bpools []*backendPool
	for _, tk := range all {
		n := tk.toJ - tk.fromJ
		if tk.includeOriginal {
			n++
		}
		planned += n
		if tk.seq < startSeq {
			resumed += n
		}
		if tk.newFile {
			if tk.plan.pool != nil {
				pools = append(pools, tk.plan.pool)
			}
			if tk.plan.backends != nil {
				bpools = append(bpools, tk.plan.backends)
			}
		}
	}
	t.mu.Lock()
	t.start = time.Now()
	t.workers = cfg.Workers
	t.planned = planned
	t.resumed = resumed
	t.running = true
	t.curveTail = nil
	t.pools = pools
	t.bpools = bpools
	t.mu.Unlock()
	t.plannedVariants.Set(float64(planned))
	t.resumedVariants.Set(float64(resumed))
	t.ring.Publish("campaign", map[string]interface{}{
		"state":            "started",
		"planned_variants": planned,
		"resumed_variants": resumed,
		"workers":          cfg.Workers,
		"schedule":         cfg.Schedule,
		"oracle":           cfg.Oracle,
	})
}

// campaignDone marks the campaign finished.
func (t *Telemetry) campaignDone() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.running = false
	t.mu.Unlock()
	t.ring.Publish("campaign", map[string]interface{}{"state": "done"})
}

// observeDispatch records one producer dispatch of a shard batch.
func (t *Telemetry) observeDispatch(batch int) {
	if t == nil {
		return
	}
	t.shardsDispatched.Add(int64(batch))
	t.batchSize.Observe(float64(batch))
}

// observeMerge folds one merged shard result into the counters. Called
// from the aggregator in canonical merge order, so the event stream and
// counters advance exactly as the report does.
func (t *Telemetry) observeMerge(r *taskResult) {
	if t == nil {
		return
	}
	t.shardsMerged.Inc()
	if r.ranVariants > 0 {
		t.shardLatencyMs.Observe(float64(r.elapsedNs) / 1e6)
	}
	var ub, clean, execs int64
	for i := range r.variants {
		switch r.variants[i].status {
		case statusUB:
			ub++
		case statusClean:
			clean++
		}
		execs += int64(r.variants[i].executions)
	}
	t.variants.Add(int64(len(r.variants)))
	t.variantsUB.Add(ub)
	t.variantsClean.Add(clean)
	t.executions.Add(execs)
	if so := r.obs; so != nil {
		t.stageInstantiateNs.Add(so.instNs)
		t.stageOracleNs.Add(so.oracleNs)
		t.stageBackendNs.Add(so.backendNs)
		t.stageClassifyNs.Add(so.classifyNs)
		t.paranoidChecks.Add(so.paranoidChecks)
		t.miniccTemplateBuilds.Add(so.minicc.TemplateBuilds)
		t.miniccReplays.Add(so.minicc.Replays)
		t.miniccFreshLowerings.Add(so.minicc.FreshLowerings)
		t.miniccThreadedRuns.Add(so.minicc.ThreadedRuns)
		t.miniccSwitchRuns.Add(so.minicc.SwitchRuns)
		t.miniccBatchRuns.Add(so.minicc.BatchRuns)
		t.miniccBatches.Add(so.minicc.Batches)
		t.refvmCompiles.Add(so.refvm.TemplateCompiles)
		t.refvmPatchRuns.Add(so.refvm.PatchRuns)
		t.refvmFallbacks.Add(so.refvm.Fallbacks)
		t.refvmThreadedRuns.Add(so.refvm.ThreadedRuns)
		t.refvmSwitchRuns.Add(so.refvm.SwitchRuns)
		t.refvmBatchRuns.Add(so.refvm.BatchRuns)
		t.refvmBatches.Add(so.refvm.Batches)
	}
}

// observeAggregator tracks the reorder buffer and merge lag after each
// arrival is processed.
func (t *Telemetry) observeAggregator(pending int) {
	if t == nil {
		return
	}
	t.reorderPending.Set(float64(pending))
	t.mergeLagShards.Set(float64(t.shardsDispatched.Load() - t.shardsMerged.Load()))
}

// observeSteering samples the scheduler's EWMA cost model and coverage
// frontier after a shard observation; when the frontier grew, the new
// coverage point is published to the event stream and kept in the
// /status curve tail. rp, non-nil only under the region policy when the
// shard pushed its own region's frontier, streams the per-region
// coverage curve to the event ring.
func (t *Telemetry) observeSteering(costNs float64, point CoveragePoint, novel bool, rp *RegionCoveragePoint) {
	if t == nil {
		return
	}
	t.costNsPerVariant.Set(costNs)
	if rp != nil {
		t.regionCurvePoints.Inc()
		t.ring.Publish("region_coverage", rp)
	}
	if !novel {
		return
	}
	t.coverageSites.Set(float64(point.Sites))
	t.mu.Lock()
	t.curveTail = append(t.curveTail, point)
	if len(t.curveTail) > curveTailLen {
		t.curveTail = t.curveTail[len(t.curveTail)-curveTailLen:]
	}
	t.mu.Unlock()
	t.ring.Publish("coverage", point)
}

// attachRegions hooks the region scheduler's live state into /status and
// the spe_region_* gauges. A no-op unless the campaign runs
// ScheduleRegion; the scheduler callback is scrape-time only (never on
// the variant hot path).
func (t *Telemetry) attachRegions(cfg Config, sched *scheduler) {
	if t == nil {
		return
	}
	if cfg.Schedule != ScheduleRegion {
		t.mu.Lock()
		t.regionStats = nil
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	t.regionStats = sched.regionStatuses
	t.mu.Unlock()
	t.regionsTotal.Set(float64(len(sched.units)))
}

// observeCheckpoint records one checkpoint write.
func (t *Telemetry) observeCheckpoint(nextSeq int, elapsed time.Duration) {
	if t == nil {
		return
	}
	t.checkpointsTotal.Inc()
	t.checkpointWriteMs.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	t.ring.Publish("checkpoint", map[string]interface{}{
		"next_seq": nextSeq,
		"ms":       float64(elapsed.Nanoseconds()) / 1e6,
	})
}

// observeFinding records a finding event. created marks the first
// occurrence (a new deduplicated finding); later occurrences only bump
// the occurrence counter.
func (t *Telemetry) observeFinding(fd *Finding, created bool) {
	if t == nil {
		return
	}
	t.findingOccurrences.Inc()
	if !created {
		return
	}
	class := findingClass(fd.Kind)
	switch fd.Kind {
	case minicc.BugCrash:
		t.findingsCrash.Inc()
	case minicc.BugWrongCode:
		t.findingsWrong.Inc()
	default:
		t.findingsPerf.Inc()
	}
	t.ring.Publish("finding", map[string]interface{}{
		"class":     class,
		"bug_id":    fd.BugID,
		"signature": fd.Signature,
		"seed":      fd.SeedIndex,
	})
}

// findingClass maps a bug kind to its metric label.
func findingClass(k minicc.BugKind) string {
	switch k {
	case minicc.BugCrash:
		return "crash"
	case minicc.BugWrongCode:
		return "wrong-code"
	default:
		return "performance"
	}
}

// Status is the /status document: the campaign's vital signs.
type Status struct {
	Running        bool      `json:"running"`
	StartTime      time.Time `json:"start_time"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	// PlannedVariants is the campaign's total variant schedule;
	// CompletedVariants counts merged variants including the resumed
	// prefix restored from a checkpoint.
	PlannedVariants   int64   `json:"planned_variants"`
	CompletedVariants int64   `json:"completed_variants"`
	ResumedVariants   int64   `json:"resumed_variants"`
	ProgressPercent   float64 `json:"progress_percent"`
	VariantsPerSec    float64 `json:"variants_per_sec"`
	// ETASeconds derives from the scheduler's EWMA per-variant cost model
	// divided across the worker pool; when the model has not learned yet
	// it falls back to the observed throughput.
	ETASeconds       float64 `json:"eta_seconds"`
	CostNsPerVariant float64 `json:"cost_ns_per_variant"`

	Findings struct {
		Crash       int64 `json:"crash"`
		WrongCode   int64 `json:"wrong_code"`
		Performance int64 `json:"performance"`
		Occurrences int64 `json:"occurrences"`
	} `json:"findings"`

	CoverageSites     int64           `json:"coverage_sites"`
	CoverageCurveTail []CoveragePoint `json:"coverage_curve_tail,omitempty"`

	// Regions is the region scheduler's live per-region steering state
	// (score, frontier size, EWMA cost, pending shards); present only
	// when the campaign runs -schedule=region.
	Regions []RegionStatus `json:"regions,omitempty"`

	Shards struct {
		Dispatched int64 `json:"dispatched"`
		Merged     int64 `json:"merged"`
		Pending    int64 `json:"pending"`
	} `json:"shards"`
}

// Status assembles the current campaign snapshot.
func (t *Telemetry) Status() Status {
	t.mu.Lock()
	start := t.start
	workers := t.workers
	planned := t.planned
	resumed := t.resumed
	running := t.running
	tail := append([]CoveragePoint(nil), t.curveTail...)
	regionStats := t.regionStats
	t.mu.Unlock()

	var s Status
	s.Running = running
	s.StartTime = start
	if !start.IsZero() {
		s.ElapsedSeconds = time.Since(start).Seconds()
	}
	s.PlannedVariants = planned
	s.ResumedVariants = resumed
	s.CompletedVariants = resumed + t.variants.Load()
	if planned > 0 {
		s.ProgressPercent = 100 * float64(s.CompletedVariants) / float64(planned)
	}
	if s.ElapsedSeconds > 0 {
		s.VariantsPerSec = float64(s.CompletedVariants-resumed) / s.ElapsedSeconds
	}
	s.CostNsPerVariant = t.costNsPerVariant.Load()
	remaining := planned - s.CompletedVariants
	if remaining > 0 {
		if s.CostNsPerVariant > 0 && workers > 0 {
			s.ETASeconds = float64(remaining) * s.CostNsPerVariant / 1e9 / float64(workers)
		} else if s.VariantsPerSec > 0 {
			s.ETASeconds = float64(remaining) / s.VariantsPerSec
		}
	}
	s.Findings.Crash = t.findingsCrash.Load()
	s.Findings.WrongCode = t.findingsWrong.Load()
	s.Findings.Performance = t.findingsPerf.Load()
	s.Findings.Occurrences = t.findingOccurrences.Load()
	s.CoverageSites = int64(t.coverageSites.Load())
	s.CoverageCurveTail = tail
	s.Shards.Dispatched = t.shardsDispatched.Load()
	s.Shards.Merged = t.shardsMerged.Load()
	s.Shards.Pending = s.Shards.Dispatched - s.Shards.Merged
	if regionStats != nil {
		s.Regions = regionStats()
		visited := 0
		for _, r := range s.Regions {
			if r.Variants > 0 {
				visited++
			}
		}
		t.regionsVisited.Set(float64(visited))
	}
	return s
}

// ProgressLine renders the one-line stderr ticker.
func (t *Telemetry) ProgressLine() string {
	s := t.Status()
	findings := s.Findings.Crash + s.Findings.WrongCode + s.Findings.Performance
	return fmt.Sprintf("spe: %5.1f%% | %d/%d variants | %.0f/s | eta %s | findings %d | coverage %d sites",
		s.ProgressPercent, s.CompletedVariants, s.PlannedVariants, s.VariantsPerSec,
		formatETA(s.ETASeconds), findings, s.CoverageSites)
}

func formatETA(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return (time.Duration(sec*float64(time.Second)) / time.Second * time.Second).String()
}

// StartProgressTicker prints ProgressLine to w every interval until the
// returned stop function runs (stop is idempotent). The ticker writes
// only to w — attach it to stderr so report stdout stays byte-identical.
func (t *Telemetry) StartProgressTicker(w io.Writer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				fmt.Fprintln(w, t.ProgressLine())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// shardObs accumulates one shard task's telemetry locally: plain ints
// the worker bumps per variant, folded into the shared atomic counters
// exactly once at merge time. A nil *shardObs (telemetry disabled) skips
// all timing — the hot path then contains no time.Now calls at all.
type shardObs struct {
	instNs, oracleNs, backendNs, classifyNs int64
	paranoidChecks                          int64
	miniccBase                              minicc.CacheStats
	refvmBase                               refvm.CacheStats
	minicc                                  minicc.CacheStats
	refvm                                   refvm.CacheStats
}
