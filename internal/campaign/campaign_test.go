package campaign

import (
	"context"
	"reflect"
	"testing"

	"spe/internal/corpus"
	"spe/internal/minicc"
)

// TestReportDeterministicAcrossWorkerCounts asserts the engine's core
// guarantee: the Report is byte-identical no matter how the variant space
// is sharded or how many workers race over it.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:5],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 120,
	}
	ref, err := Run(withWorkers(base, 1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("reference campaign found nothing; determinism test is vacuous")
	}
	for _, tc := range []struct{ workers, shard int }{
		{4, 32},
		{3, 7},       // shard boundaries must not leak into the report
		{8, 1},       // one variant per task
		{2, 1 << 20}, // one task per file
	} {
		rep, err := Run(withWorkers(base, tc.workers, tc.shard))
		if err != nil {
			t.Fatalf("workers=%d shard=%d: %v", tc.workers, tc.shard, err)
		}
		if got, want := rep.Format(), ref.Format(); got != want {
			t.Errorf("workers=%d shard=%d: report diverges from workers=1:\n--- got ---\n%s--- want ---\n%s",
				tc.workers, tc.shard, got, want)
		}
		if !reflect.DeepEqual(rep.Findings, ref.Findings) {
			t.Errorf("workers=%d shard=%d: findings differ structurally", tc.workers, tc.shard)
		}
		if !reflect.DeepEqual(rep.Stats, ref.Stats) {
			t.Errorf("workers=%d shard=%d: stats differ: %+v vs %+v", tc.workers, tc.shard, rep.Stats, ref.Stats)
		}
	}
}

func withWorkers(cfg Config, workers, shard int) Config {
	cfg.Workers = workers
	cfg.ShardSize = shard
	return cfg
}

// TestCampaignFindsSeededBugsParallel mirrors the harness-level seeded-bug
// expectations through a parallel run.
func TestCampaignFindsSeededBugsParallel(t *testing.T) {
	rep, err := Run(Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 400,
		Workers:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*Finding{}
	for _, fd := range rep.Findings {
		byID[fd.BugID] = fd
	}
	if _, ok := byID["69801"]; !ok {
		t.Error("bug 69801 (fold-ternary) not found")
	}
	if _, ok := byID["69951"]; !ok {
		t.Error("bug 69951 (alias store forwarding) not found")
	}
	if rep.Stats.CrashFindings == 0 || rep.Stats.WrongFindings == 0 {
		t.Errorf("missing finding kinds: %+v", rep.Stats)
	}
	if rep.Stats.CanonicalTotal.Cmp(rep.Stats.NaiveTotal) >= 0 {
		t.Errorf("canonical total %s not below naive total %s",
			rep.Stats.CanonicalTotal, rep.Stats.NaiveTotal)
	}
}

// TestCorpusErrorPropagates asserts a malformed corpus file aborts the
// campaign with a descriptive error under any worker count.
func TestCorpusErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(Config{
			Corpus:  []string{corpus.Seeds()[0], "int main( {"},
			Workers: workers,
		})
		if err == nil {
			t.Fatalf("workers=%d: campaign over malformed corpus succeeded", workers)
		}
	}
}

// TestCancellation asserts a canceled context stops the engine promptly
// and surfaces the cancellation.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Corpus: corpus.Seeds()[:2], Workers: 2})
	if err == nil {
		t.Fatal("canceled campaign returned no error")
	}
}

// TestFindingKinds sanity-checks kind counting in finalize.
func TestFindingKinds(t *testing.T) {
	rep, err := Run(Config{
		Corpus:             corpus.Seeds()[:3],
		MaxVariantsPerFile: 60,
		Workers:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	crash, wrong, perf := 0, 0, 0
	for _, fd := range rep.Findings {
		switch fd.Kind {
		case minicc.BugCrash:
			crash++
		case minicc.BugWrongCode:
			wrong++
		default:
			perf++
		}
	}
	if crash != rep.Stats.CrashFindings || wrong != rep.Stats.WrongFindings || perf != rep.Stats.PerfFindings {
		t.Errorf("kind counts (%d,%d,%d) disagree with stats %+v", crash, wrong, perf, rep.Stats)
	}
}
