package campaign

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"spe/internal/corpus"
)

// TestASTPathMatchesRenderPath pins the tentpole equivalence: the
// AST-resident hot path produces byte-identical reports to the historical
// render→re-parse pipeline, across worker counts and both dispatch
// schedules.
func TestASTPathMatchesRenderPath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign equivalence matrix; TestParanoidCrossCheckPasses covers the AST path in -short")
	}
	base := Config{
		Corpus:             corpus.Seeds()[:6],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 80,
	}

	render := base
	render.ForceRenderPath = true
	render.Workers = 1
	ref, err := Run(render)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("render-path campaign found nothing; equivalence test is vacuous")
	}

	for _, tc := range []struct {
		name     string
		workers  int
		schedule string
	}{
		{"sequential", 1, ScheduleFIFO},
		{"parallel-fifo", 6, ScheduleFIFO},
		{"parallel-coverage", 6, ScheduleCoverage},
	} {
		cfg := base
		cfg.Workers = tc.workers
		cfg.Schedule = tc.schedule
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got, want := rep.Format(), ref.Format(); got != want {
			t.Errorf("%s: AST-path report diverges from render path:\n--- ast ---\n%s--- render ---\n%s",
				tc.name, got, want)
		}
		if !reflect.DeepEqual(rep.Findings, ref.Findings) {
			t.Errorf("%s: findings differ structurally from render path", tc.name)
		}
	}
}

// TestParanoidCrossCheckPasses runs the campaign with the -paranoid
// render+reparse cross-check asserting the instantiation invariants on
// every variant; the report must also stay byte-identical.
func TestParanoidCrossCheckPasses(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:4],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		Workers:            4,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	paranoid := base
	paranoid.Paranoid = true
	rep, err := Run(paranoid)
	if err != nil {
		t.Fatalf("paranoid campaign failed the cross-check: %v", err)
	}
	if rep.Format() != plain.Format() {
		t.Errorf("paranoid report diverges:\n--- paranoid ---\n%s--- plain ---\n%s", rep.Format(), plain.Format())
	}
}

// TestASTPathWithReductionMatchesRenderPath extends the equivalence through
// the test-case reducer: reduced sample test cases must come out identical,
// since the lazily rendered variant text is byte-identical to the
// historical rendering.
func TestASTPathWithReductionMatchesRenderPath(t *testing.T) {
	base := Config{
		Corpus:             corpus.Seeds()[:4],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 60,
		ReduceTestCases:    true,
	}
	render := base
	render.ForceRenderPath = true
	render.Workers = 1
	ref, err := Run(render)
	if err != nil {
		t.Fatal(err)
	}
	ast := base
	ast.Workers = 4
	rep, err := Run(ast)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Format(), ref.Format(); got != want {
		t.Errorf("reduced AST-path report diverges:\n--- ast ---\n%s--- render ---\n%s", got, want)
	}
	for i := range ref.Findings {
		if rep.Findings[i].TestCase != ref.Findings[i].TestCase {
			t.Errorf("finding %d: reduced test case differs between paths:\n--- ast ---\n%s--- render ---\n%s",
				i, rep.Findings[i].TestCase, ref.Findings[i].TestCase)
		}
	}
}

// TestLazyRenderOnlyForSymptomaticVariants asserts the hot path's lazy
// source rendering: symptom-free variants carry no source text back to the
// aggregator.
func TestLazyRenderOnlyForSymptomaticVariants(t *testing.T) {
	cfg := Config{
		Corpus:             corpus.Seeds()[:2],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 40,
	}
	cfg = cfg.withDefaults()
	all, err := buildAllTasks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawSymptomless := false
	for _, tk := range all {
		r := runTask(context.Background(), cfg, tk)
		if r.err != nil {
			t.Fatal(r.err)
		}
		for i := range r.variants {
			vr := &r.variants[i]
			if len(vr.symptoms) > 0 && vr.src == "" {
				t.Fatal("symptomatic variant has no rendered source")
			}
			if len(vr.symptoms) == 0 && vr.status != statusParseFail && vr.src != "" {
				t.Fatal("symptom-free variant paid for a render")
			}
			if len(vr.symptoms) == 0 && vr.src == "" {
				sawSymptomless = true
			}
		}
	}
	if !sawSymptomless {
		t.Error("no symptom-free variant observed; laziness test is vacuous")
	}
}

// TestParanoidReportMentionsNothing ensures paranoid mode is pure checking:
// the Config differences must not leak into the formatted report body
// (Format prints stats, plans, and findings only).
func TestParanoidReportMentionsNothing(t *testing.T) {
	cfg := Config{
		Corpus:             corpus.Seeds()[:2],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 20,
		Paranoid:           true,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Format(), "paranoid") {
		t.Error("paranoid flag leaked into the report text")
	}
}
