package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Regression tests for context-driven shutdown: a canceled campaign must
// persist its merged prefix to the checkpoint before returning — even
// when the periodic checkpoint cadence never fired — so a SIGINT'd run
// resumes from exactly where it stopped instead of abandoning up to
// CheckpointEvery-1 merged shards.

// TestShutdownCheckpointsMergedPrefix cancels a campaign whose
// CheckpointEvery is far beyond the plan (the periodic path can never
// write) and asserts the shutdown path left a resumable checkpoint whose
// continuation matches the uninterrupted baseline.
func TestShutdownCheckpointsMergedPrefix(t *testing.T) {
	base := oracleBaseConfig()
	base.Workers = 2
	want := mustRun(t, base).Format()

	path := filepath.Join(t.TempDir(), "shutdown.ckpt.json")
	cfg := base
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 1 << 20 // periodic checkpoints never fire

	tel := NewTelemetry()
	cfg.Telemetry = tel
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			if tel.Status().Shards.Merged >= 3 {
				cancel()
				return
			}
		}
	}()
	_, err := RunContext(ctx, cfg)
	cancel()
	if err == nil {
		t.Skip("campaign completed before cancellation; nothing to regression-test")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned %v, want context.Canceled", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("shutdown did not checkpoint the merged prefix: %v", statErr)
	}
	resumed, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Format(); got != want {
		t.Errorf("resumed report diverges from uninterrupted baseline:\n--- resumed ---\n%s--- baseline ---\n%s", got, want)
	}
}

// TestShutdownWithoutCheckpointPathStillErrors pins that cancellation
// without a checkpoint path keeps the old contract: a prompt error, no
// stray files.
func TestShutdownWithoutCheckpointPathStillErrors(t *testing.T) {
	cfg := oracleBaseConfig()
	cfg.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled campaign returned %v, want context.Canceled", err)
	}
}
