package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointVersion guards the on-disk format. Version 2 added the
// scheduler steering block (coverage frontier, cost model, per-file
// scores); version 3 added the region scheduler's per-region steering
// (scores, EWMA costs, and frontiers keyed "seed:region"). Version 2
// files still load — steering is advisory, so a resumed region campaign
// simply restarts its per-region state from the optimistic init while
// the campaign-wide frontier carries over, and the report is identical.
const checkpointVersion = 3

// minCheckpointVersion is the oldest format loadCheckpoint accepts.
const minCheckpointVersion = 2

// checkpointFile is the JSON document written at shard-merge boundaries.
// It captures the full aggregator state after the first NextSeq shard
// tasks, so a resumed campaign regenerates the (deterministic) task
// sequence, skips the merged prefix, and continues as if never
// interrupted. Config is embedded whole — corpus included — so Resume
// needs nothing but the path.
type checkpointFile struct {
	Version int
	Config  Config
	// NextSeq is the number of shard tasks merged into this state.
	NextSeq     int
	Stats       Stats
	Findings    []*Finding
	Attribution map[string]string
	// Steering carries the coverage frontier and adaptive-sizing cost
	// model so a resumed campaign keeps the dispatch steering it had
	// learned (merely advisory: it never affects the final Report).
	Steering *steering
}

// writeCheckpoint atomically persists the aggregator state plus the
// scheduler's steering snapshot.
func writeCheckpoint(cfg Config, st *aggState, steer *steering) error {
	ck := &checkpointFile{
		Version:     checkpointVersion,
		Config:      cfg,
		NextSeq:     st.nextSeq,
		Stats:       st.stats,
		Attribution: st.attribution,
		Steering:    steer,
	}
	keys := make([]string, 0, len(st.byKey))
	for k := range st.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ck.Findings = append(ck.Findings, st.byKey[k])
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	tmp := cfg.CheckpointPath + ".tmp"
	if err := os.MkdirAll(filepath.Dir(cfg.CheckpointPath), 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cfg.CheckpointPath); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint back into aggregator state.
func loadCheckpoint(path string) (Config, *aggState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, nil, fmt.Errorf("campaign: resume: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return Config{}, nil, fmt.Errorf("campaign: resume %s: %w", path, err)
	}
	if ck.Version < minCheckpointVersion || ck.Version > checkpointVersion {
		return Config{}, nil, fmt.Errorf("campaign: resume %s: checkpoint version %d, want %d..%d",
			path, ck.Version, minCheckpointVersion, checkpointVersion)
	}
	st := newAggState()
	st.nextSeq = ck.NextSeq
	st.stats = ck.Stats
	if st.stats.NaiveTotal == nil || st.stats.CanonicalTotal == nil {
		return Config{}, nil, fmt.Errorf("campaign: resume %s: malformed stats", path)
	}
	for _, fd := range ck.Findings {
		st.byKey[fd.key()] = fd
	}
	if ck.Attribution != nil {
		st.attribution = ck.Attribution
	}
	st.steer = ck.Steering
	return ck.Config, st, nil
}

// Resume continues a checkpointed campaign from its last persisted state
// and runs it to completion, producing the same Report an uninterrupted
// run would have (the checkpoint carries the whole config, corpus
// included). The campaign keeps checkpointing to the same path.
func Resume(path string) (*Report, error) {
	return ResumeContext(context.Background(), path)
}

// ResumeContext is Resume with cancellation.
func ResumeContext(ctx context.Context, path string) (*Report, error) {
	return ResumeTelemetry(ctx, path, nil)
}

// ResumeTelemetry is ResumeContext with live telemetry attached to the
// resumed run (checkpoints never persist telemetry — Config.Telemetry is
// json:"-" — so it must be re-supplied on resume). tel may be nil.
func ResumeTelemetry(ctx context.Context, path string, tel *Telemetry) (*Report, error) {
	cfg, st, err := loadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cfg.CheckpointPath = path
	cfg.Telemetry = tel
	return runEngine(ctx, cfg, st)
}
