package campaign

import (
	"fmt"
	"math/big"
	"strings"
	"testing"

	"spe/internal/corpus"
)

// clampSeed has a canonical variant count large enough that a small
// per-file budget pushes the budget-proportional stride far past the walk
// bound: ten interchangeable-in-pairs globals referenced from many holes.
const clampSeed = `
int a = 1, b = 2, c = 3, d = 4, e = 5;
int main() {
    int s = 0;
    s = a + b + c + d + e;
    s = s + a * b + c * d + e;
    s = s - a - b - c - d - e;
    s = s + a % 7 + b % 7 + c % 7;
    return s % 251;
}
`

// clampSeedInt64 clamps too, but with a canonical count that still fits
// int64, covering the other arm of the stride computation.
const clampSeedInt64 = `
int a = 1, b = 2, c = 3;
int main() {
    int s = 0;
    s = a + b + c;
    s = s + a * b + c;
    return s % 251;
}
`

// TestStrideClampSurfaced is the regression test for the historically
// silent stride=64 clamp: a huge canonical count with a tiny budget must
// (a) still clamp the walk, and (b) say so in the plan info and the
// formatted report, so the skipped coverage is visible. Both the int64 and
// the big-count stride arms are exercised.
func TestStrideClampSurfaced(t *testing.T) {
	for _, tc := range []struct {
		name      string
		seed      string
		wantInt64 bool
	}{
		{"big-count", clampSeed, false},
		{"int64-count", clampSeedInt64, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Corpus:             []string{tc.seed},
				Versions:           []string{"trunk"},
				MaxVariantsPerFile: 3,
				Threshold:          -1,
			}
			cfg = cfg.withDefaults()
			plan, err := buildPlan(cfg, 0, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if plan.canonical.IsInt64() != tc.wantInt64 {
				t.Fatalf("canonical count %s: IsInt64=%v, test seed no longer covers the %s arm",
					plan.canonical, plan.canonical.IsInt64(), tc.name)
			}
			budget := big.NewInt(int64(cfg.MaxVariantsPerFile))
			if plan.canonical.Cmp(new(big.Int).Mul(big.NewInt(64), budget)) <= 0 {
				t.Fatalf("canonical count %s too small to trigger the clamp; pick a bigger seed", plan.canonical)
			}
			if plan.stride != 64 {
				t.Fatalf("stride = %d, want the 64 walk bound", plan.stride)
			}
			if !plan.clamped {
				t.Fatal("clamp engaged but not recorded")
			}
			if want := new(big.Int).Quo(plan.canonical, budget); plan.unclamped.Cmp(want) != 0 {
				t.Errorf("unclamped stride = %s, want %s", plan.unclamped, want)
			}

			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Plans) != 1 {
				t.Fatalf("report carries %d plans, want 1", len(rep.Plans))
			}
			pi := rep.Plans[0]
			if !pi.Clamped || pi.Stride != 64 || pi.UnclampedStride != plan.unclamped.String() {
				t.Errorf("plan info does not surface the clamp: %+v", pi)
			}
			wantLine := fmt.Sprintf("plan: file 0 stride clamped %s -> 64 (walked %d of %s canonical variants)",
				pi.UnclampedStride, pi.Tested, pi.Canonical)
			if !strings.Contains(rep.Format(), wantLine) {
				t.Errorf("formatted report missing clamp line %q:\n%s", wantLine, rep.Format())
			}
		})
	}
}

// TestUnclampedPlanStaysQuiet asserts files whose stride fits the walk
// bound produce no clamp chatter in the report.
func TestUnclampedPlanStaysQuiet(t *testing.T) {
	rep, err := Run(Config{
		Corpus:             corpus.Seeds()[:2],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range rep.Plans {
		if pi.Clamped {
			t.Fatalf("plan %+v claims a clamp under a generous budget", pi)
		}
	}
	if strings.Contains(rep.Format(), "stride clamped") {
		t.Errorf("report mentions a clamp that never happened:\n%s", rep.Format())
	}
}

// TestPlansSurviveResumeDerivation asserts Plans are re-derived (not
// checkpointed): a report's plans equal a fresh buildPlan over the same
// config.
func TestPlansSurviveResumeDerivation(t *testing.T) {
	cfg := Config{
		Corpus:             []string{clampSeed},
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 3,
		Threshold:          -1,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := buildPlan(cfg.withDefaults(), 0, clampSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plans[0] != plan.info() {
		t.Errorf("report plan %+v diverges from derived plan %+v", rep.Plans[0], plan.info())
	}
}
