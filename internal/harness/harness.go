// Package harness drives the paper's evaluation loop (§5): derive a
// skeleton from each corpus program, enumerate its non-alpha-equivalent
// variants, filter out variants with undefined behavior using the
// reference interpreter, feed the clean variants to the compilers under
// test at several optimization levels, and classify every divergence from
// the reference semantics as a crash, wrong-code, or performance bug.
package harness

import (
	"fmt"
	"math/big"
	"sort"

	"spe/internal/cc"
	"spe/internal/interp"
	"spe/internal/minicc"
	"spe/internal/partition"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// Config parameterizes a campaign.
type Config struct {
	// Corpus is the seed program population.
	Corpus []string
	// Versions lists the simulated compiler versions under test (names
	// from minicc.Versions); defaults to {"trunk"}.
	Versions []string
	// OptLevels defaults to {0, 1, 2, 3}.
	OptLevels []int
	// Threshold is the per-file variant cap (paper: 10,000). Zero means
	// 10,000; negative means unlimited.
	Threshold int64
	// MaxVariantsPerFile additionally bounds how many enumerated variants
	// are executed per file (budget control); zero means the threshold.
	MaxVariantsPerFile int
	// Granularity of the enumeration; defaults to intra-procedural.
	Granularity spe.Granularity
	// Steps bounds each execution.
	Steps int64
	// ReduceTestCases post-processes each finding's sample test case with
	// the delta-debugging reducer, as the paper does before filing (§6).
	ReduceTestCases bool
}

func (c Config) withDefaults() Config {
	if len(c.Versions) == 0 {
		c.Versions = []string{"trunk"}
	}
	if len(c.OptLevels) == 0 {
		c.OptLevels = []int{0, 1, 2, 3}
	}
	if c.Threshold == 0 {
		c.Threshold = 10_000
	}
	if c.MaxVariantsPerFile == 0 {
		c.MaxVariantsPerFile = int(c.Threshold)
	}
	if c.Steps == 0 {
		c.Steps = 500_000
	}
	return c
}

// Finding is one deduplicated bug discovery.
type Finding struct {
	// BugID is the seeded bug's simulated bugzilla number ("" when the
	// symptom could not be attributed).
	BugID string
	Kind  minicc.BugKind
	// Signature identifies crash findings (Table 3).
	Signature string
	Component string
	Priority  int
	// OptLevels lists the optimization levels at which the symptom
	// appeared.
	OptLevels []int
	// Versions lists the affected versions observed.
	Versions []string
	// TestCase is a minimal sample variant source triggering the bug.
	TestCase string
	// SeedIndex is the corpus file whose skeleton produced the test case.
	SeedIndex int
	// Occurrences counts variant-level duplicates collapsed into this
	// finding.
	Occurrences int
}

// Stats aggregates campaign-level counters.
type Stats struct {
	Files          int
	FilesSkipped   int // over threshold
	Variants       int
	VariantsUB     int // filtered by the reference interpreter
	VariantsClean  int
	Executions     int
	CrashFindings  int
	WrongFindings  int
	PerfFindings   int
	NaiveTotal     *big.Int
	CanonicalTotal *big.Int
}

// Report is the campaign outcome.
type Report struct {
	Config   Config
	Findings []*Finding
	Stats    Stats
}

// Run executes a campaign.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Config: cfg}
	rep.Stats.NaiveTotal = new(big.Int)
	rep.Stats.CanonicalTotal = new(big.Int)
	byKey := make(map[string]*Finding)
	st := &campaignState{attribution: make(map[string]string)}

	for seedIdx, src := range cfg.Corpus {
		f, err := cc.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("harness: corpus[%d]: %w", seedIdx, err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			return nil, fmt.Errorf("harness: corpus[%d]: %w", seedIdx, err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			return nil, fmt.Errorf("harness: corpus[%d]: %w", seedIdx, err)
		}
		rep.Stats.Files++
		opts := spe.Options{Mode: spe.ModeCanonical, Granularity: cfg.Granularity}
		canonical := spe.Count(sk, opts)
		naive := spe.Count(sk, spe.Options{Mode: spe.ModeNaive, Granularity: cfg.Granularity})
		rep.Stats.NaiveTotal.Add(rep.Stats.NaiveTotal, naive)
		rep.Stats.CanonicalTotal.Add(rep.Stats.CanonicalTotal, canonical)
		if cfg.Threshold > 0 && canonical.Cmp(big.NewInt(cfg.Threshold)) > 0 {
			rep.Stats.FilesSkipped++
			continue
		}
		// the original program is always tested (it is one filling of its
		// own skeleton), then the enumeration budget is spread across the
		// canonical order by stride sampling, avoiding the bias of a pure
		// lexicographic prefix
		rep.Stats.Variants++
		testVariant(cfg, rep, byKey, st, seedIdx, src)
		budget := cfg.MaxVariantsPerFile
		stride := 1
		if canonical.IsInt64() {
			if total := canonical.Int64(); total > int64(budget) {
				stride = int(total / int64(budget))
				if stride > 64 {
					stride = 64 // bound the walk over huge sets
				}
			}
		} else {
			stride = 64
		}
		walkBound := cfg.MaxVariantsPerFile * stride
		walked := 0
		_, err = spe.EnumerateFills(sk, opts, func(idx int, fill []partition.VarRef) bool {
			walked++
			if idx%stride != 0 {
				return walked < walkBound
			}
			rep.Stats.Variants++
			testVariant(cfg, rep, byKey, st, seedIdx, sk.Render(fill))
			budget--
			return budget > 0 && walked < walkBound
		})
		if err != nil {
			return nil, err
		}
	}
	for _, fd := range byKey {
		if cfg.ReduceTestCases {
			reduceFinding(fd, cfg)
		}
		rep.Findings = append(rep.Findings, fd)
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Kind != rep.Findings[j].Kind {
			return rep.Findings[i].Kind < rep.Findings[j].Kind
		}
		return rep.Findings[i].key() < rep.Findings[j].key()
	})
	for _, fd := range rep.Findings {
		switch fd.Kind {
		case minicc.BugCrash:
			rep.Stats.CrashFindings++
		case minicc.BugWrongCode:
			rep.Stats.WrongFindings++
		default:
			rep.Stats.PerfFindings++
		}
	}
	return rep, nil
}

func (f *Finding) key() string {
	if f.BugID != "" {
		return "id:" + f.BugID
	}
	return "sig:" + f.Signature
}

// campaignState carries memoization across variants: attributing a
// wrong-code symptom requires recompilations, and symptoms repeat heavily
// within one seed's enumeration, so results are cached by
// (seed, version, opt, signature).
type campaignState struct {
	attribution map[string]string
}

// testVariant runs one enumerated variant through the reference and all
// compiler configurations.
func testVariant(cfg Config, rep *Report, byKey map[string]*Finding, st *campaignState, seedIdx int, src string) bool {
	file, err := cc.Parse(src)
	if err != nil {
		return false // enumeration rendered something unparsable: bug in us
	}
	prog, err := cc.Analyze(file)
	if err != nil {
		return false
	}
	ref := interp.Run(prog, interp.Config{MaxSteps: cfg.Steps})
	if !ref.Defined() {
		rep.Stats.VariantsUB++
		return false
	}
	rep.Stats.VariantsClean++

	// the compiled binary needs only a small multiple of the reference's
	// step count; a much larger consumption is already a hang symptom, so
	// an adaptive budget keeps miscompiled infinite loops cheap to detect
	execSteps := ref.Steps*20 + 50_000
	for _, ver := range cfg.Versions {
		for _, opt := range cfg.OptLevels {
			rep.Stats.Executions++
			comp := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true}
			ro := comp.Run(prog, minicc.ExecConfig{MaxSteps: execSteps})
			classify(rep, byKey, st, seedIdx, src, ver, opt, ref, ro, prog, cfg)
		}
	}
	return true
}

func classify(rep *Report, byKey map[string]*Finding, st *campaignState, seedIdx int, src, ver string, opt int,
	ref *interp.Result, ro *minicc.RunOutcome, prog *cc.Program, cfg Config) {

	record := func(kind minicc.BugKind, bugID, signature string) {
		key := "sig:" + signature
		if bugID != "" {
			key = "id:" + bugID
		}
		fd, ok := byKey[key]
		if !ok {
			fd = &Finding{
				BugID:     bugID,
				Kind:      kind,
				Signature: signature,
				TestCase:  src,
				SeedIndex: seedIdx,
			}
			if b, found := minicc.BugByID(bugID); found {
				fd.Component = b.Component
				fd.Priority = b.Priority
			}
			byKey[key] = fd
		}
		fd.Occurrences++
		fd.OptLevels = addUniqueInt(fd.OptLevels, opt)
		fd.Versions = addUniqueStr(fd.Versions, ver)
	}

	out := ro.Compile
	switch {
	case out.Crash != nil:
		record(minicc.BugCrash, out.Crash.BugID, out.Crash.Signature)
		return
	case out.Timeout != nil:
		record(minicc.BugPerformance, attributePerf(ver, opt), "compile-time hang: "+out.Timeout.Pass)
		return
	case out.Err != nil:
		return // unsupported construct; not a bug signal
	}
	ex := ro.Exec
	ok := ex.Ok() == (ref.UB == nil && !ref.Aborted) &&
		ex.Aborted == ref.Aborted &&
		(ex.Aborted || (ex.Exit == ref.Exit && ex.Output == ref.Output && ex.Trap == "" && !ex.Timeout))
	if ok {
		return
	}
	// symptom classes: the detailed signature is for display; the coarse
	// class drives deduplication and attribution memoization (the paper
	// likewise dedupes reports by symptom, not by concrete wrong values)
	coarse := "wrong-exit"
	sig := fmt.Sprintf("wrong code (exit %d, expected %d)", ex.Exit, ref.Exit)
	if ex.Exit == ref.Exit {
		coarse = "wrong-output"
		sig = fmt.Sprintf("wrong code (output %q, expected %q)", ex.Output, ref.Output)
	}
	if ex.Trap != "" {
		coarse = "trap"
		sig = "runtime trap: " + ex.Trap
	}
	if ex.Timeout {
		coarse = "hang"
		sig = "runtime hang (step budget exhausted)"
	}
	// attribute by selectively deactivating active bugs; memoized per
	// (seed, version, opt, symptom class)
	memoKey := fmt.Sprintf("%d|%s|%d|%s", seedIdx, ver, opt, coarse)
	bugID, cached := st.attribution[memoKey]
	if !cached {
		bugID = attributeWrongCode(prog, ver, opt, ref, cfg)
		st.attribution[memoKey] = bugID
	}
	if bugID == "" {
		// unattributed: dedupe by coarse class and seed to avoid a finding
		// per concrete wrong value
		sig = fmt.Sprintf("%s (seed %d): e.g. %s", coarse, seedIdx, sig)
	}
	if bugID != "" {
		if b, found := minicc.BugByID(bugID); found && b.Kind == minicc.BugPerformance {
			record(minicc.BugPerformance, bugID, sig)
			return
		}
	}
	record(minicc.BugWrongCode, bugID, sig)
}

// attributeWrongCode finds which single seeded bug explains a wrong-code
// symptom by deactivating active bugs one at a time — a seeded-oracle
// analogue of the paper's root-cause triage.
func attributeWrongCode(prog *cc.Program, ver string, opt int, ref *interp.Result, cfg Config) string {
	vi := minicc.VersionIndex(ver)
	if vi < 0 {
		vi = len(minicc.Versions) - 1
	}
	full := minicc.BugsFor(vi, opt)
	for _, hook := range full.Hooks() {
		reduced := full.Without(hook)
		comp := &minicc.Compiler{Version: ver, Opt: opt, Bugs: reduced}
		ro := comp.Run(prog, minicc.ExecConfig{MaxSteps: ref.Steps*20 + 50_000})
		if !ro.Compile.Ok() {
			continue
		}
		ex := ro.Exec
		if ex.Ok() && ex.Exit == ref.Exit && ex.Output == ref.Output && ex.Aborted == ref.Aborted {
			for _, b := range minicc.Registry() {
				if b.Hook == hook {
					return b.ID
				}
			}
		}
	}
	return ""
}

// attributePerf maps a compile timeout to the active performance bug.
func attributePerf(ver string, opt int) string {
	vi := minicc.VersionIndex(ver)
	if vi < 0 {
		vi = len(minicc.Versions) - 1
	}
	set := minicc.BugsFor(vi, opt)
	for _, b := range minicc.Registry() {
		if b.Kind == minicc.BugPerformance && set.Active(b.Hook) {
			return b.ID
		}
	}
	return ""
}

func addUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	s = append(s, v)
	sort.Ints(s)
	return s
}

func addUniqueStr(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	s = append(s, v)
	sort.Strings(s)
	return s
}
