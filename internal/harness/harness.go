// Package harness drives the paper's evaluation loop (§5): derive a
// skeleton from each corpus program, enumerate its non-alpha-equivalent
// variants, filter out variants with undefined behavior using the
// reference interpreter, feed the clean variants to the compilers under
// test at several optimization levels, and classify every divergence from
// the reference semantics as a crash, wrong-code, or performance bug.
//
// The loop itself lives in the internal/campaign engine, which shards each
// file's canonical variant space across a worker pool and merges results
// deterministically; this package keeps the historical Config/Report
// surface and re-exports the campaign types so existing callers are
// untouched. Run with the default Config parallelizes across GOMAXPROCS
// workers and produces output byte-identical to the old sequential loop
// (set Workers to 1 to force sequential execution). Variants are
// instantiated AST-resident — each corpus file is parsed and analyzed
// once, and per-variant work is in-place hole rebinding on pooled
// template clones; set Config.ForceRenderPath for the historical text
// pipeline or Config.Paranoid to cross-check every instantiation (both
// yield byte-identical reports).
package harness

import "spe/internal/campaign"

// Config parameterizes a campaign. It is the campaign engine's Config;
// see that package for the worker-pool and checkpointing knobs.
type Config = campaign.Config

// Finding is one deduplicated bug discovery.
type Finding = campaign.Finding

// Stats aggregates campaign-level counters.
type Stats = campaign.Stats

// Report is the campaign outcome.
type Report = campaign.Report

// Run executes a campaign through the sharded engine.
func Run(cfg Config) (*Report, error) {
	return campaign.Run(cfg)
}
