package harness

import (
	"fmt"

	"spe/internal/cc"
	"spe/internal/minicc"
	"spe/internal/mutation"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// CoveragePair is one coverage measurement of the compiler under test.
type CoveragePair struct {
	Function float64
	Line     float64
}

// Improvement returns the percentage-point improvement over a baseline.
func (c CoveragePair) Improvement(base CoveragePair) CoveragePair {
	return CoveragePair{
		Function: (c.Function - base.Function) * 100,
		Line:     (c.Line - base.Line) * 100,
	}
}

// CoverageReport reproduces the measurements behind the paper's Figure 9:
// compiler coverage achieved by the original test programs (baseline), by
// SPE enumeration, and by Orion-style statement-deletion mutation (PM-X).
type CoverageReport struct {
	Baseline CoveragePair
	SPE      CoveragePair
	PM       map[int]CoveragePair // X -> coverage
}

// CoverageConfig parameterizes the experiment.
type CoverageConfig struct {
	Corpus          []string
	VariantsPerFile int   // SPE variants compiled per corpus file
	PMLevels        []int // e.g. {10, 20, 30}
	PMVariants      int   // mutation variants per file per level
	Seed            int64
}

// CoverageExperiment measures compiler coverage under the three input
// generation strategies.
func CoverageExperiment(cfg CoverageConfig) (*CoverageReport, error) {
	if cfg.VariantsPerFile == 0 {
		cfg.VariantsPerFile = 25
	}
	if len(cfg.PMLevels) == 0 {
		cfg.PMLevels = []int{10, 20, 30}
	}
	if cfg.PMVariants == 0 {
		cfg.PMVariants = cfg.VariantsPerFile
	}
	programs := make([]*cc.Program, 0, len(cfg.Corpus))
	for i, src := range cfg.Corpus {
		f, err := cc.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("coverage: corpus[%d]: %w", i, err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			return nil, fmt.Errorf("coverage: corpus[%d]: %w", i, err)
		}
		programs = append(programs, prog)
	}

	compileAll := func(cov *minicc.Coverage, prog *cc.Program) {
		for _, opt := range minicc.OptLevels {
			c := &minicc.Compiler{Opt: opt, Coverage: cov}
			c.Run(prog, minicc.ExecConfig{MaxSteps: 200_000})
		}
	}

	rep := &CoverageReport{PM: make(map[int]CoveragePair)}

	// baseline: the original corpus only
	base := minicc.NewCoverage()
	for _, prog := range programs {
		compileAll(base, prog)
	}
	rep.Baseline = CoveragePair{Function: base.FunctionCoverage(), Line: base.LineCoverage()}

	// SPE: baseline plus enumerated variants
	speCov := minicc.NewCoverage()
	for _, prog := range programs {
		compileAll(speCov, prog)
		sk, err := skeleton.Build(prog)
		if err != nil {
			continue
		}
		n := 0
		_, err = spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical}, func(v spe.Variant) bool {
			vf, err := cc.Parse(v.Source)
			if err != nil {
				return true
			}
			vp, err := cc.Analyze(vf)
			if err != nil {
				return true
			}
			compileAll(speCov, vp)
			n++
			return n < cfg.VariantsPerFile
		})
		if err != nil {
			return nil, err
		}
	}
	rep.SPE = CoveragePair{Function: speCov.FunctionCoverage(), Line: speCov.LineCoverage()}

	// PM-X: baseline plus statement-deletion variants
	for _, x := range cfg.PMLevels {
		pmCov := minicc.NewCoverage()
		for pi, prog := range programs {
			compileAll(pmCov, prog)
			variants := mutation.Generate(prog, mutation.Options{
				MaxDelete: x,
				Count:     cfg.PMVariants,
				Seed:      cfg.Seed + int64(pi),
			})
			for _, v := range variants {
				vf, err := cc.Parse(v.Source)
				if err != nil {
					continue
				}
				vp, err := cc.Analyze(vf)
				if err != nil {
					continue
				}
				compileAll(pmCov, vp)
			}
		}
		rep.PM[x] = CoveragePair{Function: pmCov.FunctionCoverage(), Line: pmCov.LineCoverage()}
	}
	return rep, nil
}
