package harness

import (
	"testing"

	"spe/internal/corpus"
	"spe/internal/minicc"
)

func TestCampaignFindsSeededBugs(t *testing.T) {
	// the handwritten seeds model exactly the bug families of the paper's
	// figures; a trunk campaign over them must find several seeded bugs
	rep, err := Run(Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("campaign found no bugs")
	}
	byID := map[string]*Finding{}
	for _, fd := range rep.Findings {
		byID[fd.BugID] = fd
		t.Logf("found: id=%s kind=%v sig=%q opts=%v occurrences=%d",
			fd.BugID, fd.Kind, fd.Signature, fd.OptLevels, fd.Occurrences)
	}
	// Figure 3's family must expose the fold-ternary crash (bug 69801)
	if _, ok := byID["69801"]; !ok {
		t.Error("bug 69801 (fold-ternary) not found from Figure 3 seed")
	}
	// Figure 2's family must expose the alias wrong-code bug (69951)
	if _, ok := byID["69951"]; !ok {
		t.Error("bug 69951 (alias store forwarding) not found from Figure 2 seed")
	}
	if rep.Stats.CrashFindings == 0 {
		t.Error("no crash findings")
	}
	if rep.Stats.WrongFindings == 0 {
		t.Error("no wrong-code findings")
	}
	if rep.Stats.VariantsClean == 0 || rep.Stats.Variants == 0 {
		t.Error("no variants tested")
	}
	// SPE's reduction must be visible in the aggregate counts
	if rep.Stats.CanonicalTotal.Cmp(rep.Stats.NaiveTotal) >= 0 {
		t.Errorf("canonical total %s not below naive total %s",
			rep.Stats.CanonicalTotal, rep.Stats.NaiveTotal)
	}
}

func TestCampaignCleanCompilerFindsNothing(t *testing.T) {
	// Sanity: with all bugs fixed ("a future version"), differential
	// testing over a small corpus must report nothing. Build a pseudo
	// version by running unseeded compilers through the classifier: we
	// approximate by checking that unseeded compilation matches the
	// reference on every clean variant of one seed.
	rep, err := Run(Config{
		Corpus:             corpus.Seeds()[:2],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// the findings must all be attributable to seeded bugs (non-empty ID)
	for _, fd := range rep.Findings {
		if fd.BugID == "" && fd.Kind == minicc.BugWrongCode {
			t.Errorf("unattributed wrong-code finding (possible harness false positive): %q\n%s",
				fd.Signature, fd.TestCase)
		}
	}
}

func TestThresholdSkipsLargeFiles(t *testing.T) {
	big := `
int a, b, c, d;
int main() {
    a = b; b = c; c = d; d = a;
    a = b; b = c; c = d; d = a;
    a = b; b = c; c = d; d = a;
    a = b; b = c; c = d; d = a;
    return 0;
}`
	rep, err := Run(Config{
		Corpus:    []string{big},
		Threshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.FilesSkipped != 1 {
		t.Errorf("files skipped = %d, want 1", rep.Stats.FilesSkipped)
	}
	if rep.Stats.Variants != 0 {
		t.Errorf("variants = %d, want 0", rep.Stats.Variants)
	}
}

func TestUBVariantsFiltered(t *testing.T) {
	// enumerating this skeleton produces divisions by a zero-initialized
	// variable; the reference interpreter must filter those variants
	seed := `
int main() {
    int a = 0, b = 2;
    int r = 10 / b;
    printf("%d\n", r);
    return 0;
}`
	rep, err := Run(Config{
		Corpus:             []string{seed},
		MaxVariantsPerFile: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.VariantsUB == 0 {
		t.Error("no UB variants filtered; expected divisions by zero under re-filling")
	}
	if rep.Stats.VariantsClean == 0 {
		t.Error("no clean variants")
	}
}

func TestCoverageExperimentShape(t *testing.T) {
	cfg := CoverageConfig{
		Corpus:          corpus.Seeds()[:6],
		VariantsPerFile: 10,
		PMLevels:        []int{10},
		PMVariants:      10,
		Seed:            1,
	}
	rep, err := CoverageExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Line <= 0 || rep.Baseline.Line > 1 {
		t.Errorf("baseline line coverage = %v", rep.Baseline.Line)
	}
	// SPE coverage dominates the baseline (paper Figure 9's shape)
	if rep.SPE.Line < rep.Baseline.Line {
		t.Errorf("SPE line coverage %v below baseline %v", rep.SPE.Line, rep.Baseline.Line)
	}
	if rep.SPE.Function < rep.Baseline.Function {
		t.Errorf("SPE function coverage %v below baseline %v", rep.SPE.Function, rep.Baseline.Function)
	}
	pm := rep.PM[10]
	if pm.Line < rep.Baseline.Line {
		t.Errorf("PM line coverage %v below baseline %v", pm.Line, rep.Baseline.Line)
	}
	imp := rep.SPE.Improvement(rep.Baseline)
	t.Logf("SPE improvement: func %.2f%%, line %.2f%%; PM-10: func %.2f%%, line %.2f%%",
		imp.Function, imp.Line,
		pm.Improvement(rep.Baseline).Function, pm.Improvement(rep.Baseline).Line)
}
