package minicc

import (
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/interp"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// TestDifferentialGeneratedCorpus is the repository's strongest integration
// test: for a generated corpus, the *unseeded* compiler must agree with the
// reference interpreter at every optimization level. Any mismatch is a real
// miscompilation in our own optimizer (not a seeded bug).
func TestDifferentialGeneratedCorpus(t *testing.T) {
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: 40, Seed: 1234})...)
	for i, src := range progs {
		prog := analyzeT(t, src)
		ref := interp.Run(prog, interp.Config{})
		if !ref.Defined() {
			t.Fatalf("corpus[%d] has UB: %v", i, ref.UB)
		}
		for _, opt := range OptLevels {
			c := &Compiler{Opt: opt}
			ro := c.Run(prog, ExecConfig{})
			if !ro.Compile.Ok() {
				t.Errorf("corpus[%d] -O%d: compile failed: %+v\n%s", i, opt, ro.Compile, src)
				continue
			}
			ex := ro.Exec
			if ex.Aborted != ref.Aborted {
				t.Errorf("corpus[%d] -O%d: abort mismatch\n%s", i, opt, src)
				continue
			}
			if !ex.Aborted && (!ex.Ok() || ex.Exit != ref.Exit || ex.Output != ref.Output) {
				t.Errorf("corpus[%d] -O%d: got (%d, %q, trap=%q), want (%d, %q)\n%s",
					i, opt, ex.Exit, ex.Output, ex.Trap, ref.Exit, ref.Output, src)
			}
		}
	}
}

// TestDifferentialEnumeratedVariants extends the differential check to
// enumerated variants: every UB-free re-filling must also compile
// correctly with the unseeded optimizer. This exercises optimizer paths
// (equal-operand folding, aliasing patterns, dead branches) that original
// programs rarely reach — the paper's core premise.
func TestDifferentialEnumeratedVariants(t *testing.T) {
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: 10, Seed: 555})...)
	checked := 0
	for i, src := range progs {
		prog := analyzeT(t, src)
		sk, err := skeleton.Build(prog)
		if err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		n := 0
		_, err = spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical}, func(v spe.Variant) bool {
			n++
			vf, err := cc.Parse(v.Source)
			if err != nil {
				t.Errorf("corpus[%d] variant %d does not parse: %v", i, v.Index, err)
				return false
			}
			vp, err := cc.Analyze(vf)
			if err != nil {
				t.Errorf("corpus[%d] variant %d does not analyze: %v", i, v.Index, err)
				return false
			}
			ref := interp.Run(vp, interp.Config{MaxSteps: 300_000})
			if !ref.Defined() {
				return n < 25 // UB variant: skipped, like the harness does
			}
			for _, opt := range []int{0, 3} {
				c := &Compiler{Opt: opt}
				ro := c.Run(vp, ExecConfig{MaxSteps: 1_200_000})
				if !ro.Compile.Ok() {
					t.Errorf("corpus[%d] variant %d -O%d: compile failed: %+v\n%s",
						i, v.Index, opt, ro.Compile, v.Source)
					return false
				}
				ex := ro.Exec
				if ex.Aborted != ref.Aborted {
					t.Errorf("corpus[%d] variant %d -O%d: abort mismatch\n%s", i, v.Index, opt, v.Source)
					return false
				}
				if !ex.Aborted && (!ex.Ok() || ex.Exit != ref.Exit || ex.Output != ref.Output) {
					t.Errorf("corpus[%d] variant %d -O%d: got (%d, %q, trap=%q), want (%d, %q)\n%s",
						i, v.Index, opt, ex.Exit, ex.Output, ex.Trap, ref.Exit, ref.Output, v.Source)
					return false
				}
			}
			checked++
			return n < 25
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if checked < 100 {
		t.Errorf("only %d clean variants differentially checked", checked)
	}
	t.Logf("differentially checked %d enumerated variants", checked)
}
