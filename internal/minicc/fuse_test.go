package minicc

import (
	"sort"
	"testing"
)

// Shape tests for superinstruction fusion: each pattern must actually fire
// on the canonical source shape that motivates it, fusion must be strictly
// in place (instruction counts and indices never move), and unfusion must
// be a lossless inverse. The observational side (fused vs unfused verdict
// identity) lives in exec_equivalence_test.go.

func lowerProg(t *testing.T, src string) *Program {
	t.Helper()
	irp, err := Lower(analyzeT(t, src), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return irp
}

func sortedFuncNames(p *Program) []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// progOps snapshots every function's opcode stream, keyed by function name
// (block order and instruction indices are stable across fuse/unfuse).
func progOps(p *Program) map[string][]Op {
	snap := make(map[string][]Op, len(p.Funcs))
	for name, f := range p.Funcs {
		var ops []Op
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ops = append(ops, b.Instrs[i].Op)
			}
		}
		snap[name] = ops
	}
	return snap
}

func sameOps(a, b map[string][]Op) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ops := range a {
		other, ok := b[name]
		if !ok || len(ops) != len(other) {
			return false
		}
		for i := range ops {
			if ops[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func countProgOp(p *Program, op Op) int {
	n := 0
	for _, f := range p.Funcs {
		n += countOp(f, op)
	}
	return n
}

// TestFuseShapes pins that each fusion pattern fires on its motivating
// source shape. The const-store pair only becomes adjacent after the -O2
// pipeline folds the assignment's conversion, matching where the executor
// actually fuses (lazily, after the passes).
func TestFuseShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opt  int
		op   Op
	}{
		{"const-bin", `int main() { int a = 7; return a + 1; }`, 0, OpConstBin},
		{"load-bin", `int g = 3; int main() { int a = 2; return g + a; }`, 0, OpLoadBin},
		{"const-store", `int g; int main() { g = 5; return g; }`, 2, OpConstStore},
		{"cmp-br", `int main() { int a = 1, b = 2; if (a < b) return a; return b; }`, 0, OpCmpBr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var irp *Program
			if tc.opt == 0 {
				irp = lowerProg(t, tc.src)
			} else {
				c := &Compiler{Version: "trunk", Opt: tc.opt}
				out := c.Compile(analyzeT(t, tc.src))
				if !out.Ok() {
					t.Fatalf("compile failed: %+v", out)
				}
				irp = out.Program
			}
			if got := countProgOp(irp, tc.op); got != 0 {
				t.Fatalf("op %v present before fusion (%d)", tc.op, got)
			}
			fuseProgram(irp)
			if got := countProgOp(irp, tc.op); got == 0 {
				t.Errorf("fusion produced no op %v:\n%s", tc.op, irp.Funcs["main"])
			}
		})
	}
}

// fuseRoundTripSrc exercises every pattern at once, plus call/loop control
// flow around them.
const fuseRoundTripSrc = `
int g = 2, h = 7;
int add(int x, int y) { return x + y; }
int main() {
    int a = 1, b = 0;
    g = 5;
    b = g + a;
    h = h + 1;
    while (a < b) {
        a = a + 2;
        b = add(b, g);
        if (b > 40) break;
    }
    printf("%d %d %d\n", a, b, g + h);
    return a;
}
`

// TestFuseInPlace pins the load-bearing structural property: fusion
// rewrites Op fields only, so per-function instruction counts (and hence
// every recorded instruction index — patch sites, trace offsets, seeded
// crash callsites) survive unchanged.
func TestFuseInPlace(t *testing.T) {
	irp := lowerProg(t, fuseRoundTripSrc)
	before := progOps(irp)
	fuseProgram(irp)
	if !irp.fused {
		t.Fatal("fuseProgram did not mark the program fused")
	}
	after := progOps(irp)
	for _, name := range sortedFuncNames(irp) {
		if len(after[name]) != len(before[name]) {
			t.Errorf("%s: %d instructions after fusion, %d before",
				name, len(after[name]), len(before[name]))
		}
	}
	fusedOps := 0
	for _, op := range []Op{OpConstBin, OpLoadBin, OpCmpBr} {
		if n := countProgOp(irp, op); n == 0 {
			t.Errorf("round-trip source produced no op %v", op)
		} else {
			fusedOps += n
		}
	}
	if fusedOps == 0 {
		t.Fatal("no fused opcodes at all")
	}
}

// TestFuseUnfuseRoundTrip pins losslessness and idempotence: unfusing
// restores the exact original opcode stream, re-fusing reproduces the
// exact fused stream, and fusing an already-fused program is a no-op.
func TestFuseUnfuseRoundTrip(t *testing.T) {
	irp := lowerProg(t, fuseRoundTripSrc)
	plain := progOps(irp)

	fuseProgram(irp)
	fused := progOps(irp)
	if sameOps(plain, fused) {
		t.Fatal("fusion changed nothing; shape tests are vacuous")
	}

	fuseProgram(irp) // already fused: must be a no-op
	if !sameOps(progOps(irp), fused) {
		t.Error("fusing a fused program changed the stream")
	}

	unfuseProgram(irp)
	if irp.fused {
		t.Error("unfuseProgram left the fused mark set")
	}
	if !sameOps(progOps(irp), plain) {
		t.Error("unfusion did not restore the original opcode stream")
	}
	unfuseProgram(irp) // already plain: must be a no-op
	if !sameOps(progOps(irp), plain) {
		t.Error("unfusing a plain program changed the stream")
	}

	fuseProgram(irp)
	if !sameOps(progOps(irp), fused) {
		t.Error("re-fusion did not reproduce the fused stream")
	}
}

// TestFuseOpTable pins the pair table and its inverse.
func TestFuseOpTable(t *testing.T) {
	pairs := []struct {
		a, b, fused Op
	}{
		{OpConst, OpBin, OpConstBin},
		{OpLoad, OpBin, OpLoadBin},
		{OpConst, OpStore, OpConstStore},
	}
	for _, p := range pairs {
		if got := fuseOp(p.a, p.b); got != p.fused {
			t.Errorf("fuseOp(%v, %v) = %v, want %v", p.a, p.b, got, p.fused)
		}
		if got := unfuseOp(p.fused); got != p.a {
			t.Errorf("unfuseOp(%v) = %v, want %v", p.fused, got, p.a)
		}
	}
	if got := fuseOp(OpBin, OpConst); got != OpArg {
		t.Errorf("fuseOp on a non-pair = %v, want OpArg sentinel", got)
	}
	if got := unfuseOp(OpCmpBr); got != OpBin {
		t.Errorf("unfuseOp(OpCmpBr) = %v, want OpBin", got)
	}
	if got := unfuseOp(OpBin); got != OpBin {
		t.Errorf("unfuseOp(OpBin) = %v, want OpBin", got)
	}
}
