// Package minicc is an optimizing compiler for the cc C subset: a lowering
// pass to a three-address CFG IR, a pipeline of classic optimizations
// (constant folding and propagation, copy propagation, local CSE, dead code
// elimination, CFG simplification, store-to-load forwarding with a simple
// alias analysis, and loop-invariant code motion over dominator-identified
// natural loops), and a direct IR executor standing in for the emitted
// binary.
//
// minicc is the "compiler under test" of the reproduction: a registry of
// seeded bugs — modeled on the paper's reported GCC/Clang bug taxonomy
// (crash, wrong-code, and compile-time-performance bugs across frontend,
// middle-end, and backend components, §5.3) — can be activated per compiler
// "version", and the differential-testing harness hunts for them exactly
// the way the paper hunts real compiler bugs.
//
// Concurrency and ownership: Compiler values, Compile/Run, and Execute are
// safe for concurrent use on distinct inputs (they share only immutable
// state: the bug registry and site registry). The reuse layer is not: a
// Cache — IR templates keyed on the template program plus pooled VM state
// — is strictly single-goroutine, and the outcome of RunCached (including
// its Compile.Program) aliases cache-owned scratch that the next RunCached
// on the same cache recycles. Campaign workers hold one Cache each. A
// lowered Program references the source AST (Func.Decl, Globals, Statics
// initializers); executing it reads that AST live, so the variant's holes
// must stay patched to the intended filling until execution finishes.
package minicc

import (
	"fmt"
	"strings"

	"spe/internal/cc"
)

// Reg is a virtual register. Negative registers are invalid; register 0 is
// reserved as "none".
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = 0

// Op enumerates IR instruction opcodes.
type Op int

// IR opcodes.
const (
	OpConst   Op = iota // Dst = Const (Val)
	OpBin               // Dst = A <BinOp> B
	OpUn                // Dst = <UnOp> A
	OpConv              // Dst = (Type) A
	OpCopy              // Dst = A
	OpAddrVar           // Dst = &Sym
	OpLoad              // Dst = *A
	OpStore             // *A = B
	OpCall              // Dst = Call(Name, Args...)
	OpArg               // argument marker (unused; args are on OpCall)
	OpAddrIdx           // Dst = A + B * Scale (pointer indexing)

	// Superinstructions: adjacent-pair fusions applied to executable IR
	// just before it runs (fuse.go). Fusion rewrites only the first
	// instruction's Op — the second instruction stays in the stream
	// unchanged — so instruction indices (hole patch sites, trace
	// offsets) never move, and every operand field is read live at
	// execution time, which keeps hole patching composable with fusion.
	OpConstBin   // OpConst immediately followed by OpBin
	OpLoadBin    // OpLoad immediately followed by OpBin
	OpConstStore // OpConst immediately followed by OpStore
	OpCmpBr      // trailing OpBin comparison feeding this block's TermBr
)

// numOps sizes the threaded engine's opcode handler table.
const numOps = int(OpCmpBr) + 1

// Instr is one three-address instruction.
type Instr struct {
	Op    Op
	Dst   Reg
	A, B  Reg
	BinOp string // for OpBin
	UnOp  string // for OpUn
	// Val is the constant payload of OpConst.
	Val Const
	// Sym is the variable of OpAddrVar.
	Sym *cc.Symbol
	// Type governs arithmetic width/signedness and conversions.
	Type cc.Type
	// Name and Args are the callee and arguments of OpCall.
	Name string
	Args []Reg
	// Scale is the element-cell stride of OpAddrIdx.
	Scale int
	// Pos is the originating source position.
	Pos cc.Pos
}

// Const is a compile-time constant.
type Const struct {
	IsFloat bool
	I       int64
	F       float64
	// IsStr marks string-literal constants (Str holds the bytes).
	IsStr bool
	Str   string
}

// TermKind enumerates block terminators.
type TermKind int

// Terminator kinds.
const (
	TermJmp TermKind = iota
	TermBr
	TermRet
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	// Cond is the branch condition register (TermBr).
	Cond Reg
	// To is the jump target (TermJmp) or true target (TermBr).
	To *Block
	// Else is the false target (TermBr).
	Else *Block
	// Val is the returned register (TermRet; NoReg for void returns).
	Val Reg
	// HasVal distinguishes "return x" from "return".
	HasVal bool
	Pos    cc.Pos
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
	// Label is a diagnostic name ("entry", "while.cond", ...).
	Label string
}

// Func is a compiled function.
type Func struct {
	Name   string
	Decl   *cc.FuncDecl
	Blocks []*Block
	Entry  *Block
	// NumRegs is one past the highest allocated register.
	NumRegs int
	// VarRegs maps register-promoted scalar locals to their registers.
	VarRegs map[*cc.Symbol]Reg
	// MemVars lists variables that live in memory (address taken, or
	// aggregate, or global).
	MemVars map[*cc.Symbol]bool
	// memList caches memVars' declaration-ordered result: frame objects
	// must allocate in an order independent of map iteration, because
	// object IDs are observable through pointer-to-integer conversion.
	memList   []*cc.Symbol
	memListed bool
}

// Program is a compiled translation unit.
type Program struct {
	Funcs   map[string]*Func
	Globals []*cc.VarDecl
	// Statics lists static locals: allocated once, initialized at program
	// start (their initializers are constant expressions), persistent
	// across calls.
	Statics []*cc.VarDecl
	Source  *cc.Program
	// fused records that superinstruction fusion has been applied; the
	// executor fuses unfused programs lazily, and the optimization passes
	// require fused programs to be unfused first (they predate fusion).
	fused bool
}

// NewReg allocates a fresh register.
func (f *Func) NewReg() Reg {
	f.NumRegs++
	return Reg(f.NumRegs)
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{ID: len(f.Blocks), Label: label}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Succs returns a block's successor blocks.
func (b *Block) Succs() []*Block {
	switch b.Term.Kind {
	case TermJmp:
		return []*Block{b.Term.To}
	case TermBr:
		return []*Block{b.Term.To, b.Term.Else}
	default:
		return nil
	}
}

// String renders the function IR for diagnostics and golden tests.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d regs):\n", f.Name, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d: ; %s\n", b.ID, b.Label)
		for _, in := range b.Instrs {
			sb.WriteString("  " + in.String() + "\n")
		}
		sb.WriteString("  " + b.Term.String() + "\n")
	}
	return sb.String()
}

func (in Instr) String() string {
	// fused superinstructions render as their base form: fusion is an
	// execution-time encoding, invisible to diagnostics, goldens, and the
	// -paranoid fresh-lowering comparison
	switch in.Op {
	case OpConst, OpConstBin, OpConstStore:
		if in.Val.IsStr {
			return fmt.Sprintf("r%d = const %q", in.Dst, in.Val.Str)
		}
		if in.Val.IsFloat {
			return fmt.Sprintf("r%d = const %g", in.Dst, in.Val.F)
		}
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Val.I)
	case OpBin, OpCmpBr:
		return fmt.Sprintf("r%d = r%d %s r%d [%s]", in.Dst, in.A, in.BinOp, in.B, typeName(in.Type))
	case OpUn:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.UnOp, in.A)
	case OpConv:
		return fmt.Sprintf("r%d = conv r%d to %s", in.Dst, in.A, typeName(in.Type))
	case OpCopy:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case OpAddrVar:
		return fmt.Sprintf("r%d = &%s", in.Dst, in.Sym.Name)
	case OpLoad, OpLoadBin:
		return fmt.Sprintf("r%d = load r%d [%s]", in.Dst, in.A, typeName(in.Type))
	case OpStore:
		return fmt.Sprintf("store r%d <- r%d", in.A, in.B)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		if in.Dst != NoReg {
			return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Name, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call %s(%s)", in.Name, strings.Join(args, ", "))
	case OpAddrIdx:
		return fmt.Sprintf("r%d = r%d + r%d * %d", in.Dst, in.A, in.B, in.Scale)
	default:
		return fmt.Sprintf("op%d", in.Op)
	}
}

func (t Term) String() string {
	switch t.Kind {
	case TermJmp:
		return fmt.Sprintf("jmp b%d", t.To.ID)
	case TermBr:
		return fmt.Sprintf("br r%d ? b%d : b%d", t.Cond, t.To.ID, t.Else.ID)
	default:
		if t.HasVal {
			return fmt.Sprintf("ret r%d", t.Val)
		}
		return "ret"
	}
}

func typeName(t cc.Type) string {
	if t == nil {
		return "?"
	}
	return t.String()
}

// pure reports whether an instruction has no side effects and its result
// can be recomputed (eligible for CSE, DCE, and LICM).
func (in Instr) pure() bool {
	switch in.Op {
	case OpConst, OpBin, OpUn, OpConv, OpCopy, OpAddrVar, OpAddrIdx:
		return true
	default:
		return false
	}
}

// uses returns the registers read by the instruction.
func (in Instr) uses() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r != NoReg {
			out = append(out, r)
		}
	}
	switch in.Op {
	case OpBin, OpAddrIdx:
		add(in.A)
		add(in.B)
	case OpUn, OpConv, OpCopy, OpLoad:
		add(in.A)
	case OpStore:
		add(in.A)
		add(in.B)
	case OpCall:
		out = append(out, in.Args...)
	}
	return out
}
