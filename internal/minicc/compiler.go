package minicc

import (
	"fmt"
	"sort"

	"spe/internal/cc"
)

// Compiler configures one compilation: a simulated release version, an
// optimization level, and whether the seeded bugs of that version are
// active (Seeded=false yields the correct reference compiler used as the
// differential baseline).
type Compiler struct {
	// Version names a simulated release from Versions; defaults to trunk.
	Version string
	// Opt is the optimization level 0..3.
	Opt int
	// Seeded activates the version's seeded bugs.
	Seeded bool
	// Bugs, when non-nil, overrides the computed bug set (used by the
	// harness to attribute wrong-code findings by selective deactivation).
	Bugs *BugSet
	// Coverage, when non-nil, records pass instrumentation hits.
	Coverage *Coverage
	// WorkBudget bounds compile-time work units (performance-bug
	// detection); defaults to 1,000,000.
	WorkBudget int64
}

// Output is the result of a compilation attempt.
type Output struct {
	Program *Program
	// Crash is non-nil when the compiler crashed (internal error).
	Crash *CrashError
	// Timeout is non-nil when compilation exceeded its work budget.
	Timeout *TimeoutError
	// Err reports unsupported inputs.
	Err error
}

// Ok reports a successful compilation.
func (o *Output) Ok() bool {
	return o.Program != nil && o.Crash == nil && o.Timeout == nil && o.Err == nil
}

// bugSet resolves the active bug set.
func (c *Compiler) bugSet() *BugSet {
	if c.Bugs != nil {
		return c.Bugs
	}
	if !c.Seeded {
		return EmptyBugSet()
	}
	v := VersionIndex(c.Version)
	if v < 0 {
		v = len(Versions) - 1
	}
	return BugsFor(v, c.Opt)
}

// Compile lowers and optimizes a program at the configured level.
func (c *Compiler) Compile(src *cc.Program) (out *Output) {
	out = &Output{}
	bugs := c.bugSet()
	cov := c.Coverage
	budget := c.WorkBudget
	if budget == 0 {
		budget = 1_000_000
	}
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *CrashError:
				out.Crash = e
				out.Program = nil
			case *TimeoutError:
				out.Timeout = e
				out.Program = nil
			default:
				panic(r)
			}
		}
	}()
	irp, err := Lower(src, bugs, cov)
	if err != nil {
		if ce, ok := err.(*CrashError); ok {
			out.Crash = ce
			return out
		}
		out.Err = err
		return out
	}
	out.Program = irp
	c.runPasses(irp, bugs, cov, budget)
	return out
}

// runPasses drives the optimization pipeline over a lowered program — the
// post-frontend half of Compile, shared with the template-cached RunCached
// path so both flavors optimize (and trigger seeded middle-end/backend
// bugs) identically. It can panic with *CrashError or *TimeoutError; the
// callers' recover turns those into Output fields.
func (c *Compiler) runPasses(irp *Program, bugs *BugSet, cov *Coverage, budget int64) {
	p := &passCtx{cov: cov, bugs: bugs, budget: budget}
	// Deterministic function order: a seeded crash or budget timeout aborts
	// the pipeline mid-iteration, so the set of functions optimized before
	// the abort (and their coverage hits) must not depend on map order.
	names := make([]string, 0, len(irp.Funcs))
	for name := range irp.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := irp.Funcs[name]
		c.optimizeFunc(f, p)
		if c.Opt >= 1 {
			bugs.MaybeCrash(cov, "backend-block-limit", func() bool {
				return len(f.Blocks) > 24
			})
		}
	}
}

func (c *Compiler) optimizeFunc(f *Func, p *passCtx) {
	switch {
	case c.Opt <= 0:
		// -O0: no optimization
	case c.Opt == 1:
		constFold(f, p)
		copyProp(f, p)
		dce(f, p)
		simplifyCFG(f, p)
	case c.Opt == 2:
		constFold(f, p)
		copyProp(f, p)
		constProp(f, p)
		cse(f, p)
		aliasForward(f, p)
		constFold(f, p)
		copyProp(f, p)
		dce(f, p)
		simplifyCFG(f, p)
	default: // -O3
		constFold(f, p)
		copyProp(f, p)
		constProp(f, p)
		cse(f, p)
		aliasForward(f, p)
		licm(f, p)
		constFold(f, p)
		copyProp(f, p)
		constProp(f, p)
		dce(f, p)
		simplifyCFG(f, p)
		dce(f, p)
	}
}

// Run compiles and executes a program, combining compile- and run-time
// outcomes for the differential harness.
type RunOutcome struct {
	Compile *Output
	Exec    *ExecResult
}

// Run compiles src and, on success, executes it.
func (c *Compiler) Run(src *cc.Program, cfg ExecConfig) *RunOutcome {
	out := c.Compile(src)
	ro := &RunOutcome{Compile: out}
	if !out.Ok() {
		return ro
	}
	ro.Exec = Execute(out.Program, c.bugSet(), c.Coverage, cfg)
	return ro
}

// OptLevels lists the optimization levels exercised by the harness,
// matching the paper's -O0 and -O3 plus the intermediate levels of
// Figure 10(b).
var OptLevels = []int{0, 1, 2, 3}

// String describes the compiler configuration.
func (c *Compiler) String() string {
	v := c.Version
	if v == "" {
		v = Versions[len(Versions)-1]
	}
	return fmt.Sprintf("minicc-%s -O%d", v, c.Opt)
}
