package minicc

import (
	"fmt"
	"sort"
)

// BugKind classifies seeded bugs with the paper's Table 4 taxonomy.
type BugKind int

// Bug kinds.
const (
	BugCrash BugKind = iota
	BugWrongCode
	BugPerformance
)

func (k BugKind) String() string {
	switch k {
	case BugCrash:
		return "crash"
	case BugWrongCode:
		return "wrong code"
	default:
		return "performance"
	}
}

// Versions lists the compiler releases of the simulated history, oldest
// first. The last entry is the development trunk.
var Versions = []string{"4.8", "5.3", "6.0", "trunk"}

// VersionIndex returns the index of a version name, or -1.
func VersionIndex(name string) int {
	for i, v := range Versions {
		if v == name {
			return i
		}
	}
	return -1
}

// Bug is one seeded compiler defect with the metadata reported in the
// paper's Figure 10: priority, component, affected versions, and the
// minimum optimization level at which it manifests.
type Bug struct {
	// ID is the simulated bugzilla number.
	ID string
	// Hook is the code location key consulted by the passes.
	Hook string
	Kind BugKind
	// Component uses the paper's Figure 10(d) vocabulary.
	Component string
	// Priority 1 (release-blocking) .. 5.
	Priority int
	// IntroducedIn / FixedIn index Versions; FixedIn == -1 means unfixed
	// (still present in trunk).
	IntroducedIn int
	FixedIn      int
	// MinOpt is the lowest -O level at which the bug can trigger.
	MinOpt int
	// Signature is the diagnostic printed on a crash (Table 3).
	Signature string
}

// registry is the full seeded-bug population. The IDs and signatures are
// modeled on the bug classes reported in the paper (§2, §5.3, Appendix A);
// the triggers live in the lowering and optimization passes.
var registry = []Bug{
	{ID: "69801", Hook: "fold-ternary-equal-operands", Kind: BugCrash, Component: "C",
		Priority: 1, IntroducedIn: 0, FixedIn: -1, MinOpt: 0,
		Signature: "internal compiler error: in operand_equal_p, at fold-const.c:2904"},
	{ID: "69740", Hook: "frontend-goto-irreducible", Kind: BugCrash, Component: "Middle-end",
		Priority: 2, IntroducedIn: 1, FixedIn: -1, MinOpt: 2,
		Signature: "internal compiler error: in verify_loop_structure, at cfgloop.c:1644"},
	{ID: "70202", Hook: "frontend-nested-struct-member", Kind: BugCrash, Component: "C",
		Priority: 3, IntroducedIn: 0, FixedIn: -1, MinOpt: 0,
		Signature: "internal compiler error: in build_base_path, at cp/class.c:304"},
	{ID: "28045", Hook: "frontend-deep-ternary", Kind: BugCrash, Component: "C",
		Priority: 3, IntroducedIn: 2, FixedIn: -1, MinOpt: 0,
		Signature: "Assertion `Num < NumOperands && \"Invalid child # of SDNode!\"' failed"},
	{ID: "67619", Hook: "constfold-div-overflow", Kind: BugCrash, Component: "Middle-end",
		Priority: 2, IntroducedIn: 0, FixedIn: 2, MinOpt: 1,
		Signature: "internal compiler error: in fold_binary_loc, at fold-const.c:9921"},
	{ID: "70138", Hook: "constfold-sub-self", Kind: BugWrongCode, Component: "Tree-optimization",
		Priority: 2, IntroducedIn: 1, FixedIn: -1, MinOpt: 2,
		Signature: ""},
	{ID: "69951", Hook: "alias-store-forward", Kind: BugWrongCode, Component: "RTL-optimization",
		Priority: 2, IntroducedIn: 0, FixedIn: -1, MinOpt: 2,
		Signature: ""},
	{ID: "26973", Hook: "licm-hoist-conditional", Kind: BugWrongCode, Component: "Tree-optimization",
		Priority: 2, IntroducedIn: 2, FixedIn: -1, MinOpt: 3,
		Signature: ""},
	{ID: "26994", Hook: "dce-dead-store-call", Kind: BugWrongCode, Component: "Tree-optimization",
		Priority: 2, IntroducedIn: 1, FixedIn: -1, MinOpt: 1,
		Signature: ""},
	{ID: "71405", Hook: "cse-commutes-sub", Kind: BugWrongCode, Component: "Tree-optimization",
		Priority: 3, IntroducedIn: 2, FixedIn: -1, MinOpt: 2,
		Signature: ""},
	{ID: "69737", Hook: "cse-crash-deep-expr", Kind: BugCrash, Component: "Tree-optimization",
		Priority: 3, IntroducedIn: 0, FixedIn: 1, MinOpt: 2,
		Signature: "internal compiler error: in vn_reference_lookup, at tree-ssa-sccvn.c:2086"},
	{ID: "69941", Hook: "constprop-branch-label", Kind: BugCrash, Component: "Tree-optimization",
		Priority: 3, IntroducedIn: 1, FixedIn: -1, MinOpt: 2,
		Signature: "internal compiler error: in assign_by_spills, at lra-assigns.c:1281"},
	{ID: "70586", Hook: "simplifycfg-merge-label", Kind: BugCrash, Component: "RTL-optimization",
		Priority: 1, IntroducedIn: 2, FixedIn: -1, MinOpt: 1,
		Signature: "error in backend: Do not know how to split the result of this operator!"},
	{ID: "70199", Hook: "licm-crash-nested-loop", Kind: BugCrash, Component: "Middle-end",
		Priority: 2, IntroducedIn: 0, FixedIn: -1, MinOpt: 3,
		Signature: "internal compiler error: in verify_dominators, at dominance.c:1039"},
	{ID: "70251", Hook: "backend-block-limit", Kind: BugCrash, Component: "Target",
		Priority: 4, IntroducedIn: 0, FixedIn: -1, MinOpt: 1,
		Signature: "error in backend: Access past stack top!"},
	{ID: "69619", Hook: "perf-exponential-fold", Kind: BugPerformance, Component: "Middle-end",
		Priority: 4, IntroducedIn: 0, FixedIn: -1, MinOpt: 1,
		Signature: ""},
	{ID: "70589", Hook: "constprop-negzero", Kind: BugWrongCode, Component: "Tree-optimization",
		Priority: 3, IntroducedIn: 0, FixedIn: 1, MinOpt: 2,
		Signature: ""},
	{ID: "69933", Hook: "copyprop-through-branch", Kind: BugWrongCode, Component: "RTL-optimization",
		Priority: 3, IntroducedIn: 0, FixedIn: 2, MinOpt: 1,
		Signature: ""},
	{ID: "70222", Hook: "vm-uchar-wrap", Kind: BugWrongCode, Component: "Target",
		Priority: 2, IntroducedIn: 0, FixedIn: -1, MinOpt: 0,
		Signature: ""},
	{ID: "69764", Hook: "frontend-char-shift", Kind: BugCrash, Component: "C",
		Priority: 3, IntroducedIn: 0, FixedIn: 1, MinOpt: 0,
		Signature: "internal compiler error: in tree_to_uhwi, at tree.h:3837"},
}

// Registry returns all seeded bugs.
func Registry() []Bug { return append([]Bug(nil), registry...) }

// BugByID looks up one bug.
func BugByID(id string) (Bug, bool) {
	for _, b := range registry {
		if b.ID == id {
			return b, true
		}
	}
	return Bug{}, false
}

// BugSet is the set of bugs active for one (version, optimization level)
// compilation.
type BugSet struct {
	active map[string]*Bug
}

// EmptyBugSet returns a set with no active bugs (a correct compiler).
func EmptyBugSet() *BugSet { return &BugSet{active: map[string]*Bug{}} }

// BugsFor computes the active bug set for a version index and -O level:
// bugs introduced at or before the version, not yet fixed, whose MinOpt is
// satisfied.
func BugsFor(version, opt int) *BugSet {
	s := &BugSet{active: make(map[string]*Bug)}
	for i := range registry {
		b := &registry[i]
		if b.IntroducedIn > version {
			continue
		}
		if b.FixedIn >= 0 && b.FixedIn <= version {
			continue
		}
		if opt < b.MinOpt {
			continue
		}
		s.active[b.Hook] = b
	}
	return s
}

// Without returns a copy of the set with one hook deactivated.
func (s *BugSet) Without(hook string) *BugSet {
	out := &BugSet{active: make(map[string]*Bug, len(s.active))}
	for k, v := range s.active {
		if k != hook {
			out.active[k] = v
		}
	}
	return out
}

// Hooks returns the active hooks, sorted, for iteration by the harness.
// The order is part of the campaign's determinism surface: wrong-code
// attribution deactivates hooks one at a time and keeps the first that
// explains the symptom, so when two seeded bugs both explain it the winner
// must not depend on map iteration order.
func (s *BugSet) Hooks() []string {
	out := make([]string, 0, len(s.active))
	for k := range s.active {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Active reports whether the named hook has an active bug.
func (s *BugSet) Active(hook string) bool {
	if s == nil {
		return false
	}
	_, ok := s.active[hook]
	return ok
}

// Lookup returns the active bug at a hook.
func (s *BugSet) Lookup(hook string) (*Bug, bool) {
	if s == nil {
		return nil, false
	}
	b, ok := s.active[hook]
	return b, ok
}

// MaybeCrash panics with the hook's crash signature when the bug is active
// and the trigger predicate holds.
func (s *BugSet) MaybeCrash(cov *Coverage, hook string, trigger func() bool) {
	b, ok := s.Lookup(hook)
	if !ok {
		return
	}
	if b.Kind != BugCrash {
		return
	}
	if trigger() {
		panic(&CrashError{Signature: b.Signature, Component: b.Component, BugID: b.ID})
	}
}

// CheckRegistry validates registry invariants (unique IDs and hooks, sane
// version ranges); used by tests.
func CheckRegistry() error {
	ids := make(map[string]bool)
	hooks := make(map[string]bool)
	for _, b := range registry {
		if ids[b.ID] {
			return fmt.Errorf("duplicate bug id %s", b.ID)
		}
		ids[b.ID] = true
		if hooks[b.Hook] {
			return fmt.Errorf("duplicate bug hook %s", b.Hook)
		}
		hooks[b.Hook] = true
		if b.IntroducedIn < 0 || b.IntroducedIn >= len(Versions) {
			return fmt.Errorf("bug %s: bad IntroducedIn %d", b.ID, b.IntroducedIn)
		}
		if b.FixedIn >= 0 && b.FixedIn <= b.IntroducedIn {
			return fmt.Errorf("bug %s: fixed before introduced", b.ID)
		}
		if b.Priority < 1 || b.Priority > 5 {
			return fmt.Errorf("bug %s: bad priority %d", b.ID, b.Priority)
		}
		if b.Kind == BugCrash && b.Signature == "" {
			return fmt.Errorf("crash bug %s lacks a signature", b.ID)
		}
	}
	return nil
}
