package minicc_test

import (
	"fmt"
	"math/big"
	"testing"

	"spe/internal/cc"
	"spe/internal/minicc"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// runBoth compiles and executes one variant through the plain pipeline and
// the template-cached one (with the paranoid fresh-lowering cross-check
// enabled) and requires identical outcomes, including coverage.
func runBoth(t *testing.T, c *minicc.Compiler, ca *minicc.Cache, prog *cc.Program, holes []*cc.Ident, label string) {
	t.Helper()
	plainCov := minicc.NewCoverage()
	cachedCov := minicc.NewCoverage()

	plain := &minicc.Compiler{Version: c.Version, Opt: c.Opt, Seeded: c.Seeded, Coverage: plainCov}
	want := plain.Run(prog, minicc.ExecConfig{MaxSteps: 60_000})

	cached := &minicc.Compiler{Version: c.Version, Opt: c.Opt, Seeded: c.Seeded, Coverage: cachedCov}
	got, err := cached.RunCached(ca, prog, holes, minicc.ExecConfig{MaxSteps: 60_000}, true)
	if err != nil {
		t.Fatalf("%s: paranoid cross-check failed: %v", label, err)
	}

	if err := sameOutcome(got, want); err != nil {
		t.Fatalf("%s: cached outcome diverges: %v", label, err)
	}
	for _, site := range minicc.Sites() {
		if g, w := cachedCov.SiteCount(site), plainCov.SiteCount(site); g != w {
			t.Fatalf("%s: coverage site %s: cached %d hits, plain %d", label, site, g, w)
		}
	}
}

func sameOutcome(got, want *minicc.RunOutcome) error {
	g, w := got.Compile, want.Compile
	if (g.Crash == nil) != (w.Crash == nil) {
		return fmt.Errorf("crash %v, want %v", g.Crash, w.Crash)
	}
	if g.Crash != nil && (g.Crash.Signature != w.Crash.Signature || g.Crash.BugID != w.Crash.BugID) {
		return fmt.Errorf("crash %v, want %v", g.Crash, w.Crash)
	}
	if (g.Timeout == nil) != (w.Timeout == nil) {
		return fmt.Errorf("timeout %v, want %v", g.Timeout, w.Timeout)
	}
	if (g.Err == nil) != (w.Err == nil) {
		return fmt.Errorf("err %v, want %v", g.Err, w.Err)
	}
	if (got.Exec == nil) != (want.Exec == nil) {
		return fmt.Errorf("exec %v, want %v", got.Exec, want.Exec)
	}
	if got.Exec != nil {
		ge, we := got.Exec, want.Exec
		if ge.Exit != we.Exit || ge.Output != we.Output || ge.Trap != we.Trap ||
			ge.Timeout != we.Timeout || ge.Aborted != we.Aborted || ge.Steps != we.Steps {
			return fmt.Errorf("exec %+v, want %+v", ge, we)
		}
	}
	return nil
}

// sweepSkeleton runs every filling of a skeleton through every compiler
// configuration, cached vs plain.
func sweepSkeleton(t *testing.T, src string, maxFills int64) {
	t.Helper()
	sk := skeleton.MustBuild(src)
	space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	in := sk.NewInstance()
	ca := minicc.NewCache()
	total := space.Total()
	idx := new(big.Int)
	for j := int64(0); j < maxFills; j++ {
		idx.SetInt64(j)
		if idx.Cmp(total) >= 0 {
			break
		}
		fill, err := space.FillAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Instantiate(fill); err != nil {
			t.Fatal(err)
		}
		for _, ver := range []string{"4.8", "trunk"} {
			for _, opt := range minicc.OptLevels {
				c := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true}
				runBoth(t, c, ca, in.Program(), in.HoleIdents(),
					fmt.Sprintf("fill %d %s -O%d", j, ver, opt))
			}
		}
	}
}

// TestTemplateEquivalenceBasic sweeps a register-heavy skeleton: every hole
// is a promoted scalar, so the cached path exercises pure operand patching.
func TestTemplateEquivalenceBasic(t *testing.T) {
	sweepSkeleton(t, `
int main() {
    int a = 3, b = 5, c = 0;
    c = a + b * 2;
    if (c > a) c = c - b;
    for (a = 0; a < 4; a++) c += a;
    printf("%d\n", c);
    return c;
}
`, 200)
}

// TestTemplateEquivalenceCrashConditions sweeps a skeleton whose fillings
// flip the equal-operand ternary trigger (bug 69801 fires exactly when both
// arms rebind to the same variable): the replayed crash closures must track
// the live AST, per fill and per version.
func TestTemplateEquivalenceCrashConditions(t *testing.T) {
	sweepSkeleton(t, `
int main() {
    int a = 1, b = 2;
    int r = a ? a : b;
    return r + b;
}
`, 200)
}

// TestTemplateEquivalenceMemoryHoles sweeps a skeleton whose holes rebind
// across globals and statics (memory-resident on every path), exercising
// the OpAddrVar symbol patching.
func TestTemplateEquivalenceMemoryHoles(t *testing.T) {
	sweepSkeleton(t, `
int g = 2, h = 7;
int main() {
    g = g + h;
    h = g - h;
    printf("%d %d\n", g, h);
    return g;
}
`, 200)
}

// TestTemplateEquivalenceAddrTakenFallback sweeps a skeleton with holes
// under '&' (volatile: refilling moves the address-taken set): those
// variants must fall back to fresh lowering and still agree everywhere.
func TestTemplateEquivalenceAddrTakenFallback(t *testing.T) {
	sweepSkeleton(t, `
int main() {
    int a = 1, b = 2, c = 3;
    int *p = &a;
    *p = b + c;
    c = a + *p;
    return c;
}
`, 200)
}

// TestTemplateEquivalenceMixedShapes sweeps a skeleton where hole groups
// mix register-promoted locals with an address-taken (memory) local of the
// same type, forcing shape-mismatch fallbacks on some fillings.
func TestTemplateEquivalenceMixedShapes(t *testing.T) {
	sweepSkeleton(t, `
int main() {
    int a = 1, b = 2, m = 3;
    int *p = &m;
    b = a + m;
    a = b * m;
    return a + b + *p;
}
`, 300)
}

// TestTemplateEquivalenceGotoLoops covers the sticky goto-irreducibility
// trigger plus label-heavy control flow.
func TestTemplateEquivalenceGotoLoops(t *testing.T) {
	sweepSkeleton(t, `
int main() {
    int i = 0, n = 5;
  top:
    while (i < n) {
        i++;
        if (i == 3) goto top;
    }
    return i;
}
`, 100)
}

// TestCacheScratchOwnership pins the documented outcome lifetime: two
// RunCached calls on one cache reuse the scratch clone, so outcomes must be
// consumed before the next call (the test just asserts results stay correct
// across many interleaved calls on the same cache).
func TestCacheScratchOwnership(t *testing.T) {
	sk := skeleton.MustBuild(`
int main() {
    int a = 2, b = 3;
    return a * b + a;
}
`)
	in := sk.NewInstance()
	ca := minicc.NewCache()
	for round := 0; round < 5; round++ {
		for _, opt := range minicc.OptLevels {
			c := &minicc.Compiler{Version: "trunk", Opt: opt, Seeded: true}
			ro, err := c.RunCached(ca, in.Program(), in.HoleIdents(), minicc.ExecConfig{}, true)
			if err != nil {
				t.Fatal(err)
			}
			if !ro.Compile.Ok() || ro.Exec.Exit != 8 {
				t.Fatalf("round %d -O%d: %+v", round, opt, ro)
			}
		}
	}
}
