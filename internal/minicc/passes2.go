package minicc

// Dead code elimination, dead store elimination, CFG simplification,
// store-to-load forwarding with alias analysis, and loop-invariant code
// motion.

// dce removes pure instructions whose results are never used and performs
// in-block dead store elimination on direct variable stores. The seeded bug
// "dce-dead-store-call" ignores calls as barriers for dead-store
// elimination (a callee may observe a global through its own access).
func dce(f *Func, p *passCtx) {
	p.cov.Hit("dce.entry")
	deadStoreBug := p.bugs.Active("dce-dead-store-call")

	// mark: registers used anywhere (instruction operands + terminators)
	for changed := true; changed; {
		changed = false
		used := make(map[Reg]bool)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				for _, u := range b.Instrs[i].uses() {
					used[u] = true
				}
			}
			if b.Term.Kind == TermBr {
				used[b.Term.Cond] = true
			}
			if b.Term.Kind == TermRet && b.Term.HasVal {
				used[b.Term.Val] = true
			}
		}
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if in.pure() && in.Dst != NoReg && !used[in.Dst] {
					p.cov.Hit("dce.remove")
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}

	// in-block dead store elimination on AddrVar-rooted stores
	for _, b := range f.Blocks {
		// addrSym[r] = symbol whose address r holds (possibly via offsets)
		addrSym := make(map[Reg]string)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpAddrVar {
				addrSym[in.Dst] = in.Sym.Name + "#" + itoa(in.Sym.ID)
			}
		}
		// scan forward: a store to symbol S is dead if the next access to S
		// in this block is another store with no interfering read/call
		// (bug: calls not treated as reads)
		type lastStore struct {
			idx int
			ok  bool
		}
		last := make(map[string]lastStore)
		dead := make(map[int]bool)
		clearAll := func() {
			for k := range last {
				delete(last, k)
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpStore:
				sym, known := addrSym[in.A]
				if !known {
					// store through an arbitrary pointer: could touch any
					// variable; forget all pending stores
					clearAll()
					continue
				}
				if ls, ok := last[sym]; ok && ls.ok {
					p.cov.Hit("dce.deadstore")
					dead[ls.idx] = true
				}
				last[sym] = lastStore{idx: i, ok: true}
			case OpLoad:
				if sym, known := addrSym[in.A]; known {
					delete(last, sym)
				} else {
					clearAll()
				}
			case OpCall:
				if !deadStoreBug {
					clearAll()
				}
			}
		}
		if len(dead) > 0 {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				if dead[i] {
					continue
				}
				kept = append(kept, b.Instrs[i])
			}
			b.Instrs = kept
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// simplifyCFG drops unreachable blocks, threads empty jump blocks, and
// merges single-pred/single-succ chains.
func simplifyCFG(f *Func, p *passCtx) {
	p.cov.Hit("simplifycfg.entry")
	// thread empty jump-only blocks
	redirect := func(b *Block) *Block {
		seen := map[*Block]bool{}
		for b != nil && len(b.Instrs) == 0 && b.Term.Kind == TermJmp && !seen[b] {
			seen[b] = true
			p.cov.Hit("simplifycfg.thread")
			b = b.Term.To
		}
		return b
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case TermJmp:
			b.Term.To = redirect(b.Term.To)
		case TermBr:
			b.Term.To = redirect(b.Term.To)
			b.Term.Else = redirect(b.Term.Else)
			if b.Term.To == b.Term.Else {
				b.Term = Term{Kind: TermJmp, To: b.Term.To, Pos: b.Term.Pos}
			}
		}
	}
	f.Entry = redirect(f.Entry)

	// drop unreachable blocks
	live := reachable(f)
	liveSet := make(map[*Block]bool, len(live))
	for _, b := range live {
		liveSet[b] = true
	}
	if len(live) != len(f.Blocks) {
		p.cov.Hit("simplifycfg.unreachable")
		kept := f.Blocks[:0]
		for _, b := range f.Blocks {
			if liveSet[b] {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
	}

	// merge b -> s when s has exactly one predecessor and b jumps to it
	pr := preds(f)
	merged := make(map[*Block]bool)
	snapshot := append([]*Block(nil), f.Blocks...)
	for _, b := range snapshot {
		if merged[b] {
			continue
		}
		for b.Term.Kind == TermJmp {
			s := b.Term.To
			if s == b || len(pr[s]) != 1 || s == f.Entry || merged[s] {
				break
			}
			p.bugs.MaybeCrash(p.cov, "simplifycfg-merge-label", func() bool {
				return len(s.Label) > 6 && s.Label[:6] == "label."
			})
			p.cov.Hit("simplifycfg.merge")
			b.Instrs = append(b.Instrs, s.Instrs...)
			b.Term = s.Term
			merged[s] = true
			for _, t := range b.Succs() {
				for i, q := range pr[t] {
					if q == s {
						pr[t][i] = b
					}
				}
			}
		}
	}
	if len(merged) > 0 {
		kept := f.Blocks[:0]
		for _, b := range f.Blocks {
			if !merged[b] {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
	}
	// renumber
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// aliasForward forwards direct variable stores to subsequent loads within a
// block. A store through an arbitrary pointer may alias any variable and
// must invalidate the forwarding table; the seeded bug "alias-store-forward"
// skips that invalidation — the model of the paper's Figure 2 bug (GCC
// 69951), where two names for the same storage defeat the alias analysis.
func aliasForward(f *Func, p *passCtx) {
	p.cov.Hit("alias.entry")
	buggy := p.bugs.Active("alias-store-forward")
	for _, b := range f.Blocks {
		addrSym := make(map[Reg]int) // reg -> symbol ID (direct AddrVar only)
		stored := make(map[int]Reg)  // symbol ID -> last stored value reg
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpAddrVar:
				addrSym[in.Dst] = in.Sym.ID
			case OpStore:
				if sid, ok := addrSym[in.A]; ok {
					stored[sid] = in.B
					continue
				}
				// store through a pointer: may alias anything
				if !buggy {
					p.cov.Hit("alias.clobber")
					stored = make(map[int]Reg)
				}
			case OpLoad:
				if sid, ok := addrSym[in.A]; ok {
					if v, okv := stored[sid]; okv {
						p.cov.Hit("alias.forward")
						*in = Instr{Op: OpCopy, Dst: in.Dst, A: v, Pos: in.Pos}
						continue
					}
				}
			case OpCall:
				// the callee may store to any variable
				stored = make(map[int]Reg)
				for k := range addrSym {
					_ = k
				}
			case OpAddrIdx:
				// derived pointers are not tracked; nothing to do
			default:
				if in.Dst != NoReg {
					// a redefined value register invalidates forwarding of
					// that register
					for sid, v := range stored {
						if v == in.Dst {
							delete(stored, sid)
						}
					}
					delete(addrSym, in.Dst)
				}
			}
		}
	}
}

// licm hoists loop-invariant pure computations into a preheader. Correct
// hoisting of potentially-trapping operations (division, modulo) requires
// the defining block to execute on every iteration (dominate all back-edge
// sources); the seeded bug "licm-hoist-conditional" skips that check.
func licm(f *Func, p *passCtx) {
	p.cov.Hit("licm.entry")
	hoistBug := p.bugs.Active("licm-hoist-conditional")
	loops := naturalLoops(f)
	if len(loops) == 0 {
		return
	}
	dom := dominators(f)
	pr := preds(f)

	// count definitions of each register across the function (non-SSA)
	defCount := make(map[Reg]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Dst; d != NoReg {
				defCount[d]++
			}
		}
	}

	for _, lp := range loops {
		p.cov.Hit("licm.loop")
		p.bugs.MaybeCrash(p.cov, "licm-crash-nested-loop", func() bool {
			// nested loop whose header is shared loop body: another loop's
			// header inside this loop's body
			for _, other := range loops {
				if other != lp && lp.body[other.header] && len(pr[other.header]) >= 3 {
					return true
				}
			}
			return false
		})
		// back-edge sources
		var latches []*Block
		for _, q := range pr[lp.header] {
			if lp.body[q] {
				latches = append(latches, q)
			}
		}
		// build / find the preheader: the unique predecessor outside the loop
		var outside []*Block
		for _, q := range pr[lp.header] {
			if !lp.body[q] {
				outside = append(outside, q)
			}
		}
		if len(outside) != 1 || outside[0].Term.Kind != TermJmp {
			continue // no convenient preheader; skip this loop
		}
		pre := outside[0]

		// registers defined inside the loop
		definedIn := make(map[Reg]bool)
		for b := range lp.body {
			for i := range b.Instrs {
				if d := b.Instrs[i].Dst; d != NoReg {
					definedIn[d] = true
				}
			}
		}
		hoisted := true
		for hoisted {
			hoisted = false
			for b := range lp.body {
				kept := b.Instrs[:0]
				for i := range b.Instrs {
					in := b.Instrs[i]
					canHoist := in.pure() && in.Dst != NoReg && defCount[in.Dst] == 1
					if canHoist {
						for _, u := range in.uses() {
							if definedIn[u] {
								canHoist = false
								break
							}
						}
					}
					if canHoist {
						trapping := in.Op == OpBin && (in.BinOp == "/" || in.BinOp == "%")
						if trapping && !hoistBug {
							// only hoist when b executes every iteration
							execEveryIter := true
							for _, latch := range latches {
								if !dom[latch][b] {
									execEveryIter = false
									break
								}
							}
							if !execEveryIter {
								canHoist = false
							}
						}
					}
					if canHoist {
						p.cov.Hit("licm.hoist")
						if in.Op == OpBin {
							p.cov.HitOp("licm.hoist", in.BinOp)
						}
						pre.Instrs = append(pre.Instrs, in)
						delete(definedIn, in.Dst)
						hoisted = true
						continue
					}
					kept = append(kept, in)
				}
				b.Instrs = kept
			}
		}
	}
}
