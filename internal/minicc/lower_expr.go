package minicc

import (
	"spe/internal/cc"
)

// place is a lowered lvalue: either a promoted variable register or a
// memory address register.
type place struct {
	varReg Reg // non-zero: register-promoted variable
	addr   Reg // otherwise: address of the storage
	typ    cc.Type
}

// expr lowers an expression to a value register.
func (l *lowerer) expr(e cc.Expr) Reg {
	switch e := e.(type) {
	case *cc.IntLit:
		r := l.f.NewReg()
		l.emit(Instr{Op: OpConst, Dst: r, Val: Const{I: e.Val}, Type: e.Type, Pos: e.Pos})
		return r
	case *cc.FloatLit:
		r := l.f.NewReg()
		l.emit(Instr{Op: OpConst, Dst: r, Val: Const{IsFloat: true, F: e.Val}, Type: e.Type, Pos: e.Pos})
		return r
	case *cc.CharLit:
		return l.constInt(int64(e.Val), cc.TypeInt, e.Pos)
	case *cc.StringLit:
		r := l.f.NewReg()
		l.emit(Instr{Op: OpConst, Dst: r, Val: Const{IsStr: true, Str: e.Val}, Type: e.Type, Pos: e.Pos})
		return r
	case *cc.Ident:
		return l.loadPlace(l.place(e), e.Pos)
	case *cc.UnaryExpr:
		return l.unary(e)
	case *cc.PostfixExpr:
		p := l.place(e.X)
		// snapshot the old value: loadPlace may return the variable's own
		// register, which the increment below would clobber
		cur := l.loadPlace(p, e.Pos)
		old := l.f.NewReg()
		l.emit(Instr{Op: OpCopy, Dst: old, A: cur, Pos: e.Pos})
		one := l.constInt(1, cc.TypeInt, e.Pos)
		op := "+"
		if e.Op == "--" {
			op = "-"
		}
		nv := l.f.NewReg()
		l.emit(Instr{Op: OpBin, Dst: nv, A: old, B: one, BinOp: op, Type: exprType(e.X), Pos: e.Pos})
		v := l.convTo(nv, scalarOf(p.typ), e.Pos)
		l.storePlace(p, v, e.Pos)
		return old
	case *cc.BinaryExpr:
		return l.binary(e)
	case *cc.AssignExpr:
		return l.assign(e)
	case *cc.CondExpr:
		return l.cond(e)
	case *cc.CallExpr:
		return l.call(e, true)
	case *cc.IndexExpr, *cc.MemberExpr:
		p := l.place(e)
		return l.loadPlace(p, e.NodePos())
	case *cc.CastExpr:
		v := l.expr(e.X)
		return l.convTo(v, e.To, e.Pos)
	case *cc.SizeofExpr:
		t := e.OfType
		if t == nil && e.X != nil {
			t = e.X.ExprType()
		}
		size := int64(4)
		if t != nil {
			size = int64(t.Size())
		}
		return l.constInt(size, cc.TypeULong, e.Pos)
	case *cc.CommaExpr:
		var last Reg
		for i, x := range e.List {
			if i == len(e.List)-1 {
				last = l.expr(x)
			} else {
				l.exprDiscard(x)
			}
		}
		return last
	default:
		l.unsupported(e.NodePos(), "expression %T", e)
		return NoReg
	}
}

func exprType(e cc.Expr) cc.Type {
	t := e.ExprType()
	if t == nil {
		return cc.TypeInt
	}
	return t
}

// exprDiscard lowers an expression for effect only.
func (l *lowerer) exprDiscard(e cc.Expr) {
	switch e := e.(type) {
	case *cc.CallExpr:
		l.call(e, false)
	case *cc.CommaExpr:
		for _, x := range e.List {
			l.exprDiscard(x)
		}
	case *cc.AssignExpr, *cc.PostfixExpr:
		l.expr(e)
	case *cc.UnaryExpr:
		if e.Op == "++" || e.Op == "--" {
			l.expr(e)
			return
		}
		l.expr(e)
	default:
		l.expr(e)
	}
}

// place lowers an lvalue expression.
func (l *lowerer) place(e cc.Expr) place {
	switch e := e.(type) {
	case *cc.Ident:
		sym := e.Sym
		if sym == nil {
			l.unsupported(e.Pos, "unresolved identifier %q", e.Name)
		}
		l.bindVar(sym)
		if r, ok := l.f.VarRegs[sym]; ok {
			if l.tr != nil {
				if hi, isHole := l.tr.holeOf[e]; isHole {
					// template build: stand in a per-hole sentinel register
					// so resolveSentinels can record every operand slot this
					// hole's value reaches (the real register is substituted
					// there, keeping the template IR byte-identical to an
					// untraced lowering)
					l.tr.note(hi, shapeReg)
					return place{varReg: holeSentinel(hi), typ: sym.Type}
				}
			}
			return place{varReg: r, typ: sym.Type}
		}
		addr := l.f.NewReg()
		l.emit(Instr{Op: OpAddrVar, Dst: addr, Sym: sym, Pos: e.Pos})
		if l.tr != nil {
			if hi, isHole := l.tr.holeOf[e]; isHole {
				l.tr.note(hi, shapeMem)
				l.tr.memSites[hi] = append(l.tr.memSites[hi],
					irSite{fn: l.tr.curFunc, block: l.cur.ID, instr: len(l.cur.Instrs) - 1})
			}
		}
		return place{addr: addr, typ: sym.Type}
	case *cc.UnaryExpr:
		if e.Op != "*" {
			l.unsupported(e.Pos, "lvalue %s", e.Op)
		}
		v := l.expr(e.X)
		return place{addr: v, typ: exprType(e)}
	case *cc.IndexExpr:
		base := l.expr(e.X)
		idx := l.expr(e.Idx)
		elem := exprType(e)
		addr := l.f.NewReg()
		l.emit(Instr{Op: OpAddrIdx, Dst: addr, A: base, B: idx, Scale: cellCountOf(elem), Pos: e.Pos})
		return place{addr: addr, typ: elem}
	case *cc.MemberExpr:
		l.crash("frontend-nested-struct-member", func() bool {
			// member access chains of depth >= 3 (x.a.b.c or mixed ->)
			depth := 0
			for cur := cc.Expr(e); ; {
				m, ok := cur.(*cc.MemberExpr)
				if !ok {
					break
				}
				depth++
				cur = m.X
			}
			return depth >= 3
		})
		var base Reg
		var st *cc.StructType
		if e.Arrow {
			base = l.expr(e.X)
			if pt, ok := cc.Decay(exprType(e.X)).(*cc.PointerType); ok {
				st, _ = pt.Elem.(*cc.StructType)
			}
		} else {
			p := l.place(e.X)
			base = l.placeAddr(p, e.Pos)
			st, _ = exprType(e.X).(*cc.StructType)
		}
		if st == nil {
			l.unsupported(e.Pos, "member access on non-struct")
		}
		fi := st.FieldIndex(e.Name)
		off := 0
		for j := 0; j < fi; j++ {
			off += cellCountOf(st.Fields[j].Type)
		}
		idx := l.constInt(int64(off), cc.TypeInt, e.Pos)
		addr := l.f.NewReg()
		l.emit(Instr{Op: OpAddrIdx, Dst: addr, A: base, B: idx, Scale: 1, Pos: e.Pos})
		return place{addr: addr, typ: st.Fields[fi].Type}
	case *cc.CondExpr:
		// lvalue conditional (used by struct-member-of-ternary, Fig. 3):
		// branch to compute the chosen address into a shared register
		l.hit("lower.condlvalue")
		l.crash("fold-ternary-equal-operands", func() bool {
			return equalShape(e.T, e.F)
		})
		cond := l.expr(e.Cond)
		out := l.f.NewReg()
		tB := l.f.NewBlock("clv.true")
		fB := l.f.NewBlock("clv.false")
		jB := l.f.NewBlock("clv.join")
		l.terminate(Term{Kind: TermBr, Cond: cond, To: tB, Else: fB, Pos: e.Pos}, tB)
		tp := l.place(e.T)
		l.emit(Instr{Op: OpCopy, Dst: out, A: l.placeAddr(tp, e.Pos), Pos: e.Pos})
		l.terminate(Term{Kind: TermJmp, To: jB}, fB)
		fp := l.place(e.F)
		l.emit(Instr{Op: OpCopy, Dst: out, A: l.placeAddr(fp, e.Pos), Pos: e.Pos})
		l.terminate(Term{Kind: TermJmp, To: jB}, jB)
		return place{addr: out, typ: exprType(e)}
	default:
		l.unsupported(e.NodePos(), "lvalue %T", e)
		return place{}
	}
}

// placeAddr materializes the address of a place (forcing memory for
// register-promoted variables is impossible; callers ensure aggregates and
// address-taken variables are memory-resident).
func (l *lowerer) placeAddr(p place, pos cc.Pos) Reg {
	if p.varReg != NoReg {
		l.unsupported(pos, "address of register variable")
	}
	return p.addr
}

// loadPlace reads a place's value; aggregates yield their address (decay).
func (l *lowerer) loadPlace(p place, pos cc.Pos) Reg {
	if p.varReg != NoReg {
		return p.varReg
	}
	if isAggregateType(p.typ) {
		return p.addr
	}
	r := l.f.NewReg()
	l.emit(Instr{Op: OpLoad, Dst: r, A: p.addr, Type: p.typ, Pos: pos})
	return r
}

// storePlace writes v to a place, copying cell-wise for struct assignment.
func (l *lowerer) storePlace(p place, v Reg, pos cc.Pos) {
	if p.varReg != NoReg {
		l.emit(Instr{Op: OpCopy, Dst: p.varReg, A: v, Pos: pos})
		return
	}
	if st, ok := p.typ.(*cc.StructType); ok {
		// struct assignment: v is the source address; copy each cell
		n := cellCountOf(st)
		for i := 0; i < n; i++ {
			idx := l.constInt(int64(i), cc.TypeInt, pos)
			src := l.f.NewReg()
			l.emit(Instr{Op: OpAddrIdx, Dst: src, A: v, B: idx, Scale: 1, Pos: pos})
			val := l.f.NewReg()
			l.emit(Instr{Op: OpLoad, Dst: val, A: src, Pos: pos})
			idx2 := l.constInt(int64(i), cc.TypeInt, pos)
			dst := l.f.NewReg()
			l.emit(Instr{Op: OpAddrIdx, Dst: dst, A: p.addr, B: idx2, Scale: 1, Pos: pos})
			l.emit(Instr{Op: OpStore, A: dst, B: val, Pos: pos})
		}
		return
	}
	l.emit(Instr{Op: OpStore, A: p.addr, B: v, Pos: pos})
}

func (l *lowerer) unary(e *cc.UnaryExpr) Reg {
	switch e.Op {
	case "&":
		p := l.place(e.X)
		return l.placeAddr(p, e.Pos)
	case "*":
		v := l.expr(e.X)
		if isAggregateType(exprType(e)) {
			return v
		}
		r := l.f.NewReg()
		l.emit(Instr{Op: OpLoad, Dst: r, A: v, Type: exprType(e), Pos: e.Pos})
		return r
	case "+":
		return l.expr(e.X)
	case "-", "!", "~":
		v := l.expr(e.X)
		r := l.f.NewReg()
		l.emit(Instr{Op: OpUn, Dst: r, A: v, UnOp: e.Op, Type: exprType(e), Pos: e.Pos})
		return r
	case "++", "--":
		p := l.place(e.X)
		old := l.loadPlace(p, e.Pos)
		one := l.constInt(1, cc.TypeInt, e.Pos)
		op := "+"
		if e.Op == "--" {
			op = "-"
		}
		nv := l.f.NewReg()
		l.emit(Instr{Op: OpBin, Dst: nv, A: old, B: one, BinOp: op, Type: exprType(e.X), Pos: e.Pos})
		l.storePlace(p, nv, e.Pos)
		return nv
	default:
		l.unsupported(e.Pos, "unary %s", e.Op)
		return NoReg
	}
}

func (l *lowerer) binary(e *cc.BinaryExpr) Reg {
	if e.Op == "<<" || e.Op == ">>" {
		l.crash("frontend-char-shift", func() bool {
			bt, ok := exprType(e.X).(*cc.BasicType)
			return ok && (bt.Kind == cc.Char || bt.Kind == cc.UChar)
		})
	}
	switch e.Op {
	case "&&", "||":
		l.hit("lower.shortcircuit")
		// result register assigned in both arms
		out := l.f.NewReg()
		rhsB := l.f.NewBlock("sc.rhs")
		joinB := l.f.NewBlock("sc.join")
		shortB := l.f.NewBlock("sc.short")
		cond := l.expr(e.X)
		if e.Op == "&&" {
			l.terminate(Term{Kind: TermBr, Cond: cond, To: rhsB, Else: shortB, Pos: e.Pos}, shortB)
			zero := l.constInt(0, cc.TypeInt, e.Pos)
			l.emit(Instr{Op: OpCopy, Dst: out, A: zero, Pos: e.Pos})
		} else {
			l.terminate(Term{Kind: TermBr, Cond: cond, To: shortB, Else: rhsB, Pos: e.Pos}, shortB)
			one := l.constInt(1, cc.TypeInt, e.Pos)
			l.emit(Instr{Op: OpCopy, Dst: out, A: one, Pos: e.Pos})
		}
		l.terminate(Term{Kind: TermJmp, To: joinB}, rhsB)
		rhs := l.expr(e.Y)
		norm := l.f.NewReg()
		zero := l.constInt(0, cc.TypeInt, e.Pos)
		l.emit(Instr{Op: OpBin, Dst: norm, A: rhs, B: zero, BinOp: "!=", Type: cc.TypeInt, Pos: e.Pos})
		l.emit(Instr{Op: OpCopy, Dst: out, A: norm, Pos: e.Pos})
		l.terminate(Term{Kind: TermJmp, To: joinB}, joinB)
		return out
	}
	x := l.expr(e.X)
	y := l.expr(e.Y)
	r := l.f.NewReg()
	l.emit(Instr{Op: OpBin, Dst: r, A: x, B: y, BinOp: e.Op, Type: exprType(e), Pos: e.Pos})
	return r
}

func (l *lowerer) assign(e *cc.AssignExpr) Reg {
	l.hit("lower.assign")
	p := l.place(e.LHS)
	if e.Op == "=" {
		v := l.expr(e.RHS)
		if !isAggregateType(p.typ) {
			v = l.convTo(v, scalarOf(p.typ), e.Pos)
		}
		l.storePlace(p, v, e.Pos)
		return v
	}
	old := l.loadPlace(p, e.Pos)
	rhs := l.expr(e.RHS)
	op := e.Op[:len(e.Op)-1]
	r := l.f.NewReg()
	l.emit(Instr{Op: OpBin, Dst: r, A: old, B: rhs, BinOp: op, Type: exprType(e.LHS), Pos: e.Pos})
	v := l.convTo(r, scalarOf(p.typ), e.Pos)
	l.storePlace(p, v, e.Pos)
	return v
}

func (l *lowerer) cond(e *cc.CondExpr) Reg {
	if isAggregateType(exprType(e)) {
		p := l.place(e)
		return p.addr
	}
	l.hit("lower.cond")
	l.crash("frontend-deep-ternary", func() bool {
		return ternaryDepth(e) >= 3
	})
	l.crash("fold-ternary-equal-operands", func() bool {
		return equalShape(e.T, e.F)
	})
	cond := l.expr(e.Cond)
	out := l.f.NewReg()
	tB := l.f.NewBlock("cond.true")
	fB := l.f.NewBlock("cond.false")
	jB := l.f.NewBlock("cond.join")
	l.terminate(Term{Kind: TermBr, Cond: cond, To: tB, Else: fB, Pos: e.Pos}, tB)
	tv := l.expr(e.T)
	l.emit(Instr{Op: OpCopy, Dst: out, A: tv, Pos: e.Pos})
	l.terminate(Term{Kind: TermJmp, To: jB}, fB)
	fv := l.expr(e.F)
	l.emit(Instr{Op: OpCopy, Dst: out, A: fv, Pos: e.Pos})
	l.terminate(Term{Kind: TermJmp, To: jB}, jB)
	return out
}

func (l *lowerer) call(e *cc.CallExpr, needValue bool) Reg {
	l.hit("lower.call")
	args := make([]Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = l.expr(a)
	}
	dst := NoReg
	if needValue {
		dst = l.f.NewReg()
	}
	l.emit(Instr{Op: OpCall, Dst: dst, Name: e.Fun.Name, Args: args, Type: exprType(e), Pos: e.Pos})
	return dst
}

// convTo inserts a conversion when the target type differs.
func (l *lowerer) convTo(v Reg, t cc.Type, pos cc.Pos) Reg {
	if t == nil {
		return v
	}
	r := l.f.NewReg()
	l.emit(Instr{Op: OpConv, Dst: r, A: v, Type: t, Pos: pos})
	return r
}

// ternaryDepth measures the nesting depth of conditional expressions.
func ternaryDepth(e cc.Expr) int {
	switch e := e.(type) {
	case *cc.CondExpr:
		d := ternaryDepth(e.Cond)
		if t := ternaryDepth(e.T); t > d {
			d = t
		}
		if f := ternaryDepth(e.F); f > d {
			d = f
		}
		return d + 1
	case *cc.BinaryExpr:
		d := ternaryDepth(e.X)
		if y := ternaryDepth(e.Y); y > d {
			d = y
		}
		return d
	case *cc.UnaryExpr:
		return ternaryDepth(e.X)
	case *cc.MemberExpr:
		return ternaryDepth(e.X)
	case *cc.IndexExpr:
		d := ternaryDepth(e.X)
		if y := ternaryDepth(e.Idx); y > d {
			d = y
		}
		return d
	case *cc.AssignExpr:
		d := ternaryDepth(e.LHS)
		if y := ternaryDepth(e.RHS); y > d {
			d = y
		}
		return d
	default:
		return 0
	}
}

// equalShape reports whether two expressions are structurally identical
// after sema (the trigger shape of the seeded fold-ternary crash, modeled
// on GCC PR69801's operand_equal_p assertion).
func equalShape(a, b cc.Expr) bool {
	switch a := a.(type) {
	case *cc.Ident:
		bb, ok := b.(*cc.Ident)
		return ok && a.Sym == bb.Sym
	case *cc.IntLit:
		bb, ok := b.(*cc.IntLit)
		return ok && a.Val == bb.Val
	case *cc.BinaryExpr:
		bb, ok := b.(*cc.BinaryExpr)
		return ok && a.Op == bb.Op && equalShape(a.X, bb.X) && equalShape(a.Y, bb.Y)
	case *cc.UnaryExpr:
		bb, ok := b.(*cc.UnaryExpr)
		return ok && a.Op == bb.Op && equalShape(a.X, bb.X)
	case *cc.MemberExpr:
		bb, ok := b.(*cc.MemberExpr)
		return ok && a.Name == bb.Name && a.Arrow == bb.Arrow && equalShape(a.X, bb.X)
	case *cc.IndexExpr:
		bb, ok := b.(*cc.IndexExpr)
		return ok && equalShape(a.X, bb.X) && equalShape(a.Idx, bb.Idx)
	case *cc.CondExpr:
		bb, ok := b.(*cc.CondExpr)
		return ok && equalShape(a.Cond, bb.Cond) && equalShape(a.T, bb.T) && equalShape(a.F, bb.F)
	default:
		return false
	}
}
