package minicc

import (
	"strings"
	"testing"

	"spe/internal/interp"
)

// runVM compiles at the given level with no seeded bugs and executes.
func runVM(t *testing.T, src string, opt int) *ExecResult {
	t.Helper()
	prog := analyzeT(t, src)
	c := &Compiler{Opt: opt}
	ro := c.Run(prog, ExecConfig{})
	if !ro.Compile.Ok() {
		t.Fatalf("compile failed: %+v", ro.Compile)
	}
	return ro.Exec
}

func TestVMTrapsOnNullDeref(t *testing.T) {
	// the binary of a UB program does whatever the hardware does: here a
	// segfault analogue (never fed real inputs by the harness, which
	// filters UB, but the VM must stay total)
	ex := runVM(t, `int main() { int *p = 0; return *p; }`, 0)
	if ex.Trap == "" {
		t.Errorf("null deref did not trap: %+v", ex)
	}
	if !strings.Contains(ex.Trap, "segmentation fault") {
		t.Errorf("trap = %q", ex.Trap)
	}
}

func TestVMTrapsOnDivByZero(t *testing.T) {
	ex := runVM(t, `int main() { int z = 0; return 5 / z; }`, 0)
	if !strings.Contains(ex.Trap, "SIGFPE") {
		t.Errorf("trap = %q", ex.Trap)
	}
}

func TestVMSignedOverflowWraps(t *testing.T) {
	// unlike the reference interpreter (which flags UB), the binary wraps
	ex := runVM(t, `
int main() {
    int x = 2147483647;
    x = x + 1;
    return x == -2147483648;
}`, 0)
	if !ex.Ok() || ex.Exit != 1 {
		t.Errorf("overflow did not wrap: %+v", ex)
	}
}

func TestVMOversizedShiftMasksLikeHardware(t *testing.T) {
	ex := runVM(t, `
int main() {
    int x = 1;
    int n = 33;
    return x << n;
}`, 0)
	// UB in C; the VM defines it as a 64-bit shift truncated to the result
	// width: 1 << 33 overflows int and truncates to 0. The point is
	// totality and determinism, not matching any particular ISA.
	if !ex.Ok() || ex.Exit != 0 || ex.Trap != "" {
		t.Errorf("shift = %+v", ex)
	}
}

func TestVMStepBudget(t *testing.T) {
	prog := analyzeT(t, `int main() { for (;;) ; return 0; }`)
	c := &Compiler{Opt: 0}
	ro := c.Run(prog, ExecConfig{MaxSteps: 5000})
	if !ro.Exec.Timeout {
		t.Errorf("infinite loop not stopped: %+v", ro.Exec)
	}
	// the empty-body loop optimizes to an empty self-loop at -O2; the
	// per-block tick must still stop it
	c2 := &Compiler{Opt: 2}
	ro2 := c2.Run(prog, ExecConfig{MaxSteps: 5000})
	if !ro2.Exec.Timeout {
		t.Errorf("-O2 empty loop not stopped: %+v", ro2.Exec)
	}
}

func TestVMStackOverflow(t *testing.T) {
	prog := analyzeT(t, `
int f(int n) { return f(n + 1); }
int main() { return f(0); }`)
	c := &Compiler{Opt: 0}
	ro := c.Run(prog, ExecConfig{MaxDepth: 50})
	if !strings.Contains(ro.Exec.Trap, "stack overflow") {
		t.Errorf("trap = %q", ro.Exec.Trap)
	}
}

func TestVMGlobalInitializers(t *testing.T) {
	ex := runVM(t, `
int a = 5;
int b = -3;
long l = 10l;
double d = 1.5;
char c = 'x';
unsigned u = 7u;
int arr[3] = {1, 2, 3};
struct s { int p; int q; };
struct s v = {8, 9};
int main() {
    int total = a + b + (int)l + (int)d + (c == 'x') + (int)u;
    total += arr[0] + arr[2] + v.p + v.q;
    return total;
}`, 0)
	// 5 - 3 + 10 + 1 + 1 + 7 + 1 + 3 + 8 + 9 = 42
	if !ex.Ok() || ex.Exit != 42 {
		t.Errorf("globals: %+v", ex)
	}
}

func TestVMAddressConstantGlobalInit(t *testing.T) {
	ex := runVM(t, `
int target = 9;
int *p = &target;
int arr[2] = {4, 5};
int *q = arr;
int main() { return *p + *q; }`, 0)
	if !ex.Ok() || ex.Exit != 13 {
		t.Errorf("address-constant init: %+v", ex)
	}
}

func TestVMOutputMatchesInterpreterAcrossFormats(t *testing.T) {
	src := `
int main() {
    printf("%d|%u|%x|%c|%s|%05d|%.2f|%g\n", -7, 7u, 254, 90, "zz", 3, 1.5, 0.25);
    return 0;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	for _, opt := range OptLevels {
		c := &Compiler{Opt: opt}
		ro := c.Run(prog, ExecConfig{})
		if ro.Exec.Output != ref.Output {
			t.Errorf("-O%d: output %q, want %q", opt, ro.Exec.Output, ref.Output)
		}
	}
}

func TestVMExitAndAbort(t *testing.T) {
	ex := runVM(t, `int main() { exit(9); return 1; }`, 0)
	if !ex.Ok() || ex.Exit != 9 {
		t.Errorf("exit: %+v", ex)
	}
	ex = runVM(t, `int main() { abort(); return 1; }`, 0)
	if !ex.Aborted {
		t.Errorf("abort: %+v", ex)
	}
}

func TestVMExitCodeTruncation(t *testing.T) {
	// exit codes are a single byte, as in POSIX
	ex := runVM(t, `int main() { return 256 + 7; }`, 0)
	if ex.Exit != 7 {
		t.Errorf("exit = %d, want 7", ex.Exit)
	}
}
