package minicc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spe/internal/cc"
	"spe/internal/interp"
)

// ExecConfig bounds an execution of compiled code.
type ExecConfig struct {
	MaxSteps  int64 // default 4,000,000
	MaxDepth  int   // default 256
	MaxOutput int   // default 1 MiB
	// Dispatch selects the execution engine: DispatchThreaded (the
	// default, a per-opcode handler table) or DispatchSwitch (the
	// monolithic opcode switch). Both run the same fused code and are
	// observationally identical down to step counts.
	Dispatch string
	// NoFuse skips the lazy superinstruction fusion of not-yet-fused
	// programs — a benchmark knob isolating what fusion buys. Programs
	// already fused (template-cached IR) run fused regardless.
	NoFuse bool
}

func (c ExecConfig) withDefaults() ExecConfig {
	if c.MaxSteps == 0 {
		c.MaxSteps = 4_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 256
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 20
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchThreaded
	}
	return c
}

// ExecResult is the outcome of running compiled code. Unlike the reference
// interpreter, the VM does not detect undefined behavior: it models the
// emitted binary, which does whatever the hardware does. Trap reports a
// runtime fault (segfault analogue); Timeout reports step exhaustion.
type ExecResult struct {
	Output  string
	Exit    int
	Trap    string
	Timeout bool
	Aborted bool
	Steps   int64
}

// Ok reports a clean run.
func (r *ExecResult) Ok() bool { return r.Trap == "" && !r.Timeout && !r.Aborted }

type vmTrap struct{ msg string }
type vmTimeout struct{}
type vmExit struct{ code int }
type vmAbort struct{}

type vm struct {
	prog    *Program
	cfg     ExecConfig
	cov     *Coverage
	bugs    *BugSet
	st      *execState
	globals map[*cc.Symbol]*interp.Object
	statics map[*cc.Symbol]*interp.Object
	strs    map[string]*interp.Object
	out     []byte
	steps   int64
	depth   int
	nextID  int
	// brReady/brTaken carry a fused OpCmpBr's verdict to the block's
	// TermBr terminator; the comparison is always the block's last
	// instruction, so the flag never survives past the next terminator.
	brReady bool
	brTaken bool
}

// execState is the VM's reusable machine state: the global/static/string
// environments, the output buffer, an object slab, and a register-file free
// list. One execState serves many Execute runs in sequence (the campaign's
// per-worker backend cache holds one); reset clears the environments and
// rewinds the slab instead of reallocating. Strictly single-goroutine.
type execState struct {
	globals  map[*cc.Symbol]*interp.Object
	statics  map[*cc.Symbol]*interp.Object
	strs     map[string]*interp.Object
	out      []byte
	objs     []*interp.Object
	objUsed  int
	regsFree [][]interp.Value
	argsFree [][]interp.Value
}

func newExecState() *execState {
	return &execState{
		globals: make(map[*cc.Symbol]*interp.Object),
		statics: make(map[*cc.Symbol]*interp.Object),
		strs:    make(map[string]*interp.Object),
	}
}

func (st *execState) reset() {
	for k := range st.globals {
		delete(st.globals, k)
	}
	for k := range st.statics {
		delete(st.statics, k)
	}
	for k := range st.strs {
		delete(st.strs, k)
	}
	st.out = st.out[:0]
	st.objUsed = 0
}

// allocObj hands out a slab object. Cells of reused objects are NOT
// cleared: every caller fully initializes the cells it allocates (globals,
// statics, and frame-local memory objects are all zero-filled on
// allocation, matching the deterministic-binary model).
func (st *execState) allocObj(id, cells int, name string) *interp.Object {
	if st.objUsed < len(st.objs) {
		obj := st.objs[st.objUsed]
		st.objUsed++
		cs := obj.Cells
		if cap(cs) >= cells {
			cs = cs[:cells]
		} else {
			cs = make([]interp.Cell, cells)
		}
		*obj = interp.Object{ID: id, Cells: cs, Live: true, Name: name}
		return obj
	}
	obj := &interp.Object{ID: id, Cells: make([]interp.Cell, cells), Live: true, Name: name}
	st.objs = append(st.objs, obj)
	st.objUsed++
	return obj
}

// getRegs hands out a zeroed register file of length n.
func (st *execState) getRegs(n int) []interp.Value {
	if k := len(st.regsFree); k > 0 {
		r := st.regsFree[k-1]
		st.regsFree = st.regsFree[:k-1]
		if cap(r) >= n {
			r = r[:n]
			for i := range r {
				r[i] = interp.Value{}
			}
			return r
		}
	}
	return make([]interp.Value, n)
}

func (st *execState) putRegs(r []interp.Value) { st.regsFree = append(st.regsFree, r) }

// getArgs hands out a call-argument buffer of length n; callers fully
// assign every element, so reused buffers are not cleared.
func (st *execState) getArgs(n int) []interp.Value {
	if k := len(st.argsFree); k > 0 {
		a := st.argsFree[k-1]
		st.argsFree = st.argsFree[:k-1]
		if cap(a) >= n {
			return a[:n]
		}
	}
	return make([]interp.Value, n)
}

func (st *execState) putArgs(a []interp.Value) { st.argsFree = append(st.argsFree, a) }

// Execute runs a compiled program's main function on fresh, single-use
// machine state. Callers executing many programs in sequence go through a
// Cache (RunCached), which reuses one execState across runs.
func Execute(p *Program, bugs *BugSet, cov *Coverage, cfg ExecConfig) *ExecResult {
	return executeWith(nil, p, bugs, cov, cfg)
}

// executeWith is Execute on pooled machine state. st may be nil (a fresh
// state is built); a non-nil st is reset and reused, and must not be shared
// across goroutines.
func executeWith(st *execState, p *Program, bugs *BugSet, cov *Coverage, cfg ExecConfig) (res *ExecResult) {
	cfg = cfg.withDefaults()
	if bugs == nil {
		bugs = EmptyBugSet()
	}
	if st == nil {
		st = newExecState()
	}
	st.reset()
	// fuse lazily: template-cached programs arrive pre-fused; fresh
	// compilations (and post-pass scratch IR) are fused here, once,
	// unless the benchmark knob opts out
	if !p.fused && !cfg.NoFuse {
		fuseProgram(p)
	}
	m := &vm{
		prog: p, cfg: cfg, cov: cov, bugs: bugs, st: st,
		globals: st.globals,
		statics: st.statics,
		strs:    st.strs,
		out:     st.out,
	}
	res = &ExecResult{}
	defer func() {
		st.out = m.out // return the (possibly grown) buffer to the pool
		res.Output = string(m.out)
		res.Steps = m.steps
		if r := recover(); r != nil {
			switch t := r.(type) {
			case vmTrap:
				res.Trap = t.msg
			case vmTimeout:
				res.Timeout = true
			case vmExit:
				res.Exit = t.code
			case vmAbort:
				res.Aborted = true
			default:
				panic(r)
			}
		}
	}()
	cov.Hit("vm.entry")
	m.initGlobals()
	mainFn, ok := p.Funcs["main"]
	if !ok {
		res.Trap = "no main"
		return res
	}
	v, has := m.call(mainFn, nil)
	if has {
		res.Exit = int(uint8(v.I()))
	}
	return res
}

func (m *vm) trap(format string, args ...interface{}) {
	panic(vmTrap{msg: fmt.Sprintf(format, args...)})
}

func (m *vm) tick() {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		panic(vmTimeout{})
	}
}

func (m *vm) allocObj(t cc.Type, name string) *interp.Object {
	m.nextID++
	return m.st.allocObj(m.nextID, cellCountOf(t), name)
}

// initGlobals evaluates constant global initializers. C requires global
// initializers to be constant expressions, so a small evaluator suffices.
func (m *vm) initGlobals() {
	for _, vd := range m.prog.Globals {
		obj := m.allocObj(vd.Sym.Type, vd.Name)
		obj.Persistent = true
		// globals are zero-initialized
		st := scalarOf(vd.Sym.Type)
		for i := range obj.Cells {
			obj.Cells[i] = interp.Cell{Val: zeroVal(st), Init: true}
		}
		m.globals[vd.Sym] = obj
	}
	// initializers may reference other globals (&a), so a second pass
	for _, vd := range m.prog.Globals {
		if vd.Init == nil {
			continue
		}
		obj := m.globals[vd.Sym]
		m.constInit(obj, 0, vd.Sym.Type, vd.Init)
	}
	// static locals: allocated once, zeroed, then constant-initialized
	for _, vd := range m.prog.Statics {
		obj := m.allocObj(vd.Sym.Type, vd.Name)
		obj.Persistent = true
		st := scalarOf(vd.Sym.Type)
		for i := range obj.Cells {
			obj.Cells[i] = interp.Cell{Val: zeroVal(st), Init: true}
		}
		if vd.Init != nil {
			m.constInit(obj, 0, vd.Sym.Type, vd.Init)
		}
		m.statics[vd.Sym] = obj
	}
}

func zeroVal(t cc.Type) interp.Value {
	if bt, ok := t.(*cc.BasicType); ok && bt.IsFloat() {
		return interp.FloatValue(0, t)
	}
	if _, ok := t.(*cc.PointerType); ok {
		return interp.PtrValue(interp.Pointer{}, t)
	}
	return interp.IntValue(0, t)
}

func (m *vm) constInit(obj *interp.Object, off int, t cc.Type, e cc.Expr) {
	switch init := e.(type) {
	case *cc.InitList:
		switch t := t.(type) {
		case *cc.ArrayType:
			ec := cellCountOf(t.Elem)
			for i, sub := range init.List {
				m.constInit(obj, off+i*ec, t.Elem, sub)
			}
		case *cc.StructType:
			fo := off
			for i, sub := range init.List {
				if i >= len(t.Fields) {
					break
				}
				m.constInit(obj, fo, t.Fields[i].Type, sub)
				fo += cellCountOf(t.Fields[i].Type)
			}
		default:
			if len(init.List) == 1 {
				m.constInit(obj, off, t, init.List[0])
			}
		}
	default:
		v, ok := m.constEval(e, scalarOf(t))
		if !ok {
			m.trap("non-constant global initializer at %s", e.NodePos())
		}
		obj.Cells[off] = interp.Cell{Val: v, Init: true}
	}
}

// constEval evaluates a constant expression for global initialization.
func (m *vm) constEval(e cc.Expr, t cc.Type) (interp.Value, bool) {
	switch e := e.(type) {
	case *cc.IntLit:
		return convertVal(interp.IntValue(e.Val, e.Type), t, m), true
	case *cc.FloatLit:
		return convertVal(interp.FloatValue(e.Val, e.Type), t, m), true
	case *cc.CharLit:
		return convertVal(interp.IntValue(int64(e.Val), cc.TypeInt), t, m), true
	case *cc.StringLit:
		return interp.PtrValue(interp.Pointer{Obj: m.internStr(e.Val), Elem: cc.TypeChar}, e.Type), true
	case *cc.UnaryExpr:
		if e.Op == "-" || e.Op == "+" || e.Op == "~" || e.Op == "!" {
			v, ok := m.constEval(e.X, exprType(e.X))
			if !ok {
				return interp.Value{}, false
			}
			switch e.Op {
			case "-":
				if v.Kind == interp.VFloat {
					return convertVal(interp.FloatValue(-v.F(), v.Typ()), t, m), true
				}
				return convertVal(interp.IntValue(-v.I(), v.Typ()), t, m), true
			case "+":
				return convertVal(v, t, m), true
			case "~":
				return convertVal(interp.IntValue(^v.I(), v.Typ()), t, m), true
			default:
				b := int64(0)
				if v.IsZero() {
					b = 1
				}
				return convertVal(interp.IntValue(b, cc.TypeInt), t, m), true
			}
		}
		if e.Op == "&" {
			if id, ok := e.X.(*cc.Ident); ok && id.Sym != nil {
				obj, found := m.globals[id.Sym]
				if found {
					elem := id.Sym.Type
					if at, isArr := elem.(*cc.ArrayType); isArr {
						elem = at.Elem
					}
					return interp.PtrValue(interp.Pointer{Obj: obj, Elem: elem}, t), true
				}
			}
		}
		return interp.Value{}, false
	case *cc.CastExpr:
		v, ok := m.constEval(e.X, exprType(e.X))
		if !ok {
			return interp.Value{}, false
		}
		return convertVal(v, e.To, m), true
	case *cc.Ident:
		// address constant of an array global decays to a pointer
		if id := e; id.Sym != nil {
			if at, isArr := id.Sym.Type.(*cc.ArrayType); isArr {
				if obj, found := m.globals[id.Sym]; found {
					return interp.PtrValue(interp.Pointer{Obj: obj, Elem: at.Elem}, t), true
				}
			}
		}
		return interp.Value{}, false
	default:
		return interp.Value{}, false
	}
}

func (m *vm) internStr(s string) *interp.Object {
	obj, ok := m.strs[s]
	if !ok {
		obj = &interp.Object{ID: -1, Name: "str", Live: true, Persistent: true, Cells: make([]interp.Cell, len(s)+1)}
		for i := 0; i < len(s); i++ {
			obj.Cells[i] = interp.Cell{Val: interp.IntValue(int64(s[i]), cc.TypeChar), Init: true}
		}
		obj.Cells[len(s)] = interp.Cell{Val: interp.IntValue(0, cc.TypeChar), Init: true}
		m.strs[s] = obj
	}
	return obj
}

// call executes one compiled function.
func (m *vm) call(f *Func, args []interp.Value) (interp.Value, bool) {
	m.cov.Hit("vm.call")
	if m.depth >= m.cfg.MaxDepth {
		m.trap("stack overflow in %s", f.Name)
	}
	m.depth++
	defer func() { m.depth-- }()

	regs := m.st.getRegs(f.NumRegs + 1)
	defer m.st.putRegs(regs)
	// vars stays nil for the common frame with no memory-resident locals
	// (lookups on a nil map are legal); frame objects allocate in
	// declaration order so their observable IDs are deterministic
	var vars map[*cc.Symbol]*interp.Object
	if ml := f.memVars(); len(ml) > 0 {
		vars = make(map[*cc.Symbol]*interp.Object, len(ml))
		for _, sym := range ml {
			obj := m.allocObj(sym.Type, sym.Name)
			vars[sym] = obj
			for i := range obj.Cells {
				obj.Cells[i] = interp.Cell{Val: zeroVal(scalarOf(sym.Type)), Init: true}
			}
		}
	}
	// bind parameters
	for i, p := range f.Decl.Params {
		if p.Sym == nil {
			continue
		}
		var v interp.Value
		if i < len(args) {
			v = args[i]
		} else {
			v = zeroVal(scalarOf(p.Type))
		}
		if r, ok := f.VarRegs[p.Sym]; ok {
			regs[r] = v
		} else if obj, ok := vars[p.Sym]; ok {
			obj.Cells[0] = interp.Cell{Val: v, Init: true}
		}
	}

	threaded := m.cfg.Dispatch != DispatchSwitch
	b := f.Entry
	for {
		// one tick per block transition: empty-block cycles (a miscompiled
		// infinite loop whose body folded away) must still exhaust the
		// step budget
		m.tick()
		ins := b.Instrs
		if threaded {
			for i := 0; i < len(ins); {
				m.tick()
				i += opHandlers[ins[i].Op](m, f, b, ins, i, regs, vars)
			}
		} else {
			for i := 0; i < len(ins); {
				m.tick()
				i += m.execInstrN(f, b, ins, i, regs, vars)
			}
		}
		switch b.Term.Kind {
		case TermJmp:
			b = b.Term.To
		case TermBr:
			m.cov.Hit("vm.branch")
			taken := false
			if m.brReady {
				taken = m.brTaken
				m.brReady = false
			} else {
				taken = !regs[b.Term.Cond].IsZero()
			}
			if taken {
				b = b.Term.To
			} else {
				b = b.Term.Else
			}
		case TermRet:
			if b.Term.HasVal {
				return regs[b.Term.Val], true
			}
			return interp.Value{}, false
		}
		if b == nil {
			m.trap("fell off the CFG in %s", f.Name)
		}
	}
}

// memVars returns the function's frame-allocated locals (locals only:
// globals are shared, statics persist separately) in declaration order,
// cached on first use. The order is load-bearing: frame objects allocate
// in this order, and object IDs are observable through pointer-to-integer
// conversion, so iteration-order nondeterminism here would leak into
// program output.
func (f *Func) memVars() []*cc.Symbol {
	if !f.memListed {
		for sym := range f.MemVars {
			if sym.Scope.Parent != nil && sym.Storage != cc.StorageStatic {
				f.memList = append(f.memList, sym)
			}
		}
		sort.Slice(f.memList, func(i, j int) bool { return f.memList[i].ID < f.memList[j].ID })
		f.memListed = true
	}
	return f.memList
}

func (m *vm) varObj(f *Func, sym *cc.Symbol, vars map[*cc.Symbol]*interp.Object) *interp.Object {
	if obj, ok := m.statics[sym]; ok {
		return obj
	}
	if sym.Scope.Parent == nil {
		if obj, ok := m.globals[sym]; ok {
			return obj
		}
		m.trap("unknown global %s", sym.Name)
	}
	if obj, ok := vars[sym]; ok {
		return obj
	}
	m.trap("unknown local %s in %s", sym.Name, f.Name)
	return nil
}

// Per-opcode execution bodies, shared verbatim by the switch engine
// (execInstr) and the threaded handler table (dispatch.go) so the two
// engines cannot drift.

func (m *vm) execConst(in *Instr, regs []interp.Value) {
	switch {
	case in.Val.IsStr:
		regs[in.Dst] = interp.PtrValue(interp.Pointer{Obj: m.internStr(in.Val.Str), Elem: cc.TypeChar}, in.Type)
	case in.Val.IsFloat:
		regs[in.Dst] = interp.FloatValue(in.Val.F, in.Type)
	default:
		regs[in.Dst] = interp.IntValue(in.Val.I, in.Type)
	}
}

func (m *vm) execBin(in *Instr, regs []interp.Value) {
	m.cov.Hit("vm.bin")
	m.cov.HitOp("vm.bin", in.BinOp)
	regs[in.Dst] = m.binop(in.BinOp, regs[in.A], regs[in.B], in.Type)
}

func (m *vm) execAddrVar(f *Func, in *Instr, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) {
	obj := m.varObj(f, in.Sym, vars)
	regs[in.Dst] = interp.PtrValue(interp.Pointer{Obj: obj, Off: 0, Elem: scalarOf(in.Sym.Type)}, &cc.PointerType{Elem: in.Sym.Type})
}

func (m *vm) execAddrIdx(in *Instr, regs []interp.Value) {
	base := regs[in.A]
	if base.Kind != interp.VPtr {
		m.trap("address arithmetic on non-pointer at %s", in.Pos)
	}
	idx := regs[in.B]
	np := base.P
	np.Off += int(idx.I()) * in.Scale
	regs[in.Dst] = interp.PtrValue(np, base.Typ())
}

func (m *vm) execLoad(in *Instr, regs []interp.Value) {
	m.cov.Hit("vm.load")
	v := regs[in.A]
	if v.Kind != interp.VPtr {
		m.trap("load through non-pointer at %s", in.Pos)
	}
	p := v.P
	if p.IsNull() || !p.Obj.Live || p.Off < 0 || p.Off >= len(p.Obj.Cells) {
		m.trap("segmentation fault (load) at %s", in.Pos)
	}
	regs[in.Dst] = p.Obj.Cells[p.Off].Val
}

func (m *vm) execStore(in *Instr, regs []interp.Value) {
	m.cov.Hit("vm.store")
	v := regs[in.A]
	if v.Kind != interp.VPtr {
		m.trap("store through non-pointer at %s", in.Pos)
	}
	p := v.P
	if p.IsNull() || !p.Obj.Live || p.Off < 0 || p.Off >= len(p.Obj.Cells) {
		m.trap("segmentation fault (store) at %s", in.Pos)
	}
	p.Obj.Cells[p.Off] = interp.Cell{Val: regs[in.B], Init: true}
}

func (m *vm) execInstr(f *Func, in *Instr, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) {
	switch in.Op {
	case OpConst:
		m.execConst(in, regs)
	case OpCopy:
		regs[in.Dst] = regs[in.A]
	case OpBin:
		m.execBin(in, regs)
	case OpUn:
		regs[in.Dst] = m.unop(in.UnOp, regs[in.A], in.Type)
	case OpConv:
		regs[in.Dst] = convertVal(regs[in.A], in.Type, m)
	case OpAddrVar:
		m.execAddrVar(f, in, regs, vars)
	case OpAddrIdx:
		m.execAddrIdx(in, regs)
	case OpLoad:
		m.execLoad(in, regs)
	case OpStore:
		m.execStore(in, regs)
	case OpCall:
		m.execCall(f, in, regs, vars)
	default:
		m.trap("unknown opcode %d", in.Op)
	}
}

func (m *vm) execCall(f *Func, in *Instr, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) {
	switch in.Name {
	case "printf":
		m.cov.Hit("vm.printf")
		if len(in.Args) == 0 {
			m.trap("printf without format")
		}
		format, ok := m.readStr(regs[in.Args[0]])
		if !ok {
			m.trap("printf: bad format pointer")
		}
		argi := 1
		next := func() (interp.Value, bool) {
			if argi >= len(in.Args) {
				return interp.Value{}, false
			}
			v := regs[in.Args[argi]]
			argi++
			return v, true
		}
		out, _ := interp.FormatPrintf(format, next, m.readStr)
		m.out = append(m.out, out...)
		if len(m.out) > m.cfg.MaxOutput {
			panic(vmTimeout{})
		}
		if in.Dst != NoReg {
			regs[in.Dst] = interp.IntValue(int64(len(out)), cc.TypeInt)
		}
		return
	case "abort":
		panic(vmAbort{})
	case "exit":
		code := 0
		if len(in.Args) > 0 {
			code = int(uint8(regs[in.Args[0]].I()))
		}
		panic(vmExit{code: code})
	}
	callee, ok := m.prog.Funcs[in.Name]
	if !ok {
		m.trap("undefined function %s", in.Name)
	}
	// args come from a pooled buffer: the callee copies every value into
	// its own registers or parameter objects before returning, so the
	// buffer can be recycled as soon as the call completes
	args := m.st.getArgs(len(in.Args))
	for i, a := range in.Args {
		args[i] = regs[a]
	}
	v, has := m.call(callee, args)
	m.st.putArgs(args)
	if in.Dst != NoReg {
		if !has {
			// the binary returns whatever was in the result register:
			// deterministically zero in this model
			v = interp.IntValue(0, cc.TypeInt)
		}
		regs[in.Dst] = v
	}
}

func (m *vm) readStr(v interp.Value) (string, bool) {
	if v.Kind != interp.VPtr || v.P.IsNull() {
		return "", false
	}
	var sb strings.Builder
	p := v.P
	for n := 0; n < 1<<16; n++ {
		if !p.Obj.Live || p.Off < 0 || p.Off >= len(p.Obj.Cells) {
			return "", false
		}
		c := p.Obj.Cells[p.Off].Val
		if c.I() == 0 {
			return sb.String(), true
		}
		sb.WriteByte(byte(c.I()))
		p.Off++
	}
	return "", false
}

// ---------------------------------------------------------------- arith

func (m *vm) unop(op string, a interp.Value, t cc.Type) interp.Value {
	switch op {
	case "-":
		if a.Kind == interp.VFloat {
			return interp.FloatValue(-a.F(), t)
		}
		return m.truncTo(-a.I(), t)
	case "~":
		return m.truncTo(^a.I(), t)
	case "!":
		if a.IsZero() {
			return interp.IntValue(1, cc.TypeInt)
		}
		return interp.IntValue(0, cc.TypeInt)
	case "+":
		return a
	default:
		m.trap("unknown unary %s", op)
		return interp.Value{}
	}
}

// truncTo truncates to a type's width; the seeded "vm-uchar-wrap" bug skips
// the truncation of unsigned char results (the backend "forgets" the
// zero-extension), a defined-behavior miscompilation.
func (m *vm) truncTo(v int64, t cc.Type) interp.Value {
	if bt, ok := t.(*cc.BasicType); ok && bt.Kind == cc.UChar && m.bugs.Active("vm-uchar-wrap") {
		return interp.RawIntValue(v, t)
	}
	return interp.IntValue(v, t)
}

func (m *vm) binop(op string, a, b interp.Value, t cc.Type) interp.Value {
	if a.Kind == interp.VPtr || b.Kind == interp.VPtr {
		return m.ptrBinop(op, a, b)
	}
	if a.Kind == interp.VFloat || b.Kind == interp.VFloat {
		x, y := interp.ToFloat(a), interp.ToFloat(b)
		switch op {
		case "+":
			return interp.FloatValue(x+y, t)
		case "-":
			return interp.FloatValue(x-y, t)
		case "*":
			return interp.FloatValue(x*y, t)
		case "/":
			return interp.FloatValue(x/y, t)
		case "==", "!=", "<", ">", "<=", ">=":
			return boolVal(floatCmp(op, x, y))
		default:
			m.trap("bad float op %s", op)
		}
	}
	unsigned := false
	if bt, ok := t.(*cc.BasicType); ok {
		unsigned = bt.IsUnsigned()
	}
	x, y := a.I(), b.I()
	switch op {
	case "+":
		return m.truncTo(x+y, t)
	case "-":
		return m.truncTo(x-y, t)
	case "*":
		return m.truncTo(x*y, t)
	case "/":
		if y == 0 {
			m.trap("integer division by zero (SIGFPE)")
		}
		if x == math.MinInt64 && y == -1 {
			m.trap("integer overflow trap (SIGFPE)")
		}
		if unsigned {
			return m.truncTo(int64(uint64(x)/uint64(y)), t)
		}
		return m.truncTo(x/y, t)
	case "%":
		if y == 0 {
			m.trap("integer division by zero (SIGFPE)")
		}
		if x == math.MinInt64 && y == -1 {
			m.trap("integer overflow trap (SIGFPE)")
		}
		if unsigned {
			return m.truncTo(int64(uint64(x)%uint64(y)), t)
		}
		return m.truncTo(x%y, t)
	case "&":
		return m.truncTo(x&y, t)
	case "|":
		return m.truncTo(x|y, t)
	case "^":
		return m.truncTo(x^y, t)
	case "<<":
		// hardware masks the shift count
		return m.truncTo(x<<uint(y&63), t)
	case ">>":
		if unsigned {
			w := uint(64)
			if bt, ok := t.(*cc.BasicType); ok {
				switch bt.Kind {
				case cc.UChar:
					w = 8
				case cc.UShort:
					w = 16
				case cc.UInt:
					w = 32
				}
			}
			ux := uint64(x)
			if w < 64 {
				ux &= uint64(1)<<w - 1
			}
			return m.truncTo(int64(ux>>uint(y&63)), t)
		}
		return m.truncTo(x>>uint(y&63), t)
	case "==", "!=", "<", ">", "<=", ">=":
		if unsigned {
			return boolVal(ucmp(op, uint64(x), uint64(y)))
		}
		return boolVal(scmp(op, x, y))
	default:
		m.trap("bad int op %s", op)
	}
	return interp.Value{}
}

func boolVal(b bool) interp.Value {
	if b {
		return interp.IntValue(1, cc.TypeInt)
	}
	return interp.IntValue(0, cc.TypeInt)
}

func floatCmp(op string, a, b float64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func scmp(op string, a, b int64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func ucmp(op string, a, b uint64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func (m *vm) ptrBinop(op string, a, b interp.Value) interp.Value {
	switch op {
	case "+", "-":
		if a.Kind == interp.VPtr && b.Kind == interp.VInt {
			np := a.P
			d := int(b.I()) * cellCountOf(np.Elem)
			if op == "-" {
				d = -d
			}
			np.Off += d
			return interp.PtrValue(np, a.Typ())
		}
		if a.Kind == interp.VInt && b.Kind == interp.VPtr && op == "+" {
			np := b.P
			np.Off += int(a.I()) * cellCountOf(np.Elem)
			return interp.PtrValue(np, b.Typ())
		}
		if a.Kind == interp.VPtr && b.Kind == interp.VPtr && op == "-" {
			scale := cellCountOf(a.P.Elem)
			if scale == 0 {
				scale = 1
			}
			return interp.IntValue(int64((a.P.Off-b.P.Off)/scale), cc.TypeLong)
		}
	case "==", "!=":
		same := false
		if a.Kind == interp.VPtr && b.Kind == interp.VPtr {
			same = a.P.Obj == b.P.Obj && a.P.Off == b.P.Off
		} else if a.Kind == interp.VInt && a.I() == 0 && b.Kind == interp.VPtr {
			same = b.P.IsNull()
		} else if b.Kind == interp.VInt && b.I() == 0 && a.Kind == interp.VPtr {
			same = a.P.IsNull()
		}
		if op == "!=" {
			same = !same
		}
		return boolVal(same)
	case "<", ">", "<=", ">=":
		if a.Kind == interp.VPtr && b.Kind == interp.VPtr {
			return boolVal(scmp(op, int64(a.P.Off), int64(b.P.Off)))
		}
	}
	m.trap("bad pointer op %s", op)
	return interp.Value{}
}

// convertVal converts v to type t with the VM's hardware semantics.
func convertVal(v interp.Value, t cc.Type, m *vm) interp.Value {
	switch tt := t.(type) {
	case *cc.PointerType:
		if v.Kind == interp.VPtr {
			np := v.P
			np.Elem = tt.Elem
			return interp.PtrValue(np, t)
		}
		if v.Kind == interp.VInt && v.I() == 0 {
			return interp.PtrValue(interp.Pointer{Elem: tt.Elem}, t)
		}
		return interp.PtrValue(interp.Pointer{Obj: nil, Off: int(v.I()), Elem: tt.Elem}, t)
	case *cc.BasicType:
		if tt.IsFloat() {
			return interp.FloatValue(interp.ToFloat(v), t)
		}
		switch v.Kind {
		case interp.VFloat:
			f := v.F()
			if math.IsNaN(f) || f > 9.2e18 || f < -9.2e18 {
				return interp.IntValue(0, t) // saturate deterministically
			}
			return m.truncTo(int64(f), t)
		case interp.VPtr:
			addr := int64(0)
			if v.P.Obj != nil {
				addr = int64(v.P.Obj.ID)*1_000_000 + int64(v.P.Off)
			}
			return m.truncTo(addr, t)
		default:
			return m.truncTo(v.I(), t)
		}
	}
	return v
}
