package minicc

import (
	"strings"
	"testing"

	"spe/internal/cc"
	"spe/internal/interp"
)

// differential programs: every one is UB-free, so the unseeded compiler
// must reproduce the reference interpreter's output and exit code exactly
// at every optimization level.
var diffPrograms = []string{
	`int main() { return 2 + 3 * 4; }`,
	`int main() { int a = 1, b = 2; a = b; return a + b; }`,
	`int main() { int s = 0, i; for (i = 1; i <= 10; i++) s += i; return s; }`,
	`int main() { int i = 0; do i++; while (i < 3); return i; }`,
	`int main() { int i, s = 0; for (i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; s += i; } return s; }`,
	`int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`,
	`int counter() { static int n = 0; n++; return n; }
int main() { counter(); counter(); return counter(); }`,
	`int a = 0;
int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }`,
	`int main() { int arr[5] = {1,2,3,4,5}; int *p = arr; p = p + 2; return *p + p[1] + *(p - 1); }`,
	`struct s { int x; int y; };
struct s v;
int main() { v.x = 3; v.y = 4; return v.x + v.y; }`,
	`struct s { int x; int y; };
int main() { struct s a = {1,2}, b; b = a; b.x += 10; return a.x + b.x + b.y; }`,
	`struct s { int c; };
struct s a, b, c;
int d; int e;
int main() { b.c = 1; c.c = 2; return e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c; }`,
	`int main() { int a, b = 1; a = b - b; if (a) a = a - b; return a; }`,
	`int main() { int a, b = 1; a = b - b; if (b) a = b - b; return a + b; }`,
	`int main() { int x = 0; { int y = 2; x = y; } return x; }`,
	`int main() { int i = 0;
loop:
    i++;
    if (i < 5) goto loop;
    return i; }`,
	`int main() { int *p = 0;
trick:
    if (p) return *p;
    int x = 0;
    p = &x;
    goto trick;
    return 9; }`,
	`int g;
void setg(int v) { g = v; }
int main() { setg(3); setg(7); return g; }`,
	`int main() { unsigned int u = 4294967295u; u = u + 1u; return (int)u; }`,
	`int main() { unsigned char ch = 200; ch = ch + 100; return ch; }`,
	`int main() { double d = 1.5; d = d * 4.0; return (int)d; }`,
	`int main() { printf("%d %u %x %c %s|", -1, 7u, 255, 65, "hi"); printf("%05d", 42); return 0; }`,
	`int main() { int a = 5; a++; ++a; a--; int b = a++; return a * 10 + b; }`,
	`int main() { int a = 1; a <<= 3; a >>= 1; a |= 2; a &= 6; a ^= 1; return a; }`,
	`int main() { int x = 0; return (x && (1 / x)) + 7; }`,
	`int main() { int x = 1; return (x || (1 / 0)) + 7; }`,
	`int main() { int a; a = (1, 2, 3); return a; }`,
	`int main() { return (int)sizeof(int) + (int)sizeof(double); }`,
	`int m[2][3];
int main() { m[1][2] = 7; m[0][1] = 3; return m[1][2] + m[0][1]; }`,
	`int main() { char *s = "abc"; return s[0] + s[2] - 2 * 'a' - 2; }`,
	`int sum(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }
int main() { return sum(10) + sum(3); }`,
	`int main() { int s = 0; for (int i = 0; i < 4; i++) for (int j = 0; j < 3; j++) s += i * j; return s; }`,
	`int g1 = 5, g2 = 7;
int main() { int t = g1; g1 = g2; g2 = t; return g1 * 10 + g2; }`,
	`int main() { int a = 10, b = 3; return a / b * 100 + a % b; }`,
	`int main() { long l = 1234567l; l = l * 1000l; return (int)(l % 97l); }`,
	`int main() { int v = 5; int *p = &v; int **pp = &p; **pp = 9; return v; }`,
	`int main() { int a = 3; int b = a > 2 ? a * 2 : a - 1; return b; }`,
	`int main() { exit(3); return 0; }`,
	`int f() { return 1; } int g() { return 2; }
int main() { return f() * 10 + g(); }`,
}

func analyzeT(t *testing.T, src string) *cc.Program {
	t.Helper()
	f, err := cc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	return prog
}

func TestDifferentialUnseededCompilerMatchesReference(t *testing.T) {
	for _, src := range diffPrograms {
		prog := analyzeT(t, src)
		ref := interp.Run(prog, interp.Config{})
		if !ref.Defined() {
			t.Fatalf("reference finds UB/limit in supposedly clean program:\n%s\nUB=%v Limit=%v", src, ref.UB, ref.Limit)
		}
		for _, opt := range OptLevels {
			c := &Compiler{Opt: opt, Seeded: false, Coverage: NewCoverage()}
			ro := c.Run(prog, ExecConfig{})
			if !ro.Compile.Ok() {
				t.Errorf("-O%d: compile failed: crash=%v timeout=%v err=%v\n%s",
					opt, ro.Compile.Crash, ro.Compile.Timeout, ro.Compile.Err, src)
				continue
			}
			ex := ro.Exec
			if ref.Aborted != ex.Aborted {
				t.Errorf("-O%d: abort mismatch\n%s", opt, src)
				continue
			}
			if !ex.Ok() && !ex.Aborted {
				t.Errorf("-O%d: executable trapped: %q timeout=%v\n%s", opt, ex.Trap, ex.Timeout, src)
				continue
			}
			if ex.Exit != ref.Exit || ex.Output != ref.Output {
				t.Errorf("-O%d: exit/output mismatch: got (%d, %q), want (%d, %q)\n%s",
					opt, ex.Exit, ex.Output, ref.Exit, ref.Output, src)
			}
		}
	}
}

func TestIRStructure(t *testing.T) {
	prog := analyzeT(t, `int main() { int a = 1; if (a) a = 2; return a; }`)
	irp, err := Lower(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := irp.Funcs["main"]
	if f == nil {
		t.Fatal("no main")
	}
	if f.Entry == nil || len(f.Blocks) < 3 {
		t.Errorf("blocks = %d, want >= 3 (entry/then/join)", len(f.Blocks))
	}
	s := f.String()
	if !strings.Contains(s, "br ") {
		t.Errorf("missing branch in IR:\n%s", s)
	}
}

func TestOptimizationActuallyOptimizes(t *testing.T) {
	// constant folding + propagation must shrink `return 2+3*4` to a
	// single constant return at -O2
	prog := analyzeT(t, `int main() { int a = 2, b = 3, c = 4; return a + b * c; }`)
	count := func(opt int) int {
		c := &Compiler{Opt: opt}
		out := c.Compile(prog)
		if !out.Ok() {
			t.Fatalf("-O%d failed: %+v", opt, out)
		}
		n := 0
		for _, b := range out.Program.Funcs["main"].Blocks {
			n += len(b.Instrs)
		}
		return n
	}
	n0, n2 := count(0), count(2)
	if n2 >= n0 {
		t.Errorf("-O2 (%d instrs) not smaller than -O0 (%d instrs)", n2, n0)
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	prog := analyzeT(t, `int main() { int s = 0, i; for (i = 0; i < 4; i++) s += i; return s; }`)
	irp, err := Lower(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := irp.Funcs["main"]
	dom := dominators(f)
	// the entry dominates everything
	for _, b := range reachable(f) {
		if !dom[b][f.Entry] {
			t.Errorf("entry does not dominate b%d", b.ID)
		}
	}
	loops := naturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if len(loops[0].body) < 2 {
		t.Errorf("loop body too small: %d", len(loops[0].body))
	}
}

func TestCoverageRecording(t *testing.T) {
	prog := analyzeT(t, `int main() { int s = 0, i; for (i = 0; i < 4; i++) s += i; return s; }`)
	cov := NewCoverage()
	c := &Compiler{Opt: 3, Coverage: cov}
	ro := c.Run(prog, ExecConfig{})
	if !ro.Compile.Ok() || !ro.Exec.Ok() {
		t.Fatalf("run failed: %+v", ro)
	}
	if cov.LineCoverage() <= 0 || cov.LineCoverage() > 1 {
		t.Errorf("line coverage = %v", cov.LineCoverage())
	}
	if cov.FunctionCoverage() <= 0.4 {
		t.Errorf("function coverage = %v, expected most components touched", cov.FunctionCoverage())
	}
	// -O0 coverage must be strictly lower than -O3
	cov0 := NewCoverage()
	(&Compiler{Opt: 0, Coverage: cov0}).Run(prog, ExecConfig{})
	if cov0.LineCoverage() >= cov.LineCoverage() {
		t.Errorf("-O0 coverage %v >= -O3 coverage %v", cov0.LineCoverage(), cov.LineCoverage())
	}
}

func TestCoverageUnregisteredSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unregistered site did not panic")
		}
	}()
	NewCoverage().Hit("nonexistent.site")
}

func TestBugRegistryValid(t *testing.T) {
	if err := CheckRegistry(); err != nil {
		t.Fatal(err)
	}
	// hooks referenced in code must exist in the registry: spot checks
	for _, hook := range []string{
		"fold-ternary-equal-operands", "alias-store-forward",
		"dce-dead-store-call", "licm-hoist-conditional", "vm-uchar-wrap",
	} {
		found := false
		for _, b := range Registry() {
			if b.Hook == hook {
				found = true
			}
		}
		if !found {
			t.Errorf("hook %q not in registry", hook)
		}
	}
}

func TestBugsForVersionSelection(t *testing.T) {
	// trunk at -O3 has the most active bugs
	trunk := BugsFor(len(Versions)-1, 3)
	old := BugsFor(0, 0)
	nTrunk, nOld := len(trunk.active), len(old.active)
	if nTrunk <= nOld {
		t.Errorf("trunk -O3 active bugs (%d) <= 4.8 -O0 (%d)", nTrunk, nOld)
	}
	// a bug fixed in 5.3 is inactive from 5.3 on
	for _, b := range Registry() {
		if b.FixedIn < 0 {
			continue
		}
		s := BugsFor(b.FixedIn, 3)
		if s.Active(b.Hook) {
			t.Errorf("bug %s active in version where it is fixed", b.ID)
		}
	}
}

// --- seeded bug triggering ---

func TestSeededFoldTernaryCrash(t *testing.T) {
	// paper Figure 3 / bug 69801: identical second and third operands of a
	// conditional inside a member access
	src := `
struct s { int c; };
struct s a, b, c;
int d; int e;
int main() { e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c; return 0; }`
	prog := analyzeT(t, src)
	c := &Compiler{Version: "trunk", Opt: 0, Seeded: true}
	out := c.Compile(prog)
	if out.Crash == nil {
		t.Fatal("seeded fold-ternary bug did not crash")
	}
	if out.Crash.BugID != "69801" {
		t.Errorf("crash bug = %s, want 69801", out.Crash.BugID)
	}
	if !strings.Contains(out.Crash.Signature, "operand_equal_p") {
		t.Errorf("signature = %q", out.Crash.Signature)
	}
	// the non-matching variant (paper's original line 7) must not crash
	srcOK := strings.Replace(src, "e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c",
		"e ? (e == 0 ? b : c).c : (d == 0 ? b : c).c", 1)
	out = c.Compile(analyzeT(t, srcOK))
	if out.Crash != nil {
		t.Errorf("non-equal operands crashed: %v", out.Crash)
	}
}

func TestSeededAliasStoreForwardWrongCode(t *testing.T) {
	// paper Figure 2 / bug 69951: store forwarded across a may-alias store
	src := `
int a = 0;
int main() {
    int *p = &a, *q = &a;
    a = 0;
    *p = 1;
    *q = 2;
    return a;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	if !ref.Defined() || ref.Exit != 2 {
		t.Fatalf("reference: %+v", ref)
	}
	buggy := &Compiler{Version: "trunk", Opt: 2, Seeded: true}
	ro := buggy.Run(prog, ExecConfig{})
	if !ro.Compile.Ok() {
		t.Fatalf("compile: %+v", ro.Compile)
	}
	if ro.Exec.Exit == ref.Exit {
		t.Errorf("seeded alias bug not triggered: exit %d", ro.Exec.Exit)
	}
	// correct compiler agrees with the reference
	good := &Compiler{Opt: 2, Seeded: false}
	ro2 := good.Run(prog, ExecConfig{})
	if ro2.Exec.Exit != ref.Exit {
		t.Errorf("unseeded compiler wrong: exit %d, want %d", ro2.Exec.Exit, ref.Exit)
	}
}

func TestSeededDeadStoreCallWrongCode(t *testing.T) {
	// model of Clang 26994: a store before a call eliminated although the
	// callee observes it
	src := `
int g = 0;
int sum = 0;
void observe() { sum += g; }
int main() {
    g = 1;
    observe();
    g = 2;
    observe();
    return sum;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	if ref.Exit != 3 {
		t.Fatalf("reference exit = %d, want 3", ref.Exit)
	}
	buggy := &Compiler{Version: "trunk", Opt: 1, Seeded: true}
	ro := buggy.Run(prog, ExecConfig{})
	if !ro.Compile.Ok() {
		t.Fatalf("compile: %+v", ro.Compile)
	}
	if ro.Exec.Exit == ref.Exit {
		t.Errorf("seeded dead-store bug not triggered")
	}
	good := &Compiler{Opt: 1}
	if got := good.Run(prog, ExecConfig{}).Exec.Exit; got != ref.Exit {
		t.Errorf("unseeded compiler wrong: %d", got)
	}
}

func TestSeededConstfoldSubSelfWrongCode(t *testing.T) {
	// paper Figure 1 P2: a = b - b with constant-propagated b
	src := `
int main() {
    int a, b = 1;
    a = b - b;
    if (a)
        a = 5;
    else
        a = 0;
    return a;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	if ref.Exit != 0 {
		t.Fatalf("reference exit = %d", ref.Exit)
	}
	buggy := &Compiler{Version: "trunk", Opt: 2, Seeded: true}
	ro := buggy.Run(prog, ExecConfig{})
	if !ro.Compile.Ok() {
		t.Fatalf("compile: %+v", ro.Compile)
	}
	if ro.Exec.Exit == ref.Exit {
		t.Errorf("seeded constfold-sub-self not triggered (exit %d)", ro.Exec.Exit)
	}
}

func TestSeededLicmHoistTrap(t *testing.T) {
	// division guarded inside the loop gets hoisted by the buggy LICM and
	// traps when the guard is never true
	src := `
int main() {
    int z = 0;
    int s = 0;
    int i;
    for (i = 0; i < 4; i++) {
        if (i > 100) {
            s = s + 10 / z;
        }
        s = s + i;
    }
    return s;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	if !ref.Defined() || ref.Exit != 6 {
		t.Fatalf("reference: %+v", ref)
	}
	good := &Compiler{Opt: 3}
	if ro := good.Run(prog, ExecConfig{}); !ro.Exec.Ok() || ro.Exec.Exit != 6 {
		t.Fatalf("unseeded -O3 wrong: %+v", ro.Exec)
	}
	buggy := &Compiler{Version: "trunk", Opt: 3, Seeded: true}
	ro := buggy.Run(prog, ExecConfig{})
	if ro.Compile.Ok() && ro.Exec.Ok() && ro.Exec.Exit == 6 {
		t.Errorf("seeded licm bug not triggered")
	}
}

func TestSeededUCharWrap(t *testing.T) {
	src := `
int main() {
    unsigned char c = 200;
    c = c + 100;
    return c == 44;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	if ref.Exit != 1 {
		t.Fatalf("reference exit = %d", ref.Exit)
	}
	buggy := &Compiler{Version: "trunk", Opt: 0, Seeded: true}
	ro := buggy.Run(prog, ExecConfig{})
	if ro.Exec.Exit == 1 {
		t.Errorf("seeded uchar-wrap not triggered")
	}
}

func TestSeededBugsFixedInLaterVersions(t *testing.T) {
	// frontend-char-shift crashes in 4.8 but is fixed in 5.3
	src := `int main() { char c = 1; int r = c << 2; return r; }`
	prog := analyzeT(t, src)
	old := &Compiler{Version: "4.8", Opt: 0, Seeded: true}
	if out := old.Compile(prog); out.Crash == nil {
		t.Error("char-shift bug not triggered in 4.8")
	}
	newer := &Compiler{Version: "5.3", Opt: 0, Seeded: true}
	if out := newer.Compile(prog); out.Crash != nil {
		t.Errorf("char-shift bug still present in 5.3: %v", out.Crash)
	}
}

func TestTimeoutPerformanceBug(t *testing.T) {
	// a long block of foldable constant arithmetic blows the compile-time
	// budget when the performance bug is seeded
	var sb strings.Builder
	sb.WriteString("int main() { int x = 0;\n")
	for i := 0; i < 60; i++ {
		sb.WriteString("x = x + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8;\n")
	}
	sb.WriteString("return x > 0; }")
	prog := analyzeT(t, sb.String())
	buggy := &Compiler{Version: "trunk", Opt: 2, Seeded: true, WorkBudget: 200_000}
	out := buggy.Compile(prog)
	if out.Timeout == nil && out.Crash == nil {
		t.Errorf("performance bug not triggered")
	}
	good := &Compiler{Opt: 2, WorkBudget: 200_000}
	if out := good.Compile(prog); !out.Ok() {
		t.Errorf("unseeded compiler timed out: %+v", out)
	}
}
