package minicc

import (
	"fmt"

	"spe/internal/cc"
)

// CrashError is a compiler crash (an internal assertion failure). The
// harness matches the paper's Table 3 by collecting crash signatures.
type CrashError struct {
	Signature string // e.g. "internal compiler error: in fold_ternary, at constfold.c:812"
	Component string
	BugID     string
}

func (e *CrashError) Error() string { return e.Signature }

// UnsupportedError reports a construct outside the compilable subset.
type UnsupportedError struct {
	Pos cc.Pos
	Msg string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("%s: minicc: unsupported: %s", e.Pos, e.Msg)
}

type lowerer struct {
	f        *Func
	cur      *Block
	cov      *Coverage
	bugs     *BugSet
	labels   map[string]*Block
	breaks   []*Block
	conts    []*Block
	addrOf   map[*cc.Symbol]bool
	retType  cc.Type
	structsT map[string]*cc.StructType
	irp      *Program
	// tr, when non-nil, records the template trace of this lowering:
	// coverage hits and seeded-crash callsites in emission order, plus the
	// IR sites that depend on hole identifiers (see template.go). Hole uses
	// of register-promoted variables are lowered to per-hole sentinel
	// registers that resolveSentinels rewrites to the real registers after
	// the function is complete, which is how the trace learns exactly which
	// operand slots a hole's value flows into.
	tr *lowerTrace
}

// Lower translates an analyzed program to IR. It can crash with a
// *CrashError when a seeded frontend bug is triggered.
func Lower(prog *cc.Program, bugs *BugSet, cov *Coverage) (*Program, error) {
	return lowerProgram(prog, bugs, cov, nil)
}

func lowerProgram(prog *cc.Program, bugs *BugSet, cov *Coverage, tr *lowerTrace) (irp *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*CrashError); ok {
				err = ce
				return
			}
			if ue, ok := r.(*UnsupportedError); ok {
				err = ue
				return
			}
			panic(r)
		}
	}()
	if bugs == nil {
		bugs = EmptyBugSet()
	}
	lw := &lowerer{cov: cov, bugs: bugs, tr: tr}
	lw.hit("lower.entry")
	irp = &Program{Funcs: make(map[string]*Func), Source: prog}
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			irp.Globals = append(irp.Globals, vd)
		}
	}
	for fi, fd := range prog.Funcs {
		lw := &lowerer{
			cov:      cov,
			bugs:     bugs,
			labels:   make(map[string]*Block),
			addrOf:   make(map[*cc.Symbol]bool),
			retType:  fd.Ret,
			structsT: prog.File.Structs,
			irp:      irp,
			tr:       tr,
		}
		if tr != nil {
			tr.curFunc = fi
		}
		f := lw.lowerFunc(fd)
		if tr != nil {
			tr.resolveSentinels(fi, f)
		}
		irp.Funcs[fd.Name] = f
	}
	return irp, nil
}

// hit records a coverage hit, mirrored into the template trace.
func (l *lowerer) hit(site string) {
	l.cov.Hit(site)
	if l.tr != nil {
		l.tr.events = append(l.tr.events, traceEvent{site: site})
	}
}

// crash guards a seeded-crash callsite whose trigger reads only the AST.
// When tracing, the trigger closure itself is recorded: hole rebinding
// patches the AST in place, so replaying the closure evaluates the trigger
// against each variant's symbols (equal-operand shapes, ternary depths, and
// operand types are exactly the conditions a refill can flip).
func (l *lowerer) crash(hook string, trigger func() bool) {
	l.bugs.MaybeCrash(l.cov, hook, trigger)
	if l.tr != nil {
		l.tr.events = append(l.tr.events, traceEvent{hook: hook, cond: trigger})
	}
}

// crashSticky guards a callsite whose trigger reads transient lowering
// state (the label table and loop context). That state is a function of the
// skeleton's fixed syntax, never of the hole filling, so tracing evaluates
// the trigger once and replays the boolean.
func (l *lowerer) crashSticky(hook string, trigger func() bool) {
	l.bugs.MaybeCrash(l.cov, hook, trigger)
	if l.tr != nil {
		v := trigger()
		l.tr.events = append(l.tr.events, traceEvent{hook: hook, cond: func() bool { return v }})
	}
}

func (l *lowerer) unsupported(pos cc.Pos, format string, args ...interface{}) {
	panic(&UnsupportedError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *lowerer) lowerFunc(fd *cc.FuncDecl) *Func {
	l.hit("lower.func")
	f := &Func{
		Name:    fd.Name,
		Decl:    fd,
		VarRegs: make(map[*cc.Symbol]Reg),
		MemVars: make(map[*cc.Symbol]bool),
	}
	l.f = f
	collectAddrTaken(fd.Body, l.addrOf)
	f.Entry = f.NewBlock("entry")
	l.cur = f.Entry

	for _, p := range fd.Params {
		if p.Sym == nil {
			continue
		}
		l.bindVar(p.Sym)
	}
	l.stmt(fd.Body)
	// implicit return at the end of the function
	if l.cur != nil {
		l.cur.Term = Term{Kind: TermRet, HasVal: false, Pos: fd.Pos}
	}
	// any block left unterminated (e.g. label at end) falls into a return
	for _, b := range f.Blocks {
		if b.Term.To == nil && b.Term.Kind == TermJmp {
			b.Term = Term{Kind: TermRet}
		}
	}
	return f
}

// bindVar decides the storage class of a variable: register-promoted scalar
// or memory object.
func (l *lowerer) bindVar(sym *cc.Symbol) {
	if _, done := l.f.VarRegs[sym]; done {
		return
	}
	if l.f.MemVars[sym] {
		return
	}
	if sym.Scope.Parent == nil || l.addrOf[sym] || isAggregateType(sym.Type) || sym.Storage == cc.StorageStatic {
		l.f.MemVars[sym] = true
		return
	}
	l.f.VarRegs[sym] = l.f.NewReg()
}

func isAggregateType(t cc.Type) bool {
	switch t.(type) {
	case *cc.ArrayType, *cc.StructType:
		return true
	}
	return false
}

func collectAddrTaken(st cc.Stmt, out map[*cc.Symbol]bool) {
	var walkExpr func(cc.Expr)
	walkExpr = func(e cc.Expr) {
		switch e := e.(type) {
		case nil:
		case *cc.UnaryExpr:
			if e.Op == "&" {
				if id, ok := e.X.(*cc.Ident); ok && id.Sym != nil {
					out[id.Sym] = true
				}
			}
			walkExpr(e.X)
		case *cc.PostfixExpr:
			walkExpr(e.X)
		case *cc.BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *cc.AssignExpr:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *cc.CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.T)
			walkExpr(e.F)
		case *cc.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *cc.IndexExpr:
			walkExpr(e.X)
			walkExpr(e.Idx)
		case *cc.MemberExpr:
			walkExpr(e.X)
		case *cc.CastExpr:
			walkExpr(e.X)
		case *cc.SizeofExpr:
			walkExpr(e.X)
		case *cc.CommaExpr:
			for _, x := range e.List {
				walkExpr(x)
			}
		case *cc.InitList:
			for _, x := range e.List {
				walkExpr(x)
			}
		}
	}
	var walk func(cc.Stmt)
	walk = func(st cc.Stmt) {
		switch st := st.(type) {
		case nil:
		case *cc.BlockStmt:
			for _, s := range st.List {
				walk(s)
			}
		case *cc.DeclStmt:
			for _, d := range st.Decls {
				walkExpr(d.Init)
			}
		case *cc.ExprStmt:
			walkExpr(st.X)
		case *cc.IfStmt:
			walkExpr(st.Cond)
			walk(st.Then)
			walk(st.Else)
		case *cc.WhileStmt:
			walkExpr(st.Cond)
			walk(st.Body)
		case *cc.DoWhileStmt:
			walk(st.Body)
			walkExpr(st.Cond)
		case *cc.ForStmt:
			walk(st.Init)
			walkExpr(st.Cond)
			walkExpr(st.Post)
			walk(st.Body)
		case *cc.ReturnStmt:
			walkExpr(st.X)
		case *cc.LabeledStmt:
			walk(st.Stmt)
		}
	}
	walk(st)
}

// emit appends an instruction to the current block.
func (l *lowerer) emit(in Instr) Reg {
	if l.cur == nil {
		// unreachable code after a jump: lower into a dead block
		l.cur = l.f.NewBlock("dead")
	}
	l.cur.Instrs = append(l.cur.Instrs, in)
	return in.Dst
}

func (l *lowerer) constInt(v int64, t cc.Type, pos cc.Pos) Reg {
	r := l.f.NewReg()
	l.emit(Instr{Op: OpConst, Dst: r, Val: Const{I: v}, Type: t, Pos: pos})
	return r
}

// terminate seals the current block and switches to next (which may be nil
// to mark unreachable).
func (l *lowerer) terminate(t Term, next *Block) {
	if l.cur != nil {
		l.cur.Term = t
	}
	l.cur = next
}

func (l *lowerer) labelBlock(name string) *Block {
	b, ok := l.labels[name]
	if !ok {
		b = l.f.NewBlock("label." + name)
		l.labels[name] = b
	}
	return b
}

// ------------------------------------------------------------- statements

func (l *lowerer) stmt(st cc.Stmt) {
	switch st := st.(type) {
	case *cc.BlockStmt:
		for _, s := range st.List {
			l.stmt(s)
		}
	case *cc.DeclStmt:
		for _, d := range st.Decls {
			l.declStmt(d)
		}
	case *cc.ExprStmt:
		l.hit("lower.exprstmt")
		l.exprDiscard(st.X)
	case *cc.EmptyStmt:
	case *cc.IfStmt:
		l.hit("lower.if")
		cond := l.expr(st.Cond)
		thenB := l.f.NewBlock("if.then")
		joinB := l.f.NewBlock("if.join")
		elseB := joinB
		if st.Else != nil {
			elseB = l.f.NewBlock("if.else")
		}
		l.terminate(Term{Kind: TermBr, Cond: cond, To: thenB, Else: elseB, Pos: st.Pos}, thenB)
		l.stmt(st.Then)
		l.terminate(Term{Kind: TermJmp, To: joinB}, elseB)
		if st.Else != nil {
			l.stmt(st.Else)
			l.terminate(Term{Kind: TermJmp, To: joinB}, joinB)
		} else {
			l.cur = joinB
		}
	case *cc.WhileStmt:
		l.hit("lower.while")
		condB := l.f.NewBlock("while.cond")
		bodyB := l.f.NewBlock("while.body")
		exitB := l.f.NewBlock("while.exit")
		l.terminate(Term{Kind: TermJmp, To: condB}, condB)
		cond := l.expr(st.Cond)
		l.terminate(Term{Kind: TermBr, Cond: cond, To: bodyB, Else: exitB, Pos: st.Pos}, bodyB)
		l.breaks = append(l.breaks, exitB)
		l.conts = append(l.conts, condB)
		l.stmt(st.Body)
		l.breaks = l.breaks[:len(l.breaks)-1]
		l.conts = l.conts[:len(l.conts)-1]
		l.terminate(Term{Kind: TermJmp, To: condB}, exitB)
	case *cc.DoWhileStmt:
		l.hit("lower.dowhile")
		bodyB := l.f.NewBlock("do.body")
		condB := l.f.NewBlock("do.cond")
		exitB := l.f.NewBlock("do.exit")
		l.terminate(Term{Kind: TermJmp, To: bodyB}, bodyB)
		l.breaks = append(l.breaks, exitB)
		l.conts = append(l.conts, condB)
		l.stmt(st.Body)
		l.breaks = l.breaks[:len(l.breaks)-1]
		l.conts = l.conts[:len(l.conts)-1]
		l.terminate(Term{Kind: TermJmp, To: condB}, condB)
		cond := l.expr(st.Cond)
		l.terminate(Term{Kind: TermBr, Cond: cond, To: bodyB, Else: exitB, Pos: st.Pos}, exitB)
	case *cc.ForStmt:
		l.hit("lower.for")
		if st.Init != nil {
			l.stmt(st.Init)
		}
		condB := l.f.NewBlock("for.cond")
		bodyB := l.f.NewBlock("for.body")
		postB := l.f.NewBlock("for.post")
		exitB := l.f.NewBlock("for.exit")
		l.terminate(Term{Kind: TermJmp, To: condB}, condB)
		if st.Cond != nil {
			cond := l.expr(st.Cond)
			l.terminate(Term{Kind: TermBr, Cond: cond, To: bodyB, Else: exitB, Pos: st.Pos}, bodyB)
		} else {
			l.terminate(Term{Kind: TermJmp, To: bodyB}, bodyB)
		}
		l.breaks = append(l.breaks, exitB)
		l.conts = append(l.conts, postB)
		l.stmt(st.Body)
		l.breaks = l.breaks[:len(l.breaks)-1]
		l.conts = l.conts[:len(l.conts)-1]
		l.terminate(Term{Kind: TermJmp, To: postB}, postB)
		if st.Post != nil {
			l.exprDiscard(st.Post)
		}
		l.terminate(Term{Kind: TermJmp, To: condB}, exitB)
	case *cc.ReturnStmt:
		l.hit("lower.return")
		t := Term{Kind: TermRet, Pos: st.Pos}
		if st.X != nil {
			t.Val = l.expr(st.X)
			t.HasVal = true
		}
		l.terminate(t, nil)
	case *cc.BreakStmt:
		if len(l.breaks) == 0 {
			l.unsupported(st.Pos, "break outside loop")
		}
		l.terminate(Term{Kind: TermJmp, To: l.breaks[len(l.breaks)-1]}, nil)
	case *cc.ContinueStmt:
		if len(l.conts) == 0 {
			l.unsupported(st.Pos, "continue outside loop")
		}
		l.terminate(Term{Kind: TermJmp, To: l.conts[len(l.conts)-1]}, nil)
	case *cc.GotoStmt:
		l.hit("lower.goto")
		l.crashSticky("frontend-goto-irreducible", func() bool {
			// seeded crash: goto jumping backward into a loop context
			// (modeled on GCC PR69740's irreducible-loop assertion)
			return l.labels[st.Label] != nil && len(l.breaks) > 0
		})
		l.terminate(Term{Kind: TermJmp, To: l.labelBlock(st.Label)}, nil)
	case *cc.LabeledStmt:
		b := l.labelBlock(st.Label)
		l.terminate(Term{Kind: TermJmp, To: b}, b)
		l.stmt(st.Stmt)
	default:
		l.unsupported(st.NodePos(), "statement %T", st)
	}
}

func (l *lowerer) declStmt(d *cc.VarDecl) {
	l.hit("lower.decl")
	sym := d.Sym
	l.bindVar(sym)
	if sym.Storage == cc.StorageStatic {
		// static locals are initialized once at program start, not at each
		// execution of the declaration
		l.irp.Statics = append(l.irp.Statics, d)
		return
	}
	if d.Init == nil {
		return
	}
	if il, ok := d.Init.(*cc.InitList); ok {
		l.lowerInitList(sym, il)
		return
	}
	v := l.expr(d.Init)
	v = l.convTo(v, scalarOf(sym.Type), d.Init.NodePos())
	l.storeVar(sym, v, d.Pos)
}

func (l *lowerer) lowerInitList(sym *cc.Symbol, il *cc.InitList) {
	base := l.f.NewReg()
	l.emit(Instr{Op: OpAddrVar, Dst: base, Sym: sym, Pos: il.Pos})
	// zero-fill then assign listed elements, mirroring C semantics
	total := cellCountOf(sym.Type)
	zero := l.constInt(0, scalarOf(sym.Type), il.Pos)
	for i := 0; i < total; i++ {
		idx := l.constInt(int64(i), cc.TypeInt, il.Pos)
		addr := l.f.NewReg()
		l.emit(Instr{Op: OpAddrIdx, Dst: addr, A: base, B: idx, Scale: 1, Pos: il.Pos})
		l.emit(Instr{Op: OpStore, A: addr, B: zero, Pos: il.Pos})
	}
	l.storeInitCells(base, 0, sym.Type, il)
}

func (l *lowerer) storeInitCells(base Reg, off int, t cc.Type, il *cc.InitList) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		elemCells := cellCountOf(t.Elem)
		for i, e := range il.List {
			if sub, ok := e.(*cc.InitList); ok {
				l.storeInitCells(base, off+i*elemCells, t.Elem, sub)
			} else {
				l.storeCellAt(base, off+i*elemCells, t.Elem, e)
			}
		}
		return off + t.Len*elemCells
	case *cc.StructType:
		fo := off
		for i, e := range il.List {
			if i >= len(t.Fields) {
				break
			}
			ft := t.Fields[i].Type
			if sub, ok := e.(*cc.InitList); ok {
				l.storeInitCells(base, fo, ft, sub)
			} else {
				l.storeCellAt(base, fo, ft, e)
			}
			fo += cellCountOf(ft)
		}
		return off + cellCountOf(t)
	default:
		if len(il.List) == 1 {
			l.storeCellAt(base, off, t, il.List[0])
		}
		return off + 1
	}
}

func (l *lowerer) storeCellAt(base Reg, off int, t cc.Type, e cc.Expr) {
	v := l.expr(e)
	v = l.convTo(v, scalarOf(t), e.NodePos())
	idx := l.constInt(int64(off), cc.TypeInt, e.NodePos())
	addr := l.f.NewReg()
	l.emit(Instr{Op: OpAddrIdx, Dst: addr, A: base, B: idx, Scale: 1, Pos: e.NodePos()})
	l.emit(Instr{Op: OpStore, A: addr, B: v, Pos: e.NodePos()})
}

// storeVar writes a value to a variable (register or memory).
func (l *lowerer) storeVar(sym *cc.Symbol, v Reg, pos cc.Pos) {
	l.bindVar(sym)
	if r, ok := l.f.VarRegs[sym]; ok {
		l.emit(Instr{Op: OpCopy, Dst: r, A: v, Pos: pos})
		return
	}
	addr := l.f.NewReg()
	l.emit(Instr{Op: OpAddrVar, Dst: addr, Sym: sym, Pos: pos})
	l.emit(Instr{Op: OpStore, A: addr, B: v, Pos: pos})
}

func scalarOf(t cc.Type) cc.Type {
	if at, ok := t.(*cc.ArrayType); ok {
		return scalarOf(at.Elem)
	}
	return t
}

func cellCountOf(t cc.Type) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		return t.Len * cellCountOf(t.Elem)
	case *cc.StructType:
		n := 0
		for _, f := range t.Fields {
			n += cellCountOf(f.Type)
		}
		return n
	default:
		return 1
	}
}
