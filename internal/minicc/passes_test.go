package minicc

import (
	"strings"
	"testing"

	"spe/internal/cc"
	"spe/internal/interp"
)

// lowerOne lowers a program and returns the named function's IR.
func lowerOne(t *testing.T, src, fn string) *Func {
	t.Helper()
	irp, err := Lower(analyzeT(t, src), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := irp.Funcs[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return f
}

func newCtx() *passCtx {
	return &passCtx{cov: NewCoverage(), bugs: EmptyBugSet(), budget: 10_000_000}
}

func countOp(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func countBinOp(f *Func, binop string) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpBin && b.Instrs[i].BinOp == binop {
				n++
			}
		}
	}
	return n
}

func TestConstFoldPass(t *testing.T) {
	f := lowerOne(t, `int main() { int a = 2 + 3 * 4; return a; }`, "main")
	p := newCtx()
	constFold(f, p)
	if got := countOp(f, OpBin); got != 0 {
		t.Errorf("binops after folding = %d, want 0\n%s", got, f)
	}
	if p.cov.SiteCount("constfold.bin") == 0 {
		t.Error("no folds recorded")
	}
}

func TestConstFoldBranch(t *testing.T) {
	f := lowerOne(t, `int main() { if (1) return 2; return 3; }`, "main")
	constFold(f, newCtx())
	// the branch on constant 1 must become a jump
	for _, b := range f.Blocks {
		if b.Term.Kind == TermBr {
			t.Errorf("constant branch not folded:\n%s", f)
		}
	}
}

func TestConstFoldRefusesDivByZero(t *testing.T) {
	f := lowerOne(t, `int main() { int z = 0; return 5 / z; }`, "main")
	constFold(f, newCtx())
	if got := countBinOp(f, "/"); got != 1 {
		t.Errorf("division folded away despite zero divisor (%d left)\n%s", got, f)
	}
}

func TestCopyPropPass(t *testing.T) {
	f := lowerOne(t, `int main() { int a = 1; int b = a; int c = b; return c; }`, "main")
	p := newCtx()
	copyProp(f, p)
	if p.cov.SiteCount("copyprop.replace") == 0 {
		t.Errorf("no copies propagated:\n%s", f)
	}
}

func TestCSEPass(t *testing.T) {
	// x*y computed twice with no redefinition between
	f := lowerOne(t, `
int main() {
    int x = 3, y = 4;
    int a = x * y;
    int b = x * y;
    return a + b;
}`, "main")
	p := newCtx()
	cse(f, p)
	if p.cov.SiteCount("cse.hit") == 0 {
		t.Errorf("CSE found nothing:\n%s", f)
	}
}

func TestCSERespectsRedefinition(t *testing.T) {
	// x redefined between the two computations: must NOT CSE
	src := `
int main() {
    int x = 3, y = 4;
    int a = x * y;
    x = 5;
    int b = x * y;
    return a * 100 + b;
}`
	prog := analyzeT(t, src)
	ref := interp.Run(prog, interp.Config{})
	for _, opt := range OptLevels {
		c := &Compiler{Opt: opt}
		ro := c.Run(prog, ExecConfig{})
		if ro.Exec.Exit != ref.Exit {
			t.Errorf("-O%d: CSE across redefinition broke the program: %d vs %d",
				opt, ro.Exec.Exit, ref.Exit)
		}
	}
}

func TestDCEPass(t *testing.T) {
	f := lowerOne(t, `
int main() {
    int a = 1;
    int unused = a * 99;
    return a;
}`, "main")
	p := newCtx()
	constFold(f, p)
	copyProp(f, p)
	before := 0
	for _, b := range f.Blocks {
		before += len(b.Instrs)
	}
	dce(f, p)
	after := 0
	for _, b := range f.Blocks {
		after += len(b.Instrs)
	}
	if after >= before {
		t.Errorf("DCE removed nothing (%d -> %d)\n%s", before, after, f)
	}
}

func TestDeadStoreElimination(t *testing.T) {
	f := lowerOne(t, `
int g;
int main() {
    g = 1;
    g = 2;
    return g;
}`, "main")
	p := newCtx()
	dce(f, p)
	if p.cov.SiteCount("dce.deadstore") == 0 {
		t.Errorf("dead store not eliminated:\n%s", f)
	}
	// semantics preserved
	prog := analyzeT(t, `
int g;
int main() {
    g = 1;
    g = 2;
    return g;
}`)
	c := &Compiler{Opt: 1}
	if ro := c.Run(prog, ExecConfig{}); ro.Exec.Exit != 2 {
		t.Errorf("exit = %d, want 2", ro.Exec.Exit)
	}
}

func TestDeadStoreBlockedByCall(t *testing.T) {
	// a correct compiler must NOT eliminate the first store: the callee
	// observes it
	src := `
int g;
int s;
void obs() { s += g; }
int main() {
    g = 1;
    obs();
    g = 2;
    obs();
    return s;
}`
	prog := analyzeT(t, src)
	for _, opt := range OptLevels {
		c := &Compiler{Opt: opt}
		ro := c.Run(prog, ExecConfig{})
		if ro.Exec.Exit != 3 {
			t.Errorf("-O%d: exit = %d, want 3 (store-before-call eliminated?)", opt, ro.Exec.Exit)
		}
	}
}

func TestSimplifyCFGPass(t *testing.T) {
	f := lowerOne(t, `
int main() {
    int a = 1;
    if (a) { a = 2; } else { a = 3; }
    return a;
}`, "main")
	p := newCtx()
	before := len(f.Blocks)
	simplifyCFG(f, p)
	after := len(f.Blocks)
	if after > before {
		t.Errorf("simplifycfg grew the CFG: %d -> %d", before, after)
	}
	// unreachable code elimination after branch folding
	f2 := lowerOne(t, `int main() { if (0) { return 1; } return 2; }`, "main")
	constFold(f2, p)
	simplifyCFG(f2, p)
	if p.cov.SiteCount("simplifycfg.unreachable") == 0 {
		t.Errorf("unreachable block survived:\n%s", f2)
	}
}

func TestAliasForwardPass(t *testing.T) {
	f := lowerOne(t, `
int g;
int main() {
    g = 7;
    return g;
}`, "main")
	p := newCtx()
	aliasForward(f, p)
	if p.cov.SiteCount("alias.forward") == 0 {
		t.Errorf("store not forwarded to load:\n%s", f)
	}
}

func TestAliasForwardClobberedByPointerStore(t *testing.T) {
	src := `
int g;
int main() {
    int *p = &g;
    g = 7;
    *p = 9;
    return g;
}`
	prog := analyzeT(t, src)
	for _, opt := range OptLevels {
		c := &Compiler{Opt: opt}
		if ro := c.Run(prog, ExecConfig{}); ro.Exec.Exit != 9 {
			t.Errorf("-O%d: exit = %d, want 9 (forwarded across aliasing store?)", opt, ro.Exec.Exit)
		}
	}
}

func TestLICMPass(t *testing.T) {
	f := lowerOne(t, `
int main() {
    int x = 3, y = 4, s = 0;
    for (int i = 0; i < 8; i++) {
        s += x * y;
    }
    return s;
}`, "main")
	p := newCtx()
	licm(f, p)
	if p.cov.SiteCount("licm.hoist") == 0 {
		t.Errorf("invariant x*y not hoisted:\n%s", f)
	}
	if p.cov.SiteCount("licm.loop") == 0 {
		t.Error("no loop detected")
	}
}

func TestLICMDoesNotHoistGuardedDivision(t *testing.T) {
	// correct compiler: the division executes only under the guard
	src := `
int main() {
    int z = 0, s = 0;
    for (int i = 0; i < 4; i++) {
        if (i > 10) { s += 10 / z; }
        s += i;
    }
    return s;
}`
	prog := analyzeT(t, src)
	c := &Compiler{Opt: 3}
	ro := c.Run(prog, ExecConfig{})
	if !ro.Exec.Ok() || ro.Exec.Exit != 6 {
		t.Errorf("correct LICM hoisted a guarded division: %+v", ro.Exec)
	}
}

func TestIRStringDump(t *testing.T) {
	f := lowerOne(t, `int main() { int a = 1; if (a) a = 2; return a; }`, "main")
	s := f.String()
	for _, want := range []string{"func main", "b0:", "const 1", "br ", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("IR dump missing %q:\n%s", want, s)
		}
	}
}

func TestEvalConstBinCorners(t *testing.T) {
	if _, ok := evalConstBin("/", Const{I: 1}, Const{I: 0}, nil); ok {
		t.Error("folded division by zero")
	}
	if _, ok := evalConstBin("+", Const{IsFloat: true, F: 1}, Const{I: 2}, nil); ok {
		t.Error("folded float operands")
	}
	if r, ok := evalConstBin("<<", Const{I: 1}, Const{I: 4}, nil); !ok || r.I != 16 {
		t.Errorf("1<<4 = %v %v", r, ok)
	}
	if _, ok := evalConstBin("<<", Const{I: 1}, Const{I: 99}, nil); ok {
		t.Error("folded oversized shift")
	}
	// truncation honors the result type: 300 wraps to 44 in char
	if r, ok := evalConstBin("+", Const{I: 200}, Const{I: 100}, cc.TypeChar); !ok || r.I != 44 {
		t.Errorf("char truncation = %v %v", r, ok)
	}
}
