package minicc

import (
	"fmt"

	"spe/internal/cc"
)

// passCtx carries instrumentation and the seeded-bug set through the
// optimization pipeline, plus the compile-time work budget used to detect
// performance bugs.
type passCtx struct {
	cov    *Coverage
	bugs   *BugSet
	work   int64
	budget int64
}

// TimeoutError reports compile-time budget exhaustion (the observable
// symptom of a seeded performance bug).
type TimeoutError struct{ Pass string }

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("minicc: compilation timeout in %s pass", e.Pass)
}

func (p *passCtx) tick(n int64, pass string) {
	p.work += n
	if p.budget > 0 && p.work > p.budget {
		panic(&TimeoutError{Pass: pass})
	}
}

// ---------------------------------------------------------------- helpers

// evalConstBin folds an integer binary operation at compile time; ok is
// false for operations the folder refuses (division by zero, floats,
// strings).
func evalConstBin(op string, a, b Const, t cc.Type) (Const, bool) {
	if a.IsStr || b.IsStr || a.IsFloat || b.IsFloat {
		return Const{}, false
	}
	x, y := a.I, b.I
	var r int64
	switch op {
	case "+":
		r = x + y
	case "-":
		r = x - y
	case "*":
		r = x * y
	case "/":
		if y == 0 {
			return Const{}, false
		}
		r = x / y
	case "%":
		if y == 0 {
			return Const{}, false
		}
		r = x % y
	case "&":
		r = x & y
	case "|":
		r = x | y
	case "^":
		r = x ^ y
	case "<<":
		if y < 0 || y > 63 {
			return Const{}, false
		}
		r = x << uint(y)
	case ">>":
		if y < 0 || y > 63 {
			return Const{}, false
		}
		r = x >> uint(y)
	case "==":
		r = boolToI(x == y)
	case "!=":
		r = boolToI(x != y)
	case "<":
		r = boolToI(x < y)
	case ">":
		r = boolToI(x > y)
	case "<=":
		r = boolToI(x <= y)
	case ">=":
		r = boolToI(x >= y)
	default:
		return Const{}, false
	}
	return Const{I: truncConst(r, t)}, true
}

func boolToI(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func truncConst(v int64, t cc.Type) int64 {
	bt, ok := t.(*cc.BasicType)
	if !ok {
		return v
	}
	switch bt.Kind {
	case cc.Char:
		return int64(int8(v))
	case cc.UChar:
		return int64(uint8(v))
	case cc.Short:
		return int64(int16(v))
	case cc.UShort:
		return int64(uint16(v))
	case cc.Int:
		return int64(int32(v))
	case cc.UInt:
		return int64(uint32(v))
	default:
		return v
	}
}

func evalConstUn(op string, a Const, t cc.Type) (Const, bool) {
	if a.IsStr || a.IsFloat {
		return Const{}, false
	}
	switch op {
	case "-":
		return Const{I: truncConst(-a.I, t)}, true
	case "~":
		return Const{I: truncConst(^a.I, t)}, true
	case "!":
		return Const{I: boolToI(a.I == 0)}, true
	default:
		return Const{}, false
	}
}

// ---------------------------------------------------------------- constfold

// constFold performs local constant folding and constant-branch folding.
func constFold(f *Func, p *passCtx) {
	p.cov.Hit("constfold.entry")
	perfBug := p.bugs.Active("perf-exponential-fold")
	subSelfBug, _ := p.bugs.Lookup("constfold-sub-self")
	for _, b := range f.Blocks {
		consts := make(map[Reg]Const)
		foldsHere := int64(0)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpConst:
				if !in.Val.IsStr {
					consts[in.Dst] = in.Val
				}
			case OpCopy:
				if c, ok := consts[in.A]; ok {
					consts[in.Dst] = c
				} else {
					delete(consts, in.Dst)
				}
			case OpBin:
				a, aok := consts[in.A]
				c, cok := consts[in.B]
				if aok && cok {
					p.cov.Hit("constfold.bin")
					p.bugs.MaybeCrash(p.cov, "constfold-div-overflow", func() bool {
						return (in.BinOp == "/" || in.BinOp == "%") && a.I == -2147483648 && c.I == -1
					})
					if subSelfBug != nil && subSelfBug.Kind == BugWrongCode &&
						in.BinOp == "-" && a.I == c.I && a.I != 0 && !a.IsFloat && !c.IsFloat {
						// seeded wrong-code: c - c folded to c instead of 0
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: a, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = a
						continue
					}
					if r, ok := evalConstBin(in.BinOp, a, c, in.Type); ok {
						p.cov.HitOp("constfold.bin", in.BinOp)
						switch {
						case r.I == 0:
							p.cov.Hit("constfold.result.zero")
						case r.I < 0:
							p.cov.Hit("constfold.result.negative")
						default:
							p.cov.Hit("constfold.result.nonzero")
						}
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = r
						foldsHere++
						if perfBug {
							// seeded compile-time blowup: superlinear work
							// per fold within one block
							p.tick(foldsHere*foldsHere*512, "constfold")
						}
						p.tick(1, "constfold")
						continue
					}
				}
				delete(consts, in.Dst)
			case OpUn:
				if a, ok := consts[in.A]; ok {
					p.cov.Hit("constfold.un")
					if p.bugs.Active("constprop-negzero") && in.UnOp == "-" && a.I < 0 {
						// seeded wrong-code: negation of a negative constant
						// returns the operand unchanged
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: a, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = a
						continue
					}
					if r, ok := evalConstUn(in.UnOp, a, in.Type); ok {
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = r
						continue
					}
				}
				delete(consts, in.Dst)
			case OpConv:
				if a, ok := consts[in.A]; ok && !a.IsStr {
					p.cov.Hit("constfold.conv")
					var r Const
					if bt, okb := in.Type.(*cc.BasicType); okb && bt.IsFloat() {
						if a.IsFloat {
							r = a
						} else {
							r = Const{IsFloat: true, F: float64(a.I)}
						}
					} else if a.IsFloat {
						r = Const{I: truncConst(int64(a.F), in.Type)}
					} else {
						r = Const{I: truncConst(a.I, in.Type)}
					}
					*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
					consts[in.Dst] = r
					continue
				}
				delete(consts, in.Dst)
			default:
				if in.Dst != NoReg {
					delete(consts, in.Dst)
				}
			}
		}
		// constant branch folding
		if b.Term.Kind == TermBr {
			if c, ok := consts[b.Term.Cond]; ok && !c.IsFloat && !c.IsStr {
				p.cov.Hit("constfold.branch")
				dead := b.Term.Else
				target := b.Term.To
				if c.I == 0 {
					dead = b.Term.To
					target = b.Term.Else
					p.cov.Hit("constfold.branch.dropped")
				} else {
					p.cov.Hit("constfold.branch.taken")
				}
				p.bugs.MaybeCrash(p.cov, "constprop-branch-label", func() bool {
					return len(dead.Label) > 6 && dead.Label[:6] == "label."
				})
				b.Term = Term{Kind: TermJmp, To: target, Pos: b.Term.Pos}
			}
		}
	}
}

// ---------------------------------------------------------------- constprop

type lattice struct {
	// state: 0 = undefined (bottom), 1 = constant, 2 = not-a-constant (top)
	state int
	val   Const
}

func meetLat(a, b lattice) lattice {
	switch {
	case a.state == 0:
		return b
	case b.state == 0:
		return a
	case a.state == 1 && b.state == 1 && a.val == b.val:
		return a
	default:
		return lattice{state: 2}
	}
}

// constProp is a global (whole-CFG) conditional constant propagation over
// registers, followed by rewriting. It feeds constFold, which performs the
// actual instruction replacement.
func constProp(f *Func, p *passCtx) {
	p.cov.Hit("constprop.entry")
	blocks := reachable(f)
	pr := preds(f)
	in := make(map[*Block]map[Reg]lattice)
	out := make(map[*Block]map[Reg]lattice)
	for _, b := range blocks {
		in[b] = map[Reg]lattice{}
		out[b] = map[Reg]lattice{}
	}
	transfer := func(b *Block, state map[Reg]lattice) map[Reg]lattice {
		st := make(map[Reg]lattice, len(state))
		for k, v := range state {
			st[k] = v
		}
		for i := range b.Instrs {
			inr := &b.Instrs[i]
			switch inr.Op {
			case OpConst:
				if inr.Val.IsStr {
					st[inr.Dst] = lattice{state: 2}
				} else {
					st[inr.Dst] = lattice{state: 1, val: inr.Val}
				}
			case OpCopy:
				st[inr.Dst] = st[inr.A]
			case OpBin:
				a, c := st[inr.A], st[inr.B]
				if a.state == 1 && c.state == 1 {
					if r, ok := evalConstBin(inr.BinOp, a.val, c.val, inr.Type); ok {
						st[inr.Dst] = lattice{state: 1, val: r}
						continue
					}
				}
				st[inr.Dst] = lattice{state: 2}
			case OpUn:
				if a := st[inr.A]; a.state == 1 {
					if r, ok := evalConstUn(inr.UnOp, a.val, inr.Type); ok {
						st[inr.Dst] = lattice{state: 1, val: r}
						continue
					}
				}
				st[inr.Dst] = lattice{state: 2}
			case OpConv:
				if a := st[inr.A]; a.state == 1 && !a.val.IsStr {
					var r Const
					if bt, okb := inr.Type.(*cc.BasicType); okb && bt.IsFloat() {
						if a.val.IsFloat {
							r = a.val
						} else {
							r = Const{IsFloat: true, F: float64(a.val.I)}
						}
					} else if a.val.IsFloat {
						r = Const{I: truncConst(int64(a.val.F), inr.Type)}
					} else {
						r = Const{I: truncConst(a.val.I, inr.Type)}
					}
					st[inr.Dst] = lattice{state: 1, val: r}
					continue
				}
				st[inr.Dst] = lattice{state: 2}
			default:
				if inr.Dst != NoReg {
					st[inr.Dst] = lattice{state: 2}
				}
			}
		}
		return st
	}
	// iterate to fixpoint
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			p.tick(int64(len(b.Instrs))+1, "constprop")
			newIn := map[Reg]lattice{}
			for _, pred := range pr[b] {
				p.cov.Hit("constprop.meet")
				for r, v := range out[pred] {
					if cur, ok := newIn[r]; ok {
						newIn[r] = meetLat(cur, v)
					} else {
						newIn[r] = v
					}
				}
				// registers missing from one predecessor are undefined
				// there; meet(undef, x) = x, so nothing further needed
			}
			newOut := transfer(b, newIn)
			if !latEqual(newIn, in[b]) || !latEqual(newOut, out[b]) {
				in[b] = newIn
				out[b] = newOut
				changed = true
			}
		}
	}
	// rewrite: materialize constants proven at block entry
	for _, b := range blocks {
		st := in[b]
		consts := make(map[Reg]Const)
		for r, v := range st {
			if v.state == 1 {
				consts[r] = v.val
			}
		}
		for i := range b.Instrs {
			inr := &b.Instrs[i]
			if inr.Op == OpCopy {
				if c, ok := consts[inr.A]; ok {
					p.cov.Hit("constprop.replace")
					*inr = Instr{Op: OpConst, Dst: inr.Dst, Val: c, Type: inr.Type, Pos: inr.Pos}
					consts[inr.Dst] = c
					continue
				}
			}
			// recompute locally as constFold does
			switch inr.Op {
			case OpConst:
				if !inr.Val.IsStr {
					consts[inr.Dst] = inr.Val
				} else {
					delete(consts, inr.Dst)
				}
			case OpBin:
				a, aok := consts[inr.A]
				c, cok := consts[inr.B]
				if aok && cok {
					if r, ok := evalConstBin(inr.BinOp, a, c, inr.Type); ok {
						p.cov.Hit("constprop.replace")
						p.cov.HitOp("constprop.replace", inr.BinOp)
						*inr = Instr{Op: OpConst, Dst: inr.Dst, Val: r, Type: inr.Type, Pos: inr.Pos}
						consts[inr.Dst] = r
						continue
					}
				}
				delete(consts, inr.Dst)
			default:
				if inr.Dst != NoReg {
					delete(consts, inr.Dst)
				}
			}
		}
		if b.Term.Kind == TermBr {
			if v, ok := st[b.Term.Cond]; ok && v.state == 1 {
				// only fold when the condition register is not redefined in
				// this block
				redefined := false
				for i := range b.Instrs {
					if b.Instrs[i].Dst == b.Term.Cond {
						redefined = true
						break
					}
				}
				if !redefined && !v.val.IsFloat && !v.val.IsStr {
					p.cov.Hit("constprop.branch")
					target := b.Term.To
					if v.val.I == 0 {
						target = b.Term.Else
					}
					b.Term = Term{Kind: TermJmp, To: target, Pos: b.Term.Pos}
				}
			}
		}
	}
}

func latEqual(a, b map[Reg]lattice) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- copyprop

// copyProp performs local copy propagation. The seeded bug
// "copyprop-through-branch" carries the copy table across block boundaries
// without invalidation, which is wrong when a source register is redefined
// on another path.
func copyProp(f *Func, p *passCtx) {
	p.cov.Hit("copyprop.entry")
	buggy := p.bugs.Active("copyprop-through-branch")
	copies := make(map[Reg]Reg)
	for _, b := range f.Blocks {
		if !buggy {
			copies = make(map[Reg]Reg)
		}
		invalidate := func(r Reg) {
			delete(copies, r)
			for d, s := range copies {
				if s == r {
					delete(copies, d)
				}
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// rewrite uses through the copy table
			rep := func(r Reg) Reg {
				if s, ok := copies[r]; ok {
					p.cov.Hit("copyprop.replace")
					return s
				}
				return r
			}
			switch in.Op {
			case OpBin, OpAddrIdx:
				in.A = rep(in.A)
				in.B = rep(in.B)
			case OpUn, OpConv, OpCopy, OpLoad:
				in.A = rep(in.A)
			case OpStore:
				in.A = rep(in.A)
				in.B = rep(in.B)
			case OpCall:
				for j := range in.Args {
					in.Args[j] = rep(in.Args[j])
				}
			}
			if in.Dst != NoReg {
				invalidate(in.Dst)
			}
			if in.Op == OpCopy && in.Dst != in.A {
				copies[in.Dst] = in.A
			}
		}
		if b.Term.Kind == TermBr {
			if s, ok := copies[b.Term.Cond]; ok {
				b.Term.Cond = s
			}
		}
		if b.Term.Kind == TermRet && b.Term.HasVal {
			if s, ok := copies[b.Term.Val]; ok {
				b.Term.Val = s
			}
		}
	}
}

// ---------------------------------------------------------------- cse

// cse performs local common-subexpression elimination over pure
// instructions, with register-version tracking for correctness under
// redefinition.
func cse(f *Func, p *passCtx) {
	p.cov.Hit("cse.entry")
	commuteBug := p.bugs.Active("cse-commutes-sub")
	type availEntry struct {
		reg Reg
		ver int
	}
	for _, b := range f.Blocks {
		version := make(map[Reg]int)
		avail := make(map[string]availEntry)
		eligible := 0
		for i := range b.Instrs {
			in := &b.Instrs[i]
			replaced := false
			if in.pure() && in.Op == OpBin {
				eligible++
				p.bugs.MaybeCrash(p.cov, "cse-crash-deep-expr", func() bool {
					return eligible > 20
				})
				a, c := in.A, in.B
				if commuteBug && in.BinOp == "-" && c < a {
					// seeded wrong-code: subtraction keyed commutatively
					p.cov.Hit("cse.commute")
					a, c = c, a
				}
				if isCommutative(in.BinOp) && c < a {
					p.cov.Hit("cse.commute")
					a, c = c, a
				}
				key := fmt.Sprintf("bin:%s:%d.%d:%d.%d:%s", in.BinOp, a, version[a], c, version[c], typeName(in.Type))
				if prev, ok := avail[key]; ok && version[prev.reg] == prev.ver {
					p.cov.Hit("cse.hit")
					p.cov.HitOp("cse.hit", in.BinOp)
					*in = Instr{Op: OpCopy, Dst: in.Dst, A: prev.reg, Pos: in.Pos}
					version[in.Dst]++
					replaced = true
				} else {
					version[in.Dst]++
					avail[key] = availEntry{reg: in.Dst, ver: version[in.Dst]}
					replaced = true
				}
			}
			if !replaced && in.Dst != NoReg {
				version[in.Dst]++
			}
		}
		p.tick(int64(len(b.Instrs)), "cse")
	}
}

func isCommutative(op string) bool {
	switch op {
	case "+", "*", "&", "|", "^", "==", "!=":
		return true
	}
	return false
}
