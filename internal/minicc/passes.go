package minicc

import (
	"fmt"

	"spe/internal/cc"
)

// passCtx carries instrumentation and the seeded-bug set through the
// optimization pipeline, plus the compile-time work budget used to detect
// performance bugs.
type passCtx struct {
	cov    *Coverage
	bugs   *BugSet
	work   int64
	budget int64
}

// TimeoutError reports compile-time budget exhaustion (the observable
// symptom of a seeded performance bug).
type TimeoutError struct{ Pass string }

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("minicc: compilation timeout in %s pass", e.Pass)
}

func (p *passCtx) tick(n int64, pass string) {
	p.work += n
	if p.budget > 0 && p.work > p.budget {
		panic(&TimeoutError{Pass: pass})
	}
}

// ---------------------------------------------------------------- helpers

// evalConstBin folds an integer binary operation at compile time; ok is
// false for operations the folder refuses (division by zero, floats,
// strings).
func evalConstBin(op string, a, b Const, t cc.Type) (Const, bool) {
	if a.IsStr || b.IsStr || a.IsFloat || b.IsFloat {
		return Const{}, false
	}
	x, y := a.I, b.I
	var r int64
	switch op {
	case "+":
		r = x + y
	case "-":
		r = x - y
	case "*":
		r = x * y
	case "/":
		if y == 0 {
			return Const{}, false
		}
		r = x / y
	case "%":
		if y == 0 {
			return Const{}, false
		}
		r = x % y
	case "&":
		r = x & y
	case "|":
		r = x | y
	case "^":
		r = x ^ y
	case "<<":
		if y < 0 || y > 63 {
			return Const{}, false
		}
		r = x << uint(y)
	case ">>":
		if y < 0 || y > 63 {
			return Const{}, false
		}
		r = x >> uint(y)
	case "==":
		r = boolToI(x == y)
	case "!=":
		r = boolToI(x != y)
	case "<":
		r = boolToI(x < y)
	case ">":
		r = boolToI(x > y)
	case "<=":
		r = boolToI(x <= y)
	case ">=":
		r = boolToI(x >= y)
	default:
		return Const{}, false
	}
	return Const{I: truncConst(r, t)}, true
}

func boolToI(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func truncConst(v int64, t cc.Type) int64 {
	bt, ok := t.(*cc.BasicType)
	if !ok {
		return v
	}
	switch bt.Kind {
	case cc.Char:
		return int64(int8(v))
	case cc.UChar:
		return int64(uint8(v))
	case cc.Short:
		return int64(int16(v))
	case cc.UShort:
		return int64(uint16(v))
	case cc.Int:
		return int64(int32(v))
	case cc.UInt:
		return int64(uint32(v))
	default:
		return v
	}
}

func evalConstUn(op string, a Const, t cc.Type) (Const, bool) {
	if a.IsStr || a.IsFloat {
		return Const{}, false
	}
	switch op {
	case "-":
		return Const{I: truncConst(-a.I, t)}, true
	case "~":
		return Const{I: truncConst(^a.I, t)}, true
	case "!":
		return Const{I: boolToI(a.I == 0)}, true
	default:
		return Const{}, false
	}
}

// ---------------------------------------------------------------- constfold

// constFold performs local constant folding and constant-branch folding.
func constFold(f *Func, p *passCtx) {
	p.cov.Hit("constfold.entry")
	perfBug := p.bugs.Active("perf-exponential-fold")
	subSelfBug, _ := p.bugs.Lookup("constfold-sub-self")
	for _, b := range f.Blocks {
		consts := make(map[Reg]Const)
		foldsHere := int64(0)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpConst:
				if !in.Val.IsStr {
					consts[in.Dst] = in.Val
				}
			case OpCopy:
				if c, ok := consts[in.A]; ok {
					consts[in.Dst] = c
				} else {
					delete(consts, in.Dst)
				}
			case OpBin:
				a, aok := consts[in.A]
				c, cok := consts[in.B]
				if aok && cok {
					p.cov.Hit("constfold.bin")
					p.bugs.MaybeCrash(p.cov, "constfold-div-overflow", func() bool {
						return (in.BinOp == "/" || in.BinOp == "%") && a.I == -2147483648 && c.I == -1
					})
					if subSelfBug != nil && subSelfBug.Kind == BugWrongCode &&
						in.BinOp == "-" && a.I == c.I && a.I != 0 && !a.IsFloat && !c.IsFloat {
						// seeded wrong-code: c - c folded to c instead of 0
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: a, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = a
						continue
					}
					if r, ok := evalConstBin(in.BinOp, a, c, in.Type); ok {
						p.cov.HitOp("constfold.bin", in.BinOp)
						switch {
						case r.I == 0:
							p.cov.Hit("constfold.result.zero")
						case r.I < 0:
							p.cov.Hit("constfold.result.negative")
						default:
							p.cov.Hit("constfold.result.nonzero")
						}
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = r
						foldsHere++
						if perfBug {
							// seeded compile-time blowup: superlinear work
							// per fold within one block
							p.tick(foldsHere*foldsHere*512, "constfold")
						}
						p.tick(1, "constfold")
						continue
					}
				}
				delete(consts, in.Dst)
			case OpUn:
				if a, ok := consts[in.A]; ok {
					p.cov.Hit("constfold.un")
					if p.bugs.Active("constprop-negzero") && in.UnOp == "-" && a.I < 0 {
						// seeded wrong-code: negation of a negative constant
						// returns the operand unchanged
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: a, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = a
						continue
					}
					if r, ok := evalConstUn(in.UnOp, a, in.Type); ok {
						*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
						consts[in.Dst] = r
						continue
					}
				}
				delete(consts, in.Dst)
			case OpConv:
				if a, ok := consts[in.A]; ok && !a.IsStr {
					p.cov.Hit("constfold.conv")
					var r Const
					if bt, okb := in.Type.(*cc.BasicType); okb && bt.IsFloat() {
						if a.IsFloat {
							r = a
						} else {
							r = Const{IsFloat: true, F: float64(a.I)}
						}
					} else if a.IsFloat {
						r = Const{I: truncConst(int64(a.F), in.Type)}
					} else {
						r = Const{I: truncConst(a.I, in.Type)}
					}
					*in = Instr{Op: OpConst, Dst: in.Dst, Val: r, Type: in.Type, Pos: in.Pos}
					consts[in.Dst] = r
					continue
				}
				delete(consts, in.Dst)
			default:
				if in.Dst != NoReg {
					delete(consts, in.Dst)
				}
			}
		}
		// constant branch folding
		if b.Term.Kind == TermBr {
			if c, ok := consts[b.Term.Cond]; ok && !c.IsFloat && !c.IsStr {
				p.cov.Hit("constfold.branch")
				dead := b.Term.Else
				target := b.Term.To
				if c.I == 0 {
					dead = b.Term.To
					target = b.Term.Else
					p.cov.Hit("constfold.branch.dropped")
				} else {
					p.cov.Hit("constfold.branch.taken")
				}
				p.bugs.MaybeCrash(p.cov, "constprop-branch-label", func() bool {
					return len(dead.Label) > 6 && dead.Label[:6] == "label."
				})
				b.Term = Term{Kind: TermJmp, To: target, Pos: b.Term.Pos}
			}
		}
	}
}

// ---------------------------------------------------------------- constprop

// The propagation lattice is stored densely: one cell per register per
// block, indexed by Block.ID (dense at every constProp call site — blocks
// are only renumbered by simplifyCFG, which runs after the last constProp
// of every pipeline). The dense form replicates the semantics of the
// previous map-of-maps representation exactly, including the distinction
// between a register that is absent from the map and one that is present
// with an undefined value (an OpCopy of an absent source inserts a
// present zero-lattice, and map equality compared key sets): that is what
// latPresent encodes. The rewrite keeps fixpoint iteration counts, tick
// charges, and coverage hits bit-identical while eliminating the map
// allocation and hashing that dominated compile-path CPU.
const (
	latAbsent  int8 = iota // no entry in the equivalent sparse map
	latConst               // proven constant (val holds it)
	latTop                 // not a constant
	latPresent             // present in the sparse map, value undefined
)

type lattice struct {
	state int8
	val   Const
}

// meetLat folds one predecessor's present cell into an accumulator cell
// (per-register; callers skip latAbsent predecessor cells, matching the
// sparse iteration over present keys only).
func meetLat(a, b lattice) lattice {
	switch {
	case a.state == latAbsent || a.state == latPresent:
		return b
	case b.state == latPresent:
		return a
	case a.state == latConst && b.state == latConst && a.val == b.val:
		return a
	default:
		return lattice{state: latTop}
	}
}

// constProp is a global (whole-CFG) conditional constant propagation over
// registers, followed by rewriting. It feeds constFold, which performs the
// actual instruction replacement.
func constProp(f *Func, p *passCtx) {
	p.cov.Hit("constprop.entry")
	blocks := reachable(f)
	pr := preds(f)
	maxID := 0
	for _, b := range blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	width := f.NumRegs + 1
	// one flat arena backs every per-block vector plus the two scratch rows
	arena := make([]lattice, (2*len(blocks)+2)*width)
	next := func() []lattice {
		row := arena[:width:width]
		arena = arena[width:]
		return row
	}
	in := make([][]lattice, maxID+1)
	out := make([][]lattice, maxID+1)
	for _, b := range blocks {
		in[b.ID] = next()
		out[b.ID] = next()
	}
	newIn, newOut := next(), next()
	transfer := func(b *Block, st []lattice) {
		for i := range b.Instrs {
			inr := &b.Instrs[i]
			switch inr.Op {
			case OpConst:
				if inr.Val.IsStr {
					st[inr.Dst] = lattice{state: latTop}
				} else {
					st[inr.Dst] = lattice{state: latConst, val: inr.Val}
				}
			case OpCopy:
				// copying an absent source still defines the destination
				// (sparse map assignment inserted a zero lattice)
				if v := st[inr.A]; v.state == latAbsent {
					st[inr.Dst] = lattice{state: latPresent}
				} else {
					st[inr.Dst] = v
				}
			case OpBin:
				a, c := st[inr.A], st[inr.B]
				if a.state == latConst && c.state == latConst {
					if r, ok := evalConstBin(inr.BinOp, a.val, c.val, inr.Type); ok {
						st[inr.Dst] = lattice{state: latConst, val: r}
						continue
					}
				}
				st[inr.Dst] = lattice{state: latTop}
			case OpUn:
				if a := st[inr.A]; a.state == latConst {
					if r, ok := evalConstUn(inr.UnOp, a.val, inr.Type); ok {
						st[inr.Dst] = lattice{state: latConst, val: r}
						continue
					}
				}
				st[inr.Dst] = lattice{state: latTop}
			case OpConv:
				if a := st[inr.A]; a.state == latConst && !a.val.IsStr {
					var r Const
					if bt, okb := inr.Type.(*cc.BasicType); okb && bt.IsFloat() {
						if a.val.IsFloat {
							r = a.val
						} else {
							r = Const{IsFloat: true, F: float64(a.val.I)}
						}
					} else if a.val.IsFloat {
						r = Const{I: truncConst(int64(a.val.F), inr.Type)}
					} else {
						r = Const{I: truncConst(a.val.I, inr.Type)}
					}
					st[inr.Dst] = lattice{state: latConst, val: r}
					continue
				}
				st[inr.Dst] = lattice{state: latTop}
			default:
				if inr.Dst != NoReg {
					st[inr.Dst] = lattice{state: latTop}
				}
			}
		}
	}
	// iterate to fixpoint
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			p.tick(int64(len(b.Instrs))+1, "constprop")
			for i := range newIn {
				newIn[i] = lattice{}
			}
			for _, pred := range pr[b] {
				p.cov.Hit("constprop.meet")
				for r, v := range out[pred.ID] {
					// registers missing from one predecessor are undefined
					// there; meet(undef, x) = x, so they contribute nothing
					if v.state == latAbsent {
						continue
					}
					newIn[r] = meetLat(newIn[r], v)
				}
			}
			copy(newOut, newIn)
			transfer(b, newOut)
			if !latEqual(newIn, in[b.ID]) || !latEqual(newOut, out[b.ID]) {
				copy(in[b.ID], newIn)
				copy(out[b.ID], newOut)
				changed = true
			}
		}
	}
	// rewrite: materialize constants proven at block entry
	consts := make([]Const, width)
	hasConst := make([]bool, width)
	for _, b := range blocks {
		st := in[b.ID]
		for r, v := range st {
			consts[r] = v.val
			hasConst[r] = v.state == latConst
		}
		for i := range b.Instrs {
			inr := &b.Instrs[i]
			if inr.Op == OpCopy {
				if hasConst[inr.A] {
					p.cov.Hit("constprop.replace")
					c := consts[inr.A]
					*inr = Instr{Op: OpConst, Dst: inr.Dst, Val: c, Type: inr.Type, Pos: inr.Pos}
					consts[inr.Dst] = c
					hasConst[inr.Dst] = true
					continue
				}
			}
			// recompute locally as constFold does
			switch inr.Op {
			case OpConst:
				if !inr.Val.IsStr {
					consts[inr.Dst] = inr.Val
					hasConst[inr.Dst] = true
				} else {
					hasConst[inr.Dst] = false
				}
			case OpBin:
				if hasConst[inr.A] && hasConst[inr.B] {
					if r, ok := evalConstBin(inr.BinOp, consts[inr.A], consts[inr.B], inr.Type); ok {
						p.cov.Hit("constprop.replace")
						p.cov.HitOp("constprop.replace", inr.BinOp)
						*inr = Instr{Op: OpConst, Dst: inr.Dst, Val: r, Type: inr.Type, Pos: inr.Pos}
						consts[inr.Dst] = r
						hasConst[inr.Dst] = true
						continue
					}
				}
				hasConst[inr.Dst] = false
			default:
				if inr.Dst != NoReg {
					hasConst[inr.Dst] = false
				}
			}
		}
		if b.Term.Kind == TermBr {
			if v := st[b.Term.Cond]; v.state == latConst {
				// only fold when the condition register is not redefined in
				// this block
				redefined := false
				for i := range b.Instrs {
					if b.Instrs[i].Dst == b.Term.Cond {
						redefined = true
						break
					}
				}
				if !redefined && !v.val.IsFloat && !v.val.IsStr {
					p.cov.Hit("constprop.branch")
					target := b.Term.To
					if v.val.I == 0 {
						target = b.Term.Else
					}
					b.Term = Term{Kind: TermJmp, To: target, Pos: b.Term.Pos}
				}
			}
		}
	}
}

func latEqual(a, b []lattice) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- copyprop

// copyProp performs local copy propagation. The seeded bug
// "copyprop-through-branch" carries the copy table across block boundaries
// without invalidation, which is wrong when a source register is redefined
// on another path.
func copyProp(f *Func, p *passCtx) {
	p.cov.Hit("copyprop.entry")
	buggy := p.bugs.Active("copyprop-through-branch")
	copies := make(map[Reg]Reg)
	for _, b := range f.Blocks {
		if !buggy {
			copies = make(map[Reg]Reg)
		}
		invalidate := func(r Reg) {
			delete(copies, r)
			for d, s := range copies {
				if s == r {
					delete(copies, d)
				}
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// rewrite uses through the copy table
			rep := func(r Reg) Reg {
				if s, ok := copies[r]; ok {
					p.cov.Hit("copyprop.replace")
					return s
				}
				return r
			}
			switch in.Op {
			case OpBin, OpAddrIdx:
				in.A = rep(in.A)
				in.B = rep(in.B)
			case OpUn, OpConv, OpCopy, OpLoad:
				in.A = rep(in.A)
			case OpStore:
				in.A = rep(in.A)
				in.B = rep(in.B)
			case OpCall:
				for j := range in.Args {
					in.Args[j] = rep(in.Args[j])
				}
			}
			if in.Dst != NoReg {
				invalidate(in.Dst)
			}
			if in.Op == OpCopy && in.Dst != in.A {
				copies[in.Dst] = in.A
			}
		}
		if b.Term.Kind == TermBr {
			if s, ok := copies[b.Term.Cond]; ok {
				b.Term.Cond = s
			}
		}
		if b.Term.Kind == TermRet && b.Term.HasVal {
			if s, ok := copies[b.Term.Val]; ok {
				b.Term.Val = s
			}
		}
	}
}

// ---------------------------------------------------------------- cse

// cse performs local common-subexpression elimination over pure
// instructions, with register-version tracking for correctness under
// redefinition.
func cse(f *Func, p *passCtx) {
	p.cov.Hit("cse.entry")
	commuteBug := p.bugs.Active("cse-commutes-sub")
	type availEntry struct {
		reg Reg
		ver int
	}
	for _, b := range f.Blocks {
		version := make(map[Reg]int)
		avail := make(map[string]availEntry)
		eligible := 0
		for i := range b.Instrs {
			in := &b.Instrs[i]
			replaced := false
			if in.pure() && in.Op == OpBin {
				eligible++
				p.bugs.MaybeCrash(p.cov, "cse-crash-deep-expr", func() bool {
					return eligible > 20
				})
				a, c := in.A, in.B
				if commuteBug && in.BinOp == "-" && c < a {
					// seeded wrong-code: subtraction keyed commutatively
					p.cov.Hit("cse.commute")
					a, c = c, a
				}
				if isCommutative(in.BinOp) && c < a {
					p.cov.Hit("cse.commute")
					a, c = c, a
				}
				key := fmt.Sprintf("bin:%s:%d.%d:%d.%d:%s", in.BinOp, a, version[a], c, version[c], typeName(in.Type))
				if prev, ok := avail[key]; ok && version[prev.reg] == prev.ver {
					p.cov.Hit("cse.hit")
					p.cov.HitOp("cse.hit", in.BinOp)
					*in = Instr{Op: OpCopy, Dst: in.Dst, A: prev.reg, Pos: in.Pos}
					version[in.Dst]++
					replaced = true
				} else {
					version[in.Dst]++
					avail[key] = availEntry{reg: in.Dst, ver: version[in.Dst]}
					replaced = true
				}
			}
			if !replaced && in.Dst != NoReg {
				version[in.Dst]++
			}
		}
		p.tick(int64(len(b.Instrs)), "cse")
	}
}

func isCommutative(op string) bool {
	switch op {
	case "+", "*", "&", "|", "^", "==", "!=":
		return true
	}
	return false
}
