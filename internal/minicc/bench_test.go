package minicc_test

import (
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/minicc"
)

func benchPrograms(b *testing.B) []*cc.Program {
	b.Helper()
	var progs []*cc.Program
	srcs := corpus.Seeds()
	srcs = append(srcs, corpus.Generate(corpus.Config{N: 20, Seed: 99})...)
	for _, src := range srcs {
		f, err := cc.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		p, err := cc.Analyze(f)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

// BenchmarkBackendMinicc is the compiled-binary backend on the campaign
// hot path: template-cached compilation (trunk -O2) with the default
// threaded dispatch over fused IR.
func BenchmarkBackendMinicc(b *testing.B) {
	progs := benchPrograms(b)
	ca := minicc.NewCache()
	c := &minicc.Compiler{Version: "trunk", Opt: 2, Seeded: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunCached(ca, progs[i%len(progs)], nil, minicc.ExecConfig{}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackendMiniccNoFuse is the same workload with fusion disabled
// on the monolithic switch engine — the PR 7 shape of the backend, for
// isolating what the fused threaded VM buys.
func BenchmarkBackendMiniccNoFuse(b *testing.B) {
	progs := benchPrograms(b)
	ca := minicc.NewCache()
	c := &minicc.Compiler{Version: "trunk", Opt: 2, Seeded: true}
	cfg := minicc.ExecConfig{Dispatch: minicc.DispatchSwitch, NoFuse: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunCached(ca, progs[i%len(progs)], nil, cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheRunBatch is the batched shard walk: one RunBatch call
// draining 8 runs of a template, amortizing bug-set resolution and
// template lookup — the campaign's per-config phase-2 shape.
func BenchmarkCacheRunBatch(b *testing.B) {
	progs := benchPrograms(b)
	ca := minicc.NewCache()
	c := &minicc.Compiler{Version: "trunk", Opt: 2, Seeded: true}
	const runs = 8
	bind := func(i int) (minicc.ExecConfig, error) { return minicc.ExecConfig{}, nil }
	yield := func(i int, ro *minicc.RunOutcome) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.RunBatch(ca, progs[i%len(progs)], nil, false, runs, bind, yield); err != nil {
			b.Fatal(err)
		}
	}
}
