package minicc

// CFG analyses: reachability, predecessors, iterative dominators, and
// natural-loop detection, used by SimplifyCFG and LICM.

// preds computes predecessor lists over reachable blocks.
func preds(f *Func) map[*Block][]*Block {
	p := make(map[*Block][]*Block)
	for _, b := range reachable(f) {
		for _, s := range b.Succs() {
			p[s] = append(p[s], b)
		}
	}
	return p
}

// reachable returns the blocks reachable from the entry, in reverse
// post-order-ish DFS order (entry first).
func reachable(f *Func) []*Block {
	seen := make(map[*Block]bool)
	var out []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		out = append(out, b)
		for _, s := range b.Succs() {
			dfs(s)
		}
	}
	dfs(f.Entry)
	return out
}

// dominators computes the immediate-dominator-closure: dom[b] is the set of
// blocks dominating b (including b itself). Iterative dataflow over the
// reachable subgraph.
func dominators(f *Func) map[*Block]map[*Block]bool {
	blocks := reachable(f)
	pr := preds(f)
	dom := make(map[*Block]map[*Block]bool, len(blocks))
	all := make(map[*Block]bool, len(blocks))
	for _, b := range blocks {
		all[b] = true
	}
	for _, b := range blocks {
		if b == f.Entry {
			dom[b] = map[*Block]bool{b: true}
		} else {
			d := make(map[*Block]bool, len(all))
			for k := range all {
				d[k] = true
			}
			dom[b] = d
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			if b == f.Entry {
				continue
			}
			var inter map[*Block]bool
			for _, p := range pr[b] {
				if inter == nil {
					inter = make(map[*Block]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !dom[p][k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = make(map[*Block]bool)
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// loop is a natural loop: a header plus its body blocks.
type loop struct {
	header *Block
	body   map[*Block]bool // includes the header
}

// naturalLoops finds natural loops via back edges (t -> h where h dominates
// t), merging loops sharing a header.
func naturalLoops(f *Func) []*loop {
	dom := dominators(f)
	pr := preds(f)
	byHeader := make(map[*Block]*loop)
	var order []*Block
	for _, b := range reachable(f) {
		for _, s := range b.Succs() {
			if dom[b][s] { // back edge b -> s
				lp, ok := byHeader[s]
				if !ok {
					lp = &loop{header: s, body: map[*Block]bool{s: true}}
					byHeader[s] = lp
					order = append(order, s)
				}
				// collect the loop body by backward walk from the tail
				var stack []*Block
				if !lp.body[b] {
					lp.body[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range pr[n] {
						if !lp.body[p] {
							lp.body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	out := make([]*loop, 0, len(order))
	for _, h := range order {
		out = append(out, byHeader[h])
	}
	return out
}
