package minicc

// Superinstruction fusion over executable IR, mirroring the refvm oracle's
// PR 7 rework: the interpreter's per-instruction dispatch overhead is paid
// once per fused pair instead of once per instruction. Fusion is strictly
// in place — it rewrites the first instruction's Op field to a fused opcode
// and leaves the second instruction in the stream — so instruction indices
// never move: hole→IR patch sites recorded in template coordinates, trace
// replay offsets, and seeded-crash callsites all stay valid, and patched
// operand registers are still read live by the fused handlers.
//
// Fused patterns (greedy, left to right, a consumed instruction never
// starts another pair):
//
//	OpConst + OpBin    → OpConstBin
//	OpLoad  + OpBin    → OpLoadBin
//	OpConst + OpStore  → OpConstStore
//	trailing comparison OpBin whose Dst is the block's TermBr condition
//	                   → OpCmpBr (single instruction; primes the branch)
//
// Control-flow landing points need no special handling in this IR: jumps
// only ever target block starts, so no branch can land between the two
// halves of a fused pair. The one cross-instruction coupling is OpCmpBr,
// whose win depends on Dst == Term.Cond; template building skips it in
// blocks where a hole patch site can rebind either side independently, and
// the handler additionally re-checks the identity live at execution time.

// fuseOp returns the fused opcode for an adjacent (a, b) pair, or OpArg
// (never a valid stream opcode here) when the pair does not fuse.
func fuseOp(a, b Op) Op {
	switch {
	case a == OpConst && b == OpBin:
		return OpConstBin
	case a == OpLoad && b == OpBin:
		return OpLoadBin
	case a == OpConst && b == OpStore:
		return OpConstStore
	}
	return OpArg
}

// isCmpOp reports whether a BinOp is a comparison (produces 0/1).
func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		return true
	}
	return false
}

// fuseFunc fuses one function's blocks in place. noCmpBr, when non-nil,
// names blocks whose compare-branch fusion must be skipped because a hole
// patch site can rewrite the trailing comparison's Dst or the terminator's
// Cond independently (template coordinates; see buildTemplate).
func fuseFunc(f *Func, noCmpBr map[*Block]bool) {
	for _, b := range f.Blocks {
		ins := b.Instrs
		for i := 0; i < len(ins); i++ {
			if i+1 < len(ins) {
				if op := fuseOp(ins[i].Op, ins[i+1].Op); op != OpArg {
					ins[i].Op = op
					i++ // the second instruction is consumed by the pair
					continue
				}
			}
			if i == len(ins)-1 && ins[i].Op == OpBin && isCmpOp(ins[i].BinOp) &&
				b.Term.Kind == TermBr && ins[i].Dst == b.Term.Cond && !noCmpBr[b] {
				ins[i].Op = OpCmpBr
			}
		}
	}
}

// fuseProgram fuses every function of a program and marks it fused.
func fuseProgram(p *Program) {
	if p.fused {
		return
	}
	for _, f := range p.Funcs {
		fuseFunc(f, nil)
	}
	p.fused = true
}

// unfuseOp maps a fused opcode back to the base opcode of its first
// instruction; base opcodes map to themselves.
func unfuseOp(op Op) Op {
	switch op {
	case OpConstBin, OpConstStore:
		return OpConst
	case OpLoadBin:
		return OpLoad
	case OpCmpBr:
		return OpBin
	default:
		return op
	}
}

// unfuseProgram restores a fused program to plain opcodes (lossless: fusion
// only ever rewrites Op fields). The optimization passes predate fusion and
// run on unfused IR; the executor re-fuses lazily afterwards.
func unfuseProgram(p *Program) {
	if !p.fused {
		return
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				b.Instrs[i].Op = unfuseOp(b.Instrs[i].Op)
			}
		}
	}
	p.fused = false
}
