package minicc

import "testing"

// mkCFG builds a function from an adjacency description. Each entry maps a
// block index to its successors: one successor = jump, two = branch (on a
// dummy register), zero = return. Block 0 is the entry.
func mkCFG(t *testing.T, succs [][]int) *Func {
	t.Helper()
	f := &Func{Name: "t"}
	blocks := make([]*Block, len(succs))
	for i := range succs {
		blocks[i] = f.NewBlock("b")
	}
	for i, ss := range succs {
		switch len(ss) {
		case 0:
			blocks[i].Term = Term{Kind: TermRet}
		case 1:
			blocks[i].Term = Term{Kind: TermJmp, To: blocks[ss[0]]}
		case 2:
			blocks[i].Term = Term{Kind: TermBr, Cond: 1, To: blocks[ss[0]], Else: blocks[ss[1]]}
		default:
			t.Fatalf("block %d has %d successors", i, len(ss))
		}
	}
	f.Entry = blocks[0]
	return f
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1 | 2; 1 -> 3; 2 -> 3; 3 ret
	f := mkCFG(t, [][]int{{1, 2}, {3}, {3}, {}})
	dom := dominators(f)
	b := f.Blocks
	if !dom[b[3]][b[0]] {
		t.Error("entry must dominate the join")
	}
	if dom[b[3]][b[1]] || dom[b[3]][b[2]] {
		t.Error("neither branch arm dominates the join")
	}
	if !dom[b[1]][b[0]] || !dom[b[2]][b[0]] {
		t.Error("entry must dominate both arms")
	}
	for _, blk := range b {
		if !dom[blk][blk] {
			t.Errorf("b%d must dominate itself", blk.ID)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 (header); 1 -> 2 | 3; 2 -> 1 (latch); 3 ret
	f := mkCFG(t, [][]int{{1}, {2, 3}, {1}, {}})
	dom := dominators(f)
	b := f.Blocks
	if !dom[b[2]][b[1]] {
		t.Error("header must dominate the latch")
	}
	if !dom[b[3]][b[1]] {
		t.Error("header must dominate the exit")
	}
	loops := naturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	lp := loops[0]
	if lp.header != b[1] {
		t.Errorf("loop header = b%d, want b1", lp.header.ID)
	}
	if !lp.body[b[1]] || !lp.body[b[2]] || lp.body[b[3]] || lp.body[b[0]] {
		t.Errorf("loop body incorrect: %v", lp.body)
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	// 0 -> 1; 1 -> 2 | 5; 2 -> 3 | 4; 3 -> 2 (inner latch); 4 -> 1 (outer
	// latch); 5 ret
	f := mkCFG(t, [][]int{{1}, {2, 5}, {3, 4}, {2}, {1}, {}})
	loops := naturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var inner, outer *loop
	for _, lp := range loops {
		if lp.header == f.Blocks[2] {
			inner = lp
		}
		if lp.header == f.Blocks[1] {
			outer = lp
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing inner or outer loop")
	}
	if len(inner.body) != 2 {
		t.Errorf("inner body = %d blocks, want 2", len(inner.body))
	}
	// the outer loop contains the inner loop's blocks
	for blk := range inner.body {
		if !outer.body[blk] {
			t.Errorf("outer loop missing inner block b%d", blk.ID)
		}
	}
}

func TestReachableSkipsOrphans(t *testing.T) {
	f := mkCFG(t, [][]int{{1}, {}, {1}}) // block 2 unreachable
	r := reachable(f)
	if len(r) != 2 {
		t.Errorf("reachable = %d blocks, want 2", len(r))
	}
	pr := preds(f)
	if len(pr[f.Blocks[1]]) != 1 {
		t.Errorf("preds of b1 = %d, want 1 (orphan must not count)", len(pr[f.Blocks[1]]))
	}
}

func TestIrreducibleGraphNoNaturalLoop(t *testing.T) {
	// 0 -> 1 | 2; 1 -> 2; 2 -> 1; neither 1 nor 2 dominates the other, so
	// the cycle is irreducible: no back edge, no natural loop
	f := mkCFG(t, [][]int{{1, 2}, {2}, {1}})
	if loops := naturalLoops(f); len(loops) != 0 {
		t.Errorf("irreducible cycle reported %d natural loops", len(loops))
	}
}
