package minicc

import (
	"fmt"
	"sort"
)

// Coverage records which instrumentation sites inside the compiler were
// exercised by a compilation. It stands in for the gcov function/line
// coverage measurements of the paper's Figure 9: a "function" is a
// component group (the prefix before the first dot of a site name) and a
// "line" is an individual site.
type Coverage struct {
	counts map[string]int
	// lenient recorders collect unregistered site names instead of
	// panicking; see NewLenientCoverage.
	lenient bool
	unknown map[string]int
}

// opNames maps operator spellings to site-name components.
var opNames = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
	"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
	"==": "eq", "!=": "ne", "<": "lt", ">": "gt", "<=": "le", ">=": "ge",
	"!": "not", "~": "bnot",
}

// allSites is the static registry of instrumentation sites. Hit panics on
// unregistered names, keeping this list in sync with the code. Several
// families are parameterized by operator — the "lines" of the compiler
// that only specific constant/value patterns reach, which is what makes
// coverage sensitive to variable usage patterns (paper Figure 9).
var allSites = buildSites()

func buildSites() []string {
	sites := []string{
		"lower.entry", "lower.func", "lower.exprstmt", "lower.if", "lower.while",
		"lower.dowhile", "lower.for", "lower.return", "lower.goto", "lower.decl",
		"lower.assign", "lower.call", "lower.cond", "lower.condlvalue",
		"lower.shortcircuit",

		"constfold.entry", "constfold.bin", "constfold.un", "constfold.conv",
		"constfold.branch", "constfold.branch.taken", "constfold.branch.dropped",

		"constprop.entry", "constprop.meet", "constprop.replace", "constprop.branch",

		"copyprop.entry", "copyprop.replace",

		"cse.entry", "cse.hit", "cse.commute",

		"dce.entry", "dce.remove", "dce.deadstore",

		"simplifycfg.entry", "simplifycfg.unreachable", "simplifycfg.merge",
		"simplifycfg.thread",

		"licm.entry", "licm.loop", "licm.hoist",

		"alias.entry", "alias.forward", "alias.clobber",

		"vm.entry", "vm.call", "vm.load", "vm.store", "vm.bin", "vm.branch",
		"vm.printf",
	}
	binOps := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">", "<=", ">="}
	for _, op := range binOps {
		n := opNames[op]
		sites = append(sites,
			"constfold.bin."+n,
			"constprop.replace."+n,
			"cse.hit."+n,
			"licm.hoist."+n,
			"vm.bin."+n,
		)
	}
	// folding results: zero/nonzero constants steer different downstream
	// simplifications
	for _, n := range []string{"zero", "nonzero", "negative"} {
		sites = append(sites, "constfold.result."+n)
	}
	return sites
}

var allSiteSet = func() map[string]bool {
	m := make(map[string]bool, len(allSites))
	for _, s := range allSites {
		m[s] = true
	}
	return m
}()

// NewCoverage returns an empty coverage recorder. Hit panics on
// unregistered site names, which keeps the static registry in sync with the
// instrumented code; long-running callers that must not crash on registry
// drift should use NewLenientCoverage instead.
func NewCoverage() *Coverage {
	return &Coverage{counts: make(map[string]int), unknown: make(map[string]int)}
}

// NewLenientCoverage returns a recorder for long-running campaign workers:
// hits on unregistered sites are collected (and later reported by Err)
// instead of panicking, so registry drift surfaces as a campaign error
// rather than a crashed worker process.
func NewLenientCoverage() *Coverage {
	return &Coverage{counts: make(map[string]int), lenient: true, unknown: make(map[string]int)}
}

// Hit records one execution of a site. A nil receiver is a no-op recorder.
func (c *Coverage) Hit(site string) {
	if c == nil {
		return
	}
	if !allSiteSet[site] {
		if c.lenient {
			c.unknown[site]++
			return
		}
		panic("minicc: unregistered coverage site " + site)
	}
	c.counts[site]++
}

// Record is the error-returning form of Hit for campaign-facing callers:
// an unregistered site is reported instead of panicking, and the hit is
// retained in the unknown-site tally for diagnosis via Err.
func (c *Coverage) Record(site string) error {
	if c == nil {
		return nil
	}
	if !allSiteSet[site] {
		c.unknown[site]++
		return fmt.Errorf("minicc: unregistered coverage site %q", site)
	}
	c.counts[site]++
	return nil
}

// Err reports registry drift observed by a lenient recorder: non-nil when
// any hit named a site missing from the static registry.
func (c *Coverage) Err() error {
	if c == nil || len(c.unknown) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.unknown))
	for s := range c.unknown {
		names = append(names, s)
	}
	sort.Strings(names)
	return fmt.Errorf("minicc: %d unregistered coverage site(s) hit: %v", len(names), names)
}

// HitOp records a hit on an operator-parameterized site family.
func (c *Coverage) HitOp(family, op string) {
	if c == nil {
		return
	}
	n, ok := opNames[op]
	if !ok {
		return
	}
	site := family + "." + n
	if !allSiteSet[site] {
		return
	}
	c.counts[site]++
}

// Merge accumulates another coverage record into c.
func (c *Coverage) Merge(other *Coverage) {
	if c == nil || other == nil {
		return
	}
	for k, v := range other.counts {
		c.counts[k] += v
	}
}

// Snapshot is an immutable, sorted set of covered site names — the
// position-independent "what has been seen" half of a Coverage recorder,
// cheap to diff and merge across campaign shards.
type Snapshot []string

// Snapshot returns the sorted set of registered sites hit at least once.
func (c *Coverage) Snapshot() Snapshot {
	if c == nil {
		return nil
	}
	out := make(Snapshot, 0, len(c.counts))
	for s, n := range c.counts {
		if n > 0 {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Diff returns the sites in s that are absent from base, sorted — the
// coverage delta a shard contributes over an established frontier.
func (s Snapshot) Diff(base Snapshot) []string {
	var out []string
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(base) || s[i] < base[j]:
			out = append(out, s[i])
			i++
		case s[i] == base[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// Merge returns the sorted union of two snapshots.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := make(Snapshot, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) || j < len(other) {
		switch {
		case j >= len(other):
			out = append(out, s[i])
			i++
		case i >= len(s):
			out = append(out, other[j])
			j++
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Contains reports whether the snapshot covers a site.
func (s Snapshot) Contains(site string) bool {
	i := sort.SearchStrings(s, site)
	return i < len(s) && s[i] == site
}

// AddTo inserts the snapshot's sites into a frontier set and reports how
// many were new — the one-pass novelty accounting the campaign scheduler
// runs per shard against both the campaign-wide and the per-region
// frontier.
func (s Snapshot) AddTo(frontier map[string]bool) int {
	novel := 0
	for _, site := range s {
		if !frontier[site] {
			frontier[site] = true
			novel++
		}
	}
	return novel
}

// SiteCount returns the hit count of a site.
func (c *Coverage) SiteCount(site string) int {
	if c == nil {
		return 0
	}
	return c.counts[site]
}

// LineCoverage is the fraction of registered sites hit at least once.
func (c *Coverage) LineCoverage() float64 {
	if c == nil || len(allSites) == 0 {
		return 0
	}
	hit := 0
	for _, s := range allSites {
		if c.counts[s] > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(allSites))
}

// FunctionCoverage is the fraction of component groups (site-name prefixes)
// hit at least once.
func (c *Coverage) FunctionCoverage() float64 {
	groups := make(map[string]bool)
	hit := make(map[string]bool)
	for _, s := range allSites {
		g := groupOf(s)
		groups[g] = true
		if c != nil && c.counts[s] > 0 {
			hit[g] = true
		}
	}
	if len(groups) == 0 {
		return 0
	}
	return float64(len(hit)) / float64(len(groups))
}

func groupOf(site string) string {
	for i := 0; i < len(site); i++ {
		if site[i] == '.' {
			return site[:i]
		}
	}
	return site
}

// Sites returns all registered sites, sorted.
func Sites() []string {
	out := append([]string(nil), allSites...)
	sort.Strings(out)
	return out
}
