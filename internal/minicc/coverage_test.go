package minicc

import (
	"reflect"
	"strings"
	"testing"

	"spe/internal/cc"
)

// TestSiteRegistryLocked locks the static site registry against drift:
// names are unique, well-formed (non-empty dotted components), and every
// operator-parameterized family expands to registered members.
func TestSiteRegistryLocked(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range allSites {
		if seen[s] {
			t.Errorf("duplicate site %q", s)
		}
		seen[s] = true
		if s == "" || strings.HasPrefix(s, ".") || strings.HasSuffix(s, ".") || strings.Contains(s, "..") {
			t.Errorf("malformed site name %q", s)
		}
		if groupOf(s) == s && strings.Contains(s, ".") {
			t.Errorf("site %q has no component group", s)
		}
	}
	for _, op := range []string{"+", "*", "<<", "=="} {
		n := opNames[op]
		for _, family := range []string{"constfold.bin", "constprop.replace", "cse.hit", "licm.hoist", "vm.bin"} {
			if !seen[family+"."+n] {
				t.Errorf("operator family member %s.%s unregistered", family, n)
			}
		}
	}
	if got, want := len(Sites()), len(allSites); got != want {
		t.Errorf("Sites() returns %d names, registry has %d", got, want)
	}
}

// TestCompilerHitsOnlyRegisteredSites compiles and runs representative
// programs under a strict recorder at every optimization level: any
// instrumentation call naming an unregistered site panics here instead of
// surfacing mid-campaign.
func TestCompilerHitsOnlyRegisteredSites(t *testing.T) {
	cov := NewCoverage() // strict: drift panics
	for _, src := range diffPrograms {
		f, err := cc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range OptLevels {
			c := &Compiler{Opt: opt, Coverage: cov, Seeded: true}
			c.Run(prog, ExecConfig{MaxSteps: 200_000})
		}
	}
	if len(cov.Snapshot()) == 0 {
		t.Fatal("no sites hit; registry test is vacuous")
	}
}

// TestLenientCoverageReturnsError asserts the campaign-facing recorder
// reports registry drift as an error instead of crashing the worker.
func TestLenientCoverageReturnsError(t *testing.T) {
	c := NewLenientCoverage()
	c.Hit("lower.entry")
	c.Hit("no.such.site") // must not panic
	if err := c.Err(); err == nil {
		t.Error("lenient recorder did not report the unregistered hit")
	} else if !strings.Contains(err.Error(), "no.such.site") {
		t.Errorf("drift error %q does not name the site", err)
	}
	if err := c.Record("also.not.a.site"); err == nil {
		t.Error("Record accepted an unregistered site")
	}
	if err := c.Record("lower.entry"); err != nil {
		t.Errorf("Record rejected a registered site: %v", err)
	}
	if got := c.SiteCount("lower.entry"); got != 2 {
		t.Errorf("lower.entry count = %d, want 2", got)
	}

	strict := NewCoverage()
	if err := strict.Record("bogus"); err == nil {
		t.Error("strict Record accepted an unregistered site")
	}
	defer func() {
		if recover() == nil {
			t.Error("strict Hit did not panic on an unregistered site")
		}
	}()
	strict.Hit("bogus")
}

// TestSnapshotDiffMerge exercises the coverage-delta algebra the campaign
// scheduler builds on.
func TestSnapshotDiffMerge(t *testing.T) {
	a := NewCoverage()
	a.Hit("lower.entry")
	a.Hit("lower.if")
	a.Hit("dce.remove")
	b := NewCoverage()
	b.Hit("lower.entry")
	b.Hit("cse.hit")

	sa, sb := a.Snapshot(), b.Snapshot()
	if want := (Snapshot{"dce.remove", "lower.entry", "lower.if"}); !reflect.DeepEqual(sa, want) {
		t.Errorf("Snapshot = %v, want %v", sa, want)
	}
	if got, want := sa.Diff(sb), []string{"dce.remove", "lower.if"}; !reflect.DeepEqual(got, want) {
		t.Errorf("a.Diff(b) = %v, want %v", got, want)
	}
	if got := sb.Diff(sa); !reflect.DeepEqual(got, []string{"cse.hit"}) {
		t.Errorf("b.Diff(a) = %v", got)
	}
	union := sa.Merge(sb)
	if want := (Snapshot{"cse.hit", "dce.remove", "lower.entry", "lower.if"}); !reflect.DeepEqual(union, want) {
		t.Errorf("Merge = %v, want %v", union, want)
	}
	if len(union.Diff(union)) != 0 {
		t.Error("self-diff not empty")
	}
	if !union.Contains("cse.hit") || union.Contains("licm.hoist") {
		t.Error("Contains misreports membership")
	}
	var empty Snapshot
	if got := empty.Merge(sb); !reflect.DeepEqual(got, Snapshot{"cse.hit", "lower.entry"}) {
		t.Errorf("empty.Merge = %v", got)
	}
}
