package minicc

// This file extends the repository's template/clone/patch discipline into
// the compiler: all variants of a skeleton share their syntax, so the
// frontend's work — lowering the AST to the CFG IR — is done once per
// template program and replayed per variant, instead of re-walking the tree
// for every filling.
//
// The cache rests on three facts established by the lowering code:
//
//  1. The emitted IR does not depend on the active bug set or the coverage
//     recorder. Bugs only surface as MaybeCrash panics and coverage only as
//     Hit calls, so one IR template serves every (version, -O) compilation
//     of a variant; the hits and crash checks are recorded as an ordered
//     event trace and replayed against the live recorder and bug set.
//     Crash triggers that read the AST (equal-operand ternaries, operand
//     types) are replayed as closures over the template's tree — hole
//     rebinding patches that tree in place, so a replayed trigger sees
//     exactly the current variant's symbols.
//
//  2. Register promotion is a function of the skeleton, not the filling:
//     every local is bound at its declaration (declarations are never
//     holes), so rebinding a hole cannot renumber registers. The only
//     exception is a hole directly under '&' — refilling it moves the
//     address-taken set, which can demote a register variable to memory —
//     and such holes are marked volatile: any variant that moves one falls
//     back to fresh lowering.
//
//  3. A hole's use lowers to one of two shapes. A register-promoted symbol
//     contributes no instructions, only its register number in the operand
//     slots its value flows into; a memory-resident symbol contributes an
//     OpAddrVar whose Sym field names it. Both are recorded as patch sites
//     (the former via sentinel registers during the traced lowering), and
//     instantiation rewrites exactly those sites. A refill that changes a
//     hole's shape (register ↔ memory) would change the instruction
//     sequence itself, so it too falls back to fresh lowering.
//
// Per variant and compiler configuration the cached path therefore costs:
// replay the event trace, memcpy the template blocks into a reusable
// scratch clone (the optimization passes mutate their input, so they get a
// private copy), and rewrite the patch sites of the holes that moved. The
// -paranoid mode cross-checks every patched lowering against a from-scratch
// Lower of the same tree, instruction for instruction.

import (
	"fmt"
	"sort"

	"spe/internal/cc"
)

// Cache is the per-worker reusable backend state: IR templates keyed on the
// identity of the analyzed template program, plus the pooled VM execution
// state. A Cache is strictly single-goroutine — campaign workers each hold
// their own — and the outcome returned by RunCached aliases cache-owned
// scratch storage that the next RunCached call on the same cache recycles.
type Cache struct {
	templates map[*cc.Program]*irTemplate
	exec      *execState
	stats     CacheStats
}

// CacheStats counts the cache's template activity: how many IR templates
// were lowered (once per skeleton per cache), how many compilations were
// served by trace replay + patch, and how many fell back to a fresh
// lowering (unsupported templates, '&'-holes, shape changes). It also
// splits executions by dispatch engine and counts batched runs. Plain
// ints — the cache is single-goroutine — read by the campaign's
// telemetry once per shard.
type CacheStats struct {
	TemplateBuilds int64
	Replays        int64
	FreshLowerings int64
	// ThreadedRuns/SwitchRuns split cached executions by engine.
	ThreadedRuns int64
	SwitchRuns   int64
	// BatchRuns counts runs served through RunBatch; Batches counts the
	// RunBatch calls themselves.
	BatchRuns int64
	Batches   int64
}

// Sub returns the stats delta since base.
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		TemplateBuilds: s.TemplateBuilds - base.TemplateBuilds,
		Replays:        s.Replays - base.Replays,
		FreshLowerings: s.FreshLowerings - base.FreshLowerings,
		ThreadedRuns:   s.ThreadedRuns - base.ThreadedRuns,
		SwitchRuns:     s.SwitchRuns - base.SwitchRuns,
		BatchRuns:      s.BatchRuns - base.BatchRuns,
		Batches:        s.Batches - base.Batches,
	}
}

// Stats returns the cache's cumulative activity counters.
func (ca *Cache) Stats() CacheStats { return ca.stats }

// NewCache returns an empty backend cache.
func NewCache() *Cache {
	return &Cache{templates: make(map[*cc.Program]*irTemplate), exec: newExecState()}
}

// template returns the IR template for prog, building it on first use.
// holes are the program's hole identifiers (skeleton.Instance.HoleIdents),
// whose current Sym bindings define each variant.
func (ca *Cache) template(prog *cc.Program, holes []*cc.Ident) *irTemplate {
	if tm, ok := ca.templates[prog]; ok {
		return tm
	}
	tm := buildTemplate(prog, holes)
	ca.templates[prog] = tm
	ca.stats.TemplateBuilds++
	return tm
}

// RunCached is Compiler.Run with template-cached lowering: the template
// program is lowered once per Cache, and each call patches the recorded
// hole sites to the holes' current symbol bindings instead of re-lowering.
// It is byte-for-byte equivalent to Run — same coverage hits, same seeded
// crashes, same optimized IR, same execution — which the campaign pins with
// reuse-on/off report equivalence tests. With paranoid set, every
// template-derived lowering is additionally compared against a fresh
// Lower of the same program; a divergence is returned as a non-nil error
// (the campaign aborts on it).
//
// Ownership: the returned outcome (including Compile.Program) aliases the
// cache's scratch clone and is valid until the next RunCached on the same
// Cache. Holes must be the same slice identity-wise for every call with the
// same prog.
func (c *Compiler) RunCached(ca *Cache, prog *cc.Program, holes []*cc.Ident, cfg ExecConfig, paranoid bool) (*RunOutcome, error) {
	tm := ca.template(prog, holes)
	return c.runOnce(ca, tm, prog, c.bugSet(), cfg, paranoid)
}

// RunBatch runs n variants of one skeleton through the cached backend,
// amortizing the per-call setup (bug-set resolution, template lookup)
// across the whole shard. bind(i) patches the program to variant i — the
// campaign rebinds holes via the skeleton instance — and returns that
// variant's execution bounds; yield(i, ro) observes the outcome while the
// program is still bound to variant i (the outcome aliases cache scratch,
// exactly as with RunCached). Variants run in ascending order; the first
// error from bind or yield aborts the batch.
func (c *Compiler) RunBatch(ca *Cache, prog *cc.Program, holes []*cc.Ident, paranoid bool, n int, bind func(i int) (ExecConfig, error), yield func(i int, ro *RunOutcome) error) error {
	bugs := c.bugSet()
	tm := ca.template(prog, holes)
	ca.stats.Batches++
	for i := 0; i < n; i++ {
		cfg, err := bind(i)
		if err != nil {
			return err
		}
		ro, err := c.runOnce(ca, tm, prog, bugs, cfg, paranoid)
		if err != nil {
			return err
		}
		ca.stats.BatchRuns++
		if err := yield(i, ro); err != nil {
			return err
		}
	}
	return nil
}

// runOnce is the per-variant core shared by RunCached and RunBatch:
// replay-or-relower, optional paranoid cross-check, optimization passes,
// execution.
func (c *Compiler) runOnce(ca *Cache, tm *irTemplate, prog *cc.Program, bugs *BugSet, cfg ExecConfig, paranoid bool) (*RunOutcome, error) {
	cov := c.Coverage
	irp, usedTemplate, lerr := lowerFrom(tm, prog, bugs, cov)
	if usedTemplate {
		ca.stats.Replays++
	} else {
		ca.stats.FreshLowerings++
	}
	if paranoid && usedTemplate {
		if err := tm.crossCheck(prog, bugs, irp, lerr); err != nil {
			return nil, err
		}
	}
	out := &Output{}
	switch e := lerr.(type) {
	case nil:
	case *CrashError:
		out.Crash = e
	default:
		out.Err = lerr
	}
	if lerr == nil {
		// the optimization passes predate fusion: give them plain opcodes
		// (at -O0 no pass reads the stream, so the fused IR runs directly)
		if irp.fused && c.Opt >= 1 {
			unfuseProgram(irp)
		}
		out.Program = irp
		budget := c.WorkBudget
		if budget == 0 {
			budget = 1_000_000
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					switch e := r.(type) {
					case *CrashError:
						out.Crash = e
						out.Program = nil
					case *TimeoutError:
						out.Timeout = e
						out.Program = nil
					default:
						panic(r)
					}
				}
			}()
			c.runPasses(irp, bugs, cov, budget)
		}()
	}
	ro := &RunOutcome{Compile: out}
	if out.Ok() {
		if cfg.Dispatch == DispatchSwitch {
			ca.stats.SwitchRuns++
		} else {
			ca.stats.ThreadedRuns++
		}
		ro.Exec = executeWith(ca.exec, out.Program, bugs, cov, cfg)
	}
	return ro, nil
}

// lowerFrom produces the variant's lowered IR: from the template when every
// moved hole is patchable, from a fresh Lower otherwise. A seeded frontend
// crash replayed from the trace is returned as a *CrashError, exactly as
// Lower returns it.
func lowerFrom(tm *irTemplate, prog *cc.Program, bugs *BugSet, cov *Coverage) (irp *Program, used bool, err error) {
	if tm.unsupported || !tm.patchable() {
		irp, err = Lower(prog, bugs, cov)
		return irp, false, err
	}
	used = true
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*CrashError); ok {
				irp, err = nil, ce
				return
			}
			panic(r)
		}
	}()
	tm.replay(bugs, cov)
	irp = tm.instantiate()
	return irp, true, nil
}

// ---------------------------------------------------------------- template

// shape classes of a hole's lowering.
const (
	shapeNone int8 = iota // never reached lowering (constant initializers)
	shapeReg              // register-promoted: value register in operand slots
	shapeMem              // memory-resident: OpAddrVar names the symbol
)

// holeSentinel is the placeholder register a traced lowering emits for hole
// hi's value; real registers are positive and NoReg is 0, so sentinels are
// unambiguous until resolveSentinels rewrites them.
func holeSentinel(hi int) Reg { return Reg(-2 - hi) }

// irSite locates one instruction (and optionally an operand slot within it)
// in template coordinates: function index in lowering order, block index
// (equal to Block.ID before any pass runs), instruction index. instr < 0
// addresses the block terminator.
type irSite struct {
	fn, block, instr int
	slot             int8
}

// Operand slots of an irSite.
const (
	slotDst int8 = iota
	slotA
	slotB
	slotTermCond
	slotTermVal
	slotArg0 // slotArg0+i addresses Args[i]
)

// traceEvent is one replayable step of a template lowering: either a
// coverage hit or a seeded-crash callsite with its trigger.
type traceEvent struct {
	site string
	hook string
	cond func() bool
}

// lowerTrace accumulates a template's trace while lowerProgram runs.
type lowerTrace struct {
	holeOf   map[*cc.Ident]int
	holes    []*cc.Ident
	events   []traceEvent
	shape    []int8
	hfunc    []int
	regSites [][]irSite
	memSites [][]irSite
	curFunc  int
}

func newLowerTrace(holes []*cc.Ident) *lowerTrace {
	tr := &lowerTrace{
		holeOf:   make(map[*cc.Ident]int, len(holes)),
		holes:    holes,
		shape:    make([]int8, len(holes)),
		hfunc:    make([]int, len(holes)),
		regSites: make([][]irSite, len(holes)),
		memSites: make([][]irSite, len(holes)),
	}
	for i, id := range holes {
		tr.holeOf[id] = i
	}
	return tr
}

// note records the shape and owning function of a hole when its use is
// lowered.
func (tr *lowerTrace) note(hi int, shape int8) {
	tr.shape[hi] = shape
	tr.hfunc[hi] = tr.curFunc
}

// resolveSentinels rewrites the sentinel registers of function fi back to
// the holes' real (template-base) registers, recording each operand slot a
// sentinel reached as a patch site.
func (tr *lowerTrace) resolveSentinels(fi int, f *Func) {
	fix := func(bi, ii int, slot int8, r *Reg) {
		if *r >= NoReg {
			return
		}
		hi := int(-2 - *r)
		tr.regSites[hi] = append(tr.regSites[hi], irSite{fn: fi, block: bi, instr: ii, slot: slot})
		*r = f.VarRegs[tr.holes[hi].Sym]
	}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			fix(bi, ii, slotDst, &in.Dst)
			fix(bi, ii, slotA, &in.A)
			fix(bi, ii, slotB, &in.B)
			for ai := range in.Args {
				fix(bi, ii, slotArg0+int8(ai), &in.Args[ai])
			}
		}
		fix(bi, -1, slotTermCond, &b.Term.Cond)
		fix(bi, -1, slotTermVal, &b.Term.Val)
	}
}

// irTemplate is the cached lowering of one template program: the base IR,
// the hole patch sites, and the replayable event trace.
type irTemplate struct {
	prog  *Program
	funcs []*Func // in lowering (= source declaration) order
	holes []*cc.Ident
	// base is the holes' symbol bindings at build time; patch sites carry
	// base registers/symbols and are rewritten when a hole's current Sym
	// differs from base.
	base     []*cc.Symbol
	shape    []int8
	hfunc    []int
	volatile []bool
	regSites [][]irSite
	memSites [][]irSite
	events   []traceEvent
	// unsupported marks a template whose lowering failed structurally;
	// every variant takes the fresh-lowering path (and fails identically).
	unsupported bool

	scratch *irClone
}

// buildTemplate lowers prog once with tracing enabled. The build runs with
// no active bugs and no recorder: bug checks and coverage hits are replayed
// per variant from the trace instead.
func buildTemplate(prog *cc.Program, holes []*cc.Ident) *irTemplate {
	tm := &irTemplate{holes: holes, base: make([]*cc.Symbol, len(holes))}
	for i, id := range holes {
		tm.base[i] = id.Sym
	}
	tr := newLowerTrace(holes)
	irp, err := lowerProgram(prog, EmptyBugSet(), nil, tr)
	if err != nil {
		tm.unsupported = true
		return tm
	}
	tm.prog = irp
	for _, fd := range prog.Funcs {
		tm.funcs = append(tm.funcs, irp.Funcs[fd.Name])
	}
	tm.shape = tr.shape
	tm.hfunc = tr.hfunc
	tm.regSites = tr.regSites
	tm.memSites = tr.memSites
	tm.events = tr.events
	tm.volatile = addrTakenHoles(prog, tr.holeOf)
	// fuse the template IR in place: only Op fields change, so the patch
	// sites and trace offsets recorded above stay valid, and instantiate's
	// memcpy propagates the fusion to every variant for free.
	// Compare-branch fusion is suppressed in blocks where a hole patch can
	// rewrite the trailing comparison's destination or the terminator's
	// condition independently of each other.
	for fi, f := range tm.funcs {
		fuseFunc(f, tm.cmpBrBlocked(fi, f))
	}
	tm.prog.fused = true
	tm.scratch = tm.newScratch()
	return tm
}

// cmpBrBlocked returns the blocks of function fi (template coordinates)
// where OpCmpBr fusion is unsafe under hole patching: a patch site that
// targets the last instruction's Dst or the terminator's Cond can break
// the Dst == Term.Cond coupling the fusion relies on. (The fused handler
// re-checks the coupling live as well; skipping here keeps the template
// conservative.)
func (tm *irTemplate) cmpBrBlocked(fi int, f *Func) map[*Block]bool {
	var blocked map[*Block]bool
	for hi := range tm.regSites {
		for _, s := range tm.regSites[hi] {
			if s.fn != fi {
				continue
			}
			b := f.Blocks[s.block]
			if (s.instr < 0 && s.slot == slotTermCond) ||
				(s.instr == len(b.Instrs)-1 && s.slot == slotDst) {
				if blocked == nil {
					blocked = make(map[*Block]bool)
				}
				blocked[b] = true
			}
		}
	}
	return blocked
}

// addrTakenHoles marks holes that appear directly under '&': refilling one
// moves the address-taken set, which changes register promotion globally,
// so those variants must re-lower from scratch.
func addrTakenHoles(prog *cc.Program, holeOf map[*cc.Ident]int) []bool {
	out := make([]bool, len(holeOf))
	var walkExpr func(cc.Expr)
	walkExpr = func(e cc.Expr) {
		switch e := e.(type) {
		case nil:
		case *cc.UnaryExpr:
			if e.Op == "&" {
				if id, ok := e.X.(*cc.Ident); ok {
					if hi, isHole := holeOf[id]; isHole {
						out[hi] = true
					}
				}
			}
			walkExpr(e.X)
		case *cc.PostfixExpr:
			walkExpr(e.X)
		case *cc.BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *cc.AssignExpr:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *cc.CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.T)
			walkExpr(e.F)
		case *cc.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *cc.IndexExpr:
			walkExpr(e.X)
			walkExpr(e.Idx)
		case *cc.MemberExpr:
			walkExpr(e.X)
		case *cc.CastExpr:
			walkExpr(e.X)
		case *cc.SizeofExpr:
			walkExpr(e.X)
		case *cc.CommaExpr:
			for _, x := range e.List {
				walkExpr(x)
			}
		case *cc.InitList:
			for _, x := range e.List {
				walkExpr(x)
			}
		}
	}
	var walkStmt func(cc.Stmt)
	walkStmt = func(st cc.Stmt) {
		switch st := st.(type) {
		case nil:
		case *cc.BlockStmt:
			for _, s := range st.List {
				walkStmt(s)
			}
		case *cc.DeclStmt:
			for _, d := range st.Decls {
				walkExpr(d.Init)
			}
		case *cc.ExprStmt:
			walkExpr(st.X)
		case *cc.IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			walkStmt(st.Else)
		case *cc.WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *cc.DoWhileStmt:
			walkStmt(st.Body)
			walkExpr(st.Cond)
		case *cc.ForStmt:
			walkStmt(st.Init)
			walkExpr(st.Cond)
			walkExpr(st.Post)
			walkStmt(st.Body)
		case *cc.ReturnStmt:
			walkExpr(st.X)
		case *cc.LabeledStmt:
			walkStmt(st.Stmt)
		}
	}
	for _, d := range prog.File.Decls {
		switch d := d.(type) {
		case *cc.VarDecl:
			walkExpr(d.Init)
		case *cc.FuncDecl:
			walkStmt(d.Body)
		}
	}
	return out
}

// patchable reports whether every hole whose symbol moved off the template
// base can be patched in place: not volatile, and the same lowering shape
// as the base symbol (register candidates are register-promoted in the
// hole's function, memory candidates are not).
func (tm *irTemplate) patchable() bool {
	for i, id := range tm.holes {
		if id.Sym == tm.base[i] {
			continue
		}
		if tm.volatile[i] {
			return false
		}
		switch tm.shape[i] {
		case shapeReg:
			if _, ok := tm.funcs[tm.hfunc[i]].VarRegs[id.Sym]; !ok {
				return false
			}
		case shapeMem:
			if _, ok := tm.funcs[tm.hfunc[i]].VarRegs[id.Sym]; ok {
				return false
			}
		}
		// shapeNone: the hole sits in a constant initializer the VM reads
		// from the (already patched) AST; nothing in the IR to rewrite.
	}
	return true
}

// replay re-issues the template lowering's coverage hits and seeded-crash
// checks against the live recorder and bug set, in original order. A
// triggered crash panics *CrashError exactly where fresh lowering would
// have, leaving the same coverage prefix recorded.
func (tm *irTemplate) replay(bugs *BugSet, cov *Coverage) {
	for i := range tm.events {
		ev := &tm.events[i]
		if ev.site != "" {
			cov.Hit(ev.site)
		} else {
			bugs.MaybeCrash(cov, ev.hook, ev.cond)
		}
	}
}

// irClone is the template's reusable scratch clone: the optimization passes
// mutate blocks and instructions in place, so each variant compiles a
// private copy, rebuilt by memcpy from the template into these buffers.
type irClone struct {
	prog   Program
	funcs  []*Func
	blocks [][]*Block
	args   []Reg
}

func (tm *irTemplate) newScratch() *irClone {
	cl := &irClone{}
	cl.prog = Program{
		Funcs:   make(map[string]*Func, len(tm.funcs)),
		Globals: tm.prog.Globals,
		Statics: tm.prog.Statics,
		Source:  tm.prog.Source,
		fused:   tm.prog.fused,
	}
	totalArgs := 0
	for _, tf := range tm.funcs {
		sf := &Func{Name: tf.Name, Decl: tf.Decl, VarRegs: tf.VarRegs, MemVars: tf.MemVars}
		cl.funcs = append(cl.funcs, sf)
		cl.prog.Funcs[sf.Name] = sf
		bl := make([]*Block, len(tf.Blocks))
		for i := range bl {
			bl[i] = &Block{}
		}
		cl.blocks = append(cl.blocks, bl)
		for _, b := range tf.Blocks {
			for i := range b.Instrs {
				totalArgs += len(b.Instrs[i].Args)
			}
		}
	}
	cl.args = make([]Reg, totalArgs)
	return cl
}

// instantiate rebuilds the scratch clone from the template and rewrites the
// patch sites of every hole whose symbol moved. Callers must have checked
// patchable first. The returned program is valid until the next
// instantiate on the same template.
func (tm *irTemplate) instantiate() *Program {
	cl := tm.scratch
	// the memcpy below restores the template's (fused) opcodes even when
	// the previous variant unfused the scratch for the optimization passes
	cl.prog.fused = tm.prog.fused
	argOff := 0
	for fi, tf := range tm.funcs {
		sf := cl.funcs[fi]
		bl := cl.blocks[fi]
		sf.NumRegs = tf.NumRegs
		sf.Blocks = append(sf.Blocks[:0], bl...)
		sf.Entry = bl[tf.Entry.ID]
		for bi, tb := range tf.Blocks {
			cb := bl[bi]
			cb.ID = tb.ID
			cb.Label = tb.Label
			cb.Instrs = append(cb.Instrs[:0], tb.Instrs...)
			for ii := range cb.Instrs {
				in := &cb.Instrs[ii]
				if n := len(in.Args); n > 0 {
					args := cl.args[argOff : argOff+n : argOff+n]
					copy(args, in.Args)
					in.Args = args
					argOff += n
				}
			}
			t := tb.Term
			if t.To != nil {
				t.To = bl[t.To.ID]
			}
			if t.Else != nil {
				t.Else = bl[t.Else.ID]
			}
			cb.Term = t
		}
	}
	for i, id := range tm.holes {
		cur := id.Sym
		if cur == tm.base[i] {
			continue
		}
		for _, s := range tm.regSites[i] {
			nr := tm.funcs[s.fn].VarRegs[cur]
			b := cl.blocks[s.fn][s.block]
			if s.instr < 0 {
				switch s.slot {
				case slotTermCond:
					b.Term.Cond = nr
				case slotTermVal:
					b.Term.Val = nr
				}
				continue
			}
			in := &b.Instrs[s.instr]
			switch {
			case s.slot == slotDst:
				in.Dst = nr
			case s.slot == slotA:
				in.A = nr
			case s.slot == slotB:
				in.B = nr
			case s.slot >= slotArg0:
				in.Args[s.slot-slotArg0] = nr
			}
		}
		for _, s := range tm.memSites[i] {
			cl.blocks[s.fn][s.block].Instrs[s.instr].Sym = cur
		}
	}
	return &cl.prog
}

// crossCheck is the -paranoid assertion for the cached backend: the
// template-derived lowering (or its replayed crash) must match a fresh
// Lower of the same — already patched — program, instruction for
// instruction.
func (tm *irTemplate) crossCheck(prog *cc.Program, bugs *BugSet, got *Program, gotErr error) error {
	fresh, freshErr := Lower(prog, bugs, nil)
	if (gotErr == nil) != (freshErr == nil) {
		return fmt.Errorf("minicc: paranoid: template lowering error %v, fresh lowering error %v", gotErr, freshErr)
	}
	if gotErr != nil {
		gc, gok := gotErr.(*CrashError)
		fc, fok := freshErr.(*CrashError)
		if !gok || !fok || gc.Signature != fc.Signature || gc.BugID != fc.BugID {
			return fmt.Errorf("minicc: paranoid: template crash %v, fresh crash %v", gotErr, freshErr)
		}
		return nil
	}
	if g, f := irString(got), irString(fresh); g != f {
		return fmt.Errorf("minicc: paranoid: patched IR diverges from fresh lowering\n--- patched ---\n%s--- fresh ---\n%s", g, f)
	}
	return nil
}

// irString renders a lowered program deterministically for comparison.
func irString(p *Program) string {
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += p.Funcs[name].String()
	}
	return out
}
