package minicc_test

import (
	"fmt"
	"math/big"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/minicc"
	"spe/internal/partition"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// These tests pin the backend VM's speed-axis invariant: verdicts —
// compile outcome, execution result down to step counts, and per-site
// coverage — are identical across superinstruction fusion on/off and
// threaded vs switch dispatch, corpus-wide; and RunBatch produces exactly
// the per-variant results of the equivalent RunCached sequence.

func equivPrograms(t *testing.T) []*cc.Program {
	t.Helper()
	srcs := corpus.Seeds()
	if !testing.Short() {
		srcs = append(srcs, corpus.Generate(corpus.Config{N: 15, Seed: 41})...)
	}
	progs := make([]*cc.Program, 0, len(srcs))
	for _, src := range srcs {
		f, err := cc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := cc.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

// TestDispatchFusionEquivalence compares every dispatch x fusion mode
// against the unfused switch engine (the pre-fusion semantics) for every
// corpus program under every compiler configuration.
func TestDispatchFusionEquivalence(t *testing.T) {
	progs := equivPrograms(t)
	modes := []struct {
		name string
		cfg  minicc.ExecConfig
	}{
		{"threaded+fused", minicc.ExecConfig{}},
		{"switch+fused", minicc.ExecConfig{Dispatch: minicc.DispatchSwitch}},
		{"threaded+nofuse", minicc.ExecConfig{NoFuse: true}},
	}
	for pi, prog := range progs {
		for _, ver := range []string{"4.8", "trunk"} {
			for _, opt := range minicc.OptLevels {
				baseCov := minicc.NewCoverage()
				base := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: baseCov}
				want := base.Run(prog, minicc.ExecConfig{Dispatch: minicc.DispatchSwitch, NoFuse: true})
				for _, m := range modes {
					cov := minicc.NewCoverage()
					c := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: cov}
					got := c.Run(prog, m.cfg)
					label := fmt.Sprintf("prog %d %s -O%d %s", pi, ver, opt, m.name)
					if err := sameOutcome(got, want); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					for _, site := range minicc.Sites() {
						if g, w := cov.SiteCount(site), baseCov.SiteCount(site); g != w {
							t.Fatalf("%s: coverage site %s: %d hits, want %d", label, site, g, w)
						}
					}
				}
			}
		}
	}
}

// copyOutcome snapshots a RunOutcome whose storage may be cache scratch
// (RunBatch and RunCached both reuse per-cache clones between calls).
func copyOutcome(ro *minicc.RunOutcome) *minicc.RunOutcome {
	cp := &minicc.RunOutcome{}
	if ro.Compile != nil {
		o := *ro.Compile
		o.Program = nil
		if o.Crash != nil {
			cr := *o.Crash
			o.Crash = &cr
		}
		if o.Timeout != nil {
			to := *o.Timeout
			o.Timeout = &to
		}
		cp.Compile = &o
	}
	if ro.Exec != nil {
		e := *ro.Exec
		cp.Exec = &e
	}
	return cp
}

// batchSkeletons mix register holes, memory holes, and the equal-operand
// seeded-crash trigger, so a batch walk crosses clean runs, compiler
// crashes, and coverage-bearing paths.
var batchSkeletons = []string{
	`
int main() {
    int a = 3, b = 5, c = 0;
    c = a + b * 2;
    if (c > a) c = c - b;
    for (a = 0; a < 4; a++) c += a;
    printf("%d\n", c);
    return c;
}
`,
	`
int main() {
    int a = 1, b = 2;
    int r = a ? a : b;
    return r + b;
}
`,
	`
int g = 2, h = 7;
int main() {
    g = g + h;
    h = g - h;
    printf("%d %d\n", g, h);
    return g;
}
`,
}

// TestRunBatchMatchesRunCached drives the same variant sequence through
// per-variant RunCached calls and one RunBatch per compiler configuration
// and requires identical per-variant outcomes (including seeded-crash
// results), identical coverage hit counts, and the documented CacheStats
// accounting, under both dispatch engines.
func TestRunBatchMatchesRunCached(t *testing.T) {
	for si, src := range batchSkeletons {
		sk := skeleton.MustBuild(src)
		space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
		if err != nil {
			t.Fatal(err)
		}
		in := sk.NewInstance()

		var fills [][]partition.VarRef
		total := space.Total()
		idx := new(big.Int)
		for j := int64(0); j < 24; j++ {
			idx.SetInt64(j)
			if idx.Cmp(total) >= 0 {
				break
			}
			fill, err := space.FillAt(idx)
			if err != nil {
				t.Fatal(err)
			}
			fills = append(fills, fill)
		}

		for _, ver := range []string{"4.8", "trunk"} {
			for _, opt := range minicc.OptLevels {
				label := fmt.Sprintf("skeleton %d %s -O%d", si, ver, opt)

				// baseline: one RunCached per variant on its own cache
				caA := minicc.NewCache()
				covA := minicc.NewCoverage()
				want := make([]*minicc.RunOutcome, len(fills))
				for i, fill := range fills {
					if err := in.Instantiate(fill); err != nil {
						t.Fatal(err)
					}
					c := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: covA}
					ro, err := c.RunCached(caA, in.Program(), in.HoleIdents(), minicc.ExecConfig{}, true)
					if err != nil {
						t.Fatalf("%s: variant %d: %v", label, i, err)
					}
					want[i] = copyOutcome(ro)
				}

				for _, dispatch := range []string{minicc.DispatchThreaded, minicc.DispatchSwitch} {
					caB := minicc.NewCache()
					covB := minicc.NewCoverage()
					c := &minicc.Compiler{Version: ver, Opt: opt, Seeded: true, Coverage: covB}
					if err := in.Instantiate(fills[0]); err != nil {
						t.Fatal(err)
					}
					yielded := 0
					err := c.RunBatch(caB, in.Program(), in.HoleIdents(), true, len(fills),
						func(i int) (minicc.ExecConfig, error) {
							if err := in.Instantiate(fills[i]); err != nil {
								return minicc.ExecConfig{}, err
							}
							return minicc.ExecConfig{Dispatch: dispatch}, nil
						},
						func(i int, ro *minicc.RunOutcome) error {
							yielded++
							if err := sameOutcome(ro, want[i]); err != nil {
								return fmt.Errorf("variant %d: %w", i, err)
							}
							return nil
						})
					if err != nil {
						t.Fatalf("%s dispatch=%s: %v", label, dispatch, err)
					}
					if yielded != len(fills) {
						t.Fatalf("%s dispatch=%s: yielded %d of %d variants", label, dispatch, yielded, len(fills))
					}
					for _, site := range minicc.Sites() {
						if g, w := covB.SiteCount(site), covA.SiteCount(site); g != w {
							t.Fatalf("%s dispatch=%s: coverage site %s: batch %d hits, per-variant %d",
								label, dispatch, site, g, w)
						}
					}
					stats := caB.Stats()
					if stats.Batches != 1 {
						t.Errorf("%s dispatch=%s: Batches = %d, want 1", label, dispatch, stats.Batches)
					}
					if stats.BatchRuns != int64(len(fills)) {
						t.Errorf("%s dispatch=%s: BatchRuns = %d, want %d", label, dispatch, stats.BatchRuns, len(fills))
					}
					runs := stats.ThreadedRuns
					other := stats.SwitchRuns
					if dispatch == minicc.DispatchSwitch {
						runs, other = other, runs
					}
					if runs == 0 {
						t.Errorf("%s dispatch=%s: no runs counted for the selected engine", label, dispatch)
					}
					if other != 0 {
						t.Errorf("%s dispatch=%s: %d runs counted for the other engine", label, dispatch, other)
					}
				}
			}
		}
	}
}
