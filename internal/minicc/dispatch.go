package minicc

import (
	"spe/internal/cc"
	"spe/internal/interp"
)

// Dispatch strategies for the minicc VM. The threaded engine dispatches
// through a per-opcode handler table (one indirect call per instruction, no
// monolithic switch); the switch engine is the fallback/baseline running
// the exact same (fused) code. Both are equivalence-tested corpus-wide.
const (
	DispatchThreaded = "threaded"
	DispatchSwitch   = "switch"
)

// opHandler executes the instruction at ins[i] and returns how many
// instructions it consumed (1, or 2 for a fused pair).
type opHandler func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int

// opHandlers is the threaded engine's handler table, indexed by Op.
var opHandlers [numOps]opHandler

func init() {
	opHandlers = [numOps]opHandler{
		OpConst: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execConst(&ins[i], regs)
			return 1
		},
		OpBin: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execBin(&ins[i], regs)
			return 1
		},
		OpUn: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			in := &ins[i]
			regs[in.Dst] = m.unop(in.UnOp, regs[in.A], in.Type)
			return 1
		},
		OpConv: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			in := &ins[i]
			regs[in.Dst] = convertVal(regs[in.A], in.Type, m)
			return 1
		},
		OpCopy: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			in := &ins[i]
			regs[in.Dst] = regs[in.A]
			return 1
		},
		OpAddrVar: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execAddrVar(f, &ins[i], regs, vars)
			return 1
		},
		OpLoad: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execLoad(&ins[i], regs)
			return 1
		},
		OpStore: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execStore(&ins[i], regs)
			return 1
		},
		OpCall: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execCall(f, &ins[i], regs, vars)
			return 1
		},
		OpArg: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.trap("unknown opcode %d", ins[i].Op)
			return 1
		},
		OpAddrIdx: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execAddrIdx(&ins[i], regs)
			return 1
		},
		OpConstBin: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execConst(&ins[i], regs)
			m.tick()
			m.execBin(&ins[i+1], regs)
			return 2
		},
		OpLoadBin: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execLoad(&ins[i], regs)
			m.tick()
			m.execBin(&ins[i+1], regs)
			return 2
		},
		OpConstStore: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			m.execConst(&ins[i], regs)
			m.tick()
			m.execStore(&ins[i+1], regs)
			return 2
		},
		OpCmpBr: func(m *vm, f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
			in := &ins[i]
			m.execBin(in, regs)
			// prime the terminator only when the fusion invariant still
			// holds live — hole patching can rebind Dst or Term.Cond
			// after fusion, in which case the terminator falls back to
			// reading the condition register
			if in.Dst == b.Term.Cond {
				m.brReady = true
				m.brTaken = !regs[in.Dst].IsZero()
			}
			return 1
		},
	}
}

// execInstrN is the switch engine's fused-aware step: it executes the
// instruction (or fused pair) at ins[i] and returns how many instructions
// it consumed. The fused cases mirror the threaded handlers exactly,
// including the step tick between the halves of a pair (a timeout at the
// second half must not mask a trap from the first).
func (m *vm) execInstrN(f *Func, b *Block, ins []Instr, i int, regs []interp.Value, vars map[*cc.Symbol]*interp.Object) int {
	in := &ins[i]
	switch in.Op {
	case OpConstBin:
		m.execConst(in, regs)
		m.tick()
		m.execBin(&ins[i+1], regs)
		return 2
	case OpLoadBin:
		m.execLoad(in, regs)
		m.tick()
		m.execBin(&ins[i+1], regs)
		return 2
	case OpConstStore:
		m.execConst(in, regs)
		m.tick()
		m.execStore(&ins[i+1], regs)
		return 2
	case OpCmpBr:
		m.execBin(in, regs)
		if in.Dst == b.Term.Cond {
			m.brReady = true
			m.brTaken = !regs[in.Dst].IsZero()
		}
		return 1
	default:
		m.execInstr(f, in, regs, vars)
		return 1
	}
}
